package ps

import (
	"iter"
	"maps"
	"slices"
	"strings"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/query"
	"repro/internal/sensornet"
)

// Aggregator is the server of §2: it collects queries, and once per time
// slot gathers the sensors' offers (location + price), selects the
// sensors that maximize social welfare, shares them across queries,
// splits costs proportionately and returns what each query obtained.
type Aggregator struct {
	world    *World
	sched    Scheduling
	baseline bool
	greedy   core.GreedyConfig
	ledger   core.Ledger
	selStats core.SelectionStats

	points    []*PointQuery
	aggs      []*AggregateQuery
	extra     []query.Query
	locMon    []*LocationMonitoringQuery
	regMon    []*RegionMonitoringQuery
	events    []*EventDetectionQuery
	regEvents []*RegionEventQuery
}

// Ledger exposes the aggregator's cumulative accounting: per-query
// payments and utilities, per-sensor earnings, welfare, and balance checks
// (the "accounting" stage of Algorithm 5).
func (a *Aggregator) Ledger() *core.Ledger { return &a.ledger }

// slotRunner is the narrow seam between the batch scheduling core and the
// streaming Engine: everything the engine's event loop needs from the
// aggregator is the ability to execute the next slot and to name it. The
// engine wraps an Aggregator behind this interface; richer access (query
// submission, the ledger) stays on the concrete type and is confined to
// the loop goroutine.
type slotRunner interface {
	RunSlot() *SlotReport
	NextSlot() int
}

var _ slotRunner = (*Aggregator)(nil)

// CancelQuery withdraws a pending or continuous query by ID before the
// next slot executes. It reports whether anything was removed. One-shot
// queries already consumed by a RunSlot are gone and return false.
func (a *Aggregator) CancelQuery(id string) bool {
	before := len(a.points) + len(a.aggs) + len(a.extra) + len(a.locMon) +
		len(a.regMon) + len(a.events) + len(a.regEvents)
	a.points = slices.DeleteFunc(a.points, func(q *PointQuery) bool { return q.QID() == id })
	a.aggs = slices.DeleteFunc(a.aggs, func(q *AggregateQuery) bool { return q.QID() == id })
	a.extra = slices.DeleteFunc(a.extra, func(q query.Query) bool { return q.QID() == id })
	a.locMon = slices.DeleteFunc(a.locMon, func(q *LocationMonitoringQuery) bool { return q.ID == id })
	a.regMon = slices.DeleteFunc(a.regMon, func(q *RegionMonitoringQuery) bool { return q.ID == id })
	a.events = slices.DeleteFunc(a.events, func(q *EventDetectionQuery) bool { return q.ID == id })
	a.regEvents = slices.DeleteFunc(a.regEvents, func(q *RegionEventQuery) bool { return q.ID == id })
	return len(a.points)+len(a.aggs)+len(a.extra)+len(a.locMon)+
		len(a.regMon)+len(a.events)+len(a.regEvents) != before
}

// Option customizes an Aggregator.
type Option func(*Aggregator)

// WithScheduling selects the point-scheduling policy (default
// SchedulingOptimal).
func WithScheduling(s Scheduling) Option {
	return func(a *Aggregator) { a.sched = s }
}

// WithBaselinePipeline makes the whole acquisition pipeline use the
// evaluation's baseline algorithms (sequential execution with data
// buffering). Useful for comparisons.
func WithBaselinePipeline() Option {
	return func(a *Aggregator) { a.baseline = true }
}

// WithGreedyStrategy selects the candidate-evaluation strategy of the
// greedy selection core (default StrategyAuto). Results are bit-identical
// across strategies; only the per-slot work differs.
func WithGreedyStrategy(s Strategy) Option {
	return func(a *Aggregator) { a.greedy.Strategy = s }
}

// WithGreedyConfig sets the full greedy selection configuration
// (strategy, workers, sharding threshold).
func WithGreedyConfig(cfg GreedyConfig) Option {
	return func(a *Aggregator) { a.greedy = cfg }
}

// SetGreedyStrategy switches the selection strategy for subsequent
// slots. Like every other Aggregator method it must be called by the
// goroutine owning the aggregator (the engine's loop when wrapped in an
// Engine — see Engine.SetGreedyStrategy).
func (a *Aggregator) SetGreedyStrategy(s Strategy) { a.greedy.Strategy = s }

// GreedyStrategy returns the configured selection strategy.
func (a *Aggregator) GreedyStrategy() Strategy { return a.greedy.Strategy }

// SelectionStats returns the cumulative selection instrumentation over
// all executed slots: valuation calls made vs the exhaustive-scan
// equivalent, lazy-heap re-evaluations and non-submodular fallbacks.
func (a *Aggregator) SelectionStats() SelectionStats { return a.selStats }

// NewAggregator creates an aggregator over a world.
func NewAggregator(world *World, opts ...Option) *Aggregator {
	a := &Aggregator{world: world}
	for _, o := range opts {
		o(a)
	}
	return a
}

// NextSlot returns the slot number the next RunSlot call will execute.
func (a *Aggregator) NextSlot() int { return a.world.Fleet.Slot() + 1 }

// The per-kind Submit* methods below are thin wrappers over the Spec
// materialization used by Submit. They keep the historical signatures and
// lenient semantics (no validation) for one release.

// SubmitPoint submits a single-sensor point query for the next slot with
// the world's dmax and the evaluation's theta_min.
//
// Deprecated: use Submit with a PointSpec.
func (a *Aggregator) SubmitPoint(id string, loc Point, budget float64) *PointQuery {
	sq, _ := PointSpec{ID: id, Loc: loc, Budget: budget}.materialize(a)
	return sq.query.(*PointQuery)
}

// SubmitMultiPoint submits a multiple-sensor point query asking for k
// redundant readings.
//
// Deprecated: use Submit with a MultiPointSpec.
func (a *Aggregator) SubmitMultiPoint(id string, loc Point, budget float64, k int) *MultiPointQuery {
	sq, _ := MultiPointSpec{ID: id, Loc: loc, Budget: budget, K: k}.materialize(a)
	return sq.query.(*MultiPointQuery)
}

// SubmitAggregate submits a spatial aggregate query over a region; the
// sensing range defaults to the world's dmax.
//
// Deprecated: use Submit with an AggregateSpec.
func (a *Aggregator) SubmitAggregate(id string, region Rect, budget float64) *AggregateQuery {
	sq, _ := AggregateSpec{ID: id, Region: region, Budget: budget}.materialize(a)
	return sq.query.(*AggregateQuery)
}

// SubmitTrajectory submits a query over a trajectory.
//
// Deprecated: use Submit with a TrajectorySpec.
func (a *Aggregator) SubmitTrajectory(id string, tr Trajectory, budget float64) *TrajectoryQuery {
	sq, _ := TrajectorySpec{ID: id, Path: tr, Budget: budget}.materialize(a)
	return sq.query.(*TrajectoryQuery)
}

// SubmitLocationMonitoring submits a continuous location-monitoring query
// running from the next slot for `duration` slots; desired sampling times
// are chosen from the location's history ([19]); the budget should scale
// with the duration.
//
// Deprecated: use Submit with a LocationMonitoringSpec.
func (a *Aggregator) SubmitLocationMonitoring(id string, loc Point, duration int, budget float64, samples int) *LocationMonitoringQuery {
	sq, _ := LocationMonitoringSpec{ID: id, Loc: loc, Duration: duration, Budget: budget, Samples: samples}.materialize(a)
	return sq.query.(*LocationMonitoringQuery)
}

// SubmitRegionMonitoring submits a continuous region-monitoring query; it
// requires a world with a learned GP model (NewIntelLabWorld provides
// one).
//
// Deprecated: use Submit with a RegionMonitoringSpec.
func (a *Aggregator) SubmitRegionMonitoring(id string, region Rect, duration int, budget float64) (*RegionMonitoringQuery, error) {
	sq, err := RegionMonitoringSpec{ID: id, Region: region, Duration: duration, Budget: budget}.materialize(a)
	if err != nil {
		return nil, err
	}
	return sq.query.(*RegionMonitoringQuery), nil
}

// SubmitEventDetection submits a continuous event-detection query (the
// §2.3 extension): redundant sampling every slot, notification when the
// phenomenon exceeds threshold with the requested confidence.
//
// Deprecated: use Submit with an EventDetectionSpec.
func (a *Aggregator) SubmitEventDetection(id string, loc Point, duration int, threshold, confidence, budgetPerSlot float64) *EventDetectionQuery {
	sq, _ := EventDetectionSpec{
		ID: id, Loc: loc, Duration: duration,
		Threshold: threshold, Confidence: confidence, BudgetPerSlot: budgetPerSlot,
	}.materialize(a)
	return sq.query.(*EventDetectionQuery)
}

// SubmitRegionEvent submits a continuous region event-detection query
// (§2.3's Q4 as an extension): every slot a spatial-aggregate probe is
// scheduled and the quality-weighted regional average is tested against
// the threshold, with confidence scaled by achieved coverage.
//
// Deprecated: use Submit with a RegionEventSpec.
func (a *Aggregator) SubmitRegionEvent(id string, region Rect, duration int, threshold, confidence, budgetPerSlot float64) *RegionEventQuery {
	sq, _ := RegionEventSpec{
		ID: id, Region: region, Duration: duration,
		Threshold: threshold, Confidence: confidence, BudgetPerSlot: budgetPerSlot,
	}.materialize(a)
	return sq.query.(*RegionEventQuery)
}

// EventNotification reports one event-detection evaluation.
type EventNotification struct {
	QueryID    string
	Slot       int
	Detected   bool
	Confidence float64
	// Reading is the quality-weighted mean of the fused readings.
	Reading float64
}

// SlotReport summarizes one executed time slot.
type SlotReport struct {
	Slot        int
	Welfare     float64
	TotalCost   float64
	SensorsUsed int
	// Offers is how many sensor offers (location + price) the slot had to
	// choose from.
	Offers int
	// Per-type values obtained this slot.
	PointValue  float64
	AggValue    float64
	LocMonValue float64
	RegMonValue float64
	ExtraValue  float64
	// Events lists event-detection evaluations of this slot.
	Events []EventNotification
	// Selection instruments the slot's greedy sensor selection (zero for
	// pipelines that bypass the greedy core, e.g. baseline or pure point
	// slots under a non-greedy scheduling policy).
	Selection SelectionStats
	// Shards is the per-shard breakdown when the slot ran on a
	// ShardedAggregator (the last entry is the spanning pass); nil on the
	// unsharded pipeline.
	Shards []ShardStats
	// Degraded lists lanes whose partial could not be merged this slot —
	// in a cluster, shards whose node died or answered with a stale
	// epoch. Queries resident on a degraded lane got no outcome; the
	// errors wrap ps.ErrNodeUnavailable/ps.ErrStaleEpoch where the cause
	// is node loss or fencing, so errors.Is distinguishes them.
	Degraded []LaneError
	// Stages is the slot's per-stage latency trace in pipeline order —
	// offer_gather/selection/commit/accounting on the unsharded pipeline,
	// with the sharded pipeline's route/shard_select/spanning/reconcile
	// replacing selection. The engine prepends ingest and appends publish
	// before accumulating into EngineMetrics.SlotStages.
	Stages []StageTiming

	values   map[string]float64
	payments map[string]float64
	// answered marks continuous queries whose probe was satisfied this
	// slot even when the valuation delta rounds to zero (e.g. a sample
	// that repeats an already-achieved quality still counts as served).
	answered map[string]bool
}

// Answered reports whether the query was served this slot: it obtained
// positive value, or (for continuous queries) a satisfied sample.
func (r *SlotReport) Answered(id string) bool { return r.values[id] > 0 || r.answered[id] }

// Value returns the valuation the query obtained this slot.
func (r *SlotReport) Value(id string) float64 { return r.values[id] }

// Payment returns what the query paid this slot.
func (r *SlotReport) Payment(id string) float64 { return r.payments[id] }

// QueryOutcome is one query's outcome in one slot, as enumerated by
// SlotReport.Outcomes.
type QueryOutcome struct {
	// Answered reports whether the query was served this slot (positive
	// value, or a satisfied continuous sample).
	Answered bool
	// Value is the valuation obtained, Payment what was paid.
	Value   float64
	Payment float64
}

// Outcomes iterates over every query with a recorded outcome this slot
// (id -> answered/value/payment), in unspecified order. It is the bulk
// companion of the per-id Answered/Value/Payment getters — each yielded
// outcome is exactly what those getters return for the id — so callers
// can enumerate a slot's results without knowing the live query IDs.
func (r *SlotReport) Outcomes() iter.Seq2[string, QueryOutcome] {
	return func(yield func(string, QueryOutcome) bool) {
		seen := make(map[string]bool, len(r.values))
		emit := func(id string) bool {
			if seen[id] {
				return true
			}
			seen[id] = true
			return yield(id, QueryOutcome{
				Answered: r.Answered(id),
				Value:    r.Value(id),
				Payment:  r.Payment(id),
			})
		}
		for id := range r.values {
			if !emit(id) {
				return
			}
		}
		for id := range r.payments {
			if !emit(id) {
				return
			}
		}
		for id := range r.answered {
			if !emit(id) {
				return
			}
		}
	}
}

// RunSlot advances the world one time slot and executes the pending and
// continuous queries: pure point workloads use the configured scheduling
// policy directly (§3.1); anything else goes through the Algorithm 5
// query-mix pipeline. Selected sensors are committed (lifetime, privacy
// history), one-shot queries are consumed, and expired continuous queries
// are retired.
func (a *Aggregator) RunSlot() *SlotReport {
	tr := obs.StartTrace()
	offers := a.world.Fleet.Step()
	t := a.world.Fleet.Slot()
	tr.Mark(StageOfferGather)
	ex := a.executeSlot(t, offers, false)
	tr.Mark(StageSelection)
	a.world.Fleet.Commit(ex.selected)
	tr.Mark(StageCommit)
	if ex.point != nil {
		a.ledger.RecordPointResult(ex.point)
	} else {
		a.ledger.RecordMixResult(ex.mix)
	}
	a.selStats.Accumulate(ex.report.Selection)
	a.retire(t)
	tr.Mark(StageAccounting)
	ex.report.Stages = tr.Spans()
	return ex.report
}

// slotExec is one executed selection pass over a batch of offers: the
// report fragment plus what the caller still has to do afterwards — data
// acquisition (Fleet.Commit on selected) and accounting (ledger). It is
// the seam between the single-world RunSlot and the sharded execution
// layer, which runs one executeSlot per shard and reconciles.
type slotExec struct {
	report   *SlotReport
	selected []*sensornet.Sensor
	// queries counts the queries this pass scheduled (user one-shots,
	// active continuous queries and their generated probes).
	queries int
	mix     *core.MixSlotResult // nil on the point-scheduling path
	point   *core.PointResult   // nil on the mix path
}

// executeSlot runs slot t's selection over the given offers without
// touching the fleet, the ledger or the pending-query lists. forceMix
// routes even pure-point slots through the Algorithm 5 greedy pipeline —
// the sharded layer needs every shard on the same (decomposable) path.
func (a *Aggregator) executeSlot(t int, offers []core.Offer, forceMix bool) *slotExec {
	report := &SlotReport{
		Slot:     t,
		Offers:   len(offers),
		values:   make(map[string]float64),
		payments: make(map[string]float64),
		answered: make(map[string]bool),
	}
	ex := &slotExec{report: report}

	// Materialize event-detection probes.
	probes := make(map[string]*EventDetectionQuery)
	regProbes := make(map[string]*RegionEventQuery)
	extra := append([]query.Query(nil), a.extra...)
	for _, e := range a.events {
		if mp, ok := e.CreatePointQuery(t); ok {
			extra = append(extra, mp)
			probes[mp.QID()] = e
		}
	}
	for _, e := range a.regEvents {
		if agg, ok := e.CreateProbe(t); ok {
			extra = append(extra, agg)
			regProbes[agg.QID()] = e
		}
	}

	activeLM := activeLocMon(a.locMon, t)
	activeRM := activeRegMon(a.regMon, t)
	ex.queries = len(a.points) + len(a.aggs) + len(extra) + len(activeLM) + len(activeRM)
	pureMix := forceMix || len(a.aggs) > 0 || len(extra) > 0 ||
		len(activeLM) > 0 || len(activeRM) > 0

	if !pureMix {
		// Point-only slot: honor the configured scheduling policy.
		res := a.sched.solver(a.greedy)(a.points, offers)
		ex.point = res
		ex.selected = res.Selected
		report.Welfare = res.Welfare()
		report.TotalCost = res.TotalCost
		report.SensorsUsed = len(res.Selected)
		report.PointValue = res.TotalValue
		report.Selection = res.Stats
		for qid, o := range res.Outcomes {
			report.values[qid] = o.Value
			report.payments[qid] = o.Payment
		}
	} else {
		mq := core.MixQueries{
			Aggregates: a.aggs,
			Points:     a.points,
			LocMon:     a.locMon,
			RegMon:     a.regMon,
			Extra:      extra,
		}
		var res *core.MixSlotResult
		if a.baseline {
			res = core.RunMixSlotBaseline(t, mq, offers)
		} else {
			res = core.RunMixSlotWith(t, mq, offers, a.greedy)
		}
		ex.mix = res
		ex.selected = res.Multi.Selected
		report.Selection = res.Multi.Stats
		report.Welfare = res.Welfare()
		report.TotalCost = res.TotalCost
		report.SensorsUsed = len(res.Multi.Selected)
		report.PointValue = res.PointValue
		report.AggValue = res.AggValue
		report.LocMonValue = res.LocMonValue
		report.RegMonValue = res.RegMonValue
		report.ExtraValue = res.ExtraValue
		// Record user-submitted one-shots only: the probe queries the
		// pipeline generates for continuous parents carry derived IDs
		// (query.PointID), and their value/payments are projected onto
		// the parent ID below — copying them here too would make
		// Outcomes() double-count continuous work under phantom IDs.
		recordUser := func(qid string) {
			if out := res.Multi.Outcomes[qid]; out != nil && out.Value > 0 {
				report.values[qid] = out.Value
				report.payments[qid] = out.TotalPayment()
			}
		}
		for _, q := range a.points {
			recordUser(q.QID())
		}
		for _, q := range a.aggs {
			recordUser(q.QID())
		}
		for _, q := range a.extra {
			recordUser(q.QID())
		}
		for qid, o := range res.PointOutcomes {
			report.values[qid] = o.Value
			report.payments[qid] = o.Payment
		}
		// Continuous queries report under their own ID: Algorithm 5's
		// generated probes carry derived IDs, so without this projection
		// Answered/Value/Payment would never see monitoring results.
		for qid, co := range res.Continuous {
			if co.ValueDelta > 0 {
				report.values[qid] = co.ValueDelta
			}
			if co.Payment > 0 {
				report.payments[qid] += co.Payment
			}
			if co.Satisfied {
				report.answered[qid] = true
			}
		}

		// Evaluate region-event probes: readings plus achieved coverage.
		// Sorted probe order: several probes can project onto one parent
		// query ID, so the += below must run in a reproducible order for
		// SlotReports to stay bit-identical across strategies (floatorder).
		for _, pid := range slices.Sorted(maps.Keys(regProbes)) {
			e := regProbes[pid]
			out := res.Multi.Outcomes[pid]
			if out == nil || len(out.Sensors) == 0 {
				continue
			}
			if out.Value > 0 {
				report.values[e.ID] += out.Value
				report.payments[e.ID] += out.TotalPayment()
			}
			var vals, thetas []float64
			var centers []Point
			for _, s := range out.Sensors {
				th := (1 - s.Inaccuracy) * s.Trust
				if th <= 0 {
					continue
				}
				vals = append(vals, a.world.ReadingAt(s.Pos, t))
				thetas = append(thetas, th)
				centers = append(centers, s.Pos)
			}
			coverage := a.world.Grid.CoverageFraction(e.Region, centers, e.SensingRange)
			detected, conf, avg := e.Evaluate(vals, thetas, coverage)
			report.Events = append(report.Events, EventNotification{
				QueryID: e.ID, Slot: t, Detected: detected, Confidence: conf, Reading: avg,
			})
		}

		// Evaluate event probes on the acquired readings. Sorted for the
		// same reason as the region-event loop above.
		for _, pid := range slices.Sorted(maps.Keys(probes)) {
			e := probes[pid]
			out := res.Multi.Outcomes[pid]
			if out == nil || len(out.Sensors) == 0 {
				continue
			}
			if out.Value > 0 {
				report.values[e.ID] += out.Value
				report.payments[e.ID] += out.TotalPayment()
			}
			var vals, thetas []float64
			var wsum, wv float64
			for _, s := range out.Sensors {
				th := s.Quality(e.Loc, e.DMax)
				if th <= 0 {
					continue
				}
				v := a.world.ReadingAt(s.Pos, t)
				vals = append(vals, v)
				thetas = append(thetas, th)
				wsum += th
				wv += th * v
			}
			detected, conf := e.Evaluate(vals, thetas)
			n := EventNotification{QueryID: e.ID, Slot: t, Detected: detected, Confidence: conf}
			if wsum > 0 {
				n.Reading = wv / wsum
			}
			report.Events = append(report.Events, n)
		}
	}

	// The probe maps above iterate in map order; fix the event order so
	// reports are deterministic (and so the sharded merge has a canonical
	// order to preserve). Each event query emits at most one notification
	// per slot, so sorting by query ID is a total order.
	slices.SortFunc(report.Events, func(a, b EventNotification) int {
		return strings.Compare(a.QueryID, b.QueryID)
	})
	return ex
}

// pendingWork reports whether the aggregator has anything to schedule at
// slot t: pending one-shots, or continuous queries active at t. The
// sharded layer uses it to skip the spanning pass on slots with no
// cross-shard demand.
func (a *Aggregator) pendingWork(t int) bool {
	if len(a.points) > 0 || len(a.aggs) > 0 || len(a.extra) > 0 {
		return true
	}
	if len(activeLocMon(a.locMon, t)) > 0 || len(activeRegMon(a.regMon, t)) > 0 {
		return true
	}
	for _, e := range a.events {
		if e.Active(t) {
			return true
		}
	}
	for _, e := range a.regEvents {
		if e.Active(t) {
			return true
		}
	}
	return false
}

// retire consumes the slot's one-shot queries and drops expired
// continuous queries after slot t executed.
func (a *Aggregator) retire(t int) {
	a.points = nil
	a.aggs = nil
	a.extra = nil
	a.locMon = pruneLocMon(a.locMon, t)
	a.regMon = pruneRegMon(a.regMon, t)
	a.events = pruneEvents(a.events, t)
	a.regEvents = pruneRegionEvents(a.regEvents, t)
}

func activeLocMon(qs []*LocationMonitoringQuery, t int) []*LocationMonitoringQuery {
	var out []*LocationMonitoringQuery
	for _, q := range qs {
		if q.Active(t) {
			out = append(out, q)
		}
	}
	return out
}

func activeRegMon(qs []*RegionMonitoringQuery, t int) []*RegionMonitoringQuery {
	var out []*RegionMonitoringQuery
	for _, q := range qs {
		if q.Active(t) {
			out = append(out, q)
		}
	}
	return out
}

func pruneLocMon(qs []*LocationMonitoringQuery, t int) []*LocationMonitoringQuery {
	kept := qs[:0]
	for _, q := range qs {
		if q.End > t {
			kept = append(kept, q)
		}
	}
	return kept
}

func pruneRegMon(qs []*RegionMonitoringQuery, t int) []*RegionMonitoringQuery {
	kept := qs[:0]
	for _, q := range qs {
		if q.End > t {
			kept = append(kept, q)
		}
	}
	return kept
}

func pruneEvents(qs []*EventDetectionQuery, t int) []*EventDetectionQuery {
	kept := qs[:0]
	for _, q := range qs {
		if q.End > t {
			kept = append(kept, q)
		}
	}
	return kept
}

func pruneRegionEvents(qs []*RegionEventQuery, t int) []*RegionEventQuery {
	kept := qs[:0]
	for _, q := range qs {
		if q.End > t {
			kept = append(kept, q)
		}
	}
	return kept
}
