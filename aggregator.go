package ps

import (
	"fmt"
	"slices"

	"repro/internal/core"
	"repro/internal/query"
)

// Aggregator is the server of §2: it collects queries, and once per time
// slot gathers the sensors' offers (location + price), selects the
// sensors that maximize social welfare, shares them across queries,
// splits costs proportionately and returns what each query obtained.
type Aggregator struct {
	world    *World
	sched    Scheduling
	baseline bool
	greedy   core.GreedyConfig
	ledger   core.Ledger
	selStats core.SelectionStats

	points    []*PointQuery
	aggs      []*AggregateQuery
	extra     []query.Query
	locMon    []*LocationMonitoringQuery
	regMon    []*RegionMonitoringQuery
	events    []*EventDetectionQuery
	regEvents []*RegionEventQuery
}

// Ledger exposes the aggregator's cumulative accounting: per-query
// payments and utilities, per-sensor earnings, welfare, and balance checks
// (the "accounting" stage of Algorithm 5).
func (a *Aggregator) Ledger() *core.Ledger { return &a.ledger }

// slotRunner is the narrow seam between the batch scheduling core and the
// streaming Engine: everything the engine's event loop needs from the
// aggregator is the ability to execute the next slot and to name it. The
// engine wraps an Aggregator behind this interface; richer access (query
// submission, the ledger) stays on the concrete type and is confined to
// the loop goroutine.
type slotRunner interface {
	RunSlot() *SlotReport
	NextSlot() int
}

var _ slotRunner = (*Aggregator)(nil)

// CancelQuery withdraws a pending or continuous query by ID before the
// next slot executes. It reports whether anything was removed. One-shot
// queries already consumed by a RunSlot are gone and return false.
func (a *Aggregator) CancelQuery(id string) bool {
	before := len(a.points) + len(a.aggs) + len(a.extra) + len(a.locMon) +
		len(a.regMon) + len(a.events) + len(a.regEvents)
	a.points = slices.DeleteFunc(a.points, func(q *PointQuery) bool { return q.QID() == id })
	a.aggs = slices.DeleteFunc(a.aggs, func(q *AggregateQuery) bool { return q.QID() == id })
	a.extra = slices.DeleteFunc(a.extra, func(q query.Query) bool { return q.QID() == id })
	a.locMon = slices.DeleteFunc(a.locMon, func(q *LocationMonitoringQuery) bool { return q.ID == id })
	a.regMon = slices.DeleteFunc(a.regMon, func(q *RegionMonitoringQuery) bool { return q.ID == id })
	a.events = slices.DeleteFunc(a.events, func(q *EventDetectionQuery) bool { return q.ID == id })
	a.regEvents = slices.DeleteFunc(a.regEvents, func(q *RegionEventQuery) bool { return q.ID == id })
	return len(a.points)+len(a.aggs)+len(a.extra)+len(a.locMon)+
		len(a.regMon)+len(a.events)+len(a.regEvents) != before
}

// Option customizes an Aggregator.
type Option func(*Aggregator)

// WithScheduling selects the point-scheduling policy (default
// SchedulingOptimal).
func WithScheduling(s Scheduling) Option {
	return func(a *Aggregator) { a.sched = s }
}

// WithBaselinePipeline makes the whole acquisition pipeline use the
// evaluation's baseline algorithms (sequential execution with data
// buffering). Useful for comparisons.
func WithBaselinePipeline() Option {
	return func(a *Aggregator) { a.baseline = true }
}

// WithGreedyStrategy selects the candidate-evaluation strategy of the
// greedy selection core (default StrategyAuto). Results are bit-identical
// across strategies; only the per-slot work differs.
func WithGreedyStrategy(s Strategy) Option {
	return func(a *Aggregator) { a.greedy.Strategy = s }
}

// WithGreedyConfig sets the full greedy selection configuration
// (strategy, workers, sharding threshold).
func WithGreedyConfig(cfg GreedyConfig) Option {
	return func(a *Aggregator) { a.greedy = cfg }
}

// SetGreedyStrategy switches the selection strategy for subsequent
// slots. Like every other Aggregator method it must be called by the
// goroutine owning the aggregator (the engine's loop when wrapped in an
// Engine — see Engine.SetGreedyStrategy).
func (a *Aggregator) SetGreedyStrategy(s Strategy) { a.greedy.Strategy = s }

// GreedyStrategy returns the configured selection strategy.
func (a *Aggregator) GreedyStrategy() Strategy { return a.greedy.Strategy }

// SelectionStats returns the cumulative selection instrumentation over
// all executed slots: valuation calls made vs the exhaustive-scan
// equivalent, lazy-heap re-evaluations and non-submodular fallbacks.
func (a *Aggregator) SelectionStats() SelectionStats { return a.selStats }

// NewAggregator creates an aggregator over a world.
func NewAggregator(world *World, opts ...Option) *Aggregator {
	a := &Aggregator{world: world}
	for _, o := range opts {
		o(a)
	}
	return a
}

// NextSlot returns the slot number the next RunSlot call will execute.
func (a *Aggregator) NextSlot() int { return a.world.Fleet.Slot() + 1 }

// SubmitPoint submits a single-sensor point query for the next slot with
// the world's dmax and the evaluation's theta_min.
func (a *Aggregator) SubmitPoint(id string, loc Point, budget float64) *PointQuery {
	q := query.NewPoint(id, loc, budget, a.world.DMax)
	a.points = append(a.points, q)
	return q
}

// SubmitMultiPoint submits a multiple-sensor point query asking for k
// redundant readings.
func (a *Aggregator) SubmitMultiPoint(id string, loc Point, budget float64, k int) *MultiPointQuery {
	q := query.NewMultiPoint(id, loc, budget, a.world.DMax, k)
	a.extra = append(a.extra, q)
	return q
}

// SubmitAggregate submits a spatial aggregate query over a region; the
// sensing range defaults to the world's dmax.
func (a *Aggregator) SubmitAggregate(id string, region Rect, budget float64) *AggregateQuery {
	q := query.NewAggregate(id, region, budget, a.world.DMax, a.world.Grid)
	a.aggs = append(a.aggs, q)
	return q
}

// SubmitTrajectory submits a query over a trajectory.
func (a *Aggregator) SubmitTrajectory(id string, tr Trajectory, budget float64) *TrajectoryQuery {
	q := query.NewTrajectory(id, tr, budget, a.world.DMax)
	a.extra = append(a.extra, q)
	return q
}

// SubmitLocationMonitoring submits a continuous location-monitoring query
// running from the next slot for `duration` slots; desired sampling times
// are chosen from the location's history ([19]); the budget should scale
// with the duration.
func (a *Aggregator) SubmitLocationMonitoring(id string, loc Point, duration int, budget float64, samples int) *LocationMonitoringQuery {
	start := a.NextSlot()
	hist := a.world.History(loc, start+duration+1)
	q := query.NewLocationMonitoring(id, loc, start, start+duration-1, budget, a.world.DMax, hist, samples)
	a.locMon = append(a.locMon, q)
	return q
}

// SubmitRegionMonitoring submits a continuous region-monitoring query; it
// requires a world with a learned GP model (NewIntelLabWorld provides
// one).
func (a *Aggregator) SubmitRegionMonitoring(id string, region Rect, duration int, budget float64) (*RegionMonitoringQuery, error) {
	if a.world.GPModel == nil {
		return nil, fmt.Errorf("ps: world %q has no GP phenomenon model; region monitoring needs one", a.world.Name)
	}
	start := a.NextSlot()
	q := query.NewRegionMonitoring(id, region, start, start+duration-1, budget, a.world.GPModel, a.world.Grid)
	a.regMon = append(a.regMon, q)
	return q, nil
}

// SubmitEventDetection submits a continuous event-detection query (the
// §2.3 extension): redundant sampling every slot, notification when the
// phenomenon exceeds threshold with the requested confidence.
func (a *Aggregator) SubmitEventDetection(id string, loc Point, duration int, threshold, confidence, budgetPerSlot float64) *EventDetectionQuery {
	start := a.NextSlot()
	q := query.NewEventDetection(id, loc, start, start+duration-1, threshold, confidence, budgetPerSlot, a.world.DMax)
	a.events = append(a.events, q)
	return q
}

// SubmitRegionEvent submits a continuous region event-detection query
// (§2.3's Q4 as an extension): every slot a spatial-aggregate probe is
// scheduled and the quality-weighted regional average is tested against
// the threshold, with confidence scaled by achieved coverage.
func (a *Aggregator) SubmitRegionEvent(id string, region Rect, duration int, threshold, confidence, budgetPerSlot float64) *RegionEventQuery {
	start := a.NextSlot()
	q := query.NewRegionEvent(id, region, start, start+duration-1, threshold, confidence, budgetPerSlot, a.world.DMax, a.world.Grid)
	a.regEvents = append(a.regEvents, q)
	return q
}

// EventNotification reports one event-detection evaluation.
type EventNotification struct {
	QueryID    string
	Slot       int
	Detected   bool
	Confidence float64
	// Reading is the quality-weighted mean of the fused readings.
	Reading float64
}

// SlotReport summarizes one executed time slot.
type SlotReport struct {
	Slot        int
	Welfare     float64
	TotalCost   float64
	SensorsUsed int
	// Per-type values obtained this slot.
	PointValue  float64
	AggValue    float64
	LocMonValue float64
	RegMonValue float64
	ExtraValue  float64
	// Events lists event-detection evaluations of this slot.
	Events []EventNotification
	// Selection instruments the slot's greedy sensor selection (zero for
	// pipelines that bypass the greedy core, e.g. baseline or pure point
	// slots under a non-greedy scheduling policy).
	Selection SelectionStats

	values   map[string]float64
	payments map[string]float64
	// answered marks continuous queries whose probe was satisfied this
	// slot even when the valuation delta rounds to zero (e.g. a sample
	// that repeats an already-achieved quality still counts as served).
	answered map[string]bool
}

// Answered reports whether the query was served this slot: it obtained
// positive value, or (for continuous queries) a satisfied sample.
func (r *SlotReport) Answered(id string) bool { return r.values[id] > 0 || r.answered[id] }

// Value returns the valuation the query obtained this slot.
func (r *SlotReport) Value(id string) float64 { return r.values[id] }

// Payment returns what the query paid this slot.
func (r *SlotReport) Payment(id string) float64 { return r.payments[id] }

// RunSlot advances the world one time slot and executes the pending and
// continuous queries: pure point workloads use the configured scheduling
// policy directly (§3.1); anything else goes through the Algorithm 5
// query-mix pipeline. Selected sensors are committed (lifetime, privacy
// history), one-shot queries are consumed, and expired continuous queries
// are retired.
func (a *Aggregator) RunSlot() *SlotReport {
	offers := a.world.Fleet.Step()
	t := a.world.Fleet.Slot()
	report := &SlotReport{
		Slot:     t,
		values:   make(map[string]float64),
		payments: make(map[string]float64),
		answered: make(map[string]bool),
	}

	// Materialize event-detection probes.
	probes := make(map[string]*EventDetectionQuery)
	regProbes := make(map[string]*RegionEventQuery)
	extra := append([]query.Query(nil), a.extra...)
	for _, e := range a.events {
		if mp, ok := e.CreatePointQuery(t); ok {
			extra = append(extra, mp)
			probes[mp.QID()] = e
		}
	}
	for _, e := range a.regEvents {
		if agg, ok := e.CreateProbe(t); ok {
			extra = append(extra, agg)
			regProbes[agg.QID()] = e
		}
	}

	pureMix := len(a.aggs) > 0 || len(extra) > 0 ||
		len(activeLocMon(a.locMon, t)) > 0 || len(activeRegMon(a.regMon, t)) > 0

	if !pureMix {
		// Point-only slot: honor the configured scheduling policy.
		res := a.sched.solver(a.greedy)(a.points, offers)
		a.world.Fleet.Commit(res.Selected)
		a.ledger.RecordPointResult(res)
		report.Welfare = res.Welfare()
		report.TotalCost = res.TotalCost
		report.SensorsUsed = len(res.Selected)
		report.PointValue = res.TotalValue
		report.Selection = res.Stats
		for qid, o := range res.Outcomes {
			report.values[qid] = o.Value
			report.payments[qid] = o.Payment
		}
	} else {
		mq := core.MixQueries{
			Aggregates: a.aggs,
			Points:     a.points,
			LocMon:     a.locMon,
			RegMon:     a.regMon,
			Extra:      extra,
		}
		var res *core.MixSlotResult
		if a.baseline {
			res = core.RunMixSlotBaseline(t, mq, offers)
		} else {
			res = core.RunMixSlotWith(t, mq, offers, a.greedy)
		}
		a.world.Fleet.Commit(res.Multi.Selected)
		a.ledger.RecordMixResult(res)
		report.Selection = res.Multi.Stats
		report.Welfare = res.Welfare()
		report.TotalCost = res.TotalCost
		report.SensorsUsed = len(res.Multi.Selected)
		report.PointValue = res.PointValue
		report.AggValue = res.AggValue
		report.LocMonValue = res.LocMonValue
		report.RegMonValue = res.RegMonValue
		report.ExtraValue = res.ExtraValue
		for qid, out := range res.Multi.Outcomes {
			if out.Value > 0 {
				report.values[qid] = out.Value
				report.payments[qid] = out.TotalPayment()
			}
		}
		for qid, o := range res.PointOutcomes {
			report.values[qid] = o.Value
			report.payments[qid] = o.Payment
		}
		// Continuous queries report under their own ID: Algorithm 5's
		// generated probes carry derived IDs, so without this projection
		// Answered/Value/Payment would never see monitoring results.
		for qid, co := range res.Continuous {
			if co.ValueDelta > 0 {
				report.values[qid] = co.ValueDelta
			}
			if co.Payment > 0 {
				report.payments[qid] += co.Payment
			}
			if co.Satisfied {
				report.answered[qid] = true
			}
		}

		// Evaluate region-event probes: readings plus achieved coverage.
		for pid, e := range regProbes {
			out := res.Multi.Outcomes[pid]
			if out == nil || len(out.Sensors) == 0 {
				continue
			}
			if out.Value > 0 {
				report.values[e.ID] += out.Value
				report.payments[e.ID] += out.TotalPayment()
			}
			var vals, thetas []float64
			var centers []Point
			for _, s := range out.Sensors {
				th := (1 - s.Inaccuracy) * s.Trust
				if th <= 0 {
					continue
				}
				vals = append(vals, a.world.ReadingAt(s.Pos, t))
				thetas = append(thetas, th)
				centers = append(centers, s.Pos)
			}
			coverage := a.world.Grid.CoverageFraction(e.Region, centers, e.SensingRange)
			detected, conf, avg := e.Evaluate(vals, thetas, coverage)
			report.Events = append(report.Events, EventNotification{
				QueryID: e.ID, Slot: t, Detected: detected, Confidence: conf, Reading: avg,
			})
		}

		// Evaluate event probes on the acquired readings.
		for pid, e := range probes {
			out := res.Multi.Outcomes[pid]
			if out == nil || len(out.Sensors) == 0 {
				continue
			}
			if out.Value > 0 {
				report.values[e.ID] += out.Value
				report.payments[e.ID] += out.TotalPayment()
			}
			var vals, thetas []float64
			var wsum, wv float64
			for _, s := range out.Sensors {
				th := s.Quality(e.Loc, e.DMax)
				if th <= 0 {
					continue
				}
				v := a.world.ReadingAt(s.Pos, t)
				vals = append(vals, v)
				thetas = append(thetas, th)
				wsum += th
				wv += th * v
			}
			detected, conf := e.Evaluate(vals, thetas)
			n := EventNotification{QueryID: e.ID, Slot: t, Detected: detected, Confidence: conf}
			if wsum > 0 {
				n.Reading = wv / wsum
			}
			report.Events = append(report.Events, n)
		}
	}

	a.selStats.Accumulate(report.Selection)

	// One-shot queries are consumed; expired continuous queries retire.
	a.points = nil
	a.aggs = nil
	a.extra = nil
	a.locMon = pruneLocMon(a.locMon, t)
	a.regMon = pruneRegMon(a.regMon, t)
	a.events = pruneEvents(a.events, t)
	a.regEvents = pruneRegionEvents(a.regEvents, t)
	return report
}

func activeLocMon(qs []*LocationMonitoringQuery, t int) []*LocationMonitoringQuery {
	var out []*LocationMonitoringQuery
	for _, q := range qs {
		if q.Active(t) {
			out = append(out, q)
		}
	}
	return out
}

func activeRegMon(qs []*RegionMonitoringQuery, t int) []*RegionMonitoringQuery {
	var out []*RegionMonitoringQuery
	for _, q := range qs {
		if q.Active(t) {
			out = append(out, q)
		}
	}
	return out
}

func pruneLocMon(qs []*LocationMonitoringQuery, t int) []*LocationMonitoringQuery {
	kept := qs[:0]
	for _, q := range qs {
		if q.End > t {
			kept = append(kept, q)
		}
	}
	return kept
}

func pruneRegMon(qs []*RegionMonitoringQuery, t int) []*RegionMonitoringQuery {
	kept := qs[:0]
	for _, q := range qs {
		if q.End > t {
			kept = append(kept, q)
		}
	}
	return kept
}

func pruneEvents(qs []*EventDetectionQuery, t int) []*EventDetectionQuery {
	kept := qs[:0]
	for _, q := range qs {
		if q.End > t {
			kept = append(kept, q)
		}
	}
	return kept
}

func pruneRegionEvents(qs []*RegionEventQuery, t int) []*RegionEventQuery {
	kept := qs[:0]
	for _, q := range qs {
		if q.End > t {
			kept = append(kept, q)
		}
	}
	return kept
}
