package ps

import (
	"math"
	"testing"
)

func TestAggregatorPointLifecycle(t *testing.T) {
	world := NewRWMWorld(1, 200, SensorConfig{})
	agg := NewAggregator(world)
	for i := 0; i < 20; i++ {
		agg.SubmitPoint(ids("p", i), Pt(30+float64(i%5), 30+float64(i/5)), 20)
	}
	rep := agg.RunSlot()
	if rep.Slot != 0 {
		t.Errorf("slot = %d", rep.Slot)
	}
	if rep.Welfare <= 0 {
		t.Fatalf("welfare = %v", rep.Welfare)
	}
	answered := 0
	for i := 0; i < 20; i++ {
		id := ids("p", i)
		if rep.Answered(id) {
			answered++
			if rep.Payment(id) >= rep.Value(id) {
				t.Errorf("query %s pays %v >= value %v", id, rep.Payment(id), rep.Value(id))
			}
		}
	}
	if answered == 0 {
		t.Fatal("no queries answered in a dense scenario")
	}
	// One-shot queries are consumed: next slot has no queries.
	rep2 := agg.RunSlot()
	if rep2.Welfare != 0 {
		t.Errorf("second slot welfare = %v, want 0 (no queries)", rep2.Welfare)
	}
}

func ids(prefix string, i int) string {
	return prefix + string(rune('a'+i%26)) + string(rune('a'+(i/26)%26))
}

func TestAggregatorSchedulingPolicies(t *testing.T) {
	welfare := map[Scheduling]float64{}
	for _, s := range []Scheduling{SchedulingOptimal, SchedulingLocalSearch, SchedulingBaseline, SchedulingEgalitarian} {
		world := NewRWMWorld(2, 200, SensorConfig{})
		agg := NewAggregator(world, WithScheduling(s))
		var total float64
		for slot := 0; slot < 5; slot++ {
			for i := 0; i < 100; i++ {
				agg.SubmitPoint(ids("q", i), Pt(15+float64((i*7)%50), 15+float64((i*13)%50)), 15)
			}
			total += agg.RunSlot().Welfare
		}
		welfare[s] = total
	}
	if welfare[SchedulingOptimal] < welfare[SchedulingLocalSearch]-1e-6 {
		t.Errorf("optimal %v < local search %v", welfare[SchedulingOptimal], welfare[SchedulingLocalSearch])
	}
	if welfare[SchedulingLocalSearch] <= welfare[SchedulingBaseline] {
		t.Errorf("local search %v <= baseline %v", welfare[SchedulingLocalSearch], welfare[SchedulingBaseline])
	}
}

func TestSchedulingString(t *testing.T) {
	tests := []struct {
		s    Scheduling
		want string
	}{
		{SchedulingOptimal, "Optimal"},
		{SchedulingLocalSearch, "LocalSearch"},
		{SchedulingBaseline, "Baseline"},
		{SchedulingEgalitarian, "Egalitarian"},
		{SchedulingGreedy, "Greedy"},
		{Scheduling(42), "Unknown"},
		{Scheduling(-1), "Unknown"},
	}
	for _, tt := range tests {
		if got := tt.s.String(); got != tt.want {
			t.Errorf("Scheduling(%d).String() = %q, want %q", int(tt.s), got, tt.want)
		}
	}
}

func TestAggregatorMixedWorkload(t *testing.T) {
	world := NewRNCWorld(3, SensorConfig{})
	agg := NewAggregator(world)
	agg.SubmitAggregate("agg1", NewRect(80, 110, 120, 150), 400)
	agg.SubmitTrajectory("traj1", Trajectory{Waypoints: []Point{Pt(80, 120), Pt(140, 120)}}, 200)
	agg.SubmitMultiPoint("mp1", Pt(100, 130), 60, 2)
	for i := 0; i < 50; i++ {
		agg.SubmitPoint(ids("p", i), Pt(75+float64((i*3)%90), 105+float64((i*7)%90)), 15)
	}
	agg.SubmitLocationMonitoring("lm1", Pt(110, 140), 10, 100, 3)
	rep := agg.RunSlot()
	if rep.Welfare <= 0 {
		t.Fatalf("mixed welfare = %v", rep.Welfare)
	}
	if rep.AggValue <= 0 {
		t.Error("aggregate obtained no value")
	}
	if rep.SensorsUsed == 0 {
		t.Error("no sensors used")
	}
	// Continuous query persists across slots.
	rep2 := agg.RunSlot()
	_ = rep2
	if len(agg.locMon) == 0 {
		t.Error("location monitoring query retired too early")
	}
}

func TestAggregatorRegionMonitoringRequiresModel(t *testing.T) {
	world := NewRNCWorld(4, SensorConfig{})
	agg := NewAggregator(world)
	if _, err := agg.SubmitRegionMonitoring("rm1", NewRect(80, 110, 100, 130), 10, 100); err == nil {
		t.Fatal("expected error on world without GP model")
	}
	lab := NewIntelLabWorld(4, SensorConfig{})
	agg2 := NewAggregator(lab)
	q, err := agg2.SubmitRegionMonitoring("rm1", NewRect(2, 2, 12, 10), 10, 80)
	if err != nil {
		t.Fatal(err)
	}
	var gained float64
	for slot := 0; slot < 10; slot++ {
		agg2.RunSlot()
	}
	gained = q.Value()
	if gained <= 0 {
		t.Error("region monitoring obtained no value")
	}
}

func TestAggregatorEventDetection(t *testing.T) {
	lab := NewIntelLabWorld(5, SensorConfig{})
	agg := NewAggregator(lab)
	// Threshold below the field's mean so crossings are plausible;
	// generous budget.
	agg.SubmitEventDetection("ev1", Pt(10, 7), 10, 10, 0.8, 50)
	sawEvaluation := false
	for slot := 0; slot < 10; slot++ {
		rep := agg.RunSlot()
		for _, n := range rep.Events {
			sawEvaluation = true
			if n.QueryID != "ev1" {
				t.Errorf("notification for wrong query: %+v", n)
			}
			if n.Confidence < 0 || n.Confidence > 1 {
				t.Errorf("confidence out of range: %v", n.Confidence)
			}
		}
	}
	if !sawEvaluation {
		t.Error("event query never evaluated over 10 slots")
	}
}

func TestAggregatorBaselinePipelineComparable(t *testing.T) {
	run := func(opts ...Option) float64 {
		world := NewRNCWorld(6, SensorConfig{})
		agg := NewAggregator(world, opts...)
		var total float64
		for slot := 0; slot < 5; slot++ {
			agg.SubmitAggregate("agg", NewRect(80, 110, 130, 160), 500)
			for i := 0; i < 60; i++ {
				agg.SubmitPoint(ids("p", i), Pt(75+float64((i*3)%90), 105+float64((i*7)%90)), 15)
			}
			total += agg.RunSlot().Welfare
		}
		return total
	}
	smart := run()
	base := run(WithBaselinePipeline())
	if smart <= base {
		t.Errorf("algorithm 5 pipeline %v not above baseline %v", smart, base)
	}
}

func TestAggregatorNextSlot(t *testing.T) {
	world := NewRWMWorld(7, 20, SensorConfig{})
	agg := NewAggregator(world)
	if agg.NextSlot() != 0 {
		t.Errorf("NextSlot = %d want 0", agg.NextSlot())
	}
	agg.RunSlot()
	if agg.NextSlot() != 1 {
		t.Errorf("NextSlot = %d want 1", agg.NextSlot())
	}
}

func TestReportAccessorsOnEmptySlot(t *testing.T) {
	world := NewRWMWorld(8, 10, SensorConfig{})
	agg := NewAggregator(world)
	rep := agg.RunSlot()
	if rep.Answered("nope") || rep.Value("nope") != 0 || rep.Payment("nope") != 0 {
		t.Error("empty report accessors broken")
	}
	if math.IsNaN(rep.Welfare) {
		t.Error("NaN welfare")
	}
}

func TestAggregatorLedgerAccounting(t *testing.T) {
	world := NewRWMWorld(11, 200, SensorConfig{})
	agg := NewAggregator(world)
	for slot := 0; slot < 4; slot++ {
		for i := 0; i < 80; i++ {
			agg.SubmitPoint(ids("q", i), Pt(15+float64((i*31+slot*3)%50), 15+float64((i*17+slot*5)%50)), 18)
		}
		agg.RunSlot()
	}
	l := agg.Ledger()
	if l.Slots() != 4 {
		t.Errorf("ledger slots = %d", l.Slots())
	}
	if err := l.CheckBalance(1e-6); err != nil {
		t.Fatal(err)
	}
	if l.TotalWelfare() <= 0 {
		t.Error("ledger welfare should be positive")
	}
	if top := l.TopEarners(5); len(top) == 0 || top[0].Earned <= 0 {
		t.Error("no sensor earnings recorded")
	}
	if g := l.GiniOfEarnings(); g < 0 || g > 1 {
		t.Errorf("gini = %v", g)
	}
	// Mixed pipeline also books into the ledger.
	agg.SubmitAggregate("agg-l", NewRect(20, 20, 45, 45), 400)
	agg.RunSlot()
	if l.Slots() != 5 {
		t.Errorf("mix slot not recorded: %d", l.Slots())
	}
	if err := l.CheckBalance(1e-6); err != nil {
		t.Fatal(err)
	}
}

func TestAggregatorRegionEvent(t *testing.T) {
	lab := NewIntelLabWorld(13, SensorConfig{})
	agg := NewAggregator(lab)
	// Threshold below the field mean (20) so the regional average should
	// exceed it whenever coverage and trust suffice.
	q := agg.SubmitRegionEvent("re1", NewRect(2, 2, 14, 11), 12, 15.0, 0.5, 150)
	if q.SensingRange != lab.DMax {
		t.Errorf("probe sensing range = %v want world dmax", q.SensingRange)
	}
	evaluations, detections := 0, 0
	for slot := 0; slot < 12; slot++ {
		rep := agg.RunSlot()
		for _, n := range rep.Events {
			if n.QueryID != "re1" {
				continue
			}
			evaluations++
			if n.Confidence < 0 || n.Confidence > 1 {
				t.Errorf("confidence %v out of range", n.Confidence)
			}
			if n.Detected {
				detections++
				if n.Reading <= 15 {
					t.Errorf("detected with reading %v <= threshold", n.Reading)
				}
			}
		}
	}
	if evaluations == 0 {
		t.Fatal("region event never evaluated")
	}
	if detections == 0 {
		t.Log("no detections fired (acceptable: depends on fleet coverage), evaluations:", evaluations)
	}
	// Query retires after its window.
	if len(agg.regEvents) != 0 {
		t.Error("region event query not retired")
	}
}
