package ps

import (
	"errors"
	"fmt"
	"testing"
	"time"
)

// TestEngineShedOldest: under WithShedOldest a full ingest queue evicts
// the OLDEST queued submission to admit the newest — fresh work wins —
// and the evicted submitter observes a terminal ErrShed verdict that
// still satisfies errors.Is against ErrQueueFull. The engine is left
// unstarted while submitting so the queue fills deterministically.
func TestEngineShedOldest(t *testing.T) {
	world := NewRWMWorld(1, 100, SensorConfig{})
	eng := NewEngine(NewAggregator(world), WithQueueSize(2), WithShedOldest())

	handles := make([]*QueryHandle, 0, 4)
	for i := 1; i <= 4; i++ {
		h, err := eng.Submit(PointSpec{ID: fmt.Sprintf("shed-%d", i), Loc: Pt(30, 30), Budget: 15})
		if err != nil {
			t.Fatalf("Submit shed-%d: %v", i, err)
		}
		handles = append(handles, h)
	}

	// s1 and s2 — the oldest — were evicted to admit s3 and s4, in order.
	for i := range 2 {
		for range handles[i].Events() {
			// Drain: a shed submission's stream closes without events.
		}
		err := handles[i].Err()
		if !errors.Is(err, ErrShed) {
			t.Fatalf("shed-%d: Err() = %v, want ErrShed", i+1, err)
		}
		if !errors.Is(err, ErrQueueFull) {
			t.Fatalf("shed-%d: ErrShed does not satisfy errors.Is(_, ErrQueueFull): %v", i+1, err)
		}
	}

	// The survivors run to completion once the loop starts. Wait for the
	// tiny queue to drain first: RunSlots itself goes through the same
	// queue, and under shed-oldest it would evict a survivor still
	// waiting there.
	eng.Start()
	defer eng.Stop()
	deadline := time.Now().Add(5 * time.Second)
	for {
		if d, _ := eng.QueueStats(); d == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("ingest queue never drained after Start")
		}
		time.Sleep(time.Millisecond)
	}
	if err := eng.RunSlots(1); err != nil {
		t.Fatalf("RunSlots: %v", err)
	}
	for i := 2; i < 4; i++ {
		var sawFinal bool
		for ev := range handles[i].Events() {
			if ev.Type == EventFinal {
				sawFinal = true
			}
		}
		if !sawFinal {
			t.Errorf("shed-%d: no final event; Err() = %v", i+1, handles[i].Err())
		}
	}

	m := eng.Metrics()
	if m.QueriesShed != 2 {
		t.Errorf("QueriesShed = %d, want 2", m.QueriesShed)
	}
	if m.QueriesSubmitted != 2 {
		t.Errorf("QueriesSubmitted = %d, want 2 (the survivors)", m.QueriesSubmitted)
	}

	// A fresh submission against the idle started engine is admitted
	// without shedding anything.
	h, err := eng.Submit(PointSpec{ID: "shed-5", Loc: Pt(30, 30), Budget: 15})
	if err != nil {
		t.Fatalf("Submit shed-5: %v", err)
	}
	if err := eng.RunSlots(1); err != nil {
		t.Fatalf("RunSlots: %v", err)
	}
	for range h.Events() {
	}
	if err := h.Err(); err != nil {
		t.Fatalf("shed-5: Err() = %v, want nil", err)
	}
	if got := eng.Metrics().QueriesShed; got != 2 {
		t.Errorf("QueriesShed after idle submit = %d, want still 2", got)
	}
}

// TestEngineQueueStats exposes the live ingest-queue depth/capacity the
// serve layer's high-water admission check reads.
func TestEngineQueueStats(t *testing.T) {
	world := NewRWMWorld(1, 100, SensorConfig{})
	eng := NewEngine(NewAggregator(world), WithQueueSize(8))

	if _, err := eng.Submit(PointSpec{ID: "qs-1", Loc: Pt(30, 30), Budget: 15}); err != nil {
		t.Fatalf("Submit: %v", err)
	}
	depth, capacity := eng.QueueStats()
	if capacity != 8 {
		t.Errorf("capacity = %d, want 8", capacity)
	}
	if depth != 1 {
		t.Errorf("depth = %d, want 1 (engine not started, nothing drained)", depth)
	}

	eng.Start()
	defer eng.Stop()
	if err := eng.RunSlots(1); err != nil {
		t.Fatalf("RunSlots: %v", err)
	}
	if depth, _ := eng.QueueStats(); depth != 0 {
		t.Errorf("depth after drain = %d, want 0", depth)
	}
}
