package ps

import (
	"repro/internal/core"
	"repro/internal/datasets"
	"repro/internal/geo"
	"repro/internal/query"
	"repro/internal/sensornet"
)

// Re-exported building blocks. The concrete behaviour lives in the
// internal packages; these aliases are the supported public surface.
type (
	// Point is a planar location.
	Point = geo.Point
	// Rect is an axis-aligned rectangle.
	Rect = geo.Rect
	// Trajectory is a polyline of waypoints.
	Trajectory = geo.Trajectory
	// World is a ready-to-simulate participatory-sensing environment.
	World = datasets.World
	// SensorConfig controls per-sensor parameters (lifetime, privacy
	// sensitivity, energy cost model, trust distribution).
	SensorConfig = datasets.SensorConfig
	// Sensor is a participant's sensing device.
	Sensor = sensornet.Sensor
	// PrivacyLevel is a privacy sensitivity level (PSL).
	PrivacyLevel = sensornet.PrivacyLevel

	// PointQuery asks for the value of a phenomenon at one location (Eq. 3).
	PointQuery = query.Point
	// MultiPointQuery asks for several redundant readings at one location.
	MultiPointQuery = query.MultiPoint
	// AggregateQuery asks for an aggregate over a region (Eq. 5).
	AggregateQuery = query.Aggregate
	// TrajectoryQuery asks for an aggregate along a trajectory (§2.2.3).
	TrajectoryQuery = query.Trajectory
	// LocationMonitoringQuery continuously monitors one location (Eqs. 16-17).
	LocationMonitoringQuery = query.LocationMonitoring
	// RegionMonitoringQuery continuously monitors a region (Eq. 7).
	RegionMonitoringQuery = query.RegionMonitoring
	// EventDetectionQuery watches for threshold crossings with a
	// confidence requirement (§2.3 extension).
	EventDetectionQuery = query.EventDetection
	// RegionEventQuery watches a region for its average crossing a
	// threshold with a confidence requirement (§2.3's Q4, extension).
	RegionEventQuery = query.RegionEvent
)

// Selection-strategy surface of the greedy core (Algorithm 1). All
// strategies return bit-identical selections, payments and welfare; they
// differ only in how much work they do per slot.
type (
	// Strategy selects the candidate-evaluation algorithm of the greedy
	// selection core.
	Strategy = core.Strategy
	// GreedyConfig tunes workers, sharding threshold and Strategy.
	GreedyConfig = core.GreedyConfig
	// SelectionStats counts valuation calls, lazy-heap re-evaluations
	// and non-submodular fallbacks of one or many selection runs.
	SelectionStats = core.SelectionStats
)

// The candidate-evaluation strategies.
const (
	// StrategyAuto is the historical default: serial below the sharding
	// threshold, sharded above it.
	StrategyAuto = core.StrategyAuto
	// StrategySerial scans every remaining sensor each round.
	StrategySerial = core.StrategySerial
	// StrategySharded splits the scan across GOMAXPROCS workers.
	StrategySharded = core.StrategySharded
	// StrategyLazy is the CELF-style lazy-greedy fast path.
	StrategyLazy = core.StrategyLazy
	// StrategyLazySharded is StrategyLazy with sharded bound rebuilds.
	StrategyLazySharded = core.StrategyLazySharded
)

// ParseStrategy parses a strategy name ("auto", "serial", "sharded",
// "lazy", "lazy-sharded") as accepted by the CLIs.
func ParseStrategy(s string) (Strategy, error) { return core.ParseStrategy(s) }

// Pt is shorthand for a Point.
func Pt(x, y float64) Point { return geo.Pt(x, y) }

// NewGridPartition builds a K-shard geographic partition of a rectangle —
// the routing structure of the sharded execution layer (see
// ShardedAggregator in shard.go). NewShardedAggregator builds one over
// the world's working region automatically; this constructor is for
// callers that want to inspect routing (GridPartition.ShardOf/ShardsOf)
// up front.
func NewGridPartition(bounds Rect, shards int) GridPartition {
	return geo.NewGridPartition(bounds, shards)
}

// NewRect builds a rectangle from two opposite corners in any order.
func NewRect(x0, y0, x1, y1 float64) Rect { return geo.NewRect(x0, y0, x1, y1) }

// NewRWMWorld builds the paper's random-waypoint world (§4.2): n sensors
// (200 in the evaluation) on an 80x80 region with a 50x50 working
// subregion and dmax = 5.
func NewRWMWorld(seed int64, n int, cfg SensorConfig) *World {
	return datasets.NewRWM(seed, n, cfg)
}

// NewRNCWorld builds the RNC-like world (§4.2): 635 sensors on a 237x300
// region with a 100x100 working subregion averaging ≈120 sensors per slot
// and dmax = 10.
func NewRNCWorld(seed int64, cfg SensorConfig) *World {
	return datasets.NewRNC(seed, cfg)
}

// NewIntelLabWorld builds the Intel-lab-like world (§4.6): a 20x15 grid
// with a correlated phenomenon, a learned GP model and 30 mobile sensors.
func NewIntelLabWorld(seed int64, cfg SensorConfig) *World {
	return datasets.NewIntelLab(seed, cfg)
}

// Scheduling selects the single-sensor point scheduling policy.
type Scheduling int

// The scheduling policies of §3.1.
const (
	// SchedulingOptimal solves the BILP of problem (9) exactly (warm
	// started by local search).
	SchedulingOptimal Scheduling = iota
	// SchedulingLocalSearch is the 1/3-approximate local search.
	SchedulingLocalSearch
	// SchedulingBaseline is the evaluation's sequential baseline.
	SchedulingBaseline
	// SchedulingEgalitarian maximizes the number of users with positive
	// utility (§2's alternative objective).
	SchedulingEgalitarian
	// SchedulingGreedy schedules point-only slots through Algorithm 1's
	// greedy pass, honoring the aggregator's selection strategy
	// (WithGreedyStrategy) — the only policy whose point-only slots
	// benefit from the lazy fast path and report selection stats.
	SchedulingGreedy
)

func (s Scheduling) solver(cfg core.GreedyConfig) core.PointSolver {
	switch s {
	case SchedulingLocalSearch:
		return core.LocalSearchPoint(core.DefaultLocalSearchEpsilon)
	case SchedulingBaseline:
		return core.BaselinePoint()
	case SchedulingEgalitarian:
		return core.EgalitarianPoint()
	case SchedulingGreedy:
		return core.GreedyPointWith(cfg)
	default:
		return core.OptimalPoint(core.OptimalOptions{
			WarmStartWithLocalSearch: true,
			MaxNodesPerComponent:     200_000,
		})
	}
}

// String implements fmt.Stringer.
func (s Scheduling) String() string {
	switch s {
	case SchedulingOptimal:
		return "Optimal"
	case SchedulingLocalSearch:
		return "LocalSearch"
	case SchedulingBaseline:
		return "Baseline"
	case SchedulingEgalitarian:
		return "Egalitarian"
	case SchedulingGreedy:
		return "Greedy"
	default:
		return "Unknown"
	}
}
