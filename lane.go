package ps

import (
	"errors"
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/geo"
	"repro/internal/sensornet"
)

// Errors surfaced by the clustered (multi-node) execution layer.
var (
	// ErrNodeUnavailable reports that a cluster shard node could not be
	// reached (dead, unreachable, or timed out mid-slot). Queries resident
	// on the lost lane fail their slot with this sentinel rather than
	// corrupting welfare; it crosses the network as wire.CodeNodeUnavailable
	// so errors.Is keeps working on the client side.
	ErrNodeUnavailable = errors.New("ps: cluster node unavailable")
	// ErrStaleEpoch reports a cluster message carrying an epoch older than
	// the current one — a rejoining node answering for a slot generation
	// that has since been fenced off. Stale partials are discarded, never
	// merged.
	ErrStaleEpoch = errors.New("ps: stale cluster epoch")
)

// Offer is a sensor's per-slot announcement (position is in Sensor.Pos).
type Offer = core.Offer

// SelectionStep is one committed sensor of a lane's greedy trace; the
// reconciliation pass replays the global commit interleaving from these.
type SelectionStep = core.SelectionStep

// ContinuousOutcome is one continuous query's slot outcome.
type ContinuousOutcome = core.ContinuousOutcome

// LaneRunner is the pluggable execution seam of the sharded layer: one
// shard lane's life cycle as the coordinator drives it. The in-process
// implementation wraps a per-shard Aggregator directly; the cluster
// package's network lane forwards each call to a remote shard node over
// the wire and returns the node's partial. Implementations are called
// only from the goroutine owning the ShardedAggregator (lane fan-out
// inside RunSlot is managed by the coordinator itself).
type LaneRunner interface {
	// Submit materializes an already-validated spec on the lane, binding
	// its window to the lane's next slot.
	Submit(spec Spec) (SubmittedQuery, error)
	// Cancel withdraws a query by ID; it reports whether anything was
	// removed.
	Cancel(id string) bool
	// RunLane executes slot t's selection over the offers routed to the
	// lane and returns the partial result. Remote lanes ignore the offers
	// argument: a shard node holds a deterministic replica of the world
	// and computes the identical offer slice itself.
	RunLane(t int, offers []Offer) (*LanePartial, error)
	// FinishSlot completes slot t after reconciliation: selectedIDs is the
	// slot's global commit (every lane and the spanning pass), in replay
	// order. Local lanes retire consumed queries; remote lanes propagate
	// the commit so the node's world replica steps in lockstep.
	FinishSlot(t int, selectedIDs []int) error
	// SetStrategy switches the lane's candidate-evaluation strategy.
	SetStrategy(s Strategy)
}

// LaneError is one degraded lane of a slot: the shard index and the error
// that kept its partial out of the merge.
type LaneError struct {
	Shard int
	Err   error
}

// LaneOutcome is one query's outcome inside a LanePartial: the value it
// obtained and its per-sensor payments (the serializable projection of
// the greedy core's MultiOutcome).
type LaneOutcome struct {
	Value    float64         `json:"value"`
	Payments map[int]float64 `json:"payments,omitempty"`
}

// LanePartial is one lane's slot result in serializable form — everything
// the coordinator's reconciliation pass needs from a shard, whether the
// lane ran in-process or on a remote node. All floats are exact: JSON
// round-trips float64 bit-for-bit, so a partial that crossed the network
// merges into the same SlotReport an in-process lane would have produced.
type LanePartial struct {
	Slot    int `json:"slot"`
	Offers  int `json:"offers"`
	Queries int `json:"queries"`

	// SelectedIDs lists the committed sensors in selection order, aligned
	// index-for-index with Trace.
	SelectedIDs []int           `json:"selected_ids,omitempty"`
	Trace       []SelectionStep `json:"trace,omitempty"`

	// Outcomes, Continuous and Contributions carry the accounting inputs
	// (ledger booking and per-type value re-summation).
	Outcomes      map[string]LaneOutcome       `json:"outcomes,omitempty"`
	Continuous    map[string]ContinuousOutcome `json:"continuous,omitempty"`
	Contributions map[int]float64              `json:"contributions,omitempty"`

	TotalCost   float64 `json:"total_cost"`
	PointValue  float64 `json:"point_value"`
	AggValue    float64 `json:"agg_value"`
	LocMonValue float64 `json:"locmon_value"`
	RegMonValue float64 `json:"regmon_value"`
	ExtraValue  float64 `json:"extra_value"`
	Welfare     float64 `json:"welfare"`

	// Per-query report projection (SlotReport's values/payments/answered
	// restricted to the lane's resident queries).
	Values   map[string]float64 `json:"values,omitempty"`
	Payments map[string]float64 `json:"payments,omitempty"`
	Answered map[string]bool    `json:"answered,omitempty"`

	Events    []EventNotification `json:"events,omitempty"`
	Selection SelectionStats      `json:"selection"`

	// SelectMs is the lane's own selection wall time in milliseconds —
	// node-side compute for remote lanes, excluding the RPC.
	SelectMs float64 `json:"select_ms"`

	// exec is the in-process fast path: a partial produced by a local
	// lane keeps the original slotExec so reconciliation skips the
	// rebuild. Partials decoded off the wire leave it nil.
	exec *slotExec
}

// partialFromExec projects an executed selection pass into its
// serializable partial.
func partialFromExec(ex *slotExec, selectMs float64) *LanePartial {
	p := &LanePartial{
		Slot:        ex.report.Slot,
		Offers:      ex.report.Offers,
		Queries:     ex.queries,
		TotalCost:   ex.report.TotalCost,
		PointValue:  ex.report.PointValue,
		AggValue:    ex.report.AggValue,
		LocMonValue: ex.report.LocMonValue,
		RegMonValue: ex.report.RegMonValue,
		ExtraValue:  ex.report.ExtraValue,
		Welfare:     ex.report.Welfare,
		Values:      ex.report.values,
		Payments:    ex.report.payments,
		Answered:    ex.report.answered,
		Events:      ex.report.Events,
		Selection:   ex.report.Selection,
		SelectMs:    selectMs,
		exec:        ex,
	}
	if ex.mix != nil {
		p.SelectedIDs = make([]int, len(ex.mix.Multi.Selected))
		for i, s := range ex.mix.Multi.Selected {
			p.SelectedIDs[i] = s.ID
		}
		p.Trace = ex.mix.Multi.Trace
		p.Outcomes = make(map[string]LaneOutcome, len(ex.mix.Multi.Outcomes))
		for id, out := range ex.mix.Multi.Outcomes {
			p.Outcomes[id] = LaneOutcome{Value: out.Value, Payments: out.Payments}
		}
		p.Continuous = ex.mix.Continuous
		p.Contributions = ex.mix.Contributions
	}
	return p
}

// bind reconstructs the slotExec reconciliation works on. Partials from
// in-process lanes return their original exec; partials off the wire are
// rebuilt, resolving sensor IDs against the coordinator's own fleet (the
// node holds a replica of the same world, so IDs resolve 1:1). The
// rebuilt MultiOutcomes carry no Sensors slice — reconciliation and the
// ledger only read Value and Payments.
func (p *LanePartial) bind(byID map[int]*sensornet.Sensor) (*slotExec, error) {
	if p.exec != nil {
		return p.exec, nil
	}
	selected := make([]*sensornet.Sensor, len(p.SelectedIDs))
	for i, id := range p.SelectedIDs {
		s := byID[id]
		if s == nil {
			return nil, fmt.Errorf("ps: lane partial selects unknown sensor %d", id)
		}
		selected[i] = s
	}
	if len(p.Trace) != len(selected) {
		return nil, fmt.Errorf("ps: lane partial trace length %d does not match %d selected sensors",
			len(p.Trace), len(selected))
	}
	outcomes := make(map[string]*core.MultiOutcome, len(p.Outcomes))
	for id, out := range p.Outcomes {
		outcomes[id] = &core.MultiOutcome{Value: out.Value, Payments: out.Payments}
	}
	report := &SlotReport{
		Slot:        p.Slot,
		Welfare:     p.Welfare,
		TotalCost:   p.TotalCost,
		SensorsUsed: len(selected),
		Offers:      p.Offers,
		PointValue:  p.PointValue,
		AggValue:    p.AggValue,
		LocMonValue: p.LocMonValue,
		RegMonValue: p.RegMonValue,
		ExtraValue:  p.ExtraValue,
		Events:      p.Events,
		Selection:   p.Selection,
		values:      orEmpty(p.Values),
		payments:    orEmpty(p.Payments),
		answered:    orEmptyBool(p.Answered),
	}
	return &slotExec{
		report:   report,
		selected: selected,
		queries:  p.Queries,
		mix: &core.MixSlotResult{
			Multi: &core.MultiResult{
				Selected:  selected,
				TotalCost: p.TotalCost,
				Trace:     p.Trace,
				Outcomes:  outcomes,
				Stats:     p.Selection,
			},
			PointValue:    p.PointValue,
			AggValue:      p.AggValue,
			LocMonValue:   p.LocMonValue,
			RegMonValue:   p.RegMonValue,
			ExtraValue:    p.ExtraValue,
			Continuous:    p.Continuous,
			Contributions: p.Contributions,
			TotalCost:     p.TotalCost,
		},
	}, nil
}

func orEmpty(m map[string]float64) map[string]float64 {
	if m == nil {
		return map[string]float64{}
	}
	return m
}

func orEmptyBool(m map[string]bool) map[string]bool {
	if m == nil {
		return map[string]bool{}
	}
	return m
}

// localLane adapts a per-shard Aggregator to the LaneRunner seam: the
// in-process lane every ShardedAggregator starts with.
type localLane struct {
	a *Aggregator
}

func (l *localLane) Submit(spec Spec) (SubmittedQuery, error) {
	return spec.materialize(l.a)
}

func (l *localLane) Cancel(id string) bool { return l.a.CancelQuery(id) }

func (l *localLane) RunLane(t int, offers []Offer) (*LanePartial, error) {
	start := time.Now()
	ex := l.a.executeSlot(t, offers, true)
	ms := float64(time.Since(start).Nanoseconds()) / 1e6
	return partialFromExec(ex, ms), nil
}

func (l *localLane) FinishSlot(t int, selectedIDs []int) error {
	// Data acquisition already happened on the shared world's fleet; the
	// lane only retires consumed queries.
	l.a.retire(t)
	return nil
}

func (l *localLane) SetStrategy(s Strategy) { l.a.SetGreedyStrategy(s) }

// NodeLane is the node-side runtime of one cluster shard: a full
// deterministic replica of the coordinator's world plus the shard's
// Algorithm 5 pipeline. The coordinator owns the clock; the node advances
// its replica one Step per run_slot command, computes the very offer
// slice the coordinator routed to the shard (same fleet, same seed, same
// partition — filtered in global offer order), executes the lane pass,
// and applies the coordinator's global commit before the next step so the
// replica's lifetime/privacy state never diverges. Everything a
// LanePartial carries is therefore bit-identical to what an in-process
// lane over the coordinator's own world would have produced.
type NodeLane struct {
	world *World
	part  GridPartition
	shard int
	agg   *Aggregator

	pending []core.Offer // the last Advance's shard-filtered offers
	byID    map[int]*sensornet.Sensor
}

// sensorIndex maps a fleet's sensors by ID. Fleet membership is fixed for
// a world's lifetime, so callers cache the index.
func sensorIndex(sensors []*sensornet.Sensor) map[int]*sensornet.Sensor {
	byID := make(map[int]*sensornet.Sensor, len(sensors))
	for _, s := range sensors {
		byID[s.ID] = s
	}
	return byID
}

// NewNodeLane builds the node-side runtime for one shard of a world
// partitioned into `shards`. Options mirror NewShardedAggregator's lane
// configuration: the baseline pipeline is overridden and StrategyAuto
// defaults to lazy-greedy, so a node lane is configured exactly like the
// in-process lane it replaces.
func NewNodeLane(world *World, shards, shard int, opts ...Option) *NodeLane {
	a := NewAggregator(world, opts...)
	a.baseline = false
	if a.greedy.Strategy == core.StrategyAuto {
		a.greedy.Strategy = core.StrategyLazy
	}
	return &NodeLane{
		world: world,
		part:  geo.NewGridPartition(world.Working, shards),
		shard: shard,
		agg:   a,
	}
}

// Shard returns the shard index the lane serves.
func (n *NodeLane) Shard() int { return n.shard }

// Slot returns the replica's current slot (-1 before the first Advance).
func (n *NodeLane) Slot() int { return n.world.Fleet.Slot() }

// SetStrategy switches the lane's candidate-evaluation strategy.
func (n *NodeLane) SetStrategy(s Strategy) { n.agg.SetGreedyStrategy(s) }

// Submit materializes an already-validated spec on the lane. Lockstep
// makes the bound window identical to what the coordinator recorded.
func (n *NodeLane) Submit(spec Spec) (SubmittedQuery, error) {
	if isNilSpec(spec) {
		return SubmittedQuery{}, errNilSpec
	}
	if err := spec.Validate(n.world); err != nil {
		return SubmittedQuery{}, err
	}
	return spec.materialize(n.agg)
}

// Cancel withdraws a query by ID.
func (n *NodeLane) Cancel(id string) bool { return n.agg.CancelQuery(id) }

// Advance steps the replica's fleet into slot t and caches the shard's
// offer slice. It fails if the replica is out of lockstep — the step must
// land exactly on the commanded slot.
func (n *NodeLane) Advance(t int) error {
	offers := n.world.Fleet.Step()
	if got := n.world.Fleet.Slot(); got != t {
		return fmt.Errorf("ps: node replica out of lockstep: stepped to slot %d, coordinator commands %d", got, t)
	}
	n.pending = n.pending[:0]
	for _, o := range offers {
		if n.part.ShardOf(o.Sensor.Pos) == n.shard {
			n.pending = append(n.pending, o)
		}
	}
	return nil
}

// RunSlot advances to slot t and executes the lane's selection pass over
// the shard's offers, returning the serializable partial.
func (n *NodeLane) RunSlot(t int) (*LanePartial, error) {
	if err := n.Advance(t); err != nil {
		return nil, err
	}
	start := time.Now()
	ex := n.agg.executeSlot(t, n.pending, true)
	ms := float64(time.Since(start).Nanoseconds()) / 1e6
	return partialFromExec(ex, ms), nil
}

// Commit applies slot t's global commit — every sensor any lane or the
// spanning pass selected, in replay order — to the replica's fleet and
// retires the lane's consumed queries. It must be called after RunSlot
// (or Advance, for slots where the lane's partial was discarded) and
// before the next slot's command.
func (n *NodeLane) Commit(t int, selectedIDs []int) error {
	if got := n.world.Fleet.Slot(); got != t {
		return fmt.Errorf("ps: node replica at slot %d cannot commit slot %d", got, t)
	}
	if n.byID == nil {
		n.byID = sensorIndex(n.world.Fleet.Sensors)
	}
	byID := n.byID
	selected := make([]*sensornet.Sensor, len(selectedIDs))
	for i, id := range selectedIDs {
		s := byID[id]
		if s == nil {
			return fmt.Errorf("ps: commit names unknown sensor %d", id)
		}
		selected[i] = s
	}
	n.world.Fleet.Commit(selected)
	n.agg.retire(t)
	return nil
}
