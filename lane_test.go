package ps

import (
	"encoding/json"
	"errors"
	"fmt"
	"testing"
)

// wireLane wraps a NodeLane behind a JSON round-trip of every partial —
// the in-process stand-in for a remote shard node. Because it is not a
// *localLane, RunSlot dispatches it on the remote fan-out path (lane_rpc
// and gather stages) and reconciliation binds its partials exactly as it
// would bind ones decoded off a socket. The NodeLane holds its own world
// replica, so this also exercises the lockstep model end to end.
type wireLane struct {
	n *NodeLane
	// failSlot makes RunLane fail for one slot, simulating a node dying
	// mid-slot; FinishSlot then catches the replica up the way a resync
	// replay would (step + commit, no execution).
	failSlot int
}

func (w *wireLane) Submit(spec Spec) (SubmittedQuery, error) { return w.n.Submit(spec) }

func (w *wireLane) Cancel(id string) bool { return w.n.Cancel(id) }

func (w *wireLane) RunLane(t int, _ []Offer) (*LanePartial, error) {
	if t == w.failSlot {
		return nil, fmt.Errorf("lane test: node lost mid-slot: %w", ErrNodeUnavailable)
	}
	p, err := w.n.RunSlot(t)
	if err != nil {
		return nil, err
	}
	buf, err := json.Marshal(p)
	if err != nil {
		return nil, err
	}
	var back LanePartial
	if err := json.Unmarshal(buf, &back); err != nil {
		return nil, err
	}
	return &back, nil
}

func (w *wireLane) FinishSlot(t int, selectedIDs []int) error {
	if w.n.Slot() != t {
		// The replica missed this slot's execution (RunLane failed); it
		// still steps and commits so the next slot stays in lockstep.
		if err := w.n.Advance(t); err != nil {
			return err
		}
	}
	return w.n.Commit(t, selectedIDs)
}

func (w *wireLane) SetStrategy(s Strategy) { w.n.SetStrategy(s) }

// newWireSharded builds a ShardedAggregator whose every lane is a
// wireLane over its own world replica built from the same seed.
func newWireSharded(seed int64, sensors, shards int) *ShardedAggregator {
	sa := NewShardedAggregator(NewRWMWorld(seed, sensors, SensorConfig{}), shards)
	for k := 0; k < sa.ShardCount(); k++ {
		n := NewNodeLane(NewRWMWorld(seed, sensors, SensorConfig{}), sa.ShardCount(), k)
		sa.SetLaneRunner(k, &wireLane{n: n, failSlot: -2})
	}
	return sa
}

// TestRemoteLaneGoldenEquivalence: with every shard behind a wire lane —
// separate world replicas, JSON-serialized partials, remote dispatch —
// the merged SlotReports stay bit-identical to the all-local sharded
// layer on the golden six-kind workload.
func TestRemoteLaneGoldenEquivalence(t *testing.T) {
	const seed, sensors, slots = 21, 220, 6
	wired := newWireSharded(seed, sensors, 4)
	local := NewShardedAggregator(NewRWMWorld(seed, sensors, SensorConfig{}), 4)
	submitBoth := func(spec Spec) {
		t.Helper()
		if _, err := local.Submit(spec); err != nil {
			t.Fatalf("local Submit(%q): %v", spec.QueryID(), err)
		}
		if _, err := wired.Submit(spec); err != nil {
			t.Fatalf("wire Submit(%q): %v", spec.QueryID(), err)
		}
	}

	for q, box := range quadrantInner {
		c := box.Center()
		submitBoth(LocationMonitoringSpec{
			ID: fmt.Sprintf("lm-%d", q), Loc: c, Duration: slots, Budget: 150, Samples: 4,
		})
		submitBoth(EventDetectionSpec{
			ID: fmt.Sprintf("ev-%d", q), Loc: Pt(c.X+2, c.Y-3), Duration: slots,
			Threshold: 0.5, Confidence: 0.6, BudgetPerSlot: 30,
		})
	}
	for slot := 0; slot < slots; slot++ {
		for q, box := range quadrantInner {
			for i := 0; i < 6; i++ {
				x := box.MinX + float64((i*37+slot*11+q*5)%13)
				y := box.MinY + float64((i*53+slot*29+q*3)%13)
				submitBoth(PointSpec{
					ID: fmt.Sprintf("pt-%d-%d-%d", slot, q, i), Loc: Pt(x, y),
					Budget: 10 + float64(i%7),
				})
			}
			submitBoth(MultiPointSpec{
				ID: fmt.Sprintf("mp-%d-%d", slot, q), Loc: box.Center(), Budget: 60, K: 3,
			})
			submitBoth(AggregateSpec{
				ID:     fmt.Sprintf("agg-%d-%d", slot, q),
				Region: NewRect(box.MinX+1, box.MinY+1, box.MaxX-1, box.MaxY-1),
				Budget: 250,
			})
		}
		lr, wr := local.RunSlot(), wired.RunSlot()
		requireIdentical(t, slot, snapshot(lr), snapshot(wr))
		if len(wr.Degraded) != 0 {
			t.Fatalf("slot %d: unexpected degraded lanes %v", slot, wr.Degraded)
		}
		// Remote dispatch must surface the lane_rpc and gather stages.
		seen := map[string]bool{}
		for _, st := range wr.Stages {
			seen[st.Stage] = true
		}
		if !seen[StageLaneRPC] || !seen[StageGather] {
			t.Fatalf("slot %d: stages %v missing %s/%s", slot, wr.Stages, StageLaneRPC, StageGather)
		}
	}
	if err := wired.Ledger().CheckBalance(1e-6); err != nil {
		t.Errorf("wire-lane ledger: %v", err)
	}
}

// TestShardedDegradedLane: a lane that dies mid-slot degrades that slot —
// the failure carries ps.ErrNodeUnavailable, the shard's stats entry stays
// zero but index-aligned, no deadlock — and the lane recovers the next
// slot once its replica catches up.
func TestShardedDegradedLane(t *testing.T) {
	const seed, sensors, slots = 21, 220, 3
	const down = 1 // slot during which shard 2's node is lost
	sa := NewShardedAggregator(NewRWMWorld(seed, sensors, SensorConfig{}), 4)
	for k := 0; k < sa.ShardCount(); k++ {
		fail := -2
		if k == 2 {
			fail = down
		}
		n := NewNodeLane(NewRWMWorld(seed, sensors, SensorConfig{}), sa.ShardCount(), k)
		sa.SetLaneRunner(k, &wireLane{n: n, failSlot: fail})
	}
	for q, box := range quadrantInner {
		if _, err := sa.Submit(LocationMonitoringSpec{
			ID: fmt.Sprintf("lm-%d", q), Loc: box.Center(), Duration: slots, Budget: 120, Samples: 2,
		}); err != nil {
			t.Fatal(err)
		}
	}
	for slot := 0; slot < slots; slot++ {
		for q, box := range quadrantInner {
			if _, err := sa.Submit(PointSpec{
				ID: fmt.Sprintf("pt-%d-%d", slot, q), Loc: box.Center(), Budget: 15,
			}); err != nil {
				t.Fatal(err)
			}
		}
		rep := sa.RunSlot()
		if slot != down {
			if len(rep.Degraded) != 0 {
				t.Fatalf("slot %d: unexpected degraded lanes %v", slot, rep.Degraded)
			}
			if rep.Welfare <= 0 {
				t.Fatalf("slot %d: healthy slot produced welfare %v", slot, rep.Welfare)
			}
			continue
		}
		if len(rep.Degraded) != 1 || rep.Degraded[0].Shard != 2 {
			t.Fatalf("slot %d: Degraded = %v, want exactly shard 2", slot, rep.Degraded)
		}
		if !errors.Is(rep.Degraded[0].Err, ErrNodeUnavailable) {
			t.Fatalf("slot %d: degraded error %v does not wrap ErrNodeUnavailable", slot, rep.Degraded[0].Err)
		}
		// The lost lane contributed nothing: its resident queries have no
		// outcome this slot.
		for _, id := range []string{"pt-1-2", "lm-2"} {
			if rep.Answered(id) || rep.Value(id) != 0 || rep.Payment(id) != 0 {
				t.Fatalf("slot %d: shard 2 query %q has an outcome during its lane's outage", slot, id)
			}
		}
		if len(rep.Shards) != 5 || rep.Shards[2].Shard != 2 || rep.Shards[2].Queries != 0 {
			t.Fatalf("slot %d: shard stats misaligned: %+v", slot, rep.Shards)
		}
	}
	if err := sa.Ledger().CheckBalance(1e-6); err != nil {
		t.Errorf("ledger after degraded slot: %v", err)
	}
}

// TestLanePartialBindRejectsCorruptPartials pins bind's defenses: a
// partial naming a sensor the coordinator does not know, or whose trace
// disagrees with its selection, must degrade rather than merge.
func TestLanePartialBindRejectsCorruptPartials(t *testing.T) {
	world := NewRWMWorld(3, 40, SensorConfig{})
	byID := sensorIndex(world.Fleet.Sensors)
	bad := &LanePartial{Slot: 0, SelectedIDs: []int{999999}, Trace: make([]SelectionStep, 1)}
	if _, err := bad.bind(byID); err == nil {
		t.Error("bind accepted a partial selecting an unknown sensor")
	}
	mismatch := &LanePartial{Slot: 0, SelectedIDs: []int{world.Fleet.Sensors[0].ID}}
	if _, err := mismatch.bind(byID); err == nil {
		t.Error("bind accepted a trace/selection length mismatch")
	}
}

// TestNodeLaneLockstepGuards pins the replica discipline: commands for
// the wrong slot are refused instead of silently desynchronizing.
func TestNodeLaneLockstepGuards(t *testing.T) {
	n := NewNodeLane(NewRWMWorld(3, 40, SensorConfig{}), 2, 0)
	if err := n.Advance(5); err == nil {
		t.Fatal("Advance(5) from slot -1 succeeded; want lockstep error")
	}
	n2 := NewNodeLane(NewRWMWorld(3, 40, SensorConfig{}), 2, 0)
	if err := n2.Commit(0, nil); err == nil {
		t.Fatal("Commit(0) before any Advance succeeded; want slot guard error")
	}
	n3 := NewNodeLane(NewRWMWorld(3, 40, SensorConfig{}), 2, 1)
	if _, err := n3.RunSlot(0); err != nil {
		t.Fatalf("RunSlot(0): %v", err)
	}
	if err := n3.Commit(0, []int{123456}); err == nil {
		t.Fatal("Commit with an unknown sensor ID succeeded")
	}
}
