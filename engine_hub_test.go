package ps

import (
	"errors"
	"fmt"
	"sort"
	"testing"
	"time"
)

// TestHubMultiSubscriber: any number of watchers can attach to one live
// query; each sees the protocol sequence, and a late watcher sees
// exactly the events published after its JoinCursor (plus the replayed
// Accepted frame).
func TestHubMultiSubscriber(t *testing.T) {
	e := newTestEngine(t)
	const duration = 6
	h, err := e.Submit(LocationMonitoringSpec{ID: "lm", Loc: Pt(30, 30), Duration: duration, Budget: 120, Samples: 3})
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	if err := e.Flush(); err != nil {
		t.Fatalf("flush: %v", err)
	}
	early, err := e.Watch("lm")
	if err != nil {
		t.Fatalf("watch: %v", err)
	}
	if c := early.JoinCursor(); c != -1 {
		t.Errorf("early JoinCursor = %d, want -1 (nothing executed)", c)
	}
	if err := e.RunSlots(3); err != nil {
		t.Fatalf("RunSlots: %v", err)
	}
	late, err := e.Watch("lm")
	if err != nil {
		t.Fatalf("late watch: %v", err)
	}
	if c := late.JoinCursor(); c != 2 {
		t.Errorf("late JoinCursor = %d, want 2 (three slots executed)", c)
	}
	if err := e.RunSlots(duration - 3); err != nil {
		t.Fatalf("RunSlots: %v", err)
	}

	drainSub := func(s *Subscription) []QueryEvent {
		var out []QueryEvent
		timeout := time.After(10 * time.Second)
		for {
			select {
			case ev, ok := <-s.Events():
				if !ok {
					return out
				}
				out = append(out, ev)
			case <-timeout:
				t.Fatal("subscription did not close")
			}
		}
	}
	slots := func(evs []QueryEvent) []int {
		var out []int
		for _, ev := range evs {
			if ev.Type == EventSlotUpdate {
				out = append(out, ev.Slot)
			}
		}
		return out
	}

	hEvs, earlyEvs, lateEvs := drainEvents(t, h), drainSub(early), drainSub(late)
	checkEventProtocol(t, "lm", earlyEvs)
	checkEventProtocol(t, "lm", lateEvs)
	want := []int{0, 1, 2, 3, 4, 5}
	if got := slots(hEvs); !equalInts(got, want) {
		t.Errorf("handle slots = %v, want %v", got, want)
	}
	if got := slots(earlyEvs); !equalInts(got, want) {
		t.Errorf("early watcher slots = %v, want %v", got, want)
	}
	if got := slots(lateEvs); !equalInts(got, []int{3, 4, 5}) {
		t.Errorf("late watcher slots = %v, want [3 4 5]", got)
	}
	for name, evs := range map[string][]QueryEvent{"handle": hEvs, "early": earlyEvs, "late": lateEvs} {
		if terminalType(evs) != EventFinal {
			t.Errorf("%s stream terminal = %v, want final", name, terminalType(evs))
		}
		if evs[0].Type != EventAccepted || evs[0].Start != 0 || evs[0].End != duration-1 {
			t.Errorf("%s accepted = %+v, want window [0, %d]", name, evs[0], duration-1)
		}
	}
	if early.Err() != nil || late.Err() != nil {
		t.Errorf("watcher errs = %v, %v; want nil after Final", early.Err(), late.Err())
	}
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestSubscriptionGapOnOverflow: an unread subscription's buffer evicts
// oldest-first, every eviction is surfaced by a Gap frame, and the
// terminal frame always lands.
func TestSubscriptionGapOnOverflow(t *testing.T) {
	e := newTestEngine(t, WithEventBuffer(4))
	const duration = 12
	h, err := e.Submit(LocationMonitoringSpec{ID: "lm", Loc: Pt(30, 30), Duration: duration, Budget: 120, Samples: 3})
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	// Run the full window plus one without reading a single event.
	if err := e.RunSlots(duration + 1); err != nil {
		t.Fatalf("RunSlots: %v", err)
	}
	evs := drainEvents(t, h)
	var received, droppedTotal, gaps int
	gapSlots := map[int]bool{}
	for _, ev := range evs {
		switch ev.Type {
		case EventGap:
			gaps++
			droppedTotal += ev.Dropped
			for s := ev.From; s <= ev.To; s++ {
				gapSlots[s] = true
			}
			if ev.Dropped <= 0 || ev.From > ev.To || ev.To > ev.Slot {
				t.Errorf("malformed gap frame %+v", ev)
			}
		default:
			received++
		}
	}
	// Published: 1 accepted + 12 updates + 1 final = 14 frames; every one
	// was either read or accounted by a Gap.
	if received+droppedTotal != duration+2 {
		t.Fatalf("received %d + dropped %d != %d published frames (events %+v)",
			received, droppedTotal, duration+2, evs)
	}
	if gaps == 0 {
		t.Fatal("a 4-deep buffer over 14 frames produced no Gap frame")
	}
	if terminalType(evs) != EventFinal {
		t.Fatalf("terminal = %v, want final (the newest frames always land)", terminalType(evs))
	}
	if m := e.Metrics(); m.EventsDropped != int64(droppedTotal) || m.GapEvents < int64(gaps) {
		t.Errorf("metrics dropped/gaps = %d/%d, want %d/>=%d", m.EventsDropped, m.GapEvents, droppedTotal, gaps)
	}
	// Dropped and received slots interleave consistently: no slot is both.
	for _, ev := range evs {
		if ev.Type == EventSlotUpdate && gapSlots[ev.Slot] {
			t.Errorf("slot %d both delivered and inside a gap", ev.Slot)
		}
	}
}

// TestWatchLifecycleErrors: watching an unknown or finished query fails
// with ErrUnknownQuery; a watcher's Close detaches without touching the
// query; watchers of a canceled query see the Canceled terminal.
func TestWatchLifecycleErrors(t *testing.T) {
	e := newTestEngine(t)
	if _, err := e.Watch("nope"); !errors.Is(err, ErrUnknownQuery) {
		t.Fatalf("Watch(unknown) = %v, want ErrUnknownQuery", err)
	}

	h, err := e.Submit(PointSpec{ID: "p", Loc: Pt(30, 30), Budget: 20})
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	if err := e.RunSlots(1); err != nil {
		t.Fatalf("RunSlots: %v", err)
	}
	collect(t, h)
	if _, err := e.Watch("p"); !errors.Is(err, ErrUnknownQuery) {
		t.Fatalf("Watch(finished) = %v, want ErrUnknownQuery", err)
	}

	// A detaching watcher does not disturb the query or other streams.
	lm, err := e.Submit(LocationMonitoringSpec{ID: "lm", Loc: Pt(30, 30), Duration: 8, Budget: 120, Samples: 3})
	if err != nil {
		t.Fatalf("submit lm: %v", err)
	}
	if err := e.Flush(); err != nil {
		t.Fatalf("flush: %v", err)
	}
	w1, err := e.Watch("lm")
	if err != nil {
		t.Fatalf("watch lm: %v", err)
	}
	w1.Close()
	w1.Close() // idempotent
	if err := e.RunSlots(2); err != nil {
		t.Fatalf("RunSlots: %v", err)
	}
	if _, ok := <-w1.Events(); ok {
		// The replayed Accepted frame may still be buffered; the channel
		// must be closed right behind it.
		if _, ok := <-w1.Events(); ok {
			t.Fatal("closed watcher kept receiving events")
		}
	}

	// Cancel: a live watcher observes the Canceled terminal with the cause.
	w2, err := e.Watch("lm")
	if err != nil {
		t.Fatalf("re-watch lm: %v", err)
	}
	if err := lm.Cancel(); err != nil {
		t.Fatalf("cancel: %v", err)
	}
	if err := e.Flush(); err != nil {
		t.Fatalf("flush: %v", err)
	}
	var last QueryEvent
	for ev := range w2.Events() {
		last = ev
	}
	if last.Type != EventCanceled || !errors.Is(last.Err, ErrCanceled) {
		t.Fatalf("watcher terminal = %+v, want Canceled(ErrCanceled)", last)
	}
	if !errors.Is(w2.Err(), ErrCanceled) {
		t.Fatalf("watcher Err = %v, want ErrCanceled", w2.Err())
	}
}

// TestStalledSubscriberDoesNotDelaySlots is the push-delivery latency
// guarantee: subscribers that never read — watchers with full buffers —
// must not add to slot execution time, because every publish is a
// non-blocking buffer operation. Compares the slot p50 of a run with 64
// deliberately stalled watchers against a no-watcher run.
func TestStalledSubscriberDoesNotDelaySlots(t *testing.T) {
	const slots = 40
	run := func(stalledWatchers int) (p50 time.Duration, subs []*Subscription) {
		world := NewRWMWorld(21, 200, SensorConfig{})
		e := NewEngine(NewAggregator(world), WithEventBuffer(2))
		e.Start()
		t.Cleanup(e.Stop)
		if _, err := e.Submit(LocationMonitoringSpec{ID: "lm", Loc: Pt(30, 30), Duration: slots, Budget: 400, Samples: 8}); err != nil {
			t.Fatalf("submit: %v", err)
		}
		if err := e.Flush(); err != nil {
			t.Fatalf("flush: %v", err)
		}
		for i := 0; i < stalledWatchers; i++ {
			s, err := e.Watch("lm")
			if err != nil {
				t.Fatalf("watch %d: %v", i, err)
			}
			subs = append(subs, s) // never read: deliberately stalled
		}
		lat := make([]time.Duration, 0, slots)
		for s := 0; s < slots; s++ {
			// A fresh point query keeps every slot non-trivial.
			if _, err := e.Submit(PointSpec{ID: fmt.Sprintf("p%d", s), Loc: Pt(30, 30), Budget: 15}); err != nil {
				t.Fatalf("submit point: %v", err)
			}
			start := time.Now()
			if err := e.RunSlots(1); err != nil {
				t.Fatalf("RunSlots: %v", err)
			}
			lat = append(lat, time.Since(start))
		}
		sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
		return lat[len(lat)/2], subs
	}

	base, _ := run(0)
	stalled, subs := run(64)

	// "Within noise": generous slack absorbs scheduler jitter (and the
	// race detector); a blocking publish would stall a slot for as long
	// as the subscriber sleeps, i.e. far beyond any of this.
	limit := 4*base + 5*time.Millisecond
	if stalled > limit {
		t.Errorf("slot p50 with 64 stalled watchers = %v, no-watcher baseline %v (limit %v): a stalled subscriber is delaying the slot loop", stalled, base, limit)
	}

	// The stalled watchers were served under the drop-oldest policy: each
	// buffer holds newest frames and a Gap accounting for the rest.
	sawGap := false
	for _, s := range subs {
		for {
			ev, ok := <-s.Events()
			if !ok {
				break
			}
			if ev.Type == EventGap {
				sawGap = true
			}
		}
	}
	if !sawGap {
		t.Error("no stalled watcher received a Gap frame despite a 2-deep buffer over 40 slots")
	}
}
