package ps_test

import (
	"go/parser"
	"go/token"
	"io/fs"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestEveryPackageHasDocComment walks the module and requires a package
// doc comment ("// Package xxx ...") on at least one file of every
// package, tests excluded. godoc renders these as the package synopsis;
// an undocumented package is invisible in the docs index, so this keeps
// the documentation surface complete as packages are added.
func TestEveryPackageHasDocComment(t *testing.T) {
	documented := map[string]bool{} // dir -> has a package doc comment
	seen := map[string]string{}     // dir -> package name
	fset := token.NewFileSet()

	err := filepath.WalkDir(".", func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			name := d.Name()
			if name != "." && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") || name == "testdata") {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(path, ".go") || strings.HasSuffix(path, "_test.go") {
			return nil
		}
		f, err := parser.ParseFile(fset, path, nil, parser.PackageClauseOnly|parser.ParseComments)
		if err != nil {
			return err
		}
		dir := filepath.Dir(path)
		seen[dir] = f.Name.Name
		if f.Doc != nil && strings.TrimSpace(f.Doc.Text()) != "" {
			documented[dir] = true
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(seen) < 2 {
		wd, _ := os.Getwd()
		t.Fatalf("walked only %d packages from %s — wrong working directory?", len(seen), wd)
	}
	for dir, pkg := range seen {
		if !documented[dir] {
			t.Errorf("package %s (%s) has no package doc comment on any file", pkg, dir)
		}
	}
}
