package ps_test

// Benchmark harness: one benchmark per figure of the paper's evaluation
// (Figs 2-10), the §4.7 trust experiment, and the design-choice ablations
// from DESIGN.md, plus micro-benchmarks of the core schedulers.
//
// Figure benchmarks run a reduced horizon (10 slots, two budget points) so
// `go test -bench=.` finishes in minutes; cmd/psbench regenerates the
// figures at the paper's full scale (50 slots, full budget sweeps) and
// EXPERIMENTS.md records those numbers. Each figure benchmark reports
// welfare-derived custom metrics so regressions in solution quality (not
// just speed) are visible.

import (
	"fmt"
	"testing"

	ps "repro"
	"repro/internal/core"
	"repro/internal/datasets"
	"repro/internal/geo"
	"repro/internal/query"
	"repro/internal/rng"
	"repro/internal/sim"
)

// benchOpts is the reduced scale shared by the figure benchmarks.
var benchOpts = sim.Options{Slots: 10, Seed: 1, Budgets: []float64{10, 25}, QueriesPerSlot: 300}

// runFigure executes a registered figure once per iteration and reports
// the first table's first series mean as a quality metric.
func runFigure(b *testing.B, id string, opts sim.Options) {
	b.Helper()
	fig, ok := sim.FigureByID(id)
	if !ok {
		b.Fatalf("unknown figure %s", id)
	}
	var lastMean float64
	for i := 0; i < b.N; i++ {
		tables := fig.Run(opts)
		if len(tables) == 0 || len(tables[0].Series) == 0 {
			b.Fatal("figure produced no data")
		}
		var sum float64
		for _, v := range tables[0].Series[0].Values {
			sum += v
		}
		lastMean = sum / float64(len(tables[0].Series[0].Values))
	}
	b.ReportMetric(lastMean, "welfare/slot")
}

func BenchmarkFig2(b *testing.B) { runFigure(b, "fig2", benchOpts) }
func BenchmarkFig3(b *testing.B) { runFigure(b, "fig3", benchOpts) }
func BenchmarkFig4(b *testing.B) { runFigure(b, "fig4", benchOpts) }
func BenchmarkFig5(b *testing.B) {
	opts := benchOpts
	opts.Budgets = []float64{250, 500} // x-axis is the query count here
	runFigure(b, "fig5", opts)
}
func BenchmarkFig6(b *testing.B)  { runFigure(b, "fig6", benchOpts) }
func BenchmarkFig7(b *testing.B)  { runFigure(b, "fig7", benchOpts) }
func BenchmarkFig8(b *testing.B)  { runFigure(b, "fig8", benchOpts) }
func BenchmarkFig9(b *testing.B)  { runFigure(b, "fig9", benchOpts) }
func BenchmarkFig10(b *testing.B) { runFigure(b, "fig10", benchOpts) }

func BenchmarkTrustSweep(b *testing.B) {
	opts := benchOpts
	opts.Budgets = nil // use the figure's own trust x-axis
	runFigure(b, "trust", opts)
}

func BenchmarkAblationLocalSearch(b *testing.B) { runFigure(b, "ablation-ls", benchOpts) }
func BenchmarkAblationCostWeight(b *testing.B)  { runFigure(b, "ablation-weight", benchOpts) }
func BenchmarkAblationAlpha(b *testing.B) {
	opts := benchOpts
	opts.Budgets = []float64{0.25, 0.75} // x-axis is alpha here
	runFigure(b, "ablation-alpha", opts)
}
func BenchmarkAblationEgalitarian(b *testing.B) { runFigure(b, "ablation-egalitarian", benchOpts) }

// --- micro-benchmarks of the core schedulers -----------------------------

// benchScenario builds one slot's worth of paper-scale point-query input.
func benchScenario(seed int64) ([]*query.Point, []core.Offer) {
	world := datasets.NewRWM(seed, 200, datasets.SensorConfig{})
	offers := world.Fleet.Step()
	wrnd := rng.New(seed, "bench-workload")
	wl := sim.PointWorkload{
		QueriesPerSlot: 300, BudgetMean: 15,
		DMax: world.DMax, Working: world.Working, Grid: world.Grid,
	}
	return wl.Slot(0, wrnd), offers
}

func BenchmarkOptimalPointSlot(b *testing.B) {
	queries, offers := benchScenario(1)
	solver := sim.ExactOptimal()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		solver(queries, offers)
	}
}

func BenchmarkLocalSearchPointSlot(b *testing.B) {
	queries, offers := benchScenario(1)
	solver := core.LocalSearchPoint(core.DefaultLocalSearchEpsilon)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		solver(queries, offers)
	}
}

func BenchmarkBaselinePointSlot(b *testing.B) {
	queries, offers := benchScenario(1)
	solver := core.BaselinePoint()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		solver(queries, offers)
	}
}

func BenchmarkGreedyAggregateSlot(b *testing.B) {
	world := datasets.NewRNC(1, datasets.SensorConfig{})
	offers := world.Fleet.Step()
	wl := sim.AggregateWorkload{
		MeanQueries: 30, BudgetFactor: 15, SensingRange: 10, RS: 10,
		Working: world.Working, Grid: world.Grid, MinDim: 10, MaxDim: 40,
	}
	aggs := wl.Slot(0, rng.New(1, "bench-agg"))
	qs := make([]query.Query, len(aggs))
	for i, a := range aggs {
		qs[i] = a
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		core.GreedySelect(qs, offers)
	}
}

func BenchmarkMixSlot(b *testing.B) {
	world := datasets.NewRNC(1, datasets.SensorConfig{})
	offers := world.Fleet.Step()
	prnd := rng.New(1, "bench-mix-p")
	arnd := rng.New(1, "bench-mix-a")
	pwl := sim.PointWorkload{QueriesPerSlot: 300, BudgetMean: 15, DMax: world.DMax, Working: world.Working, Grid: world.Grid}
	awl := sim.AggregateWorkload{MeanQueries: 30, BudgetFactor: 15, SensingRange: 10, RS: 10, Working: world.Working, Grid: world.Grid, MinDim: 10, MaxDim: 40}
	points := pwl.Slot(0, prnd)
	aggs := awl.Slot(0, arnd)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		core.RunMixSlot(0, core.MixQueries{Points: points, Aggregates: aggs}, offers)
	}
}

func BenchmarkFLSolverMediumInstance(b *testing.B) {
	queries, offers := benchScenario(2)
	groupsBySensor := len(offers)
	_ = groupsBySensor
	solver := core.OptimalPoint(core.OptimalOptions{})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		solver(queries, offers)
	}
}

// largeFleetSlot builds one slot of mixed point+aggregate input on an
// n-sensor fleet — the candidate-evaluation hot path's worst case.
func largeFleetSlot(seed int64, n int) ([]query.Query, []core.Offer) {
	world := datasets.NewRWM(seed, n, datasets.SensorConfig{})
	offers := world.Fleet.Step()
	pwl := sim.PointWorkload{QueriesPerSlot: 200, BudgetMean: 15, DMax: world.DMax, Working: world.Working, Grid: world.Grid}
	awl := sim.AggregateWorkload{MeanQueries: 10, BudgetFactor: 15, SensingRange: 10, RS: 10, Working: world.Working, Grid: world.Grid, MinDim: 10, MaxDim: 30}
	points := pwl.Slot(0, rng.New(seed, "bench-parallel-p"))
	aggs := awl.Slot(0, rng.New(seed, "bench-parallel-a"))
	qs := make([]query.Query, 0, len(points)+len(aggs))
	for _, q := range aggs {
		qs = append(qs, q)
	}
	for _, q := range points {
		qs = append(qs, q)
	}
	return qs, offers
}

// BenchmarkParallelCandidateEval compares the serial and sharded
// candidate scans of Algorithm 1 on large fleets; the selections are
// bit-identical (see TestGreedyParallelMatchesSerial), only wall time
// differs.
func BenchmarkParallelCandidateEval(b *testing.B) {
	for _, n := range []int{1000, 10000} {
		qs, offers := largeFleetSlot(1, n)
		b.Run(fmt.Sprintf("serial/sensors=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				core.GreedySelectWith(qs, offers, core.GreedyConfig{Workers: 1})
			}
		})
		b.Run(fmt.Sprintf("parallel/sensors=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				core.GreedySelectWith(qs, offers, core.GreedyConfig{ParallelThreshold: 1})
			}
		})
	}
}

// redundantFleetSlot builds one slot of k-redundancy demand on an
// n-sensor fleet: §2.2.1 multiple-sensor point queries asking for 10
// redundant readings each, plus a thin stream of plain point queries.
// Every multipoint query commits many sensors, so each (sensor, query)
// pair goes stale many times — the regime where CELF's lazy pruning pays
// off most (plain one-commit point queries already amortize under the
// version cache, and aggregate valuations are re-evaluated eagerly
// because Eq. 5 is not submodular).
func redundantFleetSlot(seed int64, n int) ([]query.Query, []core.Offer) {
	world := datasets.NewRWM(seed, n, datasets.SensorConfig{})
	offers := world.Fleet.Step()
	w := world.Working
	rnd := rng.New(seed, "bench-redundant")
	var qs []query.Query
	for i := 0; i < 600; i++ {
		loc := ps.Pt(rnd.Uniform(w.MinX, w.MaxX), rnd.Uniform(w.MinY, w.MaxY))
		qs = append(qs, query.NewMultiPoint(fmt.Sprintf("mp%d", i), loc, 250+rnd.Uniform(0, 350), world.DMax, 16))
	}
	pwl := sim.PointWorkload{QueriesPerSlot: 100, BudgetMean: 15, DMax: world.DMax, Working: world.Working, Grid: world.Grid}
	for _, q := range pwl.Slot(0, rng.New(seed, "bench-redundant-p")) {
		qs = append(qs, q)
	}
	return qs, offers
}

// BenchmarkLazyCandidateEval compares the candidate-evaluation
// strategies of Algorithm 1 on large fleets, reporting the valuation
// calls actually made next to what the exhaustive version-cached scan
// would make. Selections are bit-identical across strategies (see
// TestLazyStrategyLargeFleet); only work differs.
func BenchmarkLazyCandidateEval(b *testing.B) {
	for _, wl := range []struct {
		name string
		gen  func(int64, int) ([]query.Query, []core.Offer)
	}{
		{"mixed", largeFleetSlot},
		{"redundant", redundantFleetSlot},
	} {
		for _, n := range []int{1000, 10000} {
			qs, offers := wl.gen(1, n)
			for _, sc := range []struct {
				name string
				cfg  core.GreedyConfig
			}{
				{"serial", core.GreedyConfig{Strategy: core.StrategySerial}},
				{"sharded", core.GreedyConfig{Strategy: core.StrategySharded, ParallelThreshold: 1}},
				{"lazy", core.GreedyConfig{Strategy: core.StrategyLazy}},
				{"lazy-sharded", core.GreedyConfig{Strategy: core.StrategyLazySharded, ParallelThreshold: 1}},
			} {
				b.Run(fmt.Sprintf("%s/%s/sensors=%d", wl.name, sc.name, n), func(b *testing.B) {
					var calls, exhaustive int64
					for i := 0; i < b.N; i++ {
						res := core.GreedySelectWith(qs, offers, sc.cfg)
						calls += res.Stats.ValuationCalls
						exhaustive += res.Stats.SerialEquivCalls
					}
					b.ReportMetric(float64(calls)/float64(b.N), "valcalls/op")
					b.ReportMetric(float64(exhaustive)/float64(b.N), "exhaustive-valcalls/op")
				})
			}
		}
	}
}

// assertBitIdentical requires got to match serial bit-for-bit
// (core.DiffMultiResults is the canonical comparison).
func assertBitIdentical(t *testing.T, label string, serial, got *core.MultiResult) {
	t.Helper()
	if diff := core.DiffMultiResults(serial, got); diff != "" {
		t.Fatalf("%s: %s", label, diff)
	}
}

// TestLazyStrategyLargeFleet is the acceptance gate of the lazy fast
// path at 10k sensors:
//
//   - on the mixed slot (points + non-submodular aggregates) every lazy
//     variant must be bit-identical to the serial scan and never make
//     more valuation calls;
//   - on the redundancy-heavy slot it must additionally make at least 3x
//     fewer valuation calls.
//
// Skipped under -short (the -race CI job); the CI bench job runs it
// unraced.
func TestLazyStrategyLargeFleet(t *testing.T) {
	if testing.Short() {
		t.Skip("10k-sensor equivalence test skipped in -short mode")
	}
	for _, wl := range []struct {
		name     string
		gen      func(int64, int) ([]query.Query, []core.Offer)
		minRatio float64
	}{
		{"mixed", largeFleetSlot, 1},
		{"redundant", redundantFleetSlot, 3},
	} {
		qs, offers := wl.gen(1, 10000)
		serial := core.GreedySelectWith(qs, offers, core.GreedyConfig{Strategy: core.StrategySerial})
		for _, strat := range []core.Strategy{core.StrategyLazy, core.StrategyLazySharded} {
			lazy := core.GreedySelectWith(qs, offers, core.GreedyConfig{Strategy: strat})
			assertBitIdentical(t, fmt.Sprintf("%s/%s", wl.name, strat), serial, lazy)
			ratio := float64(serial.Stats.ValuationCalls) / float64(lazy.Stats.ValuationCalls)
			t.Logf("%s/%s: %d valuation calls vs serial %d (%.2fx fewer), %d reevals, %d violations, %d rescans",
				wl.name, strat, lazy.Stats.ValuationCalls, serial.Stats.ValuationCalls, ratio,
				lazy.Stats.LazyReevaluations, lazy.Stats.SubmodularityViolations, lazy.Stats.FallbackRescans)
			if ratio < wl.minRatio {
				t.Errorf("%s/%s: only %.2fx fewer valuation calls, want >= %.0fx",
					wl.name, strat, ratio, wl.minRatio)
			}
		}
	}
}

// BenchmarkEngineThroughput measures end-to-end queries/sec through the
// streaming engine: enqueue a slot's worth of point and aggregate queries
// (the mix pipeline — the serving hot path), execute the slot, and
// consume every subscription's result.
func BenchmarkEngineThroughput(b *testing.B) {
	const pointsPerSlot, aggsPerSlot = 100, 3
	for _, n := range []int{1000, 10000} {
		b.Run(fmt.Sprintf("sensors=%d", n), func(b *testing.B) {
			world := ps.NewRWMWorld(1, n, ps.SensorConfig{})
			eng := ps.NewEngine(ps.NewAggregator(world), ps.WithBlockingSubmit(),
				ps.WithQueueSize(2*(pointsPerSlot+aggsPerSlot)))
			eng.Start()
			defer eng.Stop()
			w := world.Working
			rnd := rng.New(1, "bench-engine")
			var handles []*ps.QueryHandle
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				handles = handles[:0]
				for j := 0; j < pointsPerSlot; j++ {
					h, err := eng.Submit(ps.PointSpec{
						ID:     fmt.Sprintf("q%d-%d", i, j),
						Loc:    ps.Pt(rnd.Uniform(w.MinX, w.MaxX), rnd.Uniform(w.MinY, w.MaxY)),
						Budget: 15,
					})
					if err != nil {
						b.Fatalf("submit: %v", err)
					}
					handles = append(handles, h)
				}
				for j := 0; j < aggsPerSlot; j++ {
					x, y := rnd.Uniform(w.MinX, w.MaxX-15), rnd.Uniform(w.MinY, w.MaxY-15)
					h, err := eng.Submit(ps.AggregateSpec{
						ID:     fmt.Sprintf("a%d-%d", i, j),
						Region: ps.NewRect(x, y, x+10, y+10),
						Budget: 300,
					})
					if err != nil {
						b.Fatalf("submit: %v", err)
					}
					handles = append(handles, h)
				}
				if err := eng.RunSlots(1); err != nil {
					b.Fatalf("slot: %v", err)
				}
				for _, h := range handles {
					for range h.Events() {
					}
				}
			}
			b.StopTimer()
			b.ReportMetric(float64(b.N)*(pointsPerSlot+aggsPerSlot)/b.Elapsed().Seconds(), "queries/s")
		})
	}
}

func BenchmarkRegionPlanningSlot(b *testing.B) {
	world := datasets.NewIntelLab(1, datasets.SensorConfig{})
	offers := world.Fleet.Step()
	q := query.NewRegionMonitoring("rm", geo.NewRect(2, 2, 14, 11), 0, 15, 120, world.GPModel, world.Grid)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		core.RunRegionMonitoringSlot(0, []*query.RegionMonitoring{q}, offers, core.RegMonOptions{
			Solver: core.OptimalPoint(core.OptimalOptions{}), CostWeighting: true, ShareSensors: true,
		})
	}
}
