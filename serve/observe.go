package serve

import (
	"io"
	"log/slog"
	"net/http"
	"runtime"
	"runtime/debug"
	"strconv"
	"strings"
	"time"

	"repro/internal/obs"
)

// discardLogger is the Options.Logger default: structured logging is
// opt-in, and a nil check at every call site is worse than a no-op
// handler. (slog.DiscardHandler exists but only from Go 1.24; the CI
// matrix still builds with 1.23.)
func discardLogger() *slog.Logger {
	return slog.New(slog.NewTextHandler(io.Discard, nil))
}

// serverObs holds the HTTP-layer metric handles. They are registered on
// the engine's registry so GET /metrics exposes one unified family set;
// registration is get-or-create, so building two servers over one engine
// shares the handles.
type serverObs struct {
	requests *obs.CounterVec   // ps_http_requests_total{route,code}
	duration *obs.HistogramVec // ps_http_request_duration_seconds{route}
	inflight *obs.Gauge        // ps_http_requests_inflight
	build    *obs.GaugeVec     // ps_build_info{version,revision,goversion}

	admissionRejects *obs.CounterVec // ps_admission_rejects_total{reason}
	watchEvictions   *obs.Counter    // ps_watch_evictions_total
}

func newServerObs(reg *obs.Registry) *serverObs {
	o := &serverObs{
		requests: reg.CounterVec("ps_http_requests_total",
			"HTTP requests served, by route pattern and status code.",
			"route", "code"),
		duration: reg.HistogramVec("ps_http_request_duration_seconds",
			"HTTP request duration by route pattern. Streaming routes (watch) measure the full stream lifetime.",
			obs.DurationBuckets, "route"),
		inflight: reg.Gauge("ps_http_requests_inflight",
			"HTTP requests currently being served."),
		build: reg.GaugeVec("ps_build_info",
			"Build identity of the serving binary; the value is always 1.",
			"version", "revision", "goversion"),
		admissionRejects: reg.CounterVec("ps_admission_rejects_total",
			"Requests rejected by serve-layer admission control before reaching the engine, by reason (rate_limit, queue_pressure, stream_cap).",
			"reason"),
		watchEvictions: reg.Counter("ps_watch_evictions_total",
			"Watch streams evicted by the fair-share policy to admit a new stream at the global cap."),
	}
	v, r, g := buildIdentity()
	o.build.With(v, r, g).Set(1)
	return o
}

// buildIdentity reports the main module version, the VCS revision the Go
// toolchain stamped in, and the runtime's Go version. Version and
// revision are empty when build info is unavailable (e.g. non-module
// test binaries).
func buildIdentity() (version, revision, goVersion string) {
	goVersion = runtime.Version()
	bi, ok := debug.ReadBuildInfo()
	if !ok {
		return "", "", goVersion
	}
	version = bi.Main.Version
	for _, s := range bi.Settings {
		if s.Key == "vcs.revision" {
			revision = s.Value
		}
	}
	return version, revision, goVersion
}

// statusWriter records the status code written through it. It forwards
// Flush so streaming handlers (watch) keep working behind the metrics
// middleware.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (sw *statusWriter) WriteHeader(code int) {
	if sw.status == 0 {
		sw.status = code
	}
	sw.ResponseWriter.WriteHeader(code)
}

func (sw *statusWriter) Write(b []byte) (int, error) {
	if sw.status == 0 {
		sw.status = http.StatusOK
	}
	return sw.ResponseWriter.Write(b)
}

func (sw *statusWriter) Flush() {
	if f, ok := sw.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

func (sw *statusWriter) Unwrap() http.ResponseWriter { return sw.ResponseWriter }

// instrument wraps the route mux with per-route request metrics and
// structured request logging. The route label is the mux's registered
// pattern (e.g. "GET /query/{id}"), so path parameters never explode
// label cardinality; unrouted requests fall under "other".
func (s *Server) instrument(mux *http.ServeMux) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		route := "other"
		if _, pattern := mux.Handler(r); pattern != "" {
			route = pattern
		}
		sw := &statusWriter{ResponseWriter: w}
		s.obs.inflight.Add(1)
		start := time.Now()
		// Account in a defer — WITHOUT recover — so a handler panic still
		// propagates (chaos injection severs streams by panicking with
		// http.ErrAbortHandler) but cannot leak the inflight gauge or lose
		// the request from the counters.
		defer func() {
			dur := time.Since(start)
			s.obs.inflight.Add(-1)
			if sw.status == 0 {
				sw.status = http.StatusOK
			}
			s.obs.requests.With(route, strconv.Itoa(sw.status)).Inc()
			s.obs.duration.With(route).Observe(dur.Seconds())
			s.log.Info("http request",
				"route", route,
				"method", r.Method,
				"path", r.URL.Path,
				"status", sw.status,
				"duration", dur,
				"query_id", requestQueryID(r),
			)
		}()
		mux.ServeHTTP(sw, r)
	})
}

// requestQueryID extracts the query ID a request is about, for log
// correlation: the ?id= parameter (watch) or the {id} path element of
// /query/{id}. Empty when the request isn't query-scoped.
func requestQueryID(r *http.Request) string {
	if id := r.URL.Query().Get("id"); id != "" {
		return id
	}
	if rest, ok := strings.CutPrefix(r.URL.Path, "/query/"); ok && !strings.Contains(rest, "/") {
		return rest
	}
	return ""
}

// wantsPrometheus reports whether GET /metrics should serve the
// Prometheus text exposition instead of the JSON metrics document: an
// explicit ?format=prometheus, or an Accept header asking for text/plain
// (what Prometheus scrapers send) or OpenMetrics.
func wantsPrometheus(r *http.Request) bool {
	switch r.URL.Query().Get("format") {
	case "prometheus", "text":
		return true
	case "json":
		return false
	}
	accept := r.Header.Get("Accept")
	return strings.Contains(accept, "text/plain") ||
		strings.Contains(accept, "openmetrics")
}
