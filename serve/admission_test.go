package serve

import (
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
	"time"

	ps "repro"
)

// testAdmission builds an admission controller with an injected clock
// and queue-stats source so decisions are a pure function of the table.
func testAdmission(o Options, depth, capacity int) (*admission, *time.Time) {
	now := time.Unix(1000, 0)
	a := newAdmission(o, func() (int, int) { return depth, capacity })
	a.now = func() time.Time { return now }
	return a, &now
}

// TestAdmissionTokenBucket drives one bucket through its edges: burst
// drain, deficit-derived Retry-After, partial refill, clamped oversized
// batches.
func TestAdmissionTokenBucket(t *testing.T) {
	steps := []struct {
		name    string
		advance time.Duration // clock advance before the step
		charge  int
		wantOK  bool
		wantRA  time.Duration // only checked when !wantOK
	}{
		{name: "burst admits first", charge: 1, wantOK: true},
		{name: "burst admits second", charge: 1, wantOK: true},
		{name: "empty bucket rejects", charge: 1, wantOK: false, wantRA: 500 * time.Millisecond},
		{name: "partial refill still short", advance: 200 * time.Millisecond, charge: 1, wantOK: false, wantRA: 300 * time.Millisecond},
		{name: "refill admits", advance: 300 * time.Millisecond, charge: 1, wantOK: true},
		{name: "oversized batch clamps to burst", advance: 10 * time.Second, charge: 100, wantOK: true},
		{name: "clamped charge drained the bucket", charge: 1, wantOK: false, wantRA: 500 * time.Millisecond},
	}
	a, now := testAdmission(Options{RateLimit: 2, RateBurst: 2}, 0, 0)
	for _, st := range steps {
		*now = now.Add(st.advance)
		ra, ok := a.admitSubmit("c1", st.charge)
		if ok != st.wantOK {
			t.Fatalf("%s: ok = %v, want %v", st.name, ok, st.wantOK)
		}
		if !ok && ra != st.wantRA {
			t.Fatalf("%s: retryAfter = %v, want %v", st.name, ra, st.wantRA)
		}
	}

	// Buckets are per client: a stranger is untouched by c1's spending.
	if _, ok := a.admitSubmit("c2", 2); !ok {
		t.Fatal("fresh client rejected")
	}

	// Rate limiting off admits everything.
	off, _ := testAdmission(Options{}, 0, 0)
	for range 1000 {
		if _, ok := off.admitSubmit("c1", 100); !ok {
			t.Fatal("disabled rate limit rejected a submission")
		}
	}
}

// TestAdmissionHighWater checks the queue-depth admission threshold and
// the pressure-scaled Retry-After (1s at an empty queue up to 5s full).
func TestAdmissionHighWater(t *testing.T) {
	cases := []struct {
		name            string
		highWater       float64
		depth, capacity int
		wantOK          bool
		wantRA          time.Duration
	}{
		{name: "disabled", highWater: 0, depth: 10, capacity: 10, wantOK: true},
		{name: "below mark", highWater: 0.8, depth: 7, capacity: 10, wantOK: true},
		{name: "at mark", highWater: 0.8, depth: 8, capacity: 10, wantOK: false, wantRA: 4200 * time.Millisecond},
		{name: "full queue", highWater: 0.8, depth: 10, capacity: 10, wantOK: false, wantRA: 5 * time.Second},
		{name: "unbuffered engine", highWater: 0.8, depth: 0, capacity: 0, wantOK: true},
	}
	for _, tc := range cases {
		a, _ := testAdmission(Options{HighWater: tc.highWater}, tc.depth, tc.capacity)
		ra, ok := a.admitQueue()
		if ok != tc.wantOK {
			t.Errorf("%s: ok = %v, want %v", tc.name, ok, tc.wantOK)
			continue
		}
		if !ok && ra != tc.wantRA {
			t.Errorf("%s: retryAfter = %v, want %v", tc.name, ra, tc.wantRA)
		}
	}
}

// TestAdmissionStreamCaps: per-client cap rejects, the global cap evicts
// fair-share (the greediest client's oldest stream), and release is
// idempotent.
func TestAdmissionStreamCaps(t *testing.T) {
	a, _ := testAdmission(Options{MaxStreamsPerClient: 2, MaxStreams: 2}, 0, 0)
	var evicted []string
	a.onEvict = func(client string) { evicted = append(evicted, client) }

	canceled := map[string]bool{}
	admit := func(client, label string) func() {
		t.Helper()
		rel, _, ok := a.admitStream(client, func() { canceled[label] = true })
		if !ok {
			t.Fatalf("admitStream(%s/%s) rejected", client, label)
		}
		return rel
	}

	relA1 := admit("alice", "a1")
	admit("alice", "a2")
	if _, ra, ok := a.admitStream("alice", func() {}); ok || ra <= 0 {
		t.Fatalf("third alice stream: ok = %v ra = %v, want per-client rejection with a positive hint", ok, ra)
	}

	// Bob's first stream lands on the global cap: alice (2 streams to
	// bob's 0) is the fair-share victim, losing her OLDEST stream.
	admit("bob", "b1")
	if len(evicted) != 1 || evicted[0] != "alice" {
		t.Fatalf("evicted = %v, want [alice]", evicted)
	}
	if !canceled["a1"] || canceled["a2"] {
		t.Fatalf("canceled = %v, want a1 only (oldest first)", canceled)
	}

	// The evicted stream's handler still runs its deferred release; it
	// must not double-decrement and free a phantom slot.
	relA1()
	relA1()
	admit("carol", "c1") // at cap again: evicts from {alice:1, bob:1} -> tie, smallest key
	if len(evicted) != 2 || evicted[1] != "alice" {
		t.Fatalf("evicted = %v, want second eviction from alice (tie broken by key)", evicted)
	}
	if !canceled["a2"] {
		t.Fatal("tie-break eviction did not cancel a2")
	}
}

// TestServeAdmissionHTTP exercises the wired-up 429 surface: over-rate
// submissions get code rate_limited plus a Retry-After header, and
// distinct X-Client-ID values get distinct buckets.
func TestServeAdmissionHTTP(t *testing.T) {
	world := ps.NewRWMWorld(1, 200, ps.SensorConfig{})
	eng := ps.NewEngine(ps.NewAggregator(world))
	eng.Start()
	srv := New(eng, world, Options{Strategy: ps.StrategyAuto, RateLimit: 0.001, RateBurst: 1})
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		ts.Close()
		eng.Stop()
	})

	submit := func(clientID, qid string) *http.Response {
		t.Helper()
		body := `{"type":"point","id":"` + qid + `","loc":{"x":30,"y":30},"budget":15}`
		req, err := http.NewRequest(http.MethodPost, ts.URL+"/query", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		req.Header.Set("X-Client-ID", clientID)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp
	}

	if resp := submit("alice", "adm-1"); resp.StatusCode != http.StatusAccepted {
		t.Fatalf("first submit: %d, want 202", resp.StatusCode)
	}
	resp := submit("alice", "adm-2")
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("second submit: %d, want 429", resp.StatusCode)
	}
	ra, err := strconv.Atoi(resp.Header.Get("Retry-After"))
	if err != nil || ra < 1 {
		t.Fatalf("Retry-After = %q, want an integer >= 1", resp.Header.Get("Retry-After"))
	}
	// A different client identity is a different bucket.
	if resp := submit("bob", "adm-3"); resp.StatusCode != http.StatusAccepted {
		t.Fatalf("other client's submit: %d, want 202", resp.StatusCode)
	}
}
