package serve

import (
	"io"
	"net/http"
	"net/http/httptest"
	"sort"
	"strconv"
	"strings"
	"testing"

	ps "repro"
)

// promSample is one parsed exposition sample: a metric name, its label
// set minus "le" (the bucket key is kept separately), and the value.
type promSample struct {
	name   string
	labels string // canonical non-le label block, "" when unlabeled
	le     string // bucket boundary, "" for non-bucket samples
	value  float64
}

// parseProm is a strict-enough parser for the Prometheus text format
// 0.0.4: it returns the TYPE of every family and all samples, failing
// the test on any malformed line. It is the round-trip check that what
// WritePrometheus emits is what a scraper would ingest.
func parseProm(t *testing.T, text string) (types map[string]string, samples []promSample) {
	t.Helper()
	types = make(map[string]string)
	for _, line := range strings.Split(text, "\n") {
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "# TYPE ") {
			parts := strings.Fields(line)
			if len(parts) != 4 {
				t.Fatalf("malformed TYPE line %q", line)
			}
			types[parts[2]] = parts[3]
			continue
		}
		if strings.HasPrefix(line, "#") {
			continue // HELP or comment
		}
		sp := strings.LastIndexByte(line, ' ')
		if sp < 0 {
			t.Fatalf("malformed sample line %q", line)
		}
		val, err := strconv.ParseFloat(line[sp+1:], 64)
		if err != nil {
			t.Fatalf("bad value in %q: %v", line, err)
		}
		metric := line[:sp]
		s := promSample{name: metric, value: val}
		if i := strings.IndexByte(metric, '{'); i >= 0 {
			if !strings.HasSuffix(metric, "}") {
				t.Fatalf("unterminated label block in %q", line)
			}
			s.name = metric[:i]
			var rest []string
			for _, kv := range strings.Split(metric[i+1:len(metric)-1], ",") {
				k, v, ok := strings.Cut(kv, "=")
				if !ok || len(v) < 2 || v[0] != '"' || v[len(v)-1] != '"' {
					t.Fatalf("malformed label %q in %q", kv, line)
				}
				if k == "le" {
					s.le = v[1 : len(v)-1]
					continue
				}
				rest = append(rest, kv)
			}
			sort.Strings(rest)
			s.labels = strings.Join(rest, ",")
		}
		samples = append(samples, s)
	}
	return types, samples
}

// checkHistograms asserts every exposed histogram is internally
// consistent: cumulative buckets are monotone, the +Inf bucket equals
// _count, and _sum/_count exist for each child.
func checkHistograms(t *testing.T, types map[string]string, samples []promSample) {
	t.Helper()
	type child struct {
		buckets []promSample
		count   float64
		hasSum  bool
		hasCnt  bool
	}
	children := make(map[string]*child) // family \x00 labels
	get := func(fam, labels string) *child {
		k := fam + "\x00" + labels
		if children[k] == nil {
			children[k] = &child{}
		}
		return children[k]
	}
	for _, s := range samples {
		for fam, typ := range types {
			if typ != "histogram" {
				continue
			}
			switch s.name {
			case fam + "_bucket":
				c := get(fam, s.labels)
				c.buckets = append(c.buckets, s)
			case fam + "_sum":
				get(fam, s.labels).hasSum = true
			case fam + "_count":
				c := get(fam, s.labels)
				c.hasCnt, c.count = true, s.value
			}
		}
	}
	if len(children) == 0 {
		t.Fatal("no histogram children found in exposition")
	}
	for key, c := range children {
		if !c.hasSum || !c.hasCnt {
			t.Errorf("histogram child %q missing _sum or _count", key)
		}
		prev, prevLe := -1.0, -1.0
		sawInf := false
		for _, b := range c.buckets {
			le := b.le
			var bound float64
			if le == "+Inf" {
				sawInf, bound = true, 1e308
			} else {
				var err error
				if bound, err = strconv.ParseFloat(le, 64); err != nil {
					t.Fatalf("bad le %q in %q", le, key)
				}
			}
			if bound <= prevLe {
				t.Errorf("histogram %q buckets out of order at le=%s", key, le)
			}
			if b.value < prev {
				t.Errorf("histogram %q not cumulative at le=%s: %v < %v", key, le, b.value, prev)
			}
			prev, prevLe = b.value, bound
		}
		if !sawInf {
			t.Errorf("histogram %q has no +Inf bucket", key)
		} else if prev != c.count {
			t.Errorf("histogram %q +Inf bucket %v != count %v", key, prev, c.count)
		}
	}
}

// observedStack runs slots and HTTP traffic through a server so the
// registry has live samples in every layer's families.
func observedStack(t *testing.T, opts Options) (*ps.Engine, *Server, *httptest.Server) {
	t.Helper()
	world := ps.NewRWMWorld(1, 200, ps.SensorConfig{})
	eng := ps.NewEngine(ps.NewAggregator(world))
	eng.Start()
	api := New(eng, world, opts)
	ts := httptest.NewServer(api.Handler())
	t.Cleanup(func() {
		ts.Close()
		eng.Stop()
	})
	status, _ := postJSON(t, ts.URL+"/query", map[string]any{
		"type": "point", "id": "obs1", "loc": map[string]float64{"x": 30, "y": 30}, "budget": 20,
	})
	if status != http.StatusAccepted {
		t.Fatalf("submit status %d", status)
	}
	if err := eng.RunSlots(2); err != nil {
		t.Fatal(err)
	}
	return eng, api, ts
}

func getBody(t *testing.T, url string, accept string) (int, string, http.Header) {
	t.Helper()
	req, err := http.NewRequest("GET", url, nil)
	if err != nil {
		t.Fatal(err)
	}
	if accept != "" {
		req.Header.Set("Accept", accept)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(b), resp.Header
}

// GET /metrics with Accept: text/plain serves a parseable Prometheus
// exposition carrying the slot-stage latency histograms and the hub
// subscriber-lag gauge; every histogram round-trips consistently.
func TestMetricsPrometheusRoundTrip(t *testing.T) {
	_, _, ts := observedStack(t, Options{Strategy: ps.StrategyAuto})

	// One scrape to populate the HTTP families, then the scrape under test.
	getBody(t, ts.URL+"/metrics", "text/plain")
	status, body, hdr := getBody(t, ts.URL+"/metrics", "text/plain")
	if status != http.StatusOK {
		t.Fatalf("status %d", status)
	}
	if ct := hdr.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Errorf("Content-Type = %q", ct)
	}

	types, samples := parseProm(t, body)
	checkHistograms(t, types, samples)

	wantTypes := map[string]string{
		"ps_slot_stage_duration_seconds":   "histogram",
		"ps_slot_duration_seconds":         "histogram",
		"ps_hub_subscriber_lag_events":     "gauge",
		"ps_http_request_duration_seconds": "histogram",
		"ps_http_requests_total":           "counter",
		"ps_build_info":                    "gauge",
		"ps_slots_total":                   "counter",
	}
	for name, typ := range wantTypes {
		if got := types[name]; got != typ {
			t.Errorf("family %s: type %q, want %q", name, got, typ)
		}
	}

	find := func(name, labelSub string) *promSample {
		for i, s := range samples {
			if s.name == name && strings.Contains(s.labels, labelSub) {
				return &samples[i]
			}
		}
		return nil
	}
	if s := find("ps_slot_stage_duration_seconds_count", `stage="selection"`); s == nil || s.value != 2 {
		t.Errorf("selection stage count sample = %+v, want 2", s)
	}
	if s := find("ps_hub_subscriber_lag_events", ""); s == nil {
		t.Error("no hub subscriber-lag gauge sample")
	}
	if s := find("ps_http_requests_total", `route="GET /metrics"`); s == nil || s.value < 1 {
		t.Errorf("GET /metrics request counter = %+v, want >= 1", s)
	}
	if s := find("ps_build_info", "goversion"); s == nil || s.value != 1 {
		t.Errorf("ps_build_info = %+v, want 1", s)
	}
}

// The default /metrics representation stays the JSON document, and the
// explicit format override works both ways.
func TestMetricsContentNegotiation(t *testing.T) {
	_, _, ts := observedStack(t, Options{Strategy: ps.StrategyAuto})

	status, m := getJSON(t, ts.URL+"/metrics")
	if status != http.StatusOK || m["slots"].(float64) != 2 {
		t.Fatalf("JSON metrics: status %d m %v", status, m)
	}
	if _, ok := m["slot_stages"].([]any); !ok {
		t.Errorf("JSON metrics missing slot_stages: %v", m["slot_stages"])
	}

	status, body, _ := getBody(t, ts.URL+"/metrics?format=prometheus", "")
	if status != http.StatusOK || !strings.Contains(body, "# TYPE ps_slots_total counter") {
		t.Errorf("format=prometheus: status %d body %.120q", status, body)
	}
	status, body, _ = getBody(t, ts.URL+"/metrics?format=json", "text/plain")
	if status != http.StatusOK || !strings.HasPrefix(body, "{") {
		t.Errorf("format=json override: status %d body %.60q", status, body)
	}
}

// Every metric in a fully wired server (engine + hub + HTTP layers)
// passes the naming lint: prefix, suffix and charset conventions.
func TestMetricNamingLint(t *testing.T) {
	eng, _, ts := observedStack(t, Options{Strategy: ps.StrategyAuto})
	getBody(t, ts.URL+"/metrics", "text/plain") // populate HTTP families
	if err := eng.Observability().Validate(); err != nil {
		t.Fatalf("metric naming violations:\n%v", err)
	}
}

// /healthz reports build identity and uptime alongside liveness.
func TestHealthzBuildInfo(t *testing.T) {
	_, _, ts := observedStack(t, Options{Strategy: ps.StrategyAuto})
	status, h := getJSON(t, ts.URL+"/healthz")
	if status != http.StatusOK || h["ok"] != true {
		t.Fatalf("healthz: status %d body %v", status, h)
	}
	if gv, _ := h["go_version"].(string); !strings.HasPrefix(gv, "go") {
		t.Errorf("go_version = %v", h["go_version"])
	}
	up, ok := h["uptime_seconds"].(float64)
	if !ok || up < 0 {
		t.Errorf("uptime_seconds = %v", h["uptime_seconds"])
	}
}

// The pprof and expvar surfaces are mounted only when Options.Debug is
// set.
func TestDebugEndpointsGated(t *testing.T) {
	_, _, off := observedStack(t, Options{Strategy: ps.StrategyAuto})
	for _, path := range []string{"/debug/pprof/", "/debug/vars"} {
		if status, _, _ := getBody(t, off.URL+path, ""); status != http.StatusNotFound {
			t.Errorf("debug off: GET %s status %d, want 404", path, status)
		}
	}

	_, _, on := observedStack(t, Options{Strategy: ps.StrategyAuto, Debug: true})
	for _, path := range []string{"/debug/pprof/", "/debug/pprof/goroutine?debug=1", "/debug/vars"} {
		status, body, _ := getBody(t, on.URL+path, "")
		if status != http.StatusOK {
			t.Errorf("debug on: GET %s status %d", path, status)
		}
		if path == "/debug/vars" && !strings.Contains(body, "memstats") {
			t.Errorf("expvar body missing memstats: %.80q", body)
		}
	}
}
