package serve

import (
	"math"
	"net"
	"net/http"
	"strconv"
	"sync"
	"time"
)

// admission is the serve layer's overload-defense front door, checked
// before any request reaches the engine:
//
//   - a per-client token bucket (keyed by X-Client-ID, falling back to
//     the request's source address) bounds the sustained submission rate
//     one client can impose;
//   - a queue-depth high-water mark rejects submissions early once the
//     engine's ingest queue is mostly full, so clients get an immediate
//     429 + Retry-After instead of racing for the last slots;
//   - per-client and global caps on concurrent /watch streams, with
//     fair-share eviction of the greediest client's oldest stream when
//     the global cap is hit — the evicted client's SDK reconnects and
//     resumes from its cursor, with anything missed surfacing as gap
//     frames.
//
// All knobs default to off (see Options); a zero-configured admission
// admits everything. The clock is injectable for table tests.
type admission struct {
	rate       float64 // tokens (submissions) per second per client; <=0 disables
	burst      float64 // bucket capacity
	highWater  float64 // ingest-queue admission threshold, fraction of cap; <=0 disables
	perClient  int     // max concurrent watch streams per client; <=0 unlimited
	maxStreams int     // global cap on watch streams; <=0 unlimited

	queueStats func() (depth, capacity int)
	now        func() time.Time
	// onEvict is called (outside a.mu is NOT guaranteed — it runs under
	// it; keep it cheap) for every fair-share stream eviction.
	onEvict func(client string)

	mu      sync.Mutex
	buckets map[string]*clientBucket
	streams int   // active watch streams across all clients
	seq     int64 // admission order of streams, for oldest-first eviction
}

// clientBucket is one client's admission state: its token bucket and its
// live watch streams (by admission sequence, for oldest-first eviction).
type clientBucket struct {
	tokens float64
	last   time.Time
	live   map[int64]func() // seq -> cancel for active watch streams
}

func newAdmission(o Options, queueStats func() (int, int)) *admission {
	burst := float64(o.RateBurst)
	if burst <= 0 {
		// Default burst: one second's worth of tokens, at least 1.
		burst = math.Max(1, o.RateLimit)
	}
	return &admission{
		rate:       o.RateLimit,
		burst:      burst,
		highWater:  o.HighWater,
		perClient:  o.MaxStreamsPerClient,
		maxStreams: o.MaxStreams,
		queueStats: queueStats,
		now:        time.Now,
		buckets:    make(map[string]*clientBucket),
	}
}

// clientKey identifies the logical client a request belongs to: the
// X-Client-ID header when present (SDKs set it via
// psclient.WithClientID), else the source host of the connection.
func clientKey(r *http.Request) string {
	if id := r.Header.Get("X-Client-ID"); id != "" {
		return id
	}
	host, _, err := net.SplitHostPort(r.RemoteAddr)
	if err != nil {
		return r.RemoteAddr
	}
	return host
}

// bucketLocked returns (creating if needed) the client's bucket with its
// tokens refilled to now. Caller holds a.mu.
func (a *admission) bucketLocked(client string, now time.Time) *clientBucket {
	b := a.buckets[client]
	if b == nil {
		if len(a.buckets) >= bucketSweepAt {
			a.sweepBucketsLocked(now)
		}
		b = &clientBucket{tokens: a.burst, last: now}
		a.buckets[client] = b
	} else {
		if el := now.Sub(b.last); el > 0 {
			b.tokens = math.Min(a.burst, b.tokens+el.Seconds()*a.rate)
		}
		b.last = now
	}
	return b
}

// bucketSweepAt bounds the bucket map: when a new client would push past
// it, full-and-idle buckets are dropped (they rebuild at full burst, so
// dropping one never grants extra tokens).
const bucketSweepAt = 4096

// sweepBucketsLocked drops buckets that hold no live streams and have
// refilled to capacity — forgetting them is lossless. Caller holds a.mu.
func (a *admission) sweepBucketsLocked(now time.Time) {
	for k, b := range a.buckets {
		if len(b.live) > 0 {
			continue
		}
		tokens := math.Min(a.burst, b.tokens+now.Sub(b.last).Seconds()*a.rate)
		if tokens >= a.burst {
			delete(a.buckets, k)
		}
	}
}

// admitSubmit charges n submissions against the client's token bucket.
// ok reports admission; when rejected, retryAfter is how long the client
// should wait for the deficit to refill. A batch larger than the burst
// is charged the full bucket, so oversized batches still make progress
// one bucket at a time.
func (a *admission) admitSubmit(client string, n int) (retryAfter time.Duration, ok bool) {
	if a.rate <= 0 {
		return 0, true
	}
	cost := math.Min(float64(n), a.burst)
	a.mu.Lock()
	defer a.mu.Unlock()
	b := a.bucketLocked(client, a.now())
	if b.tokens >= cost {
		b.tokens -= cost
		return 0, true
	}
	deficit := cost - b.tokens
	return time.Duration(deficit / a.rate * float64(time.Second)), false
}

// admitQueue applies the queue-depth high-water mark: submissions are
// rejected once the engine's ingest queue is at or past
// highWater*capacity, with a Retry-After scaled by how deep into the red
// zone the queue is (1s at the mark, up to 5s when completely full).
func (a *admission) admitQueue() (retryAfter time.Duration, ok bool) {
	if a.highWater <= 0 {
		return 0, true
	}
	depth, capacity := a.queueStats()
	if capacity <= 0 {
		return 0, true
	}
	mark := a.highWater * float64(capacity)
	if float64(depth) < mark {
		return 0, true
	}
	return a.pressureRetryAfter(), false
}

// pressureRetryAfter derives a Retry-After hint from current queue
// pressure: 1s when the queue is empty, growing linearly to 5s when
// full. Used both for high-water rejections and for ErrQueueFull/ErrShed
// rejections surfacing from the engine itself.
func (a *admission) pressureRetryAfter() time.Duration {
	depth, capacity := a.queueStats()
	frac := 0.0
	if capacity > 0 {
		frac = float64(depth) / float64(capacity)
	}
	return time.Duration((1 + 4*frac) * float64(time.Second))
}

// admitStream registers a watch stream for the client. cancel must abort
// the stream when invoked (fair-share eviction calls it). On admission
// the returned release must be deferred by the handler; on rejection
// (per-client cap) retryAfter hints when to try again.
func (a *admission) admitStream(client string, cancel func()) (release func(), retryAfter time.Duration, ok bool) {
	a.mu.Lock()
	defer a.mu.Unlock()
	b := a.bucketLocked(client, a.now())
	if a.perClient > 0 && len(b.live) >= a.perClient {
		return nil, time.Second, false
	}
	if a.maxStreams > 0 && a.streams >= a.maxStreams {
		a.evictFairShareLocked()
	}
	a.seq++
	seq := a.seq
	if b.live == nil {
		b.live = make(map[int64]func())
	}
	b.live[seq] = cancel
	a.streams++
	return func() {
		a.mu.Lock()
		defer a.mu.Unlock()
		if bb := a.buckets[client]; bb != nil {
			if _, present := bb.live[seq]; present {
				delete(bb.live, seq)
				a.streams--
			}
		}
	}, 0, true
}

// evictFairShareLocked cancels the oldest stream of the client holding
// the most streams (ties broken by smallest client key, for determinism)
// — the fair-share policy: a greedy watcher loses its stalest stream
// first, clients at their fair share are never evicted by a newcomer
// with equal standing. Caller holds a.mu.
func (a *admission) evictFairShareLocked() {
	var victim string
	most := 0
	for k, b := range a.buckets {
		n := len(b.live)
		if n > most || (n == most && n > 0 && (victim == "" || k < victim)) {
			victim, most = k, n
		}
	}
	if victim == "" {
		return
	}
	b := a.buckets[victim]
	oldest := int64(math.MaxInt64)
	for seq := range b.live {
		if seq < oldest {
			oldest = seq
		}
	}
	cancel := b.live[oldest]
	delete(b.live, oldest)
	a.streams--
	if a.onEvict != nil {
		a.onEvict(victim)
	}
	cancel()
}

// retryAfterSeconds renders a Retry-After header value: whole seconds,
// rounded up, at least 1.
func retryAfterSeconds(d time.Duration) string {
	s := int(math.Ceil(d.Seconds()))
	if s < 1 {
		s = 1
	}
	return strconv.Itoa(s)
}
