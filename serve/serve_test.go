package serve

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	ps "repro"
	"repro/wire"
)

// newTestStack builds a virtual-clock engine behind the HTTP handler so
// the test controls slot execution deterministically.
func newTestStack(t *testing.T, opts ...ps.Option) (*ps.Engine, *httptest.Server) {
	t.Helper()
	world := ps.NewRWMWorld(1, 200, ps.SensorConfig{})
	eng := ps.NewEngine(ps.NewAggregator(world, opts...))
	eng.Start()
	ts := httptest.NewServer(New(eng, world, Options{Strategy: ps.StrategyAuto}).Handler())
	t.Cleanup(func() {
		ts.Close()
		eng.Stop()
	})
	return eng, ts
}

func postJSON(t *testing.T, url string, body any) (int, map[string]any) {
	t.Helper()
	buf, err := json.Marshal(body)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(buf))
	if err != nil {
		t.Fatalf("POST %s: %v", url, err)
	}
	defer resp.Body.Close()
	var out map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatalf("decode: %v", err)
	}
	return resp.StatusCode, out
}

func getJSON(t *testing.T, url string) (int, map[string]any) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	var out map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatalf("decode: %v", err)
	}
	return resp.StatusCode, out
}

func TestServePointQueryEndToEnd(t *testing.T) {
	eng, ts := newTestStack(t)

	status, resp := postJSON(t, ts.URL+"/query", map[string]any{
		"type": "point", "id": "p1", "loc": map[string]float64{"x": 30, "y": 30}, "budget": 20,
	})
	if status != http.StatusAccepted || resp["id"] != "p1" {
		t.Fatalf("submit: status %d resp %v", status, resp)
	}

	if err := eng.RunSlots(1); err != nil {
		t.Fatalf("RunSlots: %v", err)
	}

	// The consumer goroutine moves the result into the registry; poll briefly.
	deadline := time.Now().Add(5 * time.Second)
	for {
		status, resp = getJSON(t, ts.URL+"/query/p1")
		if status != http.StatusOK {
			t.Fatalf("get: status %d resp %v", status, resp)
		}
		if resp["done"] == true {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("query never completed: %v", resp)
		}
		time.Sleep(time.Millisecond)
	}
	results, ok := resp["results"].([]any)
	if !ok || len(results) != 1 {
		t.Fatalf("results = %v, want exactly 1", resp["results"])
	}
	r0 := results[0].(map[string]any)
	if r0["final"] != true {
		t.Errorf("result not final: %v", r0)
	}
	if r0["answered"] == true {
		if v, p := r0["value"].(float64), r0["payment"].(float64); p >= v {
			t.Errorf("payment %v >= value %v", p, v)
		}
	}

	// Engine metrics reflect the slot.
	status, m := getJSON(t, ts.URL+"/metrics")
	if status != http.StatusOK || m["slots"].(float64) != 1 || m["queries_submitted"].(float64) != 1 {
		t.Fatalf("metrics = %v", m)
	}
	status, h := getJSON(t, ts.URL+"/healthz")
	if status != http.StatusOK || h["ok"] != true {
		t.Fatalf("healthz = %v", h)
	}

	// Canceling an already-finished query is not "canceling": 410.
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/query/p1", nil)
	dresp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("DELETE: %v", err)
	}
	dresp.Body.Close()
	if dresp.StatusCode != http.StatusGone {
		t.Errorf("DELETE finished query: status %d, want 410", dresp.StatusCode)
	}
}

// TestServeAcceptsLegacyAndV1Envelopes: the same submission works as a
// legacy (unversioned) body and as a v1 envelope; future versions are
// refused.
func TestServeAcceptsLegacyAndV1Envelopes(t *testing.T) {
	eng, ts := newTestStack(t)

	legacy := map[string]any{
		"type": "point", "id": "legacy", "loc": map[string]float64{"x": 30, "y": 30}, "budget": 20,
	}
	if status, resp := postJSON(t, ts.URL+"/query", legacy); status != http.StatusAccepted {
		t.Fatalf("legacy body: status %d resp %v", status, resp)
	}
	v1 := map[string]any{
		"v": 1, "type": "point", "id": "v1", "loc": map[string]float64{"x": 31, "y": 31}, "budget": 20,
	}
	if status, resp := postJSON(t, ts.URL+"/query", v1); status != http.StatusAccepted {
		t.Fatalf("v1 envelope: status %d resp %v", status, resp)
	}
	future := map[string]any{
		"v": 99, "type": "point", "id": "future", "loc": map[string]float64{"x": 31, "y": 31}, "budget": 20,
	}
	if status, _ := postJSON(t, ts.URL+"/query", future); status != http.StatusBadRequest {
		t.Errorf("future envelope version: status %d, want 400", status)
	}

	if err := eng.RunSlots(1); err != nil {
		t.Fatalf("RunSlots: %v", err)
	}
	for _, id := range []string{"legacy", "v1"} {
		deadline := time.Now().Add(5 * time.Second)
		for {
			_, resp := getJSON(t, ts.URL+"/query/"+id)
			if resp["done"] == true {
				break
			}
			if time.Now().After(deadline) {
				t.Fatalf("query %s never completed: %v", id, resp)
			}
			time.Sleep(time.Millisecond)
		}
	}
}

func TestServeContinuousCancel(t *testing.T) {
	eng, ts := newTestStack(t)

	status, resp := postJSON(t, ts.URL+"/query", map[string]any{
		"type": "locmon", "loc": map[string]float64{"x": 30, "y": 30},
		"budget": 120, "duration": 20, "samples": 5,
	})
	if status != http.StatusAccepted {
		t.Fatalf("submit: status %d resp %v", status, resp)
	}
	id := resp["id"].(string)
	if err := eng.RunSlots(2); err != nil {
		t.Fatalf("RunSlots: %v", err)
	}

	req, _ := http.NewRequest(http.MethodDelete, fmt.Sprintf("%s/query/%s", ts.URL, id), nil)
	cresp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("DELETE: %v", err)
	}
	cresp.Body.Close()
	if cresp.StatusCode != http.StatusOK {
		t.Fatalf("cancel status = %d", cresp.StatusCode)
	}

	deadline := time.Now().Add(5 * time.Second)
	for {
		_, resp = getJSON(t, ts.URL+"/query/"+id)
		if resp["done"] == true {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("cancel never completed: %v", resp)
		}
		time.Sleep(time.Millisecond)
	}
	if resp["error"] != ps.ErrCanceled.Error() {
		t.Fatalf("error = %v, want %q", resp["error"], ps.ErrCanceled.Error())
	}
	if results := resp["results"].([]any); len(results) != 2 {
		t.Fatalf("got %d results before cancel, want 2", len(results))
	}
}

func TestServeBadRequests(t *testing.T) {
	_, ts := newTestStack(t)

	status, _ := postJSON(t, ts.URL+"/query", map[string]any{"type": "nonsense"})
	if status != http.StatusBadRequest {
		t.Errorf("unknown type: status %d, want 400", status)
	}
	status, _ = postJSON(t, ts.URL+"/query", map[string]any{"type": "point", "budget": 10})
	if status != http.StatusBadRequest {
		t.Errorf("missing loc: status %d, want 400", status)
	}
	status, _ = getJSON(t, ts.URL+"/query/absent")
	if status != http.StatusNotFound {
		t.Errorf("unknown id: status %d, want 404", status)
	}
	// Spec validation runs before the engine sees the submission: a
	// negative budget or a zero-duration window is a synchronous 400.
	status, _ = postJSON(t, ts.URL+"/query", map[string]any{
		"type": "point", "loc": map[string]float64{"x": 30, "y": 30}, "budget": -5,
	})
	if status != http.StatusBadRequest {
		t.Errorf("negative budget: status %d, want 400", status)
	}
	status, _ = postJSON(t, ts.URL+"/query", map[string]any{
		"type": "locmon", "loc": map[string]float64{"x": 30, "y": 30}, "budget": 100,
	})
	if status != http.StatusBadRequest {
		t.Errorf("zero duration: status %d, want 400", status)
	}
	// regmon needs a GP world; the RWM test world must be rejected up
	// front with 400, not accepted into a subscription that cannot work.
	status, _ = postJSON(t, ts.URL+"/query", map[string]any{
		"type": "regmon", "region": map[string]float64{"x0": 20, "y0": 20, "x1": 40, "y1": 40},
		"budget": 100, "duration": 5,
	})
	if status != http.StatusBadRequest {
		t.Errorf("regmon without GP model: status %d, want 400", status)
	}

	// A live query ID cannot be reused: the registry rejects it without
	// touching the engine, so the original record stays reachable.
	body := map[string]any{"type": "locmon", "id": "taken",
		"loc": map[string]float64{"x": 30, "y": 30}, "budget": 120, "duration": 20, "samples": 5}
	if status, _ := postJSON(t, ts.URL+"/query", body); status != http.StatusAccepted {
		t.Fatalf("first submit: status %d", status)
	}
	if status, _ := postJSON(t, ts.URL+"/query", body); status != http.StatusConflict {
		t.Errorf("duplicate live id: status %d, want 409", status)
	}
}

// TestServeListQueries: GET /queries pages through the registry in ID
// order with done/result-count summaries.
func TestServeListQueries(t *testing.T) {
	eng, ts := newTestStack(t)

	for i := 0; i < 5; i++ {
		status, _ := postJSON(t, ts.URL+"/query", map[string]any{
			"v": 1, "type": "point", "id": fmt.Sprintf("list-%d", i),
			"loc": map[string]float64{"x": 30, "y": 30}, "budget": 20,
		})
		if status != http.StatusAccepted {
			t.Fatalf("submit %d: status %d", i, status)
		}
	}
	status, list := getJSON(t, ts.URL+"/queries")
	if status != http.StatusOK {
		t.Fatalf("list: status %d", status)
	}
	if list["total"].(float64) != 5 || list["count"].(float64) != 5 {
		t.Fatalf("list = %v, want total 5 count 5", list)
	}
	rows := list["queries"].([]any)
	for i, row := range rows {
		r := row.(map[string]any)
		if want := fmt.Sprintf("list-%d", i); r["id"] != want {
			t.Errorf("row %d id = %v, want %s (ID-ordered)", i, r["id"], want)
		}
		if r["type"] != "point" {
			t.Errorf("row %d type = %v", i, r["type"])
		}
	}

	// Pagination: offset 3, limit 10 -> the last two.
	_, page := getJSON(t, ts.URL+"/queries?offset=3&limit=10")
	if page["count"].(float64) != 2 || page["offset"].(float64) != 3 {
		t.Fatalf("page = %v, want count 2 offset 3", page)
	}
	// Limit 2 from the start.
	_, page = getJSON(t, ts.URL+"/queries?limit=2")
	if page["count"].(float64) != 2 || page["total"].(float64) != 5 {
		t.Fatalf("page = %v, want count 2 total 5", page)
	}
	// Offset past the end: empty page, not an error.
	_, page = getJSON(t, ts.URL+"/queries?offset=99")
	if page["count"].(float64) != 0 {
		t.Fatalf("page past end = %v, want count 0", page)
	}
	// Bad parameters are 400s.
	if st, _ := getJSON(t, ts.URL+"/queries?offset=-1"); st != http.StatusBadRequest {
		t.Errorf("negative offset: status %d, want 400", st)
	}
	if st, _ := getJSON(t, ts.URL+"/queries?limit=zero"); st != http.StatusBadRequest {
		t.Errorf("non-numeric limit: status %d, want 400", st)
	}

	// After a slot, the records finish and report their result counts.
	if err := eng.RunSlots(1); err != nil {
		t.Fatalf("RunSlots: %v", err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		_, list = getJSON(t, ts.URL+"/queries")
		done := 0
		for _, row := range list["queries"].([]any) {
			r := row.(map[string]any)
			if r["done"] == true && r["results"].(float64) == 1 {
				done++
			}
		}
		if done == 5 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("records never finished: %v", list)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestServeStrategyAndSelectionMetrics drives a mixed slot through the
// lazy strategy and checks that /metrics exposes the valuation-call and
// lazy-heap counters, and that /strategy switches at runtime.
func TestServeStrategyAndSelectionMetrics(t *testing.T) {
	eng, ts := newTestStack(t, ps.WithGreedyStrategy(ps.StrategyLazy))

	// An aggregate query routes the slot through the greedy mix pipeline.
	status, _ := postJSON(t, ts.URL+"/query", map[string]any{
		"type": "aggregate", "id": "a1",
		"region": map[string]float64{"x0": 20, "y0": 20, "x1": 45, "y1": 45}, "budget": 300,
	})
	if status != http.StatusAccepted {
		t.Fatalf("submit aggregate: status %d", status)
	}
	postJSON(t, ts.URL+"/query", map[string]any{
		"type": "point", "id": "p1", "loc": map[string]float64{"x": 30, "y": 30}, "budget": 20,
	})
	if err := eng.RunSlots(1); err != nil {
		t.Fatalf("RunSlots: %v", err)
	}

	status, m := getJSON(t, ts.URL+"/metrics")
	if status != http.StatusOK {
		t.Fatalf("metrics: status %d", status)
	}
	if m["valuation_calls"].(float64) <= 0 {
		t.Errorf("valuation_calls = %v, want > 0", m["valuation_calls"])
	}
	if m["strategy_last_slot"] != "lazy" {
		t.Errorf("strategy_last_slot = %v, want lazy", m["strategy_last_slot"])
	}
	for _, key := range []string{"valuation_calls_saved", "lazy_reevaluations", "submodularity_violations", "fallback_rescans"} {
		if _, ok := m[key].(float64); !ok {
			t.Errorf("metrics missing %s: %v", key, m[key])
		}
	}

	// Runtime strategy switch: reported by GET /strategy and used by the
	// next slot.
	status, resp := postJSON(t, ts.URL+"/strategy", map[string]any{"strategy": "sharded"})
	if status != http.StatusOK || resp["strategy"] != "sharded" {
		t.Fatalf("set strategy: status %d resp %v", status, resp)
	}
	status, resp = getJSON(t, ts.URL+"/strategy")
	if status != http.StatusOK || resp["strategy"] != "sharded" {
		t.Fatalf("get strategy: status %d resp %v", status, resp)
	}
	if status, _ := postJSON(t, ts.URL+"/strategy", map[string]any{"strategy": "nonsense"}); status != http.StatusBadRequest {
		t.Errorf("bad strategy: status %d, want 400", status)
	}
	// A missing "strategy" field must not silently reset a live engine
	// to auto.
	if status, _ := postJSON(t, ts.URL+"/strategy", map[string]any{}); status != http.StatusBadRequest {
		t.Errorf("empty strategy: status %d, want 400", status)
	}
}

// TestServeAutoIDSkipsLiveClientIDs: a server-assigned ID never
// collides with a live client-chosen one.
func TestServeAutoIDSkipsLiveClientIDs(t *testing.T) {
	_, ts := newTestStack(t)

	// A client explicitly claims "q1" with a long-lived query.
	status, _ := postJSON(t, ts.URL+"/query", map[string]any{
		"v": 1, "type": "locmon", "id": "q1",
		"loc": map[string]float64{"x": 30, "y": 30}, "budget": 120, "duration": 100, "samples": 5,
	})
	if status != http.StatusAccepted {
		t.Fatalf("explicit submit: status %d", status)
	}
	// An ID-less submission must get a fresh ID, not a 409 on "q1".
	status, resp := postJSON(t, ts.URL+"/query", map[string]any{
		"v": 1, "type": "point", "loc": map[string]float64{"x": 30, "y": 30}, "budget": 20,
	})
	if status != http.StatusAccepted {
		t.Fatalf("auto-ID submit: status %d resp %v", status, resp)
	}
	if resp["id"] == "q1" || resp["id"] == "" {
		t.Fatalf("auto-assigned id = %v, want a fresh non-conflicting id", resp["id"])
	}
}

func TestRegistrySweepEvictsFinishedRecords(t *testing.T) {
	world := ps.NewRWMWorld(2, 50, ps.SensorConfig{})
	eng := ps.NewEngine(ps.NewAggregator(world))
	defer eng.Stop()
	s := New(eng, world, Options{NoRetention: true}) // done records evict immediately

	s.queries["old-done"] = &queryRecord{id: "old-done", done: true, doneAt: time.Now().Add(-time.Minute)}
	s.queries["live"] = &queryRecord{id: "live"}
	s.mu.Lock()
	s.sweepLocked()
	s.mu.Unlock()
	if _, ok := s.queries["old-done"]; ok {
		t.Error("finished record survived the sweep")
	}
	if _, ok := s.queries["live"]; !ok {
		t.Error("live record was evicted")
	}
}

// --- push delivery (wire v2) ---

// watchFrames opens GET /watch and decodes frames until the stream ends
// or a terminal/server_closing frame arrives.
func watchFrames(t *testing.T, url string, sse bool) []wire.EventFrame {
	t.Helper()
	req, err := http.NewRequest(http.MethodGet, url, nil)
	if err != nil {
		t.Fatal(err)
	}
	if sse {
		req.Header.Set("Accept", "text/event-stream")
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: status %d", url, resp.StatusCode)
	}
	wantCT := "application/x-ndjson"
	if sse {
		wantCT = "text/event-stream"
	}
	if ct := resp.Header.Get("Content-Type"); ct != wantCT {
		t.Fatalf("Content-Type = %q, want %q", ct, wantCT)
	}
	var frames []wire.EventFrame
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		if sse {
			if !strings.HasPrefix(line, "data: ") {
				continue // blank separator lines
			}
			line = strings.TrimPrefix(line, "data: ")
		}
		if line == "" {
			continue
		}
		f, err := wire.DecodeEventFrame([]byte(line))
		if err != nil {
			t.Fatalf("bad frame %q: %v", line, err)
		}
		frames = append(frames, f)
		if f.Terminal() || f.Event == wire.FrameServerClosing {
			return frames
		}
	}
	return frames
}

// TestServeWatchEndToEnd: a watcher opened before the slot runs receives
// accepted → slot_update → final as pushed NDJSON, with no polling.
func TestServeWatchEndToEnd(t *testing.T) {
	eng, ts := newTestStack(t)

	status, _ := postJSON(t, ts.URL+"/query", map[string]any{
		"v": 1, "type": "point", "id": "w1", "loc": map[string]float64{"x": 30, "y": 30}, "budget": 20,
	})
	if status != http.StatusAccepted {
		t.Fatalf("submit: status %d", status)
	}
	framesCh := make(chan []wire.EventFrame, 1)
	go func() { framesCh <- watchFrames(t, ts.URL+"/watch?id=w1", false) }()
	// Give the watcher a moment to attach, then run the slot.
	time.Sleep(20 * time.Millisecond)
	if err := eng.RunSlots(1); err != nil {
		t.Fatalf("RunSlots: %v", err)
	}
	frames := <-framesCh
	if len(frames) != 3 {
		t.Fatalf("frames = %+v, want accepted, slot_update, final", frames)
	}
	if frames[0].Event != wire.FrameAccepted || frames[0].Start != 0 || frames[0].End != 0 || frames[0].Slot != -1 {
		t.Errorf("accepted = %+v", frames[0])
	}
	if frames[1].Event != wire.FrameSlotUpdate || frames[1].Slot != 0 || frames[1].Result == nil || !frames[1].Result.Final {
		t.Errorf("slot_update = %+v", frames[1])
	}
	if frames[1].TS == 0 {
		t.Error("slot_update missing publish timestamp")
	}
	if frames[2].Event != wire.FrameFinal || frames[2].Slot != 0 {
		t.Errorf("final = %+v", frames[2])
	}
	for _, f := range frames {
		if f.ID != "w1" || f.V != wire.Version2 {
			t.Errorf("frame misrouted: %+v", f)
		}
	}
}

// TestServeWatchReplayAndCursorResume: a watcher attaching after slots
// ran gets the history replayed; resuming with ?cursor= skips what it
// already has; a finished query's stream replays and terminates without
// a live engine subscription.
func TestServeWatchReplayAndCursorResume(t *testing.T) {
	eng, ts := newTestStack(t)

	status, resp := postJSON(t, ts.URL+"/query", map[string]any{
		"v": 1, "type": "locmon", "id": "wl", "loc": map[string]float64{"x": 30, "y": 30},
		"budget": 200, "duration": 5, "samples": 3,
	})
	if status != http.StatusAccepted {
		t.Fatalf("submit: status %d resp %v", status, resp)
	}
	if err := eng.RunSlots(3); err != nil {
		t.Fatalf("RunSlots: %v", err)
	}
	// Wait for the record to have consumed the three slots.
	waitForResults(t, ts.URL, "wl", 3)

	// Late watcher: replayed history + live tail to final.
	framesCh := make(chan []wire.EventFrame, 1)
	go func() { framesCh <- watchFrames(t, ts.URL+"/watch?id=wl", false) }()
	time.Sleep(20 * time.Millisecond)
	if err := eng.RunSlots(2); err != nil {
		t.Fatalf("RunSlots tail: %v", err)
	}
	frames := <-framesCh
	var slots []int
	for _, f := range frames {
		if f.Event == wire.FrameSlotUpdate {
			slots = append(slots, f.Slot)
		}
	}
	if want := []int{0, 1, 2, 3, 4}; !intsEqual(slots, want) {
		t.Fatalf("slots = %v, want %v (frames %+v)", slots, want, frames)
	}
	if frames[0].Event != wire.FrameAccepted || frames[len(frames)-1].Event != wire.FrameFinal {
		t.Fatalf("frames = %+v, want accepted first, final last", frames)
	}

	// Finished query, resume from cursor 2: only slots 3,4 + final, no
	// accepted (its cursor -1 <= 2).
	resumed := watchFrames(t, ts.URL+"/watch?id=wl&cursor=2", false)
	slots = nil
	for _, f := range resumed {
		if f.Event == wire.FrameAccepted {
			t.Errorf("resume replayed accepted: %+v", f)
		}
		if f.Event == wire.FrameSlotUpdate {
			slots = append(slots, f.Slot)
		}
	}
	if want := []int{3, 4}; !intsEqual(slots, want) {
		t.Fatalf("resumed slots = %v, want %v", slots, want)
	}
	if resumed[len(resumed)-1].Event != wire.FrameFinal {
		t.Fatalf("resumed frames = %+v, want final last", resumed)
	}

	// Cursor at the end: terminal frame only.
	tail := watchFrames(t, ts.URL+"/watch?id=wl&cursor=99", false)
	if len(tail) != 1 || tail[0].Event != wire.FrameFinal {
		t.Fatalf("tail frames = %+v, want just the final", tail)
	}

	// Unknown id is a 404 with the stable code.
	req, _ := http.NewRequest(http.MethodGet, ts.URL+"/watch?id=absent", nil)
	r2, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	var eb wire.ErrorBody
	json.NewDecoder(r2.Body).Decode(&eb)
	r2.Body.Close()
	if r2.StatusCode != http.StatusNotFound || eb.Code != wire.CodeUnknownQuery {
		t.Errorf("watch unknown: status %d code %q", r2.StatusCode, eb.Code)
	}
}

func intsEqual(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func waitForResults(t *testing.T, base, id string, n int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		_, resp := getJSON(t, base+"/query/"+id)
		if rs, ok := resp["results"].([]any); ok && len(rs) >= n {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("record never reached %d results: %v", n, resp)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestServeWatchSSE: the same stream in Server-Sent-Events framing.
func TestServeWatchSSE(t *testing.T) {
	eng, ts := newTestStack(t)
	status, _ := postJSON(t, ts.URL+"/query", map[string]any{
		"v": 1, "type": "point", "id": "sse1", "loc": map[string]float64{"x": 30, "y": 30}, "budget": 20,
	})
	if status != http.StatusAccepted {
		t.Fatalf("submit: status %d", status)
	}
	framesCh := make(chan []wire.EventFrame, 1)
	go func() { framesCh <- watchFrames(t, ts.URL+"/watch?id=sse1", true) }()
	time.Sleep(20 * time.Millisecond)
	if err := eng.RunSlots(1); err != nil {
		t.Fatalf("RunSlots: %v", err)
	}
	frames := <-framesCh
	if len(frames) != 3 || frames[len(frames)-1].Event != wire.FrameFinal {
		t.Fatalf("SSE frames = %+v", frames)
	}
}

// TestServeWatchCanceledQuery: watchers of a canceled query receive the
// canceled terminal with the stable code.
func TestServeWatchCanceledQuery(t *testing.T) {
	eng, ts := newTestStack(t)
	status, _ := postJSON(t, ts.URL+"/query", map[string]any{
		"v": 1, "type": "locmon", "id": "wc", "loc": map[string]float64{"x": 30, "y": 30},
		"budget": 200, "duration": 50, "samples": 3,
	})
	if status != http.StatusAccepted {
		t.Fatalf("submit: status %d", status)
	}
	framesCh := make(chan []wire.EventFrame, 1)
	go func() { framesCh <- watchFrames(t, ts.URL+"/watch?id=wc", false) }()
	time.Sleep(20 * time.Millisecond)
	if err := eng.RunSlots(2); err != nil {
		t.Fatalf("RunSlots: %v", err)
	}
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/query/wc", nil)
	dresp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	dresp.Body.Close()
	frames := <-framesCh
	last := frames[len(frames)-1]
	if last.Event != wire.FrameCanceled || last.Code != wire.CodeCanceled {
		t.Fatalf("terminal = %+v, want canceled with code %q", last, wire.CodeCanceled)
	}
}

// TestServeBatchSubmit: one request, many specs, per-spec verdicts with
// stable codes; valid specs go live even when neighbors are rejected.
func TestServeBatchSubmit(t *testing.T) {
	eng, ts := newTestStack(t)

	status, resp := postJSON(t, ts.URL+"/queries:batch", map[string]any{
		"v": 2,
		"queries": []map[string]any{
			{"v": 1, "type": "point", "id": "b1", "loc": map[string]float64{"x": 30, "y": 30}, "budget": 20},
			{"v": 1, "type": "point", "id": "b2", "loc": map[string]float64{"x": 31, "y": 31}, "budget": -5},
			{"v": 1, "type": "locmon", "id": "b3", "loc": map[string]float64{"x": 32, "y": 32}, "budget": 100},
			{"v": 1, "type": "point", "loc": map[string]float64{"x": 33, "y": 33}, "budget": 10},
			{"v": 1, "type": "point", "id": "b1", "loc": map[string]float64{"x": 34, "y": 34}, "budget": 10},
		},
	})
	if status != http.StatusOK {
		t.Fatalf("batch: status %d resp %v", status, resp)
	}
	if resp["accepted"].(float64) != 2 || resp["rejected"].(float64) != 3 {
		t.Fatalf("batch verdicts = %v, want 2 accepted / 3 rejected", resp)
	}
	results := resp["results"].([]any)
	wantCodes := []string{"", wire.CodeNegativeBudget, wire.CodeBadDuration, "", wire.CodeDuplicateQueryID}
	for i, raw := range results {
		r := raw.(map[string]any)
		code, _ := r["code"].(string)
		if code != wantCodes[i] {
			t.Errorf("result %d code = %q, want %q (%v)", i, code, wantCodes[i], r)
		}
		wantStatus := "accepted"
		if wantCodes[i] != "" {
			wantStatus = "rejected"
		}
		if r["status"] != wantStatus {
			t.Errorf("result %d status = %v, want %s", i, r["status"], wantStatus)
		}
	}
	// The auto-ID entry got a server-assigned ID.
	if id, _ := results[3].(map[string]any)["id"].(string); id == "" || id == "b1" {
		t.Errorf("auto-ID batch entry got id %q", id)
	}

	// The accepted ones run to completion.
	if err := eng.RunSlots(1); err != nil {
		t.Fatalf("RunSlots: %v", err)
	}
	waitForResults(t, ts.URL, "b1", 1)

	// Malformed batches are rejected whole.
	if status, _ := postJSON(t, ts.URL+"/queries:batch", map[string]any{"v": 2, "queries": []any{}}); status != http.StatusBadRequest {
		t.Errorf("empty batch: status %d, want 400", status)
	}
	if status, _ := postJSON(t, ts.URL+"/queries:batch", map[string]any{"v": 3, "queries": []map[string]any{{"type": "point"}}}); status != http.StatusBadRequest {
		t.Errorf("future batch version: status %d, want 400", status)
	}
}

// TestServeGracefulShutdown: Shutdown ends watch streams with a
// server_closing frame and refuses new submissions with 503.
func TestServeGracefulShutdown(t *testing.T) {
	world := ps.NewRWMWorld(8, 200, ps.SensorConfig{})
	eng := ps.NewEngine(ps.NewAggregator(world))
	eng.Start()
	srv := New(eng, world, Options{Strategy: ps.StrategyAuto})
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		ts.Close()
		eng.Stop()
	})

	status, _ := postJSON(t, ts.URL+"/query", map[string]any{
		"v": 1, "type": "locmon", "id": "gs", "loc": map[string]float64{"x": 30, "y": 30},
		"budget": 200, "duration": 50, "samples": 3,
	})
	if status != http.StatusAccepted {
		t.Fatalf("submit: status %d", status)
	}
	framesCh := make(chan []wire.EventFrame, 1)
	go func() { framesCh <- watchFrames(t, ts.URL+"/watch?id=gs", false) }()
	time.Sleep(20 * time.Millisecond)
	if err := eng.RunSlots(1); err != nil {
		t.Fatalf("RunSlots: %v", err)
	}

	srv.Shutdown()
	srv.Shutdown() // idempotent

	frames := <-framesCh
	if len(frames) == 0 || frames[len(frames)-1].Event != wire.FrameServerClosing {
		t.Fatalf("frames = %+v, want a terminal server_closing", frames)
	}

	// New submissions are refused with the stable code.
	buf, _ := json.Marshal(map[string]any{
		"v": 1, "type": "point", "loc": map[string]float64{"x": 30, "y": 30}, "budget": 20,
	})
	resp, err := http.Post(ts.URL+"/query", "application/json", bytes.NewReader(buf))
	if err != nil {
		t.Fatal(err)
	}
	var eb wire.ErrorBody
	json.NewDecoder(resp.Body).Decode(&eb)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable || eb.Code != wire.CodeServerClosing {
		t.Fatalf("submit while closing: status %d code %q, want 503 %q", resp.StatusCode, eb.Code, wire.CodeServerClosing)
	}
	if status, _ := postJSON(t, ts.URL+"/queries:batch", map[string]any{"v": 2, "queries": []map[string]any{{"type": "point"}}}); status != http.StatusServiceUnavailable {
		t.Errorf("batch while closing: status %d, want 503", status)
	}
	// Healthz reports not-OK while draining.
	_, h := getJSON(t, ts.URL+"/healthz")
	if h["ok"] != false {
		t.Errorf("healthz while closing = %v, want ok=false", h)
	}
}

// TestServeListPaginationEdgeCases: offset past the end, limit 0
// (count-only), exact boundaries, and negative values.
func TestServeListPaginationEdgeCases(t *testing.T) {
	_, ts := newTestStack(t)
	for i := 0; i < 4; i++ {
		status, _ := postJSON(t, ts.URL+"/query", map[string]any{
			"v": 1, "type": "point", "id": fmt.Sprintf("pg-%d", i),
			"loc": map[string]float64{"x": 30, "y": 30}, "budget": 20,
		})
		if status != http.StatusAccepted {
			t.Fatalf("submit %d: status %d", i, status)
		}
	}
	cases := []struct {
		query               string
		wantStatus          int
		wantCount, wantOffs int
	}{
		{"", http.StatusOK, 4, 0},
		{"?offset=4", http.StatusOK, 0, 4},         // offset == len: empty, not an error
		{"?offset=99", http.StatusOK, 0, 99},       // offset past the end
		{"?limit=0", http.StatusOK, 0, 0},          // count-only page
		{"?offset=3&limit=5", http.StatusOK, 1, 3}, // last partial page
		{"?offset=0&limit=4", http.StatusOK, 4, 0}, // exact fit
		{"?offset=-1", http.StatusBadRequest, 0, 0},
		{"?limit=-5", http.StatusBadRequest, 0, 0},
		{"?offset=x", http.StatusBadRequest, 0, 0},
		{"?limit=x", http.StatusBadRequest, 0, 0},
	}
	for _, tc := range cases {
		status, page := getJSON(t, ts.URL+"/queries"+tc.query)
		if status != tc.wantStatus {
			t.Errorf("GET /queries%s: status %d, want %d", tc.query, status, tc.wantStatus)
			continue
		}
		if status != http.StatusOK {
			continue
		}
		if page["count"].(float64) != float64(tc.wantCount) || page["total"].(float64) != 4 {
			t.Errorf("GET /queries%s: page %v, want count %d total 4", tc.query, page, tc.wantCount)
		}
		if page["offset"].(float64) != float64(tc.wantOffs) {
			t.Errorf("GET /queries%s: offset %v, want %d", tc.query, page["offset"], tc.wantOffs)
		}
	}
}

// TestReplayHistoryMidStreamGap: a gap the record's own consumer
// suffered mid-stream is replayed at its position, and history-cap
// eviction folds evicted frames (gaps included) into the leading
// synthetic gap.
func TestReplayHistoryMidStreamGap(t *testing.T) {
	upd := func(slot int) wire.EventFrame {
		r := wire.Result{Slot: slot, Answered: true, Value: 1}
		return wire.EventFrame{V: wire.Version2, Event: wire.FrameSlotUpdate, ID: "g", Slot: slot, Result: &r}
	}
	rec := newQueryRecord("g", "point", discardLogger())
	rec.live, rec.windowKnown = true, true
	rec.start, rec.end = 0, 9
	rec.frames = []wire.EventFrame{
		upd(0), upd(1),
		{V: wire.Version2, Event: wire.FrameGap, ID: "g", Slot: 4, From: 2, To: 3, Dropped: 2},
		upd(4), upd(5),
	}
	rec.lastCursor = 5

	replay := func(after int) []wire.EventFrame {
		rr := httptest.NewRecorder()
		fw := &frameWriter{w: rr, fl: rr}
		if _, ok := (&Server{}).replayHistory(rec, after, 1<<30, fw); !ok {
			t.Fatal("replay failed")
		}
		var out []wire.EventFrame
		for _, line := range strings.Split(strings.TrimSpace(rr.Body.String()), "\n") {
			if line == "" {
				continue
			}
			f, err := wire.DecodeEventFrame([]byte(line))
			if err != nil {
				t.Fatalf("bad frame %q: %v", line, err)
			}
			out = append(out, f)
		}
		return out
	}

	// Resuming from cursor 1 must surface the mid-stream gap before the
	// later updates — not silently skip from 1 to 4.
	frames := replay(1)
	var kinds []string
	for _, f := range frames {
		kinds = append(kinds, fmt.Sprintf("%s@%d", f.Event, f.Slot))
	}
	want := []string{"gap@4", "slot_update@4", "slot_update@5"}
	if fmt.Sprint(kinds) != fmt.Sprint(want) {
		t.Fatalf("replay(1) = %v, want %v", kinds, want)
	}
	if frames[0].From != 2 || frames[0].To != 3 || frames[0].Dropped != 2 {
		t.Errorf("gap frame = %+v, want From 2 To 3 Dropped 2", frames[0])
	}

	// From scratch: accepted first, then everything in stream order.
	frames = replay(-1 << 30)
	if len(frames) != 6 || frames[0].Event != wire.FrameAccepted || frames[3].Event != wire.FrameGap {
		t.Fatalf("full replay = %+v, want accepted + 5 stream frames with the gap third", frames)
	}

	// History-cap eviction folds evicted gaps into missing.
	rec2 := newQueryRecord("g2", "point", discardLogger())
	rec2.mu.Lock()
	rec2.appendFrameLocked(wire.EventFrame{V: wire.Version2, Event: wire.FrameGap, ID: "g2", Slot: 0, From: 0, To: 0, Dropped: 5})
	for s := 1; s <= maxResultsPerQuery+1; s++ {
		rec2.appendFrameLocked(upd(s))
	}
	missing := rec2.missing
	frameCount := len(rec2.frames)
	rec2.mu.Unlock()
	// The gap (5 dropped) and one update were evicted: missing = 5 + 1.
	if missing != 6 || frameCount != maxResultsPerQuery {
		t.Fatalf("missing = %d frames = %d, want 6 and %d", missing, frameCount, maxResultsPerQuery)
	}
}

// TestServeWatchOfRolledBackSubmission: a watcher that grabs a record
// whose engine submission then fails must receive a terminal frame, not
// hang on a stream no consumer will ever feed.
func TestServeWatchOfRolledBackSubmission(t *testing.T) {
	world := ps.NewRWMWorld(9, 100, ps.SensorConfig{})
	// Queue size 1 and no started loop: the first submission occupies the
	// queue, the second fails with ErrQueueFull after its registry
	// reservation.
	eng := ps.NewEngine(ps.NewAggregator(world), ps.WithQueueSize(1))
	srv := New(eng, world, Options{Strategy: ps.StrategyAuto})
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		ts.Close()
		eng.Start()
		eng.Stop()
	})

	if status, _ := postJSON(t, ts.URL+"/query", map[string]any{
		"v": 1, "type": "point", "id": "fill", "loc": map[string]float64{"x": 30, "y": 30}, "budget": 5,
	}); status != http.StatusAccepted {
		t.Fatalf("filler submit: status %d", status)
	}
	status, body := postJSON(t, ts.URL+"/query", map[string]any{
		"v": 1, "type": "point", "id": "rb", "loc": map[string]float64{"x": 30, "y": 30}, "budget": 5,
	})
	if status != http.StatusTooManyRequests {
		t.Fatalf("overflow submit: status %d body %v", status, body)
	}
	if body["code"] != wire.CodeQueueFull {
		t.Errorf("overflow code = %v, want %q", body["code"], wire.CodeQueueFull)
	}
	// The rolled-back record is gone from the registry: 404, not a hang.
	req, _ := http.NewRequest(http.MethodGet, ts.URL+"/watch?id=rb", nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("watch rolled-back id: status %d, want 404", resp.StatusCode)
	}
}
