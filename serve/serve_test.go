package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	ps "repro"
)

// newTestStack builds a virtual-clock engine behind the HTTP handler so
// the test controls slot execution deterministically.
func newTestStack(t *testing.T, opts ...ps.Option) (*ps.Engine, *httptest.Server) {
	t.Helper()
	world := ps.NewRWMWorld(1, 200, ps.SensorConfig{})
	eng := ps.NewEngine(ps.NewAggregator(world, opts...))
	eng.Start()
	ts := httptest.NewServer(New(eng, world, Options{Strategy: ps.StrategyAuto}).Handler())
	t.Cleanup(func() {
		ts.Close()
		eng.Stop()
	})
	return eng, ts
}

func postJSON(t *testing.T, url string, body any) (int, map[string]any) {
	t.Helper()
	buf, err := json.Marshal(body)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(buf))
	if err != nil {
		t.Fatalf("POST %s: %v", url, err)
	}
	defer resp.Body.Close()
	var out map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatalf("decode: %v", err)
	}
	return resp.StatusCode, out
}

func getJSON(t *testing.T, url string) (int, map[string]any) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	var out map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatalf("decode: %v", err)
	}
	return resp.StatusCode, out
}

func TestServePointQueryEndToEnd(t *testing.T) {
	eng, ts := newTestStack(t)

	status, resp := postJSON(t, ts.URL+"/query", map[string]any{
		"type": "point", "id": "p1", "loc": map[string]float64{"x": 30, "y": 30}, "budget": 20,
	})
	if status != http.StatusAccepted || resp["id"] != "p1" {
		t.Fatalf("submit: status %d resp %v", status, resp)
	}

	if err := eng.RunSlots(1); err != nil {
		t.Fatalf("RunSlots: %v", err)
	}

	// The consumer goroutine moves the result into the registry; poll briefly.
	deadline := time.Now().Add(5 * time.Second)
	for {
		status, resp = getJSON(t, ts.URL+"/query/p1")
		if status != http.StatusOK {
			t.Fatalf("get: status %d resp %v", status, resp)
		}
		if resp["done"] == true {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("query never completed: %v", resp)
		}
		time.Sleep(time.Millisecond)
	}
	results, ok := resp["results"].([]any)
	if !ok || len(results) != 1 {
		t.Fatalf("results = %v, want exactly 1", resp["results"])
	}
	r0 := results[0].(map[string]any)
	if r0["final"] != true {
		t.Errorf("result not final: %v", r0)
	}
	if r0["answered"] == true {
		if v, p := r0["value"].(float64), r0["payment"].(float64); p >= v {
			t.Errorf("payment %v >= value %v", p, v)
		}
	}

	// Engine metrics reflect the slot.
	status, m := getJSON(t, ts.URL+"/metrics")
	if status != http.StatusOK || m["slots"].(float64) != 1 || m["queries_submitted"].(float64) != 1 {
		t.Fatalf("metrics = %v", m)
	}
	status, h := getJSON(t, ts.URL+"/healthz")
	if status != http.StatusOK || h["ok"] != true {
		t.Fatalf("healthz = %v", h)
	}

	// Canceling an already-finished query is not "canceling": 410.
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/query/p1", nil)
	dresp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("DELETE: %v", err)
	}
	dresp.Body.Close()
	if dresp.StatusCode != http.StatusGone {
		t.Errorf("DELETE finished query: status %d, want 410", dresp.StatusCode)
	}
}

// TestServeAcceptsLegacyAndV1Envelopes: the same submission works as a
// legacy (unversioned) body and as a v1 envelope; future versions are
// refused.
func TestServeAcceptsLegacyAndV1Envelopes(t *testing.T) {
	eng, ts := newTestStack(t)

	legacy := map[string]any{
		"type": "point", "id": "legacy", "loc": map[string]float64{"x": 30, "y": 30}, "budget": 20,
	}
	if status, resp := postJSON(t, ts.URL+"/query", legacy); status != http.StatusAccepted {
		t.Fatalf("legacy body: status %d resp %v", status, resp)
	}
	v1 := map[string]any{
		"v": 1, "type": "point", "id": "v1", "loc": map[string]float64{"x": 31, "y": 31}, "budget": 20,
	}
	if status, resp := postJSON(t, ts.URL+"/query", v1); status != http.StatusAccepted {
		t.Fatalf("v1 envelope: status %d resp %v", status, resp)
	}
	future := map[string]any{
		"v": 99, "type": "point", "id": "future", "loc": map[string]float64{"x": 31, "y": 31}, "budget": 20,
	}
	if status, _ := postJSON(t, ts.URL+"/query", future); status != http.StatusBadRequest {
		t.Errorf("future envelope version: status %d, want 400", status)
	}

	if err := eng.RunSlots(1); err != nil {
		t.Fatalf("RunSlots: %v", err)
	}
	for _, id := range []string{"legacy", "v1"} {
		deadline := time.Now().Add(5 * time.Second)
		for {
			_, resp := getJSON(t, ts.URL+"/query/"+id)
			if resp["done"] == true {
				break
			}
			if time.Now().After(deadline) {
				t.Fatalf("query %s never completed: %v", id, resp)
			}
			time.Sleep(time.Millisecond)
		}
	}
}

func TestServeContinuousCancel(t *testing.T) {
	eng, ts := newTestStack(t)

	status, resp := postJSON(t, ts.URL+"/query", map[string]any{
		"type": "locmon", "loc": map[string]float64{"x": 30, "y": 30},
		"budget": 120, "duration": 20, "samples": 5,
	})
	if status != http.StatusAccepted {
		t.Fatalf("submit: status %d resp %v", status, resp)
	}
	id := resp["id"].(string)
	if err := eng.RunSlots(2); err != nil {
		t.Fatalf("RunSlots: %v", err)
	}

	req, _ := http.NewRequest(http.MethodDelete, fmt.Sprintf("%s/query/%s", ts.URL, id), nil)
	cresp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("DELETE: %v", err)
	}
	cresp.Body.Close()
	if cresp.StatusCode != http.StatusOK {
		t.Fatalf("cancel status = %d", cresp.StatusCode)
	}

	deadline := time.Now().Add(5 * time.Second)
	for {
		_, resp = getJSON(t, ts.URL+"/query/"+id)
		if resp["done"] == true {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("cancel never completed: %v", resp)
		}
		time.Sleep(time.Millisecond)
	}
	if resp["error"] != ps.ErrCanceled.Error() {
		t.Fatalf("error = %v, want %q", resp["error"], ps.ErrCanceled.Error())
	}
	if results := resp["results"].([]any); len(results) != 2 {
		t.Fatalf("got %d results before cancel, want 2", len(results))
	}
}

func TestServeBadRequests(t *testing.T) {
	_, ts := newTestStack(t)

	status, _ := postJSON(t, ts.URL+"/query", map[string]any{"type": "nonsense"})
	if status != http.StatusBadRequest {
		t.Errorf("unknown type: status %d, want 400", status)
	}
	status, _ = postJSON(t, ts.URL+"/query", map[string]any{"type": "point", "budget": 10})
	if status != http.StatusBadRequest {
		t.Errorf("missing loc: status %d, want 400", status)
	}
	status, _ = getJSON(t, ts.URL+"/query/absent")
	if status != http.StatusNotFound {
		t.Errorf("unknown id: status %d, want 404", status)
	}
	// Spec validation runs before the engine sees the submission: a
	// negative budget or a zero-duration window is a synchronous 400.
	status, _ = postJSON(t, ts.URL+"/query", map[string]any{
		"type": "point", "loc": map[string]float64{"x": 30, "y": 30}, "budget": -5,
	})
	if status != http.StatusBadRequest {
		t.Errorf("negative budget: status %d, want 400", status)
	}
	status, _ = postJSON(t, ts.URL+"/query", map[string]any{
		"type": "locmon", "loc": map[string]float64{"x": 30, "y": 30}, "budget": 100,
	})
	if status != http.StatusBadRequest {
		t.Errorf("zero duration: status %d, want 400", status)
	}
	// regmon needs a GP world; the RWM test world must be rejected up
	// front with 400, not accepted into a subscription that cannot work.
	status, _ = postJSON(t, ts.URL+"/query", map[string]any{
		"type": "regmon", "region": map[string]float64{"x0": 20, "y0": 20, "x1": 40, "y1": 40},
		"budget": 100, "duration": 5,
	})
	if status != http.StatusBadRequest {
		t.Errorf("regmon without GP model: status %d, want 400", status)
	}

	// A live query ID cannot be reused: the registry rejects it without
	// touching the engine, so the original record stays reachable.
	body := map[string]any{"type": "locmon", "id": "taken",
		"loc": map[string]float64{"x": 30, "y": 30}, "budget": 120, "duration": 20, "samples": 5}
	if status, _ := postJSON(t, ts.URL+"/query", body); status != http.StatusAccepted {
		t.Fatalf("first submit: status %d", status)
	}
	if status, _ := postJSON(t, ts.URL+"/query", body); status != http.StatusConflict {
		t.Errorf("duplicate live id: status %d, want 409", status)
	}
}

// TestServeListQueries: GET /queries pages through the registry in ID
// order with done/result-count summaries.
func TestServeListQueries(t *testing.T) {
	eng, ts := newTestStack(t)

	for i := 0; i < 5; i++ {
		status, _ := postJSON(t, ts.URL+"/query", map[string]any{
			"v": 1, "type": "point", "id": fmt.Sprintf("list-%d", i),
			"loc": map[string]float64{"x": 30, "y": 30}, "budget": 20,
		})
		if status != http.StatusAccepted {
			t.Fatalf("submit %d: status %d", i, status)
		}
	}
	status, list := getJSON(t, ts.URL+"/queries")
	if status != http.StatusOK {
		t.Fatalf("list: status %d", status)
	}
	if list["total"].(float64) != 5 || list["count"].(float64) != 5 {
		t.Fatalf("list = %v, want total 5 count 5", list)
	}
	rows := list["queries"].([]any)
	for i, row := range rows {
		r := row.(map[string]any)
		if want := fmt.Sprintf("list-%d", i); r["id"] != want {
			t.Errorf("row %d id = %v, want %s (ID-ordered)", i, r["id"], want)
		}
		if r["type"] != "point" {
			t.Errorf("row %d type = %v", i, r["type"])
		}
	}

	// Pagination: offset 3, limit 10 -> the last two.
	_, page := getJSON(t, ts.URL+"/queries?offset=3&limit=10")
	if page["count"].(float64) != 2 || page["offset"].(float64) != 3 {
		t.Fatalf("page = %v, want count 2 offset 3", page)
	}
	// Limit 2 from the start.
	_, page = getJSON(t, ts.URL+"/queries?limit=2")
	if page["count"].(float64) != 2 || page["total"].(float64) != 5 {
		t.Fatalf("page = %v, want count 2 total 5", page)
	}
	// Offset past the end: empty page, not an error.
	_, page = getJSON(t, ts.URL+"/queries?offset=99")
	if page["count"].(float64) != 0 {
		t.Fatalf("page past end = %v, want count 0", page)
	}
	// Bad parameters are 400s.
	if st, _ := getJSON(t, ts.URL+"/queries?offset=-1"); st != http.StatusBadRequest {
		t.Errorf("negative offset: status %d, want 400", st)
	}
	if st, _ := getJSON(t, ts.URL+"/queries?limit=zero"); st != http.StatusBadRequest {
		t.Errorf("non-numeric limit: status %d, want 400", st)
	}

	// After a slot, the records finish and report their result counts.
	if err := eng.RunSlots(1); err != nil {
		t.Fatalf("RunSlots: %v", err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		_, list = getJSON(t, ts.URL+"/queries")
		done := 0
		for _, row := range list["queries"].([]any) {
			r := row.(map[string]any)
			if r["done"] == true && r["results"].(float64) == 1 {
				done++
			}
		}
		if done == 5 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("records never finished: %v", list)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestServeStrategyAndSelectionMetrics drives a mixed slot through the
// lazy strategy and checks that /metrics exposes the valuation-call and
// lazy-heap counters, and that /strategy switches at runtime.
func TestServeStrategyAndSelectionMetrics(t *testing.T) {
	eng, ts := newTestStack(t, ps.WithGreedyStrategy(ps.StrategyLazy))

	// An aggregate query routes the slot through the greedy mix pipeline.
	status, _ := postJSON(t, ts.URL+"/query", map[string]any{
		"type": "aggregate", "id": "a1",
		"region": map[string]float64{"x0": 20, "y0": 20, "x1": 45, "y1": 45}, "budget": 300,
	})
	if status != http.StatusAccepted {
		t.Fatalf("submit aggregate: status %d", status)
	}
	postJSON(t, ts.URL+"/query", map[string]any{
		"type": "point", "id": "p1", "loc": map[string]float64{"x": 30, "y": 30}, "budget": 20,
	})
	if err := eng.RunSlots(1); err != nil {
		t.Fatalf("RunSlots: %v", err)
	}

	status, m := getJSON(t, ts.URL+"/metrics")
	if status != http.StatusOK {
		t.Fatalf("metrics: status %d", status)
	}
	if m["valuation_calls"].(float64) <= 0 {
		t.Errorf("valuation_calls = %v, want > 0", m["valuation_calls"])
	}
	if m["strategy_last_slot"] != "lazy" {
		t.Errorf("strategy_last_slot = %v, want lazy", m["strategy_last_slot"])
	}
	for _, key := range []string{"valuation_calls_saved", "lazy_reevaluations", "submodularity_violations", "fallback_rescans"} {
		if _, ok := m[key].(float64); !ok {
			t.Errorf("metrics missing %s: %v", key, m[key])
		}
	}

	// Runtime strategy switch: reported by GET /strategy and used by the
	// next slot.
	status, resp := postJSON(t, ts.URL+"/strategy", map[string]any{"strategy": "sharded"})
	if status != http.StatusOK || resp["strategy"] != "sharded" {
		t.Fatalf("set strategy: status %d resp %v", status, resp)
	}
	status, resp = getJSON(t, ts.URL+"/strategy")
	if status != http.StatusOK || resp["strategy"] != "sharded" {
		t.Fatalf("get strategy: status %d resp %v", status, resp)
	}
	if status, _ := postJSON(t, ts.URL+"/strategy", map[string]any{"strategy": "nonsense"}); status != http.StatusBadRequest {
		t.Errorf("bad strategy: status %d, want 400", status)
	}
	// A missing "strategy" field must not silently reset a live engine
	// to auto.
	if status, _ := postJSON(t, ts.URL+"/strategy", map[string]any{}); status != http.StatusBadRequest {
		t.Errorf("empty strategy: status %d, want 400", status)
	}
}

// TestServeAutoIDSkipsLiveClientIDs: a server-assigned ID never
// collides with a live client-chosen one.
func TestServeAutoIDSkipsLiveClientIDs(t *testing.T) {
	_, ts := newTestStack(t)

	// A client explicitly claims "q1" with a long-lived query.
	status, _ := postJSON(t, ts.URL+"/query", map[string]any{
		"v": 1, "type": "locmon", "id": "q1",
		"loc": map[string]float64{"x": 30, "y": 30}, "budget": 120, "duration": 100, "samples": 5,
	})
	if status != http.StatusAccepted {
		t.Fatalf("explicit submit: status %d", status)
	}
	// An ID-less submission must get a fresh ID, not a 409 on "q1".
	status, resp := postJSON(t, ts.URL+"/query", map[string]any{
		"v": 1, "type": "point", "loc": map[string]float64{"x": 30, "y": 30}, "budget": 20,
	})
	if status != http.StatusAccepted {
		t.Fatalf("auto-ID submit: status %d resp %v", status, resp)
	}
	if resp["id"] == "q1" || resp["id"] == "" {
		t.Fatalf("auto-assigned id = %v, want a fresh non-conflicting id", resp["id"])
	}
}

func TestRegistrySweepEvictsFinishedRecords(t *testing.T) {
	world := ps.NewRWMWorld(2, 50, ps.SensorConfig{})
	eng := ps.NewEngine(ps.NewAggregator(world))
	defer eng.Stop()
	s := New(eng, world, Options{NoRetention: true}) // done records evict immediately

	s.queries["old-done"] = &queryRecord{id: "old-done", done: true, doneAt: time.Now().Add(-time.Minute)}
	s.queries["live"] = &queryRecord{id: "live"}
	s.mu.Lock()
	s.sweepLocked()
	s.mu.Unlock()
	if _, ok := s.queries["old-done"]; ok {
		t.Error("finished record survived the sweep")
	}
	if _, ok := s.queries["live"]; !ok {
		t.Error("live record was evicted")
	}
}
