// Package serve implements the psserve HTTP API over a streaming
// ps.Engine: query submission and polling, cancellation, registry
// listing, engine metrics and runtime strategy switching. The cmd/psserve
// daemon is a thin flag-parsing wrapper around it; tests and the psclient
// SDK run the same handler behind net/http/httptest.
//
// Endpoints:
//
//	POST   /query        submit a query (legacy or v1-envelope JSON body,
//	                     see package wire)
//	GET    /query/{id}   status + accumulated per-slot results
//	DELETE /query/{id}   cancel a pending or continuous query
//	GET    /queries      paginated registry listing (?offset=&limit=)
//	GET    /metrics      engine-wide metrics snapshot (incl. valuation-
//	                     call and lazy-heap counters of the greedy core)
//	GET    /strategy     current candidate-evaluation strategy
//	POST   /strategy     switch it at runtime ({"strategy":"lazy"})
//	GET    /healthz      liveness + current slot
package serve

import (
	"encoding/json"
	"fmt"
	"log"
	"net/http"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	ps "repro"
	"repro/wire"
)

// Options configures a Server.
type Options struct {
	// Retain is how long finished query records stay pollable; zero or
	// negative means the 10-minute default. Set NoRetention to disable
	// retention entirely.
	Retain time.Duration
	// NoRetention makes finished records evict at the next sweep instead
	// of being retained for polling.
	NoRetention bool
	// Strategy is the engine's configured selection strategy, mirrored
	// for display by /metrics and /strategy.
	Strategy ps.Strategy
}

// Server owns the HTTP-side query registry. Each accepted query gets a
// consumer goroutine moving results from its subscription into the
// registry, so slow or absent HTTP pollers never block the slot clock.
// Finished records stay pollable for the retention window, then are
// evicted by an amortized sweep on the submit path — the registry stays
// bounded on a long-lived daemon.
type Server struct {
	eng    *ps.Engine
	world  *ps.World
	retain time.Duration
	autoID atomic.Int64
	// stratMu serializes POST /strategy so the engine switch and the
	// display mirror below cannot interleave across two requests.
	stratMu sync.Mutex
	// strategy mirrors the engine's configured selection strategy for
	// display; writes go through POST /strategy.
	strategy atomic.Int32

	mu      sync.Mutex
	queries map[string]*queryRecord
	submits int
}

// sweepEvery is how many submissions pass between eviction sweeps.
const sweepEvery = 256

// maxResultsPerQuery caps the per-record result history of long-lived
// continuous queries; older entries are discarded and counted.
const maxResultsPerQuery = 1024

// defaultListLimit and maxListLimit bound GET /queries pages.
const (
	defaultListLimit = 100
	maxListLimit     = 1000
)

// New builds a Server over a started engine and its world.
func New(eng *ps.Engine, world *ps.World, opts Options) *Server {
	retain := opts.Retain
	if retain <= 0 {
		retain = 10 * time.Minute
	}
	if opts.NoRetention {
		retain = 0
	}
	s := &Server{eng: eng, world: world, retain: retain, queries: make(map[string]*queryRecord)}
	s.strategy.Store(int32(opts.Strategy))
	return s
}

// Handler returns the HTTP handler serving the API.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /query", s.handleSubmit)
	mux.HandleFunc("GET /query/{id}", s.handleGet)
	mux.HandleFunc("DELETE /query/{id}", s.handleCancel)
	mux.HandleFunc("GET /queries", s.handleList)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("GET /strategy", s.handleGetStrategy)
	mux.HandleFunc("POST /strategy", s.handleSetStrategy)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	return mux
}

// sweepLocked evicts finished records past the retention window. Caller
// holds s.mu.
func (s *Server) sweepLocked() {
	cutoff := time.Now().Add(-s.retain)
	for id, rec := range s.queries {
		rec.mu.Lock()
		expired := rec.done && rec.doneAt.Before(cutoff)
		rec.mu.Unlock()
		if expired {
			delete(s.queries, id)
		}
	}
}

type queryRecord struct {
	id  string
	typ string

	mu        sync.Mutex
	results   []wire.Result
	truncated int // results discarded beyond maxResultsPerQuery
	done      bool
	doneAt    time.Time
	errMsg    string

	handle *ps.QueryHandle
}

func (r *queryRecord) isDone() bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.done
}

// nextAutoID returns the next server-assigned query ID, skipping every
// ID with an existing registry record: a live client-chosen one would
// 409 a request that never picked an ID, and a finished-but-retained one
// would be silently clobbered mid-retention. (A client racing to claim
// the returned ID before the reservation happens can still conflict; the
// counter only ever moves forward, so a retry gets a fresh ID.)
func (s *Server) nextAutoID() string {
	for {
		id := fmt.Sprintf("q%d", s.autoID.Add(1))
		s.mu.Lock()
		_, taken := s.queries[id]
		s.mu.Unlock()
		if !taken {
			return id
		}
	}
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var env wire.Envelope
	if err := json.NewDecoder(r.Body).Decode(&env); err != nil {
		httpError(w, http.StatusBadRequest, "bad JSON: %v", err)
		return
	}
	if env.ID == "" {
		env.ID = s.nextAutoID()
	}
	spec, err := env.Spec()
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	// Validate up front so the client gets a synchronous 400 instead of a
	// 202 whose subscription can never produce results. The world's
	// static configuration (GP model, bounds) is immutable, so reading it
	// off the loop goroutine is safe.
	if err := spec.Validate(s.world); err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	id := spec.QueryID()

	// Reserve the registry slot before submitting so a duplicate ID can
	// never orphan a live query's record; finished IDs may be reused.
	rec := &queryRecord{id: id, typ: spec.Kind().String()}
	s.mu.Lock()
	old := s.queries[id]
	if old != nil && !old.isDone() {
		s.mu.Unlock()
		httpError(w, http.StatusConflict, "query %q already exists", id)
		return
	}
	s.queries[id] = rec
	s.submits++
	if s.submits%sweepEvery == 0 {
		s.sweepLocked()
	}
	s.mu.Unlock()

	h, err := s.eng.Submit(spec)
	if err != nil {
		// Put back whatever was reserved over — a failed submission must
		// not evict a finished record still inside its retention window.
		s.mu.Lock()
		if old != nil {
			s.queries[id] = old
		} else {
			delete(s.queries, id)
		}
		s.mu.Unlock()
		status := http.StatusBadRequest
		if err == ps.ErrQueueFull {
			status = http.StatusTooManyRequests
		} else if err == ps.ErrEngineStopped {
			status = http.StatusServiceUnavailable
		}
		httpError(w, status, "%v", err)
		return
	}
	rec.mu.Lock()
	rec.handle = h
	rec.mu.Unlock()
	go rec.consume()

	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusAccepted)
	writeJSON(w, wire.SubmitAck{ID: id, Status: "accepted"})
}

// consume moves subscription results into the record until the stream
// closes.
func (r *queryRecord) consume() {
	for res := range r.handle.Results() {
		j := wire.ResultFromSlot(res)
		r.mu.Lock()
		if len(r.results) >= maxResultsPerQuery {
			r.results = r.results[1:]
			r.truncated++
		}
		r.results = append(r.results, j)
		r.mu.Unlock()
	}
	r.mu.Lock()
	r.done = true
	r.doneAt = time.Now()
	if err := r.handle.Err(); err != nil {
		r.errMsg = err.Error()
	}
	r.mu.Unlock()
}

func (s *Server) record(id string) *queryRecord {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.queries[id]
}

func (s *Server) handleGet(w http.ResponseWriter, r *http.Request) {
	rec := s.record(r.PathValue("id"))
	if rec == nil {
		httpError(w, http.StatusNotFound, "unknown query %q", r.PathValue("id"))
		return
	}
	rec.mu.Lock()
	resp := wire.QueryStatus{
		ID:               rec.id,
		Type:             rec.typ,
		Done:             rec.done,
		Results:          append([]wire.Result(nil), rec.results...),
		ResultsTruncated: rec.truncated,
		Error:            rec.errMsg,
	}
	rec.mu.Unlock()
	if resp.Results == nil {
		resp.Results = []wire.Result{}
	}
	w.Header().Set("Content-Type", "application/json")
	writeJSON(w, resp)
}

// handleList serves GET /queries: one page of the registry ordered by
// query ID, so operators can enumerate live queries instead of guessing
// IDs. ?offset= and ?limit= paginate (limit defaults to 100, capped at
// 1000).
func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	offset, err := queryInt(r, "offset", 0)
	if err != nil || offset < 0 {
		httpError(w, http.StatusBadRequest, "bad offset %q", r.URL.Query().Get("offset"))
		return
	}
	limit, err := queryInt(r, "limit", defaultListLimit)
	if err != nil || limit < 1 {
		httpError(w, http.StatusBadRequest, "bad limit %q", r.URL.Query().Get("limit"))
		return
	}
	if limit > maxListLimit {
		limit = maxListLimit
	}

	s.mu.Lock()
	recs := make([]*queryRecord, 0, len(s.queries))
	for _, rec := range s.queries {
		recs = append(recs, rec)
	}
	s.mu.Unlock()
	sort.Slice(recs, func(i, j int) bool { return recs[i].id < recs[j].id })

	list := wire.QueryList{Total: len(recs), Offset: offset, Queries: []wire.QuerySummary{}}
	if offset < len(recs) {
		page := recs[offset:]
		if len(page) > limit {
			page = page[:limit]
		}
		for _, rec := range page {
			rec.mu.Lock()
			list.Queries = append(list.Queries, wire.QuerySummary{
				ID:      rec.id,
				Type:    rec.typ,
				Done:    rec.done,
				Results: len(rec.results),
			})
			rec.mu.Unlock()
		}
	}
	list.Count = len(list.Queries)
	w.Header().Set("Content-Type", "application/json")
	writeJSON(w, list)
}

func queryInt(r *http.Request, key string, def int) (int, error) {
	v := r.URL.Query().Get(key)
	if v == "" {
		return def, nil
	}
	return strconv.Atoi(v)
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	rec := s.record(r.PathValue("id"))
	if rec == nil {
		httpError(w, http.StatusNotFound, "unknown query %q", r.PathValue("id"))
		return
	}
	rec.mu.Lock()
	h := rec.handle
	done := rec.done
	rec.mu.Unlock()
	if h == nil {
		httpError(w, http.StatusConflict, "query %q still registering", rec.id)
		return
	}
	if done {
		httpError(w, http.StatusGone, "query %q already finished", rec.id)
		return
	}
	if err := h.Cancel(); err != nil {
		httpError(w, http.StatusServiceUnavailable, "cancel: %v", err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	writeJSON(w, wire.SubmitAck{ID: rec.id, Status: "canceling"})
}

func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	m := wire.MetricsFrom(s.eng.Metrics(), ps.Strategy(s.strategy.Load()).String())
	w.Header().Set("Content-Type", "application/json")
	writeJSON(w, m)
}

func (s *Server) handleGetStrategy(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	writeJSON(w, wire.StrategyBody{Strategy: ps.Strategy(s.strategy.Load()).String()})
}

// handleSetStrategy switches the candidate-evaluation strategy of the
// live engine. Selections are bit-identical across strategies, so the
// switch is safe mid-stream; it takes effect from the next slot.
func (s *Server) handleSetStrategy(w http.ResponseWriter, r *http.Request) {
	var req wire.StrategyBody
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, "bad JSON: %v", err)
		return
	}
	// ParseStrategy treats "" as auto; an absent field must not silently
	// reset a live engine, so require an explicit name here.
	if req.Strategy == "" {
		httpError(w, http.StatusBadRequest, `missing "strategy" (want auto, serial, sharded, lazy or lazy-sharded)`)
		return
	}
	strat, err := ps.ParseStrategy(req.Strategy)
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	s.stratMu.Lock()
	err = s.eng.SetGreedyStrategy(strat)
	if err == nil {
		s.strategy.Store(int32(strat))
	}
	s.stratMu.Unlock()
	if err != nil {
		httpError(w, http.StatusServiceUnavailable, "set strategy: %v", err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	writeJSON(w, wire.StrategyBody{Strategy: strat.String(), Status: "ok"})
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	m := s.eng.Metrics()
	w.Header().Set("Content-Type", "application/json")
	writeJSON(w, wire.Healthz{OK: true, Slots: m.Slots, QueueDepth: m.QueueDepth})
}

func writeJSON(w http.ResponseWriter, v any) {
	if err := json.NewEncoder(w).Encode(v); err != nil {
		log.Printf("serve: encode response: %v", err)
	}
}

func httpError(w http.ResponseWriter, status int, format string, args ...any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	writeJSON(w, wire.ErrorBody{Error: fmt.Sprintf(format, args...)})
}
