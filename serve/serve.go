// Package serve implements the psserve HTTP API over a streaming
// ps.Engine: query submission (single and batch), server-pushed result
// streams, polling, cancellation, registry listing, engine metrics and
// runtime strategy switching. The cmd/psserve daemon is a thin
// flag-parsing wrapper around it; tests and the psclient SDK run the
// same handler behind net/http/httptest.
//
// Endpoints:
//
//	POST   /query          submit a query (legacy or v1-envelope JSON
//	                       body, see package wire)
//	POST   /queries:batch  submit up to wire.MaxBatch specs in one
//	                       request; per-spec accept/reject verdicts
//	GET    /watch?id=&cursor=
//	                       server-pushed event stream (NDJSON, or SSE
//	                       with Accept: text/event-stream): v2 frames
//	                       accepted → slot_update* → final|canceled,
//	                       resumable from a slot cursor after reconnect
//	GET    /query/{id}     status + accumulated per-slot results (poll)
//	DELETE /query/{id}     cancel a pending or continuous query
//	GET    /queries        paginated registry listing (?offset=&limit=)
//	GET    /metrics        engine-wide metrics snapshot (incl. event
//	                       delivery and valuation-call counters)
//	GET    /strategy       current candidate-evaluation strategy
//	POST   /strategy       switch it at runtime ({"strategy":"lazy"})
//	GET    /healthz        liveness + current slot
//
// Graceful shutdown: Server.Shutdown refuses new submissions (503 with
// code "server_closing") and ends every open watch stream with a
// terminal server_closing frame; the daemon then drains the HTTP server
// and stops the engine.
package serve

import (
	"context"
	"encoding/json"
	"errors"
	"expvar"
	"fmt"
	"log"
	"log/slog"
	"math"
	"net/http"
	"net/http/pprof"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	ps "repro"
	"repro/wire"
)

// Options configures a Server.
type Options struct {
	// Retain is how long finished query records stay pollable; zero or
	// negative means the 10-minute default. Set NoRetention to disable
	// retention entirely.
	Retain time.Duration
	// NoRetention makes finished records evict at the next sweep instead
	// of being retained for polling.
	NoRetention bool
	// Strategy is the engine's configured selection strategy, mirrored
	// for display by /metrics and /strategy.
	Strategy ps.Strategy
	// Logger receives structured request and query-lifecycle logs. Nil
	// discards them.
	Logger *slog.Logger
	// Debug mounts the net/http/pprof handlers and expvar under
	// /debug/. Off by default: the profiling surface can stall the
	// process (heap dumps, 30s CPU profiles) and belongs behind an
	// explicit operator decision.
	Debug bool

	// RateLimit bounds each client's sustained submission rate
	// (specs/second, batch entries each count one) with a token bucket
	// keyed by X-Client-ID or source address. Over-limit submissions get
	// 429 (code "rate_limited") with a Retry-After covering the token
	// deficit. Zero disables rate limiting.
	RateLimit float64
	// RateBurst is the token bucket's capacity — the instantaneous burst
	// a client may submit after idling. Zero defaults to max(1,
	// RateLimit), i.e. one second's worth.
	RateBurst int
	// HighWater, in (0,1], is the ingest-queue admission threshold:
	// submissions are rejected with 429 (code "queue_full") + Retry-After
	// once the engine's queue depth reaches HighWater x capacity, before
	// they race the queue's last slots. Zero disables the check.
	HighWater float64
	// MaxStreamsPerClient caps one client's concurrent /watch streams
	// (429, code "rate_limited", when exceeded). Zero means unlimited.
	MaxStreamsPerClient int
	// MaxStreams caps concurrent /watch streams across all clients. At
	// the cap, admitting a new stream evicts the oldest stream of the
	// client holding the most (fair share): the evicted SDK reconnects
	// and resumes from its cursor, missed frames surface as gaps. Zero
	// means unlimited.
	MaxStreams int

	// Cluster, when the engine fronts a multi-node cluster, reports the
	// coordinator's membership view (typically cluster.Coordinator's
	// Membership method); /healthz includes it. Nil for single-process
	// deployments.
	Cluster func() []wire.ClusterMember
}

// Server owns the HTTP-side query registry. Each accepted query gets a
// consumer goroutine moving its event stream into the registry record,
// so slow or absent HTTP consumers never block the slot clock; watch
// streams replay history from the record and then follow the live
// engine subscription. Finished records stay pollable for the retention
// window, then are evicted by an amortized sweep on the submit path —
// the registry stays bounded on a long-lived daemon.
type Server struct {
	eng    *ps.Engine
	world  *ps.World
	retain time.Duration
	autoID atomic.Int64
	// stratMu serializes POST /strategy so the engine switch and the
	// display mirror below cannot interleave across two requests.
	stratMu sync.Mutex
	// strategy mirrors the engine's configured selection strategy for
	// display; writes go through POST /strategy.
	strategy atomic.Int32

	log     *slog.Logger
	obs     *serverObs
	adm     *admission
	cluster func() []wire.ClusterMember
	start   time.Time
	debug   bool

	// closing is closed by Shutdown: submissions 503 and watch streams
	// end with a server_closing frame.
	closing   chan struct{}
	closeOnce sync.Once

	mu      sync.Mutex
	queries map[string]*queryRecord
	submits int
}

// sweepEvery is how many submissions pass between eviction sweeps.
const sweepEvery = 256

// maxResultsPerQuery caps the per-record result history of long-lived
// continuous queries; older entries are discarded and surfaced as a gap
// to watchers resuming from before the retained window.
const maxResultsPerQuery = 1024

// defaultListLimit and maxListLimit bound GET /queries pages.
const (
	defaultListLimit = 100
	maxListLimit     = 1000
)

// noCursor is the watch cursor meaning "from the beginning".
const noCursor = math.MinInt32

// New builds a Server over a started engine and its world.
func New(eng *ps.Engine, world *ps.World, opts Options) *Server {
	retain := opts.Retain
	if retain <= 0 {
		retain = 10 * time.Minute
	}
	if opts.NoRetention {
		retain = 0
	}
	logger := opts.Logger
	if logger == nil {
		logger = discardLogger()
	}
	s := &Server{
		eng:     eng,
		world:   world,
		retain:  retain,
		log:     logger,
		obs:     newServerObs(eng.Observability()),
		cluster: opts.Cluster,
		start:   time.Now(),
		debug:   opts.Debug,
		closing: make(chan struct{}),
		queries: make(map[string]*queryRecord),
	}
	s.strategy.Store(int32(opts.Strategy))
	s.adm = newAdmission(opts, eng.QueueStats)
	s.adm.onEvict = func(client string) {
		s.obs.watchEvictions.Inc()
		s.log.Info("watch stream evicted", "client", client, "reason", "fair_share")
	}
	return s
}

// Handler returns the HTTP handler serving the API.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /query", s.handleSubmit)
	mux.HandleFunc("POST /queries:batch", s.handleBatch)
	mux.HandleFunc("GET /watch", s.handleWatch)
	mux.HandleFunc("GET /query/{id}", s.handleGet)
	mux.HandleFunc("DELETE /query/{id}", s.handleCancel)
	mux.HandleFunc("GET /queries", s.handleList)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("GET /strategy", s.handleGetStrategy)
	mux.HandleFunc("POST /strategy", s.handleSetStrategy)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	if s.debug {
		// pprof.Index serves the whole /debug/pprof/ subtree (heap,
		// goroutine, block, ...); the named handlers below are the ones
		// Index cannot dispatch itself.
		mux.HandleFunc("GET /debug/pprof/", pprof.Index)
		mux.HandleFunc("GET /debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("GET /debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("GET /debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("GET /debug/pprof/trace", pprof.Trace)
		mux.Handle("GET /debug/vars", expvar.Handler())
	}
	return s.instrument(mux)
}

// Shutdown transitions the server into draining: new submissions are
// refused with 503 (code "server_closing") and every open watch stream
// is ended with a terminal server_closing frame. Call it before
// http.Server.Shutdown — which then waits for the streams to unwind —
// and before Engine.Stop. Idempotent.
func (s *Server) Shutdown() {
	s.closeOnce.Do(func() { close(s.closing) })
}

func (s *Server) isClosing() bool {
	select {
	case <-s.closing:
		return true
	default:
		return false
	}
}

// sweepLocked evicts finished records past the retention window. Caller
// holds s.mu.
func (s *Server) sweepLocked() {
	cutoff := time.Now().Add(-s.retain)
	for id, rec := range s.queries {
		rec.mu.Lock()
		expired := rec.done && rec.doneAt.Before(cutoff)
		rec.mu.Unlock()
		if expired {
			delete(s.queries, id)
		}
	}
}

// queryRecord accumulates one query's event stream on the HTTP side: the
// accepted window, a bounded history of slot_update and gap frames in
// stream order (with a count of what fell out of it), the terminal
// state, and a broadcast channel watchers wait on for appends.
type queryRecord struct {
	id  string
	typ string
	// log receives the query's lifecycle events, correlated by query_id.
	log *slog.Logger

	mu sync.Mutex
	// live is set by the first event: the query went live. windowKnown
	// is set by the Accepted event specifically — under extreme consumer
	// stall the hub may have evicted it, in which case the window is
	// unknown but the record must still serve watchers.
	live        bool
	windowKnown bool
	start, end  int
	acceptedTS  int64
	// frames holds the retained slot_update and gap frames in stream
	// order, so replay reproduces mid-stream gaps at their position.
	frames []wire.EventFrame
	// missing counts slot_updates no longer replayable: evicted beyond
	// the history cap (gap frames evicted from it fold their Dropped
	// count in). All of them predate the oldest retained frame.
	missing int
	// slotUpdates counts the slot_update frames currently retained, so
	// listings don't rescan the history.
	slotUpdates int
	// lastCursor is the slot cursor of the last applied event; watchers
	// use it to know when the record covers their live-attach boundary.
	lastCursor int
	done       bool
	canceled   bool
	errMsg     string
	errCode    string
	termTS     int64
	doneAt     time.Time
	// updated is closed and replaced on every applied event; watchers
	// re-snapshot when it fires.
	updated chan struct{}

	handle *ps.QueryHandle
}

func newQueryRecord(id, typ string, log *slog.Logger) *queryRecord {
	return &queryRecord{id: id, typ: typ, log: log, lastCursor: noCursor, updated: make(chan struct{})}
}

func (r *queryRecord) isDone() bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.done
}

// notifyLocked wakes every watcher waiting for record progress. Caller
// holds r.mu.
func (r *queryRecord) notifyLocked() {
	close(r.updated)
	r.updated = make(chan struct{})
}

// appendFrameLocked retains one slot_update or gap frame, evicting the
// oldest past the history cap (an evicted gap folds its count into
// missing). Caller holds r.mu.
func (r *queryRecord) appendFrameLocked(f wire.EventFrame) {
	if len(r.frames) >= maxResultsPerQuery {
		old := r.frames[0]
		r.frames = r.frames[1:]
		if old.Event == wire.FrameGap {
			r.missing += old.Dropped
		} else {
			r.missing++
			r.slotUpdates--
		}
	}
	r.frames = append(r.frames, f)
	if f.Event == wire.FrameSlotUpdate {
		r.slotUpdates++
	}
}

// consume moves the subscription's event stream into the record until it
// closes.
func (r *queryRecord) consume() {
	for ev := range r.handle.Events() {
		r.mu.Lock()
		r.live = true
		switch ev.Type {
		case ps.EventAccepted:
			r.windowKnown, r.start, r.end = true, ev.Start, ev.End
			r.acceptedTS = ev.At.UnixNano()
			r.log.Info("query accepted", "query_id", r.id, "type", r.typ,
				"start", ev.Start, "end", ev.End)
		case ps.EventSlotUpdate, ps.EventGap:
			if f, err := wire.FrameFromEvent(ev); err == nil {
				r.appendFrameLocked(f)
			}
			r.log.Debug("query event", "query_id", r.id,
				"event", ev.Type.String(), "slot", ev.Slot)
		case ps.EventFinal:
			r.done = true
			r.doneAt = time.Now()
			r.termTS = ev.At.UnixNano()
			r.log.Info("query finished", "query_id", r.id, "slot", ev.Slot)
		case ps.EventCanceled:
			r.done, r.canceled = true, true
			r.doneAt = time.Now()
			r.termTS = ev.At.UnixNano()
			if ev.Err != nil {
				r.errMsg, r.errCode = ev.Err.Error(), wire.ErrorCode(ev.Err)
			}
			r.log.Info("query canceled", "query_id", r.id,
				"slot", ev.Slot, "error", r.errMsg)
		}
		if ev.Slot > r.lastCursor {
			r.lastCursor = ev.Slot
		}
		r.notifyLocked()
		r.mu.Unlock()
	}
	// Stream closed. For a submission that never went live (duplicate ID
	// racing past the registry reservation) no terminal event was
	// published; fold the subscription error into the record.
	r.mu.Lock()
	if !r.done {
		r.done = true
		r.doneAt = time.Now()
		if err := r.handle.Err(); err != nil {
			r.errMsg, r.errCode = err.Error(), wire.ErrorCode(err)
			r.canceled = true
		}
		r.notifyLocked()
	}
	r.mu.Unlock()
}

// nextAutoID returns the next server-assigned query ID, skipping every
// ID with an existing registry record: a live client-chosen one would
// 409 a request that never picked an ID, and a finished-but-retained one
// would be silently clobbered mid-retention. (A client racing to claim
// the returned ID before the reservation happens can still conflict; the
// counter only ever moves forward, so a retry gets a fresh ID.)
func (s *Server) nextAutoID() string {
	for {
		id := fmt.Sprintf("q%d", s.autoID.Add(1))
		s.mu.Lock()
		_, taken := s.queries[id]
		s.mu.Unlock()
		if !taken {
			return id
		}
	}
}

// submitEnvelope is the shared single-spec submission path behind
// POST /query and POST /queries:batch: decode, validate, reserve the
// registry slot, submit to the engine, start the record consumer. It
// returns the (possibly server-assigned) query ID, the HTTP status a
// standalone submission maps to, and the error.
func (s *Server) submitEnvelope(env wire.Envelope) (id string, status int, err error) {
	if env.ID == "" {
		env.ID = s.nextAutoID()
	}
	spec, err := env.Spec()
	if err != nil {
		return env.ID, http.StatusBadRequest, err
	}
	// Validate up front so the client gets a synchronous rejection
	// instead of an accepted ID whose stream opens just to fail. The
	// world's static configuration (GP model, bounds) is immutable, so
	// reading it off the loop goroutine is safe.
	if err := spec.Validate(s.world); err != nil {
		return env.ID, http.StatusBadRequest, err
	}
	id = spec.QueryID()

	// Reserve the registry slot before submitting so a duplicate ID can
	// never orphan a live query's record; finished IDs may be reused.
	rec := newQueryRecord(id, spec.Kind().String(), s.log)
	s.mu.Lock()
	old := s.queries[id]
	if old != nil && !old.isDone() {
		s.mu.Unlock()
		return id, http.StatusConflict, fmt.Errorf("query %q already exists: %w", id, ps.ErrDuplicateQueryID)
	}
	s.queries[id] = rec
	s.submits++
	if s.submits%sweepEvery == 0 {
		s.sweepLocked()
	}
	s.mu.Unlock()

	h, err := s.eng.Submit(spec)
	if err != nil {
		// Put back whatever was reserved over — a failed submission must
		// not evict a finished record still inside its retention window.
		s.mu.Lock()
		if old != nil {
			s.queries[id] = old
		} else {
			delete(s.queries, id)
		}
		s.mu.Unlock()
		// A watcher may have grabbed the reserved record in the window
		// before the rollback; terminate it instead of leaving the
		// stream waiting forever on a record no consumer will ever feed.
		rec.mu.Lock()
		rec.done, rec.canceled = true, true
		rec.doneAt = time.Now()
		rec.errMsg, rec.errCode = err.Error(), wire.ErrorCode(err)
		rec.notifyLocked()
		rec.mu.Unlock()
		status := http.StatusBadRequest
		if errors.Is(err, ps.ErrQueueFull) {
			status = http.StatusTooManyRequests
		} else if errors.Is(err, ps.ErrEngineStopped) {
			status = http.StatusServiceUnavailable
		}
		return id, status, err
	}
	rec.mu.Lock()
	rec.handle = h
	rec.mu.Unlock()
	go rec.consume()
	return id, http.StatusAccepted, nil
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	if s.isClosing() {
		httpErrorCoded(w, http.StatusServiceUnavailable, wire.CodeServerClosing, "server closing")
		return
	}
	// Admission runs before the body is even decoded: an over-limit or
	// over-pressure client costs one map lookup, not a JSON parse plus an
	// engine round trip.
	client := clientKey(r)
	if ra, ok := s.adm.admitSubmit(client, 1); !ok {
		s.obs.admissionRejects.With("rate_limit").Inc()
		s.httpTooMany(w, wire.CodeRateLimited, ra, "client %q over its submission rate limit", client)
		return
	}
	if ra, ok := s.adm.admitQueue(); !ok {
		s.obs.admissionRejects.With("queue_pressure").Inc()
		s.httpTooMany(w, wire.CodeQueueFull, ra, "ingest queue past high-water mark: %v", ps.ErrQueueFull)
		return
	}
	var env wire.Envelope
	if err := json.NewDecoder(r.Body).Decode(&env); err != nil {
		httpError(w, http.StatusBadRequest, "bad JSON: %v", err)
		return
	}
	id, status, err := s.submitEnvelope(env)
	if err != nil {
		if status == http.StatusTooManyRequests {
			// The engine itself pushed back (queue full, or admitted then
			// shed); tell the client how long the queue needs to drain.
			w.Header().Set("Retry-After", retryAfterSeconds(s.adm.pressureRetryAfter()))
		}
		httpErrorCoded(w, status, wire.ErrorCode(err), "%v", err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusAccepted)
	writeJSON(w, wire.SubmitAck{ID: id, Status: "accepted"})
}

// handleBatch serves POST /queries:batch: N submission envelopes in one
// request, each accepted or rejected independently. The HTTP status is
// 200 whenever the batch itself is well-formed; per-spec verdicts (with
// stable error codes) are index-aligned with the request.
func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	if s.isClosing() {
		httpErrorCoded(w, http.StatusServiceUnavailable, wire.CodeServerClosing, "server closing")
		return
	}
	var req wire.BatchRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, "bad JSON: %v", err)
		return
	}
	if req.V != 0 && req.V != wire.Version2 {
		httpError(w, http.StatusBadRequest, "unsupported batch version %d (this build speaks v%d)", req.V, wire.Version2)
		return
	}
	if len(req.Queries) == 0 {
		httpError(w, http.StatusBadRequest, `empty batch: no "queries"`)
		return
	}
	if len(req.Queries) > wire.MaxBatch {
		httpError(w, http.StatusBadRequest, "batch of %d exceeds the %d-spec limit", len(req.Queries), wire.MaxBatch)
		return
	}
	// A batch charges the token bucket one token per entry — splitting a
	// burst across batches must not dodge the rate limit.
	client := clientKey(r)
	if ra, ok := s.adm.admitSubmit(client, len(req.Queries)); !ok {
		s.obs.admissionRejects.With("rate_limit").Inc()
		s.httpTooMany(w, wire.CodeRateLimited, ra, "client %q over its submission rate limit", client)
		return
	}
	if ra, ok := s.adm.admitQueue(); !ok {
		s.obs.admissionRejects.With("queue_pressure").Inc()
		s.httpTooMany(w, wire.CodeQueueFull, ra, "ingest queue past high-water mark: %v", ps.ErrQueueFull)
		return
	}
	resp := wire.BatchResponse{V: wire.Version2, Results: make([]wire.BatchResult, 0, len(req.Queries))}
	for _, env := range req.Queries {
		id, _, err := s.submitEnvelope(env)
		if err != nil {
			resp.Rejected++
			resp.Results = append(resp.Results, wire.BatchResult{
				ID: id, Status: "rejected", Code: wire.ErrorCode(err), Error: err.Error(),
			})
			continue
		}
		resp.Accepted++
		resp.Results = append(resp.Results, wire.BatchResult{ID: id, Status: "accepted"})
	}
	w.Header().Set("Content-Type", "application/json")
	// A 200 batch can still carry retryable per-spec rejections
	// (queue_full/shed); give the retrying client the same queue-pressure
	// hint a standalone 429 would carry.
	for _, res := range resp.Results {
		if res.Status != "accepted" && wire.RetryableCode(res.Code) {
			w.Header().Set("Retry-After", retryAfterSeconds(s.adm.pressureRetryAfter()))
			break
		}
	}
	writeJSON(w, resp)
}

// frameWriter writes v2 event frames in the negotiated stream format
// (NDJSON by default, SSE when the client asked for text/event-stream)
// and flushes after every frame so push latency is one frame, not one
// buffer.
type frameWriter struct {
	w   http.ResponseWriter
	fl  http.Flusher
	sse bool
	err error
}

func (fw *frameWriter) write(f wire.EventFrame) bool {
	if fw.err != nil {
		return false
	}
	buf, err := wire.MarshalEventFrame(f)
	if err != nil {
		fw.err = err
		return false
	}
	if fw.sse {
		_, fw.err = fmt.Fprintf(fw.w, "data: %s\n\n", buf)
	} else {
		_, fw.err = fmt.Fprintf(fw.w, "%s\n", buf)
	}
	if fw.err == nil {
		fw.fl.Flush()
	}
	return fw.err == nil
}

// handleWatch serves GET /watch?id=...&cursor=...: the query's event
// stream, pushed as NDJSON lines (or SSE events). History up to the live
// attach point is replayed from the registry record — so a client
// reconnecting with its last cursor misses nothing the record still
// retains (anything older surfaces as a gap frame) — and everything
// after it is followed live from an engine subscription. The stream ends
// with the query's terminal frame, or with a server_closing frame on
// graceful shutdown.
func (s *Server) handleWatch(w http.ResponseWriter, r *http.Request) {
	id := r.URL.Query().Get("id")
	if id == "" {
		httpError(w, http.StatusBadRequest, `missing "id"`)
		return
	}
	cursor := noCursor
	if raw := r.URL.Query().Get("cursor"); raw != "" {
		c, err := strconv.Atoi(raw)
		if err != nil {
			httpError(w, http.StatusBadRequest, "bad cursor %q", raw)
			return
		}
		cursor = c
	}
	rec := s.record(id)
	if rec == nil {
		httpErrorCoded(w, http.StatusNotFound, wire.CodeUnknownQuery, "unknown query %q", id)
		return
	}
	fl, ok := w.(http.Flusher)
	if !ok {
		httpError(w, http.StatusInternalServerError, "response writer cannot stream")
		return
	}

	// Register the stream with admission control under a cancelable
	// context: fair-share eviction cancels it, the client sees its stream
	// end, reconnects with its cursor, and anything missed surfaces as a
	// gap frame — degradation, not data corruption.
	client := clientKey(r)
	ctx, cancel := context.WithCancel(r.Context())
	defer cancel()
	release, ra, admitted := s.adm.admitStream(client, cancel)
	if !admitted {
		s.obs.admissionRejects.With("stream_cap").Inc()
		s.httpTooMany(w, wire.CodeRateLimited, ra, "client %q at its concurrent watch-stream cap", client)
		return
	}
	defer release()

	// Attach the live subscription BEFORE snapshotting the record: every
	// event is then either covered by the record replay (cursor <= the
	// subscription's join boundary, which the record is waited up to) or
	// delivered by the subscription — none can fall between.
	sub, err := s.eng.Watch(id)
	if err == nil {
		defer sub.Close()
	} else {
		sub = nil // finished (or never live): serve entirely from the record
	}

	fw := &frameWriter{w: w, fl: fl, sse: strings.Contains(r.Header.Get("Accept"), "text/event-stream")}
	if fw.sse {
		w.Header().Set("Content-Type", "text/event-stream")
	} else {
		w.Header().Set("Content-Type", "application/x-ndjson")
	}
	w.Header().Set("Cache-Control", "no-store")
	w.WriteHeader(http.StatusOK)

	if sub == nil {
		s.streamFromRecord(ctx, rec, cursor, fw)
		return
	}

	boundary := sub.JoinCursor()
	// Wait for the record to cover everything published before the
	// subscription attached.
	for {
		rec.mu.Lock()
		ready := rec.done || (rec.live && rec.lastCursor >= boundary)
		updated := rec.updated
		rec.mu.Unlock()
		if ready {
			break
		}
		select {
		case <-updated:
		case <-ctx.Done():
			return
		case <-s.closing:
			fw.write(wire.ServerClosingFrame())
			return
		}
	}
	sent, ok := s.replayHistory(rec, cursor, boundary, fw)
	if !ok {
		return
	}

	for {
		select {
		case ev, open := <-sub.Events():
			if !open {
				// The engine closed the stream; the terminal frame (if
				// any) was already delivered above.
				return
			}
			if ev.Type == ps.EventAccepted {
				continue // replayed from the record already
			}
			if ev.Type == ps.EventSlotUpdate && ev.Slot <= sent {
				continue
			}
			f, err := wire.FrameFromEvent(ev)
			if err != nil {
				continue
			}
			if !fw.write(f) {
				return
			}
			if f.Terminal() {
				return
			}
		case <-ctx.Done():
			return
		case <-s.closing:
			fw.write(wire.ServerClosingFrame())
			return
		}
	}
}

// replayHistory writes the record's frames with cursor in (after,
// upTo] — the accepted frame, a gap covering anything evicted past the
// retained window, and the retained slot_update/gap frames in stream
// order. Returns the last cursor written (or after) and whether the
// stream is still writable.
func (s *Server) replayHistory(rec *queryRecord, after, upTo int, fw *frameWriter) (int, bool) {
	rec.mu.Lock()
	windowKnown := rec.windowKnown
	start, end := rec.start, rec.end
	acceptedTS := rec.acceptedTS
	missing := rec.missing
	frames := make([]wire.EventFrame, len(rec.frames))
	copy(frames, rec.frames)
	rec.mu.Unlock()

	sent := after
	if windowKnown && start-1 > after && start-1 <= upTo {
		if !fw.write(wire.EventFrame{
			V: wire.Version2, Event: wire.FrameAccepted, ID: rec.id,
			Slot: start - 1, Start: start, End: end, TS: acceptedTS,
		}) {
			return sent, false
		}
		sent = start - 1
	}
	if missing > 0 {
		// Everything evicted past the cap predates the oldest retained
		// frame; only a client resuming from before that window has
		// actually lost it. From is clamped to the client's cursor, so
		// the range never covers slots it already holds (Dropped is then
		// an upper bound on this client's loss).
		oldest := end + 1
		if len(frames) > 0 {
			oldest = frames[0].Slot
		}
		if after < oldest-1 {
			from := start
			if after+1 > from {
				from = after + 1
			}
			if !fw.write(wire.EventFrame{
				V: wire.Version2, Event: wire.FrameGap, ID: rec.id,
				Slot: oldest - 1, From: from, To: oldest - 1, Dropped: missing,
			}) {
				return sent, false
			}
			if oldest-1 > sent {
				sent = oldest - 1
			}
		}
	}
	for _, f := range frames {
		if f.Slot <= after || f.Slot > upTo {
			continue
		}
		if !fw.write(f) {
			return sent, false
		}
		sent = f.Slot
	}
	return sent, true
}

// streamFromRecord follows a record with no live engine subscription —
// the query already finished, or finishes while we stream — replaying
// history after the cursor and ending with the terminal frame.
func (s *Server) streamFromRecord(ctx context.Context, rec *queryRecord, cursor int, fw *frameWriter) {
	sent := cursor
	for {
		rec.mu.Lock()
		done := rec.done
		updated := rec.updated
		rec.mu.Unlock()

		var ok bool
		if sent, ok = s.replayHistory(rec, sent, math.MaxInt, fw); !ok {
			return
		}
		if done {
			fw.write(s.terminalFrame(rec))
			return
		}
		select {
		case <-updated:
		case <-ctx.Done():
			return
		case <-s.closing:
			fw.write(wire.ServerClosingFrame())
			return
		}
	}
}

// terminalFrame synthesizes the record's terminal v2 frame.
func (s *Server) terminalFrame(rec *queryRecord) wire.EventFrame {
	rec.mu.Lock()
	defer rec.mu.Unlock()
	if rec.canceled || rec.errMsg != "" {
		code := rec.errCode
		if code == "" {
			code = wire.CodeCanceled
		}
		return wire.EventFrame{
			V: wire.Version2, Event: wire.FrameCanceled, ID: rec.id,
			Slot: rec.lastCursor, Error: rec.errMsg, Code: code, TS: rec.termTS,
		}
	}
	end := rec.end
	if !rec.windowKnown {
		end = rec.lastCursor
	}
	return wire.EventFrame{
		V: wire.Version2, Event: wire.FrameFinal, ID: rec.id,
		Slot: end, TS: rec.termTS,
	}
}

func (s *Server) record(id string) *queryRecord {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.queries[id]
}

func (s *Server) handleGet(w http.ResponseWriter, r *http.Request) {
	rec := s.record(r.PathValue("id"))
	if rec == nil {
		httpErrorCoded(w, http.StatusNotFound, wire.CodeUnknownQuery, "unknown query %q", r.PathValue("id"))
		return
	}
	rec.mu.Lock()
	resp := wire.QueryStatus{
		ID:               rec.id,
		Type:             rec.typ,
		Done:             rec.done,
		Results:          make([]wire.Result, 0, len(rec.frames)),
		ResultsTruncated: rec.missing,
		Error:            rec.errMsg,
	}
	for _, f := range rec.frames {
		if f.Event == wire.FrameSlotUpdate && f.Result != nil {
			resp.Results = append(resp.Results, *f.Result)
		} else if f.Event == wire.FrameGap {
			// Results inside a retained gap are as unavailable to the
			// polling endpoint as ones evicted past the cap.
			resp.ResultsTruncated += f.Dropped
		}
	}
	rec.mu.Unlock()
	w.Header().Set("Content-Type", "application/json")
	writeJSON(w, resp)
}

// handleList serves GET /queries: one page of the registry ordered by
// query ID, so operators can enumerate live queries instead of guessing
// IDs. ?offset= and ?limit= paginate; limit defaults to 100, is capped
// at 1000, and limit=0 returns an empty page with the total only.
func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	offset, err := queryInt(r, "offset", 0)
	if err != nil || offset < 0 {
		httpError(w, http.StatusBadRequest, "bad offset %q", r.URL.Query().Get("offset"))
		return
	}
	limit, err := queryInt(r, "limit", defaultListLimit)
	if err != nil || limit < 0 {
		httpError(w, http.StatusBadRequest, "bad limit %q", r.URL.Query().Get("limit"))
		return
	}
	if limit > maxListLimit {
		limit = maxListLimit
	}

	s.mu.Lock()
	recs := make([]*queryRecord, 0, len(s.queries))
	for _, rec := range s.queries {
		recs = append(recs, rec)
	}
	s.mu.Unlock()
	sort.Slice(recs, func(i, j int) bool { return recs[i].id < recs[j].id })

	list := wire.QueryList{Total: len(recs), Offset: offset, Queries: []wire.QuerySummary{}}
	if offset < len(recs) && limit > 0 {
		page := recs[offset:]
		if len(page) > limit {
			page = page[:limit]
		}
		for _, rec := range page {
			rec.mu.Lock()
			list.Queries = append(list.Queries, wire.QuerySummary{
				ID:      rec.id,
				Type:    rec.typ,
				Done:    rec.done,
				Results: rec.slotUpdates,
			})
			rec.mu.Unlock()
		}
	}
	list.Count = len(list.Queries)
	w.Header().Set("Content-Type", "application/json")
	writeJSON(w, list)
}

func queryInt(r *http.Request, key string, def int) (int, error) {
	v := r.URL.Query().Get(key)
	if v == "" {
		return def, nil
	}
	return strconv.Atoi(v)
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	rec := s.record(r.PathValue("id"))
	if rec == nil {
		httpErrorCoded(w, http.StatusNotFound, wire.CodeUnknownQuery, "unknown query %q", r.PathValue("id"))
		return
	}
	rec.mu.Lock()
	h := rec.handle
	done := rec.done
	rec.mu.Unlock()
	if h == nil {
		httpError(w, http.StatusConflict, "query %q still registering", rec.id)
		return
	}
	if done {
		httpError(w, http.StatusGone, "query %q already finished", rec.id)
		return
	}
	if err := h.Cancel(); err != nil {
		httpErrorCoded(w, http.StatusServiceUnavailable, wire.ErrorCode(err), "cancel: %v", err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	writeJSON(w, wire.SubmitAck{ID: rec.id, Status: "canceling"})
}

// handleMetrics serves the engine metrics in two representations from
// one endpoint: the JSON document (default, unchanged wire format) and
// the Prometheus text exposition, selected by Accept: text/plain (what
// a Prometheus scrape sends) or ?format=prometheus.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if wantsPrometheus(r) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		if err := s.eng.Observability().WritePrometheus(w); err != nil {
			log.Printf("serve: write prometheus exposition: %v", err)
		}
		return
	}
	m := wire.MetricsFrom(s.eng.Metrics(), ps.Strategy(s.strategy.Load()).String())
	w.Header().Set("Content-Type", "application/json")
	writeJSON(w, m)
}

func (s *Server) handleGetStrategy(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	writeJSON(w, wire.StrategyBody{Strategy: ps.Strategy(s.strategy.Load()).String()})
}

// handleSetStrategy switches the candidate-evaluation strategy of the
// live engine. Selections are bit-identical across strategies, so the
// switch is safe mid-stream; it takes effect from the next slot.
func (s *Server) handleSetStrategy(w http.ResponseWriter, r *http.Request) {
	var req wire.StrategyBody
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, "bad JSON: %v", err)
		return
	}
	// ParseStrategy treats "" as auto; an absent field must not silently
	// reset a live engine, so require an explicit name here.
	if req.Strategy == "" {
		httpError(w, http.StatusBadRequest, `missing "strategy" (want auto, serial, sharded, lazy or lazy-sharded)`)
		return
	}
	strat, err := ps.ParseStrategy(req.Strategy)
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	s.stratMu.Lock()
	err = s.eng.SetGreedyStrategy(strat)
	if err == nil {
		s.strategy.Store(int32(strat))
	}
	s.stratMu.Unlock()
	if err != nil {
		httpErrorCoded(w, http.StatusServiceUnavailable, wire.ErrorCode(err), "set strategy: %v", err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	writeJSON(w, wire.StrategyBody{Strategy: strat.String(), Status: "ok"})
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	m := s.eng.Metrics()
	version, revision, goVersion := buildIdentity()
	h := wire.Healthz{
		OK:            !s.isClosing(),
		Slots:         m.Slots,
		QueueDepth:    m.QueueDepth,
		Version:       version,
		Revision:      revision,
		GoVersion:     goVersion,
		UptimeSeconds: time.Since(s.start).Seconds(),
	}
	if s.cluster != nil {
		h.Cluster = s.cluster()
	}
	w.Header().Set("Content-Type", "application/json")
	writeJSON(w, h)
}

func writeJSON(w http.ResponseWriter, v any) {
	if err := json.NewEncoder(w).Encode(v); err != nil {
		log.Printf("serve: encode response: %v", err)
	}
}

func httpError(w http.ResponseWriter, status int, format string, args ...any) {
	httpErrorCoded(w, status, "", format, args...)
}

// httpTooMany writes a 429 with a Retry-After hint derived from the
// admission decision (token deficit or queue pressure).
func (s *Server) httpTooMany(w http.ResponseWriter, code string, retryAfter time.Duration, format string, args ...any) {
	w.Header().Set("Retry-After", retryAfterSeconds(retryAfter))
	httpErrorCoded(w, http.StatusTooManyRequests, code, format, args...)
}

// httpErrorCoded writes an ErrorBody carrying the stable machine-
// readable code (empty codes are omitted from the JSON).
func httpErrorCoded(w http.ResponseWriter, status int, code, format string, args ...any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	writeJSON(w, wire.ErrorBody{Error: fmt.Sprintf(format, args...), Code: code})
}
