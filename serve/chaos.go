package serve

import (
	"fmt"
	"net/http"
	"sync"
	"time"

	"repro/internal/rng"
)

// ChaosConfig parameterizes the Chaos middleware. All probabilities are
// in [0,1] and default to 0 (no injection). The decision stream is drawn
// from a seeded deterministic generator in request-arrival order, so a
// scenario replays the same fault schedule run to run (modulo arrival
// interleaving under concurrency).
type ChaosConfig struct {
	// Seed seeds the fault schedule.
	Seed int64
	// DelayProb injects a uniform delay in [DelayMin, DelayMax] before
	// the request is handled.
	DelayProb          float64
	DelayMin, DelayMax time.Duration
	// ErrorProb short-circuits the request with a 503 (code
	// "chaos_injected") before it reaches the handler.
	ErrorProb float64
	// DropProb arms a mid-stream connection drop: the response is severed
	// (http.ErrAbortHandler) after between DropAfterMin and DropAfterMax
	// flushes. Handlers that never flush — every non-streaming route —
	// are unaffected, so drops cut /watch streams mid-flight without
	// corrupting request/response routes.
	DropProb                   float64
	DropAfterMin, DropAfterMax int
	// Sleep substitutes the delay sleeper (tests inject a recorder);
	// nil means time.Sleep.
	Sleep func(time.Duration)
}

// Chaos wraps a handler with seeded fault injection — delays, error
// responses, and mid-stream connection drops — for overload and
// resilience harnesses (psbench -scenario overload-soak). It is a plain
// middleware: production servers simply never mount it.
func Chaos(next http.Handler, cfg ChaosConfig) http.Handler {
	r := rng.New(cfg.Seed, "serve-chaos")
	var mu sync.Mutex
	sleep := cfg.Sleep
	if sleep == nil {
		sleep = time.Sleep
	}
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		// Draw the request's full fault decision under one lock so the
		// schedule is a deterministic function of arrival order.
		mu.Lock()
		var delay time.Duration
		if cfg.DelayProb > 0 && r.Bool(cfg.DelayProb) {
			delay = cfg.DelayMin
			if cfg.DelayMax > cfg.DelayMin {
				delay += time.Duration(r.Float64() * float64(cfg.DelayMax-cfg.DelayMin))
			}
		}
		injectErr := cfg.ErrorProb > 0 && r.Bool(cfg.ErrorProb)
		dropAfter := -1
		if cfg.DropProb > 0 && r.Bool(cfg.DropProb) {
			dropAfter = cfg.DropAfterMin
			if cfg.DropAfterMax > cfg.DropAfterMin {
				dropAfter += r.Intn(cfg.DropAfterMax - cfg.DropAfterMin + 1)
			}
		}
		mu.Unlock()

		if delay > 0 {
			sleep(delay)
		}
		if injectErr {
			w.Header().Set("Content-Type", "application/json")
			w.WriteHeader(http.StatusServiceUnavailable)
			fmt.Fprintln(w, `{"error":"chaos: injected fault","code":"chaos_injected"}`)
			return
		}
		if dropAfter >= 0 {
			w = &droppingWriter{ResponseWriter: w, remaining: dropAfter}
		}
		next.ServeHTTP(w, req)
	})
}

// droppingWriter severs the connection after a budgeted number of
// flushes by panicking with http.ErrAbortHandler — the one panic value
// net/http treats as "abort this connection quietly". Streaming handlers
// flush per frame, so the budget is a frame count.
type droppingWriter struct {
	http.ResponseWriter
	remaining int
}

func (d *droppingWriter) Flush() {
	if d.remaining <= 0 {
		panic(http.ErrAbortHandler)
	}
	d.remaining--
	if f, ok := d.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// Unwrap lets http.ResponseController reach the underlying writer.
func (d *droppingWriter) Unwrap() http.ResponseWriter { return d.ResponseWriter }
