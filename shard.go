package ps

import (
	"fmt"
	"math"
	"runtime"
	"slices"
	"strings"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/geo"
	"repro/internal/obs"
	"repro/internal/query"
	"repro/internal/sensornet"
)

// GridPartition is the geographic partitioner of the sharded execution
// layer (see internal/geo).
type GridPartition = geo.GridPartition

// ShardStats describes one shard's contribution to a slot — or, when
// accumulated across slots (EngineMetrics.Shards), its running totals.
type ShardStats struct {
	// Shard is the shard index, or -1 for the dedicated spanning pass.
	Shard int
	// Spanning marks the cross-shard reconciliation pass that serves
	// queries whose footprint intersects several shards.
	Spanning bool
	// Offers is how many sensor offers were routed to this shard.
	Offers int
	// Queries is how many queries (one-shots, active continuous queries
	// and generated probes) the shard scheduled.
	Queries int
	// SensorsUsed counts the shard's selected sensors.
	SensorsUsed int
	// Welfare is the shard's social-welfare contribution.
	Welfare float64
	// SelectMs is the wall time of the lane's selection pass, in
	// milliseconds (accumulated across slots in running totals). Lanes
	// execute concurrently, so the slot's shard_select stage tracks the
	// slowest lane on machines with a core per lane and the *sum* of the
	// lanes when they time-slice one core; recording both lets consumers
	// separate algorithmic cost from scheduling. When GOMAXPROCS is 1 the
	// lanes run sequentially (the outcome is identical — they share no
	// mutable state — and goroutine interleaving would otherwise inflate
	// every lane's measured wall time).
	SelectMs float64
	// Selection instruments the shard's greedy pass.
	Selection SelectionStats
}

// accumulate folds one slot's shard stats into a running total.
func (s *ShardStats) accumulate(o ShardStats) {
	s.Offers += o.Offers
	s.Queries += o.Queries
	s.SensorsUsed += o.SensorsUsed
	s.Welfare += o.Welfare
	s.SelectMs += o.SelectMs
	s.Selection.Accumulate(o.Selection)
}

// shardedEntry is one routed query in the sharded layer's global
// submission registry. The registry preserves the order queries were
// submitted in, per class, because the reconciliation pass must sum
// per-type values in exactly the order a single unsharded pipeline would
// have — float addition is not associative, and the golden equivalence
// guarantee is bit-level.
type shardedEntry struct {
	id   string
	home int // shard index, or -1 for the spanning lane
	end  int // last active slot (one-shots: the slot they run)
}

// shardedOrder is the per-class global submission registry.
type shardedOrder struct {
	points, aggs, extra []shardedEntry
	locMon, regMon      []shardedEntry
	events, regEvents   []shardedEntry
}

func (o *shardedOrder) each(f func(*[]shardedEntry)) {
	for _, s := range []*[]shardedEntry{
		&o.points, &o.aggs, &o.extra, &o.locMon, &o.regMon, &o.events, &o.regEvents,
	} {
		f(s)
	}
}

// ShardedAggregator is the geo-sharded execution layer: it partitions the
// world's working region into K geographic shards, routes each submitted
// Spec to the shard its relevance footprint lies in, runs the per-shard
// Algorithm 5 pipelines concurrently, and merges the partial results
// through a deterministic reconciliation pass.
//
// Queries whose footprint intersects several shards (trajectories, large
// regions) are cross-shard: they run in a dedicated spanning pass over
// the slot's residual supply — the offers no shard selected — after the
// per-shard passes complete.
//
// Exactness: on workloads where every query is resident in a single shard,
// the merged SlotReport is bit-identical to an unsharded Aggregator's
// (same welfare, per-query values and payments, to the last float bit).
// This holds because shard-resident queries in different shards can never
// share a relevant sensor, so the global greedy pass decomposes exactly,
// and the reconciliation replays its commit interleaving from the
// per-shard selection traces (merge by net benefit descending, offer
// index ascending) and re-sums every total in the unsharded accumulation
// order. Spanning queries break the decomposition and are served
// approximately: they compete for supply after the resident passes, so
// per-slot welfare can fall below the unsharded pipeline's (see
// DESIGN.md, "Sharded execution", for the observed bound).
//
// The sharded layer always routes through the greedy Algorithm 5
// pipeline; the point-only Scheduling policies and the baseline pipeline
// of the unsharded Aggregator do not decompose by shard and are not
// honored here.
//
// Like Aggregator, a ShardedAggregator is confined to one goroutine (the
// Engine's loop when wrapped via NewShardedEngine); only the slot's
// per-shard passes fan out internally.
type ShardedAggregator struct {
	world *World
	part  GridPartition

	shards []*Aggregator // the in-process lane backing per shard
	lanes  []LaneRunner  // the pluggable execution seam, one per shard
	span   *Aggregator   // the cross-shard (spanning) lane

	// preSlot, when set, runs at the top of every RunSlot before the
	// fleet steps (the cluster coordinator's membership sweep).
	preSlot func()
	// sensorsByID resolves wire partials' sensor IDs; built lazily (fleet
	// membership is fixed for a world's lifetime).
	sensorsByID map[int]*sensornet.Sensor

	order    shardedOrder
	ledger   core.Ledger
	selStats core.SelectionStats
	// stats accumulates the per-shard breakdown across slots; index
	// len(shards) is the spanning pass.
	stats []ShardStats

	// Per-slot routing scratch, reused across RunSlot calls: at metro
	// scale rebuilding these every slot re-allocates tens of thousands of
	// entries per lane. Nothing downstream retains the slices past the
	// slot (executeSlot copies what it keeps), so reuse is safe.
	partsBuf    [][]core.Offer
	gidxBuf     [][]int
	takenBuf    map[int]bool
	residualBuf []core.Offer
}

// NewShardedAggregator builds a sharded execution layer over a world with
// the given shard count. Options apply to every shard lane (and the
// spanning lane), so WithGreedyStrategy selects every lane's default
// strategy; SetShardStrategy overrides a single shard afterwards.
func NewShardedAggregator(world *World, shards int, opts ...Option) *ShardedAggregator {
	part := geo.NewGridPartition(world.Working, shards)
	sa := &ShardedAggregator{world: world, part: part}
	n := part.NumShards()
	sa.shards = make([]*Aggregator, n)
	for k := range sa.shards {
		sa.shards[k] = NewAggregator(world, opts...)
	}
	sa.span = NewAggregator(world, opts...)
	// The sharded layer always routes through the greedy Algorithm 5
	// pipeline (see the type comment): the baseline pipeline records no
	// selection trace, so honoring WithBaselinePipeline here would make
	// the reconciliation replay commit nothing while payments were still
	// booked. Override it rather than corrupt results. Lanes left on
	// StrategyAuto default to lazy-greedy: every strategy is bit-identical
	// (the strategy-equivalence tests gate this), and CELF-style pruning
	// is what keeps metro-scale lanes under the slot latency budget. An
	// explicit WithGreedyStrategy/SetShardStrategy still wins.
	for _, a := range append(slices.Clone(sa.shards), sa.span) {
		a.baseline = false
		if a.greedy.Strategy == core.StrategyAuto {
			a.greedy.Strategy = core.StrategyLazy
		}
	}
	sa.lanes = make([]LaneRunner, n)
	for k := range sa.lanes {
		sa.lanes[k] = &localLane{a: sa.shards[k]}
	}
	sa.stats = make([]ShardStats, n+1)
	for k := range sa.stats {
		sa.stats[k].Shard = k
	}
	sa.stats[n] = ShardStats{Shard: -1, Spanning: true}
	return sa
}

// ShardCount returns the number of geographic shards.
func (sa *ShardedAggregator) ShardCount() int { return len(sa.shards) }

// SetLaneRunner replaces shard k's execution lane — the cluster
// coordinator plugs a network lane in here, promoting the shard to a
// remote node. The replaced in-process lane's aggregator is abandoned;
// swap lanes before submitting queries. Remote lanes always run on their
// own goroutine during RunSlot (they are IO-bound), while in-process
// lanes keep the GOMAXPROCS-aware fan-out.
func (sa *ShardedAggregator) SetLaneRunner(shard int, r LaneRunner) {
	sa.lanes[shard] = r
}

// SetPreSlot registers a hook run at the top of every RunSlot, before the
// fleet steps. The cluster coordinator uses it for the membership sweep
// (fact-TTL expiry, liveness gauges); its wall time is traced as the
// membership stage.
func (sa *ShardedAggregator) SetPreSlot(f func()) { sa.preSlot = f }

// sensorIdx lazily builds the fleet's sensor-by-ID index used to bind
// wire partials.
func (sa *ShardedAggregator) sensorIdx() map[int]*sensornet.Sensor {
	if sa.sensorsByID == nil {
		sa.sensorsByID = sensorIndex(sa.world.Fleet.Sensors)
	}
	return sa.sensorsByID
}

// Partition returns the geographic partitioner routing sensors and
// queries to shards.
func (sa *ShardedAggregator) Partition() GridPartition { return sa.part }

// Ledger exposes the cumulative accounting over all shards.
func (sa *ShardedAggregator) Ledger() *core.Ledger { return &sa.ledger }

// SelectionStats returns the cumulative selection instrumentation summed
// over every shard and the spanning pass.
func (sa *ShardedAggregator) SelectionStats() SelectionStats { return sa.selStats }

// ShardStats returns the cumulative per-shard breakdown; the last entry
// is the spanning pass.
func (sa *ShardedAggregator) ShardStats() []ShardStats {
	return slices.Clone(sa.stats)
}

// SetGreedyStrategy switches every lane's candidate-evaluation strategy.
func (sa *ShardedAggregator) SetGreedyStrategy(s Strategy) {
	for _, l := range sa.lanes {
		l.SetStrategy(s)
	}
	sa.span.SetGreedyStrategy(s)
}

// SetShardStrategy switches a single shard's strategy, so hot shards can
// run the lazy fast path while cold ones stay serial.
func (sa *ShardedAggregator) SetShardStrategy(shard int, s Strategy) {
	sa.lanes[shard].SetStrategy(s)
}

// NextSlot returns the slot number the next RunSlot call will execute.
func (sa *ShardedAggregator) NextSlot() int { return sa.world.Fleet.Slot() + 1 }

// Submit validates a spec and registers it with the shard its footprint
// resides in, or with the spanning lane when the footprint crosses shard
// borders.
func (sa *ShardedAggregator) Submit(spec Spec) (SubmittedQuery, error) {
	if isNilSpec(spec) {
		return SubmittedQuery{}, errNilSpec
	}
	if err := spec.Validate(sa.world); err != nil {
		return SubmittedQuery{}, err
	}
	return sa.materializeSpec(spec)
}

// materializeSpec routes and registers a spec without validation (the
// deprecated lenient submission path of the Engine wrappers).
func (sa *ShardedAggregator) materializeSpec(spec Spec) (SubmittedQuery, error) {
	home := sa.route(spec)
	var sq SubmittedQuery
	var err error
	if home >= 0 {
		sq, err = sa.lanes[home].Submit(spec)
	} else {
		sq, err = spec.materialize(sa.span)
	}
	if err != nil {
		return sq, err
	}
	e := shardedEntry{id: sq.ID, home: home, end: sq.End}
	switch sq.Kind {
	case KindPoint:
		sa.order.points = append(sa.order.points, e)
	case KindAggregate:
		sa.order.aggs = append(sa.order.aggs, e)
	case KindMultiPoint, KindTrajectory:
		sa.order.extra = append(sa.order.extra, e)
	case KindLocationMonitoring:
		sa.order.locMon = append(sa.order.locMon, e)
	case KindRegionMonitoring:
		sa.order.regMon = append(sa.order.regMon, e)
	case KindEventDetection:
		sa.order.events = append(sa.order.events, e)
	case KindRegionEvent:
		sa.order.regEvents = append(sa.order.regEvents, e)
	}
	return sq, nil
}

// route returns the shard a spec is resident in, or -1 when its footprint
// intersects several shards (spanning). The footprint is clipped to the
// working region first: only sensors inside it are ever offered, so a
// query hanging over the region edge is not needlessly spanning.
func (sa *ShardedAggregator) route(spec Spec) int {
	fp := spec.footprint(sa.world)
	if clipped, ok := fp.Intersect(sa.world.Fleet.WorkingRegion); ok {
		fp = clipped
	}
	shards := sa.part.ShardsOf(fp)
	if len(shards) == 1 {
		return shards[0]
	}
	return -1
}

// CancelQuery withdraws a pending or continuous query by ID from
// whichever lane holds it.
func (sa *ShardedAggregator) CancelQuery(id string) bool {
	removed := false
	for _, l := range sa.lanes {
		removed = l.Cancel(id) || removed
	}
	removed = sa.span.CancelQuery(id) || removed
	if removed {
		sa.order.each(func(s *[]shardedEntry) {
			*s = slices.DeleteFunc(*s, func(e shardedEntry) bool { return e.id == id })
		})
	}
	return removed
}

// RunSlot advances the world one time slot, executes every shard's
// pipeline concurrently over the offers routed to it, runs the spanning
// pass over the residual supply, and reconciles the partial results into
// one SlotReport.
func (sa *ShardedAggregator) RunSlot() *SlotReport {
	tr := obs.StartTrace()
	if sa.preSlot != nil {
		sa.preSlot()
		tr.Mark(StageMembership)
	}
	offers := sa.world.Fleet.Step()
	t := sa.world.Fleet.Slot()
	tr.Mark(StageOfferGather)

	// Route offers: each sensor belongs to exactly one shard.
	if sa.partsBuf == nil {
		sa.partsBuf = make([][]core.Offer, len(sa.shards))
		sa.gidxBuf = make([][]int, len(sa.shards))
	}
	parts := sa.partsBuf
	gidx := sa.gidxBuf // local offer index -> global
	for k := range parts {
		parts[k] = parts[k][:0]
		gidx[k] = gidx[k][:0]
	}
	for i, o := range offers {
		k := sa.part.ShardOf(o.Sensor.Pos)
		parts[k] = append(parts[k], o)
		gidx[k] = append(gidx[k], i)
	}
	tr.Mark(StageRoute)

	// Per-shard passes run concurrently. In-process lanes share only
	// read-only world state (sensor positions, the phenomenon field, GP
	// model), and each continuous query is owned by exactly one lane.
	// Each lane times its own pass (ShardStats.SelectMs); on a
	// single-core runner in-process lanes execute sequentially instead,
	// which is behaviorally identical and keeps those timings free of
	// goroutine time-slicing. Network lanes are IO-bound, so they always
	// fan out first and are gathered after the local compute window —
	// their residual wait is the lane_rpc stage.
	partials := make([]*LanePartial, len(sa.lanes))
	laneErrs := make([]error, len(sa.lanes))
	runLane := func(k int) {
		partials[k], laneErrs[k] = sa.lanes[k].RunLane(t, parts[k])
	}
	var local, remote []int
	for k, l := range sa.lanes {
		if _, ok := l.(*localLane); ok {
			local = append(local, k)
		} else {
			remote = append(remote, k)
		}
	}
	var rwg sync.WaitGroup
	for _, k := range remote {
		rwg.Add(1)
		go func(k int) {
			defer rwg.Done()
			runLane(k)
		}(k)
	}
	if runtime.GOMAXPROCS(0) == 1 {
		for _, k := range local {
			runLane(k)
		}
	} else {
		var wg sync.WaitGroup
		for _, k := range local {
			wg.Add(1)
			go func(k int) {
				defer wg.Done()
				runLane(k)
			}(k)
		}
		wg.Wait()
	}
	tr.Mark(StageShardSelect)
	if len(remote) > 0 {
		rwg.Wait()
		tr.Mark(StageLaneRPC)
	}

	// Bind the partials into executable form. A lane that failed (node
	// dead, stale partial, lockstep divergence) degrades: its resident
	// queries get no outcome this slot and the failure is surfaced in
	// SlotReport.Degraded rather than corrupting the merge.
	execs := make([]*slotExec, len(sa.lanes))
	laneMs := make([]float64, len(sa.lanes))
	var degraded []LaneError
	for k := range sa.lanes {
		if laneErrs[k] == nil && partials[k] != nil && partials[k].Slot != t {
			laneErrs[k] = fmt.Errorf("ps: lane %d returned a partial for slot %d, want %d",
				k, partials[k].Slot, t)
		}
		if laneErrs[k] == nil && partials[k] != nil {
			execs[k], laneErrs[k] = partials[k].bind(sa.sensorIdx())
			laneMs[k] = partials[k].SelectMs
		}
		if laneErrs[k] != nil {
			execs[k] = nil
			degraded = append(degraded, LaneError{Shard: k, Err: laneErrs[k]})
		}
	}
	if len(remote) > 0 {
		tr.Mark(StageGather)
	}

	// Spanning pass: cross-shard queries compete for the residual supply,
	// the offers no shard selected.
	var spanExec *slotExec
	var spanMs float64
	if sa.span.pendingWork(t) {
		if sa.takenBuf == nil {
			sa.takenBuf = make(map[int]bool)
		} else {
			clear(sa.takenBuf)
		}
		taken := sa.takenBuf
		for _, ex := range execs {
			if ex == nil {
				continue
			}
			for _, s := range ex.selected {
				taken[s.ID] = true
			}
		}
		residual := sa.residualBuf[:0]
		for _, o := range offers {
			if !taken[o.Sensor.ID] {
				residual = append(residual, o)
			}
		}
		sa.residualBuf = residual
		spanStart := time.Now()
		spanExec = sa.span.executeSlot(t, residual, true)
		spanMs = float64(time.Since(spanStart).Nanoseconds()) / 1e6
	}
	tr.Mark(StageSpanning)

	rep, selected := sa.reconcile(t, len(offers), parts, execs, gidx, spanExec, laneMs, spanMs)
	rep.Degraded = degraded
	tr.Mark(StageReconcile)

	// Data acquisition and accounting (stage 5 of Algorithm 5), once over
	// the union of the lanes' selections.
	sa.world.Fleet.Commit(selected)
	tr.Mark(StageCommit)
	mixes := make([]*core.MixSlotResult, 0, len(execs)+1)
	for _, ex := range execs {
		if ex != nil {
			mixes = append(mixes, ex.mix)
		}
	}
	if spanExec != nil {
		mixes = append(mixes, spanExec.mix)
	}
	sa.ledger.RecordMixResults(mixes...)
	sa.selStats.Accumulate(rep.Selection)
	for i, s := range rep.Shards {
		sa.stats[i].accumulate(s)
	}

	// Propagate the slot's global commit to every lane: in-process lanes
	// retire consumed queries; network lanes forward the commit so node
	// replicas step in lockstep. A commit that cannot be delivered
	// degrades the lane (it resyncs by deterministic replay on rejoin).
	selectedIDs := make([]int, len(selected))
	for i, s := range selected {
		selectedIDs[i] = s.ID
	}
	for k, l := range sa.lanes {
		if err := l.FinishSlot(t, selectedIDs); err != nil {
			rep.Degraded = append(rep.Degraded, LaneError{Shard: k, Err: err})
		}
	}
	sa.span.retire(t)
	sa.order.each(func(s *[]shardedEntry) {
		*s = slices.DeleteFunc(*s, func(e shardedEntry) bool { return e.end <= t })
	})
	tr.Mark(StageAccounting)
	rep.Stages = tr.Spans()
	return rep
}

// reconcile merges the per-shard partial results into one SlotReport that
// is bit-identical to the unsharded pipeline's on shard-resident
// workloads. Two mechanisms make the floats exact rather than merely
// close:
//
//   - The commit interleaving of the single global greedy pass is replayed
//     from the per-shard selection traces: at every step the shard whose
//     next commit has the largest net benefit goes first (ties to the
//     lower global offer index — the serial scan's first-max rule), which
//     reproduces the unsharded TotalCost accumulation order term by term.
//   - Per-type values are re-summed over the queries in global submission
//     order (the order registry), the order the unsharded pipeline's
//     accounting loops iterate in.
func (sa *ShardedAggregator) reconcile(t, offers int, parts [][]core.Offer, execs []*slotExec, gidx [][]int, spanExec *slotExec, laneMs []float64, spanMs float64) (*SlotReport, []*sensornet.Sensor) {
	rep := &SlotReport{
		Slot:     t,
		Offers:   offers,
		values:   make(map[string]float64),
		payments: make(map[string]float64),
		answered: make(map[string]bool),
	}

	// Replay the global commit order from the shard traces.
	var selected []*sensornet.Sensor
	heads := make([]int, len(execs))
	for {
		best, bestIdx := -1, 0
		var bestNet float64
		for k, ex := range execs {
			if ex == nil {
				continue
			}
			tr := ex.mix.Multi.Trace
			if heads[k] >= len(tr) {
				continue
			}
			st := tr[heads[k]]
			g := gidx[k][st.Offer]
			if best == -1 || st.Net > bestNet || (st.Net == bestNet && g < bestIdx) {
				best, bestNet, bestIdx = k, st.Net, g
			}
		}
		if best == -1 {
			break
		}
		ex := execs[best]
		st := ex.mix.Multi.Trace[heads[best]]
		selected = append(selected, ex.mix.Multi.Selected[heads[best]])
		rep.TotalCost += st.Cost
		heads[best]++
	}
	// The spanning pass ran after every shard pass; its commits append in
	// their own order.
	if spanExec != nil {
		for i, st := range spanExec.mix.Multi.Trace {
			selected = append(selected, spanExec.mix.Multi.Selected[i])
			rep.TotalCost += st.Cost
		}
	}
	rep.SensorsUsed = len(selected)

	// Per-type values in global submission order.
	mixFor := func(home int) *core.MixSlotResult {
		if home >= 0 {
			if execs[home] == nil {
				return nil
			}
			return execs[home].mix
		}
		if spanExec != nil {
			return spanExec.mix
		}
		return nil
	}
	sumOutcomes := func(entries []shardedEntry, into *float64) {
		for _, e := range entries {
			if m := mixFor(e.home); m != nil {
				if out := m.Multi.Outcomes[e.id]; out != nil {
					*into += out.Value
				}
			}
		}
	}
	sumOutcomes(sa.order.points, &rep.PointValue)
	sumOutcomes(sa.order.aggs, &rep.AggValue)
	// ExtraValue spans user extras and the probes generated for event
	// queries, in the same order the unsharded pipeline appends them:
	// user extras, then event probes, then region-event probes.
	sumOutcomes(sa.order.extra, &rep.ExtraValue)
	sumProbes := func(entries []shardedEntry, suffix string) {
		for _, e := range entries {
			if m := mixFor(e.home); m != nil {
				if out := m.Multi.Outcomes[query.PointID(e.id, t, suffix)]; out != nil {
					rep.ExtraValue += out.Value
				}
			}
		}
	}
	sumProbes(sa.order.events, "ev")
	sumProbes(sa.order.regEvents, "rev")
	sumDeltas := func(entries []shardedEntry, into *float64) {
		for _, e := range entries {
			if m := mixFor(e.home); m != nil {
				if co, ok := m.Continuous[e.id]; ok {
					*into += co.ValueDelta
				}
			}
		}
	}
	sumDeltas(sa.order.locMon, &rep.LocMonValue)
	sumDeltas(sa.order.regMon, &rep.RegMonValue)
	rep.Welfare = rep.PointValue + rep.AggValue + rep.LocMonValue +
		rep.RegMonValue + rep.ExtraValue - rep.TotalCost

	// Per-query outcome maps are disjoint across lanes (every query lives
	// in exactly one), so the merge is a union.
	mergeLane := func(ex *slotExec, shard int, spanning bool, laneOffers int, selectMs float64) {
		for id, v := range ex.report.values {
			rep.values[id] = v
		}
		for id, p := range ex.report.payments {
			rep.payments[id] = p
		}
		for id := range ex.report.answered {
			rep.answered[id] = true
		}
		rep.Events = append(rep.Events, ex.report.Events...)
		rep.Selection.Accumulate(ex.report.Selection)
		rep.Shards = append(rep.Shards, ShardStats{
			Shard:       shard,
			Spanning:    spanning,
			Offers:      laneOffers,
			Queries:     ex.queries,
			SensorsUsed: len(ex.selected),
			Welfare:     ex.report.Welfare,
			SelectMs:    selectMs,
			Selection:   ex.report.Selection,
		})
	}
	for k, ex := range execs {
		if ex == nil {
			// Keep rep.Shards index-aligned for the stats accumulation:
			// a degraded lane contributes zeros this slot.
			rep.Shards = append(rep.Shards, ShardStats{Shard: k})
			continue
		}
		mergeLane(ex, k, false, len(parts[k]), laneMs[k])
	}
	if spanExec != nil {
		mergeLane(spanExec, -1, true, spanExec.report.Offers, spanMs)
	} else {
		rep.Shards = append(rep.Shards, ShardStats{Shard: -1, Spanning: true})
	}
	slices.SortFunc(rep.Events, func(a, b EventNotification) int {
		return strings.Compare(a.QueryID, b.QueryID)
	})
	return rep, selected
}

// expandRect grows a rectangle by m on every side.
func expandRect(r Rect, m float64) Rect {
	return Rect{MinX: r.MinX - m, MinY: r.MinY - m, MaxX: r.MaxX + m, MaxY: r.MaxY + m}
}

// pointFootprint is the relevance footprint of a location query: the
// sensing disk of radius dmax around the location.
func pointFootprint(loc Point, w *World) Rect {
	return expandRect(Rect{MinX: loc.X, MinY: loc.Y, MaxX: loc.X, MaxY: loc.Y}, w.DMax)
}

// The per-kind relevance footprints. Each bounds every sensor position
// the materialized query (or any probe it generates) could find Relevant.

func (s PointSpec) footprint(w *World) Rect { return pointFootprint(s.Loc, w) }

func (s MultiPointSpec) footprint(w *World) Rect { return pointFootprint(s.Loc, w) }

func (s AggregateSpec) footprint(w *World) Rect { return expandRect(s.Region, w.DMax) }

func (s TrajectorySpec) footprint(w *World) Rect {
	return expandRect(s.Path.BoundingRect(), w.DMax)
}

func (s LocationMonitoringSpec) footprint(w *World) Rect { return pointFootprint(s.Loc, w) }

// Region monitoring's supply is the sensors inside the region, but its
// generated point probes (Algorithm 4) reach core.RegionProbeDMax beyond
// a probed sensor's position, so the footprint pads the region by the
// larger of the two radii.
func (s RegionMonitoringSpec) footprint(w *World) Rect {
	return expandRect(s.Region, math.Max(w.DMax, core.RegionProbeDMax))
}

func (s EventDetectionSpec) footprint(w *World) Rect { return pointFootprint(s.Loc, w) }

func (s RegionEventSpec) footprint(w *World) Rect { return expandRect(s.Region, w.DMax) }
