package ps_test

import (
	"fmt"

	ps "repro"
)

// ExampleAggregator_Submit shows the batch entry point: every query kind
// is a spec struct submitted through the one generic Submit, and RunSlot
// executes the paper's once-per-slot selection.
func ExampleAggregator_Submit() {
	world := ps.NewRWMWorld(1, 200, ps.SensorConfig{})
	agg := ps.NewAggregator(world)

	if _, err := agg.Submit(ps.PointSpec{ID: "q1", Loc: ps.Pt(30, 30), Budget: 15}); err != nil {
		fmt.Println("submit:", err)
		return
	}
	if _, err := agg.Submit(ps.AggregateSpec{ID: "q2", Region: ps.NewRect(20, 20, 45, 45), Budget: 120}); err != nil {
		fmt.Println("submit:", err)
		return
	}

	report := agg.RunSlot()
	fmt.Println("q1 answered:", report.Answered("q1"))
	fmt.Println("q2 answered:", report.Answered("q2"))
	fmt.Println("welfare positive:", report.Welfare > 0)
	// Output:
	// q1 answered: true
	// q2 answered: true
	// welfare positive: true
}

// ExampleEngine_Watch attaches a second observer to a live query's event
// stream: the watcher gets the query's Accepted event on join, then every
// event published afterwards, ending with Final when the query expires.
func ExampleEngine_Watch() {
	world := ps.NewRWMWorld(1, 200, ps.SensorConfig{})
	eng := ps.NewEngine(ps.NewAggregator(world)) // no interval: virtual clock
	eng.Start()
	defer eng.Stop()

	h, err := eng.Submit(ps.LocationMonitoringSpec{
		ID: "lm1", Loc: ps.Pt(30, 30), Duration: 2, Budget: 80, Samples: 2,
	})
	if err != nil {
		fmt.Println("submit:", err)
		return
	}
	// Submission is an asynchronous enqueue: the query is live — and
	// watchable — once its own stream opens with Accepted.
	<-h.Events()

	sub, err := eng.Watch("lm1")
	if err != nil {
		fmt.Println("watch:", err)
		return
	}
	defer sub.Close()

	if err := eng.RunSlots(2); err != nil {
		fmt.Println("run:", err)
		return
	}
	for ev := range sub.Events() {
		if ev.Type == ps.EventSlotUpdate {
			fmt.Println("slot", ev.Slot, "answered:", ev.Result.Answered)
		} else {
			fmt.Println(ev.Type)
		}
	}
	// Output:
	// accepted
	// slot 0 answered: true
	// slot 1 answered: true
	// final
}

// ExampleWithGreedyStrategy runs the same workload under the serial
// reference scan and the lazy-greedy (CELF) strategy: the reports are
// bit-identical — strategies only change how much work a slot does, never
// its outcome — while the lazy run makes fewer valuation calls.
func ExampleWithGreedyStrategy() {
	mk := func(s ps.Strategy) *ps.Aggregator {
		return ps.NewAggregator(ps.NewRWMWorld(7, 300, ps.SensorConfig{}),
			ps.WithGreedyStrategy(s))
	}
	serial, lazy := mk(ps.StrategySerial), mk(ps.StrategyLazy)

	for _, agg := range []*ps.Aggregator{serial, lazy} {
		agg.Submit(ps.AggregateSpec{ID: "a", Region: ps.NewRect(10, 10, 60, 60), Budget: 200})
		agg.Submit(ps.PointSpec{ID: "p", Loc: ps.Pt(40, 40), Budget: 12})
	}
	rs, rl := serial.RunSlot(), lazy.RunSlot()

	fmt.Println("welfare identical:", rs.Welfare == rl.Welfare)
	ss, sl := serial.SelectionStats(), lazy.SelectionStats()
	fmt.Println("lazy made fewer valuation calls:", sl.ValuationCalls < ss.ValuationCalls)
	// Output:
	// welfare identical: true
	// lazy made fewer valuation calls: true
}

// ExampleShardedAggregator_SetShardStrategy builds the geo-sharded
// execution layer and pins one lane to the serial scan while the rest
// keep the lazy default; per-lane strategy never changes results.
func ExampleShardedAggregator_SetShardStrategy() {
	world := ps.NewRWMWorld(2, 400, ps.SensorConfig{})
	sa := ps.NewShardedAggregator(world, 4, ps.WithGreedyStrategy(ps.StrategyLazy))
	sa.SetShardStrategy(0, ps.StrategySerial) // e.g. a cold lane

	sa.Submit(ps.PointSpec{ID: "p0", Loc: ps.Pt(30, 30), Budget: 15})
	sa.Submit(ps.PointSpec{ID: "p1", Loc: ps.Pt(50, 50), Budget: 15})

	report := sa.RunSlot()
	fmt.Println("shards:", sa.ShardCount())
	fmt.Println("p0 answered:", report.Answered("p0"))
	fmt.Println("p1 answered:", report.Answered("p1"))
	// Output:
	// shards: 4
	// p0 answered: true
	// p1 answered: true
}
