package ps

import (
	"errors"
	"fmt"
	"maps"
	"strings"
	"testing"
)

func TestQueryKindStringRoundTrip(t *testing.T) {
	kinds := []QueryKind{
		KindPoint, KindMultiPoint, KindAggregate, KindTrajectory,
		KindLocationMonitoring, KindRegionMonitoring, KindEventDetection, KindRegionEvent,
	}
	if len(kinds) != 8 {
		t.Fatalf("expected 8 kinds")
	}
	seen := map[string]bool{}
	for _, k := range kinds {
		name := k.String()
		if seen[name] {
			t.Errorf("duplicate kind name %q", name)
		}
		seen[name] = true
		back, err := ParseQueryKind(name)
		if err != nil || back != k {
			t.Errorf("ParseQueryKind(%q) = %v, %v; want %v", name, back, err, k)
		}
	}
	if _, err := ParseQueryKind("nonsense"); err == nil {
		t.Error("ParseQueryKind(nonsense) succeeded")
	}
}

// TestSpecValidateRejections: the centralized validation rejects the
// malformed specs each transport used to have to police itself.
func TestSpecValidateRejections(t *testing.T) {
	rwm := NewRWMWorld(1, 50, SensorConfig{})
	gp := NewIntelLabWorld(1, SensorConfig{})

	valid := []Spec{
		PointSpec{ID: "p", Loc: Pt(30, 30), Budget: 10},
		MultiPointSpec{ID: "mp", Loc: Pt(30, 30), Budget: 10, K: 3},
		AggregateSpec{ID: "a", Region: NewRect(20, 20, 40, 40), Budget: 100},
		TrajectorySpec{ID: "tr", Path: Trajectory{Waypoints: []Point{Pt(0, 0), Pt(10, 10)}}, Budget: 50},
		LocationMonitoringSpec{ID: "lm", Loc: Pt(30, 30), Duration: 5, Budget: 100, Samples: 3},
		EventDetectionSpec{ID: "ev", Loc: Pt(30, 30), Duration: 5, Threshold: 1, Confidence: 0.9, BudgetPerSlot: 10},
		RegionEventSpec{ID: "re", Region: NewRect(20, 20, 40, 40), Duration: 5, Threshold: 1, Confidence: 0.9, BudgetPerSlot: 10},
	}
	for _, spec := range valid {
		if err := spec.Validate(rwm); err != nil {
			t.Errorf("valid %s spec rejected: %v", spec.Kind(), err)
		}
	}
	if err := (RegionMonitoringSpec{ID: "rm", Region: NewRect(1, 1, 10, 10), Duration: 5, Budget: 100}).Validate(gp); err != nil {
		t.Errorf("valid regmon spec rejected on GP world: %v", err)
	}

	rejections := []struct {
		name string
		spec Spec
		want string
	}{
		{"empty id", PointSpec{Loc: Pt(1, 1), Budget: 5}, "empty query ID"},
		{"negative budget point", PointSpec{ID: "p", Loc: Pt(1, 1), Budget: -5}, "negative budget"},
		{"negative budget aggregate", AggregateSpec{ID: "a", Region: NewRect(0, 0, 5, 5), Budget: -1}, "negative budget"},
		{"negative k", MultiPointSpec{ID: "mp", Loc: Pt(1, 1), Budget: 5, K: -2}, "negative redundancy"},
		{"empty trajectory", TrajectorySpec{ID: "tr", Budget: 5}, "0 waypoints"},
		{"one-waypoint trajectory", TrajectorySpec{ID: "tr", Path: Trajectory{Waypoints: []Point{Pt(1, 1)}}, Budget: 5}, "1 waypoints"},
		{"zero duration locmon", LocationMonitoringSpec{ID: "lm", Loc: Pt(1, 1), Budget: 10}, "duration 0"},
		{"negative duration event", EventDetectionSpec{ID: "ev", Loc: Pt(1, 1), Duration: -3, BudgetPerSlot: 5}, "duration -3"},
		{"zero duration regionevent", RegionEventSpec{ID: "re", Region: NewRect(0, 0, 5, 5), BudgetPerSlot: 5}, "duration 0"},
		{"negative samples", LocationMonitoringSpec{ID: "lm", Loc: Pt(1, 1), Duration: 5, Budget: 10, Samples: -1}, "negative sample count"},
		{"negative per-slot budget", EventDetectionSpec{ID: "ev", Loc: Pt(1, 1), Duration: 5, BudgetPerSlot: -5}, "negative budget"},
		{"regmon without GP model", RegionMonitoringSpec{ID: "rm", Region: NewRect(0, 0, 5, 5), Duration: 5, Budget: 10}, "no GP phenomenon model"},
	}
	for _, tc := range rejections {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.spec.Validate(rwm)
			if err == nil {
				t.Fatalf("Validate accepted %#v", tc.spec)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Errorf("error = %q, want it to contain %q", err, tc.want)
			}
			// Submit must refuse the same spec without registering anything.
			agg := NewAggregator(rwm)
			if _, err := agg.Submit(tc.spec); err == nil {
				t.Errorf("Submit accepted invalid spec %#v", tc.spec)
			}
		})
	}
}

// TestSpecValidateSentinels walks every error path of Spec.Validate
// across all 8 kinds and asserts the wrapped sentinel with errors.Is, so
// transports can branch on the failure class instead of matching message
// text. Happy paths per kind anchor the table.
func TestSpecValidateSentinels(t *testing.T) {
	rwm := NewRWMWorld(1, 50, SensorConfig{})
	gp := NewIntelLabWorld(1, SensorConfig{})

	region := NewRect(20, 20, 40, 40)
	path := Trajectory{Waypoints: []Point{Pt(0, 0), Pt(10, 10)}}
	cases := []struct {
		name  string
		spec  Spec
		world *World
		want  error // nil = must validate
	}{
		// One valid spec per kind: the sentinel table must not over-reject.
		{"point ok", PointSpec{ID: "q", Loc: Pt(30, 30), Budget: 10}, rwm, nil},
		{"multipoint ok", MultiPointSpec{ID: "q", Loc: Pt(30, 30), Budget: 10, K: 3}, rwm, nil},
		{"aggregate ok", AggregateSpec{ID: "q", Region: region, Budget: 10}, rwm, nil},
		{"trajectory ok", TrajectorySpec{ID: "q", Path: path, Budget: 10}, rwm, nil},
		{"locmon ok", LocationMonitoringSpec{ID: "q", Loc: Pt(30, 30), Duration: 3, Budget: 10, Samples: 2}, rwm, nil},
		{"regmon ok", RegionMonitoringSpec{ID: "q", Region: region, Duration: 3, Budget: 10}, gp, nil},
		{"event ok", EventDetectionSpec{ID: "q", Loc: Pt(30, 30), Duration: 3, BudgetPerSlot: 10}, rwm, nil},
		{"regionevent ok", RegionEventSpec{ID: "q", Region: region, Duration: 3, BudgetPerSlot: 10}, rwm, nil},

		// Empty ID, every kind.
		{"point empty id", PointSpec{Loc: Pt(1, 1), Budget: 5}, rwm, ErrEmptyQueryID},
		{"multipoint empty id", MultiPointSpec{Loc: Pt(1, 1), Budget: 5}, rwm, ErrEmptyQueryID},
		{"aggregate empty id", AggregateSpec{Region: region, Budget: 5}, rwm, ErrEmptyQueryID},
		{"trajectory empty id", TrajectorySpec{Path: path, Budget: 5}, rwm, ErrEmptyQueryID},
		{"locmon empty id", LocationMonitoringSpec{Loc: Pt(1, 1), Duration: 3, Budget: 5}, rwm, ErrEmptyQueryID},
		{"regmon empty id", RegionMonitoringSpec{Region: region, Duration: 3, Budget: 5}, gp, ErrEmptyQueryID},
		{"event empty id", EventDetectionSpec{Loc: Pt(1, 1), Duration: 3, BudgetPerSlot: 5}, rwm, ErrEmptyQueryID},
		{"regionevent empty id", RegionEventSpec{Region: region, Duration: 3, BudgetPerSlot: 5}, rwm, ErrEmptyQueryID},

		// Negative budget (or per-slot budget), every kind.
		{"point negative budget", PointSpec{ID: "q", Loc: Pt(1, 1), Budget: -1}, rwm, ErrNegativeBudget},
		{"multipoint negative budget", MultiPointSpec{ID: "q", Loc: Pt(1, 1), Budget: -1}, rwm, ErrNegativeBudget},
		{"aggregate negative budget", AggregateSpec{ID: "q", Region: region, Budget: -1}, rwm, ErrNegativeBudget},
		{"trajectory negative budget", TrajectorySpec{ID: "q", Path: path, Budget: -1}, rwm, ErrNegativeBudget},
		{"locmon negative budget", LocationMonitoringSpec{ID: "q", Loc: Pt(1, 1), Duration: 3, Budget: -1}, rwm, ErrNegativeBudget},
		{"regmon negative budget", RegionMonitoringSpec{ID: "q", Region: region, Duration: 3, Budget: -1}, gp, ErrNegativeBudget},
		{"event negative budget", EventDetectionSpec{ID: "q", Loc: Pt(1, 1), Duration: 3, BudgetPerSlot: -1}, rwm, ErrNegativeBudget},
		{"regionevent negative budget", RegionEventSpec{ID: "q", Region: region, Duration: 3, BudgetPerSlot: -1}, rwm, ErrNegativeBudget},

		// Degenerate windows, every continuous kind.
		{"locmon zero duration", LocationMonitoringSpec{ID: "q", Loc: Pt(1, 1), Budget: 5}, rwm, ErrBadDuration},
		{"regmon zero duration", RegionMonitoringSpec{ID: "q", Region: region, Budget: 5}, gp, ErrBadDuration},
		{"event negative duration", EventDetectionSpec{ID: "q", Loc: Pt(1, 1), Duration: -2, BudgetPerSlot: 5}, rwm, ErrBadDuration},
		{"regionevent zero duration", RegionEventSpec{ID: "q", Region: region, BudgetPerSlot: 5}, rwm, ErrBadDuration},

		// Kind-specific shape errors.
		{"trajectory no waypoints", TrajectorySpec{ID: "q", Budget: 5}, rwm, ErrBadTrajectory},
		{"trajectory one waypoint", TrajectorySpec{ID: "q", Path: Trajectory{Waypoints: []Point{Pt(1, 1)}}, Budget: 5}, rwm, ErrBadTrajectory},
		{"multipoint negative k", MultiPointSpec{ID: "q", Loc: Pt(1, 1), Budget: 5, K: -1}, rwm, ErrNegativeRedundancy},
		{"locmon negative samples", LocationMonitoringSpec{ID: "q", Loc: Pt(1, 1), Duration: 3, Budget: 5, Samples: -1}, rwm, ErrNegativeSamples},

		// The GP-model precondition: no model, and no world at all.
		{"regmon without model", RegionMonitoringSpec{ID: "q", Region: region, Duration: 3, Budget: 5}, rwm, ErrNoGPModel},
		{"regmon nil world", RegionMonitoringSpec{ID: "q", Region: region, Duration: 3, Budget: 5}, nil, ErrNoGPModel},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.spec.Validate(tc.world)
			if tc.want == nil {
				if err != nil {
					t.Fatalf("Validate(%#v) = %v, want nil", tc.spec, err)
				}
				return
			}
			if err == nil {
				t.Fatalf("Validate accepted %#v, want %v", tc.spec, tc.want)
			}
			if !errors.Is(err, tc.want) {
				t.Errorf("Validate error %q does not wrap sentinel %q", err, tc.want)
			}
			// Aggregator.Submit must surface the same sentinel.
			if tc.world != nil {
				if _, serr := NewAggregator(tc.world).Submit(tc.spec); !errors.Is(serr, tc.want) {
					t.Errorf("Submit error %v does not wrap sentinel %q", serr, tc.want)
				}
			}
		})
	}
}

// reportSnapshot captures the comparable surface of a SlotReport.
type reportSnapshot struct {
	slot        int
	welfare     float64
	totalCost   float64
	sensorsUsed int
	offers      int
	pointValue  float64
	aggValue    float64
	locMon      float64
	regMon      float64
	extra       float64
	events      int
	values      map[string]float64
	payments    map[string]float64
	answered    map[string]bool
}

func snapshot(r *SlotReport) reportSnapshot {
	return reportSnapshot{
		slot:        r.Slot,
		welfare:     r.Welfare,
		totalCost:   r.TotalCost,
		sensorsUsed: r.SensorsUsed,
		offers:      r.Offers,
		pointValue:  r.PointValue,
		aggValue:    r.AggValue,
		locMon:      r.LocMonValue,
		regMon:      r.RegMonValue,
		extra:       r.ExtraValue,
		events:      len(r.Events),
		values:      maps.Clone(r.values),
		payments:    maps.Clone(r.payments),
		answered:    maps.Clone(r.answered),
	}
}

// requireIdentical compares two snapshots bit-for-bit (float equality,
// not tolerance: the two paths must execute the same arithmetic).
func requireIdentical(t *testing.T, slot int, legacy, spec reportSnapshot) {
	t.Helper()
	if legacy.slot != spec.slot || legacy.offers != spec.offers {
		t.Fatalf("slot %d: slot/offers diverged: %+v vs %+v", slot, legacy, spec)
	}
	if legacy.welfare != spec.welfare {
		t.Fatalf("slot %d: welfare %v != %v", slot, legacy.welfare, spec.welfare)
	}
	if legacy.totalCost != spec.totalCost || legacy.sensorsUsed != spec.sensorsUsed {
		t.Fatalf("slot %d: cost/sensors diverged: %+v vs %+v", slot, legacy, spec)
	}
	if legacy.pointValue != spec.pointValue || legacy.aggValue != spec.aggValue ||
		legacy.locMon != spec.locMon || legacy.regMon != spec.regMon || legacy.extra != spec.extra {
		t.Fatalf("slot %d: per-type values diverged: %+v vs %+v", slot, legacy, spec)
	}
	if legacy.events != spec.events {
		t.Fatalf("slot %d: event count %d != %d", slot, legacy.events, spec.events)
	}
	if !maps.Equal(legacy.values, spec.values) {
		t.Fatalf("slot %d: values diverged:\n legacy %v\n spec   %v", slot, legacy.values, spec.values)
	}
	if !maps.Equal(legacy.payments, spec.payments) {
		t.Fatalf("slot %d: payments diverged:\n legacy %v\n spec   %v", slot, legacy.payments, spec.payments)
	}
	if !maps.Equal(legacy.answered, spec.answered) {
		t.Fatalf("slot %d: answered diverged:\n legacy %v\n spec   %v", slot, legacy.answered, spec.answered)
	}
}

// TestSubmitSpecGoldenEquivalence: on a fixed-seed RWM workload mixing
// seven query kinds, spec-based submission produces bit-identical
// SlotReports (welfare, values, payments) to the legacy Submit* methods.
func TestSubmitSpecGoldenEquivalence(t *testing.T) {
	const seed, sensors, slots = 17, 150, 8

	legacyWorld := NewRWMWorld(seed, sensors, SensorConfig{})
	specWorld := NewRWMWorld(seed, sensors, SensorConfig{})
	legacy := NewAggregator(legacyWorld)
	specAgg := NewAggregator(specWorld)

	mustSubmit := func(spec Spec) {
		t.Helper()
		if _, err := specAgg.Submit(spec); err != nil {
			t.Fatalf("Submit(%s %q): %v", spec.Kind(), spec.QueryID(), err)
		}
	}

	// Continuous queries once, before slot 0.
	legacy.SubmitLocationMonitoring("lm", Pt(30, 30), slots, 150, 4)
	mustSubmit(LocationMonitoringSpec{ID: "lm", Loc: Pt(30, 30), Duration: slots, Budget: 150, Samples: 4})
	legacy.SubmitEventDetection("ev", Pt(35, 30), slots, 0.5, 0.6, 30)
	mustSubmit(EventDetectionSpec{ID: "ev", Loc: Pt(35, 30), Duration: slots, Threshold: 0.5, Confidence: 0.6, BudgetPerSlot: 30})
	legacy.SubmitRegionEvent("re", NewRect(25, 25, 40, 40), slots, 0.5, 0.5, 60)
	mustSubmit(RegionEventSpec{ID: "re", Region: NewRect(25, 25, 40, 40), Duration: slots, Threshold: 0.5, Confidence: 0.5, BudgetPerSlot: 60})

	for slot := 0; slot < slots; slot++ {
		// One-shot demand: identical parameters on both sides.
		for i := 0; i < 25; i++ {
			id := fmt.Sprintf("pt-%d-%d", slot, i)
			x := 15 + float64((i*37+slot*11)%50)
			y := 15 + float64((i*53+slot*29)%50)
			legacy.SubmitPoint(id, Pt(x, y), 10+float64(i%7))
			mustSubmit(PointSpec{ID: id, Loc: Pt(x, y), Budget: 10 + float64(i%7)})
		}
		for i := 0; i < 3; i++ {
			id := fmt.Sprintf("mp-%d-%d", slot, i)
			legacy.SubmitMultiPoint(id, Pt(30+float64(i), 32), 60, 4)
			mustSubmit(MultiPointSpec{ID: id, Loc: Pt(30+float64(i), 32), Budget: 60, K: 4})
		}
		for i := 0; i < 2; i++ {
			id := fmt.Sprintf("agg-%d-%d", slot, i)
			r := NewRect(20+float64(5*i), 20, 38+float64(5*i), 38)
			legacy.SubmitAggregate(id, r, 250)
			mustSubmit(AggregateSpec{ID: id, Region: r, Budget: 250})
		}
		id := fmt.Sprintf("tr-%d", slot)
		path := Trajectory{Waypoints: []Point{Pt(20, 20), Pt(35, 30), Pt(45, 45)}}
		legacy.SubmitTrajectory(id, path, 120)
		mustSubmit(TrajectorySpec{ID: id, Path: path, Budget: 120})

		lr := legacy.RunSlot()
		sr := specAgg.RunSlot()
		requireIdentical(t, slot, snapshot(lr), snapshot(sr))
	}
}

// TestSubmitSpecGoldenEquivalenceRegionMonitoring covers the eighth kind
// on the GP-model world it requires.
func TestSubmitSpecGoldenEquivalenceRegionMonitoring(t *testing.T) {
	const seed, slots = 5, 6
	legacyWorld := NewIntelLabWorld(seed, SensorConfig{})
	specWorld := NewIntelLabWorld(seed, SensorConfig{})
	legacy := NewAggregator(legacyWorld)
	specAgg := NewAggregator(specWorld)

	if _, err := legacy.SubmitRegionMonitoring("rm", NewRect(1, 1, 15, 12), slots, 200); err != nil {
		t.Fatalf("legacy submit: %v", err)
	}
	if _, err := specAgg.Submit(RegionMonitoringSpec{ID: "rm", Region: NewRect(1, 1, 15, 12), Duration: slots, Budget: 200}); err != nil {
		t.Fatalf("spec submit: %v", err)
	}
	for slot := 0; slot < slots; slot++ {
		// A little point demand so sensors get shared.
		id := fmt.Sprintf("pt-%d", slot)
		legacy.SubmitPoint(id, Pt(10, 8), 15)
		if _, err := specAgg.Submit(PointSpec{ID: id, Loc: Pt(10, 8), Budget: 15}); err != nil {
			t.Fatalf("spec point submit: %v", err)
		}
		requireIdentical(t, slot, snapshot(legacy.RunSlot()), snapshot(specAgg.RunSlot()))
	}
}

// TestSubmittedQueryMetadata: Submit reports kind, window and the
// concrete underlying query.
func TestSubmittedQueryMetadata(t *testing.T) {
	world := NewRWMWorld(2, 50, SensorConfig{})
	agg := NewAggregator(world)

	sq, err := agg.Submit(PointSpec{ID: "p", Loc: Pt(30, 30), Budget: 10})
	if err != nil {
		t.Fatalf("submit point: %v", err)
	}
	if sq.ID != "p" || sq.Kind != KindPoint || sq.Start != sq.End || sq.Start != agg.NextSlot() {
		t.Errorf("point SubmittedQuery = %+v", sq)
	}
	if _, ok := sq.Underlying().(*PointQuery); !ok {
		t.Errorf("point Underlying = %T", sq.Underlying())
	}

	sq, err = agg.Submit(LocationMonitoringSpec{ID: "lm", Loc: Pt(30, 30), Duration: 7, Budget: 100, Samples: 3})
	if err != nil {
		t.Fatalf("submit locmon: %v", err)
	}
	if sq.Kind != KindLocationMonitoring || sq.End-sq.Start != 6 {
		t.Errorf("locmon SubmittedQuery = %+v, want a 7-slot window", sq)
	}
	lm, ok := sq.Underlying().(*LocationMonitoringQuery)
	if !ok || lm.Start != sq.Start || lm.End != sq.End {
		t.Errorf("locmon Underlying = %#v vs %+v", lm, sq)
	}

	// Nil specs — untyped or typed-nil pointers — are refused, not
	// dereferenced.
	if _, err := agg.Submit(nil); err == nil {
		t.Error("Submit(nil) succeeded")
	}
	var typedNil *PointSpec
	if _, err := agg.Submit(typedNil); err == nil {
		t.Error("Submit(typed nil) succeeded")
	}

	// Pointer specs are a sanctioned form (value-receiver methods
	// promote); they materialize like their value counterparts.
	sq, err = agg.Submit(&PointSpec{ID: "pp", Loc: Pt(30, 30), Budget: 10})
	if err != nil || sq.Kind != KindPoint {
		t.Errorf("Submit(*PointSpec) = %+v, %v", sq, err)
	}
}

// TestSlotReportOutcomes: the bulk iterator agrees with the per-id
// getters and covers answered-but-zero-value continuous queries.
func TestSlotReportOutcomes(t *testing.T) {
	world := NewRWMWorld(3, 200, SensorConfig{})
	agg := NewAggregator(world)
	if _, err := agg.Submit(LocationMonitoringSpec{ID: "lm", Loc: Pt(30, 30), Duration: 4, Budget: 120, Samples: 2}); err != nil {
		t.Fatalf("submit: %v", err)
	}
	for i := 0; i < 6; i++ {
		if _, err := agg.Submit(PointSpec{ID: fmt.Sprintf("p%d", i), Loc: Pt(30+float64(i), 30), Budget: 20}); err != nil {
			t.Fatalf("submit: %v", err)
		}
	}
	rep := agg.RunSlot()

	got := map[string]QueryOutcome{}
	for id, o := range rep.Outcomes() {
		if _, dup := got[id]; dup {
			t.Errorf("Outcomes yielded %q twice", id)
		}
		if strings.Contains(id, "@t") {
			t.Errorf("Outcomes leaked derived probe ID %q; continuous work must appear under the parent ID only", id)
		}
		got[id] = o
	}
	if len(got) == 0 {
		t.Fatal("Outcomes yielded nothing on a dense slot")
	}
	for id, o := range got {
		if o.Answered != rep.Answered(id) || o.Value != rep.Value(id) || o.Payment != rep.Payment(id) {
			t.Errorf("outcome %q = %+v disagrees with getters (%v, %v, %v)",
				id, o, rep.Answered(id), rep.Value(id), rep.Payment(id))
		}
	}
	// Early break must not panic or leak.
	for range rep.Outcomes() {
		break
	}
}
