package ps

import (
	"strings"
	"testing"
)

// The unsharded slot trace covers the canonical stage set in pipeline
// order, and the engine prepends ingest / appends publish before
// accumulating into EngineMetrics.SlotStages.
func TestSlotStageTraceUnsharded(t *testing.T) {
	w := NewRWMWorld(7, 200, SensorConfig{})
	eng := NewEngine(NewAggregator(w))
	eng.Start()
	defer eng.Stop()

	if _, err := eng.Submit(PointSpec{ID: "q1", Loc: Pt(30, 30), Budget: 50}); err != nil {
		t.Fatal(err)
	}
	if err := eng.RunSlots(3); err != nil {
		t.Fatal(err)
	}

	m := eng.Metrics()
	want := []string{StageIngest, StageOfferGather, StageSelection, StageCommit, StageAccounting, StagePublish}
	if len(m.SlotStages) != len(want) {
		t.Fatalf("SlotStages = %+v, want stages %v", m.SlotStages, want)
	}
	for i, s := range m.SlotStages {
		if s.Stage != want[i] {
			t.Errorf("stage[%d] = %q, want %q", i, s.Stage, want[i])
		}
		if s.Count != 3 {
			t.Errorf("stage %q count = %d, want 3", s.Stage, s.Count)
		}
		if s.Total < s.Max || s.Max < s.Last {
			t.Errorf("stage %q has inconsistent totals: %+v", s.Stage, s)
		}
	}

	// The aggregator's stages are sub-intervals of RunSlot, which is what
	// the loop's slot latency measures — their sum can never exceed it.
	// Ingest and publish are engine stages outside that window.
	var sum int64
	for _, s := range m.SlotStages {
		if s.Stage == StageIngest || s.Stage == StagePublish {
			continue
		}
		sum += int64(s.Total)
	}
	if outer := int64(m.SlotLatencyAvg) * int64(m.Slots); sum > outer {
		t.Errorf("aggregator stage total %d > cumulative slot latency %d", sum, outer)
	}
}

func TestSlotStageTraceSharded(t *testing.T) {
	w := NewRWMWorld(8, 200, SensorConfig{})
	eng := NewShardedEngine(NewShardedAggregator(w, 4))
	eng.Start()
	defer eng.Stop()
	if err := eng.RunSlots(2); err != nil {
		t.Fatal(err)
	}

	m := eng.Metrics()
	want := []string{StageIngest, StageOfferGather, StageRoute, StageShardSelect,
		StageSpanning, StageReconcile, StageCommit, StageAccounting, StagePublish}
	if len(m.SlotStages) != len(want) {
		t.Fatalf("SlotStages = %+v, want stages %v", m.SlotStages, want)
	}
	for i, s := range m.SlotStages {
		if s.Stage != want[i] {
			t.Errorf("stage[%d] = %q, want %q", i, s.Stage, want[i])
		}
	}
}

// The engine's registry carries the slot/stage histograms and hub
// gauges, passes the naming lint, and renders as Prometheus text.
func TestEngineObservabilityRegistry(t *testing.T) {
	w := NewRWMWorld(9, 200, SensorConfig{})
	eng := NewEngine(NewAggregator(w))
	eng.Start()
	defer eng.Stop()
	h, err := eng.Submit(PointSpec{ID: "q1", Loc: Pt(30, 30), Budget: 50})
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.RunSlots(2); err != nil {
		t.Fatal(err)
	}
	for range h.Events() { // drain to stream end
	}

	reg := eng.Observability()
	if err := reg.Validate(); err != nil {
		t.Fatalf("metric naming: %v", err)
	}
	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"ps_slots_total 2",
		`ps_slot_stage_duration_seconds_bucket{stage="selection",le="+Inf"} 2`,
		"ps_queries_submitted_total 1",
		"# TYPE ps_hub_subscriber_lag_events gauge",
		"# TYPE ps_query_lifetime_seconds histogram",
		"ps_query_lifetime_seconds_count 1",
		"ps_query_time_to_first_update_seconds_count 1",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q", want)
		}
	}
}
