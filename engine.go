package ps

import (
	"context"
	"errors"
	"fmt"
	"log/slog"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/engine"
)

// Errors surfaced by the streaming Engine.
var (
	// ErrQueueFull reports that a submission was rejected because the
	// engine's bounded ingest queue was at capacity (backpressure).
	ErrQueueFull = engine.ErrQueueFull
	// ErrEngineStopped reports a submission to (or a subscription cut off
	// by) a stopped engine.
	ErrEngineStopped = engine.ErrStopped
	// ErrShed reports a submission that was accepted into the ingest
	// queue but evicted by the shed-oldest overflow policy before going
	// live (see WithShedOldest). It wraps ErrQueueFull, so callers
	// treating every overload rejection alike can keep testing
	// errors.Is(err, ErrQueueFull); errors.Is(err, ErrShed) isolates the
	// shed case.
	ErrShed = fmt.Errorf("ps: submission shed under overload: %w", engine.ErrQueueFull)
	// ErrCanceled marks a subscription ended by QueryHandle.Cancel.
	ErrCanceled = errors.New("ps: query canceled")
	// ErrDuplicateQueryID rejects a submission whose ID is already live.
	ErrDuplicateQueryID = errors.New("ps: duplicate query id")
)

// SlotResult is the payload of one SlotUpdate event: the query's outcome
// for one executed slot it was live for.
type SlotResult struct {
	// Slot is the executed slot number.
	Slot int
	// Answered reports whether the query was served this slot: it
	// obtained positive value, or — for continuous queries — a satisfied
	// sample whose valuation delta may round to zero.
	Answered bool
	// Value is the valuation obtained this slot, Payment what it paid.
	Value   float64
	Payment float64
	// Events carries this query's event-detection evaluations, if any.
	Events []EventNotification
	// Final marks the last slot of the query's window; an EventFinal
	// frame follows this result on the stream.
	Final bool
}

// QueryHandle is the submitting client's view of a live query: a thin
// wrapper over the query's primary event Subscription plus cancellation.
// The stream delivers Accepted, then one SlotUpdate per executed slot
// the query is live for, then Final (normal expiry) or Canceled; see
// Subscription for the slow-consumer policy. Additional observers attach
// with Engine.Watch.
type QueryHandle struct {
	id  string
	eng *Engine
	sub *Subscription
}

// ID returns the query's identifier.
func (h *QueryHandle) ID() string { return h.id }

// Events returns the handle's event stream (see Subscription.Events).
func (h *QueryHandle) Events() <-chan QueryEvent { return h.sub.Events() }

// Subscription returns the handle's underlying subscription.
func (h *QueryHandle) Subscription() *Subscription { return h.sub }

// Err explains why the stream ended: nil after normal expiry,
// ErrCanceled, ErrEngineStopped, or a submission error such as
// ErrDuplicateQueryID. Only valid once Events is closed.
func (h *QueryHandle) Err() error { return h.sub.Err() }

// Cancel withdraws the query before its next slot and terminates every
// attached subscription with a Canceled event (Err reports ErrCanceled).
// Canceling an already-finished query is a no-op. The returned error
// reports only enqueue failure of the cancellation itself (queue full or
// engine stopped).
func (h *QueryHandle) Cancel() error {
	e := h.eng
	return e.loop.Do(e.timedIngest(func() {
		if !e.hub.cancel(h.id, h.sub, ErrCanceled, time.Now()) {
			return // already expired, replaced, or canceled
		}
		e.agg.CancelQuery(h.id)
		e.mu.Lock()
		e.m.QueriesCanceled++
		e.m.ActiveQueries = e.hub.liveCount()
		e.mu.Unlock()
		e.obs.queriesCanceled.Inc()
		e.obs.queriesActive.Set(float64(e.hub.liveCount()))
	}))
}

// EngineMetrics is a point-in-time snapshot of the engine's counters.
type EngineMetrics struct {
	// Slots executed and the last executed slot number.
	Slots    int
	LastSlot int
	// Welfare, payments, cost and sensor usage accumulated over all slots.
	TotalWelfare  float64
	LastWelfare   float64
	TotalPayments float64
	TotalCost     float64
	SensorsUsed   int64
	// Query lifecycle counters: Submitted counts queries that became
	// live; Rejected counts submissions that never did (queue overflow,
	// duplicate ID, registration error).
	QueriesSubmitted int64
	QueriesRejected  int64
	// QueriesShed counts submissions accepted into the ingest queue but
	// evicted by the shed-oldest overflow policy before going live (not
	// included in QueriesRejected — a shed submission was admitted, then
	// sacrificed to newer work).
	QueriesShed     int64
	QueriesCanceled int64
	ActiveQueries   int
	// Per-(query, slot) delivery counters: Answered counts results with
	// positive value, Starved results delivered with none.
	Answered int64
	Starved  int64
	// EventsDelivered counts events handed to subscriber buffers across
	// all subscriptions; EventsDropped counts events evicted from a slow
	// subscriber's buffer (each run of evictions is summarized by one of
	// the GapEvents frames).
	EventsDelivered int64
	EventsDropped   int64
	GapEvents       int64
	// Selection instrumentation accumulated over all slots: valuation
	// calls the greedy core made, what an exhaustive scan would have
	// made (their difference is the lazy strategy's pruning), lazy-heap
	// re-evaluations and non-submodular fallback rescans. Strategy is
	// the label of the most recent slot's effective strategy.
	Strategy                string
	ValuationCalls          int64
	ValuationCallsSaved     int64
	LazyReevaluations       int64
	SubmodularityViolations int64
	FallbackRescans         int64
	// Valuation-cache instrumentation (see core.SelectionStats): probe
	// counts of the per-sensor footprint-geometry caches and the GP
	// base-posterior observation accounting (rank-1 appends vs exact
	// from-scratch rebuilds).
	GeomCacheHits     int64
	GeomCacheLookups  int64
	PosteriorAppends  int64
	PosteriorRebuilds int64
	// Shards is the cumulative per-shard breakdown when the engine drives
	// a ShardedAggregator (the last entry is the spanning pass); nil on an
	// unsharded engine.
	Shards []ShardStats
	// SlotStages is the cumulative per-stage slot latency breakdown, in
	// first-seen pipeline order (ingest, offer_gather, selection or the
	// sharded passes, commit, accounting, publish). Empty until the first
	// slot executes.
	SlotStages []StageStats
	// Ingest queue occupancy and slot execution latency.
	QueueDepth      int
	QueueCap        int
	SlotLatencyLast time.Duration
	SlotLatencyAvg  time.Duration
	SlotLatencyMax  time.Duration
}

type engineConfig struct {
	interval    time.Duration
	queueSize   int
	blockOnFull bool
	shedOldest  bool
	eventBuffer int
	drainSlots  int
	logger      *slog.Logger
}

// EngineOption customizes an Engine.
type EngineOption func(*engineConfig)

// WithSlotInterval attaches a real-time slot clock ticking every d. The
// default is no clock: slots run only through RunSlots (virtual time,
// used by tests, backtesting and benchmarks).
func WithSlotInterval(d time.Duration) EngineOption {
	return func(c *engineConfig) { c.interval = d }
}

// WithQueueSize bounds the ingest queue (default 1024 submissions).
func WithQueueSize(n int) EngineOption {
	return func(c *engineConfig) { c.queueSize = n }
}

// WithBlockingSubmit makes submissions wait for queue space instead of
// failing fast with ErrQueueFull.
func WithBlockingSubmit() EngineOption {
	return func(c *engineConfig) { c.blockOnFull = true }
}

// WithShedOldest makes a full ingest queue evict its oldest still-queued
// submission to admit the new one — the evicted query's stream closes
// with ErrShed and EngineMetrics.QueriesShed (ps_shed_total) counts it.
// Under sustained overload this keeps admission latency flat and sheds
// the work that has already waited longest, instead of rejecting all
// fresh work (the default) or stalling submitters (WithBlockingSubmit,
// which this option overrides). Only submissions are sheddable; cancels,
// strategy switches and RunSlots commands are never evicted, though
// shedding may delay them behind newer submissions. Intended for
// real-clock serving engines.
func WithShedOldest() EngineOption {
	return func(c *engineConfig) { c.shedOldest = true }
}

// WithEventBuffer sets each subscription's event buffer (default 16,
// minimum 2 — a Gap frame must fit in front of the event that displaced
// it).
func WithEventBuffer(n int) EngineOption {
	return func(c *engineConfig) {
		if n > 0 {
			c.eventBuffer = n
		}
	}
}

// WithDrainSlots caps how many extra slots Stop runs to drain in-flight
// queries before force-closing their subscriptions (default 64).
func WithDrainSlots(n int) EngineOption {
	return func(c *engineConfig) { c.drainSlots = n }
}

// WithLogger attaches a structured logger. The engine emits a per-slot
// summary at Debug level (slot, welfare, sensors, stage latencies); no
// logging happens on the hot path unless the handler enables Debug. Nil
// (the default) disables logging.
func WithLogger(l *slog.Logger) EngineOption {
	return func(c *engineConfig) { c.logger = l }
}

// queryRuntime is the execution backend surface the Engine drives: slot
// execution plus the query lifecycle. Aggregator (single-world) and
// ShardedAggregator (geo-sharded, shard.go) both satisfy it.
type queryRuntime interface {
	slotRunner
	Submit(Spec) (SubmittedQuery, error)
	CancelQuery(id string) bool
	SetGreedyStrategy(Strategy)
}

// Engine is the concurrent, slot-clocked serving layer over an
// Aggregator (or a geo-sharded ShardedAggregator). Submissions from any
// goroutine become non-blocking enqueues onto a bounded queue; a single
// event-loop goroutine owns the aggregator, executes slots as the clock
// ticks, and publishes each SlotReport through the subscription hub —
// one typed event stream per query, any number of subscribers each. The
// aggregator (and its World) must not be used directly once handed to an
// Engine.
type Engine struct {
	agg    queryRuntime
	runner slotRunner
	loop   *engine.Loop[*SlotReport]
	hub    *hub

	drainSlots int

	obs *engineObs
	// log is nil unless WithLogger was given; onSlot guards every use.
	log *slog.Logger
	// ingestNanos accumulates time spent executing queued submissions and
	// cancels between slots; onSlot drains it into the "ingest" stage.
	ingestNanos atomic.Int64
	// stageIdx maps stage name -> index into m.SlotStages (guarded by mu).
	stageIdx map[string]int

	mu sync.Mutex
	m  EngineMetrics
}

// NewEngine wraps an aggregator into a streaming engine. Call Start to
// begin serving, then submit queries from any number of goroutines.
func NewEngine(agg *Aggregator, opts ...EngineOption) *Engine {
	return newEngine(agg, opts)
}

// NewShardedEngine wraps a geo-sharded aggregator into a streaming
// engine: the same serving surface as NewEngine, with every slot executed
// as concurrent per-shard passes plus cross-shard reconciliation, and
// EngineMetrics carrying the per-shard breakdown.
func NewShardedEngine(agg *ShardedAggregator, opts ...EngineOption) *Engine {
	return newEngine(agg, opts)
}

func newEngine(agg queryRuntime, opts []EngineOption) *Engine {
	cfg := engineConfig{queueSize: 1024, eventBuffer: 16, drainSlots: 64}
	for _, o := range opts {
		o(&cfg)
	}
	e := &Engine{
		agg:        agg,
		runner:     agg,
		hub:        newHub(cfg.eventBuffer),
		drainSlots: cfg.drainSlots,
		obs:        newEngineObs(),
		log:        cfg.logger,
		stageIdx:   make(map[string]int),
	}
	e.hub.obs = &e.obs.hub
	lc := engine.Config{QueueSize: cfg.queueSize}
	if cfg.blockOnFull {
		lc.Overflow = engine.OverflowBlock
	}
	if cfg.shedOldest {
		lc.Overflow = engine.OverflowShedOldest
	}
	if cfg.interval > 0 {
		lc.Clock = engine.NewRealClock(cfg.interval)
	}
	e.loop = engine.New[*SlotReport](e.runner, lc, e.onSlot, e.drain)
	return e
}

// Start launches the event loop (and the slot clock, if configured).
func (e *Engine) Start() { e.loop.Start() }

// Stop shuts down gracefully: new submissions are refused, queued ones are
// processed, then the engine keeps running slots (up to the drain cap)
// while live queries remain, so in-flight continuous queries finish.
// Whatever is still live after the cap is closed with ErrEngineStopped.
// Stop blocks until the loop goroutine exits.
func (e *Engine) Stop() { e.loop.Stop() }

// SetGreedyStrategy switches the aggregator's candidate-evaluation
// strategy for subsequent slots. Safe from any goroutine: the change is
// applied on the event loop. It returns an enqueue error (queue full or
// engine stopped); results are unaffected either way — strategies are
// bit-identical.
func (e *Engine) SetGreedyStrategy(s Strategy) error {
	return e.loop.Do(func() { e.agg.SetGreedyStrategy(s) })
}

// RunSlots synchronously executes n slots on the event loop and returns
// when they have all run — the virtual/fast-forward clock used by tests,
// backtesting and load generation. It composes with a real clock, but is
// typically used instead of one.
func (e *Engine) RunSlots(n int) error { return e.loop.StepSlots(n) }

// Flush blocks until every submission enqueued before the call has been
// applied to the aggregator. No slot is executed.
func (e *Engine) Flush() error { return e.loop.StepSlots(0) }

// QueueStats reports the ingest queue's current depth and capacity — the
// cheap snapshot admission layers poll on every request, without copying
// the full EngineMetrics.
func (e *Engine) QueueStats() (depth, capacity int) {
	s := e.loop.Stats()
	return s.QueueDepth, s.QueueCap
}

// Metrics returns a snapshot of the engine-wide counters.
func (e *Engine) Metrics() EngineMetrics {
	s := e.loop.Stats()
	e.mu.Lock()
	m := e.m
	m.Shards = append([]ShardStats(nil), e.m.Shards...)
	m.SlotStages = append([]StageStats(nil), e.m.SlotStages...)
	e.mu.Unlock()
	m.Slots = s.Slots
	m.QueueDepth = s.QueueDepth
	m.QueueCap = s.QueueCap
	m.SlotLatencyLast = s.SlotLast
	m.SlotLatencyAvg = s.SlotAvg()
	m.SlotLatencyMax = s.SlotMax
	return m
}

// countRejected accounts for a submission that never became a live query:
// queue overflow, duplicate ID, or a registration error.
func (e *Engine) countRejected() {
	e.mu.Lock()
	e.m.QueriesRejected++
	e.mu.Unlock()
	e.obs.queriesRejected.Inc()
}

// timedIngest wraps a queued command so the time the loop spends
// executing it is attributed to the next slot's "ingest" stage.
func (e *Engine) timedIngest(fn func()) func() {
	return func() {
		start := time.Now()
		fn()
		e.ingestNanos.Add(int64(time.Since(start)))
	}
}

// Submit validates and submits any query spec from any goroutine and
// returns its subscription handle. The spec is validated and materialized
// on the event-loop goroutine, so a continuous spec's start slot is bound
// to the slot clock at execution time — slots ticking between enqueue and
// execution shift the window instead of silently shortening it. A spec
// rejected by validation (or a world precondition such as region
// monitoring's GP model) closes the handle's stream immediately with the
// error (see QueryHandle.Err); transports that want a synchronous verdict
// call Spec.Validate first.
func (e *Engine) Submit(spec Spec) (*QueryHandle, error) {
	if isNilSpec(spec) {
		return nil, errNilSpec
	}
	id := spec.QueryID()
	h := &QueryHandle{id: id, eng: e, sub: e.hub.newSubscription(id)}
	err := e.loop.DoSheddable(e.timedIngest(func() {
		if e.hub.live(id) {
			h.fail(ErrDuplicateQueryID)
			e.countRejected()
			return
		}
		sq, err := e.agg.Submit(spec)
		if err != nil {
			h.fail(err)
			e.countRejected()
			return
		}
		e.hub.register(id, sq.Start, sq.End, h.sub, time.Now())
		e.mu.Lock()
		e.m.QueriesSubmitted++
		e.m.ActiveQueries = e.hub.liveCount()
		e.mu.Unlock()
		e.obs.queriesSubmitted.Inc()
		e.obs.queriesActive.Set(float64(e.hub.liveCount()))
	}), func() {
		// Shed by the overflow policy before the submission ran (see
		// WithShedOldest): close the never-attached stream so the
		// submitter's consumer observes a terminal verdict, and account
		// the eviction. Runs on whichever goroutine's enqueue caused the
		// shed; h.fail only takes hub.mu, safe off the loop goroutine.
		h.fail(ErrShed)
		e.mu.Lock()
		e.m.QueriesShed++
		e.mu.Unlock()
		e.obs.queriesShed.Inc()
	})
	if err != nil {
		e.countRejected()
		return nil, err
	}
	return h, nil
}

// fail closes the handle's never-attached stream with err. Safe from
// any goroutine (it only takes hub.mu); called from the loop goroutine
// for submission failures and from the shedding goroutine for evictions.
func (h *QueryHandle) fail(err error) {
	h.eng.hub.mu.Lock()
	h.sub.closeLocked(err)
	h.eng.hub.mu.Unlock()
}

// Watch attaches an additional subscriber to a live query's event
// stream: the returned subscription opens with the query's Accepted
// event and then delivers every event published after the attach
// (Subscription.JoinCursor reports the cursor boundary, so a transport
// can replay older history from its own store). Watching does not confer
// cancellation rights. Safe from any goroutine; a query that is unknown,
// already finished, or canceled returns ErrUnknownQuery.
func (e *Engine) Watch(id string) (*Subscription, error) {
	return e.hub.watch(id)
}

// onSlot publishes a slot report through the subscription hub and
// updates the engine-wide metrics. dur is the loop's authoritative
// end-to-end slot latency (it covers the aggregator's RunSlot; the hub
// publish below is timed separately). Loop goroutine only.
func (e *Engine) onSlot(rep *SlotReport, dur time.Duration) {
	var events map[string][]EventNotification
	if len(rep.Events) > 0 {
		events = make(map[string][]EventNotification, len(rep.Events))
		for _, ev := range rep.Events {
			events[ev.QueryID] = append(events[ev.QueryID], ev)
		}
	}
	pubStart := time.Now()
	st := e.hub.publishSlot(rep, events, pubStart)
	publishDur := time.Since(pubStart)

	// Assemble the slot's full stage trace: ingest work drained since the
	// previous slot, the aggregator's own trace, then the hub fan-out.
	stages := make([]StageTiming, 0, len(rep.Stages)+2)
	stages = append(stages, StageTiming{Stage: StageIngest, Duration: time.Duration(e.ingestNanos.Swap(0))})
	stages = append(stages, rep.Stages...)
	stages = append(stages, StageTiming{Stage: StagePublish, Duration: publishDur})

	e.mu.Lock()
	e.m.LastSlot = rep.Slot
	e.m.LastWelfare = rep.Welfare
	if rep.Selection.Strategy != "" {
		e.m.Strategy = rep.Selection.Strategy
	}
	e.m.ValuationCalls += rep.Selection.ValuationCalls
	e.m.ValuationCallsSaved += rep.Selection.SavedCalls()
	e.m.LazyReevaluations += rep.Selection.LazyReevaluations
	e.m.SubmodularityViolations += rep.Selection.SubmodularityViolations
	e.m.FallbackRescans += rep.Selection.FallbackRescans
	e.m.GeomCacheHits += rep.Selection.GeomCacheHits
	e.m.GeomCacheLookups += rep.Selection.GeomCacheLookups
	e.m.PosteriorAppends += rep.Selection.PosteriorAppends
	e.m.PosteriorRebuilds += rep.Selection.PosteriorRebuilds
	if len(rep.Shards) > 0 {
		if len(e.m.Shards) != len(rep.Shards) {
			e.m.Shards = make([]ShardStats, len(rep.Shards))
			for i, s := range rep.Shards {
				e.m.Shards[i].Shard = s.Shard
				e.m.Shards[i].Spanning = s.Spanning
			}
		}
		for i, s := range rep.Shards {
			e.m.Shards[i].accumulate(s)
		}
	}
	e.m.TotalWelfare += rep.Welfare
	e.m.TotalCost += rep.TotalCost
	e.m.TotalPayments += st.payments
	e.m.SensorsUsed += int64(rep.SensorsUsed)
	e.m.Answered += st.answered
	e.m.Starved += st.starved
	e.m.EventsDelivered += st.delivered
	e.m.EventsDropped += st.dropped
	e.m.GapEvents = e.hub.gapCount()
	e.m.ActiveQueries = st.active
	e.accumulateStages(stages)
	totalWelfare := e.m.TotalWelfare
	e.mu.Unlock()

	e.observeSlot(dur, rep, st, stages)
	e.obs.welfare.Set(totalWelfare)

	if e.log != nil && e.log.Enabled(context.Background(), slog.LevelDebug) {
		attrs := []any{
			"slot", rep.Slot,
			"welfare", rep.Welfare,
			"sensors", rep.SensorsUsed,
			"active", st.active,
			"duration", dur,
		}
		for _, sp := range stages {
			attrs = append(attrs, "stage_"+sp.Stage, sp.Duration)
		}
		e.log.Debug("slot executed", attrs...)
	}
}

// drain is the Stop-time finalizer: it keeps executing slots while live
// queries remain (bounded by the drain cap), then force-closes whatever
// is left. Loop goroutine only.
func (e *Engine) drain(step func()) {
	for i := 0; i < e.drainSlots && e.hub.liveCount() > 0; i++ {
		step()
	}
	e.hub.closeAll(ErrEngineStopped, time.Now())
	e.mu.Lock()
	e.m.ActiveQueries = 0
	e.mu.Unlock()
}
