package ps

import (
	"errors"
	"sync"
	"time"

	"repro/internal/engine"
)

// Errors surfaced by the streaming Engine.
var (
	// ErrQueueFull reports that a submission was rejected because the
	// engine's bounded ingest queue was at capacity (backpressure).
	ErrQueueFull = engine.ErrQueueFull
	// ErrEngineStopped reports a submission to (or a subscription cut off
	// by) a stopped engine.
	ErrEngineStopped = engine.ErrStopped
	// ErrCanceled marks a subscription ended by QueryHandle.Cancel.
	ErrCanceled = errors.New("ps: query canceled")
	// ErrDuplicateQueryID rejects a submission whose ID is already live.
	ErrDuplicateQueryID = errors.New("ps: duplicate query id")
)

// SlotResult is what a query's subscription receives after each executed
// slot the query was live for.
type SlotResult struct {
	// Slot is the executed slot number.
	Slot int
	// Answered reports whether the query was served this slot: it
	// obtained positive value, or — for continuous queries — a satisfied
	// sample whose valuation delta may round to zero.
	Answered bool
	// Value is the valuation obtained this slot, Payment what it paid.
	Value   float64
	Payment float64
	// Events carries this query's event-detection evaluations, if any.
	Events []EventNotification
	// Final marks the last result this subscription will deliver; the
	// result channel is closed right after it.
	Final bool
}

// QueryHandle is a live query's subscription: a receive-only stream of
// per-slot results plus cancellation. One-shot queries deliver exactly one
// result; continuous queries deliver one per active slot until they expire,
// are canceled, or the engine stops.
type QueryHandle struct {
	id  string
	eng *Engine
	// results is closed by the loop goroutine when the subscription ends.
	results chan SlotResult

	// Loop-goroutine-owned; err is published by the close of results.
	end int
	err error
}

// ID returns the query's identifier.
func (h *QueryHandle) ID() string { return h.id }

// Results returns the subscription stream. The channel is buffered; if a
// subscriber falls behind, the *oldest* buffered result is dropped
// (counted in the engine metrics) rather than stalling the slot clock —
// the newest result, including the Final one, is always delivered. The
// channel closes after the Final result, after Cancel, or on engine
// shutdown.
func (h *QueryHandle) Results() <-chan SlotResult { return h.results }

// Err explains why the subscription ended: nil after normal expiry,
// ErrCanceled, ErrEngineStopped, or a submission error such as
// ErrDuplicateQueryID. Only valid once Results is closed.
func (h *QueryHandle) Err() error { return h.err }

// Cancel withdraws the query before its next slot and closes the
// subscription with ErrCanceled. Canceling an already-finished query is a
// no-op. The returned error reports only enqueue failure of the
// cancellation itself (queue full or engine stopped).
func (h *QueryHandle) Cancel() error {
	return h.eng.loop.Do(func() {
		e := h.eng
		if e.subs[h.id] != h {
			return // already expired, replaced, or canceled
		}
		delete(e.subs, h.id)
		e.agg.CancelQuery(h.id)
		h.fail(ErrCanceled)
		e.mu.Lock()
		e.m.QueriesCanceled++
		e.m.ActiveQueries = len(e.subs)
		e.mu.Unlock()
	})
}

// fail ends the subscription with err. Loop goroutine only.
func (h *QueryHandle) fail(err error) {
	h.err = err
	close(h.results)
}

// EngineMetrics is a point-in-time snapshot of the engine's counters.
type EngineMetrics struct {
	// Slots executed and the last executed slot number.
	Slots    int
	LastSlot int
	// Welfare, payments, cost and sensor usage accumulated over all slots.
	TotalWelfare  float64
	LastWelfare   float64
	TotalPayments float64
	TotalCost     float64
	SensorsUsed   int64
	// Query lifecycle counters: Submitted counts queries that became
	// live; Rejected counts submissions that never did (queue overflow,
	// duplicate ID, registration error).
	QueriesSubmitted int64
	QueriesRejected  int64
	QueriesCanceled  int64
	ActiveQueries    int
	// Per-(query, slot) delivery counters: Answered counts results with
	// positive value, Starved results delivered with none.
	Answered int64
	Starved  int64
	// ResultsDropped counts results discarded because a subscriber's
	// buffer was full.
	ResultsDelivered int64
	ResultsDropped   int64
	// Selection instrumentation accumulated over all slots: valuation
	// calls the greedy core made, what an exhaustive scan would have
	// made (their difference is the lazy strategy's pruning), lazy-heap
	// re-evaluations and non-submodular fallback rescans. Strategy is
	// the label of the most recent slot's effective strategy.
	Strategy                string
	ValuationCalls          int64
	ValuationCallsSaved     int64
	LazyReevaluations       int64
	SubmodularityViolations int64
	FallbackRescans         int64
	// Shards is the cumulative per-shard breakdown when the engine drives
	// a ShardedAggregator (the last entry is the spanning pass); nil on an
	// unsharded engine.
	Shards []ShardStats
	// Ingest queue occupancy and slot execution latency.
	QueueDepth      int
	QueueCap        int
	SlotLatencyLast time.Duration
	SlotLatencyAvg  time.Duration
	SlotLatencyMax  time.Duration
}

type engineConfig struct {
	interval     time.Duration
	queueSize    int
	blockOnFull  bool
	resultBuffer int
	drainSlots   int
}

// EngineOption customizes an Engine.
type EngineOption func(*engineConfig)

// WithSlotInterval attaches a real-time slot clock ticking every d. The
// default is no clock: slots run only through RunSlots (virtual time,
// used by tests, backtesting and benchmarks).
func WithSlotInterval(d time.Duration) EngineOption {
	return func(c *engineConfig) { c.interval = d }
}

// WithQueueSize bounds the ingest queue (default 1024 submissions).
func WithQueueSize(n int) EngineOption {
	return func(c *engineConfig) { c.queueSize = n }
}

// WithBlockingSubmit makes submissions wait for queue space instead of
// failing fast with ErrQueueFull.
func WithBlockingSubmit() EngineOption {
	return func(c *engineConfig) { c.blockOnFull = true }
}

// WithResultBuffer sets each subscription's channel buffer (default 16).
func WithResultBuffer(n int) EngineOption {
	return func(c *engineConfig) {
		if n > 0 {
			c.resultBuffer = n
		}
	}
}

// WithDrainSlots caps how many extra slots Stop runs to drain in-flight
// queries before force-closing their subscriptions (default 64).
func WithDrainSlots(n int) EngineOption {
	return func(c *engineConfig) { c.drainSlots = n }
}

// queryRuntime is the execution backend surface the Engine drives: slot
// execution plus the query lifecycle. Aggregator (single-world) and
// ShardedAggregator (geo-sharded, shard.go) both satisfy it.
type queryRuntime interface {
	slotRunner
	Submit(Spec) (SubmittedQuery, error)
	materializeSpec(Spec) (SubmittedQuery, error)
	CancelQuery(id string) bool
	SetGreedyStrategy(Strategy)
}

// materializeSpec registers a spec without validation — the deprecated
// lenient submission path kept for the legacy Submit* wrappers.
func (a *Aggregator) materializeSpec(spec Spec) (SubmittedQuery, error) {
	return spec.materialize(a)
}

// Engine is the concurrent, slot-clocked serving layer over an
// Aggregator (or a geo-sharded ShardedAggregator). Submissions from any
// goroutine become non-blocking enqueues onto a bounded queue; a single
// event-loop goroutine owns the aggregator, executes slots as the clock
// ticks, and fans each SlotReport out to the per-query subscriptions. The
// aggregator (and its World) must not be used directly once handed to an
// Engine.
type Engine struct {
	agg    queryRuntime
	runner slotRunner
	loop   *engine.Loop[*SlotReport]

	resultBuffer int
	drainSlots   int

	// subs maps live query IDs to their handles. Loop goroutine only.
	subs map[string]*QueryHandle

	mu sync.Mutex
	m  EngineMetrics
}

// NewEngine wraps an aggregator into a streaming engine. Call Start to
// begin serving, then submit queries from any number of goroutines.
func NewEngine(agg *Aggregator, opts ...EngineOption) *Engine {
	return newEngine(agg, opts)
}

// NewShardedEngine wraps a geo-sharded aggregator into a streaming
// engine: the same serving surface as NewEngine, with every slot executed
// as concurrent per-shard passes plus cross-shard reconciliation, and
// EngineMetrics carrying the per-shard breakdown.
func NewShardedEngine(agg *ShardedAggregator, opts ...EngineOption) *Engine {
	return newEngine(agg, opts)
}

func newEngine(agg queryRuntime, opts []EngineOption) *Engine {
	cfg := engineConfig{queueSize: 1024, resultBuffer: 16, drainSlots: 64}
	for _, o := range opts {
		o(&cfg)
	}
	e := &Engine{
		agg:          agg,
		runner:       agg,
		resultBuffer: cfg.resultBuffer,
		drainSlots:   cfg.drainSlots,
		subs:         make(map[string]*QueryHandle),
	}
	lc := engine.Config{QueueSize: cfg.queueSize}
	if cfg.blockOnFull {
		lc.Overflow = engine.OverflowBlock
	}
	if cfg.interval > 0 {
		lc.Clock = engine.NewRealClock(cfg.interval)
	}
	e.loop = engine.New[*SlotReport](e.runner, lc, e.onSlot, e.drain)
	return e
}

// Start launches the event loop (and the slot clock, if configured).
func (e *Engine) Start() { e.loop.Start() }

// Stop shuts down gracefully: new submissions are refused, queued ones are
// processed, then the engine keeps running slots (up to the drain cap)
// while live queries remain, so in-flight continuous queries finish.
// Whatever is still live after the cap is closed with ErrEngineStopped.
// Stop blocks until the loop goroutine exits.
func (e *Engine) Stop() { e.loop.Stop() }

// SetGreedyStrategy switches the aggregator's candidate-evaluation
// strategy for subsequent slots. Safe from any goroutine: the change is
// applied on the event loop. It returns an enqueue error (queue full or
// engine stopped); results are unaffected either way — strategies are
// bit-identical.
func (e *Engine) SetGreedyStrategy(s Strategy) error {
	return e.loop.Do(func() { e.agg.SetGreedyStrategy(s) })
}

// RunSlots synchronously executes n slots on the event loop and returns
// when they have all run — the virtual/fast-forward clock used by tests,
// backtesting and load generation. It composes with a real clock, but is
// typically used instead of one.
func (e *Engine) RunSlots(n int) error { return e.loop.StepSlots(n) }

// Flush blocks until every submission enqueued before the call has been
// applied to the aggregator. No slot is executed.
func (e *Engine) Flush() error { return e.loop.StepSlots(0) }

// Metrics returns a snapshot of the engine-wide counters.
func (e *Engine) Metrics() EngineMetrics {
	s := e.loop.Stats()
	e.mu.Lock()
	m := e.m
	m.Shards = append([]ShardStats(nil), e.m.Shards...)
	e.mu.Unlock()
	m.Slots = s.Slots
	m.QueueDepth = s.QueueDepth
	m.QueueCap = s.QueueCap
	m.SlotLatencyLast = s.SlotLast
	m.SlotLatencyAvg = s.SlotAvg()
	m.SlotLatencyMax = s.SlotMax
	return m
}

// submit is the shared ingest path: it allocates the handle, enqueues the
// registration closure and accounts for acceptance/rejection. register
// runs on the loop goroutine and returns the last slot the query can
// produce a result for.
func (e *Engine) submit(id string, register func() (end int, err error)) (*QueryHandle, error) {
	h := &QueryHandle{id: id, eng: e, results: make(chan SlotResult, e.resultBuffer)}
	err := e.loop.Do(func() {
		if _, dup := e.subs[id]; dup {
			h.fail(ErrDuplicateQueryID)
			e.countRejected()
			return
		}
		end, err := register()
		if err != nil {
			h.fail(err)
			e.countRejected()
			return
		}
		h.end = end
		e.subs[id] = h
		e.mu.Lock()
		e.m.QueriesSubmitted++
		e.m.ActiveQueries = len(e.subs)
		e.mu.Unlock()
	})
	if err != nil {
		e.countRejected()
		return nil, err
	}
	return h, nil
}

// countRejected accounts for a submission that never became a live query:
// queue overflow, duplicate ID, or a registration error.
func (e *Engine) countRejected() {
	e.mu.Lock()
	e.m.QueriesRejected++
	e.mu.Unlock()
}

// Submit submits any query spec from any goroutine and returns its
// subscription handle. The spec is validated and materialized on the
// event-loop goroutine, so a continuous spec's start slot is bound to the
// slot clock at execution time — slots ticking between enqueue and
// execution shift the window instead of silently shortening it. A spec
// rejected by validation (or a world precondition such as region
// monitoring's GP model) closes the subscription immediately with the
// error (see QueryHandle.Err); transports that want a synchronous verdict
// call Spec.Validate first.
func (e *Engine) Submit(spec Spec) (*QueryHandle, error) {
	return e.submitSpec(spec, true)
}

// submitSpec is the shared spec ingest. validate selects between the
// strict Submit path and the legacy wrappers' historical lenient
// semantics (materialize without validation, mirroring the deprecated
// Aggregator.Submit* methods).
func (e *Engine) submitSpec(spec Spec, validate bool) (*QueryHandle, error) {
	if isNilSpec(spec) {
		return nil, errNilSpec
	}
	return e.submit(spec.QueryID(), func() (int, error) {
		var sq SubmittedQuery
		var err error
		if validate {
			sq, err = e.agg.Submit(spec)
		} else {
			sq, err = e.agg.materializeSpec(spec)
		}
		if err != nil {
			return 0, err
		}
		return sq.End, nil
	})
}

// The per-kind Submit* methods below are thin wrappers over the spec
// ingest. Like their Aggregator counterparts they keep the historical
// lenient semantics (no validation) for one release.

// SubmitPoint submits a single-sensor point query; its one result arrives
// after the next slot.
//
// Deprecated: use Submit with a PointSpec.
func (e *Engine) SubmitPoint(id string, loc Point, budget float64) (*QueryHandle, error) {
	return e.submitSpec(PointSpec{ID: id, Loc: loc, Budget: budget}, false)
}

// SubmitMultiPoint submits a multiple-sensor point query asking for k
// redundant readings.
//
// Deprecated: use Submit with a MultiPointSpec.
func (e *Engine) SubmitMultiPoint(id string, loc Point, budget float64, k int) (*QueryHandle, error) {
	return e.submitSpec(MultiPointSpec{ID: id, Loc: loc, Budget: budget, K: k}, false)
}

// SubmitAggregate submits a spatial aggregate query over a region.
//
// Deprecated: use Submit with an AggregateSpec.
func (e *Engine) SubmitAggregate(id string, region Rect, budget float64) (*QueryHandle, error) {
	return e.submitSpec(AggregateSpec{ID: id, Region: region, Budget: budget}, false)
}

// SubmitTrajectory submits a query over a trajectory.
//
// Deprecated: use Submit with a TrajectorySpec.
func (e *Engine) SubmitTrajectory(id string, tr Trajectory, budget float64) (*QueryHandle, error) {
	return e.submitSpec(TrajectorySpec{ID: id, Path: tr, Budget: budget}, false)
}

// SubmitLocationMonitoring submits a continuous location-monitoring query
// delivering one result per active slot for `duration` slots.
//
// Deprecated: use Submit with a LocationMonitoringSpec.
func (e *Engine) SubmitLocationMonitoring(id string, loc Point, duration int, budget float64, samples int) (*QueryHandle, error) {
	return e.submitSpec(LocationMonitoringSpec{ID: id, Loc: loc, Duration: duration, Budget: budget, Samples: samples}, false)
}

// SubmitRegionMonitoring submits a continuous region-monitoring query; it
// requires a world with a GP phenomenon model. A model-less world closes
// the subscription immediately with the validation error (see Err).
//
// Deprecated: use Submit with a RegionMonitoringSpec.
func (e *Engine) SubmitRegionMonitoring(id string, region Rect, duration int, budget float64) (*QueryHandle, error) {
	return e.submitSpec(RegionMonitoringSpec{ID: id, Region: region, Duration: duration, Budget: budget}, false)
}

// SubmitEventDetection submits a continuous event-detection query; each
// result's Events field carries the slot's detection verdict.
//
// Deprecated: use Submit with an EventDetectionSpec.
func (e *Engine) SubmitEventDetection(id string, loc Point, duration int, threshold, confidence, budgetPerSlot float64) (*QueryHandle, error) {
	return e.submitSpec(EventDetectionSpec{
		ID: id, Loc: loc, Duration: duration,
		Threshold: threshold, Confidence: confidence, BudgetPerSlot: budgetPerSlot,
	}, false)
}

// SubmitRegionEvent submits a continuous region event-detection query.
//
// Deprecated: use Submit with a RegionEventSpec.
func (e *Engine) SubmitRegionEvent(id string, region Rect, duration int, threshold, confidence, budgetPerSlot float64) (*QueryHandle, error) {
	return e.submitSpec(RegionEventSpec{
		ID: id, Region: region, Duration: duration,
		Threshold: threshold, Confidence: confidence, BudgetPerSlot: budgetPerSlot,
	}, false)
}

// onSlot fans a slot report out to the live subscriptions and updates the
// engine-wide metrics. Loop goroutine only.
func (e *Engine) onSlot(rep *SlotReport, _ time.Duration) {
	var delivered, dropped, answered, starved int64
	var payments float64
	var events map[string][]EventNotification
	if len(rep.Events) > 0 {
		events = make(map[string][]EventNotification, len(rep.Events))
		for _, ev := range rep.Events {
			events[ev.QueryID] = append(events[ev.QueryID], ev)
		}
	}
	for id, h := range e.subs {
		res := SlotResult{
			Slot:     rep.Slot,
			Answered: rep.Answered(id),
			Value:    rep.Value(id),
			Payment:  rep.Payment(id),
			Events:   events[id],
			Final:    rep.Slot >= h.end,
		}
		if res.Answered {
			answered++
		} else {
			starved++
		}
		payments += res.Payment
		select {
		case h.results <- res:
			delivered++
		default:
			// Slow subscriber: evict the oldest buffered result so the
			// newest (and in particular the Final one) always lands. The
			// loop goroutine is the only sender, so after the eviction
			// the buffer has space and this send cannot block.
			select {
			case <-h.results:
				dropped++
			default: // a racing reader freed space for us instead
			}
			h.results <- res
			delivered++
		}
		if res.Final {
			delete(e.subs, id)
			close(h.results)
		}
	}

	e.mu.Lock()
	e.m.LastSlot = rep.Slot
	e.m.LastWelfare = rep.Welfare
	if rep.Selection.Strategy != "" {
		e.m.Strategy = rep.Selection.Strategy
	}
	e.m.ValuationCalls += rep.Selection.ValuationCalls
	e.m.ValuationCallsSaved += rep.Selection.SavedCalls()
	e.m.LazyReevaluations += rep.Selection.LazyReevaluations
	e.m.SubmodularityViolations += rep.Selection.SubmodularityViolations
	e.m.FallbackRescans += rep.Selection.FallbackRescans
	if len(rep.Shards) > 0 {
		if len(e.m.Shards) != len(rep.Shards) {
			e.m.Shards = make([]ShardStats, len(rep.Shards))
			for i, s := range rep.Shards {
				e.m.Shards[i].Shard = s.Shard
				e.m.Shards[i].Spanning = s.Spanning
			}
		}
		for i, s := range rep.Shards {
			e.m.Shards[i].accumulate(s)
		}
	}
	e.m.TotalWelfare += rep.Welfare
	e.m.TotalCost += rep.TotalCost
	e.m.TotalPayments += payments
	e.m.SensorsUsed += int64(rep.SensorsUsed)
	e.m.Answered += answered
	e.m.Starved += starved
	e.m.ResultsDelivered += delivered
	e.m.ResultsDropped += dropped
	e.m.ActiveQueries = len(e.subs)
	e.mu.Unlock()
}

// drain is the Stop-time finalizer: it keeps executing slots while live
// queries remain (bounded by the drain cap), then force-closes whatever
// is left. Loop goroutine only.
func (e *Engine) drain(step func()) {
	for i := 0; i < e.drainSlots && len(e.subs) > 0; i++ {
		step()
	}
	for id, h := range e.subs {
		delete(e.subs, id)
		h.fail(ErrEngineStopped)
	}
	e.mu.Lock()
	e.m.ActiveQueries = 0
	e.mu.Unlock()
}
