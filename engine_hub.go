package ps

import (
	"errors"
	"fmt"
	"maps"
	"slices"
	"sync"
	"time"
)

// ErrUnknownQuery reports a Watch on a query the engine is not currently
// serving: never submitted, already finished, or canceled.
var ErrUnknownQuery = errors.New("ps: unknown query")

// EventType labels one frame of a query's event stream. Every
// materialized query publishes the typed sequence
//
//	Accepted → SlotUpdate* → Final | Canceled
//
// with Gap frames interleaved per subscriber when its buffer overflowed
// (see Subscription).
type EventType int

const (
	// EventAccepted opens every stream: the spec was validated and
	// materialized; Start/End carry the query's slot window.
	EventAccepted EventType = iota
	// EventSlotUpdate carries one executed slot's SlotResult.
	EventSlotUpdate
	// EventGap reports Dropped events evicted from this subscriber's
	// buffer because it fell behind (slots From..Slot); the stream
	// continues with the newest events.
	EventGap
	// EventFinal terminates a stream whose query expired normally; the
	// final SlotUpdate precedes it.
	EventFinal
	// EventCanceled terminates a stream cut short: Err distinguishes
	// issuer cancellation (ErrCanceled) from engine shutdown
	// (ErrEngineStopped).
	EventCanceled
)

// String returns the event type's wire name (package wire's v2 frames use
// the same names).
func (t EventType) String() string {
	switch t {
	case EventAccepted:
		return "accepted"
	case EventSlotUpdate:
		return "slot_update"
	case EventGap:
		return "gap"
	case EventFinal:
		return "final"
	case EventCanceled:
		return "canceled"
	default:
		return fmt.Sprintf("EventType(%d)", int(t))
	}
}

// QueryEvent is one frame of a query's event stream.
type QueryEvent struct {
	// Type selects which of the remaining fields are meaningful.
	Type EventType
	// QueryID names the stream's query.
	QueryID string
	// Slot is the monotone slot cursor: the last executed slot this event
	// is current as of. Accepted carries Start-1 (nothing executed yet),
	// SlotUpdate its slot, Final the end slot, Canceled the last slot
	// executed while the query was live, and Gap the cursor of the event
	// it was emitted in front of. Within one stream, delivery order never
	// decreases the cursor, so a consumer can resume from its last cursor
	// after a reconnect.
	Slot int
	// Start and End delimit the query's slot window (Accepted only).
	Start, End int
	// Result is the executed slot's outcome (SlotUpdate only).
	Result SlotResult
	// Dropped counts the events evicted from this subscriber's buffer,
	// covering slots From..To (Gap only).
	Dropped  int
	From, To int
	// Err is the termination cause (Canceled only): ErrCanceled or
	// ErrEngineStopped.
	Err error
	// At is the publish timestamp, set on the event-loop goroutine —
	// subscribers can measure delivery latency against it.
	At time.Time
}

// Subscription is one subscriber's view of a query's event stream. The
// submitting QueryHandle owns one; any number of additional watchers can
// attach with Engine.Watch. Each subscription has its own bounded buffer
// with an explicit slow-consumer policy: when the buffer is full the
// *oldest* buffered event is evicted and accounted in a Gap frame
// delivered before the next event — the newest events (and in particular
// the terminal one) always land, and a stalled subscriber never blocks
// the slot loop.
type Subscription struct {
	id  string
	hub *hub
	ch  chan QueryEvent

	// Everything below is guarded by hub.mu.
	closed bool
	// err is published by the close of ch; see Err.
	err error
	// joinCursor is the topic's cursor when this subscription attached.
	joinCursor int
	// Pending-gap accumulator: events evicted since the last Gap frame.
	dropped          int
	dropFrom, dropTo int
}

// Events returns the subscription's event stream. The channel closes
// after the terminal event (Final or Canceled), after Close, or — for a
// submission that never went live — immediately, with the cause in Err.
func (s *Subscription) Events() <-chan QueryEvent { return s.ch }

// ID returns the subscribed query's identifier.
func (s *Subscription) ID() string { return s.id }

// Err explains why the stream ended: nil after a normal Final (or a
// consumer-side Close), ErrCanceled, ErrEngineStopped, or the submission
// error of a spec that never went live (validation failure,
// ErrDuplicateQueryID). Only valid once Events is closed.
func (s *Subscription) Err() error {
	s.hub.mu.Lock()
	defer s.hub.mu.Unlock()
	return s.err
}

// JoinCursor reports the stream's slot cursor at the moment this
// subscription attached: every event published before it has Slot <=
// JoinCursor, and the subscription delivers exactly the events published
// after it. A transport replaying history to a late watcher serves
// cursors up to JoinCursor from its own store and the rest live.
func (s *Subscription) JoinCursor() int {
	s.hub.mu.Lock()
	defer s.hub.mu.Unlock()
	return s.joinCursor
}

// Close detaches the subscription: the channel is closed (after whatever
// is already buffered is discarded by garbage collection, not delivered)
// and the hub stops publishing to it. Closing does not cancel the query;
// the submitting handle's Cancel does. Safe to call more than once, and
// concurrently with event delivery.
func (s *Subscription) Close() {
	s.hub.mu.Lock()
	defer s.hub.mu.Unlock()
	if s.closed {
		return
	}
	s.closeLocked(nil)
	if t := s.hub.topics[s.id]; t != nil {
		t.detach(s)
	}
}

// closeLocked ends the stream with err. Caller holds hub.mu.
func (s *Subscription) closeLocked(err error) {
	if s.closed {
		return
	}
	s.closed = true
	s.err = err
	close(s.ch)
}

// push delivers ev, evicting the oldest buffered events instead of
// blocking when the buffer is full; evictions accumulate into a Gap
// frame emitted before ev. Caller holds hub.mu (which serializes all
// senders, so a post-eviction send can never block: receivers only free
// space). Returns delivered and dropped event counts for the metrics.
func (s *Subscription) push(ev QueryEvent) (delivered, dropped int) {
	if s.closed {
		return 0, 0
	}
	need := 1
	if s.dropped > 0 {
		need = 2 // a pending Gap frame rides in front of ev
	}
	for cap(s.ch)-len(s.ch) < need {
		select {
		case old := <-s.ch:
			if old.Type == EventGap {
				// Re-absorb an unread Gap frame instead of counting it as
				// a lost event.
				if s.dropped == 0 || old.From < s.dropFrom {
					s.dropFrom = old.From
				}
				s.dropped += old.Dropped
				if old.To > s.dropTo {
					s.dropTo = old.To
				}
			} else {
				if s.dropped == 0 {
					s.dropFrom = old.Slot
				}
				s.dropped++
				if old.Slot > s.dropTo {
					s.dropTo = old.Slot
				}
				dropped++
			}
			need = 2
		default:
			// A racing reader freed space for us instead.
		}
		if cap(s.ch)-len(s.ch) >= need {
			break
		}
	}
	if s.dropped > 0 {
		// The Gap frame rides immediately in front of ev and reports ev's
		// cursor: buffered events are cursor-ordered, and the dropped
		// range is carried separately in From..To (an eviction can cover
		// slots older than events already buffered behind it).
		s.ch <- QueryEvent{
			Type: EventGap, QueryID: s.id,
			Slot: ev.Slot, From: s.dropFrom, To: s.dropTo, Dropped: s.dropped,
			At: ev.At,
		}
		s.hub.gapEvents++
		if o := s.hub.obs; o != nil {
			o.gapFrames.Inc()
			o.evictionRun.Observe(float64(s.dropped))
		}
		delivered++
		s.dropped, s.dropFrom, s.dropTo = 0, 0, 0
	}
	s.ch <- ev
	delivered++
	return delivered, dropped
}

// topic is one live query's publication point inside the hub.
type topic struct {
	id         string
	start, end int
	// cursor is the Slot of the last published event.
	cursor int
	// owner is the submitting handle's subscription; Cancel only acts
	// when the canceling handle still owns the live topic (a reused ID
	// must not let a stale handle cancel its successor).
	owner *Subscription
	subs  []*Subscription
	// acceptedAt anchors the query's lifecycle spans (time to first
	// update, lifetime); sawUpdate marks the first SlotUpdate published.
	acceptedAt time.Time
	sawUpdate  bool
}

// publish fans ev out to every attached subscription and advances the
// cursor. Caller holds hub.mu.
func (t *topic) publish(ev QueryEvent) (delivered, dropped int) {
	t.cursor = ev.Slot
	for _, s := range t.subs {
		d, dr := s.push(ev)
		delivered += d
		dropped += dr
	}
	return delivered, dropped
}

// close ends every attached stream with err. Caller holds hub.mu.
func (t *topic) close(err error) {
	for _, s := range t.subs {
		s.closeLocked(err)
	}
	t.subs = nil
}

// detach removes one subscription. Caller holds hub.mu.
func (t *topic) detach(sub *Subscription) {
	for i, s := range t.subs {
		if s == sub {
			t.subs = append(t.subs[:i], t.subs[i+1:]...)
			return
		}
	}
}

// hub is the engine's central subscription hub: it owns every live
// query's topic and fans the event-loop goroutine's publications out to
// all subscribers. Publications and (un)subscriptions synchronize on one
// mutex; every per-subscriber send is non-blocking by construction
// (drop-oldest), so the slot loop's time under the lock is bounded by
// buffer operations, never by subscriber behavior.
type hub struct {
	buffer int
	// gapEvents counts Gap frames emitted hub-wide (metrics).
	gapEvents int64
	// obs, when set, receives eviction and query-lifecycle observations
	// (a couple of atomic ops each, recorded under mu).
	obs *hubObs

	// mu guards topics and all subscription/topic state. It is
	// deliberately separate from the engine's metrics mutex.
	mu     sync.Mutex
	topics map[string]*topic
}

func newHub(buffer int) *hub {
	if buffer < 2 {
		// A Gap frame must fit in front of the event that displaced it.
		buffer = 2
	}
	return &hub{buffer: buffer, topics: make(map[string]*topic)}
}

// newSubscription builds an unattached subscription (used by submit: the
// handle's stream must exist before registration so a rejection can close
// it with the cause).
func (h *hub) newSubscription(id string) *Subscription {
	return &Subscription{id: id, hub: h, ch: make(chan QueryEvent, h.buffer)}
}

// live reports whether id has a live topic.
func (h *hub) live(id string) bool {
	h.mu.Lock()
	defer h.mu.Unlock()
	_, ok := h.topics[id]
	return ok
}

// register creates id's topic with the owner subscription attached and
// publishes the opening Accepted event. Loop goroutine only.
func (h *hub) register(id string, start, end int, owner *Subscription, at time.Time) {
	h.mu.Lock()
	defer h.mu.Unlock()
	t := &topic{id: id, start: start, end: end, cursor: start - 1, owner: owner, subs: []*Subscription{owner}, acceptedAt: at}
	owner.joinCursor = start - 1
	h.topics[id] = t
	t.publish(QueryEvent{
		Type: EventAccepted, QueryID: id,
		Slot: start - 1, Start: start, End: end, At: at,
	})
}

// watch attaches a new subscription to a live topic. The subscription
// delivers exactly the events published after it attached (JoinCursor
// tells the caller where that is); the opening Accepted event is
// replayed into it so every stream starts with the same frame.
func (h *hub) watch(id string) (*Subscription, error) {
	h.mu.Lock()
	defer h.mu.Unlock()
	t, ok := h.topics[id]
	if !ok {
		return nil, fmt.Errorf("%w %q", ErrUnknownQuery, id)
	}
	s := h.newSubscription(id)
	s.joinCursor = t.cursor
	s.push(QueryEvent{
		Type: EventAccepted, QueryID: id,
		Slot: t.start - 1, Start: t.start, End: t.end, At: time.Now(),
	})
	t.subs = append(t.subs, s)
	return s, nil
}

// cancel tears id down if owner still owns the live topic, publishing
// the Canceled terminal and closing every attached stream. Loop
// goroutine only. Reports whether a live topic was canceled.
func (h *hub) cancel(id string, owner *Subscription, cause error, at time.Time) bool {
	h.mu.Lock()
	defer h.mu.Unlock()
	t, ok := h.topics[id]
	if !ok || t.owner != owner {
		return false
	}
	delete(h.topics, id)
	t.publish(QueryEvent{Type: EventCanceled, QueryID: id, Slot: t.cursor, Err: cause, At: at})
	t.close(cause)
	h.observeLifetime(t, at)
	return true
}

// observeLifetime records a finished topic's lifecycle span. Caller
// holds h.mu.
func (h *hub) observeLifetime(t *topic, at time.Time) {
	if h.obs != nil && !t.acceptedAt.IsZero() {
		h.obs.lifetime.Observe(at.Sub(t.acceptedAt).Seconds())
	}
}

// gapCount returns the number of Gap frames emitted so far.
func (h *hub) gapCount() int64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.gapEvents
}

// liveCount returns the number of live topics.
func (h *hub) liveCount() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return len(h.topics)
}

// closeAll force-terminates every live topic with cause (engine
// shutdown past the drain cap). Loop goroutine only.
func (h *hub) closeAll(cause error, at time.Time) {
	h.mu.Lock()
	defer h.mu.Unlock()
	for id, t := range h.topics {
		delete(h.topics, id)
		t.publish(QueryEvent{Type: EventCanceled, QueryID: id, Slot: t.cursor, Err: cause, At: at})
		t.close(cause)
		h.observeLifetime(t, at)
	}
}

// publishSlot fans one executed slot's report out to every live topic:
// a SlotUpdate per query, then Final + stream close for the queries
// whose window ended this slot. Loop goroutine only.
func (h *hub) publishSlot(rep *SlotReport, events map[string][]EventNotification, at time.Time) (st slotDelivery) {
	h.mu.Lock()
	defer h.mu.Unlock()
	// Sorted query order: st.payments is a float sum that feeds
	// EngineMetrics.TotalPayments, so fan-out iterates a reproducible
	// order (floatorder) — which also makes per-slot delivery order
	// deterministic for free.
	for _, id := range slices.Sorted(maps.Keys(h.topics)) {
		t := h.topics[id]
		res := SlotResult{
			Slot:     rep.Slot,
			Answered: rep.Answered(id),
			Value:    rep.Value(id),
			Payment:  rep.Payment(id),
			Events:   events[id],
			Final:    rep.Slot >= t.end,
		}
		if res.Answered {
			st.answered++
		} else {
			st.starved++
		}
		st.payments += res.Payment
		d, dr := t.publish(QueryEvent{
			Type: EventSlotUpdate, QueryID: id, Slot: rep.Slot, Result: res, At: at,
		})
		st.delivered += int64(d)
		st.dropped += int64(dr)
		if !t.sawUpdate {
			t.sawUpdate = true
			if h.obs != nil && !t.acceptedAt.IsZero() {
				h.obs.firstUpdate.Observe(at.Sub(t.acceptedAt).Seconds())
			}
		}
		if res.Final {
			d, dr = t.publish(QueryEvent{Type: EventFinal, QueryID: id, Slot: t.end, At: at})
			st.delivered += int64(d)
			st.dropped += int64(dr)
			t.close(nil)
			delete(h.topics, id)
			h.observeLifetime(t, at)
		}
	}
	st.active = len(h.topics)
	// Subscriber backlog after the fan-out: how many subscriptions are
	// attached, the largest per-subscriber buffered backlog, and total
	// occupancy — the hub-health gauges.
	for _, t := range h.topics {
		for _, s := range t.subs {
			st.subscribers++
			n := len(s.ch)
			st.buffered += n
			st.bufCap += cap(s.ch)
			if n > st.maxLag {
				st.maxLag = n
			}
		}
	}
	return st
}

// slotDelivery aggregates one slot's fan-out accounting.
type slotDelivery struct {
	delivered, dropped int64
	answered, starved  int64
	payments           float64
	active             int
	// Subscriber backlog at the end of the fan-out.
	subscribers, maxLag, buffered, bufCap int
}
