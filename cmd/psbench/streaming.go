package main

// The streaming-fanout scenario: the push-delivery benchmark. Unlike the
// slot-pipeline scenarios (scenarios.go) it exercises the entire serving
// stack — engine hub, serve /watch streams, psclient Stream — end to
// end over real HTTP: thousands of one-shot queries are batch-submitted
// against a real-clock engine while a fixed pool of concurrent watchers
// each follows one query's event stream at a time. No status poll is
// ever issued (a counting middleware proves it), and the run is gated on
// the p95 event-delivery latency — publish timestamp to watcher receive
// — staying within one slot interval.

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	ps "repro"
	"repro/internal/rng"
	"repro/psclient"
	"repro/serve"
	"repro/wire"
)

// streamScenario is one named push-delivery workload.
type streamScenario struct {
	Name     string
	Desc     string
	Seed     int64
	Sensors  int
	Interval time.Duration // slot interval; also the delivery-latency gate
	Queries  int           // total one-shot point queries
	PerSlot  int           // submission pacing target per interval
	Batch    int           // specs per SubmitBatch request
	Watchers int           // concurrent watcher goroutines
}

var streamScenarios = []streamScenario{
	{
		Name: "streaming-fanout",
		Desc: "10k point queries batch-submitted against a 100ms slot clock, pushed to 1k concurrent watchers over HTTP event streams; zero polls; p95 delivery gated at one slot",
		Seed: 17, Sensors: 1000,
		Interval: 100 * time.Millisecond,
		Queries:  10_000, PerSlot: 500, Batch: 100,
		Watchers: 1000,
	},
}

func streamScenarioByName(name string) (streamScenario, bool) {
	for _, sc := range streamScenarios {
		if sc.Name == name {
			return sc, true
		}
	}
	return streamScenario{}, false
}

// streamBenchResult is the machine-readable record of one streaming
// scenario run (BENCH_<scenario>.json). Delivery latencies depend on the
// machine; the zero-poll property and the completion counts do not.
type streamBenchResult struct {
	Scenario       string  `json:"scenario"`
	Description    string  `json:"description"`
	Seed           int64   `json:"seed"`
	Sensors        int     `json:"sensors"`
	Queries        int     `json:"queries"`
	Watchers       int     `json:"watchers"`
	Batch          int     `json:"batch"`
	SlotIntervalMs float64 `json:"slot_interval_ms"`
	// Request accounting from the counting middleware: push-based
	// delivery means PollRequests stays exactly 0.
	PollRequests  int64 `json:"poll_requests"`
	WatchRequests int64 `json:"watch_requests"`
	BatchRequests int64 `json:"batch_requests"`
	// Completion: every query observed to its terminal frame.
	FinalsObserved int64 `json:"finals_observed"`
	// Delivery latency (publish -> watcher receive) over live-pushed
	// frames; the gate is DeliveryMsP95 <= SlotIntervalMs.
	DeliverySamples int64   `json:"delivery_samples"`
	DeliveryMsP50   float64 `json:"delivery_ms_p50"`
	DeliveryMsP95   float64 `json:"delivery_ms_p95"`
	DeliveryMsMax   float64 `json:"delivery_ms_max"`
	// Engine-side event accounting.
	EventsDelivered int64   `json:"events_delivered"`
	EventsDropped   int64   `json:"events_dropped"`
	GapEvents       int64   `json:"gap_events"`
	SlotMsAvg       float64 `json:"slot_ms_avg"`
	Slots           int     `json:"slots"`
	WallS           float64 `json:"wall_s"`
	GoVersion       string  `json:"go_version"`
}

// countingMux counts requests by route class before delegating.
type countingMux struct {
	next    http.Handler
	polls   atomic.Int64
	watches atomic.Int64
	batches atomic.Int64
}

func (m *countingMux) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	switch {
	case r.Method == http.MethodGet && strings.HasPrefix(r.URL.Path, "/query/"):
		m.polls.Add(1)
	case r.URL.Path == "/watch":
		m.watches.Add(1)
	case r.URL.Path == "/queries:batch":
		m.batches.Add(1)
	}
	m.next.ServeHTTP(w, r)
}

// runStreamScenario executes one streaming scenario and returns its
// record plus the process exit code contribution (0 ok, 1 gate failed).
func runStreamScenario(sc streamScenario, queriesOverride int) (streamBenchResult, int) {
	world := ps.NewRWMWorld(sc.Seed, sc.Sensors, ps.SensorConfig{})
	// The serving configuration: the greedy Algorithm 5 pipeline with the
	// lazy selection strategy — the paper's exact BILP point policy is
	// quadratic-ish in per-slot demand and cannot hold a 100ms slot at
	// this arrival rate.
	eng := ps.NewEngine(
		ps.NewAggregator(world, ps.WithScheduling(ps.SchedulingGreedy), ps.WithGreedyStrategy(ps.StrategyLazy)),
		ps.WithSlotInterval(sc.Interval),
		ps.WithQueueSize(4*sc.PerSlot),
		ps.WithBlockingSubmit(),
	)
	eng.Start()
	api := serve.New(eng, world, serve.Options{Strategy: ps.StrategyAuto})
	mux := &countingMux{next: api.Handler()}
	ts := httptest.NewServer(mux)
	defer func() {
		ts.Close()
		eng.Stop()
	}()

	queries := sc.Queries
	if queriesOverride > 0 {
		queries = queriesOverride
	}
	client, err := psclient.Dial(ts.URL, psclient.WithRetry(8, 20*time.Millisecond),
		psclient.WithHTTPClient(&http.Client{Transport: &http.Transport{
			MaxIdleConns:        sc.Watchers,
			MaxIdleConnsPerHost: sc.Watchers,
		}}))
	if err != nil {
		fmt.Fprintln(os.Stderr, "psbench:", err)
		return streamBenchResult{}, 1
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Minute)
	defer cancel()

	var (
		ids        = make(chan string, queries)
		finals     atomic.Int64
		latMu      sync.Mutex
		latencies  []float64
		watcherErr atomic.Pointer[string]
	)
	fail := func(format string, args ...any) {
		msg := fmt.Sprintf(format, args...)
		watcherErr.CompareAndSwap(nil, &msg)
		cancel()
	}

	// Watcher pool: each goroutine follows one query's event stream at a
	// time to its terminal frame, measuring publish->receive latency for
	// every frame pushed after it attached (replayed history is resume
	// semantics, not push latency).
	var watchers sync.WaitGroup
	for w := 0; w < sc.Watchers; w++ {
		watchers.Add(1)
		go func() {
			defer watchers.Done()
			local := make([]float64, 0, 64)
			for id := range ids {
				attached := time.Now().UnixNano()
				st := client.Stream(id)
				for {
					ev, err := st.Next(ctx)
					if err != nil {
						fail("watch %s: %v", id, err)
						st.Close()
						return
					}
					if ev.TS >= attached {
						local = append(local, float64(time.Now().UnixNano()-ev.TS)/1e6)
					}
					if ev.Terminal() {
						if ev.Event != wire.FrameFinal {
							fail("watch %s: terminal %s (%s)", id, ev.Event, ev.Error)
							st.Close()
							return
						}
						finals.Add(1)
						break
					}
				}
				st.Close()
			}
			latMu.Lock()
			latencies = append(latencies, local...)
			latMu.Unlock()
		}()
	}

	// Submitter: sc.PerSlot queries per interval, in SubmitBatch chunks.
	rnd := rng.New(sc.Seed, "psbench-"+sc.Name)
	wk := world.Working
	start := time.Now()
	submitErr := func() error {
		batchesPerSlot := (sc.PerSlot + sc.Batch - 1) / sc.Batch
		tick := time.NewTicker(sc.Interval / time.Duration(batchesPerSlot))
		defer tick.Stop()
		for submitted := 0; submitted < queries; {
			n := min(sc.Batch, queries-submitted)
			specs := make([]ps.Spec, 0, n)
			for i := 0; i < n; i++ {
				specs = append(specs, ps.PointSpec{
					ID:     fmt.Sprintf("sf-%d", submitted+i),
					Loc:    ps.Pt(rnd.Uniform(wk.MinX, wk.MaxX), rnd.Uniform(wk.MinY, wk.MaxY)),
					Budget: 8 + rnd.Uniform(0, 10),
				})
			}
			verdicts, err := client.SubmitBatch(ctx, specs)
			if err != nil {
				return err
			}
			for _, v := range verdicts {
				if v.Status != "accepted" {
					return fmt.Errorf("batch rejected %q: %s (%s)", v.ID, v.Error, v.Code)
				}
				ids <- v.ID
			}
			submitted += n
			select {
			case <-tick.C:
			case <-ctx.Done():
				return ctx.Err()
			}
		}
		return nil
	}()
	close(ids)
	if submitErr != nil {
		fmt.Fprintln(os.Stderr, "psbench: streaming submit:", submitErr)
		return streamBenchResult{}, 1
	}
	watchers.Wait()
	wall := time.Since(start)
	if msg := watcherErr.Load(); msg != nil {
		fmt.Fprintln(os.Stderr, "psbench: streaming watcher:", *msg)
		return streamBenchResult{}, 1
	}

	sort.Float64s(latencies)
	pct := func(p float64) float64 {
		if len(latencies) == 0 {
			return 0
		}
		i := int(p*float64(len(latencies))) - 1
		return latencies[max(0, min(i, len(latencies)-1))]
	}
	m := eng.Metrics()
	res := streamBenchResult{
		Scenario:        sc.Name,
		Description:     sc.Desc,
		Seed:            sc.Seed,
		Sensors:         sc.Sensors,
		Queries:         queries,
		Watchers:        sc.Watchers,
		Batch:           sc.Batch,
		SlotIntervalMs:  float64(sc.Interval.Nanoseconds()) / 1e6,
		PollRequests:    mux.polls.Load(),
		WatchRequests:   mux.watches.Load(),
		BatchRequests:   mux.batches.Load(),
		FinalsObserved:  finals.Load(),
		DeliverySamples: int64(len(latencies)),
		DeliveryMsP50:   pct(0.50),
		DeliveryMsP95:   pct(0.95),
		DeliveryMsMax:   pct(1.0),
		EventsDelivered: m.EventsDelivered,
		EventsDropped:   m.EventsDropped,
		GapEvents:       m.GapEvents,
		SlotMsAvg:       float64(m.SlotLatencyAvg.Nanoseconds()) / 1e6,
		Slots:           m.Slots,
		WallS:           wall.Seconds(),
		GoVersion:       runtime.Version(),
	}

	exit := 0
	if res.FinalsObserved != int64(queries) {
		fmt.Fprintf(os.Stderr, "psbench: REGRESSION %s: %d of %d queries observed to their final frame\n",
			sc.Name, res.FinalsObserved, queries)
		exit = 1
	}
	if res.PollRequests != 0 {
		fmt.Fprintf(os.Stderr, "psbench: REGRESSION %s: %d poll requests issued; push delivery must need zero\n",
			sc.Name, res.PollRequests)
		exit = 1
	}
	if res.DeliveryMsP95 > res.SlotIntervalMs {
		fmt.Fprintf(os.Stderr, "psbench: REGRESSION %s: p95 event-delivery latency %.2fms exceeds one slot (%.0fms)\n",
			sc.Name, res.DeliveryMsP95, res.SlotIntervalMs)
		exit = 1
	}
	return res, exit
}

// runStreamScenarioMode prints, records and gates one streaming
// scenario; it mirrors runScenarioMode's contract.
func runStreamScenarioMode(sc streamScenario, queriesOverride int, emitJSON bool, outDir string) int {
	start := time.Now()
	res, exit := runStreamScenario(sc, queriesOverride)
	if res.Scenario == "" {
		return 1
	}
	fmt.Printf("== %s (%d sensors, %v slots, %d watchers) — %s\n",
		res.Scenario, res.Sensors, sc.Interval, res.Watchers, sc.Desc)
	fmt.Printf("%-26s %d queries, %d finals observed, %d watch streams, %d batch posts, %d polls\n",
		"completion:", res.Queries, res.FinalsObserved, res.WatchRequests, res.BatchRequests, res.PollRequests)
	fmt.Printf("%-26s p50 %.2fms  p95 %.2fms  max %.2fms over %d live frames (gate: p95 <= %.0fms)\n",
		"delivery latency:", res.DeliveryMsP50, res.DeliveryMsP95, res.DeliveryMsMax, res.DeliverySamples, res.SlotIntervalMs)
	fmt.Printf("%-26s %d delivered, %d dropped (%d gap frames), slot avg %.2fms over %d slots\n",
		"events:", res.EventsDelivered, res.EventsDropped, res.GapEvents, res.SlotMsAvg, res.Slots)
	fmt.Printf("%-26s %.1fs wall\n", "duration:", res.WallS)

	if emitJSON {
		if err := os.MkdirAll(outDir, 0o755); err != nil {
			fmt.Fprintln(os.Stderr, "psbench:", err)
			return 1
		}
		path := filepath.Join(outDir, benchFileName(res.Scenario))
		buf, err := json.MarshalIndent(res, "", "  ")
		if err != nil {
			fmt.Fprintln(os.Stderr, "psbench:", err)
			return 1
		}
		if err := os.WriteFile(path, append(buf, '\n'), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "psbench:", err)
			return 1
		}
		fmt.Printf("%-26s %s\n", "json:", path)
	}
	fmt.Printf("-- %s done in %v\n\n", res.Scenario, time.Since(start).Round(time.Millisecond))
	return exit
}
