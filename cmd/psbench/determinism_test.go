package main

import (
	"bytes"
	"encoding/json"
	"testing"

	ps "repro"
)

// normalizeBench zeroes the machine-dependent fields of a bench record so
// two runs of the same scenario can be compared byte for byte: latency
// and allocation numbers vary run to run, everything else (welfare,
// costs, valuation-call counts, answered counts) is a pure function of
// the seed and must not drift.
func normalizeBench(res benchResult) benchResult {
	res.SlotMsP50, res.SlotMsP95, res.SlotMsMax, res.SlotMsMean = 0, 0, 0, 0
	res.CriticalPathP50Ms, res.CriticalPathP95Ms = 0, 0
	res.UnshardedP50Ms, res.SpeedupP50, res.LaneSpeedupP50 = 0, 0, 0
	res.TargetP50Ms, res.NormalizedP50Ms = 0, 0
	// Stage durations are wall time; names and order must not drift.
	for i := range res.SlotStages {
		res.SlotStages[i].P50Ms, res.SlotStages[i].P95Ms = 0, 0
		res.SlotStages[i].MeanMs, res.SlotStages[i].MaxMs = 0, 0
	}
	res.CalibrationMs = 0
	res.Allocs, res.AllocBytes = 0, 0
	res.GoVersion = ""
	return res
}

// TestScenarioDeterminism runs every psbench scenario twice with the same
// seed and asserts byte-identical (normalized) JSON. This guards the
// sorted-payment accumulation fix — a re-introduced map-order float sum
// would flip welfare in the last bits — and, for sharded-metro, that the
// concurrent per-shard fan-out leaks no scheduling nondeterminism.
func TestScenarioDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("scenario determinism runs unshortened in the bench job")
	}
	for _, sc := range scenarios {
		t.Run(sc.Name, func(t *testing.T) {
			strat := ps.StrategyLazy
			if sc.Strategy != "" {
				var err error
				if strat, err = ps.ParseStrategy(sc.Strategy); err != nil {
					t.Fatal(err)
				}
			}
			// Reduced horizon (and fleet, for the 40k scenario) keeps the
			// double run fast; determinism is per-slot, so three slots
			// exercise the same code paths as the full schedule.
			sc := sc
			sc.Slots = 3
			if sc.Sensors > 10_000 {
				sc.Sensors = 10_000
			}
			var out [2][]byte
			for r := range out {
				res := normalizeBench(runScenario(sc, strat, 0, 0, sc.Shards))
				buf, err := json.MarshalIndent(res, "", "  ")
				if err != nil {
					t.Fatal(err)
				}
				out[r] = buf
			}
			if !bytes.Equal(out[0], out[1]) {
				t.Errorf("scenario %s is nondeterministic across reruns:\n--- first\n%s\n--- second\n%s",
					sc.Name, out[0], out[1])
			}
		})
	}
}

// TestShardedScenarioMatchesUnshardedWelfare: the sharded-metro workload
// is (almost entirely) shard-resident, so the sharded run's deterministic
// outputs stay self-consistent against the unsharded run: identical
// answered counts and near-identical welfare (the two cross-shard queries
// per slot may settle differently).
func TestShardedScenarioMatchesUnshardedWelfare(t *testing.T) {
	if testing.Short() {
		t.Skip("covered by the bench job")
	}
	sc, ok := scenarioByName("sharded-metro")
	if !ok {
		t.Fatal("sharded-metro scenario missing")
	}
	sc.Slots = 2
	sc.Sensors = 10_000
	strat, err := ps.ParseStrategy(sc.Strategy)
	if err != nil {
		t.Fatal(err)
	}
	sharded := runScenario(sc, strat, 0, 0, sc.Shards)
	unsharded := runScenario(sc, strat, 0, 0, 1)
	if sharded.Answered != unsharded.Answered {
		t.Errorf("answered %d sharded vs %d unsharded", sharded.Answered, unsharded.Answered)
	}
	if ratio := sharded.Welfare / unsharded.Welfare; ratio < 0.95 || ratio > 1.05 {
		t.Errorf("welfare ratio %.4f outside [0.95, 1.05]: sharded %.1f vs unsharded %.1f",
			ratio, sharded.Welfare, unsharded.Welfare)
	}
}
