// Command psbench regenerates the paper's figures: for every figure of
// the evaluation section (Figs 2-10), the §4.7 trust experiment and the
// ablations, it runs the corresponding simulation and prints the x/series
// rows the paper plots. It doubles as the engine-mode load generator,
// driving the streaming engine with concurrent submitters on a virtual
// clock and reporting end-to-end throughput.
//
// It is also the repo's reproducible perf harness: named fixed-seed
// scenarios (dense-urban, sparse-rural, bursty-arrival,
// continuous-heavy) run the slot pipeline under a selectable
// candidate-evaluation strategy and emit machine-readable
// BENCH_<scenario>.json records (see scenarios.go); CI runs them every
// push and gates on slot-latency regressions against the checked-in
// baselines under bench/.
//
// Usage:
//
//	psbench -figure all            # everything (several minutes)
//	psbench -figure fig2           # one figure at paper scale
//	psbench -figure fig3 -slots 10 # reduced horizon
//	psbench -list                  # list figure IDs
//	psbench -engine -engine-sensors 10000 -engine-slots 20
//	psbench -scenario all -strategy lazy -json -out . -baseline bench
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"sync"
	"time"

	ps "repro"
	"repro/internal/rng"
	"repro/internal/sim"
)

func main() {
	var (
		figure  = flag.String("figure", "all", "figure ID to regenerate, or 'all'")
		slots   = flag.Int("slots", 0, "simulation slots (0 = paper's 50)")
		seed    = flag.Int64("seed", 0, "master seed (0 = default)")
		budgets = flag.String("budgets", "", "comma-separated x-axis override")
		list    = flag.Bool("list", false, "list available figure IDs")
		csv     = flag.Bool("csv", false, "emit CSV instead of aligned text")

		scenarioF   = flag.String("scenario", "", "run a named perf scenario (dense-urban, sparse-rural, bursty-arrival, continuous-heavy, sharded-metro, or 'all') instead of figures")
		strategy    = flag.String("strategy", "lazy", "scenario mode: selection strategy (auto, serial, sharded, lazy, lazy-sharded)")
		shardsF     = flag.Int("shards", 0, "scenario mode: override the scenario's geographic shard count (0 = scenario default; >1 runs the geo-sharded layer)")
		jsonOut     = flag.Bool("json", false, "scenario mode: write machine-readable BENCH_<scenario>.json files")
		outDir      = flag.String("out", ".", "scenario mode: output directory for BENCH_*.json")
		baselineDir = flag.String("baseline", "", "scenario mode: compare against BENCH_*.json in this directory; exit 1 on >2x normalized slot-latency regression")

		engineMode = flag.Bool("engine", false, "run the streaming-engine load generator instead of figures")
		engSensors = flag.Int("engine-sensors", 1000, "engine mode: fleet size")
		engSlots   = flag.Int("engine-slots", 50, "engine mode: slots to run")
		engQueries = flag.Int("engine-queries", 200, "engine mode: point queries submitted per slot")
		engAggs    = flag.Int("engine-aggregates", 5, "engine mode: aggregate queries submitted per slot")
		engClients = flag.Int("engine-clients", 8, "engine mode: concurrent submitter goroutines")
	)
	flag.Parse()

	if *scenarioF != "" {
		os.Exit(runScenarioMode(*scenarioF, *strategy, *slots, *seed, *shardsF, *jsonOut, *outDir, *baselineDir))
	}

	if *engineMode {
		seed := *seed
		if seed == 0 {
			seed = 1
		}
		runEngineLoad(seed, *engSensors, *engSlots, *engQueries, *engAggs, *engClients)
		return
	}

	if *list {
		for _, f := range sim.Figures {
			fmt.Printf("%-22s %s\n", f.ID, f.Title)
		}
		return
	}

	opts := sim.Options{Slots: *slots, Seed: *seed}
	if *budgets != "" {
		for _, part := range strings.Split(*budgets, ",") {
			v, err := strconv.ParseFloat(strings.TrimSpace(part), 64)
			if err != nil {
				fmt.Fprintf(os.Stderr, "psbench: bad budget %q: %v\n", part, err)
				os.Exit(2)
			}
			opts.Budgets = append(opts.Budgets, v)
		}
	}

	var figures []sim.Figure
	if *figure == "all" {
		figures = sim.Figures
	} else {
		f, ok := sim.FigureByID(*figure)
		if !ok {
			fmt.Fprintf(os.Stderr, "psbench: unknown figure %q (try -list)\n", *figure)
			os.Exit(2)
		}
		figures = []sim.Figure{f}
	}

	for _, f := range figures {
		start := time.Now()
		fmt.Printf("== %s — %s\n", f.ID, f.Title)
		for _, tab := range f.Run(opts) {
			if *csv {
				fmt.Println(tab.CSV())
			} else {
				fmt.Println(tab.Render())
			}
		}
		fmt.Printf("-- %s done in %v\n\n", f.ID, time.Since(start).Round(time.Millisecond))
	}
}

// runEngineLoad drives the streaming engine on a virtual clock: every
// slot, `clients` goroutines submit a mixed point/aggregate workload
// concurrently, then one slot executes. Results are consumed by one
// goroutine per query, mirroring how real subscribers behave.
func runEngineLoad(seed int64, sensors, slots, perSlot, aggsPerSlot, clients int) {
	world := ps.NewRWMWorld(seed, sensors, ps.SensorConfig{})
	eng := ps.NewEngine(
		ps.NewAggregator(world),
		ps.WithBlockingSubmit(),
		ps.WithQueueSize(2*(perSlot+aggsPerSlot)+clients),
	)
	eng.Start()
	fmt.Printf("== engine load: %d sensors, %d slots, %d point + %d aggregate queries/slot, %d clients\n",
		sensors, slots, perSlot, aggsPerSlot, clients)

	var consumers sync.WaitGroup
	consume := func(h *ps.QueryHandle) {
		consumers.Add(1)
		go func() {
			defer consumers.Done()
			for range h.Events() {
			}
		}()
	}

	w := world.Working
	start := time.Now()
	for t := 0; t < slots; t++ {
		var wg sync.WaitGroup
		for c := 0; c < clients; c++ {
			wg.Add(1)
			go func(c int) {
				defer wg.Done()
				rnd := rng.New(seed, fmt.Sprintf("load-%d-%d", t, c))
				for i := c; i < perSlot; i += clients {
					loc := ps.Pt(rnd.Uniform(w.MinX, w.MaxX), rnd.Uniform(w.MinY, w.MaxY))
					h, err := eng.Submit(ps.PointSpec{ID: fmt.Sprintf("p%d-%d", t, i), Loc: loc, Budget: 15})
					if err != nil {
						fmt.Fprintf(os.Stderr, "psbench: submit: %v\n", err)
						os.Exit(1)
					}
					consume(h)
				}
				for i := c; i < aggsPerSlot; i += clients {
					x := rnd.Uniform(w.MinX, w.MaxX-20)
					y := rnd.Uniform(w.MinY, w.MaxY-20)
					region := ps.NewRect(x, y, x+rnd.Uniform(10, 20), y+rnd.Uniform(10, 20))
					h, err := eng.Submit(ps.AggregateSpec{ID: fmt.Sprintf("a%d-%d", t, i), Region: region, Budget: 300})
					if err != nil {
						fmt.Fprintf(os.Stderr, "psbench: submit: %v\n", err)
						os.Exit(1)
					}
					consume(h)
				}
			}(c)
		}
		wg.Wait()
		if err := eng.RunSlots(1); err != nil {
			fmt.Fprintf(os.Stderr, "psbench: slot: %v\n", err)
			os.Exit(1)
		}
	}
	consumers.Wait()
	elapsed := time.Since(start)
	eng.Stop()

	m := eng.Metrics()
	qps := float64(m.QueriesSubmitted) / elapsed.Seconds()
	fmt.Printf("%-28s %v\n", "wall time:", elapsed.Round(time.Millisecond))
	fmt.Printf("%-28s %d\n", "queries submitted:", m.QueriesSubmitted)
	fmt.Printf("%-28s %.0f\n", "queries/sec end-to-end:", qps)
	fmt.Printf("%-28s %.1f\n", "slots/sec:", float64(m.Slots)/elapsed.Seconds())
	fmt.Printf("%-28s avg %v  max %v\n", "slot latency:", m.SlotLatencyAvg.Round(time.Microsecond), m.SlotLatencyMax.Round(time.Microsecond))
	fmt.Printf("%-28s %.1f (%.1f/slot)\n", "total welfare:", m.TotalWelfare, m.TotalWelfare/float64(m.Slots))
	fmt.Printf("%-28s %d answered / %d starved\n", "deliveries:", m.Answered, m.Starved)
	fmt.Printf("%-28s %d delivered, %d dropped (%d gap frames)\n", "events:", m.EventsDelivered, m.EventsDropped, m.GapEvents)
}
