// Command psbench regenerates the paper's figures: for every figure of
// the evaluation section (Figs 2-10), the §4.7 trust experiment and the
// ablations, it runs the corresponding simulation and prints the x/series
// rows the paper plots.
//
// Usage:
//
//	psbench -figure all            # everything (several minutes)
//	psbench -figure fig2           # one figure at paper scale
//	psbench -figure fig3 -slots 10 # reduced horizon
//	psbench -list                  # list figure IDs
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"repro/internal/sim"
)

func main() {
	var (
		figure  = flag.String("figure", "all", "figure ID to regenerate, or 'all'")
		slots   = flag.Int("slots", 0, "simulation slots (0 = paper's 50)")
		seed    = flag.Int64("seed", 0, "master seed (0 = default)")
		budgets = flag.String("budgets", "", "comma-separated x-axis override")
		list    = flag.Bool("list", false, "list available figure IDs")
		csv     = flag.Bool("csv", false, "emit CSV instead of aligned text")
	)
	flag.Parse()

	if *list {
		for _, f := range sim.Figures {
			fmt.Printf("%-22s %s\n", f.ID, f.Title)
		}
		return
	}

	opts := sim.Options{Slots: *slots, Seed: *seed}
	if *budgets != "" {
		for _, part := range strings.Split(*budgets, ",") {
			v, err := strconv.ParseFloat(strings.TrimSpace(part), 64)
			if err != nil {
				fmt.Fprintf(os.Stderr, "psbench: bad budget %q: %v\n", part, err)
				os.Exit(2)
			}
			opts.Budgets = append(opts.Budgets, v)
		}
	}

	var figures []sim.Figure
	if *figure == "all" {
		figures = sim.Figures
	} else {
		f, ok := sim.FigureByID(*figure)
		if !ok {
			fmt.Fprintf(os.Stderr, "psbench: unknown figure %q (try -list)\n", *figure)
			os.Exit(2)
		}
		figures = []sim.Figure{f}
	}

	for _, f := range figures {
		start := time.Now()
		fmt.Printf("== %s — %s\n", f.ID, f.Title)
		for _, tab := range f.Run(opts) {
			if *csv {
				fmt.Println(tab.CSV())
			} else {
				fmt.Println(tab.Render())
			}
		}
		fmt.Printf("-- %s done in %v\n\n", f.ID, time.Since(start).Round(time.Millisecond))
	}
}
