package main

// The reproducible perf harness: named scenarios with fixed seeds and
// fixed workload schedules, run through the Aggregator with a selectable
// candidate-evaluation strategy. Each run records slot-latency
// percentiles, the greedy core's valuation-call instrumentation, welfare
// and allocation counts; -json writes one machine-readable
// BENCH_<scenario>.json per scenario so the perf trajectory of the repo
// is tracked in CI (see .github/workflows/ci.yml's bench job).
//
// Latency gates compare against a checked-in baseline (bench/) after
// normalizing by a fixed CPU calibration loop, so a slower CI runner
// does not read as a regression. Valuation calls, welfare and
// allocations are machine-independent for a fixed seed and are reported
// for drift inspection.

import (
	"encoding/json"
	"fmt"
	"math"
	"net"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"time"

	ps "repro"
	"repro/cluster"
	"repro/internal/rng"
)

// scenario is one named, fixed-seed workload.
type scenario struct {
	Name    string
	Desc    string
	Seed    int64
	Sensors int
	Slots   int
	// Shards > 1 runs the scenario on the geo-sharded execution layer.
	// Scenario mode then also runs the unsharded configuration first and
	// gates on the p50 slot-latency speedup (minShardedSpeedup).
	Shards int
	// Cluster runs the sharded layer through the multi-node coordinator:
	// one in-process psnode server per shard on a loopback socket, every
	// partial JSON-framed across TCP. Results stay bit-identical to the
	// in-process sharded run (the cluster's reconciliation contract), so
	// the deterministic fields still guard drift; the speedup gate is
	// waived because loopback RPC overhead is what the scenario measures.
	Cluster bool
	// Strategy pins the selection strategy for this scenario regardless
	// of the -strategy flag ("" = honor the flag). Sharded scenarios pin
	// it so the speedup compares identical per-shard algorithms.
	Strategy string
	// TargetP50Ms, when > 0, gates the run on an absolute p50 slot
	// latency after normalizing this machine's speed to the reference
	// machine via the calibration loop (see targetRefCalibrationMs).
	// Unlike the baseline-relative gate this one cannot ratchet: it
	// encodes the latency budget the scenario was designed to meet.
	TargetP50Ms float64
	// setup submits long-lived (continuous) queries before slot 0.
	setup func(r *scenarioRun)
	// slot submits one slot's one-shot queries.
	slot func(r *scenarioRun, t int)
}

// slotBackend is the execution surface a scenario drives: the unsharded
// ps.Aggregator or the geo-sharded ps.ShardedAggregator.
type slotBackend interface {
	Submit(ps.Spec) (ps.SubmittedQuery, error)
	RunSlot() *ps.SlotReport
}

// scenarioRun is the mutable state while a scenario executes.
type scenarioRun struct {
	sc         scenario
	world      *ps.World
	agg        slotBackend
	rnd        *rng.Stream
	oneShots   []string // IDs submitted for the current slot
	continuous []string // IDs of live continuous queries
	submitted  int
}

func (r *scenarioRun) id(prefix string, t, i int) string {
	return fmt.Sprintf("%s-%s%d-%d", r.sc.Name, prefix, t, i)
}

// submit routes every scenario submission through the unified QuerySpec
// API; a rejected spec is a bug in the scenario definition.
func (r *scenarioRun) submit(spec ps.Spec, oneShot bool) {
	sq, err := r.agg.Submit(spec)
	if err != nil {
		panic(fmt.Sprintf("psbench: scenario %s: %v", r.sc.Name, err))
	}
	if oneShot {
		r.oneShots = append(r.oneShots, sq.ID)
	} else {
		r.continuous = append(r.continuous, sq.ID)
	}
	r.submitted++
}

func (r *scenarioRun) point(t, i int, budget float64) {
	w := r.world.Working
	r.submit(ps.PointSpec{
		ID:     r.id("pt", t, i),
		Loc:    ps.Pt(r.rnd.Uniform(w.MinX, w.MaxX), r.rnd.Uniform(w.MinY, w.MaxY)),
		Budget: budget,
	}, true)
}

func (r *scenarioRun) multiPoint(t, i int, budget float64, k int) {
	w := r.world.Working
	r.submit(ps.MultiPointSpec{
		ID:     r.id("mp", t, i),
		Loc:    ps.Pt(r.rnd.Uniform(w.MinX, w.MaxX), r.rnd.Uniform(w.MinY, w.MaxY)),
		Budget: budget,
		K:      k,
	}, true)
}

func (r *scenarioRun) aggregate(t, i int, budget, minDim, maxDim float64) {
	w := r.world.Working
	x := r.rnd.Uniform(w.MinX, w.MaxX-maxDim)
	y := r.rnd.Uniform(w.MinY, w.MaxY-maxDim)
	r.submit(ps.AggregateSpec{
		ID:     r.id("agg", t, i),
		Region: ps.NewRect(x, y, x+r.rnd.Uniform(minDim, maxDim), y+r.rnd.Uniform(minDim, maxDim)),
		Budget: budget,
	}, true)
}

// pointIn submits a point query placed inside box (sharded-metro keeps
// demand shard-resident by drawing from each shard's interior).
func (r *scenarioRun) pointIn(box ps.Rect, t, i int, budget float64) {
	r.submit(ps.PointSpec{
		ID:     r.id("pt", t, i),
		Loc:    ps.Pt(r.rnd.Uniform(box.MinX, box.MaxX), r.rnd.Uniform(box.MinY, box.MaxY)),
		Budget: budget,
	}, true)
}

func (r *scenarioRun) multiPointIn(box ps.Rect, t, i int, budget float64, k int) {
	r.submit(ps.MultiPointSpec{
		ID:     r.id("mp", t, i),
		Loc:    ps.Pt(r.rnd.Uniform(box.MinX, box.MaxX), r.rnd.Uniform(box.MinY, box.MaxY)),
		Budget: budget,
		K:      k,
	}, true)
}

func (r *scenarioRun) aggregateIn(box ps.Rect, t, i int, budget, minDim, maxDim float64) {
	x := r.rnd.Uniform(box.MinX, box.MaxX-maxDim)
	y := r.rnd.Uniform(box.MinY, box.MaxY-maxDim)
	r.submit(ps.AggregateSpec{
		ID:     r.id("agg", t, i),
		Region: ps.NewRect(x, y, x+r.rnd.Uniform(minDim, maxDim), y+r.rnd.Uniform(minDim, maxDim)),
		Budget: budget,
	}, true)
}

func (r *scenarioRun) trajectory(t, i int, budget float64) {
	w := r.world.Working
	x, y := r.rnd.Uniform(w.MinX, w.MaxX-20), r.rnd.Uniform(w.MinY, w.MaxY-20)
	tr := ps.Trajectory{Waypoints: []ps.Point{
		ps.Pt(x, y),
		ps.Pt(x+r.rnd.Uniform(5, 20), y+r.rnd.Uniform(5, 20)),
	}}
	r.submit(ps.TrajectorySpec{ID: r.id("tr", t, i), Path: tr, Budget: budget}, true)
}

// scenarios is the pinned scenario registry. Workload sizes are chosen
// so the whole suite finishes within a few minutes on a 2-core CI
// runner; seeds and schedules must stay fixed — BENCH_*.json numbers
// are only comparable across runs of identical scenarios.
var scenarios = []scenario{
	{
		Name:    "dense-urban",
		Desc:    "big fleet, heavy mixed demand: 250 points + 20 k-redundancy multipoints + 8 aggregates per slot",
		Seed:    11,
		Sensors: 4000,
		Slots:   12,
		slot: func(r *scenarioRun, t int) {
			for i := 0; i < 250; i++ {
				r.point(t, i, 10+r.rnd.Uniform(0, 20))
			}
			for i := 0; i < 20; i++ {
				r.multiPoint(t, i, 100+r.rnd.Uniform(0, 150), 8)
			}
			for i := 0; i < 8; i++ {
				r.aggregate(t, i, 200+r.rnd.Uniform(0, 200), 10, 25)
			}
		},
	},
	{
		Name:    "sparse-rural",
		Desc:    "small fleet, thin demand: 40 points + 2 aggregates per slot",
		Seed:    12,
		Sensors: 250,
		Slots:   20,
		slot: func(r *scenarioRun, t int) {
			for i := 0; i < 40; i++ {
				r.point(t, i, 10+r.rnd.Uniform(0, 20))
			}
			for i := 0; i < 2; i++ {
				r.aggregate(t, i, 150+r.rnd.Uniform(0, 150), 15, 35)
			}
		},
	},
	{
		Name:    "bursty-arrival",
		Desc:    "quiet baseline with 500-query bursts every 6th slot",
		Seed:    13,
		Sensors: 1500,
		Slots:   24,
		slot: func(r *scenarioRun, t int) {
			n, aggs := 30, 0
			if t%6 == 0 {
				n, aggs = 500, 6
			}
			for i := 0; i < n; i++ {
				r.point(t, i, 10+r.rnd.Uniform(0, 20))
			}
			for i := 0; i < aggs; i++ {
				r.aggregate(t, i, 200+r.rnd.Uniform(0, 200), 10, 25)
			}
		},
	},
	{
		Name: "sharded-metro",
		Desc: "40k-sensor dense city on 4 geographic shards: quadrant-local points, k-redundancy multipoints and aggregates, plus a little cross-shard demand for the spanning pass",
		Seed: 15,
		// 40k sensors and ~2k queries/slot make the per-round candidate
		// scan of the greedy core the bottleneck; the 4-way partition cuts
		// that scan ~4x serially, plus shard parallelism on multi-core
		// machines. The strategy is pinned so the gate always compares the
		// same per-shard algorithm sharded vs unsharded; lazy is the
		// production default for sharded engines (see PERFORMANCE.md), so
		// that is what this scenario measures and gates.
		Sensors:     40_000,
		Slots:       4,
		Shards:      4,
		Strategy:    "lazy",
		TargetP50Ms: 100,
		slot: func(r *scenarioRun, t int) {
			// Interior boxes of the four shards of the RWM working region
			// (15..65, split at 40), inset by dmax+1 so every footprint is
			// shard-resident.
			quads := []ps.Rect{
				ps.NewRect(21, 21, 34, 34),
				ps.NewRect(46, 21, 59, 34),
				ps.NewRect(21, 46, 34, 59),
				ps.NewRect(46, 46, 59, 59),
			}
			for q, box := range quads {
				for i := 0; i < 500; i++ {
					r.pointIn(box, t, q*1000+i, 8+r.rnd.Uniform(0, 6))
				}
				for i := 0; i < 6; i++ {
					r.multiPointIn(box, t, q*1000+i, 100+r.rnd.Uniform(0, 150), 6)
				}
				for i := 0; i < 2; i++ {
					r.aggregateIn(box, t, q*1000+i, 250+r.rnd.Uniform(0, 200), 6, 10)
				}
			}
			// Cross-shard tail: one center aggregate and one border-crossing
			// trajectory exercise the spanning pass every slot.
			r.submit(ps.AggregateSpec{
				ID:     r.id("span-agg", t, 0),
				Region: ps.NewRect(32, 32, 48, 48),
				Budget: 400,
			}, true)
			r.submit(ps.TrajectorySpec{
				ID:     r.id("span-tr", t, 0),
				Path:   ps.Trajectory{Waypoints: []ps.Point{ps.Pt(25, 42), ps.Pt(55, 42)}},
				Budget: 150,
			}, true)
		},
	},
	{
		Name: "cluster-metro",
		Desc: "20k-sensor city on a 4-node loopback cluster: quadrant-local points, multipoints and aggregates plus a cross-shard tail, every partial JSON-framed over TCP",
		Seed: 16,
		// The workload mirrors sharded-metro at half the fleet so the
		// cluster suite stays inside the CI budget; what this scenario
		// adds over sharded-metro is the wire: world-replica lockstep on
		// four node servers, NDJSON partials over loopback TCP, and the
		// trace-replay merge back on the coordinator. The deterministic
		// fields (welfare, valuation calls, answered counts) must match an
		// in-process sharded run bit for bit — the cluster golden tests
		// pin that — so any drift here is reconciliation drift.
		Sensors:  20_000,
		Slots:    4,
		Shards:   4,
		Cluster:  true,
		Strategy: "lazy",
		slot: func(r *scenarioRun, t int) {
			quads := []ps.Rect{
				ps.NewRect(21, 21, 34, 34),
				ps.NewRect(46, 21, 59, 34),
				ps.NewRect(21, 46, 34, 59),
				ps.NewRect(46, 46, 59, 59),
			}
			for q, box := range quads {
				for i := 0; i < 250; i++ {
					r.pointIn(box, t, q*1000+i, 8+r.rnd.Uniform(0, 6))
				}
				for i := 0; i < 4; i++ {
					r.multiPointIn(box, t, q*1000+i, 100+r.rnd.Uniform(0, 150), 6)
				}
				for i := 0; i < 2; i++ {
					r.aggregateIn(box, t, q*1000+i, 250+r.rnd.Uniform(0, 200), 6, 10)
				}
			}
			// Cross-shard tail: the spanning pass runs centrally on the
			// coordinator even in cluster mode, and its selections ride the
			// same per-slot commit to every node replica.
			r.submit(ps.AggregateSpec{
				ID:     r.id("span-agg", t, 0),
				Region: ps.NewRect(32, 32, 48, 48),
				Budget: 400,
			}, true)
			r.submit(ps.TrajectorySpec{
				ID:     r.id("span-tr", t, 0),
				Path:   ps.Trajectory{Waypoints: []ps.Point{ps.Pt(25, 42), ps.Pt(55, 42)}},
				Budget: 150,
			}, true)
		},
	},
	{
		Name:    "continuous-heavy",
		Desc:    "monitoring-dominated: 20 locmon + 8 event + 4 region-event continuous queries over light one-shot traffic",
		Seed:    14,
		Sensors: 1000,
		Slots:   20,
		setup: func(r *scenarioRun) {
			w := r.world.Working
			for i := 0; i < 20; i++ {
				r.submit(ps.LocationMonitoringSpec{
					ID:       fmt.Sprintf("%s-lm-%d", r.sc.Name, i),
					Loc:      ps.Pt(r.rnd.Uniform(w.MinX, w.MaxX), r.rnd.Uniform(w.MinY, w.MaxY)),
					Duration: r.sc.Slots,
					Budget:   150,
					Samples:  6,
				}, false)
			}
			for i := 0; i < 8; i++ {
				r.submit(ps.EventDetectionSpec{
					ID:            fmt.Sprintf("%s-ev-%d", r.sc.Name, i),
					Loc:           ps.Pt(r.rnd.Uniform(w.MinX, w.MaxX), r.rnd.Uniform(w.MinY, w.MaxY)),
					Duration:      r.sc.Slots,
					Threshold:     0.7,
					Confidence:    0.8,
					BudgetPerSlot: 40,
				}, false)
			}
			for i := 0; i < 4; i++ {
				x := r.rnd.Uniform(w.MinX, w.MaxX-20)
				y := r.rnd.Uniform(w.MinY, w.MaxY-20)
				r.submit(ps.RegionEventSpec{
					ID:            fmt.Sprintf("%s-re-%d", r.sc.Name, i),
					Region:        ps.NewRect(x, y, x+15, y+15),
					Duration:      r.sc.Slots,
					Threshold:     0.7,
					Confidence:    0.6,
					BudgetPerSlot: 80,
				}, false)
			}
		},
		slot: func(r *scenarioRun, t int) {
			for i := 0; i < 40; i++ {
				r.point(t, i, 10+r.rnd.Uniform(0, 20))
			}
			for i := 0; i < 5; i++ {
				r.multiPoint(t, i, 60+r.rnd.Uniform(0, 80), 5)
			}
			for i := 0; i < 3; i++ {
				r.trajectory(t, i, 50+r.rnd.Uniform(0, 50))
			}
		},
	},
}

func scenarioByName(name string) (scenario, bool) {
	for _, sc := range scenarios {
		if sc.Name == name {
			return sc, true
		}
	}
	return scenario{}, false
}

// benchResult is the machine-readable record of one scenario run
// (BENCH_<scenario>.json). Latency fields depend on the machine;
// valuation counts, welfare and allocation counts are deterministic for
// a fixed seed and scenario.
type benchResult struct {
	Scenario    string  `json:"scenario"`
	Description string  `json:"description"`
	Strategy    string  `json:"strategy"`
	Seed        int64   `json:"seed"`
	Sensors     int     `json:"sensors"`
	Slots       int     `json:"slots"`
	Shards      int     `json:"shards"`
	Submitted   int     `json:"queries_submitted"`
	Answered    int     `json:"query_slots_answered"`
	SlotMsP50   float64 `json:"slot_ms_p50"`
	SlotMsP95   float64 `json:"slot_ms_p95"`
	SlotMsMax   float64 `json:"slot_ms_max"`
	SlotMsMean  float64 `json:"slot_ms_mean"`
	// SlotStages breaks the slot latency into the aggregator's pipeline
	// stages (offer gather, selection, commit, ... — see ps.SlotReport),
	// in pipeline order. Stage timings are machine-dependent like the
	// slot latencies above; the stage names and count are deterministic.
	SlotStages []stageBreakdown `json:"slot_stages,omitempty"`
	// CriticalPathP50Ms/P95Ms are the slot-latency percentiles with the
	// shard lanes' serialization removed: per slot, wall time minus
	// (sum of lane select times - slowest lane). Lanes run concurrently
	// and share no mutable state, so this is the slot latency of a
	// deployment with at least one core per lane; on such machines it
	// coincides with the wall percentiles, while on a smaller runner the
	// wall clock additionally pays for time-slicing the lanes. Computed
	// from measured per-lane timings (ShardStats.SelectMs), not a model.
	CriticalPathP50Ms float64 `json:"critical_path_p50_ms,omitempty"`
	CriticalPathP95Ms float64 `json:"critical_path_p95_ms,omitempty"`
	// Sharded scenarios also record the same-machine unsharded run they
	// were gated against. SpeedupP50 is the wall-clock ratio (machine- and
	// core-count-dependent); LaneSpeedupP50 is the unsharded p50 over the
	// sharded critical-path p50 — the speedup once every lane has its own
	// core — which is a work ratio and transfers across machines.
	UnshardedP50Ms float64 `json:"unsharded_p50_ms,omitempty"`
	SpeedupP50     float64 `json:"speedup_p50,omitempty"`
	LaneSpeedupP50 float64 `json:"lane_speedup_p50,omitempty"`
	// Scenarios with an absolute latency budget also record the budget
	// and the calibration-normalized p50 the gate compared against it
	// (raw p50 scaled to the reference machine, see targetRefCalibrationMs).
	TargetP50Ms     float64 `json:"target_p50_ms,omitempty"`
	NormalizedP50Ms float64 `json:"normalized_p50_ms,omitempty"`
	// CalibrationMs is the wall time of a fixed single-core CPU loop on
	// this machine; latency gates compare p50/calibration ratios so the
	// baseline transfers across machines.
	CalibrationMs           float64 `json:"calibration_ms"`
	ValuationCalls          int64   `json:"valuation_calls"`
	ExhaustiveEquivCalls    int64   `json:"exhaustive_equiv_calls"`
	ValuationCallsSaved     int64   `json:"valuation_calls_saved"`
	LazyReevaluations       int64   `json:"lazy_reevaluations"`
	SubmodularityViolations int64   `json:"submodularity_violations"`
	FallbackRescans         int64   `json:"fallback_rescans"`
	GeomCacheHits           int64   `json:"geom_cache_hits"`
	GeomCacheLookups        int64   `json:"geom_cache_lookups"`
	PosteriorAppends        int64   `json:"posterior_appends"`
	PosteriorRebuilds       int64   `json:"posterior_rebuilds"`
	Welfare                 float64 `json:"welfare"`
	TotalCost               float64 `json:"total_cost"`
	Allocs                  uint64  `json:"allocs"`
	AllocBytes              uint64  `json:"alloc_bytes"`
	GoVersion               string  `json:"go_version"`

	// stageSumViolation records the first slot whose stage timings summed
	// past the measured slot latency — the stages are sub-intervals of the
	// RunSlot window, so that can only happen if the trace double-counts.
	// Checked by runScenarioMode; not part of the JSON record.
	stageSumViolation string
}

// stageBreakdown is one pipeline stage's latency percentiles across a
// scenario's slots.
type stageBreakdown struct {
	Stage  string  `json:"stage"`
	P50Ms  float64 `json:"p50_ms"`
	P95Ms  float64 `json:"p95_ms"`
	MeanMs float64 `json:"mean_ms"`
	MaxMs  float64 `json:"max_ms"`
}

// pctOf reads percentile p (0..1] from an ascending-sorted sample set.
func pctOf(sorted []float64, p float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	i := int(math.Ceil(p*float64(len(sorted)))) - 1
	return sorted[max(0, min(i, len(sorted)-1))]
}

// stageSumTolerance absorbs clock-granularity noise when comparing a
// slot's stage-timing sum against the slot latency that encloses it:
// 2% relative plus 50µs absolute.
func stageSumSlack(latencyMs float64) float64 {
	return latencyMs*0.02 + 0.05
}

// calibrationSink defeats dead-code elimination of the calibration loop.
var calibrationSink uint64

// calibrate times a fixed xorshift loop — a deterministic single-core
// workload whose wall time tracks the machine's scalar speed.
func calibrate() float64 {
	x := uint64(88172645463325252)
	start := time.Now()
	for i := 0; i < 60_000_000; i++ {
		x ^= x << 13
		x ^= x >> 7
		x ^= x << 17
	}
	calibrationSink = x
	return float64(time.Since(start).Nanoseconds()) / 1e6
}

// runScenario executes one scenario with the given strategy and shard
// count (shards <= 1 is the unsharded aggregator) and returns its record.
func runScenario(sc scenario, strat ps.Strategy, slotsOverride int, seedOverride int64, shards int) benchResult {
	if slotsOverride > 0 {
		sc.Slots = slotsOverride
	}
	if seedOverride != 0 {
		sc.Seed = seedOverride
	}
	if shards < 1 {
		shards = 1
	}
	r := &scenarioRun{
		sc:  sc,
		rnd: rng.New(sc.Seed, "psbench-"+sc.Name),
	}
	switch {
	case sc.Cluster && shards > 1:
		// Cluster mode: one in-process node server per shard behind a real
		// loopback TCP socket, so the measured slot latency includes frame
		// encode/decode and the RPC round trips.
		agg, world, cleanup := startClusterBackend(sc, strat, shards)
		defer cleanup()
		r.agg, r.world = agg, world
	case shards > 1:
		r.world = ps.NewRWMWorld(sc.Seed, sc.Sensors, ps.SensorConfig{})
		r.agg = ps.NewShardedAggregator(r.world, shards, ps.WithGreedyStrategy(strat))
	default:
		r.world = ps.NewRWMWorld(sc.Seed, sc.Sensors, ps.SensorConfig{})
		r.agg = ps.NewAggregator(r.world, ps.WithGreedyStrategy(strat))
	}
	if sc.setup != nil {
		sc.setup(r)
	}

	var stats ps.SelectionStats
	var welfare, totalCost float64
	var answered int
	latencies := make([]float64, 0, sc.Slots)
	criticals := make([]float64, 0, sc.Slots)
	var stageOrder []string
	stageMs := make(map[string][]float64)
	var stageViolation string

	runtime.GC()
	var m0, m1 runtime.MemStats
	runtime.ReadMemStats(&m0)
	for t := 0; t < sc.Slots; t++ {
		r.oneShots = r.oneShots[:0]
		if sc.slot != nil {
			sc.slot(r, t)
		}
		start := time.Now()
		rep := r.agg.RunSlot()
		lat := float64(time.Since(start).Nanoseconds()) / 1e6
		latencies = append(latencies, lat)
		// Critical path: subtract the shard lanes' serialization (they run
		// concurrently given enough cores), keeping the slowest lane and
		// every sequential stage. Unsharded runs have no lanes: crit == lat.
		var laneSum, laneMax float64
		for _, sh := range rep.Shards {
			if sh.Spanning {
				continue
			}
			laneSum += sh.SelectMs
			laneMax = math.Max(laneMax, sh.SelectMs)
		}
		crit := lat
		if laneSum > 0 {
			crit = math.Max(lat-laneSum+laneMax, laneMax)
		}
		criticals = append(criticals, crit)
		var sumMs float64
		for _, sp := range rep.Stages {
			ms := float64(sp.Duration.Nanoseconds()) / 1e6
			if _, seen := stageMs[sp.Stage]; !seen {
				stageOrder = append(stageOrder, sp.Stage)
			}
			stageMs[sp.Stage] = append(stageMs[sp.Stage], ms)
			sumMs += ms
		}
		if stageViolation == "" && sumMs > lat+stageSumSlack(lat) {
			stageViolation = fmt.Sprintf("slot %d: stage timings sum to %.3fms, exceeding the %.3fms slot latency", t, sumMs, lat)
		}
		welfare += rep.Welfare
		totalCost += rep.TotalCost
		stats.Accumulate(rep.Selection)
		for _, id := range r.oneShots {
			if rep.Answered(id) {
				answered++
			}
		}
		for _, id := range r.continuous {
			if rep.Answered(id) {
				answered++
			}
		}
	}
	runtime.ReadMemStats(&m1)

	sorted := append([]float64(nil), latencies...)
	sort.Float64s(sorted)
	critSorted := append([]float64(nil), criticals...)
	sort.Float64s(critSorted)
	var mean float64
	for _, l := range sorted {
		mean += l
	}
	mean /= float64(len(sorted))
	pct := func(p float64) float64 { return pctOf(sorted, p) }
	// Only sharded runs have lanes to subtract; leave the fields zero
	// (omitted from JSON) when the critical path equals the wall clock.
	var critP50, critP95 float64
	if shards > 1 {
		critP50 = pctOf(critSorted, 0.50)
		critP95 = pctOf(critSorted, 0.95)
	}

	stages := make([]stageBreakdown, 0, len(stageOrder))
	for _, name := range stageOrder {
		ms := append([]float64(nil), stageMs[name]...)
		sort.Float64s(ms)
		var m float64
		for _, v := range ms {
			m += v
		}
		stages = append(stages, stageBreakdown{
			Stage:  name,
			P50Ms:  pctOf(ms, 0.50),
			P95Ms:  pctOf(ms, 0.95),
			MeanMs: m / float64(len(ms)),
			MaxMs:  ms[len(ms)-1],
		})
	}

	return benchResult{
		Scenario:                sc.Name,
		Description:             sc.Desc,
		Strategy:                strat.String(),
		Seed:                    sc.Seed,
		Sensors:                 sc.Sensors,
		Slots:                   sc.Slots,
		Shards:                  shards,
		Submitted:               r.submitted,
		Answered:                answered,
		SlotMsP50:               pct(0.50),
		SlotMsP95:               pct(0.95),
		SlotMsMax:               sorted[len(sorted)-1],
		SlotMsMean:              mean,
		SlotStages:              stages,
		CriticalPathP50Ms:       critP50,
		CriticalPathP95Ms:       critP95,
		stageSumViolation:       stageViolation,
		CalibrationMs:           calibrate(),
		ValuationCalls:          stats.ValuationCalls,
		ExhaustiveEquivCalls:    stats.SerialEquivCalls,
		ValuationCallsSaved:     stats.SavedCalls(),
		LazyReevaluations:       stats.LazyReevaluations,
		SubmodularityViolations: stats.SubmodularityViolations,
		FallbackRescans:         stats.FallbackRescans,
		GeomCacheHits:           stats.GeomCacheHits,
		GeomCacheLookups:        stats.GeomCacheLookups,
		PosteriorAppends:        stats.PosteriorAppends,
		PosteriorRebuilds:       stats.PosteriorRebuilds,
		Welfare:                 welfare,
		TotalCost:               totalCost,
		Allocs:                  m1.Mallocs - m0.Mallocs,
		AllocBytes:              m1.TotalAlloc - m0.TotalAlloc,
		GoVersion:               runtime.Version(),
	}
}

// startClusterBackend boots one in-process psnode per shard on loopback
// sockets and returns a cluster coordinator driving them, its world
// replica, and a cleanup closing everything. Failures panic: a scenario
// that cannot assemble its backend is a harness bug, not a measurement.
func startClusterBackend(sc scenario, strat ps.Strategy, shards int) (slotBackend, *ps.World, func()) {
	nodes := make([]*cluster.NodeServer, shards)
	addrs := make([]string, shards)
	for k := 0; k < shards; k++ {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			panic(fmt.Sprintf("psbench: scenario %s: node %d listen: %v", sc.Name, k, err))
		}
		node := cluster.NewNodeServer(fmt.Sprintf("node%d", k))
		go node.Serve(ln)
		nodes[k], addrs[k] = node, ln.Addr().String()
	}
	co, err := cluster.New(cluster.Config{
		World:      "rwm",
		Seed:       sc.Seed,
		Sensors:    sc.Sensors,
		Shards:     shards,
		Strategy:   strat.String(),
		Nodes:      addrs,
		RPCTimeout: 60 * time.Second,
	})
	if err != nil {
		panic(fmt.Sprintf("psbench: scenario %s: cluster: %v", sc.Name, err))
	}
	cleanup := func() {
		co.Close()
		for _, n := range nodes {
			n.Close()
		}
	}
	return co.Sharded(), co.World(), cleanup
}

// maxLatencyRegression is the baseline gate: fail when the normalized
// p50 slot latency exceeds the baseline's by more than this factor.
const maxLatencyRegression = 2.0

// maxAllocRegression gates heap allocations per slot against the
// baseline. Allocation counts are deterministic for a fixed seed and
// scenario — no calibration needed — so the 1.5x headroom only absorbs
// Go-runtime drift (map growth policy, append heuristics), not
// algorithmic churn: reintroducing per-slot rebuilds of the selection
// state blows well past it.
const maxAllocRegression = 1.5

// targetRefCalibrationMs anchors absolute TargetP50Ms gates: the
// calibration-loop wall time on the reference machine the targets were
// set on. A machine with calibration C has its measured p50 scaled by
// targetRefCalibrationMs/C before the comparison, so a slower CI runner
// does not spuriously fail the gate and a faster one does not mask a
// real regression.
const targetRefCalibrationMs = 125.0

// minShardedSpeedup returns the p50 slot-latency speedup a sharded
// scenario must achieve over its same-machine unsharded run, gated on
// the better of the wall-clock ratio and the lane-parallel ratio
// (unsharded p50 over sharded critical-path p50 — what the wall ratio
// becomes once every lane has its own core).
//
// The floor depends on the strategy both sides run. With exhaustive
// scans a K-way partition cuts the per-round candidate scan K-fold, so
// a 4-shard run targets 4x (the sharded-metro workload measures
// ~2.7-2.9x of it from work reduction alone on one core). Lazy-greedy
// moves the goalposts: the *unsharded* reference already prunes most
// candidate evaluations with the same heap, so sharding's remaining win
// is lane parallelism plus smaller per-lane instances (cheaper
// relevance index, smaller heaps), and the honest floor is lower — the
// workload measures ~2.5-2.9x lane-parallel with lazy lanes.
func minShardedSpeedup(strat ps.Strategy) float64 {
	lazy := strat == ps.StrategyLazy || strat == ps.StrategyLazySharded
	switch cores := runtime.GOMAXPROCS(0); {
	case cores >= 4:
		if lazy {
			return 2.0
		}
		return 4.0
	case cores >= 2:
		if lazy {
			return 1.8
		}
		return 3.0
	default:
		if lazy {
			return 1.6
		}
		return 2.4
	}
}

// checkBaseline compares a run against bench/<BENCH_name.json>. It
// returns an error string ("" if fine) and whether a baseline existed.
func checkBaseline(res benchResult, baselineDir string) (string, bool) {
	path := filepath.Join(baselineDir, benchFileName(res.Scenario))
	raw, err := os.ReadFile(path)
	if err != nil {
		return "", false
	}
	var base benchResult
	if err := json.Unmarshal(raw, &base); err != nil {
		return fmt.Sprintf("baseline %s unreadable: %v", path, err), true
	}
	if base.SlotMsP50 <= 0 || base.CalibrationMs <= 0 || res.CalibrationMs <= 0 {
		return "", true
	}
	newNorm := res.SlotMsP50 / res.CalibrationMs
	oldNorm := base.SlotMsP50 / base.CalibrationMs
	if newNorm > maxLatencyRegression*oldNorm {
		return fmt.Sprintf("%s: normalized p50 slot latency %.3f is %.2fx the baseline %.3f (limit %.1fx); raw %.2fms vs %.2fms, calibration %.0fms vs %.0fms",
			res.Scenario, newNorm, newNorm/oldNorm, oldNorm, maxLatencyRegression,
			res.SlotMsP50, base.SlotMsP50, res.CalibrationMs, base.CalibrationMs), true
	}
	// Allocations per slot are seed-deterministic, so compare them
	// directly; only when both runs cover the same slot count (a -slots
	// override changes the workload, not the efficiency).
	if base.Allocs > 0 && base.Slots == res.Slots && res.Slots > 0 {
		newPer := float64(res.Allocs) / float64(res.Slots)
		oldPer := float64(base.Allocs) / float64(base.Slots)
		if newPer > maxAllocRegression*oldPer {
			return fmt.Sprintf("%s: %.0f allocations per slot is %.2fx the baseline %.0f (limit %.1fx)",
				res.Scenario, newPer, newPer/oldPer, oldPer, maxAllocRegression), true
		}
	}
	return "", true
}

func benchFileName(scenario string) string {
	return fmt.Sprintf("BENCH_%s.json", scenario)
}

// runScenarioMode is the -scenario entry point; it returns the process
// exit code. shardsFlag > 0 overrides every selected scenario's shard
// count (and disables the sharded-speedup gate, which is pinned to the
// scenarios' declared configurations).
func runScenarioMode(names string, strategy string, slots int, seed int64, shardsFlag int, emitJSON bool, outDir, baselineDir string) int {
	strat, err := ps.ParseStrategy(strategy)
	if err != nil {
		fmt.Fprintln(os.Stderr, "psbench:", err)
		return 2
	}
	var selected []scenario
	var streamSelected []streamScenario
	var overloadSelected []overloadScenario
	if names == "all" {
		// Overload soaks are excluded from "all" on purpose: they gate on
		// boolean degradation properties, not comparable numbers, and a
		// soak's wall time would dominate the sweep. Run them by name.
		selected = scenarios
		streamSelected = streamScenarios
	} else if sc, ok := scenarioByName(names); ok {
		selected = []scenario{sc}
	} else if ssc, ok := streamScenarioByName(names); ok {
		streamSelected = []streamScenario{ssc}
	} else if osc, ok := overloadScenarioByName(names); ok {
		overloadSelected = []overloadScenario{osc}
	} else {
		fmt.Fprintf(os.Stderr, "psbench: unknown scenario %q (have:", names)
		for _, s := range scenarios {
			fmt.Fprintf(os.Stderr, " %s", s.Name)
		}
		for _, s := range streamScenarios {
			fmt.Fprintf(os.Stderr, " %s", s.Name)
		}
		for _, s := range overloadScenarios {
			fmt.Fprintf(os.Stderr, " %s", s.Name)
		}
		fmt.Fprintln(os.Stderr, ", all)")
		return 2
	}

	exit := 0
	for _, sc := range selected {
		start := time.Now()
		scStrat := strat
		if sc.Strategy != "" {
			if scStrat, err = ps.ParseStrategy(sc.Strategy); err != nil {
				fmt.Fprintln(os.Stderr, "psbench:", err)
				return 2
			}
		}
		shards := sc.Shards
		// Cluster scenarios measure loopback-RPC overhead on top of the
		// sharded layer, so the unsharded comparison is informational, not
		// a speedup gate.
		gateSpeedup := sc.Shards > 1 && shardsFlag == 0 && !sc.Cluster
		if shardsFlag > 0 {
			shards = shardsFlag
		}
		var res benchResult
		if shards > 1 {
			// Sharded scenario: run the unsharded configuration first on the
			// same machine so the speedup is a pure work ratio.
			base := runScenario(sc, scStrat, slots, seed, 1)
			res = runScenario(sc, scStrat, slots, seed, shards)
			res.UnshardedP50Ms = base.SlotMsP50
			if res.SlotMsP50 > 0 {
				res.SpeedupP50 = base.SlotMsP50 / res.SlotMsP50
			}
			if res.CriticalPathP50Ms > 0 {
				res.LaneSpeedupP50 = base.SlotMsP50 / res.CriticalPathP50Ms
			}
		} else {
			res = runScenario(sc, scStrat, slots, seed, 1)
		}
		fmt.Printf("== %s (%d sensors, %d slots, %d shard(s), strategy %s) — %s\n",
			res.Scenario, res.Sensors, res.Slots, res.Shards, res.Strategy, sc.Desc)
		fmt.Printf("%-26s p50 %.2fms  p95 %.2fms  max %.2fms  mean %.2fms\n",
			"slot latency:", res.SlotMsP50, res.SlotMsP95, res.SlotMsMax, res.SlotMsMean)
		for _, st := range res.SlotStages {
			fmt.Printf("%-26s p50 %.2fms  p95 %.2fms  max %.2fms\n",
				"  stage "+st.Stage+":", st.P50Ms, st.P95Ms, st.MaxMs)
		}
		if res.stageSumViolation != "" {
			fmt.Fprintf(os.Stderr, "psbench: REGRESSION %s: %s\n", res.Scenario, res.stageSumViolation)
			exit = 1
		}
		fmt.Printf("%-26s %d made, %d exhaustive-equivalent (%d saved)\n",
			"valuation calls:", res.ValuationCalls, res.ExhaustiveEquivCalls, res.ValuationCallsSaved)
		fmt.Printf("%-26s %d reevals, %d violations, %d rescans\n",
			"lazy heap:", res.LazyReevaluations, res.SubmodularityViolations, res.FallbackRescans)
		fmt.Printf("%-26s %d/%d geometry hits, %d posterior appends, %d rebuilds\n",
			"valuation caches:", res.GeomCacheHits, res.GeomCacheLookups, res.PosteriorAppends, res.PosteriorRebuilds)
		fmt.Printf("%-26s %.1f welfare, %.1f cost, %d/%d query-slots answered\n",
			"outcome:", res.Welfare, res.TotalCost, res.Answered, res.Submitted)
		fmt.Printf("%-26s %d allocs, %.1f MB\n",
			"allocations:", res.Allocs, float64(res.AllocBytes)/(1<<20))
		if res.SpeedupP50 > 0 {
			fmt.Printf("%-26s %.2fx p50 vs unsharded (%.2fms -> %.2fms)\n",
				"sharded speedup:", res.SpeedupP50, res.UnshardedP50Ms, res.SlotMsP50)
			gated := res.SpeedupP50
			if res.LaneSpeedupP50 > 0 {
				fmt.Printf("%-26s %.2fx lane-parallel (critical path %.2fms p50 / %.2fms p95)\n",
					"", res.LaneSpeedupP50, res.CriticalPathP50Ms, res.CriticalPathP95Ms)
				gated = math.Max(gated, res.LaneSpeedupP50)
			}
			if want := minShardedSpeedup(scStrat); gateSpeedup && gated < want {
				fmt.Fprintf(os.Stderr, "psbench: REGRESSION %s: sharded p50 speedup %.2fx below the required %.1fx (%d CPUs, strategy %s)\n",
					res.Scenario, gated, want, runtime.GOMAXPROCS(0), res.Strategy)
				exit = 1
			}
		}
		if sc.TargetP50Ms > 0 && res.CalibrationMs > 0 {
			res.TargetP50Ms = sc.TargetP50Ms
			gatedP50 := res.SlotMsP50
			if res.CriticalPathP50Ms > 0 {
				// The budget targets the deployment configuration (a core
				// per shard lane); the critical path is that figure however
				// many cores this runner has.
				gatedP50 = res.CriticalPathP50Ms
			}
			res.NormalizedP50Ms = gatedP50 * (targetRefCalibrationMs / res.CalibrationMs)
			fmt.Printf("%-26s %.2fms normalized p50 against a %.0fms budget (raw %.2fms, calibration %.0fms)\n",
				"latency budget:", res.NormalizedP50Ms, res.TargetP50Ms, gatedP50, res.CalibrationMs)
			// Overridden slot counts, seeds or shard layouts change the
			// workload the budget was set for, so the gate only fires on the
			// declared configuration.
			if shardsFlag == 0 && slots <= 0 && seed == 0 && res.NormalizedP50Ms > res.TargetP50Ms {
				fmt.Fprintf(os.Stderr, "psbench: REGRESSION %s: normalized p50 %.2fms exceeds the %.0fms budget\n",
					res.Scenario, res.NormalizedP50Ms, res.TargetP50Ms)
				exit = 1
			}
		}

		if emitJSON {
			if err := os.MkdirAll(outDir, 0o755); err != nil {
				fmt.Fprintln(os.Stderr, "psbench:", err)
				return 1
			}
			path := filepath.Join(outDir, benchFileName(res.Scenario))
			buf, err := json.MarshalIndent(res, "", "  ")
			if err != nil {
				fmt.Fprintln(os.Stderr, "psbench:", err)
				return 1
			}
			if err := os.WriteFile(path, append(buf, '\n'), 0o644); err != nil {
				fmt.Fprintln(os.Stderr, "psbench:", err)
				return 1
			}
			fmt.Printf("%-26s %s\n", "json:", path)
		}
		if baselineDir != "" {
			msg, found := checkBaseline(res, baselineDir)
			switch {
			case msg != "":
				fmt.Fprintf(os.Stderr, "psbench: REGRESSION %s\n", msg)
				exit = 1
			case !found:
				fmt.Printf("%-26s none for %s (skipped)\n", "baseline:", res.Scenario)
			default:
				fmt.Printf("%-26s ok (within %.1fx of %s)\n", "baseline:",
					maxLatencyRegression, filepath.Join(baselineDir, benchFileName(res.Scenario)))
			}
		}
		fmt.Printf("-- %s done in %v\n\n", res.Scenario, time.Since(start).Round(time.Millisecond))
	}
	// Streaming scenarios gate on absolute push-delivery properties
	// (zero polls, p95 within one slot), not on a latency baseline, so
	// -baseline does not apply to them.
	for _, ssc := range streamSelected {
		if code := runStreamScenarioMode(ssc, 0, emitJSON, outDir); code != 0 {
			exit = code
		}
	}
	// Overload soaks likewise gate on absolute degradation invariants;
	// -slots shortens the soak for the reduced-scale CI configuration.
	for _, osc := range overloadSelected {
		if code := runOverloadScenarioMode(osc, slots, emitJSON, outDir); code != 0 {
			exit = code
		}
	}
	return exit
}
