package main

// The overload-soak scenario: the degradation benchmark. Where
// streaming-fanout proves the happy path (everything admitted, every
// frame on time), this scenario proves the unhappy one: a fleet of
// clients offers roughly twice the admitted capacity against a
// deliberately small shed-oldest ingest queue, behind the chaos
// middleware injecting delays, 503s and mid-stream watch drops. The
// gates are about *graceful* failure, not throughput: the run must not
// deadlock, memory must stay bounded, every layer of the degradation
// ladder (per-client rate limiting, queue high-water 429s, engine
// shed-oldest) must actually fire and be visible in /metrics, and —
// the accounting gate — every single accepted query must still reach a
// terminal frame with cursor-exact slot coverage, shed queries included.
//
// The scenario is intentionally NOT part of "-scenario all": it is a
// soak, its numbers are not comparable run-to-run, and its gates are
// booleans. Run it by name; -slots overrides the soak length for the
// reduced-scale CI configuration.

import (
	"errors"
	"fmt"
	"math"
	"net/http"
	"net/http/httptest"
	"os"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"context"
	"encoding/json"
	"path/filepath"

	ps "repro"
	"repro/internal/rng"
	"repro/psclient"
	"repro/serve"
	"repro/wire"
)

// overloadScenario is one named overload workload.
type overloadScenario struct {
	Name     string
	Desc     string
	Seed     int64
	Sensors  int
	Interval time.Duration // slot interval
	Slots    int           // soak length in slots (-slots overrides)
	// Offered load: every Interval each of Clients bursts
	// PerClientPerSlot point submissions simultaneously.
	Clients          int
	PerClientPerSlot int
	// Admission configuration. RateLimit is set to about half the
	// per-client offered rate, making the offered load ~2x what
	// admission control will pass.
	RateLimit float64
	RateBurst int
	Queue     int     // deliberately small ingest queue (shed-oldest)
	HighWater float64 // queue-depth admission threshold
	// Background continuous queries that keep slot execution busy so
	// submission bursts genuinely race a occupied loop.
	Continuous int
	Watchers   int // concurrent watcher goroutines draining streams
	Chaos      serve.ChaosConfig
}

var overloadScenarios = []overloadScenario{
	{
		Name: "overload-soak",
		Desc: "16 clients offer 2x their admitted rate against an 8-slot shed-oldest queue under chaos (delays, 503s, stream drops); gates: no deadlock, bounded memory, sheds+rejects visible in /metrics, exact accounting for every accepted query",
		Seed: 23, Sensors: 3000,
		Interval: 50 * time.Millisecond, Slots: 120,
		Clients: 16, PerClientPerSlot: 6,
		RateLimit: 60, RateBurst: 6,
		Queue: 8, HighWater: 0.75,
		Continuous: 400, Watchers: 48,
		Chaos: serve.ChaosConfig{
			Seed:      23,
			DelayProb: 0.05, DelayMin: time.Millisecond, DelayMax: 4 * time.Millisecond,
			ErrorProb: 0.03,
			DropProb:  0.2, DropAfterMin: 3, DropAfterMax: 9,
		},
	},
}

func overloadScenarioByName(name string) (overloadScenario, bool) {
	for _, sc := range overloadScenarios {
		if sc.Name == name {
			return sc, true
		}
	}
	return overloadScenario{}, false
}

// overloadBenchResult is the machine-readable record of one overload
// soak (BENCH_<scenario>.json). The absolute counts are machine- and
// timing-dependent; the invariants the gates check are not.
type overloadBenchResult struct {
	Scenario       string  `json:"scenario"`
	Description    string  `json:"description"`
	Seed           int64   `json:"seed"`
	Sensors        int     `json:"sensors"`
	Clients        int     `json:"clients"`
	Slots          int     `json:"slots"`
	SlotIntervalMs float64 `json:"slot_interval_ms"`
	// Offered-load accounting from the submitting clients' view.
	Offered          int64 `json:"offered"`
	Accepted         int64 `json:"accepted"`
	RateLimited429   int64 `json:"rate_limited_429"`
	QueuePressure429 int64 `json:"queue_pressure_429"`
	ChaosRejected    int64 `json:"chaos_rejected"`
	// Stream-side accounting: every accepted query ends in exactly one
	// of these two buckets.
	FinalsObserved int64 `json:"finals_observed"`
	ShedObserved   int64 `json:"shed_observed"`
	// Engine- and metrics-side accounting the observed counts must match.
	EngineShed       int64              `json:"engine_shed"`
	EngineSubmitted  int64              `json:"engine_submitted"`
	AdmissionRejects map[string]float64 `json:"admission_rejects"`
	PrometheusShed   float64            `json:"prometheus_shed"`
	Reconnects       int64              `json:"reconnects"`
	GapFrames        int64              `json:"gap_frames"`
	Welfare          float64            `json:"welfare"`
	SlotMsAvg        float64            `json:"slot_ms_avg"`
	EngineSlots      int                `json:"engine_slots"`
	HeapGrowthMB     float64            `json:"heap_growth_mb"`
	WallS            float64            `json:"wall_s"`
	GoVersion        string             `json:"go_version"`
}

// runOverloadScenario executes one overload soak and returns its record
// plus the exit code contribution (0 ok, 1 gate failed).
func runOverloadScenario(sc overloadScenario, slotsOverride int) (overloadBenchResult, int) {
	slots := sc.Slots
	if slotsOverride > 0 {
		slots = slotsOverride
	}
	var before runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)

	world := ps.NewRWMWorld(sc.Seed, sc.Sensors, ps.SensorConfig{})
	// The exact point policy (the paper's BILP) is the right engine here:
	// its per-slot cost grows superlinearly with demand, so a fleet
	// offering 2x capacity genuinely occupies the loop and submission
	// bursts race a busy queue instead of an idle drain.
	eng := ps.NewEngine(
		ps.NewAggregator(world),
		ps.WithSlotInterval(sc.Interval),
		ps.WithQueueSize(sc.Queue),
		ps.WithShedOldest(),
	)
	eng.Start()
	api := serve.New(eng, world, serve.Options{
		Strategy:  ps.StrategyAuto,
		RateLimit: sc.RateLimit,
		RateBurst: sc.RateBurst,
		HighWater: sc.HighWater,
	})
	inner := api.Handler()
	ts := httptest.NewServer(serve.Chaos(inner, sc.Chaos))
	defer func() {
		ts.Close()
		eng.Stop()
	}()

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Minute)
	defer cancel()
	var (
		failMu  sync.Mutex
		failMsg string
	)
	fail := func(format string, args ...any) {
		failMu.Lock()
		if failMsg == "" {
			failMsg = fmt.Sprintf(format, args...)
		}
		failMu.Unlock()
		cancel()
	}

	// Background continuous queries: admitted while the engine is idle,
	// they give every slot real selection work for the whole soak. The
	// background fleet spreads its submissions over many client IDs, each
	// staying inside its burst: it is scenery, not the load under test,
	// and must not spend the soak blocked on its own Retry-After hints.
	httpc := &http.Client{}
	bgDial := func(i int) (*psclient.Client, error) {
		return psclient.Dial(ts.URL, psclient.WithRetry(6, 5*time.Millisecond),
			psclient.WithHTTPClient(httpc),
			psclient.WithClientID(fmt.Sprintf("background-%02d", i)))
	}
	rnd := rng.New(sc.Seed, "psbench-"+sc.Name)
	wk := world.Working
	offeredTotal := sc.Clients * sc.PerClientPerSlot * slots
	ids := make(chan string, offeredTotal+sc.Continuous)
	bgPerClient := max(1, sc.RateBurst)
	for i := 0; i < sc.Continuous; i++ {
		bg, err := bgDial(i / bgPerClient)
		if err != nil {
			fmt.Fprintln(os.Stderr, "psbench:", err)
			return overloadBenchResult{}, 1
		}
		q, err := bg.Submit(ctx, ps.LocationMonitoringSpec{
			ID:  fmt.Sprintf("os-bg-%d", i),
			Loc: ps.Pt(rnd.Uniform(wk.MinX, wk.MaxX), rnd.Uniform(wk.MinY, wk.MaxY)),
			// Continuous work spans the soak and ends with it, so the
			// watcher drain below also observes these finals.
			Duration: slots, Budget: 500, Samples: 3,
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, "psbench: overload background submit:", err)
			return overloadBenchResult{}, 1
		}
		ids <- q.ID
	}

	var (
		offered, accepted, rateRejects, queueRejects, chaosRejects atomic.Int64
		finals, sheds, reconnects                                  atomic.Int64
	)

	// Watcher pool: drains every accepted query's event stream to its
	// terminal frame through the chaos middleware, verifying cursor-exact
	// coverage on finals and a clean shed verdict on evictions.
	wc, err := psclient.Dial(ts.URL, psclient.WithRetry(10, 2*time.Millisecond),
		psclient.WithClientID("watchers"),
		psclient.WithHTTPClient(&http.Client{Transport: &http.Transport{
			MaxIdleConns:        sc.Watchers,
			MaxIdleConnsPerHost: sc.Watchers,
		}}))
	if err != nil {
		fmt.Fprintln(os.Stderr, "psbench:", err)
		return overloadBenchResult{}, 1
	}
	var watchers sync.WaitGroup
	for w := 0; w < sc.Watchers; w++ {
		watchers.Add(1)
		go func() {
			defer watchers.Done()
			for id := range ids {
				if !watchOne(ctx, wc, id, &finals, &sheds, &reconnects, fail) {
					return
				}
			}
		}()
	}

	// Load fleet: every client bursts its whole per-slot allotment at
	// each wave, simultaneously with every other client — worst-case
	// contention on the admission checks and the tiny ingest queue. The
	// coordinator delays each wave by a random phase within the interval
	// so bursts sample the engine's busy windows too, not just whatever
	// fixed alignment the tickers happened to start with: a burst landing
	// mid-slot races a loop that cannot drain, which is exactly the
	// condition that drives the queue past high-water and into shedding.
	start := time.Now()
	waves := make([]chan int, sc.Clients)
	for c := range waves {
		waves[c] = make(chan int, 1)
	}
	go func() {
		wrnd := rng.New(sc.Seed, "overload-phase")
		tick := time.NewTicker(sc.Interval)
		defer tick.Stop()
		for s := 0; s < slots; s++ {
			select {
			case <-tick.C:
			case <-ctx.Done():
				break
			}
			phase := time.Duration(wrnd.Uniform(0, 0.8*float64(sc.Interval)))
			select {
			case <-time.After(phase):
			case <-ctx.Done():
			}
			for _, ch := range waves {
				select {
				case ch <- s:
				default: // client still busy with the last wave: skip it
				}
			}
		}
		for _, ch := range waves {
			close(ch)
		}
	}()
	var fleet sync.WaitGroup
	for c := 0; c < sc.Clients; c++ {
		fleet.Add(1)
		go func(c int) {
			defer fleet.Done()
			cl, err := psclient.Dial(ts.URL, psclient.WithRetry(0, time.Millisecond),
				psclient.WithClientID(fmt.Sprintf("load-%02d", c)))
			if err != nil {
				fail("dial load client: %v", err)
				return
			}
			crnd := rng.New(sc.Seed, fmt.Sprintf("overload-load-%d", c))
			for s := range waves[c] {
				// The whole allotment goes up as one batch: admission
				// charges and checks the batch as a unit, so an admitted
				// batch's specs enqueue back-to-back — the arrival pattern
				// that can legitimately push the ingest queue past its
				// high-water headroom and into engine-level shedding.
				specs := make([]ps.Spec, 0, sc.PerClientPerSlot)
				for i := 0; i < sc.PerClientPerSlot; i++ {
					specs = append(specs, ps.PointSpec{
						ID:     fmt.Sprintf("os-%d-%d-%d", c, s, i),
						Loc:    ps.Pt(crnd.Uniform(wk.MinX, wk.MaxX), crnd.Uniform(wk.MinY, wk.MaxY)),
						Budget: 8 + crnd.Uniform(0, 10),
					})
				}
				offered.Add(int64(len(specs)))
				verdicts, err := cl.SubmitBatch(ctx, specs)
				if err == nil {
					for _, v := range verdicts {
						switch {
						case v.Status == "accepted":
							accepted.Add(1)
							ids <- v.ID
						case v.Code == wire.CodeQueueFull || v.Code == wire.CodeShed:
							queueRejects.Add(1)
						default:
							fail("batch verdict %s: %s (%s)", v.ID, v.Error, v.Code)
							return
						}
					}
					continue
				}
				n := int64(len(specs))
				var apiErr *psclient.APIError
				switch {
				case errors.As(err, &apiErr) && apiErr.StatusCode == http.StatusTooManyRequests && apiErr.Code == wire.CodeRateLimited:
					rateRejects.Add(n)
				case errors.As(err, &apiErr) && apiErr.StatusCode == http.StatusTooManyRequests:
					queueRejects.Add(n) // high-water or engine queue_full
				case errors.As(err, &apiErr) && apiErr.Code == "chaos_injected":
					chaosRejects.Add(n)
				case ctx.Err() != nil:
					return
				default:
					fail("batch os-%d-%d: %v", c, s, err)
					return
				}
			}
		}(c)
	}
	fleet.Wait()
	close(ids)
	watchers.Wait()
	wall := time.Since(start)

	failMu.Lock()
	msg := failMsg
	failMu.Unlock()
	if msg != "" {
		fmt.Fprintln(os.Stderr, "psbench: overload soak:", msg)
		return overloadBenchResult{}, 1
	}

	// Scrape the admission counters from the Prometheus exposition via
	// the inner (chaos-free) handler: the scrape itself must not flake.
	prom := scrapePrometheus(inner)
	admission := map[string]float64{}
	for name, v := range prom {
		if reason, ok := strings.CutPrefix(name, `ps_admission_rejects_total{reason="`); ok {
			admission[strings.TrimSuffix(reason, `"}`)] = v
		}
	}

	var after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&after)
	heapGrowth := float64(after.HeapAlloc) - float64(before.HeapAlloc)

	m := eng.Metrics()
	res := overloadBenchResult{
		Scenario:         sc.Name,
		Description:      sc.Desc,
		Seed:             sc.Seed,
		Sensors:          sc.Sensors,
		Clients:          sc.Clients,
		Slots:            slots,
		SlotIntervalMs:   float64(sc.Interval.Nanoseconds()) / 1e6,
		Offered:          offered.Load(),
		Accepted:         accepted.Load() + int64(sc.Continuous),
		RateLimited429:   rateRejects.Load(),
		QueuePressure429: queueRejects.Load(),
		ChaosRejected:    chaosRejects.Load(),
		FinalsObserved:   finals.Load(),
		ShedObserved:     sheds.Load(),
		EngineShed:       m.QueriesShed,
		EngineSubmitted:  m.QueriesSubmitted,
		AdmissionRejects: admission,
		PrometheusShed:   prom["ps_shed_total"],
		Reconnects:       reconnects.Load(),
		GapFrames:        m.GapEvents,
		Welfare:          m.TotalWelfare,
		SlotMsAvg:        float64(m.SlotLatencyAvg.Nanoseconds()) / 1e6,
		EngineSlots:      m.Slots,
		HeapGrowthMB:     heapGrowth / (1 << 20),
		WallS:            wall.Seconds(),
		GoVersion:        runtime.Version(),
	}

	exit := 0
	gate := func(ok bool, format string, args ...any) {
		if !ok {
			fmt.Fprintf(os.Stderr, "psbench: REGRESSION %s: %s\n", sc.Name, fmt.Sprintf(format, args...))
			exit = 1
		}
	}
	// Accounting exactness: every accepted query reached a terminal
	// frame, and the client-observed shed verdicts equal the engine's own
	// shed count equals the /metrics counter — a shed never corrupts
	// accounting or strands a watcher.
	gate(res.FinalsObserved+res.ShedObserved == res.Accepted,
		"%d finals + %d sheds observed != %d accepted queries", res.FinalsObserved, res.ShedObserved, res.Accepted)
	gate(res.ShedObserved == res.EngineShed,
		"watchers observed %d shed verdicts but the engine shed %d", res.ShedObserved, res.EngineShed)
	gate(res.PrometheusShed == float64(res.EngineShed),
		"ps_shed_total %.0f != engine QueriesShed %d", res.PrometheusShed, res.EngineShed)
	// Every rung of the degradation ladder fired.
	gate(res.EngineShed > 0, "no submissions shed: the soak never pressured the ingest queue")
	gate(res.RateLimited429 > 0, "no rate_limited 429s: offered load never exceeded the per-client limit")
	gate(admission["rate_limit"] > 0, "ps_admission_rejects_total{reason=rate_limit} = %v, want > 0", admission["rate_limit"])
	gate(res.Reconnects > 0, "chaos drops forced no stream reconnects")
	// Welfare degrades smoothly: still a finite, sane number.
	gate(!math.IsNaN(res.Welfare) && !math.IsInf(res.Welfare, 0) && res.Welfare >= 0,
		"welfare %v is not a sane finite value", res.Welfare)
	// Bounded memory: soaking at 2x load must not accumulate state.
	gate(res.HeapGrowthMB < 256, "heap grew %.1f MB over the soak", res.HeapGrowthMB)
	return res, exit
}

// watchOne follows one query's stream to its terminal frame, verifying
// cursor-exact coverage for finals and accepting only a shed verdict for
// cancellations. Returns false when the watcher should stop.
func watchOne(ctx context.Context, wc *psclient.Client, id string, finals, sheds, reconnects *atomic.Int64, fail func(string, ...any)) bool {
	st := wc.Stream(id)
	defer func() {
		reconnects.Add(st.Stats().Reconnects)
		st.Close()
	}()
	var start, end int
	var windowKnown bool
	covered := map[int]int{}
	for {
		ev, err := st.Next(ctx)
		if err != nil {
			fail("watch %s: %v", id, err)
			return false
		}
		switch ev.Event {
		case wire.FrameAccepted:
			start, end, windowKnown = ev.Start, ev.End, true
		case wire.FrameSlotUpdate:
			covered[ev.Slot]++
		case wire.FrameGap:
			for s := ev.From; s <= ev.To; s++ {
				covered[s]++
			}
		case wire.FrameCanceled:
			if ev.Code != wire.CodeShed {
				fail("watch %s: canceled with code %q, want only shed cancellations", id, ev.Code)
				return false
			}
			sheds.Add(1)
			return true
		case wire.FrameFinal:
			if !windowKnown {
				fail("watch %s: final without an accepted frame", id)
				return false
			}
			for s := start; s <= end; s++ {
				if covered[s] != 1 {
					fail("watch %s: slot %d covered %d times, want exactly once", id, s, covered[s])
					return false
				}
			}
			for s := range covered {
				if s < start || s > end {
					fail("watch %s: slot %d outside window [%d,%d]", id, s, start, end)
					return false
				}
			}
			finals.Add(1)
			return true
		default:
			if ev.Terminal() {
				fail("watch %s: unexpected terminal %s (%s)", id, ev.Event, ev.Error)
				return false
			}
		}
	}
}

// scrapePrometheus renders the exposition through the given handler and
// returns every sample keyed by its full series name (labels included).
func scrapePrometheus(h http.Handler) map[string]float64 {
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/metrics?format=prometheus", nil))
	out := map[string]float64{}
	for _, line := range strings.Split(rec.Body.String(), "\n") {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		i := strings.LastIndexByte(line, ' ')
		if i <= 0 {
			continue
		}
		if v, err := strconv.ParseFloat(line[i+1:], 64); err == nil {
			out[line[:i]] = v
		}
	}
	return out
}

// runOverloadScenarioMode prints, records and gates one overload
// scenario; it mirrors runStreamScenarioMode's contract.
func runOverloadScenarioMode(sc overloadScenario, slotsOverride int, emitJSON bool, outDir string) int {
	start := time.Now()
	res, exit := runOverloadScenario(sc, slotsOverride)
	if res.Scenario == "" {
		return 1
	}
	fmt.Printf("== %s (%d sensors, %v slots x %d, %d clients) — %s\n",
		res.Scenario, res.Sensors, sc.Interval, res.Slots, res.Clients, sc.Desc)
	fmt.Printf("%-26s %d offered, %d accepted, %d rate-limited, %d queue-pressure 429s, %d chaos 503s\n",
		"admission:", res.Offered, res.Accepted, res.RateLimited429, res.QueuePressure429, res.ChaosRejected)
	fmt.Printf("%-26s %d finals + %d sheds observed (engine shed %d, submitted %d)\n",
		"terminals:", res.FinalsObserved, res.ShedObserved, res.EngineShed, res.EngineSubmitted)
	fmt.Printf("%-26s rejects %v, ps_shed_total %.0f, %d reconnects, %d gap frames\n",
		"observability:", res.AdmissionRejects, res.PrometheusShed, res.Reconnects, res.GapFrames)
	fmt.Printf("%-26s welfare %.1f, slot avg %.2fms over %d slots, heap +%.1f MB\n",
		"degradation:", res.Welfare, res.SlotMsAvg, res.EngineSlots, res.HeapGrowthMB)
	fmt.Printf("%-26s %.1fs wall\n", "duration:", res.WallS)

	if emitJSON {
		if err := os.MkdirAll(outDir, 0o755); err != nil {
			fmt.Fprintln(os.Stderr, "psbench:", err)
			return 1
		}
		path := filepath.Join(outDir, benchFileName(res.Scenario))
		buf, err := json.MarshalIndent(res, "", "  ")
		if err != nil {
			fmt.Fprintln(os.Stderr, "psbench:", err)
			return 1
		}
		if err := os.WriteFile(path, append(buf, '\n'), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "psbench:", err)
			return 1
		}
		fmt.Printf("%-26s %s\n", "json:", path)
	}
	fmt.Printf("-- %s done in %v\n\n", res.Scenario, time.Since(start).Round(time.Millisecond))
	return exit
}
