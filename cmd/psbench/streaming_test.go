package main

import (
	"testing"
	"time"
)

// TestStreamingFanoutReducedScale runs the push-delivery scenario at a
// fraction of its benchmark size — the same full stack (engine hub,
// serve /watch, psclient streams over real HTTP, real slot clock) with
// the same gates: every query observed to its final frame, zero poll
// requests, p95 delivery within one slot. The full 10k/1k configuration
// runs in CI's bench job via `psbench -scenario streaming-fanout`.
func TestStreamingFanoutReducedScale(t *testing.T) {
	if testing.Short() {
		t.Skip("real-clock streaming run; covered at full scale by the bench job")
	}
	sc, ok := streamScenarioByName("streaming-fanout")
	if !ok {
		t.Fatal("streaming-fanout scenario missing")
	}
	sc.Watchers = 100
	sc.Interval = 50 * time.Millisecond
	res, exit := runStreamScenario(sc, 1000)
	if exit != 0 {
		t.Fatalf("gates failed: %+v", res)
	}
	if res.FinalsObserved != 1000 {
		t.Fatalf("finals = %d, want 1000", res.FinalsObserved)
	}
	if res.PollRequests != 0 {
		t.Fatalf("poll requests = %d, want 0", res.PollRequests)
	}
	if res.DeliveryMsP95 > res.SlotIntervalMs {
		t.Fatalf("p95 delivery %.2fms exceeds one slot (%.0fms)", res.DeliveryMsP95, res.SlotIntervalMs)
	}
	if res.DeliverySamples == 0 || res.WatchRequests < 1000 {
		t.Fatalf("stream accounting looks wrong: %+v", res)
	}
}
