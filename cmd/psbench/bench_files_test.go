package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestBenchFilesStageTimings validates every checked-in BENCH JSON of a
// slot scenario: the slot-stage breakdown is present, names are known
// pipeline stages, and the per-stage mean timings sum to no more than
// the recorded mean slot latency — the stages are sub-intervals of the
// measured RunSlot window, and the mean is linear, so a violation means
// the trace double-counts. (Streaming scenarios use a different record
// schema and are skipped.)
func TestBenchFilesStageTimings(t *testing.T) {
	dir := filepath.Join("..", "..", "bench")
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("read bench dir: %v", err)
	}
	checked := 0
	for _, e := range entries {
		name := e.Name()
		if !strings.HasPrefix(name, "BENCH_") || !strings.HasSuffix(name, ".json") {
			continue
		}
		raw, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			t.Fatalf("read %s: %v", name, err)
		}
		var res benchResult
		if err := json.Unmarshal(raw, &res); err != nil {
			t.Fatalf("parse %s: %v", name, err)
		}
		if _, ok := scenarioByName(res.Scenario); !ok {
			continue // streaming scenario record
		}
		checked++
		if len(res.SlotStages) == 0 {
			t.Errorf("%s: no slot_stages breakdown", name)
			continue
		}
		var sum float64
		for _, st := range res.SlotStages {
			if st.Stage == "" {
				t.Errorf("%s: unnamed stage entry %+v", name, st)
			}
			if st.P50Ms < 0 || st.P95Ms < st.P50Ms || st.MaxMs < st.P95Ms || st.MeanMs < 0 {
				t.Errorf("%s: stage %q has inconsistent percentiles: %+v", name, st.Stage, st)
			}
			sum += st.MeanMs
		}
		if limit := res.SlotMsMean + stageSumSlack(res.SlotMsMean); sum > limit {
			t.Errorf("%s: stage mean timings sum to %.3fms, exceeding mean slot latency %.3fms (+slack)",
				name, sum, res.SlotMsMean)
		}
	}
	if checked == 0 {
		t.Fatal("no slot-scenario BENCH files found")
	}
}
