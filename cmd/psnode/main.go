// Command psnode runs one cluster shard node: a config-free TCP server
// speaking the cluster NDJSON frames in package wire. The node builds its
// deterministic world replica when a coordinator says hello, so the only
// deployment inputs are where to listen and what to call itself in
// membership facts.
//
// Example (one shard of a 2-node loopback cluster):
//
//	psnode -listen 127.0.0.1:9101 -name node0 &
//	psnode -listen 127.0.0.1:9102 -name node1 &
//	psserve -shards 2 -node-addrs 127.0.0.1:9101,127.0.0.1:9102
package main

import (
	"flag"
	"log"
	"net"
	"os"
	"os/signal"
	"syscall"

	"repro/cluster"
)

func main() {
	var (
		listen = flag.String("listen", "127.0.0.1:9101", "TCP listen address for coordinator connections")
		name   = flag.String("name", "", "node name in membership facts (default: the listen address)")
	)
	flag.Parse()

	nodeName := *name
	if nodeName == "" {
		nodeName = *listen
	}
	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		log.Fatalf("psnode: %v", err)
	}
	node := cluster.NewNodeServer(nodeName)

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	go func() {
		<-stop
		log.Printf("psnode %s: shutting down", nodeName)
		node.Close()
	}()

	log.Printf("psnode %s: listening on %s", nodeName, ln.Addr())
	if err := node.Serve(ln); err != nil {
		log.Fatalf("psnode: %v", err)
	}
}
