// Command psserve runs the streaming engine as a long-lived HTTP daemon:
// a simulated participatory-sensing world advances one time slot per
// tick, and clients submit queries and poll their per-slot results.
//
// Endpoints:
//
//	POST   /query        submit a query (JSON body, see queryRequest)
//	GET    /query/{id}   status + accumulated per-slot results
//	DELETE /query/{id}   cancel a pending or continuous query
//	GET    /metrics      engine-wide metrics snapshot (incl. valuation-
//	                     call and lazy-heap counters of the greedy core)
//	GET    /strategy     current candidate-evaluation strategy
//	POST   /strategy     switch it at runtime ({"strategy":"lazy"})
//	GET    /healthz      liveness + current slot
//
// Example:
//
//	psserve -addr :8080 -world rwm -sensors 200 -interval 1s -strategy lazy
//	curl -s -X POST localhost:8080/query -d \
//	  '{"type":"point","loc":{"x":30,"y":30},"budget":15}'
//	curl -s localhost:8080/query/q1
//	curl -s -X POST localhost:8080/strategy -d '{"strategy":"lazy-sharded"}'
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	ps "repro"
)

func main() {
	var (
		addr     = flag.String("addr", ":8080", "listen address")
		world    = flag.String("world", "rwm", "world: rwm, rnc or intellab")
		sensors  = flag.Int("sensors", 200, "sensor count (rwm world only)")
		seed     = flag.Int64("seed", 1, "world seed")
		interval = flag.Duration("interval", time.Second, "slot clock interval")
		sched    = flag.String("sched", "optimal", "scheduling: optimal, localsearch, baseline, egalitarian or greedy")
		strategy = flag.String("strategy", "auto", "greedy selection strategy: auto, serial, sharded, lazy or lazy-sharded")
		queue    = flag.Int("queue", 1024, "ingest queue size")
		drain    = flag.Int("drain", 64, "max slots run at shutdown to drain continuous queries")
		retain   = flag.Duration("retain", 10*time.Minute, "how long finished query records stay pollable")
	)
	flag.Parse()

	w, err := buildWorld(*world, *seed, *sensors)
	if err != nil {
		fmt.Fprintln(os.Stderr, "psserve:", err)
		os.Exit(2)
	}
	policy, err := parseScheduling(*sched)
	if err != nil {
		fmt.Fprintln(os.Stderr, "psserve:", err)
		os.Exit(2)
	}
	strat, err := ps.ParseStrategy(*strategy)
	if err != nil {
		fmt.Fprintln(os.Stderr, "psserve:", err)
		os.Exit(2)
	}

	eng := ps.NewEngine(
		ps.NewAggregator(w, ps.WithScheduling(policy), ps.WithGreedyStrategy(strat)),
		ps.WithSlotInterval(*interval),
		ps.WithQueueSize(*queue),
		ps.WithDrainSlots(*drain),
	)
	eng.Start()

	srv := &http.Server{Addr: *addr, Handler: newServer(eng, w, *retain, strat).handler()}
	go func() {
		log.Printf("psserve: serving %s world (%d sensors) on %s, slot every %v, strategy %s",
			*world, *sensors, *addr, *interval, strat)
		if err := srv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
			log.Fatalf("psserve: %v", err)
		}
	}()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	log.Print("psserve: shutting down")
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	if err := srv.Shutdown(ctx); err != nil {
		_ = srv.Close()
	}
	cancel()
	eng.Stop()
}

func buildWorld(kind string, seed int64, sensors int) (*ps.World, error) {
	switch strings.ToLower(kind) {
	case "rwm":
		return ps.NewRWMWorld(seed, sensors, ps.SensorConfig{}), nil
	case "rnc":
		return ps.NewRNCWorld(seed, ps.SensorConfig{}), nil
	case "intellab":
		return ps.NewIntelLabWorld(seed, ps.SensorConfig{}), nil
	default:
		return nil, fmt.Errorf("unknown world %q (want rwm, rnc or intellab)", kind)
	}
}

func parseScheduling(s string) (ps.Scheduling, error) {
	switch strings.ToLower(s) {
	case "optimal":
		return ps.SchedulingOptimal, nil
	case "localsearch":
		return ps.SchedulingLocalSearch, nil
	case "baseline":
		return ps.SchedulingBaseline, nil
	case "egalitarian":
		return ps.SchedulingEgalitarian, nil
	case "greedy":
		return ps.SchedulingGreedy, nil
	default:
		return 0, fmt.Errorf("unknown scheduling %q", s)
	}
}

// server owns the HTTP-side query registry. Each accepted query gets a
// consumer goroutine moving results from its subscription into the
// registry, so slow or absent HTTP pollers never block the slot clock.
// Finished records stay pollable for `retain`, then are evicted by an
// amortized sweep on the submit path — the registry stays bounded on a
// long-lived daemon.
type server struct {
	eng    *ps.Engine
	world  *ps.World
	retain time.Duration
	autoID atomic.Int64
	// strategy mirrors the engine's configured selection strategy for
	// display; writes go through POST /strategy.
	strategy atomic.Int32

	mu      sync.Mutex
	queries map[string]*queryRecord
	submits int
}

// sweepEvery is how many submissions pass between eviction sweeps.
const sweepEvery = 256

// maxResultsPerQuery caps the per-record result history of long-lived
// continuous queries; older entries are discarded and counted.
const maxResultsPerQuery = 1024

func newServer(eng *ps.Engine, world *ps.World, retain time.Duration, strat ps.Strategy) *server {
	s := &server{eng: eng, world: world, retain: retain, queries: make(map[string]*queryRecord)}
	s.strategy.Store(int32(strat))
	return s
}

// sweepLocked evicts finished records past the retention window. Caller
// holds s.mu.
func (s *server) sweepLocked() {
	cutoff := time.Now().Add(-s.retain)
	for id, rec := range s.queries {
		rec.mu.Lock()
		expired := rec.done && rec.doneAt.Before(cutoff)
		rec.mu.Unlock()
		if expired {
			delete(s.queries, id)
		}
	}
}

func (s *server) handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /query", s.handleSubmit)
	mux.HandleFunc("GET /query/{id}", s.handleGet)
	mux.HandleFunc("DELETE /query/{id}", s.handleCancel)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("GET /strategy", s.handleGetStrategy)
	mux.HandleFunc("POST /strategy", s.handleSetStrategy)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	return mux
}

// queryRequest is the JSON codec for POST /query. Type selects the query
// kind; the other fields are read as that kind requires.
type queryRequest struct {
	Type string `json:"type"` // point, multipoint, aggregate, trajectory, locmon, regmon, event, regionevent
	ID   string `json:"id,omitempty"`

	Loc    *xyJSON  `json:"loc,omitempty"`
	Region *boxJSON `json:"region,omitempty"`
	Path   []xyJSON `json:"path,omitempty"`

	Budget        float64 `json:"budget,omitempty"`
	BudgetPerSlot float64 `json:"budget_per_slot,omitempty"`
	K             int     `json:"k,omitempty"`
	Duration      int     `json:"duration,omitempty"`
	Samples       int     `json:"samples,omitempty"`
	Threshold     float64 `json:"threshold,omitempty"`
	Confidence    float64 `json:"confidence,omitempty"`
}

type xyJSON struct {
	X float64 `json:"x"`
	Y float64 `json:"y"`
}

type boxJSON struct {
	X0 float64 `json:"x0"`
	Y0 float64 `json:"y0"`
	X1 float64 `json:"x1"`
	Y1 float64 `json:"y1"`
}

type eventJSON struct {
	Slot       int     `json:"slot"`
	Detected   bool    `json:"detected"`
	Confidence float64 `json:"confidence"`
	Reading    float64 `json:"reading"`
}

type resultJSON struct {
	Slot     int         `json:"slot"`
	Answered bool        `json:"answered"`
	Value    float64     `json:"value"`
	Payment  float64     `json:"payment"`
	Final    bool        `json:"final"`
	Events   []eventJSON `json:"events,omitempty"`
}

type queryRecord struct {
	id  string
	typ string

	mu        sync.Mutex
	results   []resultJSON
	truncated int // results discarded beyond maxResultsPerQuery
	done      bool
	doneAt    time.Time
	errMsg    string

	handle *ps.QueryHandle
}

func (r *queryRecord) isDone() bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.done
}

func (s *server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var req queryRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, "bad JSON: %v", err)
		return
	}
	id := req.ID
	if id == "" {
		id = fmt.Sprintf("q%d", s.autoID.Add(1))
	}

	// Reserve the registry slot before submitting so a duplicate ID can
	// never orphan a live query's record; finished IDs may be reused.
	rec := &queryRecord{id: id, typ: req.Type}
	s.mu.Lock()
	old := s.queries[id]
	if old != nil && !old.isDone() {
		s.mu.Unlock()
		httpError(w, http.StatusConflict, "query %q already exists", id)
		return
	}
	s.queries[id] = rec
	s.submits++
	if s.submits%sweepEvery == 0 {
		s.sweepLocked()
	}
	s.mu.Unlock()

	h, err := s.submit(id, &req)
	if err != nil {
		// Put back whatever was reserved over — a failed submission must
		// not evict a finished record still inside its retention window.
		s.mu.Lock()
		if old != nil {
			s.queries[id] = old
		} else {
			delete(s.queries, id)
		}
		s.mu.Unlock()
		status := http.StatusBadRequest
		if err == ps.ErrQueueFull {
			status = http.StatusTooManyRequests
		} else if err == ps.ErrEngineStopped {
			status = http.StatusServiceUnavailable
		}
		httpError(w, status, "%v", err)
		return
	}
	rec.mu.Lock()
	rec.handle = h
	rec.mu.Unlock()
	go rec.consume()

	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusAccepted)
	writeJSON(w, map[string]any{"id": id, "status": "accepted"})
}

func (s *server) submit(id string, req *queryRequest) (*ps.QueryHandle, error) {
	needLoc := func() (ps.Point, error) {
		if req.Loc == nil {
			return ps.Point{}, fmt.Errorf("query type %q needs \"loc\"", req.Type)
		}
		return ps.Pt(req.Loc.X, req.Loc.Y), nil
	}
	needRegion := func() (ps.Rect, error) {
		if req.Region == nil {
			return ps.Rect{}, fmt.Errorf("query type %q needs \"region\"", req.Type)
		}
		return ps.NewRect(req.Region.X0, req.Region.Y0, req.Region.X1, req.Region.Y1), nil
	}

	switch strings.ToLower(req.Type) {
	case "point":
		loc, err := needLoc()
		if err != nil {
			return nil, err
		}
		return s.eng.SubmitPoint(id, loc, req.Budget)
	case "multipoint":
		loc, err := needLoc()
		if err != nil {
			return nil, err
		}
		return s.eng.SubmitMultiPoint(id, loc, req.Budget, req.K)
	case "aggregate":
		region, err := needRegion()
		if err != nil {
			return nil, err
		}
		return s.eng.SubmitAggregate(id, region, req.Budget)
	case "trajectory":
		if len(req.Path) < 2 {
			return nil, fmt.Errorf("trajectory needs a \"path\" of >= 2 waypoints")
		}
		tr := ps.Trajectory{}
		for _, p := range req.Path {
			tr.Waypoints = append(tr.Waypoints, ps.Pt(p.X, p.Y))
		}
		return s.eng.SubmitTrajectory(id, tr, req.Budget)
	case "locmon":
		loc, err := needLoc()
		if err != nil {
			return nil, err
		}
		return s.eng.SubmitLocationMonitoring(id, loc, req.Duration, req.Budget, req.Samples)
	case "regmon":
		region, err := needRegion()
		if err != nil {
			return nil, err
		}
		// The engine would surface this asynchronously via the handle;
		// reject up front so the client gets a 400 instead of a 202 that
		// can never produce results.
		if s.world.GPModel == nil {
			return nil, fmt.Errorf("world %q has no GP phenomenon model; region monitoring is unavailable", s.world.Name)
		}
		return s.eng.SubmitRegionMonitoring(id, region, req.Duration, req.Budget)
	case "event":
		loc, err := needLoc()
		if err != nil {
			return nil, err
		}
		return s.eng.SubmitEventDetection(id, loc, req.Duration, req.Threshold, req.Confidence, req.BudgetPerSlot)
	case "regionevent":
		region, err := needRegion()
		if err != nil {
			return nil, err
		}
		return s.eng.SubmitRegionEvent(id, region, req.Duration, req.Threshold, req.Confidence, req.BudgetPerSlot)
	default:
		return nil, fmt.Errorf("unknown query type %q", req.Type)
	}
}

// consume moves subscription results into the record until the stream
// closes.
func (r *queryRecord) consume() {
	for res := range r.handle.Results() {
		j := resultJSON{
			Slot:     res.Slot,
			Answered: res.Answered,
			Value:    res.Value,
			Payment:  res.Payment,
			Final:    res.Final,
		}
		for _, ev := range res.Events {
			j.Events = append(j.Events, eventJSON{
				Slot: ev.Slot, Detected: ev.Detected, Confidence: ev.Confidence, Reading: ev.Reading,
			})
		}
		r.mu.Lock()
		if len(r.results) >= maxResultsPerQuery {
			r.results = r.results[1:]
			r.truncated++
		}
		r.results = append(r.results, j)
		r.mu.Unlock()
	}
	r.mu.Lock()
	r.done = true
	r.doneAt = time.Now()
	if err := r.handle.Err(); err != nil {
		r.errMsg = err.Error()
	}
	r.mu.Unlock()
}

func (s *server) record(id string) *queryRecord {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.queries[id]
}

func (s *server) handleGet(w http.ResponseWriter, r *http.Request) {
	rec := s.record(r.PathValue("id"))
	if rec == nil {
		httpError(w, http.StatusNotFound, "unknown query %q", r.PathValue("id"))
		return
	}
	rec.mu.Lock()
	resp := map[string]any{
		"id":      rec.id,
		"type":    rec.typ,
		"done":    rec.done,
		"results": append([]resultJSON(nil), rec.results...),
	}
	if rec.truncated > 0 {
		resp["results_truncated"] = rec.truncated
	}
	if rec.errMsg != "" {
		resp["error"] = rec.errMsg
	}
	rec.mu.Unlock()
	w.Header().Set("Content-Type", "application/json")
	writeJSON(w, resp)
}

func (s *server) handleCancel(w http.ResponseWriter, r *http.Request) {
	rec := s.record(r.PathValue("id"))
	if rec == nil {
		httpError(w, http.StatusNotFound, "unknown query %q", r.PathValue("id"))
		return
	}
	rec.mu.Lock()
	h := rec.handle
	done := rec.done
	rec.mu.Unlock()
	if h == nil {
		httpError(w, http.StatusConflict, "query %q still registering", rec.id)
		return
	}
	if done {
		httpError(w, http.StatusGone, "query %q already finished", rec.id)
		return
	}
	if err := h.Cancel(); err != nil {
		httpError(w, http.StatusServiceUnavailable, "cancel: %v", err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	writeJSON(w, map[string]any{"id": rec.id, "status": "canceling"})
}

func (s *server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	m := s.eng.Metrics()
	w.Header().Set("Content-Type", "application/json")
	writeJSON(w, map[string]any{
		"slots":             m.Slots,
		"last_slot":         m.LastSlot,
		"total_welfare":     m.TotalWelfare,
		"last_welfare":      m.LastWelfare,
		"total_payments":    m.TotalPayments,
		"total_cost":        m.TotalCost,
		"sensors_used":      m.SensorsUsed,
		"queries_submitted": m.QueriesSubmitted,
		"queries_rejected":  m.QueriesRejected,
		"queries_canceled":  m.QueriesCanceled,
		"active_queries":    m.ActiveQueries,
		"answered":          m.Answered,
		"starved":           m.Starved,
		"results_delivered": m.ResultsDelivered,
		"results_dropped":   m.ResultsDropped,
		"queue_depth":       m.QueueDepth,
		"queue_cap":         m.QueueCap,
		"slot_latency_last": m.SlotLatencyLast.String(),
		"slot_latency_avg":  m.SlotLatencyAvg.String(),
		"slot_latency_max":  m.SlotLatencyMax.String(),
		// Greedy selection core instrumentation (see ps.SelectionStats).
		"strategy":                 ps.Strategy(s.strategy.Load()).String(),
		"strategy_last_slot":       m.Strategy,
		"valuation_calls":          m.ValuationCalls,
		"valuation_calls_saved":    m.ValuationCallsSaved,
		"lazy_reevaluations":       m.LazyReevaluations,
		"submodularity_violations": m.SubmodularityViolations,
		"fallback_rescans":         m.FallbackRescans,
	})
}

func (s *server) handleGetStrategy(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	writeJSON(w, map[string]any{"strategy": ps.Strategy(s.strategy.Load()).String()})
}

// handleSetStrategy switches the candidate-evaluation strategy of the
// live engine. Selections are bit-identical across strategies, so the
// switch is safe mid-stream; it takes effect from the next slot.
func (s *server) handleSetStrategy(w http.ResponseWriter, r *http.Request) {
	var req struct {
		Strategy string `json:"strategy"`
	}
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, "bad JSON: %v", err)
		return
	}
	// ParseStrategy treats "" as auto; an absent field must not silently
	// reset a live engine, so require an explicit name here.
	if req.Strategy == "" {
		httpError(w, http.StatusBadRequest, `missing "strategy" (want auto, serial, sharded, lazy or lazy-sharded)`)
		return
	}
	strat, err := ps.ParseStrategy(req.Strategy)
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	if err := s.eng.SetGreedyStrategy(strat); err != nil {
		httpError(w, http.StatusServiceUnavailable, "set strategy: %v", err)
		return
	}
	s.strategy.Store(int32(strat))
	w.Header().Set("Content-Type", "application/json")
	writeJSON(w, map[string]any{"strategy": strat.String(), "status": "ok"})
}

func (s *server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	m := s.eng.Metrics()
	w.Header().Set("Content-Type", "application/json")
	writeJSON(w, map[string]any{"ok": true, "slots": m.Slots, "queue_depth": m.QueueDepth})
}

func writeJSON(w http.ResponseWriter, v any) {
	if err := json.NewEncoder(w).Encode(v); err != nil {
		log.Printf("psserve: encode response: %v", err)
	}
}

func httpError(w http.ResponseWriter, status int, format string, args ...any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	writeJSON(w, map[string]any{"error": fmt.Sprintf(format, args...)})
}
