// Command psserve runs the streaming engine as a long-lived HTTP daemon:
// a simulated participatory-sensing world advances one time slot per
// tick, and clients submit queries and poll their per-slot results. The
// HTTP API lives in package serve, the JSON wire format in package wire,
// and the matching Go SDK in package psclient; this command only parses
// flags and wires them together.
//
// Example:
//
//	psserve -addr :8080 -world rwm -sensors 200 -interval 1s -strategy lazy
//	curl -s -X POST localhost:8080/query -d \
//	  '{"v":1,"type":"point","loc":{"x":30,"y":30},"budget":15}'
//	curl -s localhost:8080/query/q1
//	curl -s 'localhost:8080/queries?limit=10'
//	curl -s -X POST localhost:8080/strategy -d '{"strategy":"lazy-sharded"}'
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"log/slog"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	ps "repro"
	"repro/cluster"
	"repro/serve"
)

func main() {
	var (
		addr      = flag.String("addr", ":8080", "listen address")
		world     = flag.String("world", "rwm", "world: rwm, rnc or intellab")
		sensors   = flag.Int("sensors", 200, "sensor count (rwm world only)")
		seed      = flag.Int64("seed", 1, "world seed")
		interval  = flag.Duration("interval", time.Second, "slot clock interval")
		sched     = flag.String("sched", "optimal", "scheduling: optimal, localsearch, baseline, egalitarian or greedy")
		strategy  = flag.String("strategy", "auto", "greedy selection strategy: auto, serial, sharded, lazy or lazy-sharded")
		shards    = flag.Int("shards", 1, "geographic shards; >1 serves slots through the geo-sharded execution layer (greedy pipeline, -sched ignored)")
		nodeAddrs = flag.String("node-addrs", "", "comma-separated psnode addresses, one per shard (empty entry = in-process): serves slots through the multi-node cluster coordinator")
		queue     = flag.Int("queue", 1024, "ingest queue size")
		drain     = flag.Int("drain", 64, "max slots run at shutdown to drain continuous queries")
		retain    = flag.Duration("retain", 10*time.Minute, "how long finished query records stay pollable (0 = evict at the next sweep)")
		debug     = flag.Bool("debug", false, "mount net/http/pprof and expvar under /debug/")
		logLevel  = flag.String("log", "info", "structured log level: debug, info, warn, error or off")

		rateLimit           = flag.Float64("rate-limit", 0, "per-client submission rate limit in specs/second (0 = unlimited)")
		rateBurst           = flag.Int("rate-burst", 0, "per-client submission burst (0 = one second's worth of -rate-limit)")
		highWater           = flag.Float64("highwater", 0, "ingest-queue admission threshold as a fraction of -queue; submissions 429 past it (0 = disabled)")
		maxStreamsPerClient = flag.Int("max-streams-per-client", 0, "max concurrent /watch streams per client (0 = unlimited)")
		maxStreams          = flag.Int("max-streams", 0, "global cap on concurrent /watch streams; at the cap the greediest client's oldest stream is evicted (0 = unlimited)")
		shed                = flag.Bool("shed", false, "shed the oldest queued submission instead of rejecting new ones when the ingest queue is full")
	)
	flag.Parse()

	logger, err := buildLogger(*logLevel)
	if err != nil {
		fmt.Fprintln(os.Stderr, "psserve:", err)
		os.Exit(2)
	}

	w, err := buildWorld(*world, *seed, *sensors)
	if err != nil {
		fmt.Fprintln(os.Stderr, "psserve:", err)
		os.Exit(2)
	}
	policy, err := parseScheduling(*sched)
	if err != nil {
		fmt.Fprintln(os.Stderr, "psserve:", err)
		os.Exit(2)
	}
	strat, err := ps.ParseStrategy(*strategy)
	if err != nil {
		fmt.Fprintln(os.Stderr, "psserve:", err)
		os.Exit(2)
	}

	engineOpts := []ps.EngineOption{
		ps.WithSlotInterval(*interval),
		ps.WithQueueSize(*queue),
		ps.WithDrainSlots(*drain),
	}
	if *shed {
		engineOpts = append(engineOpts, ps.WithShedOldest())
	}
	if logger != nil {
		engineOpts = append(engineOpts, ps.WithLogger(logger))
	}
	// The sharded and cluster layers always run the greedy Algorithm 5
	// pipeline; an explicitly chosen -sched would be silently ignored, so
	// refuse the combination instead of serving misleading comparison
	// data.
	schedSet := false
	flag.Visit(func(f *flag.Flag) { schedSet = schedSet || f.Name == "sched" })
	var eng *ps.Engine
	var co *cluster.Coordinator
	if *nodeAddrs != "" {
		if schedSet {
			fmt.Fprintf(os.Stderr, "psserve: -sched %s cannot be combined with -node-addrs: the cluster layer always uses the greedy pipeline\n", *sched)
			os.Exit(2)
		}
		co, err = cluster.New(cluster.Config{
			World:     *world,
			Seed:      *seed,
			Sensors:   *sensors,
			Shards:    *shards,
			Strategy:  *strategy,
			Nodes:     strings.Split(*nodeAddrs, ","),
			Heartbeat: time.Second,
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, "psserve:", err)
			os.Exit(2)
		}
		// The engine must drive the coordinator's own world replica.
		w = co.World()
		eng = ps.NewShardedEngine(co.Sharded(), engineOpts...)
	} else if *shards > 1 {
		if schedSet {
			fmt.Fprintf(os.Stderr, "psserve: -sched %s cannot be combined with -shards %d: the geo-sharded layer always uses the greedy pipeline\n", *sched, *shards)
			os.Exit(2)
		}
		eng = ps.NewShardedEngine(
			ps.NewShardedAggregator(w, *shards, ps.WithGreedyStrategy(strat)),
			engineOpts...,
		)
	} else {
		eng = ps.NewEngine(
			ps.NewAggregator(w, ps.WithScheduling(policy), ps.WithGreedyStrategy(strat)),
			engineOpts...,
		)
	}
	eng.Start()
	if co != nil {
		co.BindMetrics(eng.Observability())
	}

	// The flag keeps its historical meaning: 0 evicts finished records at
	// the next sweep.
	sopts := serve.Options{
		Retain:              *retain,
		NoRetention:         *retain <= 0,
		Strategy:            strat,
		Logger:              logger,
		Debug:               *debug,
		RateLimit:           *rateLimit,
		RateBurst:           *rateBurst,
		HighWater:           *highWater,
		MaxStreamsPerClient: *maxStreamsPerClient,
		MaxStreams:          *maxStreams,
	}
	if co != nil {
		sopts.Cluster = co.Membership
	}
	api := serve.New(eng, w, sopts)
	srv := &http.Server{Addr: *addr, Handler: api.Handler()}
	go func() {
		log.Printf("psserve: serving %s world (%d sensors) on %s, slot every %v, strategy %s, %d shard(s)",
			*world, *sensors, *addr, *interval, strat, *shards)
		if err := srv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
			log.Fatalf("psserve: %v", err)
		}
	}()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	log.Print("psserve: shutting down")
	// Graceful order: stop accepting and end every watch stream with a
	// terminal server_closing frame, drain the HTTP server (which waits
	// for those streams to unwind), then stop the engine (which finishes
	// in-flight continuous queries up to the drain cap).
	api.Shutdown()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	if err := srv.Shutdown(ctx); err != nil {
		_ = srv.Close()
	}
	cancel()
	eng.Stop()
	if co != nil {
		co.Close()
	}
	log.Print("psserve: bye")
}

// buildLogger maps the -log flag to a text slog.Logger on stderr; "off"
// returns nil (serve and the engine treat nil as disabled).
func buildLogger(level string) (*slog.Logger, error) {
	var lv slog.Level
	switch strings.ToLower(level) {
	case "off", "none":
		return nil, nil
	case "debug":
		lv = slog.LevelDebug
	case "info":
		lv = slog.LevelInfo
	case "warn":
		lv = slog.LevelWarn
	case "error":
		lv = slog.LevelError
	default:
		return nil, fmt.Errorf("unknown log level %q (want debug, info, warn, error or off)", level)
	}
	return slog.New(slog.NewTextHandler(os.Stderr, &slog.HandlerOptions{Level: lv})), nil
}

func buildWorld(kind string, seed int64, sensors int) (*ps.World, error) {
	switch strings.ToLower(kind) {
	case "rwm":
		return ps.NewRWMWorld(seed, sensors, ps.SensorConfig{}), nil
	case "rnc":
		return ps.NewRNCWorld(seed, ps.SensorConfig{}), nil
	case "intellab":
		return ps.NewIntelLabWorld(seed, ps.SensorConfig{}), nil
	default:
		return nil, fmt.Errorf("unknown world %q (want rwm, rnc or intellab)", kind)
	}
}

func parseScheduling(s string) (ps.Scheduling, error) {
	switch strings.ToLower(s) {
	case "optimal":
		return ps.SchedulingOptimal, nil
	case "localsearch":
		return ps.SchedulingLocalSearch, nil
	case "baseline":
		return ps.SchedulingBaseline, nil
	case "egalitarian":
		return ps.SchedulingEgalitarian, nil
	case "greedy":
		return ps.SchedulingGreedy, nil
	default:
		return 0, fmt.Errorf("unknown scheduling %q", s)
	}
}
