package main

import (
	"context"
	"net"
	"os"
	"os/exec"
	"path/filepath"
	"testing"
	"time"

	ps "repro"
	"repro/psclient"
	"repro/wire"
)

// The HTTP handler itself is covered in package serve (and end-to-end by
// package psclient); here we test the flag-level wiring.

func TestBuildWorld(t *testing.T) {
	tests := []struct {
		kind    string
		wantErr bool
	}{
		{"rwm", false},
		{"RWM", false},
		{"rnc", false},
		{"intellab", false},
		{"atlantis", true},
	}
	for _, tc := range tests {
		w, err := buildWorld(tc.kind, 1, 50)
		if tc.wantErr != (err != nil) {
			t.Errorf("buildWorld(%q): err = %v, wantErr %v", tc.kind, err, tc.wantErr)
		}
		if !tc.wantErr && w == nil {
			t.Errorf("buildWorld(%q) returned nil world", tc.kind)
		}
	}
}

func TestParseScheduling(t *testing.T) {
	tests := []struct {
		name    string
		want    ps.Scheduling
		wantErr bool
	}{
		{"optimal", ps.SchedulingOptimal, false},
		{"localsearch", ps.SchedulingLocalSearch, false},
		{"baseline", ps.SchedulingBaseline, false},
		{"egalitarian", ps.SchedulingEgalitarian, false},
		{"greedy", ps.SchedulingGreedy, false},
		{"Greedy", ps.SchedulingGreedy, false},
		{"fifo", 0, true},
	}
	for _, tc := range tests {
		got, err := parseScheduling(tc.name)
		if tc.wantErr != (err != nil) {
			t.Errorf("parseScheduling(%q): err = %v, wantErr %v", tc.name, err, tc.wantErr)
			continue
		}
		if !tc.wantErr && got != tc.want {
			t.Errorf("parseScheduling(%q) = %v, want %v", tc.name, got, tc.want)
		}
	}
}

// TestPsserveGracefulShutdownEndToEnd builds the real binary, serves
// real traffic, and delivers SIGINT mid-stream: the open watch stream
// must end with a server_closing frame and the process must exit
// cleanly (code 0) without being killed.
func TestPsserveGracefulShutdownEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs the psserve binary; skipped in -short")
	}
	bin := filepath.Join(t.TempDir(), "psserve-e2e")
	build := exec.Command("go", "build", "-o", bin, ".")
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}

	// Reserve a port; the race with the daemon re-binding it is
	// negligible on a loopback interface.
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := l.Addr().String()
	l.Close()

	cmd := exec.Command(bin, "-addr", addr, "-sensors", "50", "-interval", "10ms", "-drain", "4")
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatalf("start: %v", err)
	}
	defer cmd.Process.Kill()

	c, err := psclient.Dial("http://" + addr)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	deadline := time.Now().Add(10 * time.Second)
	for {
		if _, err := c.Healthz(ctx); err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("daemon never became healthy")
		}
		time.Sleep(20 * time.Millisecond)
	}

	q, err := c.Submit(ctx, ps.LocationMonitoringSpec{ID: "e2e-lm", Loc: ps.Pt(30, 30), Duration: 10_000, Budget: 500, Samples: 5})
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	st := q.Stream()
	defer st.Close()

	// One pushed slot proves the stream is live, then interrupt the
	// daemon mid-stream.
	sawUpdate := false
	for !sawUpdate {
		ev, err := st.Next(ctx)
		if err != nil {
			t.Fatalf("stream: %v", err)
		}
		sawUpdate = ev.Event == wire.FrameSlotUpdate
	}
	if err := cmd.Process.Signal(os.Interrupt); err != nil {
		t.Fatalf("SIGINT: %v", err)
	}

	sawClosing := false
	for !sawClosing {
		ev, err := st.Next(ctx)
		if err != nil {
			// The daemon is gone; acceptable only after the closing frame.
			break
		}
		sawClosing = ev.Event == wire.FrameServerClosing
	}
	if !sawClosing {
		t.Error("watch stream ended without a server_closing frame")
	}

	done := make(chan error, 1)
	go func() { done <- cmd.Wait() }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("daemon exited uncleanly: %v", err)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("daemon did not exit after SIGINT")
	}
}
