package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	ps "repro"
)

// newTestStack builds a virtual-clock engine behind the HTTP handler so
// the test controls slot execution deterministically.
func newTestStack(t *testing.T, opts ...ps.Option) (*ps.Engine, *httptest.Server) {
	t.Helper()
	world := ps.NewRWMWorld(1, 200, ps.SensorConfig{})
	eng := ps.NewEngine(ps.NewAggregator(world, opts...))
	eng.Start()
	ts := httptest.NewServer(newServer(eng, world, 10*time.Minute, ps.StrategyAuto).handler())
	t.Cleanup(func() {
		ts.Close()
		eng.Stop()
	})
	return eng, ts
}

func postJSON(t *testing.T, url string, body any) (int, map[string]any) {
	t.Helper()
	buf, err := json.Marshal(body)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(buf))
	if err != nil {
		t.Fatalf("POST %s: %v", url, err)
	}
	defer resp.Body.Close()
	var out map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatalf("decode: %v", err)
	}
	return resp.StatusCode, out
}

func getJSON(t *testing.T, url string) (int, map[string]any) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	var out map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatalf("decode: %v", err)
	}
	return resp.StatusCode, out
}

func TestServePointQueryEndToEnd(t *testing.T) {
	eng, ts := newTestStack(t)

	status, resp := postJSON(t, ts.URL+"/query", map[string]any{
		"type": "point", "id": "p1", "loc": map[string]float64{"x": 30, "y": 30}, "budget": 20,
	})
	if status != http.StatusAccepted || resp["id"] != "p1" {
		t.Fatalf("submit: status %d resp %v", status, resp)
	}

	if err := eng.RunSlots(1); err != nil {
		t.Fatalf("RunSlots: %v", err)
	}

	// The consumer goroutine moves the result into the registry; poll briefly.
	deadline := time.Now().Add(5 * time.Second)
	for {
		status, resp = getJSON(t, ts.URL+"/query/p1")
		if status != http.StatusOK {
			t.Fatalf("get: status %d resp %v", status, resp)
		}
		if resp["done"] == true {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("query never completed: %v", resp)
		}
		time.Sleep(time.Millisecond)
	}
	results, ok := resp["results"].([]any)
	if !ok || len(results) != 1 {
		t.Fatalf("results = %v, want exactly 1", resp["results"])
	}
	r0 := results[0].(map[string]any)
	if r0["final"] != true {
		t.Errorf("result not final: %v", r0)
	}
	if r0["answered"] == true {
		if v, p := r0["value"].(float64), r0["payment"].(float64); p >= v {
			t.Errorf("payment %v >= value %v", p, v)
		}
	}

	// Engine metrics reflect the slot.
	status, m := getJSON(t, ts.URL+"/metrics")
	if status != http.StatusOK || m["slots"].(float64) != 1 || m["queries_submitted"].(float64) != 1 {
		t.Fatalf("metrics = %v", m)
	}
	status, h := getJSON(t, ts.URL+"/healthz")
	if status != http.StatusOK || h["ok"] != true {
		t.Fatalf("healthz = %v", h)
	}

	// Canceling an already-finished query is not "canceling": 410.
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/query/p1", nil)
	dresp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("DELETE: %v", err)
	}
	dresp.Body.Close()
	if dresp.StatusCode != http.StatusGone {
		t.Errorf("DELETE finished query: status %d, want 410", dresp.StatusCode)
	}
}

func TestServeContinuousCancel(t *testing.T) {
	eng, ts := newTestStack(t)

	status, resp := postJSON(t, ts.URL+"/query", map[string]any{
		"type": "locmon", "loc": map[string]float64{"x": 30, "y": 30},
		"budget": 120, "duration": 20, "samples": 5,
	})
	if status != http.StatusAccepted {
		t.Fatalf("submit: status %d resp %v", status, resp)
	}
	id := resp["id"].(string)
	if err := eng.RunSlots(2); err != nil {
		t.Fatalf("RunSlots: %v", err)
	}

	req, _ := http.NewRequest(http.MethodDelete, fmt.Sprintf("%s/query/%s", ts.URL, id), nil)
	cresp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("DELETE: %v", err)
	}
	cresp.Body.Close()
	if cresp.StatusCode != http.StatusOK {
		t.Fatalf("cancel status = %d", cresp.StatusCode)
	}

	deadline := time.Now().Add(5 * time.Second)
	for {
		_, resp = getJSON(t, ts.URL+"/query/"+id)
		if resp["done"] == true {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("cancel never completed: %v", resp)
		}
		time.Sleep(time.Millisecond)
	}
	if resp["error"] != ps.ErrCanceled.Error() {
		t.Fatalf("error = %v, want %q", resp["error"], ps.ErrCanceled.Error())
	}
	if results := resp["results"].([]any); len(results) != 2 {
		t.Fatalf("got %d results before cancel, want 2", len(results))
	}
}

func TestServeBadRequests(t *testing.T) {
	_, ts := newTestStack(t)

	status, _ := postJSON(t, ts.URL+"/query", map[string]any{"type": "nonsense"})
	if status != http.StatusBadRequest {
		t.Errorf("unknown type: status %d, want 400", status)
	}
	status, _ = postJSON(t, ts.URL+"/query", map[string]any{"type": "point", "budget": 10})
	if status != http.StatusBadRequest {
		t.Errorf("missing loc: status %d, want 400", status)
	}
	status, _ = getJSON(t, ts.URL+"/query/absent")
	if status != http.StatusNotFound {
		t.Errorf("unknown id: status %d, want 404", status)
	}
	// regmon needs a GP world; the RWM test world must be rejected up
	// front with 400, not accepted into a subscription that cannot work.
	status, _ = postJSON(t, ts.URL+"/query", map[string]any{
		"type": "regmon", "region": map[string]float64{"x0": 20, "y0": 20, "x1": 40, "y1": 40},
		"budget": 100, "duration": 5,
	})
	if status != http.StatusBadRequest {
		t.Errorf("regmon without GP model: status %d, want 400", status)
	}

	// A live query ID cannot be reused: the registry rejects it without
	// touching the engine, so the original record stays reachable.
	body := map[string]any{"type": "locmon", "id": "taken",
		"loc": map[string]float64{"x": 30, "y": 30}, "budget": 120, "duration": 20, "samples": 5}
	if status, _ := postJSON(t, ts.URL+"/query", body); status != http.StatusAccepted {
		t.Fatalf("first submit: status %d", status)
	}
	if status, _ := postJSON(t, ts.URL+"/query", body); status != http.StatusConflict {
		t.Errorf("duplicate live id: status %d, want 409", status)
	}
}

// TestServeStrategyAndSelectionMetrics drives a mixed slot through the
// lazy strategy and checks that /metrics exposes the valuation-call and
// lazy-heap counters, and that /strategy switches at runtime.
func TestServeStrategyAndSelectionMetrics(t *testing.T) {
	eng, ts := newTestStack(t, ps.WithGreedyStrategy(ps.StrategyLazy))

	// An aggregate query routes the slot through the greedy mix pipeline.
	status, _ := postJSON(t, ts.URL+"/query", map[string]any{
		"type": "aggregate", "id": "a1",
		"region": map[string]float64{"x0": 20, "y0": 20, "x1": 45, "y1": 45}, "budget": 300,
	})
	if status != http.StatusAccepted {
		t.Fatalf("submit aggregate: status %d", status)
	}
	postJSON(t, ts.URL+"/query", map[string]any{
		"type": "point", "id": "p1", "loc": map[string]float64{"x": 30, "y": 30}, "budget": 20,
	})
	if err := eng.RunSlots(1); err != nil {
		t.Fatalf("RunSlots: %v", err)
	}

	status, m := getJSON(t, ts.URL+"/metrics")
	if status != http.StatusOK {
		t.Fatalf("metrics: status %d", status)
	}
	if m["valuation_calls"].(float64) <= 0 {
		t.Errorf("valuation_calls = %v, want > 0", m["valuation_calls"])
	}
	if m["strategy_last_slot"] != "lazy" {
		t.Errorf("strategy_last_slot = %v, want lazy", m["strategy_last_slot"])
	}
	for _, key := range []string{"valuation_calls_saved", "lazy_reevaluations", "submodularity_violations", "fallback_rescans"} {
		if _, ok := m[key].(float64); !ok {
			t.Errorf("metrics missing %s: %v", key, m[key])
		}
	}

	// Runtime strategy switch: reported by GET /strategy and used by the
	// next slot.
	status, resp := postJSON(t, ts.URL+"/strategy", map[string]any{"strategy": "sharded"})
	if status != http.StatusOK || resp["strategy"] != "sharded" {
		t.Fatalf("set strategy: status %d resp %v", status, resp)
	}
	status, resp = getJSON(t, ts.URL+"/strategy")
	if status != http.StatusOK || resp["strategy"] != "sharded" {
		t.Fatalf("get strategy: status %d resp %v", status, resp)
	}
	if status, _ := postJSON(t, ts.URL+"/strategy", map[string]any{"strategy": "nonsense"}); status != http.StatusBadRequest {
		t.Errorf("bad strategy: status %d, want 400", status)
	}
	// A missing "strategy" field must not silently reset a live engine
	// to auto.
	if status, _ := postJSON(t, ts.URL+"/strategy", map[string]any{}); status != http.StatusBadRequest {
		t.Errorf("empty strategy: status %d, want 400", status)
	}
}

func TestRegistrySweepEvictsFinishedRecords(t *testing.T) {
	world := ps.NewRWMWorld(2, 50, ps.SensorConfig{})
	eng := ps.NewEngine(ps.NewAggregator(world))
	defer eng.Stop()
	s := newServer(eng, world, 0, ps.StrategyAuto) // zero retention: done records evict immediately

	s.queries["old-done"] = &queryRecord{id: "old-done", done: true, doneAt: time.Now().Add(-time.Minute)}
	s.queries["live"] = &queryRecord{id: "live"}
	s.mu.Lock()
	s.sweepLocked()
	s.mu.Unlock()
	if _, ok := s.queries["old-done"]; ok {
		t.Error("finished record survived the sweep")
	}
	if _, ok := s.queries["live"]; !ok {
		t.Error("live record was evicted")
	}
}
