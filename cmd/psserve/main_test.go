package main

import (
	"testing"

	ps "repro"
)

// The HTTP handler itself is covered in package serve (and end-to-end by
// package psclient); here we test the flag-level wiring.

func TestBuildWorld(t *testing.T) {
	tests := []struct {
		kind    string
		wantErr bool
	}{
		{"rwm", false},
		{"RWM", false},
		{"rnc", false},
		{"intellab", false},
		{"atlantis", true},
	}
	for _, tc := range tests {
		w, err := buildWorld(tc.kind, 1, 50)
		if tc.wantErr != (err != nil) {
			t.Errorf("buildWorld(%q): err = %v, wantErr %v", tc.kind, err, tc.wantErr)
		}
		if !tc.wantErr && w == nil {
			t.Errorf("buildWorld(%q) returned nil world", tc.kind)
		}
	}
}

func TestParseScheduling(t *testing.T) {
	tests := []struct {
		name    string
		want    ps.Scheduling
		wantErr bool
	}{
		{"optimal", ps.SchedulingOptimal, false},
		{"localsearch", ps.SchedulingLocalSearch, false},
		{"baseline", ps.SchedulingBaseline, false},
		{"egalitarian", ps.SchedulingEgalitarian, false},
		{"greedy", ps.SchedulingGreedy, false},
		{"Greedy", ps.SchedulingGreedy, false},
		{"fifo", 0, true},
	}
	for _, tc := range tests {
		got, err := parseScheduling(tc.name)
		if tc.wantErr != (err != nil) {
			t.Errorf("parseScheduling(%q): err = %v, wantErr %v", tc.name, err, tc.wantErr)
			continue
		}
		if !tc.wantErr && got != tc.want {
			t.Errorf("parseScheduling(%q) = %v, want %v", tc.name, got, tc.want)
		}
	}
}
