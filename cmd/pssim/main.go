// Command pssim runs a single participatory-sensing simulation and prints
// per-slot metrics plus a summary — handy for exploring one configuration
// without the full figure sweep of psbench.
//
// Usage:
//
//	pssim -dataset rwm -algorithm optimal -budget 15 -queries 300 -slots 50
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/core"
	"repro/internal/datasets"
	"repro/internal/query"
	"repro/internal/rng"
	"repro/internal/sim"
	"repro/internal/stats"
)

func main() {
	var (
		dataset   = flag.String("dataset", "rwm", "dataset: rwm | rnc")
		algorithm = flag.String("algorithm", "optimal", "algorithm: optimal | localsearch | baseline | egalitarian | greedy")
		budget    = flag.Float64("budget", 15, "per-query budget")
		queries   = flag.Int("queries", 300, "point queries per slot")
		slots     = flag.Int("slots", sim.DefaultSlots, "simulation slots")
		seed      = flag.Int64("seed", 1, "master seed")
		lifetime  = flag.Int("lifetime", 0, "sensor lifetime (0 = horizon)")
		privacy   = flag.Bool("privacy", false, "random privacy sensitivity levels")
		linear    = flag.Bool("linear-energy", false, "linear energy cost, beta in [0,4]")
	)
	flag.Parse()

	cfg := datasets.SensorConfig{Lifetime: *lifetime, RandomPSL: *privacy, LinearEnergy: *linear}
	var world *datasets.World
	switch *dataset {
	case "rwm":
		world = datasets.NewRWM(*seed, 200, cfg)
	case "rnc":
		world = datasets.NewRNC(*seed, cfg)
	default:
		fmt.Fprintf(os.Stderr, "pssim: unknown dataset %q\n", *dataset)
		os.Exit(2)
	}

	var solver core.PointSolver
	switch *algorithm {
	case "optimal":
		solver = sim.ExactOptimal()
	case "localsearch":
		solver = core.LocalSearchPoint(core.DefaultLocalSearchEpsilon)
	case "baseline":
		solver = core.BaselinePoint()
	case "egalitarian":
		solver = core.EgalitarianPoint()
	case "greedy":
		solver = core.GreedyPoint()
	default:
		fmt.Fprintf(os.Stderr, "pssim: unknown algorithm %q\n", *algorithm)
		os.Exit(2)
	}

	wl := sim.PointWorkload{
		QueriesPerSlot: *queries,
		BudgetMean:     *budget,
		DMax:           world.DMax,
		Working:        world.Working,
		Grid:           world.Grid,
	}
	wrnd := rng.New(*seed, "point-workload")

	fmt.Printf("# dataset=%s algorithm=%s budget=%v queries/slot=%d slots=%d seed=%d\n",
		*dataset, *algorithm, *budget, *queries, *slots, *seed)
	fmt.Printf("%-6s %10s %10s %10s %10s %10s\n", "slot", "offers", "selected", "answered", "cost", "welfare")

	var utils, sats []float64
	for t := 0; t < *slots; t++ {
		offers := world.Fleet.Step()
		qs := wl.Slot(t, wrnd)
		res := solver(qs, offers)
		world.Fleet.Commit(res.Selected)
		utils = append(utils, res.Welfare())
		sat := 0.0
		if len(qs) > 0 {
			sat = float64(len(res.Outcomes)) / float64(len(qs))
		}
		sats = append(sats, sat)
		fmt.Printf("%-6d %10d %10d %10d %10.1f %10.1f\n",
			t, len(offers), len(res.Selected), len(res.Outcomes), res.TotalCost, res.Welfare())
		_ = []*query.Point(qs)
	}
	fmt.Printf("\nsummary: avg utility/slot %.1f, satisfaction %.3f\n",
		stats.Mean(utils), stats.Mean(sats))
}
