// Command pssim runs a single participatory-sensing simulation and prints
// per-slot metrics plus a summary — handy for exploring one configuration
// without the full figure sweep of psbench. It drives the public
// Aggregator surface: every query goes through the unified QuerySpec
// submission API (ps.PointSpec -> Aggregator.Submit), the same path the
// streaming engine and the psserve daemon use.
//
// Usage:
//
//	pssim -dataset rwm -algorithm optimal -budget 15 -queries 300 -slots 50
package main

import (
	"flag"
	"fmt"
	"os"

	ps "repro"
	"repro/internal/rng"
	"repro/internal/sim"
	"repro/internal/stats"
)

func main() {
	var (
		dataset   = flag.String("dataset", "rwm", "dataset: rwm | rnc")
		algorithm = flag.String("algorithm", "optimal", "algorithm: optimal | localsearch | baseline | egalitarian | greedy")
		budget    = flag.Float64("budget", 15, "per-query budget")
		queries   = flag.Int("queries", 300, "point queries per slot")
		slots     = flag.Int("slots", sim.DefaultSlots, "simulation slots")
		seed      = flag.Int64("seed", 1, "master seed")
		lifetime  = flag.Int("lifetime", 0, "sensor lifetime (0 = horizon)")
		privacy   = flag.Bool("privacy", false, "random privacy sensitivity levels")
		linear    = flag.Bool("linear-energy", false, "linear energy cost, beta in [0,4]")
	)
	flag.Parse()

	cfg := ps.SensorConfig{Lifetime: *lifetime, RandomPSL: *privacy, LinearEnergy: *linear}
	var world *ps.World
	switch *dataset {
	case "rwm":
		world = ps.NewRWMWorld(*seed, 200, cfg)
	case "rnc":
		world = ps.NewRNCWorld(*seed, cfg)
	default:
		fmt.Fprintf(os.Stderr, "pssim: unknown dataset %q\n", *dataset)
		os.Exit(2)
	}

	var policy ps.Scheduling
	switch *algorithm {
	case "optimal":
		policy = ps.SchedulingOptimal
	case "localsearch":
		policy = ps.SchedulingLocalSearch
	case "baseline":
		policy = ps.SchedulingBaseline
	case "egalitarian":
		policy = ps.SchedulingEgalitarian
	case "greedy":
		policy = ps.SchedulingGreedy
	default:
		fmt.Fprintf(os.Stderr, "pssim: unknown algorithm %q\n", *algorithm)
		os.Exit(2)
	}
	agg := ps.NewAggregator(world, ps.WithScheduling(policy))

	// The same deterministic workload stream the figure sweeps use, fed
	// through the spec-based submission surface.
	wl := sim.PointWorkload{
		QueriesPerSlot: *queries,
		BudgetMean:     *budget,
		DMax:           world.DMax,
		Working:        world.Working,
		Grid:           world.Grid,
	}
	wrnd := rng.New(*seed, "point-workload")

	fmt.Printf("# dataset=%s algorithm=%s budget=%v queries/slot=%d slots=%d seed=%d\n",
		*dataset, *algorithm, *budget, *queries, *slots, *seed)
	fmt.Printf("%-6s %10s %10s %10s %10s %10s\n", "slot", "offers", "selected", "answered", "cost", "welfare")

	var utils, sats []float64
	for t := 0; t < *slots; t++ {
		qs := wl.Slot(t, wrnd)
		for _, q := range qs {
			if _, err := agg.Submit(ps.PointSpec{ID: q.ID, Loc: q.Loc, Budget: q.B}); err != nil {
				fmt.Fprintf(os.Stderr, "pssim: submit %s: %v\n", q.ID, err)
				os.Exit(1)
			}
		}
		rep := agg.RunSlot()
		utils = append(utils, rep.Welfare)
		answered := 0
		for _, o := range rep.Outcomes() {
			if o.Answered {
				answered++
			}
		}
		sat := 0.0
		if len(qs) > 0 {
			sat = float64(answered) / float64(len(qs))
		}
		sats = append(sats, sat)
		fmt.Printf("%-6d %10d %10d %10d %10.1f %10.1f\n",
			rep.Slot, rep.Offers, rep.SensorsUsed, answered, rep.TotalCost, rep.Welfare)
	}
	fmt.Printf("\nsummary: avg utility/slot %.1f, satisfaction %.3f\n",
		stats.Mean(utils), stats.Mean(sats))
}
