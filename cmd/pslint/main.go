// Command pslint is the repo's determinism linter: a multichecker that
// runs the internal/analysis/passes analyzers over the packages matching
// its arguments and exits nonzero on any finding. CI runs it over ./...
// before the bench job, so an invariant violation — a float sum in
// map-iteration order, a wall-clock read in the slot path, a
// non-exhaustive Spec or QueryKind switch, a malformed metric name, or a
// sentinel missing from wire's error-code table — fails the build before
// any golden gate can be probabilistically lucky.
//
// Usage:
//
//	go run ./cmd/pslint ./...
//	go run ./cmd/pslint -only floatorder,wallclock ./internal/core
//
// Findings print as file:line:col: analyzer: message. A finding is
// suppressed by `//pslint:ignore <analyzer> <reason>` on the flagged
// line or the line above; unused or malformed directives are themselves
// findings. Exit status: 0 clean, 1 findings, 2 usage or load error.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/analysis"
	"repro/internal/analysis/passes"
)

func main() {
	only := flag.String("only", "", "comma-separated analyzer names to run (default: all)")
	list := flag.Bool("list", false, "list analyzers and exit")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: pslint [-only a,b] [-list] packages...\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	analyzers := passes.All()
	// Directives may name any analyzer in the suite, even one excluded
	// by -only — otherwise a filtered run would misreport them as typos.
	known := map[string]bool{}
	for _, a := range analyzers {
		known[a.Name] = true
	}
	if *list {
		for _, a := range analyzers {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return
	}
	if *only != "" {
		byName := map[string]*analysis.Analyzer{}
		for _, a := range analyzers {
			byName[a.Name] = a
		}
		analyzers = nil
		for _, name := range strings.Split(*only, ",") {
			a, ok := byName[strings.TrimSpace(name)]
			if !ok {
				fmt.Fprintf(os.Stderr, "pslint: unknown analyzer %q (try -list)\n", name)
				os.Exit(2)
			}
			analyzers = append(analyzers, a)
		}
	}
	if flag.NArg() == 0 {
		flag.Usage()
		os.Exit(2)
	}

	diags, fset, err := analysis.RunPatterns(flag.Args(), analyzers, known)
	if err != nil {
		fmt.Fprintf(os.Stderr, "pslint: %v\n", err)
		os.Exit(2)
	}
	wd, _ := os.Getwd()
	for _, d := range diags {
		pos := fset.Position(d.Pos)
		name := pos.Filename
		if wd != "" {
			if rel, err := filepath.Rel(wd, name); err == nil && !strings.HasPrefix(rel, "..") {
				name = rel
			}
		}
		fmt.Printf("%s:%d:%d: %s: %s\n", name, pos.Line, pos.Column, d.Analyzer, d.Message)
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "pslint: %d findings\n", len(diags))
		os.Exit(1)
	}
}
