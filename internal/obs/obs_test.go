package obs

import (
	"math"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterAtomicAdds(t *testing.T) {
	var c Counter
	var wg sync.WaitGroup
	for range 8 {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for range 1000 {
				c.Add(0.5)
			}
		}()
	}
	wg.Wait()
	if got := c.Value(); got != 4000 {
		t.Fatalf("counter = %v, want 4000", got)
	}
}

func TestCounterRejectsNegative(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Add(-1) did not panic")
		}
	}()
	var c Counter
	c.Add(-1)
}

func TestGauge(t *testing.T) {
	var g Gauge
	g.Set(3)
	g.Add(-1.5)
	if got := g.Value(); got != 1.5 {
		t.Fatalf("gauge = %v, want 1.5", got)
	}
}

func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("ps_test_seconds", "t", []float64{1, 2, 5})
	for _, v := range []float64{0.5, 1, 1.5, 2, 3, 10} {
		h.Observe(v)
	}
	if h.Count() != 6 {
		t.Fatalf("count = %d, want 6", h.Count())
	}
	if got := h.Sum(); got != 18 {
		t.Fatalf("sum = %v, want 18", got)
	}
	// le-inclusive bucketing: 1 lands in le=1, 2 in le=2, 10 in +Inf.
	want := []uint64{2, 2, 1, 1}
	for i, w := range want {
		if got := h.counts[i].Load(); got != w {
			t.Errorf("bucket %d = %d, want %d", i, got, w)
		}
	}
}

func TestHistogramQuantile(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("ps_q_seconds", "t", []float64{1, 2, 4})
	for range 100 {
		h.Observe(0.5)
	}
	q := h.Quantile(0.5)
	if q <= 0 || q > 1 {
		t.Fatalf("p50 = %v, want in (0, 1]", q)
	}
	var empty Histogram
	if !math.IsNaN(empty.Quantile(0.5)) {
		t.Fatal("empty histogram quantile should be NaN")
	}
}

func TestRegistryGetOrCreate(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("ps_x_total", "x")
	b := r.Counter("ps_x_total", "x")
	if a != b {
		t.Fatal("same name returned distinct counters")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("kind collision did not panic")
		}
	}()
	r.Gauge("ps_x_total", "x")
}

func TestVecChildren(t *testing.T) {
	r := NewRegistry()
	v := r.CounterVec("ps_req_total", "reqs", "route", "code")
	v.With("GET /a", "200").Add(2)
	v.With("GET /a", "200").Inc()
	v.With("GET /b", "500").Inc()
	if got := v.With("GET /a", "200").Value(); got != 3 {
		t.Fatalf("child = %v, want 3", got)
	}
	out := expose(t, r)
	if !strings.Contains(out, `ps_req_total{route="GET /a",code="200"} 3`) {
		t.Fatalf("missing labeled sample:\n%s", out)
	}
}

func TestWritePrometheusFormat(t *testing.T) {
	r := NewRegistry()
	r.Counter("ps_events_total", "events").Add(7)
	r.Gauge("ps_active", "active").Set(2)
	h := r.Histogram("ps_lat_seconds", "latency", []float64{0.1, 1})
	h.Observe(0.05)
	h.Observe(0.5)
	h.Observe(5)
	out := expose(t, r)

	for _, want := range []string{
		"# HELP ps_events_total events\n# TYPE ps_events_total counter\nps_events_total 7\n",
		"# TYPE ps_active gauge\nps_active 2\n",
		"# TYPE ps_lat_seconds histogram\n",
		`ps_lat_seconds_bucket{le="0.1"} 1`,
		`ps_lat_seconds_bucket{le="1"} 2`,
		`ps_lat_seconds_bucket{le="+Inf"} 3`,
		"ps_lat_seconds_sum 5.55",
		"ps_lat_seconds_count 3",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
}

func TestLabelEscaping(t *testing.T) {
	r := NewRegistry()
	r.CounterVec("ps_esc_total", "e", "v").With("a\"b\\c\nd").Inc()
	out := expose(t, r)
	if !strings.Contains(out, `v="a\"b\\c\nd"`) {
		t.Fatalf("label not escaped:\n%s", out)
	}
}

func TestValidateNaming(t *testing.T) {
	good := NewRegistry()
	good.Counter("ps_events_total", "e")
	good.Gauge("ps_active_queries", "a")
	good.Histogram("ps_slot_duration_seconds", "d", nil)
	good.Histogram("ps_run_size", "s", SizeBuckets)
	if err := good.Validate(); err != nil {
		t.Fatalf("clean registry flagged: %v", err)
	}

	bad := NewRegistry()
	bad.Counter("events_total", "no prefix")
	bad.Counter("ps_events", "counter without _total")
	bad.Gauge("ps_depth_total", "gauge with _total")
	bad.Histogram("ps_lat", "no unit", nil)
	bad.CounterVec("ps_ok_total", "bad label", "__reserved")
	err := bad.Validate()
	if err == nil {
		t.Fatal("violations not reported")
	}
	for _, want := range []string{
		"events_total: missing ps_ prefix",
		"ps_events: counter without _total",
		"ps_depth_total: gauge with _total",
		"ps_lat: histogram without a unit suffix",
		`ps_ok_total: invalid label name "__reserved"`,
	} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("missing violation %q in:\n%v", want, err)
		}
	}
}

func TestTrace(t *testing.T) {
	tr := StartTrace()
	time.Sleep(time.Millisecond)
	tr.Mark("a")
	tr.Mark("b")
	tr.Add("external", 5*time.Millisecond)
	spans := tr.Spans()
	if len(spans) != 3 {
		t.Fatalf("spans = %d, want 3", len(spans))
	}
	if spans[0].Stage != "a" || spans[0].Duration <= 0 {
		t.Fatalf("span a = %+v", spans[0])
	}
	if spans[2].Stage != "external" || spans[2].Duration != 5*time.Millisecond {
		t.Fatalf("span external = %+v", spans[2])
	}
}

func TestExponentialBuckets(t *testing.T) {
	b := ExponentialBuckets(1, 2, 4)
	want := []float64{1, 2, 4, 8}
	for i := range want {
		if b[i] != want[i] {
			t.Fatalf("buckets = %v, want %v", b, want)
		}
	}
}

func expose(t *testing.T, r *Registry) string {
	t.Helper()
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatalf("WritePrometheus: %v", err)
	}
	return b.String()
}
