package obs

import "time"

// Span is one named stage of a trace: the wall time between two Mark
// calls (or an externally measured duration recorded with Add).
type Span struct {
	Stage    string        `json:"stage"`
	Duration time.Duration `json:"duration"`
}

// Trace attributes a slot's wall time to named pipeline stages. Use:
//
//	tr := obs.StartTrace()
//	... step the fleet ...
//	tr.Mark("offer_gather")
//	... run selection ...
//	tr.Mark("selection")
//	report.Stages = tr.Spans()
//
// A Trace is single-goroutine (it lives on the engine loop); the cost
// per Mark is one time.Now and one append.
type Trace struct {
	last  time.Time
	spans []Span
}

// StartTrace begins a trace at the current time.
func StartTrace() *Trace {
	return &Trace{last: time.Now()}
}

// Mark closes the current stage: the span's duration is the wall time
// since the previous Mark (or StartTrace), and the next stage begins
// now. Returns the recorded duration.
func (t *Trace) Mark(stage string) time.Duration {
	now := time.Now()
	d := now.Sub(t.last)
	t.last = now
	t.spans = append(t.spans, Span{Stage: stage, Duration: d})
	return d
}

// Add records an externally measured span without moving the trace's
// clock — for stages timed elsewhere (e.g. ingest work accumulated
// between slots).
func (t *Trace) Add(stage string, d time.Duration) {
	t.spans = append(t.spans, Span{Stage: stage, Duration: d})
}

// Spans returns the recorded spans in order. The slice is owned by the
// trace; callers that retain it should not Mark again.
func (t *Trace) Spans() []Span { return t.spans }
