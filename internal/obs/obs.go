// Package obs is the repo's dependency-free observability core:
// counters, gauges and fixed-bucket histograms with atomic hot paths, a
// registry that renders the Prometheus text exposition format, and a
// span-style tracer for attributing slot latency to pipeline stages.
//
// Hot-path cost is deliberately tiny — an Observe or Add is a binary
// search over a small bucket slice plus two or three atomic ops, with no
// allocation and no locking — so the engine can instrument every slot
// and every HTTP request without perturbing the latencies it measures.
//
// The registry is get-or-create: asking twice for the same family name
// (with the same kind and label names) returns the same family, so the
// engine, hub and serve layers can all register against one registry
// without coordinating initialization order. A name collision with a
// different kind or label set panics — that is a programming error, not
// a runtime condition.
package obs

import (
	"fmt"
	"io"
	"math"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing float64. The value is stored as
// IEEE-754 bits in a uint64 so Add is a CAS loop and Inc never locks.
type Counter struct {
	bits atomic.Uint64
}

// Add increments the counter by v. Negative v panics: a counter that
// goes down is a gauge.
func (c *Counter) Add(v float64) {
	if v < 0 {
		panic("obs: counter decremented")
	}
	for {
		old := c.bits.Load()
		nw := math.Float64bits(math.Float64frombits(old) + v)
		if c.bits.CompareAndSwap(old, nw) {
			return
		}
	}
}

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current total.
func (c *Counter) Value() float64 { return math.Float64frombits(c.bits.Load()) }

// Gauge is a float64 that can go up and down.
type Gauge struct {
	bits atomic.Uint64
}

// Set replaces the gauge's value.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add increments (or, with negative v, decrements) the gauge.
func (g *Gauge) Add(v float64) {
	for {
		old := g.bits.Load()
		nw := math.Float64bits(math.Float64frombits(old) + v)
		if g.bits.CompareAndSwap(old, nw) {
			return
		}
	}
}

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Histogram counts observations into fixed buckets. Buckets are upper
// bounds (exclusive of +Inf, which is implicit); counts are stored
// per-bucket and cumulated only at exposition time.
type Histogram struct {
	bounds []float64       // sorted upper bounds, +Inf implicit
	counts []atomic.Uint64 // len(bounds)+1; last is the +Inf bucket
	count  atomic.Uint64
	sum    atomic.Uint64 // float64 bits
}

// Observe records one observation.
func (h *Histogram) Observe(v float64) {
	// Binary search for the first bound >= v.
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		nw := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, nw) {
			return
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the sum of observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sum.Load()) }

// Quantile returns an estimate of the q-quantile (0 ≤ q ≤ 1) by linear
// interpolation inside the owning bucket — the same estimate a
// Prometheus histogram_quantile() would compute. It is a test and
// reporting convenience, not part of the hot path.
func (h *Histogram) Quantile(q float64) float64 {
	total := h.count.Load()
	if total == 0 {
		return math.NaN()
	}
	rank := q * float64(total)
	var seen float64
	lower := 0.0
	for i := range h.counts {
		n := float64(h.counts[i].Load())
		upper := math.Inf(1)
		if i < len(h.bounds) {
			upper = h.bounds[i]
		}
		if seen+n >= rank {
			if math.IsInf(upper, 1) {
				return lower
			}
			if n == 0 {
				return upper
			}
			return lower + (upper-lower)*((rank-seen)/n)
		}
		seen += n
		lower = upper
	}
	if len(h.bounds) > 0 {
		return h.bounds[len(h.bounds)-1]
	}
	return math.NaN()
}

// DurationBuckets are the default bounds (in seconds) for latency
// histograms: 0.5ms up to 10s.
var DurationBuckets = []float64{
	0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05,
	0.1, 0.25, 0.5, 1, 2.5, 5, 10,
}

// SizeBuckets are power-of-two bounds for count-valued histograms such
// as eviction-run sizes.
var SizeBuckets = []float64{1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024}

// ExponentialBuckets returns n bounds starting at start, each factor
// times the previous.
func ExponentialBuckets(start, factor float64, n int) []float64 {
	if start <= 0 || factor <= 1 || n < 1 {
		panic("obs: ExponentialBuckets needs start > 0, factor > 1, n >= 1")
	}
	b := make([]float64, n)
	for i := range b {
		b[i] = start
		start *= factor
	}
	return b
}

// Kind is a metric family's type.
type Kind int

// The three family kinds.
const (
	KindCounter Kind = iota
	KindGauge
	KindHistogram
)

func (k Kind) String() string {
	switch k {
	case KindCounter:
		return "counter"
	case KindGauge:
		return "gauge"
	case KindHistogram:
		return "histogram"
	}
	return "unknown"
}

// family is one named metric family: a kind, a help string, fixed label
// names, and one child metric per label-value combination (a single
// child under the empty key when the family has no labels).
type family struct {
	name    string
	help    string
	kind    Kind
	labels  []string
	buckets []float64

	mu       sync.Mutex
	children map[string]any // Counter / Gauge / Histogram keyed by joined label values
}

// Registry holds metric families and renders them in the Prometheus
// text exposition format. The zero value is not usable; call NewRegistry.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
	order    []string
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: map[string]*family{}}
}

// lookup returns the family, creating it on first use and panicking on
// a kind or label-set collision.
func (r *Registry) lookup(name, help string, kind Kind, buckets []float64, labels []string) *family {
	r.mu.Lock()
	defer r.mu.Unlock()
	if f, ok := r.families[name]; ok {
		if f.kind != kind {
			panic(fmt.Sprintf("obs: metric %q re-registered as %v (was %v)", name, kind, f.kind))
		}
		if strings.Join(f.labels, ",") != strings.Join(labels, ",") {
			panic(fmt.Sprintf("obs: metric %q re-registered with labels %v (was %v)", name, labels, f.labels))
		}
		return f
	}
	f := &family{
		name:     name,
		help:     help,
		kind:     kind,
		labels:   append([]string(nil), labels...),
		buckets:  append([]float64(nil), buckets...),
		children: map[string]any{},
	}
	if kind == KindHistogram {
		if len(f.buckets) == 0 {
			f.buckets = append([]float64(nil), DurationBuckets...)
		}
		if !sort.Float64sAreSorted(f.buckets) {
			panic(fmt.Sprintf("obs: metric %q has unsorted buckets", name))
		}
	}
	r.families[name] = f
	r.order = append(r.order, name)
	return f
}

const labelSep = "\x1f"

func (f *family) child(values []string) any {
	if len(values) != len(f.labels) {
		panic(fmt.Sprintf("obs: metric %q called with %d label values, declared %d", f.name, len(values), len(f.labels)))
	}
	key := strings.Join(values, labelSep)
	f.mu.Lock()
	defer f.mu.Unlock()
	if c, ok := f.children[key]; ok {
		return c
	}
	var c any
	switch f.kind {
	case KindCounter:
		c = &Counter{}
	case KindGauge:
		c = &Gauge{}
	case KindHistogram:
		c = &Histogram{
			bounds: f.buckets,
			counts: make([]atomic.Uint64, len(f.buckets)+1),
		}
	}
	f.children[key] = c
	return c
}

// Counter returns (creating on first use) the named label-less counter.
func (r *Registry) Counter(name, help string) *Counter {
	return r.lookup(name, help, KindCounter, nil, nil).child(nil).(*Counter)
}

// Gauge returns (creating on first use) the named label-less gauge.
func (r *Registry) Gauge(name, help string) *Gauge {
	return r.lookup(name, help, KindGauge, nil, nil).child(nil).(*Gauge)
}

// Histogram returns (creating on first use) the named label-less
// histogram. Nil buckets default to DurationBuckets.
func (r *Registry) Histogram(name, help string, buckets []float64) *Histogram {
	return r.lookup(name, help, KindHistogram, buckets, nil).child(nil).(*Histogram)
}

// CounterVec is a counter family with labels.
type CounterVec struct{ f *family }

// CounterVec returns (creating on first use) the named labeled counter
// family.
func (r *Registry) CounterVec(name, help string, labels ...string) *CounterVec {
	return &CounterVec{r.lookup(name, help, KindCounter, nil, labels)}
}

// With returns the child counter for the given label values (positional,
// matching the declared label names).
func (v *CounterVec) With(values ...string) *Counter { return v.f.child(values).(*Counter) }

// GaugeVec is a gauge family with labels.
type GaugeVec struct{ f *family }

// GaugeVec returns (creating on first use) the named labeled gauge
// family.
func (r *Registry) GaugeVec(name, help string, labels ...string) *GaugeVec {
	return &GaugeVec{r.lookup(name, help, KindGauge, nil, labels)}
}

// With returns the child gauge for the given label values.
func (v *GaugeVec) With(values ...string) *Gauge { return v.f.child(values).(*Gauge) }

// HistogramVec is a histogram family with labels.
type HistogramVec struct{ f *family }

// HistogramVec returns (creating on first use) the named labeled
// histogram family. Nil buckets default to DurationBuckets.
func (r *Registry) HistogramVec(name, help string, buckets []float64, labels ...string) *HistogramVec {
	return &HistogramVec{r.lookup(name, help, KindHistogram, buckets, labels)}
}

// With returns the child histogram for the given label values.
func (v *HistogramVec) With(values ...string) *Histogram { return v.f.child(values).(*Histogram) }

// WritePrometheus renders every family in the Prometheus text exposition
// format (version 0.0.4): # HELP / # TYPE headers, cumulative
// _bucket{le=...} series plus _sum and _count for histograms. Families
// appear in registration order; children are sorted by label values so
// the output is deterministic.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	names := append([]string(nil), r.order...)
	fams := make([]*family, len(names))
	for i, n := range names {
		fams[i] = r.families[n]
	}
	r.mu.Unlock()

	var b strings.Builder
	for _, f := range fams {
		f.write(&b)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

func (f *family) write(b *strings.Builder) {
	f.mu.Lock()
	keys := make([]string, 0, len(f.children))
	for k := range f.children {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	children := make([]any, len(keys))
	for i, k := range keys {
		children[i] = f.children[k]
	}
	f.mu.Unlock()
	if len(children) == 0 {
		return
	}

	fmt.Fprintf(b, "# HELP %s %s\n", f.name, escapeHelp(f.help))
	fmt.Fprintf(b, "# TYPE %s %s\n", f.name, f.kind)
	for i, key := range keys {
		var values []string
		if key != "" || len(f.labels) > 0 {
			values = strings.Split(key, labelSep)
		}
		switch c := children[i].(type) {
		case *Counter:
			fmt.Fprintf(b, "%s%s %s\n", f.name, labelSet(f.labels, values, "", ""), formatFloat(c.Value()))
		case *Gauge:
			fmt.Fprintf(b, "%s%s %s\n", f.name, labelSet(f.labels, values, "", ""), formatFloat(c.Value()))
		case *Histogram:
			var cum uint64
			for bi := 0; bi <= len(c.bounds); bi++ {
				cum += c.counts[bi].Load()
				le := "+Inf"
				if bi < len(c.bounds) {
					le = formatFloat(c.bounds[bi])
				}
				fmt.Fprintf(b, "%s_bucket%s %d\n", f.name, labelSet(f.labels, values, "le", le), cum)
			}
			fmt.Fprintf(b, "%s_sum%s %s\n", f.name, labelSet(f.labels, values, "", ""), formatFloat(c.Sum()))
			fmt.Fprintf(b, "%s_count%s %d\n", f.name, labelSet(f.labels, values, "", ""), c.count.Load())
		}
	}
}

// labelSet renders {k="v",...}, appending the extra pair (used for a
// histogram's le) when extraName is non-empty. Returns "" for a
// label-less series.
func labelSet(names, values []string, extraName, extraValue string) string {
	if len(names) == 0 && extraName == "" {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, n := range names {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(n)
		b.WriteString("=\"")
		b.WriteString(escapeLabel(values[i]))
		b.WriteByte('"')
	}
	if extraName != "" {
		if len(names) > 0 {
			b.WriteByte(',')
		}
		b.WriteString(extraName)
		b.WriteString("=\"")
		b.WriteString(escapeLabel(extraValue))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

func formatFloat(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

func escapeLabel(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	s = strings.ReplaceAll(s, `"`, `\"`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

// Naming conventions, enforced by Validate (and by the CI lint test):
// every metric is ps_-prefixed snake_case; counters end in _total;
// histograms carry a unit suffix (_seconds for durations, _bytes or
// _size otherwise); gauges never end in _total.
var (
	nameRE  = regexp.MustCompile(`^[a-z_][a-z0-9_]*$`)
	labelRE = regexp.MustCompile(`^[a-z_][a-z0-9_]*$`)
)

// histogramUnitSuffixes are the unit suffixes a histogram may end with.
var histogramUnitSuffixes = []string{"_seconds", "_bytes", "_size"}

// nameViolations lists every convention a family name breaks for its
// kind (empty when clean). Shared by the runtime Validate sweep and the
// package-level ValidateName entry point the pslint obsnames analyzer
// calls at analysis time.
func nameViolations(name string, kind Kind) []string {
	var violations []string
	if !nameRE.MatchString(name) {
		violations = append(violations, "not a valid Prometheus metric name")
	}
	if !strings.HasPrefix(name, "ps_") {
		violations = append(violations, "missing ps_ prefix")
	}
	switch kind {
	case KindCounter:
		if !strings.HasSuffix(name, "_total") {
			violations = append(violations, "counter without _total suffix")
		}
	case KindGauge:
		if strings.HasSuffix(name, "_total") {
			violations = append(violations, "gauge with _total suffix")
		}
	case KindHistogram:
		ok := false
		for _, suf := range histogramUnitSuffixes {
			if strings.HasSuffix(name, suf) {
				ok = true
				break
			}
		}
		if !ok {
			violations = append(violations, fmt.Sprintf("histogram without a unit suffix (%s)", strings.Join(histogramUnitSuffixes, ", ")))
		}
	}
	return violations
}

// ValidateName checks one metric family name against the Prometheus
// naming grammar and the repo's conventions for the given kind. The
// pslint obsnames analyzer applies it to string literals at analysis
// time, so a bad name breaks the build instead of panicking the process
// at registration.
func ValidateName(name string, kind Kind) error {
	if v := nameViolations(name, kind); len(v) > 0 {
		return fmt.Errorf("obs: metric %s: %s", name, strings.Join(v, "; "))
	}
	return nil
}

// ValidateLabel checks one label name against the Prometheus label
// grammar (reserved __ prefix included).
func ValidateLabel(label string) error {
	if !labelRE.MatchString(label) || strings.HasPrefix(label, "__") {
		return fmt.Errorf("obs: invalid label name %q", label)
	}
	return nil
}

// Validate checks every registered family against the Prometheus naming
// grammar and the repo's conventions, returning one error listing every
// violation (nil when clean).
func (r *Registry) Validate() error {
	r.mu.Lock()
	fams := make([]*family, 0, len(r.order))
	for _, n := range r.order {
		fams = append(fams, r.families[n])
	}
	r.mu.Unlock()

	var violations []string
	for _, f := range fams {
		for _, v := range nameViolations(f.name, f.kind) {
			violations = append(violations, fmt.Sprintf("%s: %s", f.name, v))
		}
		for _, l := range f.labels {
			if err := ValidateLabel(l); err != nil {
				violations = append(violations, fmt.Sprintf("%s: invalid label name %q", f.name, l))
			}
		}
	}
	if len(violations) > 0 {
		return fmt.Errorf("obs: %d naming violations:\n  %s", len(violations), strings.Join(violations, "\n  "))
	}
	return nil
}
