package sim

import (
	"repro/internal/core"
	"repro/internal/datasets"
	"repro/internal/query"
	"repro/internal/rng"
	"repro/internal/stats"
)

// Result aggregates the paper's metrics over one simulation run.
type Result struct {
	// AvgUtility is the average social welfare per time slot.
	AvgUtility float64
	// Satisfaction is the fraction of point queries answered.
	Satisfaction float64
	// AvgQuality is the average quality of results over answered queries
	// (valuation achieved over the valuation function's maximum).
	AvgQuality float64
	// Per-type qualities for the query-mix experiment.
	PointQuality  float64
	AggQuality    float64
	LocMonQuality float64
}

// ExactOptimal returns the Optimal scheduler configured for experiments:
// warm-started with Local Search and with a generous node budget, so the
// Optimal series dominates Local Search by construction even if a rare
// component exhausts its budget.
func ExactOptimal() core.PointSolver {
	return core.OptimalPoint(core.OptimalOptions{
		WarmStartWithLocalSearch: true,
		MaxNodesPerComponent:     200_000,
	})
}

// RunPointSim simulates a point-query workload (Figs 2-6) for `slots`
// slots and returns the aggregate metrics. The workload stream is
// deterministic in `seed` and independent of the solver, so all algorithm
// series see identical queries.
func RunPointSim(world *datasets.World, queriesPerSlot int, budgetMean, budgetJitter float64, solver core.PointSolver, slots int, seed int64) Result {
	wl := &PointWorkload{
		QueriesPerSlot: queriesPerSlot,
		BudgetMean:     budgetMean,
		BudgetJitter:   budgetJitter,
		DMax:           world.DMax,
		Working:        world.Working,
		Grid:           world.Grid,
	}
	wrnd := rng.New(seed, "point-workload")
	var utils []float64
	answered, total := 0, 0
	var qualSum float64
	qualN := 0
	for t := 0; t < slots; t++ {
		offers := world.Fleet.Step()
		queries := wl.Slot(t, wrnd)
		res := solver(queries, offers)
		world.Fleet.Commit(res.Selected)
		utils = append(utils, res.Welfare())
		total += len(queries)
		for _, q := range queries {
			if o, ok := res.Outcomes[q.QID()]; ok {
				answered++
				qualSum += o.Value / q.Budget()
				qualN++
			}
		}
	}
	r := Result{AvgUtility: stats.Mean(utils)}
	if total > 0 {
		r.Satisfaction = float64(answered) / float64(total)
	}
	if qualN > 0 {
		r.AvgQuality = qualSum / float64(qualN)
	}
	return r
}

// RunAggregateSim simulates the spatial-aggregate workload of §4.4 with
// either Algorithm 1 (greedy=true) or the sequential baseline.
func RunAggregateSim(world *datasets.World, budgetFactor float64, greedy bool, slots int, seed int64) Result {
	wl := &AggregateWorkload{
		MeanQueries:  30,
		BudgetFactor: budgetFactor,
		SensingRange: 10,
		RS:           world.DMax,
		Working:      world.Working,
		Grid:         world.Grid,
		// Region sizes are not specified in the paper; these keep a few
		// sensors per region so that joint selection (sharing) matters,
		// matching the sparsity the real RNC trace exhibits.
		MinDim: 8,
		MaxDim: 22,
	}
	wrnd := rng.New(seed, "agg-workload")
	var utils []float64
	var qualSum float64
	qualN := 0
	for t := 0; t < slots; t++ {
		offers := world.Fleet.Step()
		aggs := wl.Slot(t, wrnd)
		qs := make([]query.Query, len(aggs))
		for i, a := range aggs {
			qs[i] = a
		}
		var res *core.MultiResult
		if greedy {
			res = core.GreedySelect(qs, offers)
		} else {
			res = core.BaselineMultiSelect(qs, offers)
		}
		world.Fleet.Commit(res.Selected)
		utils = append(utils, res.Welfare())
		for _, a := range aggs {
			out := res.Outcomes[a.QID()]
			if out != nil && out.Value > 0 {
				qualSum += out.Value / a.Budget()
				qualN++
			}
		}
	}
	r := Result{AvgUtility: stats.Mean(utils)}
	if qualN > 0 {
		r.AvgQuality = qualSum / float64(qualN)
	}
	return r
}

// LocMonAlgorithm selects the location-monitoring acquisition variant.
type LocMonAlgorithm int

// The three series of Fig 8.
const (
	LocMonOptimal     LocMonAlgorithm = iota // Alg2-O
	LocMonLocalSearch                        // Alg2-LS
	LocMonBaseline                           // Baseline
)

// RunLocMonSim simulates the location-monitoring workload of §4.5.
// Query quality is collected when a query expires.
func RunLocMonSim(world *datasets.World, budgetFactor float64, alg LocMonAlgorithm, slots int, seed int64) Result {
	return runLocMonSim(world, budgetFactor, alg, slots, seed, 0.5)
}

// RunLocMonSimAlpha exposes the alpha control parameter for the ablation
// bench (§3.3 discusses choosing alpha; the evaluation fixes 0.5).
func RunLocMonSimAlpha(world *datasets.World, budgetFactor float64, alg LocMonAlgorithm, slots int, seed int64, alpha float64) Result {
	return runLocMonSim(world, budgetFactor, alg, slots, seed, alpha)
}

func runLocMonSim(world *datasets.World, budgetFactor float64, alg LocMonAlgorithm, slots int, seed int64, alpha float64) Result {
	wl := &LocMonWorkload{
		MaxActive:    100,
		ArrivalsMin:  2,
		ArrivalsMax:  8,
		BudgetFactor: budgetFactor,
		// The paper attributes Fig 8's small utilities to "the lack of
		// enough sensors close to the queried locations"; the synthetic
		// trace is denser than the real one, so the experiment uses a
		// tighter per-query sensing distance to recreate that scarcity
		// (see EXPERIMENTS.md).
		DMax:    world.DMax * 0.4,
		Working: world.Working,
		Grid:    world.Grid,
		Slots:   slots,
		World:   world,
	}
	wrnd := rng.New(seed, "locmon-workload")
	var active []*query.LocationMonitoring
	var utils []float64
	var qualSum float64
	qualN := 0

	solver := ExactOptimal()
	if alg == LocMonLocalSearch {
		solver = core.LocalSearchPoint(core.DefaultLocalSearchEpsilon)
	}

	for t := 0; t < slots; t++ {
		offers := world.Fleet.Step()
		newQs := wl.Spawn(t, len(active), wrnd)
		for _, q := range newQs {
			q.Alpha = alpha
		}
		active = append(active, newQs...)

		var res *core.LocMonSlotResult
		if alg == LocMonBaseline {
			res = core.RunLocationMonitoringSlotBaseline(t, active, offers)
		} else {
			res = core.RunLocationMonitoringSlot(t, active, offers, solver)
		}
		world.Fleet.Commit(res.Point.Selected)
		utils = append(utils, res.Welfare())

		// Retire expired queries and collect their end-of-life quality.
		kept := active[:0]
		for _, q := range active {
			if q.End <= t {
				qualSum += q.Quality()
				qualN++
			} else {
				kept = append(kept, q)
			}
		}
		active = kept
	}
	// Queries still active at the horizon also report quality.
	for _, q := range active {
		qualSum += q.Quality()
		qualN++
	}
	r := Result{AvgUtility: stats.Mean(utils)}
	if qualN > 0 {
		r.AvgQuality = qualSum / float64(qualN)
	}
	return r
}

// RunRegMonSim simulates the region-monitoring workload of §4.6 with
// Algorithm 3 (alg3=true: cost weighting + sharing + optimal point
// solving) or the baseline.
func RunRegMonSim(world *datasets.World, budgetFactor float64, alg3 bool, slots int, seed int64) Result {
	return runRegMonSim(world, budgetFactor, alg3, true, slots, seed)
}

// RunRegMonSimNoWeighting is the cost-weighting ablation: Algorithm 3
// machinery with w(k) disabled.
func RunRegMonSimNoWeighting(world *datasets.World, budgetFactor float64, slots int, seed int64) Result {
	return runRegMonSim(world, budgetFactor, true, false, slots, seed)
}

func runRegMonSim(world *datasets.World, budgetFactor float64, alg3, weighting bool, slots int, seed int64) Result {
	wl := &RegMonWorkload{
		BudgetFactor: budgetFactor,
		RS:           2,
		Working:      world.Working,
		Grid:         world.Grid,
		Slots:        slots,
		World:        world,
		MinW:         6, MaxW: 16,
		MinH: 5, MaxH: 12,
	}
	wrnd := rng.New(seed, "regmon-workload")
	var active []*query.RegionMonitoring
	var utils []float64
	var qualSum float64
	qualN := 0
	for t := 0; t < slots; t++ {
		offers := world.Fleet.Step()
		if q := wl.Spawn(t, wrnd); q != nil {
			active = append(active, q)
		}
		var res *core.RegMonSlotResult
		if alg3 {
			res = core.RunRegionMonitoringSlot(t, active, offers, core.RegMonOptions{
				Solver:        ExactOptimal(),
				CostWeighting: weighting,
				ShareSensors:  true,
			})
		} else {
			res = core.RunRegionMonitoringSlotBaseline(t, active, offers)
		}
		world.Fleet.Commit(res.Point.Selected)
		utils = append(utils, res.Welfare())

		kept := active[:0]
		for _, q := range active {
			if q.End <= t {
				qualSum += q.Quality()
				qualN++
			} else {
				kept = append(kept, q)
			}
		}
		active = kept
	}
	for _, q := range active {
		qualSum += q.Quality()
		qualN++
	}
	r := Result{AvgUtility: stats.Mean(utils)}
	if qualN > 0 {
		r.AvgQuality = qualSum / float64(qualN)
	}
	return r
}

// RunMixSim simulates the query mix of §4.7 (points + aggregates +
// location monitoring on the RNC-like world; region monitoring excluded as
// in the paper) with Algorithm 5 (alg5=true) or the sequential baseline.
func RunMixSim(world *datasets.World, budgetFactor float64, alg5 bool, slots int, seed int64) Result {
	pointWL := &PointWorkload{
		QueriesPerSlot: 300,
		BudgetMean:     budgetFactor,
		DMax:           world.DMax,
		Working:        world.Working,
		Grid:           world.Grid,
	}
	aggWL := &AggregateWorkload{
		MeanQueries:  30,
		BudgetFactor: budgetFactor,
		SensingRange: 10,
		RS:           world.DMax,
		Working:      world.Working,
		Grid:         world.Grid,
		MinDim:       8,
		MaxDim:       22,
	}
	lmWL := &LocMonWorkload{
		MaxActive:    100,
		ArrivalsMin:  2,
		ArrivalsMax:  8,
		BudgetFactor: budgetFactor,
		DMax:         world.DMax,
		Working:      world.Working,
		Grid:         world.Grid,
		Slots:        slots,
		World:        world,
	}
	prnd := rng.New(seed, "mix-point")
	arnd := rng.New(seed, "mix-agg")
	lrnd := rng.New(seed, "mix-locmon")

	var activeLM []*query.LocationMonitoring
	var utils []float64
	var pQual, aQual, lQual float64
	var pN, aN, lN int
	answered, total := 0, 0

	for t := 0; t < slots; t++ {
		offers := world.Fleet.Step()
		points := pointWL.Slot(t, prnd)
		aggs := aggWL.Slot(t, arnd)
		activeLM = append(activeLM, lmWL.Spawn(t, len(activeLM), lrnd)...)

		mq := core.MixQueries{Aggregates: aggs, Points: points, LocMon: activeLM}
		var res *core.MixSlotResult
		if alg5 {
			res = core.RunMixSlot(t, mq, offers)
		} else {
			res = core.RunMixSlotBaseline(t, mq, offers)
		}
		world.Fleet.Commit(res.Multi.Selected)
		utils = append(utils, res.Welfare())

		total += len(points)
		for _, q := range points {
			if o, ok := res.PointOutcomes[q.QID()]; ok {
				answered++
				pQual += o.Value / q.Budget()
				pN++
			}
		}
		for _, a := range aggs {
			if out := res.Multi.Outcomes[a.QID()]; out != nil && out.Value > 0 {
				aQual += out.Value / a.Budget()
				aN++
			}
		}

		kept := activeLM[:0]
		for _, q := range activeLM {
			if q.End <= t {
				lQual += q.Quality()
				lN++
			} else {
				kept = append(kept, q)
			}
		}
		activeLM = kept
	}
	for _, q := range activeLM {
		lQual += q.Quality()
		lN++
	}

	r := Result{AvgUtility: stats.Mean(utils)}
	if total > 0 {
		r.Satisfaction = float64(answered) / float64(total)
	}
	if pN > 0 {
		r.PointQuality = pQual / float64(pN)
	}
	if aN > 0 {
		r.AggQuality = aQual / float64(aN)
	}
	if lN > 0 {
		r.LocMonQuality = lQual / float64(lN)
	}
	return r
}
