// Package sim drives the end-to-end simulations of §4: it generates the
// per-slot query workloads, runs the acquisition algorithms against the
// datasets' sensor fleets for the 50-slot horizon, collects the paper's
// metrics (average utility per time slot, query satisfaction ratio,
// average quality of results) and regenerates every figure of the
// evaluation as a stats.Table.
package sim

import (
	"fmt"
	"math"

	"repro/internal/datasets"
	"repro/internal/geo"
	"repro/internal/query"
	"repro/internal/rng"
)

// DefaultSlots is the simulation period of §4.1 (50 time slots).
const DefaultSlots = 50

// BudgetSweep is the x-axis of Figs 2-7.
var BudgetSweep = []float64{7, 10, 15, 20, 25, 30, 35}

// BudgetSweepShort is the x-axis of Figs 8-10.
var BudgetSweepShort = []float64{7, 10, 15, 20, 25}

// PointWorkload generates the single-sensor point query stream of §4.3:
// each slot, QueriesPerSlot users submit point queries at locations picked
// uniformly over the working region.
type PointWorkload struct {
	QueriesPerSlot int
	// BudgetMean is the per-query budget; with BudgetJitter > 0 budgets
	// are drawn uniformly from [mean-jitter, mean+jitter] (Fig 4).
	BudgetMean   float64
	BudgetJitter float64
	DMax         float64
	Working      geo.Rect
	Grid         geo.Grid
}

// Slot materializes slot t's queries. Locations snap to grid-cell centers
// (the paper's regions are griditized), which lets co-located queries
// share sensors exactly.
func (w *PointWorkload) Slot(t int, rnd *rng.Stream) []*query.Point {
	out := make([]*query.Point, 0, w.QueriesPerSlot)
	for i := 0; i < w.QueriesPerSlot; i++ {
		loc := w.Grid.CellCenter(w.Grid.CellOf(geo.Pt(
			rnd.Uniform(w.Working.MinX, w.Working.MaxX),
			rnd.Uniform(w.Working.MinY, w.Working.MaxY),
		)))
		b := w.BudgetMean
		if w.BudgetJitter > 0 {
			b = rnd.Uniform(w.BudgetMean-w.BudgetJitter, w.BudgetMean+w.BudgetJitter)
		}
		out = append(out, query.NewPoint(fmt.Sprintf("p%d-%d", t, i), loc, b, w.DMax))
	}
	return out
}

// AggregateWorkload generates the spatial aggregate stream of §4.4: a
// uniformly random number of queries per slot with mean 30, random
// regions, sensing range 10 and budget A(r)/(1.5 rs) * b.
type AggregateWorkload struct {
	MeanQueries  int
	BudgetFactor float64
	SensingRange float64
	// RS is the average sensor coverage used in the budget formula (set to
	// dmax in §4.4).
	RS      float64
	Working geo.Rect
	Grid    geo.Grid
	// MinDim/MaxDim bound the random region side lengths.
	MinDim, MaxDim float64
}

// Slot materializes slot t's aggregate queries.
func (w *AggregateWorkload) Slot(t int, rnd *rng.Stream) []*query.Aggregate {
	n := rnd.IntBetween(w.MeanQueries/2, w.MeanQueries*3/2)
	out := make([]*query.Aggregate, 0, n)
	for i := 0; i < n; i++ {
		width := rnd.Uniform(w.MinDim, w.MaxDim)
		height := rnd.Uniform(w.MinDim, w.MaxDim)
		x := rnd.Uniform(w.Working.MinX, math.Max(w.Working.MinX, w.Working.MaxX-width))
		y := rnd.Uniform(w.Working.MinY, math.Max(w.Working.MinY, w.Working.MaxY-height))
		region := geo.NewRect(x, y, math.Min(x+width, w.Working.MaxX), math.Min(y+height, w.Working.MaxY))
		budget := region.Area() / (1.5 * w.RS) * w.BudgetFactor
		out = append(out, query.NewAggregate(fmt.Sprintf("a%d-%d", t, i), region, budget, w.SensingRange, w.Grid))
	}
	return out
}

// LocMonWorkload manages the location-monitoring population of §4.5: the
// number of active plus new queries stays below MaxActive (100); durations
// are uniform in [5,20]; the number of desired sampling times is one third
// of the duration; the budget is duration times the budget factor.
type LocMonWorkload struct {
	MaxActive    int
	ArrivalsMin  int
	ArrivalsMax  int
	BudgetFactor float64
	DMax         float64
	Working      geo.Rect
	Grid         geo.Grid
	Slots        int
	World        *datasets.World

	counter int
}

// Spawn returns the new queries arriving at slot t given the currently
// active count.
func (w *LocMonWorkload) Spawn(t, active int, rnd *rng.Stream) []*query.LocationMonitoring {
	n := rnd.IntBetween(w.ArrivalsMin, w.ArrivalsMax)
	if active+n >= w.MaxActive {
		n = w.MaxActive - 1 - active
	}
	var out []*query.LocationMonitoring
	for i := 0; i < n; i++ {
		loc := w.Grid.CellCenter(w.Grid.CellOf(geo.Pt(
			rnd.Uniform(w.Working.MinX, w.Working.MaxX),
			rnd.Uniform(w.Working.MinY, w.Working.MaxY),
		)))
		dur := rnd.IntBetween(5, 20)
		end := t + dur
		if end > w.Slots-1 {
			end = w.Slots - 1
		}
		if end <= t {
			continue
		}
		samples := dur / 3
		if samples < 1 {
			samples = 1
		}
		hist := w.World.History(loc, w.Slots)
		w.counter++
		q := query.NewLocationMonitoring(fmt.Sprintf("lm%d", w.counter), loc, t, end,
			float64(dur)*w.BudgetFactor, w.DMax, hist, samples)
		out = append(out, q)
	}
	return out
}

// RegMonWorkload creates one region-monitoring query per slot (§4.6) with
// budget A(r)/(3 pi rs^2) * b, rs = 2.
type RegMonWorkload struct {
	BudgetFactor float64
	RS           float64
	Working      geo.Rect
	Grid         geo.Grid
	Slots        int
	World        *datasets.World
	// MinW/MaxW and MinH/MaxH bound region dimensions.
	MinW, MaxW, MinH, MaxH float64

	counter int
}

// Spawn returns slot t's new region query.
func (w *RegMonWorkload) Spawn(t int, rnd *rng.Stream) *query.RegionMonitoring {
	width := rnd.Uniform(w.MinW, w.MaxW)
	height := rnd.Uniform(w.MinH, w.MaxH)
	x := rnd.Uniform(w.Working.MinX, math.Max(w.Working.MinX, w.Working.MaxX-width))
	y := rnd.Uniform(w.Working.MinY, math.Max(w.Working.MinY, w.Working.MaxY-height))
	region := geo.NewRect(x, y, math.Min(x+width, w.Working.MaxX), math.Min(y+height, w.Working.MaxY))
	dur := rnd.IntBetween(5, 20)
	end := t + dur
	if end > w.Slots-1 {
		end = w.Slots - 1
	}
	budget := region.Area() / (3 * math.Pi * w.RS * w.RS) * w.BudgetFactor
	w.counter++
	return query.NewRegionMonitoring(fmt.Sprintf("rm%d", w.counter), region, t, end, budget, w.World.GPModel, w.Grid)
}
