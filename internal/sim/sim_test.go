package sim

import (
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/datasets"
	"repro/internal/rng"
)

// Reduced-scale parameters keep the test suite fast while preserving the
// paper's qualitative relationships.
const testSlots = 12

func TestPointWorkloadDeterministicAndInRegion(t *testing.T) {
	w := datasets.NewRWM(1, 50, datasets.SensorConfig{})
	wl := &PointWorkload{QueriesPerSlot: 40, BudgetMean: 15, DMax: w.DMax, Working: w.Working, Grid: w.Grid}
	a := wl.Slot(0, rng.New(9, "wl"))
	b := wl.Slot(0, rng.New(9, "wl"))
	if len(a) != 40 || len(b) != 40 {
		t.Fatalf("lens %d %d", len(a), len(b))
	}
	for i := range a {
		if a[i].Loc != b[i].Loc || a[i].B != b[i].B {
			t.Fatal("workload not deterministic")
		}
		if !w.Working.Contains(a[i].Loc) {
			t.Fatalf("query outside working region: %v", a[i].Loc)
		}
		if a[i].B != 15 {
			t.Fatalf("fixed budget broken: %v", a[i].B)
		}
	}
}

func TestPointWorkloadJitter(t *testing.T) {
	w := datasets.NewRWM(1, 10, datasets.SensorConfig{})
	wl := &PointWorkload{QueriesPerSlot: 200, BudgetMean: 15, BudgetJitter: 10, DMax: w.DMax, Working: w.Working, Grid: w.Grid}
	qs := wl.Slot(0, rng.New(3, "wl"))
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, q := range qs {
		lo = math.Min(lo, q.B)
		hi = math.Max(hi, q.B)
	}
	if lo < 5 || hi > 25 {
		t.Errorf("budgets outside [5,25]: [%v,%v]", lo, hi)
	}
	if hi-lo < 10 {
		t.Errorf("budget spread too small: [%v,%v]", lo, hi)
	}
}

func TestAggregateWorkloadBudgets(t *testing.T) {
	w := datasets.NewRNC(1, datasets.SensorConfig{})
	wl := &AggregateWorkload{
		MeanQueries: 30, BudgetFactor: 15, SensingRange: 10, RS: 10,
		Working: w.Working, Grid: w.Grid, MinDim: 10, MaxDim: 40,
	}
	qs := wl.Slot(0, rng.New(5, "wl"))
	if len(qs) < 15 || len(qs) > 45 {
		t.Errorf("query count %d outside [15,45]", len(qs))
	}
	for _, q := range qs {
		want := q.Region.Area() / (1.5 * 10) * 15
		if math.Abs(q.B-want) > 1e-9 {
			t.Fatalf("budget %v != A/(1.5 rs)*b = %v", q.B, want)
		}
		if q.Region.Width() > 40+1e-9 || q.Region.Height() > 40+1e-9 {
			t.Fatalf("region too large: %v", q.Region)
		}
	}
}

func TestLocMonWorkloadCapsActive(t *testing.T) {
	w := datasets.NewRNC(1, datasets.SensorConfig{})
	wl := &LocMonWorkload{
		MaxActive: 10, ArrivalsMin: 8, ArrivalsMax: 8, BudgetFactor: 15,
		DMax: w.DMax, Working: w.Working, Grid: w.Grid, Slots: 50, World: w,
	}
	rnd := rng.New(7, "wl")
	active := 0
	for t2 := 0; t2 < 5; t2++ {
		got := wl.Spawn(t2, active, rnd)
		active += len(got)
		if active >= 10 {
			t.Fatalf("active %d reached cap", active)
		}
	}
}

func TestRunPointSimOrderingHolds(t *testing.T) {
	// The paper's central claim at reduced scale: Optimal >= LocalSearch
	// >> Baseline in utility; baseline answers nothing at budget 7.
	mk := func() *datasets.World { return datasets.NewRWM(2, 200, datasets.SensorConfig{}) }
	const q = 300
	opt7 := RunPointSim(mk(), q, 7, 0, ExactOptimal(), testSlots, 2)
	ls7 := RunPointSim(mk(), q, 7, 0, core.LocalSearchPoint(core.DefaultLocalSearchEpsilon), testSlots, 2)
	base7 := RunPointSim(mk(), q, 7, 0, core.BaselinePoint(), testSlots, 2)

	if base7.Satisfaction != 0 {
		t.Errorf("baseline at budget 7 answered %.2f of queries, want 0", base7.Satisfaction)
	}
	if opt7.Satisfaction < 0.3 {
		t.Errorf("optimal at budget 7 answered only %.2f", opt7.Satisfaction)
	}
	if opt7.AvgUtility < ls7.AvgUtility-1e-6 {
		t.Errorf("optimal %v below local search %v", opt7.AvgUtility, ls7.AvgUtility)
	}
	if ls7.AvgUtility <= base7.AvgUtility {
		t.Errorf("local search %v not above baseline %v", ls7.AvgUtility, base7.AvgUtility)
	}
}

func TestRunPointSimUtilityGrowsWithBudget(t *testing.T) {
	mk := func() *datasets.World { return datasets.NewRWM(3, 120, datasets.SensorConfig{}) }
	low := RunPointSim(mk(), 120, 10, 0, ExactOptimal(), testSlots, 3)
	high := RunPointSim(mk(), 120, 30, 0, ExactOptimal(), testSlots, 3)
	if high.AvgUtility <= low.AvgUtility {
		t.Errorf("utility did not grow with budget: %v -> %v", low.AvgUtility, high.AvgUtility)
	}
	if high.Satisfaction < low.Satisfaction-0.02 {
		t.Errorf("satisfaction dropped with budget: %v -> %v", low.Satisfaction, high.Satisfaction)
	}
}

func TestRunPointSimPrivacyCostLowersUtility(t *testing.T) {
	// Fig 6 versus Fig 3: privacy-sensitive sensors with linear energy
	// cost yield less utility than free sensors.
	plain := RunPointSim(datasets.NewRWM(4, 120, datasets.SensorConfig{}),
		120, 15, 0, ExactOptimal(), testSlots, 4)
	costly := RunPointSim(datasets.NewRWM(4, 120, datasets.SensorConfig{RandomPSL: true, LinearEnergy: true}),
		120, 15, 0, ExactOptimal(), testSlots, 4)
	if costly.AvgUtility >= plain.AvgUtility {
		t.Errorf("privacy+energy costs did not lower utility: %v >= %v", costly.AvgUtility, plain.AvgUtility)
	}
}

func TestRunAggregateSimGreedyBeatsBaseline(t *testing.T) {
	g := RunAggregateSim(datasets.NewRNC(5, datasets.SensorConfig{}), 15, true, testSlots, 5)
	b := RunAggregateSim(datasets.NewRNC(5, datasets.SensorConfig{}), 15, false, testSlots, 5)
	if g.AvgUtility <= b.AvgUtility {
		t.Errorf("greedy %v not above baseline %v", g.AvgUtility, b.AvgUtility)
	}
	if g.AvgQuality <= 0 || g.AvgQuality > 1.2 {
		t.Errorf("greedy quality = %v", g.AvgQuality)
	}
}

func TestRunLocMonSimOrdering(t *testing.T) {
	o := RunLocMonSim(datasets.NewRNC(6, datasets.SensorConfig{}), 15, LocMonOptimal, testSlots, 6)
	b := RunLocMonSim(datasets.NewRNC(6, datasets.SensorConfig{}), 15, LocMonBaseline, testSlots, 6)
	if o.AvgUtility < b.AvgUtility {
		t.Errorf("Alg2-O %v below baseline %v", o.AvgUtility, b.AvgUtility)
	}
	if o.AvgQuality <= 0 {
		t.Error("Alg2-O quality should be positive")
	}
}

func TestRunRegMonSimOrdering(t *testing.T) {
	a := RunRegMonSim(datasets.NewIntelLab(7, datasets.SensorConfig{}), 15, true, testSlots, 7)
	b := RunRegMonSim(datasets.NewIntelLab(7, datasets.SensorConfig{}), 15, false, testSlots, 7)
	if a.AvgUtility < b.AvgUtility-1e-9 {
		t.Errorf("Alg3 %v below baseline %v", a.AvgUtility, b.AvgUtility)
	}
	if a.AvgQuality <= 0 {
		t.Error("Alg3 quality should be positive")
	}
}

func TestRunMixSimOrdering(t *testing.T) {
	cfg := datasets.SensorConfig{Lifetime: 25, RandomPSL: true, LinearEnergy: true}
	a := RunMixSim(datasets.NewRNC(8, cfg), 10, true, testSlots, 8)
	b := RunMixSim(datasets.NewRNC(8, cfg), 10, false, testSlots, 8)
	if a.AvgUtility <= b.AvgUtility {
		t.Errorf("Alg5 %v not above baseline %v", a.AvgUtility, b.AvgUtility)
	}
	if a.PointQuality <= 0 || a.AggQuality <= 0 {
		t.Errorf("mix qualities: point=%v agg=%v", a.PointQuality, a.AggQuality)
	}
}

func TestRunPointSimReproducible(t *testing.T) {
	a := RunPointSim(datasets.NewRWM(9, 80, datasets.SensorConfig{}), 80, 15, 0, ExactOptimal(), testSlots, 9)
	b := RunPointSim(datasets.NewRWM(9, 80, datasets.SensorConfig{}), 80, 15, 0, ExactOptimal(), testSlots, 9)
	if a.AvgUtility != b.AvgUtility || a.Satisfaction != b.Satisfaction {
		t.Error("same-seed runs differ")
	}
}

func TestFigureRegistry(t *testing.T) {
	if len(Figures) != 14 {
		t.Errorf("expected 14 registered figures, got %d", len(Figures))
	}
	seen := map[string]bool{}
	for _, f := range Figures {
		if f.ID == "" || f.Title == "" || f.Run == nil {
			t.Errorf("malformed figure %+v", f)
		}
		if seen[f.ID] {
			t.Errorf("duplicate figure id %s", f.ID)
		}
		seen[f.ID] = true
	}
	if _, ok := FigureByID("fig2"); !ok {
		t.Error("fig2 not found")
	}
	if _, ok := FigureByID("nope"); ok {
		t.Error("bogus id found")
	}
}

func TestFigureRunsAtTinyScale(t *testing.T) {
	// Every registered figure must run end to end at tiny scale and emit
	// well-formed tables.
	opts := Options{Slots: 3, Seed: 1, Budgets: []float64{10, 15}, QueriesPerSlot: 40}
	for _, f := range Figures {
		if f.ID == "fig5" {
			// fig5's x-axis is a query count, not a budget.
			continue
		}
		tables := f.Run(opts)
		if len(tables) == 0 {
			t.Errorf("%s produced no tables", f.ID)
			continue
		}
		for _, tab := range tables {
			if len(tab.XS) != 2 {
				t.Errorf("%s table %q has %d x-values, want 2", f.ID, tab.Title, len(tab.XS))
			}
			if len(tab.Series) == 0 {
				t.Errorf("%s table %q has no series", f.ID, tab.Title)
			}
			for _, s := range tab.Series {
				if len(s.Values) != len(tab.XS) {
					t.Errorf("%s series %q length mismatch", f.ID, s.Name)
				}
				for _, v := range s.Values {
					if math.IsNaN(v) || math.IsInf(v, 0) {
						t.Errorf("%s series %q has non-finite value", f.ID, s.Name)
					}
				}
			}
			if out := tab.Render(); len(out) == 0 {
				t.Errorf("%s table render empty", f.ID)
			}
		}
	}
}

func TestFig5TinyScale(t *testing.T) {
	tables := fig5(Options{Slots: 2, Seed: 1, Budgets: []float64{30, 60}})
	if len(tables) != 2 {
		t.Fatalf("fig5 tables = %d", len(tables))
	}
	for _, tab := range tables {
		if len(tab.Series) != 3 {
			t.Errorf("fig5 table %q series = %d want 3", tab.Title, len(tab.Series))
		}
	}
}
