package sim

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/datasets"
	"repro/internal/stats"
)

// Options tunes a figure run. Zero values select the paper's parameters.
type Options struct {
	Slots   int
	Seed    int64
	Budgets []float64
	// QueriesPerSlot overrides the point-query load (Figs 2-4; 300 in the
	// paper).
	QueriesPerSlot int
}

func (o Options) withDefaults(defBudgets []float64) Options {
	if o.Slots == 0 {
		o.Slots = DefaultSlots
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	if len(o.Budgets) == 0 {
		o.Budgets = defBudgets
	}
	if o.QueriesPerSlot == 0 {
		o.QueriesPerSlot = 300
	}
	return o
}

// Figure regenerates one of the paper's figures as data tables.
type Figure struct {
	ID    string
	Title string
	Run   func(Options) []stats.Table
}

// pointSolvers are the three series of Figs 2-6.
func pointSolvers() []struct {
	name   string
	solver core.PointSolver
} {
	return []struct {
		name   string
		solver core.PointSolver
	}{
		{"Optimal", ExactOptimal()},
		{"LocalSearch", core.LocalSearchPoint(core.DefaultLocalSearchEpsilon)},
		{"Baseline", core.BaselinePoint()},
	}
}

// pointFigure runs the three point solvers over a budget sweep and emits
// the (a) average-utility and (b) satisfaction-ratio tables.
func pointFigure(id, dataset string, worldFn func() *datasets.World, jitter float64, o Options) []stats.Table {
	ta := stats.Table{Title: fmt.Sprintf("%s(a) avg utility per slot [%s]", id, dataset), XLabel: "budget", XS: o.Budgets}
	tb := stats.Table{Title: fmt.Sprintf("%s(b) satisfaction ratio [%s]", id, dataset), XLabel: "budget", XS: o.Budgets}
	for _, alg := range pointSolvers() {
		var utility, satisfaction []float64
		for _, b := range o.Budgets {
			res := RunPointSim(worldFn(), o.QueriesPerSlot, b, jitter, alg.solver, o.Slots, o.Seed)
			utility = append(utility, res.AvgUtility)
			satisfaction = append(satisfaction, res.Satisfaction)
		}
		ta.AddSeries(alg.name, utility)
		tb.AddSeries(alg.name, satisfaction)
	}
	return []stats.Table{ta, tb}
}

func fig2(o Options) []stats.Table {
	o = o.withDefaults(BudgetSweep)
	return pointFigure("Fig2", "RWM", func() *datasets.World {
		return datasets.NewRWM(o.Seed, 200, datasets.SensorConfig{})
	}, 0, o)
}

func fig3(o Options) []stats.Table {
	o = o.withDefaults(BudgetSweep)
	return pointFigure("Fig3", "RNC", func() *datasets.World {
		return datasets.NewRNC(o.Seed, datasets.SensorConfig{})
	}, 0, o)
}

func fig4(o Options) []stats.Table {
	o = o.withDefaults(BudgetSweep)
	tables := pointFigure("Fig4", "RNC uniform budget", func() *datasets.World {
		return datasets.NewRNC(o.Seed, datasets.SensorConfig{})
	}, 10, o)
	tables[0].XLabel = "mean budget"
	tables[1].XLabel = "mean budget"
	return tables
}

func fig5(o Options) []stats.Table {
	o = o.withDefaults([]float64{250, 500, 750, 1000}) // x-axis is #queries here
	ta := stats.Table{Title: "Fig5(a) avg utility per slot [RNC, budget 15]", XLabel: "queries", XS: o.Budgets}
	tb := stats.Table{Title: "Fig5(b) satisfaction ratio [RNC, budget 15]", XLabel: "queries", XS: o.Budgets}
	for _, alg := range pointSolvers() {
		var utility, satisfaction []float64
		for _, n := range o.Budgets {
			world := datasets.NewRNC(o.Seed, datasets.SensorConfig{})
			res := RunPointSim(world, int(n), 15, 0, alg.solver, o.Slots, o.Seed)
			utility = append(utility, res.AvgUtility)
			satisfaction = append(satisfaction, res.Satisfaction)
		}
		ta.AddSeries(alg.name, utility)
		tb.AddSeries(alg.name, satisfaction)
	}
	return []stats.Table{ta, tb}
}

func fig6(o Options) []stats.Table {
	o = o.withDefaults(BudgetSweep)
	var out []stats.Table
	for _, lifetime := range []int{50, 25} {
		cfg := datasets.SensorConfig{Lifetime: lifetime, RandomPSL: true, LinearEnergy: true}
		sub := pointFigure(fmt.Sprintf("Fig6 lifetime=%d", lifetime), "RNC privacy+linear-energy",
			func() *datasets.World { return datasets.NewRNC(o.Seed, cfg) }, 0, o)
		out = append(out, sub...)
	}
	return out
}

func fig7(o Options) []stats.Table {
	o = o.withDefaults(BudgetSweep)
	ta := stats.Table{Title: "Fig7(a) avg utility per slot [aggregate, RNC]", XLabel: "budget factor", XS: o.Budgets}
	tb := stats.Table{Title: "Fig7(b) avg quality of results [aggregate, RNC]", XLabel: "budget factor", XS: o.Budgets}
	for _, alg := range []struct {
		name   string
		greedy bool
	}{{"Greedy", true}, {"Baseline", false}} {
		var utility, quality []float64
		for _, b := range o.Budgets {
			world := datasets.NewRNC(o.Seed, datasets.SensorConfig{})
			res := RunAggregateSim(world, b, alg.greedy, o.Slots, o.Seed)
			utility = append(utility, res.AvgUtility)
			quality = append(quality, res.AvgQuality)
		}
		ta.AddSeries(alg.name, utility)
		tb.AddSeries(alg.name, quality)
	}
	return []stats.Table{ta, tb}
}

func fig8(o Options) []stats.Table {
	o = o.withDefaults(BudgetSweepShort)
	ta := stats.Table{Title: "Fig8(a) avg utility per slot [location monitoring]", XLabel: "budget factor", XS: o.Budgets}
	tb := stats.Table{Title: "Fig8(b) avg quality of results [location monitoring]", XLabel: "budget factor", XS: o.Budgets}
	for _, alg := range []struct {
		name string
		alg  LocMonAlgorithm
	}{{"Alg2-O", LocMonOptimal}, {"Alg2-LS", LocMonLocalSearch}, {"Baseline", LocMonBaseline}} {
		var utility, quality []float64
		for _, b := range o.Budgets {
			world := datasets.NewRNC(o.Seed, datasets.SensorConfig{})
			res := RunLocMonSim(world, b, alg.alg, o.Slots, o.Seed)
			utility = append(utility, res.AvgUtility)
			quality = append(quality, res.AvgQuality)
		}
		ta.AddSeries(alg.name, utility)
		tb.AddSeries(alg.name, quality)
	}
	return []stats.Table{ta, tb}
}

func fig9(o Options) []stats.Table {
	o = o.withDefaults(BudgetSweepShort)
	ta := stats.Table{Title: "Fig9(a) avg utility per slot [region monitoring, IntelLab]", XLabel: "budget factor", XS: o.Budgets}
	tb := stats.Table{Title: "Fig9(b) avg quality of results [region monitoring, IntelLab]", XLabel: "budget factor", XS: o.Budgets}
	for _, alg := range []struct {
		name string
		alg3 bool
	}{{"Alg3", true}, {"Baseline", false}} {
		var utility, quality []float64
		for _, b := range o.Budgets {
			world := datasets.NewIntelLab(o.Seed, datasets.SensorConfig{})
			res := RunRegMonSim(world, b, alg.alg3, o.Slots, o.Seed)
			utility = append(utility, res.AvgUtility)
			quality = append(quality, res.AvgQuality)
		}
		ta.AddSeries(alg.name, utility)
		tb.AddSeries(alg.name, quality)
	}
	return []stats.Table{ta, tb}
}

func fig10(o Options) []stats.Table {
	o = o.withDefaults(BudgetSweepShort)
	ta := stats.Table{Title: "Fig10(a) avg utility per slot [query mix, RNC]", XLabel: "budget factor", XS: o.Budgets}
	tp := stats.Table{Title: "Fig10(b) avg quality: point queries", XLabel: "budget factor", XS: o.Budgets}
	tg := stats.Table{Title: "Fig10(c) avg quality: aggregate queries", XLabel: "budget factor", XS: o.Budgets}
	tl := stats.Table{Title: "Fig10(d) avg quality: location monitoring", XLabel: "budget factor", XS: o.Budgets}
	cfg := datasets.SensorConfig{Lifetime: 25, RandomPSL: true, LinearEnergy: true}
	for _, alg := range []struct {
		name string
		alg5 bool
	}{{"Alg5", true}, {"Baseline", false}} {
		var utility, pq, aq, lq []float64
		for _, b := range o.Budgets {
			world := datasets.NewRNC(o.Seed, cfg)
			res := RunMixSim(world, b, alg.alg5, o.Slots, o.Seed)
			utility = append(utility, res.AvgUtility)
			pq = append(pq, res.PointQuality)
			aq = append(aq, res.AggQuality)
			lq = append(lq, res.LocMonQuality)
		}
		ta.AddSeries(alg.name, utility)
		tp.AddSeries(alg.name, pq)
		tg.AddSeries(alg.name, aq)
		tl.AddSeries(alg.name, lq)
	}
	return []stats.Table{ta, tp, tg, tl}
}

// trustSweep is the §4.7 text experiment: "the more trustworthy the
// sensors are, the more utility they bring to the queries".
func trustSweep(o Options) []stats.Table {
	o = o.withDefaults([]float64{0.3, 0.5, 0.7, 0.9, 1.0}) // mean trust levels
	t := stats.Table{Title: "TrustSweep: avg utility vs mean sensor trust [RNC, budget 15]", XLabel: "mean trust", XS: o.Budgets}
	var utility []float64
	for _, mean := range o.Budgets {
		cfg := datasets.SensorConfig{}
		if mean < 1 {
			cfg.TrustMin, cfg.TrustMax = mean-0.1, mean+0.1
		} else {
			cfg.TrustMin, cfg.TrustMax = 0.999, 1.0
		}
		world := datasets.NewRNC(o.Seed, cfg)
		res := RunPointSim(world, o.QueriesPerSlot, 15, 0, ExactOptimal(), o.Slots, o.Seed)
		utility = append(utility, res.AvgUtility)
	}
	t.AddSeries("Optimal", utility)
	return []stats.Table{t}
}

// ablationLocalSearch compares local-search variants (A1).
func ablationLocalSearch(o Options) []stats.Table {
	o = o.withDefaults([]float64{7, 15, 25, 35})
	t := stats.Table{Title: "Ablation A1: local-search variants [RNC]", XLabel: "budget", XS: o.Budgets}
	algs := []struct {
		name   string
		solver core.PointSolver
	}{
		{"LS eps=0.01", core.LocalSearchPoint(0.01)},
		{"LS eps=0.5", core.LocalSearchPoint(0.5)},
		{"RandLS x3", core.RandomizedLocalSearchPoint(0.01, 3, 7)},
		{"Greedy", core.GreedyPoint()},
	}
	for _, alg := range algs {
		var utility []float64
		for _, b := range o.Budgets {
			world := datasets.NewRNC(o.Seed, datasets.SensorConfig{})
			res := RunPointSim(world, o.QueriesPerSlot, b, 0, alg.solver, o.Slots, o.Seed)
			utility = append(utility, res.AvgUtility)
		}
		t.AddSeries(alg.name, utility)
	}
	return []stats.Table{t}
}

// ablationCostWeighting toggles w(k) in region monitoring (A2).
func ablationCostWeighting(o Options) []stats.Table {
	o = o.withDefaults(BudgetSweepShort)
	t := stats.Table{Title: "Ablation A2: region monitoring cost weighting", XLabel: "budget factor", XS: o.Budgets}
	var with, without []float64
	for _, b := range o.Budgets {
		w1 := datasets.NewIntelLab(o.Seed, datasets.SensorConfig{})
		with = append(with, RunRegMonSim(w1, b, true, o.Slots, o.Seed).AvgUtility)
		w2 := datasets.NewIntelLab(o.Seed, datasets.SensorConfig{})
		without = append(without, RunRegMonSimNoWeighting(w2, b, o.Slots, o.Seed).AvgUtility)
	}
	t.AddSeries("w(k) on", with)
	t.AddSeries("w(k) off", without)
	return []stats.Table{t}
}

// ablationAlpha sweeps the extra-budget control of Algorithm 2 (A3).
func ablationAlpha(o Options) []stats.Table {
	o = o.withDefaults([]float64{0, 0.25, 0.5, 0.75, 1})
	t := stats.Table{Title: "Ablation A3: alpha control for location monitoring [budget factor 15]", XLabel: "alpha", XS: o.Budgets}
	var utility, quality []float64
	for _, a := range o.Budgets {
		world := datasets.NewRNC(o.Seed, datasets.SensorConfig{})
		res := RunLocMonSimAlpha(world, 15, LocMonOptimal, o.Slots, o.Seed, a)
		utility = append(utility, res.AvgUtility)
		quality = append(quality, res.AvgQuality)
	}
	t.AddSeries("AvgUtility", utility)
	t.AddSeries("AvgQuality", quality)
	return []stats.Table{t}
}

// ablationEgalitarian compares the welfare and egalitarian objectives (A4).
func ablationEgalitarian(o Options) []stats.Table {
	o = o.withDefaults([]float64{7, 10, 15, 20})
	tu := stats.Table{Title: "Ablation A4: welfare vs egalitarian — avg utility", XLabel: "budget", XS: o.Budgets}
	ts := stats.Table{Title: "Ablation A4: welfare vs egalitarian — satisfaction", XLabel: "budget", XS: o.Budgets}
	algs := []struct {
		name   string
		solver core.PointSolver
	}{
		{"Optimal", ExactOptimal()},
		{"Egalitarian", core.EgalitarianPoint()},
	}
	for _, alg := range algs {
		var utility, satisfaction []float64
		for _, b := range o.Budgets {
			world := datasets.NewRNC(o.Seed, datasets.SensorConfig{})
			res := RunPointSim(world, o.QueriesPerSlot, b, 0, alg.solver, o.Slots, o.Seed)
			utility = append(utility, res.AvgUtility)
			satisfaction = append(satisfaction, res.Satisfaction)
		}
		tu.AddSeries(alg.name, utility)
		ts.AddSeries(alg.name, satisfaction)
	}
	return []stats.Table{tu, ts}
}

// Figures is the registry of every reproduced figure and extension
// experiment; cmd/psbench and the benchmark harness iterate it.
var Figures = []Figure{
	{ID: "fig2", Title: "Single-sensor point queries, RWM (Fig 2)", Run: fig2},
	{ID: "fig3", Title: "Single-sensor point queries, RNC (Fig 3)", Run: fig3},
	{ID: "fig4", Title: "Uniformly distributed budget (Fig 4)", Run: fig4},
	{ID: "fig5", Title: "Varying the number of queries (Fig 5)", Run: fig5},
	{ID: "fig6", Title: "Random PSL and linear energy cost (Fig 6)", Run: fig6},
	{ID: "fig7", Title: "Spatial aggregate queries (Fig 7)", Run: fig7},
	{ID: "fig8", Title: "Location monitoring queries (Fig 8)", Run: fig8},
	{ID: "fig9", Title: "Region monitoring queries (Fig 9)", Run: fig9},
	{ID: "fig10", Title: "Query mix (Fig 10)", Run: fig10},
	{ID: "trust", Title: "Trust sweep (§4.7 text)", Run: trustSweep},
	{ID: "ablation-ls", Title: "Ablation A1: local search variants", Run: ablationLocalSearch},
	{ID: "ablation-weight", Title: "Ablation A2: cost weighting", Run: ablationCostWeighting},
	{ID: "ablation-alpha", Title: "Ablation A3: alpha control", Run: ablationAlpha},
	{ID: "ablation-egalitarian", Title: "Ablation A4: egalitarian objective", Run: ablationEgalitarian},
}

// FigureByID looks a figure up.
func FigureByID(id string) (Figure, bool) {
	for _, f := range Figures {
		if f.ID == id {
			return f, true
		}
	}
	return Figure{}, false
}
