package mobility

import (
	"testing"

	"repro/internal/geo"
	"repro/internal/rng"
)

func TestRandomWaypointStaysInRegion(t *testing.T) {
	region := geo.NewRect(0, 0, 80, 80)
	m := NewRandomWaypoint(50, region, nil, rng.New(1, "rwm"))
	if m.N() != 50 {
		t.Fatalf("N=%d", m.N())
	}
	for slot := 0; slot < 100; slot++ {
		for i, p := range m.Step() {
			if !region.Contains(p) {
				t.Fatalf("slot %d sensor %d escaped region: %v", slot, i, p)
			}
		}
	}
}

func TestRandomWaypointAxisAlignedMoves(t *testing.T) {
	region := geo.NewRect(0, 0, 1000, 1000) // huge so clamping never kicks in
	m := NewRandomWaypoint(20, region, []float64{5}, rng.New(2, "rwm2"))
	prev := m.Step()
	for slot := 0; slot < 20; slot++ {
		cur := m.Step()
		for i := range cur {
			dx := cur[i].X - prev[i].X
			dy := cur[i].Y - prev[i].Y
			if dx != 0 && dy != 0 {
				t.Fatalf("diagonal move: sensor %d moved (%v,%v)", i, dx, dy)
			}
			if dx > 5+1e-9 || dx < -5-1e-9 || dy > 5+1e-9 || dy < -5-1e-9 {
				t.Fatalf("sensor %d moved faster than max speed: (%v,%v)", i, dx, dy)
			}
		}
		prev = cur
	}
}

func TestRandomWaypointDeterminism(t *testing.T) {
	region := geo.NewRect(0, 0, 80, 80)
	a := NewRandomWaypoint(10, region, nil, rng.New(7, "det"))
	b := NewRandomWaypoint(10, region, nil, rng.New(7, "det"))
	for slot := 0; slot < 10; slot++ {
		pa, pb := a.Step(), b.Step()
		for i := range pa {
			if pa[i] != pb[i] {
				t.Fatalf("slot %d sensor %d diverged", slot, i)
			}
		}
	}
}

func TestRandomWaypointEventuallyMoves(t *testing.T) {
	region := geo.NewRect(0, 0, 80, 80)
	m := NewRandomWaypoint(5, region, nil, rng.New(3, "mv"))
	start := m.Step()
	moved := false
	for slot := 0; slot < 20 && !moved; slot++ {
		for i, p := range m.Step() {
			if p != start[i] {
				moved = true
				break
			}
		}
	}
	if !moved {
		t.Error("no sensor moved over 20 slots")
	}
}

func TestTripSynthesizerStaysInRegion(t *testing.T) {
	region := geo.NewRect(0, 0, 237, 300)
	hotspot := geo.NewRect(70, 100, 170, 200)
	m := NewTripSynthesizer(100, region, hotspot, TripConfig{}, rng.New(4, "trip"))
	for slot := 0; slot < 60; slot++ {
		for i, p := range m.Step() {
			if !region.Contains(p) {
				t.Fatalf("slot %d sensor %d escaped: %v", slot, i, p)
			}
		}
	}
}

// TestTripSynthesizerCalibration checks the RNC substitution: with the
// paper's geometry (237x300 region, 100x100 hotspot, 635 sensors) the
// per-slot hotspot population must be in the vicinity of the reported 120.
func TestTripSynthesizerCalibration(t *testing.T) {
	region := geo.NewRect(0, 0, 237, 300)
	hotspot := geo.NewRect(70, 100, 170, 200)
	m := NewTripSynthesizer(635, region, hotspot, TripConfig{}, rng.New(5, "rnc"))
	var total int
	slots := 50
	for slot := 0; slot < slots; slot++ {
		total += CountIn(m.Step(), hotspot)
	}
	avg := float64(total) / float64(slots)
	if avg < 90 || avg > 160 {
		t.Errorf("hotspot population = %.1f, want ≈120 (90..160)", avg)
	}
}

func TestTripSynthesizerChurn(t *testing.T) {
	// Sensors must enter AND leave the hotspot over time — churn is what
	// motivates the paper's myopic optimization.
	region := geo.NewRect(0, 0, 237, 300)
	hotspot := geo.NewRect(70, 100, 170, 200)
	m := NewTripSynthesizer(200, region, hotspot, TripConfig{}, rng.New(6, "churn"))
	inPrev := make([]bool, m.N())
	for i, p := range m.Step() {
		inPrev[i] = hotspot.Contains(p)
	}
	entered, left := 0, 0
	for slot := 0; slot < 50; slot++ {
		for i, p := range m.Step() {
			now := hotspot.Contains(p)
			if now && !inPrev[i] {
				entered++
			}
			if !now && inPrev[i] {
				left++
			}
			inPrev[i] = now
		}
	}
	if entered < 20 || left < 20 {
		t.Errorf("hotspot churn too low: entered=%d left=%d", entered, left)
	}
}

func TestStationaryNeverMoves(t *testing.T) {
	pts := []geo.Point{geo.Pt(1, 2), geo.Pt(3, 4)}
	m := NewStationary(pts)
	if m.N() != 2 {
		t.Fatalf("N=%d", m.N())
	}
	for slot := 0; slot < 5; slot++ {
		got := m.Step()
		for i := range pts {
			if got[i] != pts[i] {
				t.Fatalf("stationary sensor moved: %v", got[i])
			}
		}
	}
	// Mutating the returned slice must not corrupt the model.
	out := m.Step()
	out[0] = geo.Pt(99, 99)
	if m.Step()[0] != pts[0] {
		t.Error("Step returned internal storage")
	}
}

func TestCountIn(t *testing.T) {
	r := geo.NewRect(0, 0, 10, 10)
	pts := []geo.Point{geo.Pt(5, 5), geo.Pt(15, 5), geo.Pt(0, 0)}
	if got := CountIn(pts, r); got != 2 {
		t.Errorf("CountIn=%d want 2", got)
	}
}
