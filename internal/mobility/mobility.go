// Package mobility implements the sensor movement models of §4.2:
//
//   - RandomWaypoint: the paper's RWM — each slot a sensor picks a random
//     speed in [0, maxSpeed] and a random axis-aligned direction (up, down,
//     left, right), bounded by the region.
//   - TripSynthesizer: a substitute for the RNC Nokia-campaign traces. Real
//     traces are unavailable, so we synthesize trip-based human movement
//     with a configurable attraction towards the working subregion
//     ("hotspot"), calibrated so that the per-slot population of the
//     working subregion matches the paper's reported ≈120 of 635 sensors.
//   - Stationary: fixed sensors (the Intel-lab deployment).
//
// All models are deterministic given their rng stream.
package mobility

import (
	"repro/internal/geo"
	"repro/internal/rng"
)

// Model produces per-slot sensor positions. Implementations advance one
// time slot per Step call and return one position per sensor.
type Model interface {
	// N returns the number of sensors.
	N() int
	// Step advances the model one time slot and returns current positions.
	// The returned slice is owned by the caller.
	Step() []geo.Point
}

// RandomWaypoint is the paper's RWM: axis-aligned moves with per-sensor
// maximum speed 4 or 5, bounded to Region.
type RandomWaypoint struct {
	Region geo.Rect
	pos    []geo.Point
	maxSpd []float64
	rnd    *rng.Stream
}

// NewRandomWaypoint spreads n sensors uniformly in region; each sensor's
// max speed is chosen uniformly from maxSpeeds (the paper uses {4, 5}).
func NewRandomWaypoint(n int, region geo.Rect, maxSpeeds []float64, rnd *rng.Stream) *RandomWaypoint {
	if len(maxSpeeds) == 0 {
		maxSpeeds = []float64{4, 5}
	}
	m := &RandomWaypoint{
		Region: region,
		pos:    make([]geo.Point, n),
		maxSpd: make([]float64, n),
		rnd:    rnd,
	}
	for i := 0; i < n; i++ {
		m.pos[i] = geo.Pt(rnd.Uniform(region.MinX, region.MaxX), rnd.Uniform(region.MinY, region.MaxY))
		m.maxSpd[i] = maxSpeeds[rnd.Intn(len(maxSpeeds))]
	}
	return m
}

// N implements Model.
func (m *RandomWaypoint) N() int { return len(m.pos) }

// Step implements Model.
func (m *RandomWaypoint) Step() []geo.Point {
	out := make([]geo.Point, len(m.pos))
	for i := range m.pos {
		speed := m.rnd.Uniform(0, m.maxSpd[i])
		var d geo.Point
		switch m.rnd.Intn(4) {
		case 0:
			d = geo.Pt(0, speed) // up
		case 1:
			d = geo.Pt(0, -speed) // down
		case 2:
			d = geo.Pt(-speed, 0) // left
		default:
			d = geo.Pt(speed, 0) // right
		}
		m.pos[i] = m.Region.Clamp(m.pos[i].Add(d))
		out[i] = m.pos[i]
	}
	return out
}

// TripSynthesizer emulates trip-based human mobility over a large region
// with a hotspot (the working subregion): each sensor repeatedly picks a
// destination — inside the hotspot with probability HotspotBias, anywhere
// otherwise — and walks towards it at its trip speed, pausing between trips.
type TripSynthesizer struct {
	Region  geo.Rect
	Hotspot geo.Rect
	// HotspotBias is the probability that a new trip targets the hotspot.
	HotspotBias float64
	// LocalBias is the probability that a non-hotspot trip stays near the
	// sensor's home; home-based movement counteracts the random-waypoint
	// center-density artifact so the background density stays uniform.
	LocalBias float64
	// LocalRadius is the wander radius around home for local trips.
	LocalRadius float64
	// SpeedMin/SpeedMax bound per-trip speeds (distance units per slot).
	SpeedMin, SpeedMax float64
	// PauseMax is the maximum number of slots a sensor rests between trips.
	PauseMax int

	pos   []geo.Point
	home  []geo.Point
	dest  []geo.Point
	speed []float64
	pause []int
	rnd   *rng.Stream
}

// TripConfig carries the tunables of the synthesizer; zero values select
// the defaults calibrated for the paper's RNC statistics.
type TripConfig struct {
	HotspotBias        float64
	LocalBias          float64
	LocalRadius        float64
	SpeedMin, SpeedMax float64
	PauseMax           int
}

// NewTripSynthesizer creates n sensors in region with the given hotspot.
//
// The defaults (hotspot bias 0.02, local bias 0.9, wander radius 25,
// speeds 2..8, pause up to 3) were calibrated so that with the paper's RNC
// geometry (237x300 region, 100x100 working subregion, 635 sensors) the
// average per-slot hotspot population is close to the reported ≈120
// sensors. See TestTripSynthesizerCalibration.
func NewTripSynthesizer(n int, region, hotspot geo.Rect, cfg TripConfig, rnd *rng.Stream) *TripSynthesizer {
	if cfg.HotspotBias == 0 {
		cfg.HotspotBias = 0.02
	}
	if cfg.LocalBias == 0 {
		cfg.LocalBias = 0.9
	}
	if cfg.LocalRadius == 0 {
		cfg.LocalRadius = 25
	}
	if cfg.SpeedMax == 0 {
		cfg.SpeedMin, cfg.SpeedMax = 2, 8
	}
	if cfg.PauseMax == 0 {
		cfg.PauseMax = 3
	}
	m := &TripSynthesizer{
		Region:      region,
		Hotspot:     hotspot,
		HotspotBias: cfg.HotspotBias,
		LocalBias:   cfg.LocalBias,
		LocalRadius: cfg.LocalRadius,
		SpeedMin:    cfg.SpeedMin,
		SpeedMax:    cfg.SpeedMax,
		PauseMax:    cfg.PauseMax,
		pos:         make([]geo.Point, n),
		home:        make([]geo.Point, n),
		dest:        make([]geo.Point, n),
		speed:       make([]float64, n),
		pause:       make([]int, n),
		rnd:         rnd,
	}
	for i := 0; i < n; i++ {
		m.home[i] = m.randomPointIn(region)
		m.pos[i] = m.home[i]
		m.newTrip(i)
	}
	return m
}

func (m *TripSynthesizer) randomPointIn(r geo.Rect) geo.Point {
	return geo.Pt(m.rnd.Uniform(r.MinX, r.MaxX), m.rnd.Uniform(r.MinY, r.MaxY))
}

func (m *TripSynthesizer) newTrip(i int) {
	switch {
	case m.rnd.Float64() < m.HotspotBias:
		m.dest[i] = m.randomPointIn(m.Hotspot)
	case m.rnd.Float64() < m.LocalBias:
		// Wander near home; keeps the background density uniform.
		m.dest[i] = m.Region.Clamp(m.home[i].Add(geo.Pt(
			m.rnd.Norm(0, m.LocalRadius), m.rnd.Norm(0, m.LocalRadius))))
	default:
		m.dest[i] = m.randomPointIn(m.Region)
	}
	m.speed[i] = m.rnd.Uniform(m.SpeedMin, m.SpeedMax)
	m.pause[i] = m.rnd.Intn(m.PauseMax + 1)
}

// N implements Model.
func (m *TripSynthesizer) N() int { return len(m.pos) }

// Step implements Model.
func (m *TripSynthesizer) Step() []geo.Point {
	out := make([]geo.Point, len(m.pos))
	for i := range m.pos {
		d := m.pos[i].Dist(m.dest[i])
		switch {
		case d <= m.speed[i]:
			// Arrive, then rest before the next trip.
			m.pos[i] = m.dest[i]
			if m.pause[i] > 0 {
				m.pause[i]--
			} else {
				m.newTrip(i)
			}
		default:
			dir := m.dest[i].Sub(m.pos[i]).Scale(m.speed[i] / d)
			m.pos[i] = m.Region.Clamp(m.pos[i].Add(dir))
		}
		out[i] = m.pos[i]
	}
	return out
}

// Stationary keeps sensors at fixed positions (Intel-lab deployment).
type Stationary struct {
	Positions []geo.Point
}

// NewStationary fixes the given positions.
func NewStationary(positions []geo.Point) *Stationary {
	return &Stationary{Positions: positions}
}

// N implements Model.
func (m *Stationary) N() int { return len(m.Positions) }

// Step implements Model.
func (m *Stationary) Step() []geo.Point {
	out := make([]geo.Point, len(m.Positions))
	copy(out, m.Positions)
	return out
}

// CountIn returns how many of the given positions fall inside r.
func CountIn(positions []geo.Point, r geo.Rect) int {
	n := 0
	for _, p := range positions {
		if r.Contains(p) {
			n++
		}
	}
	return n
}
