package core

import (
	"repro/internal/query"
	"repro/internal/sensornet"
)

// MultiOutcome records one query's result in a multi-sensor selection.
type MultiOutcome struct {
	Sensors  []*sensornet.Sensor
	Payments map[int]float64 // sensor ID -> pi_{q,s}
	Value    float64         // v_q(S_q)
}

// TotalPayment sums the query's payments.
func (o *MultiOutcome) TotalPayment() float64 {
	var sum float64
	for _, p := range o.Payments {
		sum += p
	}
	return sum
}

// MultiResult is the outcome of Algorithm 1 on a batch of queries.
type MultiResult struct {
	Selected   []*sensornet.Sensor
	TotalCost  float64
	TotalValue float64
	// Outcomes by query ID. Every input query has an entry; unserved
	// queries have empty sensor sets and zero value.
	Outcomes map[string]*MultiOutcome
	// States exposes the final valuation state per query ID, so callers
	// (Algorithm 5) can continue applying results.
	States map[string]query.State
}

// Welfare returns total value minus total cost (Theorem 1 guarantees it is
// positive whenever any sensor was selected).
func (r *MultiResult) Welfare() float64 { return r.TotalValue - r.TotalCost }

// GreedySelect is Algorithm 1: greedy multi-sensor selection across a set
// of queries with arbitrary (black-box) valuation functions. Each
// iteration picks the sensor a maximizing sum_q deltav_{q,a} - c_a over
// the queries it improves, commits it to those queries, and charges each
// query pi_{q,a} = deltav_{q,a} * c_a / sum_q deltav_{q,a} (proportionate
// cost sharing). It stops when no sensor yields positive net benefit.
//
// The loop structure makes O(|Q| |S|^2) valuation calls (Theorem 1,
// property 4); the per-query incremental states keep each call cheap.
func GreedySelect(queries []query.Query, offers []Offer) *MultiResult {
	res := &MultiResult{
		Outcomes: make(map[string]*MultiOutcome, len(queries)),
		States:   make(map[string]query.State, len(queries)),
	}
	states := make([]query.State, len(queries))
	for i, q := range queries {
		states[i] = q.NewState()
		res.Outcomes[q.QID()] = &MultiOutcome{Payments: make(map[int]float64)}
		res.States[q.QID()] = states[i]
	}
	if len(queries) == 0 || len(offers) == 0 {
		return res
	}

	// Spatial prefilter: relevant queries per sensor (the Q_{l_s} of the
	// pseudocode). Relevance is static within a slot.
	relevant := make([][]int, len(offers))
	for si, o := range offers {
		for qi, q := range queries {
			if q.Relevant(o.Sensor) {
				relevant[si] = append(relevant[si], qi)
			}
		}
	}

	// Marginal gains depend only on the query's own state, so cached gains
	// stay exact until that query commits a sensor. Version stamps per
	// query invalidate precisely the affected (sensor, query) pairs,
	// turning the O(|Q||S|^2) valuation-call bound of Theorem 1 into a
	// near-linear number of calls on sparse instances.
	gainCache := make([][]float64, len(offers))
	verCache := make([][]int, len(offers))
	for si := range offers {
		gainCache[si] = make([]float64, len(relevant[si]))
		verCache[si] = make([]int, len(relevant[si]))
		for k := range verCache[si] {
			verCache[si][k] = -1
		}
	}
	qver := make([]int, len(queries))

	remaining := make([]bool, len(offers))
	for i := range remaining {
		remaining[i] = true
	}

	for {
		bestS, bestNet := -1, 0.0
		for si := range offers {
			if !remaining[si] {
				continue
			}
			net := -offers[si].Cost
			for k, qi := range relevant[si] {
				if verCache[si][k] != qver[qi] {
					gainCache[si][k] = states[qi].Gain(offers[si].Sensor)
					verCache[si][k] = qver[qi]
				}
				if dv := gainCache[si][k]; dv > 0 {
					net += dv
				}
			}
			if net > bestNet {
				bestNet = net
				bestS = si
			}
		}
		if bestS == -1 {
			break // no sensor with positive net benefit: leave the loop
		}

		o := offers[bestS]
		var sumDv float64
		for k, qi := range relevant[bestS] {
			if verCache[bestS][k] == qver[qi] && gainCache[bestS][k] > 0 {
				sumDv += gainCache[bestS][k]
			}
		}
		for k, qi := range relevant[bestS] {
			dv := gainCache[bestS][k]
			if verCache[bestS][k] != qver[qi] || dv <= 0 {
				continue
			}
			st := states[qi]
			st.Add(o.Sensor)
			qver[qi]++
			out := res.Outcomes[queries[qi].QID()]
			out.Sensors = append(out.Sensors, o.Sensor)
			out.Payments[o.Sensor.ID] += dv * o.Cost / sumDv
		}
		remaining[bestS] = false
		res.Selected = append(res.Selected, o.Sensor)
		res.TotalCost += o.Cost
	}

	for i, q := range queries {
		out := res.Outcomes[q.QID()]
		out.Value = states[i].Value()
		res.TotalValue += out.Value
	}
	return res
}

// GreedyPoint adapts Algorithm 1 to the PointSolver interface so the mix
// pipeline can schedule point queries through the shared greedy pass.
func GreedyPoint() PointSolver {
	return func(queries []*query.Point, offers []Offer) *PointResult {
		qs := make([]query.Query, len(queries))
		for i, q := range queries {
			qs[i] = q
		}
		multi := GreedySelect(qs, offers)
		return pointResultFromMulti(queries, multi)
	}
}

// pointResultFromMulti converts a MultiResult over point queries into the
// PointResult shape (one sensor per query: the best one committed).
func pointResultFromMulti(queries []*query.Point, multi *MultiResult) *PointResult {
	res := &PointResult{
		Outcomes:   make(map[string]PointOutcome),
		Exact:      true,
		Selected:   multi.Selected,
		TotalCost:  multi.TotalCost,
		TotalValue: multi.TotalValue,
	}
	for _, q := range queries {
		out := multi.Outcomes[q.QID()]
		if out == nil || out.Value <= 0 {
			continue
		}
		// The best sensor committed to the query delivers its value.
		var best *sensornet.Sensor
		bestV := 0.0
		for _, s := range out.Sensors {
			if v := q.ValueSingle(s); v > bestV {
				bestV, best = v, s
			}
		}
		if best == nil {
			continue
		}
		res.Outcomes[q.QID()] = PointOutcome{
			Sensor:  best,
			Payment: out.TotalPayment(),
			Value:   out.Value,
			Theta:   q.Theta(best),
		}
	}
	return res
}
