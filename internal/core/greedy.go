package core

import (
	"runtime"
	"sync"

	"repro/internal/query"
	"repro/internal/sensornet"
)

// MultiOutcome records one query's result in a multi-sensor selection.
type MultiOutcome struct {
	Sensors  []*sensornet.Sensor
	Payments map[int]float64 // sensor ID -> pi_{q,s}
	Value    float64         // v_q(S_q)
}

// TotalPayment sums the query's payments.
func (o *MultiOutcome) TotalPayment() float64 {
	var sum float64
	for _, p := range o.Payments {
		sum += p
	}
	return sum
}

// MultiResult is the outcome of Algorithm 1 on a batch of queries.
type MultiResult struct {
	Selected   []*sensornet.Sensor
	TotalCost  float64
	TotalValue float64
	// Outcomes by query ID. Every input query has an entry; unserved
	// queries have empty sensor sets and zero value.
	Outcomes map[string]*MultiOutcome
	// States exposes the final valuation state per query ID, so callers
	// (Algorithm 5) can continue applying results.
	States map[string]query.State
}

// Welfare returns total value minus total cost (Theorem 1 guarantees it is
// positive whenever any sensor was selected).
func (r *MultiResult) Welfare() float64 { return r.TotalValue - r.TotalCost }

// GreedySelect is Algorithm 1: greedy multi-sensor selection across a set
// of queries with arbitrary (black-box) valuation functions. Each
// iteration picks the sensor a maximizing sum_q deltav_{q,a} - c_a over
// the queries it improves, commits it to those queries, and charges each
// query pi_{q,a} = deltav_{q,a} * c_a / sum_q deltav_{q,a} (proportionate
// cost sharing). It stops when no sensor yields positive net benefit.
//
// The loop structure makes O(|Q| |S|^2) valuation calls (Theorem 1,
// property 4); the per-query incremental states keep each call cheap. On
// large fleets the candidate scan of each iteration is sharded across
// GOMAXPROCS workers (see GreedySelectWith); the result is bit-identical
// to the serial path.
func GreedySelect(queries []query.Query, offers []Offer) *MultiResult {
	return GreedySelectWith(queries, offers, GreedyConfig{})
}

// GreedyConfig tunes the candidate-evaluation strategy of GreedySelect.
type GreedyConfig struct {
	// Workers caps the goroutines scanning candidate sensors per
	// iteration: 0 means GOMAXPROCS, 1 forces the serial path.
	Workers int
	// ParallelThreshold is the minimum offer count before the scan is
	// sharded (default 256): below it the spawn overhead dominates.
	ParallelThreshold int
}

// GreedySelectWith is GreedySelect with explicit parallelism control. The
// scan only reads query states (State.Gain must not mutate), so shards
// race-free; the merge keeps the serial rule "first sensor index with the
// strictly largest net benefit", making parallel and serial runs produce
// identical selections, payments and welfare.
func GreedySelectWith(queries []query.Query, offers []Offer, cfg GreedyConfig) *MultiResult {
	res := &MultiResult{
		Outcomes: make(map[string]*MultiOutcome, len(queries)),
		States:   make(map[string]query.State, len(queries)),
	}
	states := make([]query.State, len(queries))
	for i, q := range queries {
		states[i] = q.NewState()
		res.Outcomes[q.QID()] = &MultiOutcome{Payments: make(map[int]float64)}
		res.States[q.QID()] = states[i]
	}
	if len(queries) == 0 || len(offers) == 0 {
		return res
	}

	// Spatial prefilter: relevant queries per sensor (the Q_{l_s} of the
	// pseudocode). Relevance is static within a slot.
	relevant := make([][]int, len(offers))
	for si, o := range offers {
		for qi, q := range queries {
			if q.Relevant(o.Sensor) {
				relevant[si] = append(relevant[si], qi)
			}
		}
	}

	// Marginal gains depend only on the query's own state, so cached gains
	// stay exact until that query commits a sensor. Version stamps per
	// query invalidate precisely the affected (sensor, query) pairs,
	// turning the O(|Q||S|^2) valuation-call bound of Theorem 1 into a
	// near-linear number of calls on sparse instances.
	gainCache := make([][]float64, len(offers))
	verCache := make([][]int, len(offers))
	for si := range offers {
		gainCache[si] = make([]float64, len(relevant[si]))
		verCache[si] = make([]int, len(relevant[si]))
		for k := range verCache[si] {
			verCache[si][k] = -1
		}
	}
	qver := make([]int, len(queries))

	remaining := make([]bool, len(offers))
	for i := range remaining {
		remaining[i] = true
	}

	// scan finds the best candidate in [lo, hi): the lowest sensor index
	// with the strictly largest positive net benefit. It fills the gain
	// caches for its shard; shards never overlap, and Gain only reads
	// query state, so concurrent shards do not race.
	scan := func(lo, hi int) (int, float64) {
		bestS, bestNet := -1, 0.0
		for si := lo; si < hi; si++ {
			if !remaining[si] {
				continue
			}
			net := -offers[si].Cost
			for k, qi := range relevant[si] {
				if verCache[si][k] != qver[qi] {
					gainCache[si][k] = states[qi].Gain(offers[si].Sensor)
					verCache[si][k] = qver[qi]
				}
				if dv := gainCache[si][k]; dv > 0 {
					net += dv
				}
			}
			if net > bestNet {
				bestNet = net
				bestS = si
			}
		}
		return bestS, bestNet
	}

	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	threshold := cfg.ParallelThreshold
	if threshold <= 0 {
		threshold = defaultParallelThreshold
	}
	if len(offers) < threshold {
		workers = 1
	} else if workers > len(offers) {
		workers = len(offers)
	}

	for {
		var bestS int
		if workers > 1 {
			bestS, _ = scanSharded(scan, len(offers), workers)
		} else {
			bestS, _ = scan(0, len(offers))
		}
		if bestS == -1 {
			break // no sensor with positive net benefit: leave the loop
		}

		o := offers[bestS]
		var sumDv float64
		for k, qi := range relevant[bestS] {
			if verCache[bestS][k] == qver[qi] && gainCache[bestS][k] > 0 {
				sumDv += gainCache[bestS][k]
			}
		}
		for k, qi := range relevant[bestS] {
			dv := gainCache[bestS][k]
			if verCache[bestS][k] != qver[qi] || dv <= 0 {
				continue
			}
			st := states[qi]
			st.Add(o.Sensor)
			qver[qi]++
			out := res.Outcomes[queries[qi].QID()]
			out.Sensors = append(out.Sensors, o.Sensor)
			out.Payments[o.Sensor.ID] += dv * o.Cost / sumDv
		}
		remaining[bestS] = false
		res.Selected = append(res.Selected, o.Sensor)
		res.TotalCost += o.Cost
	}

	for i, q := range queries {
		out := res.Outcomes[q.QID()]
		out.Value = states[i].Value()
		res.TotalValue += out.Value
	}
	return res
}

// defaultParallelThreshold keeps the paper-scale evaluations (200-635
// sensors) on the serial path, where goroutine spawn costs more than the
// scan itself.
const defaultParallelThreshold = 256

// scanSharded runs scan over `workers` contiguous shards of [0, n) and
// merges in shard order with a strict > comparison, reproducing exactly
// the serial first-max choice.
func scanSharded(scan func(lo, hi int) (int, float64), n, workers int) (int, float64) {
	type cand struct {
		s   int
		net float64
	}
	results := make([]cand, workers)
	chunk := (n + workers - 1) / workers
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		lo := w * chunk
		hi := min(lo+chunk, n)
		if lo >= hi {
			results[w] = cand{s: -1}
			continue
		}
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			s, net := scan(lo, hi)
			results[w] = cand{s: s, net: net}
		}(w, lo, hi)
	}
	wg.Wait()

	bestS, bestNet := -1, 0.0
	for _, r := range results {
		if r.s != -1 && r.net > bestNet {
			bestS, bestNet = r.s, r.net
		}
	}
	return bestS, bestNet
}

// GreedyPoint adapts Algorithm 1 to the PointSolver interface so the mix
// pipeline can schedule point queries through the shared greedy pass.
func GreedyPoint() PointSolver {
	return func(queries []*query.Point, offers []Offer) *PointResult {
		qs := make([]query.Query, len(queries))
		for i, q := range queries {
			qs[i] = q
		}
		multi := GreedySelect(qs, offers)
		return pointResultFromMulti(queries, multi)
	}
}

// pointResultFromMulti converts a MultiResult over point queries into the
// PointResult shape (one sensor per query: the best one committed).
func pointResultFromMulti(queries []*query.Point, multi *MultiResult) *PointResult {
	res := &PointResult{
		Outcomes:   make(map[string]PointOutcome),
		Exact:      true,
		Selected:   multi.Selected,
		TotalCost:  multi.TotalCost,
		TotalValue: multi.TotalValue,
	}
	for _, q := range queries {
		out := multi.Outcomes[q.QID()]
		if out == nil || out.Value <= 0 {
			continue
		}
		// The best sensor committed to the query delivers its value.
		var best *sensornet.Sensor
		bestV := 0.0
		for _, s := range out.Sensors {
			if v := q.ValueSingle(s); v > bestV {
				bestV, best = v, s
			}
		}
		if best == nil {
			continue
		}
		res.Outcomes[q.QID()] = PointOutcome{
			Sensor:  best,
			Payment: out.TotalPayment(),
			Value:   out.Value,
			Theta:   q.Theta(best),
		}
	}
	return res
}
