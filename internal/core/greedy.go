package core

import (
	"fmt"
	"math"
	"runtime"
	"slices"
	"sync"

	"repro/internal/query"
	"repro/internal/sensornet"
)

// MultiOutcome records one query's result in a multi-sensor selection.
type MultiOutcome struct {
	Sensors  []*sensornet.Sensor
	Payments map[int]float64 // sensor ID -> pi_{q,s}
	Value    float64         // v_q(S_q)
}

// TotalPayment sums the query's payments in ascending sensor-ID order.
// The fixed order matters: map iteration order perturbs float rounding,
// and this sum feeds SlotReport payments that must be bit-identical
// across reruns of the same workload (the golden equivalence tests rely
// on it).
func (o *MultiOutcome) TotalPayment() float64 {
	ids := make([]int, 0, len(o.Payments))
	for id := range o.Payments {
		ids = append(ids, id)
	}
	slices.Sort(ids)
	var sum float64
	for _, id := range ids {
		sum += o.Payments[id]
	}
	return sum
}

// SelectionStep records one committed sensor of a greedy run: which offer
// was taken, at what cost, and the net benefit it had at commit time. The
// trace lets a sharded execution layer replay the exact interleaving a
// single global greedy pass would have produced: per-shard traces merge by
// (net descending, offer index ascending), the same argmax rule the scan
// applies each round.
type SelectionStep struct {
	// Offer is the index of the committed offer in the run's offer slice.
	Offer int
	// SensorID identifies the committed sensor.
	SensorID int
	// Cost is the offer's announced cost.
	Cost float64
	// Net is the sensor's net benefit (marginal value minus cost) at the
	// round it was committed.
	Net float64
}

// MultiResult is the outcome of Algorithm 1 on a batch of queries.
type MultiResult struct {
	Selected   []*sensornet.Sensor
	TotalCost  float64
	TotalValue float64
	// Outcomes by query ID. Every input query has an entry; unserved
	// queries have empty sensor sets and zero value.
	Outcomes map[string]*MultiOutcome
	// States exposes the final valuation state per query ID, so callers
	// (Algorithm 5) can continue applying results.
	States map[string]query.State
	// Trace lists the commits in selection order, one entry per Selected
	// sensor (greedy strategies only; the baseline pipeline leaves it nil).
	Trace []SelectionStep
	// Stats instruments the selection run: how many valuation calls the
	// chosen strategy made versus what an exhaustive version-cached scan
	// would have made, plus the lazy heap's bookkeeping.
	Stats SelectionStats
}

// Welfare returns total value minus total cost (Theorem 1 guarantees it is
// positive whenever any sensor was selected).
func (r *MultiResult) Welfare() float64 { return r.TotalValue - r.TotalCost }

// DiffMultiResults compares two MultiResults bit-for-bit — selection
// order, totals, per-query values and per-sensor payments (exact float
// equality; Stats are intentionally excluded) — and describes the first
// divergence, or returns "" when identical. It backs the
// strategy-equivalence tests: every GreedyConfig.Strategy must produce
// results for which this returns "".
func DiffMultiResults(want, got *MultiResult) string {
	if len(got.Selected) != len(want.Selected) {
		return fmt.Sprintf("%d sensors selected, want %d", len(got.Selected), len(want.Selected))
	}
	for i := range want.Selected {
		if got.Selected[i].ID != want.Selected[i].ID {
			return fmt.Sprintf("selection order diverged at %d: sensor %d, want %d",
				i, got.Selected[i].ID, want.Selected[i].ID)
		}
	}
	if got.TotalCost != want.TotalCost || got.TotalValue != want.TotalValue {
		return fmt.Sprintf("cost/value %v/%v, want %v/%v",
			got.TotalCost, got.TotalValue, want.TotalCost, want.TotalValue)
	}
	for qid, wo := range want.Outcomes {
		out := got.Outcomes[qid]
		if out == nil || out.Value != wo.Value || len(out.Payments) != len(wo.Payments) {
			return fmt.Sprintf("outcome %s diverged", qid)
		}
		// Compare per-sensor payments individually: TotalPayment sums a
		// map and its iteration order perturbs float rounding.
		for sid, p := range wo.Payments {
			if out.Payments[sid] != p {
				return fmt.Sprintf("%s payment to sensor %d = %v, want %v",
					qid, sid, out.Payments[sid], p)
			}
		}
	}
	return ""
}

// SelectionStats counts the work one selection run (or, when accumulated,
// many runs) performed. ValuationCalls is the number of State.Gain
// invocations; SerialEquivCalls is what the exhaustive version-cached scan
// of GreedySelect would have invoked on the same instance, so
// SavedCalls() is the lazy strategy's pruning effect.
type SelectionStats struct {
	// Strategy is the effective strategy label of the last run
	// ("serial", "sharded", "lazy", "lazy-sharded").
	Strategy string
	// ValuationCalls counts marginal-gain evaluations actually made —
	// State.Gain invocations plus PairCached fast-path recombinations.
	ValuationCalls int64
	// SerialEquivCalls counts the Gain invocations an exhaustive scan
	// with the same per-(sensor, query) version cache would have made.
	// For the serial and sharded strategies the two are equal.
	SerialEquivCalls int64
	// LazyReevaluations counts heap candidates popped stale and
	// re-evaluated against the current states.
	LazyReevaluations int64
	// SubmodularityViolations counts re-evaluations where a cached
	// marginal gain *increased* — evidence the valuation is not
	// submodular, so cached heap priorities are not upper bounds.
	SubmodularityViolations int64
	// FallbackRescans counts rounds the lazy strategy re-scanned every
	// remaining candidate exhaustively after observing a violation.
	FallbackRescans int64
	// GeomCacheHits / GeomCacheLookups count per-sensor footprint-geometry
	// cache probes inside valuation states (query.GeomCached): which
	// coverage cells or trajectory samples a sensor's sensing disk
	// reaches. A hit replaces a scan of the query's whole footprint with
	// a walk of the sensor's (usually far smaller) in-range list.
	GeomCacheHits    int64
	GeomCacheLookups int64
	// PosteriorAppends counts GP observations folded into a region-
	// monitoring base posterior by rank-1 incremental update;
	// PosteriorRebuilds counts observations replayed by an exact
	// from-scratch recompute (cold cache, query reset, or conditioning
	// degradation).
	PosteriorAppends  int64
	PosteriorRebuilds int64
}

// SavedCalls is the number of valuation calls the strategy avoided
// relative to the exhaustive version-cached scan (never negative).
func (s SelectionStats) SavedCalls() int64 {
	if s.SerialEquivCalls > s.ValuationCalls {
		return s.SerialEquivCalls - s.ValuationCalls
	}
	return 0
}

// Accumulate folds another run's counters into s (keeping the most recent
// strategy label), for callers aggregating across slots.
func (s *SelectionStats) Accumulate(o SelectionStats) {
	if o.Strategy != "" {
		s.Strategy = o.Strategy
	}
	s.ValuationCalls += o.ValuationCalls
	s.SerialEquivCalls += o.SerialEquivCalls
	s.LazyReevaluations += o.LazyReevaluations
	s.SubmodularityViolations += o.SubmodularityViolations
	s.FallbackRescans += o.FallbackRescans
	s.GeomCacheHits += o.GeomCacheHits
	s.GeomCacheLookups += o.GeomCacheLookups
	s.PosteriorAppends += o.PosteriorAppends
	s.PosteriorRebuilds += o.PosteriorRebuilds
}

// GreedySelect is Algorithm 1: greedy multi-sensor selection across a set
// of queries with arbitrary (black-box) valuation functions. Each
// iteration picks the sensor a maximizing sum_q deltav_{q,a} - c_a over
// the queries it improves, commits it to those queries, and charges each
// query pi_{q,a} = deltav_{q,a} * c_a / sum_q deltav_{q,a} (proportionate
// cost sharing). It stops when no sensor yields positive net benefit.
//
// The loop structure makes O(|Q| |S|^2) valuation calls (Theorem 1,
// property 4); the per-query incremental states keep each call cheap. On
// large fleets the candidate scan of each iteration is sharded across
// GOMAXPROCS workers, and StrategyLazy prunes most candidate evaluations
// entirely (see GreedySelectWith); every strategy is bit-identical to the
// serial path.
func GreedySelect(queries []query.Query, offers []Offer) *MultiResult {
	return GreedySelectWith(queries, offers, GreedyConfig{})
}

// GreedyConfig tunes the candidate-evaluation strategy of GreedySelect.
type GreedyConfig struct {
	// Workers caps the goroutines scanning candidate sensors per
	// iteration: 0 means GOMAXPROCS, 1 forces the serial path.
	Workers int
	// ParallelThreshold is the minimum offer count before the scan is
	// sharded (default 256): below it the spawn overhead dominates.
	ParallelThreshold int
	// Strategy selects the candidate-evaluation algorithm; the zero
	// value (StrategyAuto) keeps the historical behaviour of a serial
	// scan below ParallelThreshold and a sharded scan above it.
	Strategy Strategy
}

// resolve normalizes the config against the instance size: effective
// strategy and worker count.
func (cfg GreedyConfig) resolve(n int) (Strategy, int) {
	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	threshold := cfg.ParallelThreshold
	if threshold <= 0 {
		threshold = defaultParallelThreshold
	}
	strat := cfg.Strategy
	if strat == StrategyAuto {
		if n < threshold || workers == 1 {
			strat = StrategySerial
		} else {
			strat = StrategySharded
		}
	}
	switch strat {
	case StrategySerial:
		workers = 1
	case StrategySharded, StrategyLazySharded:
		if n < threshold {
			workers = 1
		} else if workers > n {
			workers = n
		}
	case StrategyLazy:
		workers = 1
	}
	return strat, workers
}

// GreedySelectWith is GreedySelect with explicit strategy control. All
// strategies produce identical selections, payments and welfare:
//
//   - StrategySerial scans every remaining sensor each round.
//   - StrategySharded splits that scan over Workers goroutines; the merge
//     keeps the serial rule "first sensor index with the strictly largest
//     net benefit". The scan only reads query states (State.Gain must not
//     mutate), so shards race-free.
//   - StrategyLazy / StrategyLazySharded run the CELF-style lazy-greedy
//     fast path of lazygreedy.go: cached net benefits in a max-heap,
//     re-evaluated only when a relevant query's state changed, with an
//     exhaustive-rescan fallback when a valuation proves non-submodular.
func GreedySelectWith(queries []query.Query, offers []Offer, cfg GreedyConfig) *MultiResult {
	s := newSelection(queries, offers)
	defer s.release()
	if len(queries) == 0 || len(offers) == 0 {
		s.finalize()
		return s.res
	}
	strat, workers := cfg.resolve(len(offers))
	switch strat {
	case StrategyLazy, StrategyLazySharded:
		sharded := strat == StrategyLazySharded && workers > 1
		if sharded {
			s.stats.Strategy = StrategyLazySharded.String()
		} else {
			s.stats.Strategy = StrategyLazy.String()
		}
		s.lazyLoop(sharded, workers)
	default:
		if workers > 1 {
			s.stats.Strategy = StrategySharded.String()
		} else {
			s.stats.Strategy = StrategySerial.String()
		}
		s.exhaustiveLoop(workers)
	}
	s.finalize()
	return s.res
}

// defaultParallelThreshold keeps the paper-scale evaluations (200-635
// sensors) on the serial path, where goroutine spawn costs more than the
// scan itself.
const defaultParallelThreshold = 256

// submodularTolerance is the slack above which a re-evaluated marginal
// gain exceeding its cached value counts as a submodularity violation.
const submodularTolerance = 1e-12

// selection is the shared mutable state of one Algorithm 1 run, used by
// both the exhaustive and the lazy candidate-evaluation strategies.
//
// Marginal gains depend only on the query's own state, so cached gains
// stay exact until that query commits a sensor. Version stamps per query
// invalidate precisely the affected (sensor, query) pairs, turning the
// O(|Q||S|^2) valuation-call bound of Theorem 1 into a near-linear number
// of calls on sparse instances.
//
// All per-pair bookkeeping lives in flat CSR arrays inside a pooled
// selArena: relIdx[relOff[si]:relOff[si+1]] lists the query indices
// relevant to sensor si (ascending), with gains/vers parallel to relIdx.
// One run at metro scale touches millions of (sensor, query) pairs; the
// flat layout replaces one small slice per sensor (tens of thousands of
// allocations per slot, the bulk of the ~142MB-per-4-slots churn the
// sharded-metro bench used to report) with a handful of pooled arrays.
type selection struct {
	queries []query.Query
	offers  []Offer
	states  []query.State
	res     *MultiResult

	ar *selArena

	// relOff/relIdx is the CSR form of "queries relevant to sensor si"
	// (the Q_{l_s} of the pseudocode). Relevance is static within a slot.
	relOff []int32
	relIdx []int32
	// gains/vers cache the last evaluated marginal gain of each
	// (sensor, query) pair and the query version it was evaluated at
	// (-1 = never).
	gains []float64
	vers  []int32
	qver  []int32
	// pcs holds the query.PairCached view of each state (nil when the
	// state doesn't implement it), and base the memoized state-independent
	// base value per pair (NaN = not yet computed). Bases never go stale:
	// they depend only on the sensor and the query, not on commits.
	pcs  []query.PairCached
	base []float64
	// relCount tracks, per query, how many remaining sensors are
	// relevant to it — the pairs an exhaustive scan would re-evaluate
	// after the query's version bumps (SerialEquivCalls accounting).
	relCount  []int32
	remaining []bool
	// submod marks queries advertising query.Submodular. Only their
	// stale-gain increases count as violations: unmarked valuations
	// (aggregates, trajectories) are allowed to grow and are handled by
	// the lazy strategy's eager volatile maintenance instead.
	submod []bool
	// lastBumped lists the query indices whose version the most recent
	// commit advanced (scratch reused across rounds; lazy maintenance
	// reads it to refresh non-submodular valuations eagerly).
	lastBumped []int32

	stats SelectionStats
}

// selArena owns the reusable scratch of a selection run. Nothing in it
// escapes into the MultiResult, so GreedySelectWith returns it to a
// sync.Pool once finalize has copied the outputs out; concurrent shard
// lanes each draw their own arena.
type selArena struct {
	relOff     []int32
	relIdx     []int32
	gains      []float64
	vers       []int32
	qver       []int32
	relCount   []int32
	remaining  []bool
	submod     []bool
	lastBumped []int32
	pcs        []query.PairCached
	base       []float64

	// lazyLoop scratch.
	curNet    []float64
	heap      lazyHeap
	touched   []bool
	touchList []int32
	volOff    []int32
	volRefs   []volRef

	// relevance-index scratch (buildRelevance).
	cellQueries [][]int32
	globalQs    []int32
	merged      []int32
}

var arenaPool = sync.Pool{New: func() any { return new(selArena) }}

// growInt32 returns buf resized to n, reallocating only when capacity is
// short. Contents are unspecified.
func growInt32(buf []int32, n int) []int32 {
	if cap(buf) < n {
		return make([]int32, n)
	}
	return buf[:n]
}

func growFloat64(buf []float64, n int) []float64 {
	if cap(buf) < n {
		return make([]float64, n)
	}
	return buf[:n]
}

func growBool(buf []bool, n int) []bool {
	if cap(buf) < n {
		return make([]bool, n)
	}
	return buf[:n]
}

// release returns the arena to the pool. Safe to call more than once.
func (s *selection) release() {
	if s.ar == nil {
		return
	}
	ar := s.ar
	s.ar = nil
	s.relOff, s.relIdx, s.gains, s.vers = nil, nil, nil, nil
	s.qver, s.relCount, s.lastBumped = nil, nil, nil
	s.remaining, s.submod = nil, nil
	s.pcs, s.base = nil, nil
	// Interface slots in the pooled pcs buffer would otherwise pin this
	// run's states past the run.
	clear(ar.pcs)
	arenaPool.Put(ar)
}

// evalCounters accumulates per-goroutine valuation accounting; shards get
// their own instance so the hot loop never touches shared memory.
type evalCounters struct {
	calls      int64
	violations int64
}

func newSelection(queries []query.Query, offers []Offer) *selection {
	s := &selection{
		queries: queries,
		offers:  offers,
		states:  make([]query.State, len(queries)),
		res: &MultiResult{
			Outcomes: make(map[string]*MultiOutcome, len(queries)),
			States:   make(map[string]query.State, len(queries)),
		},
	}
	for i, q := range queries {
		s.states[i] = q.NewState()
		s.res.Outcomes[q.QID()] = &MultiOutcome{Payments: make(map[int]float64)}
		s.res.States[q.QID()] = s.states[i]
	}
	if len(queries) == 0 || len(offers) == 0 {
		return s
	}

	ar := arenaPool.Get().(*selArena)
	s.ar = ar
	nq, no := len(queries), len(offers)
	s.relCount = growInt32(ar.relCount, nq)
	s.qver = growInt32(ar.qver, nq)
	s.submod = growBool(ar.submod, nq)
	if cap(ar.pcs) < nq {
		ar.pcs = make([]query.PairCached, nq)
	}
	s.pcs = ar.pcs[:nq]
	for qi := range queries {
		s.relCount[qi] = 0
		s.qver[qi] = 0
		s.submod[qi] = query.IsSubmodular(queries[qi])
		s.pcs[qi], _ = s.states[qi].(query.PairCached)
	}
	s.lastBumped = ar.lastBumped[:0]

	s.buildRelevance()

	npairs := len(s.relIdx)
	s.gains = growFloat64(ar.gains, npairs)
	s.vers = growInt32(ar.vers, npairs)
	for i := range s.vers {
		s.vers[i] = -1
	}
	// The exhaustive scan evaluates every relevant pair once up front
	// (version -1 -> 0).
	s.stats.SerialEquivCalls += int64(npairs)
	s.remaining = growBool(ar.remaining, no)
	for i := range s.remaining {
		s.remaining[i] = true
	}
	ar.relCount, ar.qver, ar.submod = s.relCount, s.qver, s.submod
	ar.gains, ar.vers, ar.remaining = s.gains, s.vers, s.remaining
	ar.base = s.base
	return s
}

// relevanceIndexMinWork is the candidate-pair count (offers × queries)
// above which buildRelevance buckets query footprints in a grid instead
// of testing every pair; below it the naive double loop is cheaper than
// building the index.
const relevanceIndexMinWork = 1 << 15

// relevanceGridDim is the resolution (per axis) of the footprint bucket
// grid over the offered sensors' bounding box.
const relevanceGridDim = 32

// buildRelevance fills relOff/relIdx (and relCount) with the relevant
// query indices of every sensor, ascending, and the parallel base array:
// queries advertising query.RelevanceBased yield their PairCached base
// value as a byproduct of the relevance test, so the pair's first gain
// evaluation skips the distance/quality math entirely; other pairs get
// the NaN not-yet-computed sentinel. On large instances it prunes
// Relevant calls with a footprint grid: queries advertising
// query.Footprinted are bucketed into the grid cells their footprint
// overlaps, and each sensor tests only its own cell's bucket (plus the
// unfootprinted rest). The bucket of a sensor's cell is a superset of
// its relevant footprinted queries and every candidate still goes
// through Relevant in ascending query order, so the resulting CSR rows
// are identical to the naive double loop's.
func (s *selection) buildRelevance() {
	ar := s.ar
	nq, no := len(s.queries), len(s.offers)
	s.relOff = growInt32(ar.relOff, no+1)
	s.relIdx = ar.relIdx[:0]
	s.base = ar.base[:0]
	s.relOff[0] = 0

	rbs := make([]query.RelevanceBased, nq)
	for qi, q := range s.queries {
		rbs[qi], _ = q.(query.RelevanceBased)
	}
	nan := math.NaN()
	appendRelevant := func(si int, o Offer, candidates []int32) {
		for _, qi := range candidates {
			if rb := rbs[qi]; rb != nil {
				ok, b := rb.RelevantBase(o.Sensor)
				if !ok {
					continue
				}
				s.relIdx = append(s.relIdx, qi)
				s.base = append(s.base, b)
				s.relCount[qi]++
			} else if s.queries[qi].Relevant(o.Sensor) {
				s.relIdx = append(s.relIdx, qi)
				s.base = append(s.base, nan)
				s.relCount[qi]++
			}
		}
		s.relOff[si+1] = int32(len(s.relIdx))
	}

	useIndex := no*nq >= relevanceIndexMinWork
	var anyFoot bool
	if useIndex {
		for _, q := range s.queries {
			if _, ok := q.(query.Footprinted); ok {
				anyFoot = true
				break
			}
		}
	}
	if !useIndex || !anyFoot {
		all := growInt32(ar.merged, nq)
		for qi := range s.queries {
			all[qi] = int32(qi)
		}
		ar.merged = all
		for si, o := range s.offers {
			appendRelevant(si, o, all)
		}
		ar.relOff, ar.relIdx, ar.base = s.relOff, s.relIdx, s.base
		return
	}

	// Bounding box of the offered sensors; footprints are clipped to it.
	minX, minY := s.offers[0].Sensor.Pos.X, s.offers[0].Sensor.Pos.Y
	maxX, maxY := minX, minY
	for _, o := range s.offers[1:] {
		p := o.Sensor.Pos
		minX, maxX = min(minX, p.X), max(maxX, p.X)
		minY, maxY = min(minY, p.Y), max(maxY, p.Y)
	}
	cw := (maxX - minX) / relevanceGridDim
	ch := (maxY - minY) / relevanceGridDim
	cellOf := func(v, lo, step float64) int {
		if step <= 0 {
			return 0
		}
		c := int((v - lo) / step)
		if c < 0 {
			c = 0
		}
		if c >= relevanceGridDim {
			c = relevanceGridDim - 1
		}
		return c
	}

	cells := ar.cellQueries
	if len(cells) < relevanceGridDim*relevanceGridDim {
		cells = make([][]int32, relevanceGridDim*relevanceGridDim)
	}
	for i := range cells {
		cells[i] = cells[i][:0]
	}
	ar.cellQueries = cells
	global := ar.globalQs[:0]
	for qi, q := range s.queries {
		f, ok := q.(query.Footprinted)
		if !ok {
			global = append(global, int32(qi))
			continue
		}
		r := f.RelevanceFootprint()
		if r.MaxX < minX || r.MinX > maxX || r.MaxY < minY || r.MinY > maxY {
			continue // footprint misses every offered sensor
		}
		i0, i1 := cellOf(r.MinX, minX, cw), cellOf(r.MaxX, minX, cw)
		j0, j1 := cellOf(r.MinY, minY, ch), cellOf(r.MaxY, minY, ch)
		for j := j0; j <= j1; j++ {
			for i := i0; i <= i1; i++ {
				cells[j*relevanceGridDim+i] = append(cells[j*relevanceGridDim+i], int32(qi))
			}
		}
	}
	ar.globalQs = global

	merged := ar.merged[:0]
	for si, o := range s.offers {
		p := o.Sensor.Pos
		bucket := cells[cellOf(p.Y, minY, ch)*relevanceGridDim+cellOf(p.X, minX, cw)]
		// Merge the global (unfootprinted) and bucket lists, both
		// ascending, so candidates arrive in the naive loop's order.
		merged = merged[:0]
		gi, bi := 0, 0
		for gi < len(global) && bi < len(bucket) {
			if global[gi] < bucket[bi] {
				merged = append(merged, global[gi])
				gi++
			} else {
				merged = append(merged, bucket[bi])
				bi++
			}
		}
		merged = append(merged, global[gi:]...)
		merged = append(merged, bucket[bi:]...)
		appendRelevant(si, o, merged)
	}
	ar.merged = merged
	ar.relOff, ar.relIdx, ar.base = s.relOff, s.relIdx, s.base
}

// evalSensor returns the sensor's current net benefit -c_a + sum of
// positive marginal gains, refreshing exactly the stale (sensor, query)
// cache entries. A refreshed gain larger than its cached predecessor is
// counted as a submodularity violation.
func (s *selection) evalSensor(si int, c *evalCounters) float64 {
	net := -s.offers[si].Cost
	for idx := s.relOff[si]; idx < s.relOff[si+1]; idx++ {
		qi := s.relIdx[idx]
		if s.vers[idx] != s.qver[qi] {
			var g float64
			if pc := s.pcs[qi]; pc != nil {
				b := s.base[idx]
				if b != b { // NaN sentinel: base not yet computed
					b = pc.BaseValue(s.offers[si].Sensor)
					s.base[idx] = b
				}
				g = pc.GainFrom(b)
			} else {
				g = s.states[qi].Gain(s.offers[si].Sensor)
			}
			c.calls++
			if s.submod[qi] && s.vers[idx] >= 0 && g > s.gains[idx]+submodularTolerance {
				c.violations++
			}
			s.gains[idx] = g
			s.vers[idx] = s.qver[qi]
		}
		if dv := s.gains[idx]; dv > 0 {
			net += dv
		}
	}
	return net
}

// fresh reports whether every cached gain of the sensor matches the
// current query versions, i.e. cachedNet(si) is exact right now.
func (s *selection) fresh(si int) bool {
	for idx := s.relOff[si]; idx < s.relOff[si+1]; idx++ {
		if s.vers[idx] != s.qver[s.relIdx[idx]] {
			return false
		}
	}
	return true
}

// cachedNet recomputes the net benefit from the caches without any
// valuation call, with the same accumulation order as evalSensor (so the
// floats are identical when the caches are fresh).
func (s *selection) cachedNet(si int) float64 {
	net := -s.offers[si].Cost
	for idx := s.relOff[si]; idx < s.relOff[si+1]; idx++ {
		if dv := s.gains[idx]; dv > 0 {
			net += dv
		}
	}
	return net
}

// commit selects sensor si at net benefit `net`: applies it to every
// query it freshly improves, splits its cost proportionately, bumps the
// affected query versions and removes it from the candidate pool. The
// caches of si must be fresh (the scan or heap just evaluated them).
func (s *selection) commit(si int, net float64) {
	o := s.offers[si]
	var sumDv float64
	for idx := s.relOff[si]; idx < s.relOff[si+1]; idx++ {
		if s.vers[idx] == s.qver[s.relIdx[idx]] && s.gains[idx] > 0 {
			sumDv += s.gains[idx]
		}
	}
	s.lastBumped = s.lastBumped[:0]
	for idx := s.relOff[si]; idx < s.relOff[si+1]; idx++ {
		qi := s.relIdx[idx]
		s.relCount[qi]--
		dv := s.gains[idx]
		if s.vers[idx] != s.qver[qi] || dv <= 0 {
			continue
		}
		st := s.states[qi]
		st.Add(o.Sensor)
		s.qver[qi]++
		s.lastBumped = append(s.lastBumped, qi)
		// An exhaustive scan would re-evaluate this query against every
		// remaining sensor on the next round.
		s.stats.SerialEquivCalls += int64(s.relCount[qi])
		out := s.res.Outcomes[s.queries[qi].QID()]
		out.Sensors = append(out.Sensors, o.Sensor)
		out.Payments[o.Sensor.ID] += dv * o.Cost / sumDv
	}
	s.ar.lastBumped = s.lastBumped
	s.remaining[si] = false
	s.res.Selected = append(s.res.Selected, o.Sensor)
	s.res.Trace = append(s.res.Trace, SelectionStep{
		Offer: si, SensorID: o.Sensor.ID, Cost: o.Cost, Net: net,
	})
	s.res.TotalCost += o.Cost
}

// finalize fills per-query values, the total value and the stats,
// harvesting geometry-cache counters from states that expose them.
func (s *selection) finalize() {
	for i, q := range s.queries {
		out := s.res.Outcomes[q.QID()]
		out.Value = s.states[i].Value()
		s.res.TotalValue += out.Value
		if gc, ok := s.states[i].(query.GeomCached); ok {
			h, l := gc.GeomCacheStats()
			s.stats.GeomCacheHits += h
			s.stats.GeomCacheLookups += l
		}
	}
	s.res.Stats = s.stats
}

func (s *selection) addCounters(c evalCounters) {
	s.stats.ValuationCalls += c.calls
	s.stats.SubmodularityViolations += c.violations
}

// scanRange finds the best candidate in [lo, hi): the lowest sensor index
// with the strictly largest positive net benefit. It fills the gain
// caches for its shard; shards never overlap, and Gain is safe for
// concurrent callers (states that memoize geometry guard their memo
// with a mutex; see query.aggregateState), so concurrent shards do not
// race.
func (s *selection) scanRange(lo, hi int, c *evalCounters) (int, float64) {
	bestS, bestNet := -1, 0.0
	for si := lo; si < hi; si++ {
		if !s.remaining[si] {
			continue
		}
		if net := s.evalSensor(si, c); net > bestNet {
			bestNet = net
			bestS = si
		}
	}
	return bestS, bestNet
}

// scanSharded runs scanRange over `workers` contiguous shards and merges
// in shard order with a strict > comparison, reproducing exactly the
// serial first-max choice.
func (s *selection) scanSharded(workers int) (int, float64) {
	type cand struct {
		s   int
		net float64
		c   evalCounters
	}
	n := len(s.offers)
	results := make([]cand, workers)
	chunk := (n + workers - 1) / workers
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		lo := w * chunk
		hi := min(lo+chunk, n)
		if lo >= hi {
			results[w] = cand{s: -1}
			continue
		}
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			results[w].s, results[w].net = s.scanRange(lo, hi, &results[w].c)
		}(w, lo, hi)
	}
	wg.Wait()

	bestS, bestNet := -1, 0.0
	for _, r := range results {
		s.addCounters(r.c)
		if r.s != -1 && r.net > bestNet {
			bestS, bestNet = r.s, r.net
		}
	}
	return bestS, bestNet
}

// exhaustiveLoop is the original Algorithm 1 loop: scan every remaining
// sensor each round, commit the best, stop when nothing is profitable.
func (s *selection) exhaustiveLoop(workers int) {
	for {
		var bestS int
		var bestNet float64
		if workers > 1 {
			bestS, bestNet = s.scanSharded(workers)
		} else {
			var c evalCounters
			bestS, bestNet = s.scanRange(0, len(s.offers), &c)
			s.addCounters(c)
		}
		if bestS == -1 {
			break // no sensor with positive net benefit: leave the loop
		}
		s.commit(bestS, bestNet)
	}
}

// GreedyPoint adapts Algorithm 1 to the PointSolver interface so the mix
// pipeline can schedule point queries through the shared greedy pass.
func GreedyPoint() PointSolver { return GreedyPointWith(GreedyConfig{}) }

// GreedyPointWith is GreedyPoint with explicit strategy control.
func GreedyPointWith(cfg GreedyConfig) PointSolver {
	return func(queries []*query.Point, offers []Offer) *PointResult {
		qs := make([]query.Query, len(queries))
		for i, q := range queries {
			qs[i] = q
		}
		multi := GreedySelectWith(qs, offers, cfg)
		return pointResultFromMulti(queries, multi)
	}
}

// pointResultFromMulti converts a MultiResult over point queries into the
// PointResult shape (one sensor per query: the best one committed).
func pointResultFromMulti(queries []*query.Point, multi *MultiResult) *PointResult {
	res := &PointResult{
		Outcomes:   make(map[string]PointOutcome),
		Exact:      true,
		Selected:   multi.Selected,
		TotalCost:  multi.TotalCost,
		TotalValue: multi.TotalValue,
		Stats:      multi.Stats,
	}
	for _, q := range queries {
		out := multi.Outcomes[q.QID()]
		if out == nil || out.Value <= 0 {
			continue
		}
		// The best sensor committed to the query delivers its value.
		var best *sensornet.Sensor
		bestV := 0.0
		for _, s := range out.Sensors {
			if v := q.ValueSingle(s); v > bestV {
				bestV, best = v, s
			}
		}
		if best == nil {
			continue
		}
		res.Outcomes[q.QID()] = PointOutcome{
			Sensor:  best,
			Payment: out.TotalPayment(),
			Value:   out.Value,
			Theta:   q.Theta(best),
		}
	}
	return res
}
