package core

import (
	"repro/internal/bilp"
	"repro/internal/query"
)

// OptimalOptions tunes the exact scheduler.
type OptimalOptions struct {
	// MaxNodesPerComponent caps branch-and-bound effort per connected
	// component (0 = solver default). When exceeded the result is the best
	// incumbent and PointResult.Exact is false.
	MaxNodesPerComponent int
	// WarmStartWithLocalSearch seeds the incumbent with the Local Search
	// solution, which prunes most of the search tree on the evaluation's
	// instance sizes.
	WarmStartWithLocalSearch bool
}

// OptimalPoint returns the exact scheduler of §3.1.1: it expresses the
// slot's single-sensor point queries as the BILP of problem (9) —
// facilities are sensors with opening cost c_i, clients are queried
// locations with profits v_l(s_i) — and solves it with the exact
// branch-and-bound of internal/bilp. Payments follow Eq. 11.
func OptimalPoint(opts OptimalOptions) PointSolver {
	return func(queries []*query.Point, offers []Offer) *PointResult {
		res := &PointResult{Outcomes: make(map[string]PointOutcome), Exact: true}
		if len(queries) == 0 || len(offers) == 0 {
			return res
		}
		groups := groupByLocation(queries)

		prob := &bilp.FLProblem{
			OpenCost: make([]float64, len(offers)),
			Profits:  make([][]bilp.FLProfit, len(groups)),
		}
		for i, o := range offers {
			prob.OpenCost[i] = o.Cost
		}
		for l := range groups {
			for i, o := range offers {
				if v := groups[l].groupValue(o.Sensor); v > 0 {
					prob.Profits[l] = append(prob.Profits[l], bilp.FLProfit{Facility: i, Profit: v})
				}
			}
		}

		flOpts := bilp.FLOptions{MaxNodesPerComponent: opts.MaxNodesPerComponent}
		if opts.WarmStartWithLocalSearch {
			ls := LocalSearchPoint(DefaultLocalSearchEpsilon)(queries, offers)
			warm := make([]bool, len(offers))
			selected := make(map[int]bool, len(ls.Selected))
			for _, s := range ls.Selected {
				selected[s.ID] = true
			}
			for i, o := range offers {
				warm[i] = selected[o.Sensor.ID]
			}
			flOpts.WarmStart = warm
		}

		sol := bilp.SolveFL(prob, flOpts)
		res.Exact = sol.Exact

		// Collect assigned groups per opened sensor for Eq. 11 payments.
		assignedGroups := make(map[int][]*locationGroup)
		for l, f := range sol.Assign {
			if f >= 0 {
				assignedGroups[f] = append(assignedGroups[f], &groups[l])
			}
		}
		for i, o := range offers {
			gs := assignedGroups[i]
			if len(gs) == 0 {
				continue
			}
			value := settlePayments(o.Sensor, o.Cost, gs, res.Outcomes)
			res.Selected = append(res.Selected, o.Sensor)
			res.TotalCost += o.Cost
			res.TotalValue += value
		}
		return res
	}
}
