package core

import (
	"math"
	"testing"

	"repro/internal/geo"
	"repro/internal/query"
)

func TestLedgerPointConservation(t *testing.T) {
	l := &Ledger{}
	var wantWelfare float64
	for seed := int64(1); seed <= 5; seed++ {
		queries, offers := randomScenario(seed, 20, 50, 15)
		res := OptimalPoint(OptimalOptions{})(queries, offers)
		l.RecordPointResult(res)
		wantWelfare += res.Welfare()
	}
	if l.Slots() != 5 {
		t.Errorf("slots = %d", l.Slots())
	}
	if err := l.CheckBalance(1e-6); err != nil {
		t.Fatal(err)
	}
	if math.Abs(l.TotalWelfare()-wantWelfare) > 1e-6 {
		t.Errorf("welfare %v want %v", l.TotalWelfare(), wantWelfare)
	}
	// Payments equal sensor cost in point scheduling: earned == paid.
	if math.Abs(l.TotalPaid()-l.TotalEarned()) > 1e-6 {
		t.Errorf("paid %v != earned %v", l.TotalPaid(), l.TotalEarned())
	}
	// Paid should equal total cost of selected sensors.
	if math.Abs(l.TotalPaid()-(l.totalCost)) > 1e-6 {
		t.Errorf("paid %v != total cost %v", l.TotalPaid(), l.totalCost)
	}
}

func TestLedgerQueryAccessors(t *testing.T) {
	l := &Ledger{}
	queries, offers := randomScenario(7, 20, 40, 20)
	res := OptimalPoint(OptimalOptions{})(queries, offers)
	l.RecordPointResult(res)
	found := false
	for qid, o := range res.Outcomes {
		found = true
		if l.QueryPaid(qid) != o.Payment {
			t.Errorf("QueryPaid(%s) = %v want %v", qid, l.QueryPaid(qid), o.Payment)
		}
		if l.QueryValue(qid) != o.Value {
			t.Errorf("QueryValue(%s) = %v want %v", qid, l.QueryValue(qid), o.Value)
		}
		if u := l.QueryUtility(qid); u <= 0 {
			t.Errorf("QueryUtility(%s) = %v, want positive", qid, u)
		}
	}
	if !found {
		t.Fatal("no outcomes to verify")
	}
	// Unknown query returns zeros.
	if l.QueryPaid("nope") != 0 || l.QueryUtility("nope") != 0 {
		t.Error("unknown query should report zero")
	}
}

func TestLedgerMixConservation(t *testing.T) {
	l := &Ledger{}
	grid := geo.NewUnitGrid(100, 100)
	for seed := int64(1); seed <= 3; seed++ {
		queries, offers := randomScenario(seed, 25, 50, 15)
		aggs := makeAggregates(grid, 120,
			geo.NewRect(5, 5, 25, 25), geo.NewRect(10, 10, 22, 28))
		res := RunMixSlot(0, MixQueries{Points: queries, Aggregates: aggs}, offers)
		l.RecordMixResult(res)
	}
	if err := l.CheckBalance(1e-6); err != nil {
		t.Fatal(err)
	}
	if l.TotalEarned() <= 0 {
		t.Error("sensors earned nothing in a dense mix")
	}
}

func TestLedgerTopEarnersAndGini(t *testing.T) {
	l := &Ledger{}
	queries, offers := randomScenario(9, 25, 60, 20)
	res := OptimalPoint(OptimalOptions{})(queries, offers)
	l.RecordPointResult(res)

	top := l.TopEarners(3)
	if len(top) == 0 {
		t.Fatal("no earners")
	}
	for i := 1; i < len(top); i++ {
		if top[i].Earned > top[i-1].Earned {
			t.Error("TopEarners not sorted")
		}
	}
	if len(top) > 3 {
		t.Errorf("TopEarners returned %d > 3", len(top))
	}
	if s := l.SensorEarned(top[0].SensorID); s != top[0].Earned {
		t.Error("SensorEarned mismatch")
	}

	g := l.GiniOfEarnings()
	if g < 0 || g > 1 {
		t.Errorf("gini = %v outside [0,1]", g)
	}
}

func TestLedgerGiniDegenerate(t *testing.T) {
	l := &Ledger{}
	if l.GiniOfEarnings() != 0 {
		t.Error("empty ledger gini != 0")
	}
	l.init()
	l.sensorEarned[1] = 10
	if l.GiniOfEarnings() != 0 {
		t.Error("single-sensor gini != 0")
	}
	// Perfectly even earnings: gini ~ 0.
	l.sensorEarned[2] = 10
	l.sensorEarned[3] = 10
	if g := l.GiniOfEarnings(); g > 0.01 {
		t.Errorf("even gini = %v", g)
	}
	// Extreme skew: gini near (n-1)/n.
	l2 := &Ledger{}
	l2.init()
	l2.sensorEarned[1] = 1e-9
	l2.sensorEarned[2] = 1e-9
	l2.sensorEarned[3] = 1000
	if g := l2.GiniOfEarnings(); g < 0.5 {
		t.Errorf("skewed gini = %v, want high", g)
	}
}

func TestLedgerZeroValueReady(t *testing.T) {
	var l Ledger
	l.RecordPointResult(&PointResult{Outcomes: map[string]PointOutcome{}})
	if l.Slots() != 1 {
		t.Error("zero-value ledger unusable")
	}
	if err := l.CheckBalance(1e-9); err != nil {
		t.Error(err)
	}
}

var _ = query.Value // imported for scenario helpers consistency
