package core

import (
	"repro/internal/query"
)

// BaselinePoint is the evaluation's baseline for single-sensor point
// queries (§4.3): it "takes queries one by one and for each query selects
// the sensor with maximum utility. A sensor that is selected to answer a
// query at a certain location is also assigned to all other queries at
// that location. The cost of the selected sensors is set to zero for the
// remaining queries." It resembles execution on query arrival with data
// buffering for the duration of a time slot.
func BaselinePoint() PointSolver {
	return func(queries []*query.Point, offers []Offer) *PointResult {
		return baselinePointSolve(queries, offers, nil)
	}
}

// baselinePointSolve runs the baseline with an optional set of sensors
// already paid for earlier in the slot (their cost is zero), which the
// baseline query-mix pipeline uses after executing aggregates.
func baselinePointSolve(queries []*query.Point, offers []Offer, preSelected map[int]bool) *PointResult {
	res := &PointResult{Outcomes: make(map[string]PointOutcome), Exact: true}
	selected := make(map[int]bool, len(preSelected)) // sensor ID -> already paid for
	for id := range preSelected {
		selected[id] = true
	}
	// effective cost: zero once selected.
	cost := func(o Offer) float64 {
		if selected[o.Sensor.ID] {
			return 0
		}
		return o.Cost
	}
	for _, q := range queries {
		if _, done := res.Outcomes[q.QID()]; done {
			continue
		}
		bestU, bestI := 0.0, -1
		for i, o := range offers {
			v := q.ValueSingle(o.Sensor)
			if v <= 0 {
				continue
			}
			if u := v - cost(o); u > bestU {
				bestU, bestI = u, i
			}
		}
		if bestI == -1 {
			continue // unanswered: every sensor's utility non-positive
		}
		o := offers[bestI]
		pay := cost(o)
		if !selected[o.Sensor.ID] {
			selected[o.Sensor.ID] = true
			res.Selected = append(res.Selected, o.Sensor)
			res.TotalCost += o.Cost
		}
		// The paying query and every other query at the same location get
		// the sensor; later queries see cost zero.
		v := q.ValueSingle(o.Sensor)
		res.Outcomes[q.QID()] = PointOutcome{Sensor: o.Sensor, Payment: pay, Value: v, Theta: q.Theta(o.Sensor)}
		res.TotalValue += v
		for _, other := range queries {
			if other == q || other.Loc != q.Loc {
				continue
			}
			if _, done := res.Outcomes[other.QID()]; done {
				continue
			}
			ov := other.ValueSingle(o.Sensor)
			if ov <= 0 {
				continue
			}
			res.Outcomes[other.QID()] = PointOutcome{Sensor: o.Sensor, Payment: 0, Value: ov, Theta: other.Theta(o.Sensor)}
			res.TotalValue += ov
		}
	}
	return res
}

// BaselineMultiSelect is the evaluation's baseline for multiple-sensor
// one-shot queries (§4.4): sequential per-query greedy selection with data
// buffering — "it takes the queries one by one and for each query selects
// the sensors that result in best utility. The cost of the selected
// sensors is set to zero for the subsequent queries in the time slot."
func BaselineMultiSelect(queries []query.Query, offers []Offer) *MultiResult {
	res := &MultiResult{
		Outcomes: make(map[string]*MultiOutcome, len(queries)),
		States:   make(map[string]query.State, len(queries)),
	}
	selected := make(map[int]bool)
	selectedOffers := make(map[int]Offer)
	for _, q := range queries {
		st := q.NewState()
		out := &MultiOutcome{Payments: make(map[int]float64)}
		res.Outcomes[q.QID()] = out
		res.States[q.QID()] = st

		// Per-query greedy: repeatedly add the sensor with the best
		// marginal utility deltav - effectiveCost while positive.
		used := make(map[int]bool)
		for {
			bestI, bestNet := -1, 0.0
			for i, o := range offers {
				if used[o.Sensor.ID] || !q.Relevant(o.Sensor) {
					continue
				}
				c := o.Cost
				if selected[o.Sensor.ID] {
					c = 0
				}
				if net := st.Gain(o.Sensor) - c; net > bestNet {
					bestNet, bestI = net, i
				}
			}
			if bestI == -1 {
				break
			}
			o := offers[bestI]
			used[o.Sensor.ID] = true
			pay := o.Cost
			if selected[o.Sensor.ID] {
				pay = 0
			} else {
				selected[o.Sensor.ID] = true
				selectedOffers[o.Sensor.ID] = o
				res.Selected = append(res.Selected, o.Sensor)
				res.TotalCost += o.Cost
			}
			st.Add(o.Sensor)
			out.Sensors = append(out.Sensors, o.Sensor)
			out.Payments[o.Sensor.ID] += pay
		}
		out.Value = st.Value()
		res.TotalValue += out.Value
	}
	return res
}

// BaselineAggregates adapts BaselineMultiSelect for aggregate-query
// batches.
func BaselineAggregates(queries []*query.Aggregate, offers []Offer) *MultiResult {
	qs := make([]query.Query, len(queries))
	for i, q := range queries {
		qs[i] = q
	}
	return BaselineMultiSelect(qs, offers)
}
