package core

import (
	"math"
	"sort"
	"strconv"

	"repro/internal/geo"
	"repro/internal/gp"
	"repro/internal/query"
	"repro/internal/sensornet"
)

// WeightEq18 is the cost-weighting function w(k) of Eq. 18 applied to a
// sensor that falls into the region of k region-monitoring queries. The
// paper defines w as returning "a real value between 0 and 1" and prints
// the table {11-k for k<10, 0.1 otherwise}; we read it on the 0..1 scale
// as (11-k)/10: no discount for a single query, down to 10% of the cost
// at ten or more sharing queries.
func WeightEq18(k int) float64 {
	if k <= 1 {
		return 1
	}
	if k >= 10 {
		return 0.1
	}
	return float64(11-k) / 10
}

// RegMonOptions configures region-monitoring acquisition.
type RegMonOptions struct {
	// Solver schedules the generated point queries (Optimal in §4.6).
	Solver PointSolver
	// CostWeighting enables the w(k) discount of Eq. 18 on sensors shared
	// by several region queries.
	CostWeighting bool
	// ShareSensors enables using sensors selected for other queries that
	// happen to fall inside a query's region (the A_{r,t} stage of
	// Algorithm 3's ApplyResults).
	ShareSensors bool
	// Weight overrides WeightEq18 when non-nil.
	Weight func(k int) float64
	// MaxPlanningTimes caps the future time instants Algorithm 4 considers
	// (the paper iterates t = tc..q.t2; we subsample to bound planning
	// cost). 0 means 8.
	MaxPlanningTimes int
}

// RegMonSlotResult is the outcome of one slot of Algorithm 3.
type RegMonSlotResult struct {
	Point *PointResult
	// ValueGained sums the per-query increases of the Eq. 7 valuation.
	ValueGained float64
	// Contributions maps sensor IDs to the total cost contribution made by
	// region queries for shared sensors — the payment-adjustment input of
	// Algorithm 5.
	Contributions map[int]float64
	// Issued counts the generated point queries.
	Issued int
}

// Welfare returns the slot's contribution to social welfare; cost
// contributions are transfers between queries, not welfare.
func (r *RegMonSlotResult) Welfare() float64 { return r.ValueGained - r.Point.TotalCost }

// regPlan is one query's sampling plan for the current slot.
type regPlan struct {
	q            *query.RegionMonitoring
	expectedCost float64  // C_t: announced (weighted) cost of planned sensors
	pointIDs     []string // generated point query IDs
}

// RunRegionMonitoringSlot is Algorithm 3 with Algorithm 4 as the
// query-specific sampling-point selector f_q: each active region
// monitoring query plans its best sampling locations under the remaining
// budget, materializes one point query per planned location valued at its
// marginal contribution v_q(S_t) - v_q(S_t \ {s}) (CreatePointQueries),
// all point queries are scheduled jointly, results are applied, and each
// query may opportunistically contribute to sensors selected for other
// queries inside its region, capped at alpha*(C_t - C-hat_t)
// (ApplyResults).
func RunRegionMonitoringSlot(t int, queries []*query.RegionMonitoring, offers []Offer, opts RegMonOptions) *RegMonSlotResult {
	if opts.Solver == nil {
		opts.Solver = OptimalPoint(OptimalOptions{})
	}
	weight := opts.Weight
	if weight == nil {
		weight = WeightEq18
	}

	var active []*query.RegionMonitoring
	for _, q := range queries {
		if q.Active(t) {
			q.ResetIfNeeded(t)
			active = append(active, q)
		}
	}
	out := &RegMonSlotResult{Contributions: make(map[int]float64)}
	if len(active) == 0 {
		out.Point = &PointResult{Outcomes: map[string]PointOutcome{}, Exact: true}
		return out
	}

	// k(s): how many active query regions contain each sensor (Eq. 18).
	shareCount := make(map[int]int)
	for _, o := range offers {
		for _, q := range active {
			if q.Region.Contains(o.Sensor.Pos) {
				shareCount[o.Sensor.ID]++
			}
		}
	}

	valueBefore := make(map[string]float64, len(active))
	var pts []*query.Point
	var postAppended, postRebuilt int64
	plans := make([]*regPlan, 0, len(active))
	for _, q := range active {
		valueBefore[q.ID] = q.Value()
		// S_{r,t} and SC_{r,t}: in-region sensors with (weighted) costs.
		var inRegion []Offer
		var costs []float64
		for _, o := range offers {
			if !q.Region.Contains(o.Sensor.Pos) {
				continue
			}
			c := o.Cost
			if opts.CostWeighting {
				c *= weight(shareCount[o.Sensor.ID])
			}
			inRegion = append(inRegion, o)
			costs = append(costs, c)
		}
		planned, appended, rebuilt := selectSamplingPoints(q, inRegion, costs, q.RemainingBudget(), t, opts.MaxPlanningTimes)
		postAppended += appended
		postRebuilt += rebuilt
		if len(planned) == 0 {
			continue
		}
		plan := &regPlan{q: q}
		pset := make([]*sensornet.Sensor, len(planned))
		thetas := make([]float64, len(planned))
		for i, pi := range planned {
			pset[i] = inRegion[pi].Sensor
			thetas[i] = q.Theta(pset[i])
		}
		vFull := q.PlanValue(sensorPositions(pset), thetas)
		for i, pi := range planned {
			rest := make([]*sensornet.Sensor, 0, len(pset)-1)
			restThetas := make([]float64, 0, len(pset)-1)
			for j := range pset {
				if j != i {
					rest = append(rest, pset[j])
					restThetas = append(restThetas, thetas[j])
				}
			}
			marginal := vFull - q.PlanValue(sensorPositions(rest), restThetas)
			if marginal <= 0 {
				continue
			}
			p := query.NewPoint(query.PointID(q.ID, t, "s"+strconv.Itoa(pset[i].ID)), pset[i].Pos, marginal, RegionProbeDMax)
			p.ThetaMin = 0.01
			pts = append(pts, p)
			plan.pointIDs = append(plan.pointIDs, p.QID())
			plan.expectedCost += costs[pi]
		}
		plans = append(plans, plan)
	}
	out.Issued = len(pts)

	res := opts.Solver(pts, offers)
	out.Point = res
	out.Point.Stats.PosteriorAppends += postAppended
	out.Point.Stats.PosteriorRebuilds += postRebuilt

	// ApplyResults: record satisfied samples.
	recorded := make(map[*query.RegionMonitoring]map[int]bool)
	spentActual := make(map[*regPlan]float64)
	for _, plan := range plans {
		recorded[plan.q] = make(map[int]bool)
		for _, pid := range plan.pointIDs {
			o, ok := res.Outcomes[pid]
			if !ok {
				continue
			}
			plan.q.Record(o.Sensor.Pos, plan.q.Theta(o.Sensor), o.Payment)
			recorded[plan.q][o.Sensor.ID] = true
			spentActual[plan] += o.Payment
		}
	}

	// Sharing stage: contribute to other queries' sensors in the region.
	if opts.ShareSensors {
		for _, plan := range plans {
			q := plan.q
			budget := q.Alpha * (plan.expectedCost - spentActual[plan])
			if budget <= 0 {
				continue
			}
			type cand struct {
				s  *sensornet.Sensor
				dv float64
			}
			var cands []cand
			for _, s := range res.Selected {
				if !q.Region.Contains(s.Pos) || recorded[q][s.ID] {
					continue
				}
				if dv := marginalRegionValue(q, s); dv > 0 {
					cands = append(cands, cand{s: s, dv: dv})
				}
			}
			sort.Slice(cands, func(i, j int) bool {
				if cands[i].dv != cands[j].dv {
					return cands[i].dv > cands[j].dv
				}
				return cands[i].s.ID < cands[j].s.ID
			})
			for _, c := range cands {
				if budget <= 0 {
					break
				}
				pay := math.Min(c.dv, budget)
				q.Record(c.s.Pos, q.Theta(c.s), pay)
				recorded[q][c.s.ID] = true
				out.Contributions[c.s.ID] += pay
				budget -= pay
			}
		}
	}

	for _, q := range active {
		out.ValueGained += q.Value() - valueBefore[q.ID]
	}
	return out
}

// RunRegionMonitoringSlotBaseline is the §4.6 baseline: no cost weighting,
// no sensor sharing, and the baseline point algorithm for the generated
// point queries.
func RunRegionMonitoringSlotBaseline(t int, queries []*query.RegionMonitoring, offers []Offer) *RegMonSlotResult {
	return RunRegionMonitoringSlot(t, queries, offers, RegMonOptions{
		Solver:        BaselinePoint(),
		CostWeighting: false,
		ShareSensors:  false,
	})
}

// marginalRegionValue computes v_q(S ∪ {s}) - v_q(S) on the query's
// accumulated observation state.
func marginalRegionValue(q *query.RegionMonitoring, s *sensornet.Sensor) float64 {
	afterPts := make([]geo.Point, 0, len(q.ObsPoints)+1)
	afterPts = append(afterPts, q.ObsPoints...)
	afterPts = append(afterPts, s.Pos)
	afterThetas := make([]float64, 0, len(q.Thetas)+1)
	afterThetas = append(afterThetas, q.Thetas...)
	afterThetas = append(afterThetas, q.Theta(s))
	return q.ValueOf(afterPts, afterThetas) - q.Value()
}

// selectSamplingPoints is Algorithm 4: greedy sampling-point selection for
// a region monitoring query at time tc. It keeps one candidate observation
// set per (subsampled) future time instant; each step adds the
// (sensor, time) pair maximizing
//
//	delta_{s,t} = (F(S_t ∪ {s}) - F(S_t)) * theta_s * (t2 - t)/(t2 - t1)
//
// and charges the sensor's (weighted) cost against the budget; only
// current-time selections are returned. The time-discount factor "is an
// attempt to increase the chance of selecting sensors for the current
// time" (§3.3). Marginal F evaluations use the incremental GP posterior.
// It returns the selected in-region offer indices plus the posterior
// cache accounting of this call: how many accumulated observations were
// folded in by rank-1 append vs replayed by a from-scratch rebuild
// (see query.RegionMonitoring.BasePosterior).
func selectSamplingPoints(q *query.RegionMonitoring, inRegion []Offer, costs []float64, budget float64, tc, maxTimes int) (sel []int, appended, rebuilt int64) {
	if len(inRegion) == 0 || budget <= 0 {
		return nil, 0, 0
	}
	if maxTimes <= 0 {
		maxTimes = 8
	}
	horizon := q.End - tc
	times := []int{tc}
	if horizon > 0 {
		step := 1
		if horizon+1 > maxTimes {
			step = (horizon + maxTimes - 1) / maxTimes
		}
		for tm := tc + step; tm <= q.End; tm += step {
			times = append(times, tm)
		}
	}

	// Every time instant's tracker starts from the query's accumulated
	// observations, so marginals measure genuinely new information. (The
	// paper's pseudocode resets S_t to empty each slot; conditioning on
	// q.S keeps a saturated query from re-buying what it already knows,
	// which matches the intent of the budget control C-hat.) The base
	// factorization is cached on the query across slots and extended by
	// rank-1 appends; it stays owned by the query, so every tracker is a
	// clone, never the base itself.
	base, appended, rebuilt := q.BasePosterior()
	trackers := make([]*gp.Posterior, len(times))
	for i := range trackers {
		trackers[i] = base.Clone()
	}
	used := make([][]bool, len(times))
	for i := range used {
		used[i] = make([]bool, len(inRegion))
	}
	duration := float64(q.End - q.Start)
	if duration <= 0 {
		duration = 1
	}

	var currentSel []int
	var spent float64
	for iter := 0; iter < 200 && spent < budget; iter++ {
		bestDelta := 1e-9
		bestS, bestT := -1, -1
		for ti, tm := range times {
			timeFactor := float64(q.End-tm) / duration
			if tm == tc {
				// The current slot is never zero-weighted, even for queries
				// ending this very slot.
				timeFactor = math.Max(timeFactor, 1/duration)
			}
			if timeFactor <= 0 {
				continue
			}
			for si, o := range inRegion {
				if used[ti][si] {
					continue
				}
				delta := trackers[ti].MarginalReduction(o.Sensor.Pos) * q.Theta(o.Sensor) * timeFactor
				if delta > bestDelta {
					bestDelta, bestS, bestT = delta, si, ti
				}
			}
		}
		if bestS < 0 {
			break
		}
		trackers[bestT].Add(inRegion[bestS].Sensor.Pos)
		used[bestT][bestS] = true
		spent += costs[bestS]
		if times[bestT] == tc {
			currentSel = append(currentSel, bestS)
		}
	}
	return currentSel, appended, rebuilt
}

// sensorPositions extracts sensor positions.
func sensorPositions(ss []*sensornet.Sensor) []geo.Point {
	out := make([]geo.Point, len(ss))
	for i, s := range ss {
		out[i] = s.Pos
	}
	return out
}
