package core

import (
	"testing"
)

// TestGreedyParallelMatchesSerial verifies the sharded candidate scan is
// bit-identical to the serial path: same selection order, same payments,
// same welfare. The merge rule (shard order, strict >) must reproduce the
// serial first-max choice exactly.
func TestGreedyParallelMatchesSerial(t *testing.T) {
	for seed := int64(1); seed <= 4; seed++ {
		qs, offers := randomAggScenario(seed, 800, 30, 400)
		serial := GreedySelectWith(qs, offers, GreedyConfig{Workers: 1})
		for _, workers := range []int{2, 3, 8} {
			par := GreedySelectWith(qs, offers, GreedyConfig{Workers: workers, ParallelThreshold: 1})
			if len(par.Selected) != len(serial.Selected) {
				t.Fatalf("seed %d workers %d: %d sensors selected, serial %d",
					seed, workers, len(par.Selected), len(serial.Selected))
			}
			for i := range serial.Selected {
				if par.Selected[i].ID != serial.Selected[i].ID {
					t.Fatalf("seed %d workers %d: selection order diverged at %d: %d vs %d",
						seed, workers, i, par.Selected[i].ID, serial.Selected[i].ID)
				}
			}
			if par.TotalCost != serial.TotalCost || par.TotalValue != serial.TotalValue {
				t.Fatalf("seed %d workers %d: cost/value %v/%v, serial %v/%v",
					seed, workers, par.TotalCost, par.TotalValue, serial.TotalCost, serial.TotalValue)
			}
			for qid, so := range serial.Outcomes {
				po := par.Outcomes[qid]
				if po == nil || po.Value != so.Value || len(po.Payments) != len(so.Payments) {
					t.Fatalf("seed %d workers %d: outcome %s diverged", seed, workers, qid)
				}
				// Per-sensor payments are computed in deterministic order;
				// compare them individually (TotalPayment sums a map and
				// its iteration order perturbs float rounding).
				for sid, p := range so.Payments {
					if po.Payments[sid] != p {
						t.Fatalf("seed %d workers %d: %s payment to sensor %d = %v, serial %v",
							seed, workers, qid, sid, po.Payments[sid], p)
					}
				}
			}
		}
	}
}
