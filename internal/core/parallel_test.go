package core

import (
	"fmt"
	"testing"
)

// TestGreedyParallelMatchesSerial verifies the sharded candidate scan is
// bit-identical to the serial path: same selection order, same payments,
// same welfare. The merge rule (shard order, strict >) must reproduce the
// serial first-max choice exactly.
func TestGreedyParallelMatchesSerial(t *testing.T) {
	for seed := int64(1); seed <= 4; seed++ {
		qs, offers := randomAggScenario(seed, 800, 30, 400)
		serial := GreedySelectWith(qs, offers, GreedyConfig{Workers: 1})
		for _, workers := range []int{2, 3, 8} {
			par := GreedySelectWith(qs, offers, GreedyConfig{Workers: workers, ParallelThreshold: 1})
			assertSameMultiResult(t, fmt.Sprintf("seed %d workers %d", seed, workers), serial, par)
		}
	}
}
