package core

import (
	"fmt"
	"math"
	"testing"

	"repro/internal/field"
	"repro/internal/geo"
	"repro/internal/gp"
	"repro/internal/query"
	"repro/internal/regression"
	"repro/internal/rng"
	"repro/internal/sensornet"
)

func history(seed int64, n int) *regression.Series {
	vals := field.DefaultOzone().Generate(n, rng.New(seed, "lm-history"))
	times := make([]float64, n)
	for i := range times {
		times[i] = float64(i)
	}
	s, _ := regression.NewSeries(times, vals)
	return s
}

func TestRunLocationMonitoringSlotLifecycle(t *testing.T) {
	h := history(1, 50)
	q := query.NewLocationMonitoring("lm1", geo.Pt(5, 5), 0, 20, 150, 10, h, 6)
	offers := makeOffers(geo.Pt(5, 5), geo.Pt(8, 8))
	solver := OptimalPoint(OptimalOptions{})

	var welfare float64
	for slot := 0; slot <= 20; slot++ {
		res := RunLocationMonitoringSlot(slot, []*query.LocationMonitoring{q}, offers, solver)
		welfare += res.Welfare()
	}
	if len(q.Sampled) == 0 {
		t.Fatal("no samples taken over the query lifetime")
	}
	if q.Value() <= 0 {
		t.Error("query ended with zero value")
	}
	// Conservation: total welfare = final value - total sensor costs; with
	// value>0 and enough budget welfare should exceed the no-op 0 here.
	if welfare <= 0 {
		t.Errorf("total welfare = %v", welfare)
	}
}

func TestLocMonInactiveQueriesIgnored(t *testing.T) {
	h := history(2, 50)
	q := query.NewLocationMonitoring("lm1", geo.Pt(5, 5), 10, 20, 100, 10, h, 4)
	offers := makeOffers(geo.Pt(5, 5))
	res := RunLocationMonitoringSlot(0, []*query.LocationMonitoring{q}, offers, BaselinePoint())
	if res.Issued != 0 {
		t.Errorf("inactive query issued %d point queries", res.Issued)
	}
}

func TestLocMonAlg2BeatsBaseline(t *testing.T) {
	// Aggregate over several queries/seeds: Algorithm 2 with the optimal
	// point solver must achieve at least the baseline's welfare (Fig 8).
	var alg2Total, baseTotal float64
	for seed := int64(1); seed <= 5; seed++ {
		mk := func() []*query.LocationMonitoring {
			var qs []*query.LocationMonitoring
			for i := 0; i < 5; i++ {
				h := history(seed*10+int64(i), 50)
				qs = append(qs, query.NewLocationMonitoring(
					fmt.Sprintf("lm%d", i), geo.Pt(float64(2+i*2), 5), 0, 30, 200, 10, h, 8))
			}
			return qs
		}
		offerPos := []geo.Point{geo.Pt(3, 5), geo.Pt(6, 5), geo.Pt(9, 5)}

		qsA := mk()
		offersA := makeOffers(offerPos...)
		for slot := 0; slot <= 30; slot++ {
			alg2Total += RunLocationMonitoringSlot(slot, qsA, offersA, OptimalPoint(OptimalOptions{})).Welfare()
		}
		qsB := mk()
		offersB := makeOffers(offerPos...)
		for slot := 0; slot <= 30; slot++ {
			baseTotal += RunLocationMonitoringSlotBaseline(slot, qsB, offersB).Welfare()
		}
	}
	if alg2Total < baseTotal-1e-6 {
		t.Errorf("Algorithm 2 welfare %v < baseline %v", alg2Total, baseTotal)
	}
}

func regModel() *gp.GP {
	return gp.New(gp.SquaredExponential{Sigma2: 4, Length: 3}, 0.1)
}

func TestRunRegionMonitoringSlotRecordsObservations(t *testing.T) {
	grid := geo.NewUnitGrid(20, 15)
	q := query.NewRegionMonitoring("rm1", geo.NewRect(2, 2, 12, 10), 0, 15, 120, regModel(), grid)
	offers := makeOffers(geo.Pt(4, 4), geo.Pt(8, 6), geo.Pt(10, 8), geo.Pt(18, 14))
	res := RunRegionMonitoringSlot(0, []*query.RegionMonitoring{q}, offers,
		RegMonOptions{Solver: OptimalPoint(OptimalOptions{}), CostWeighting: true, ShareSensors: true})
	if res.Issued == 0 {
		t.Fatal("no point queries issued for a budgeted region query")
	}
	if len(q.ObsPoints) == 0 {
		t.Fatal("no observations recorded")
	}
	if q.Value() <= 0 {
		t.Error("query value should be positive after observations")
	}
	// Out-of-region sensor (18,14) must never be planned.
	for _, p := range q.ObsPoints {
		if !q.Region.Contains(p) {
			t.Errorf("observation outside region: %v", p)
		}
	}
	if res.ValueGained <= 0 {
		t.Error("value gained should be positive")
	}
}

func TestRegMonBudgetRespected(t *testing.T) {
	grid := geo.NewUnitGrid(20, 15)
	q := query.NewRegionMonitoring("rm1", geo.NewRect(2, 2, 12, 10), 0, 10, 15, regModel(), grid)
	offers := makeOffers(geo.Pt(4, 4), geo.Pt(8, 6), geo.Pt(10, 8), geo.Pt(5, 9), geo.Pt(11, 3))
	for slot := 0; slot <= 10; slot++ {
		RunRegionMonitoringSlot(slot, []*query.RegionMonitoring{q}, offers,
			RegMonOptions{Solver: OptimalPoint(OptimalOptions{})})
	}
	// Planned spending is bounded by the budget (payments can be below
	// announced costs, so Spent <= B is the invariant).
	if q.Spent > q.B+1e-6 {
		t.Errorf("query spent %v over budget %v", q.Spent, q.B)
	}
}

func TestRegMonSharingIncreasesValue(t *testing.T) {
	grid := geo.NewUnitGrid(20, 15)
	mk := func() []*query.RegionMonitoring {
		return []*query.RegionMonitoring{
			query.NewRegionMonitoring("rm1", geo.NewRect(2, 2, 12, 10), 0, 20, 60, regModel(), grid),
			query.NewRegionMonitoring("rm2", geo.NewRect(6, 4, 16, 12), 0, 20, 60, regModel(), grid),
		}
	}
	offerPos := []geo.Point{geo.Pt(7, 6), geo.Pt(9, 8), geo.Pt(4, 4), geo.Pt(14, 11), geo.Pt(11, 5)}

	qsShared := mk()
	var sharedVal float64
	offersA := makeOffers(offerPos...)
	for slot := 0; slot <= 20; slot++ {
		RunRegionMonitoringSlot(slot, qsShared, offersA,
			RegMonOptions{Solver: OptimalPoint(OptimalOptions{}), CostWeighting: true, ShareSensors: true})
	}
	for _, q := range qsShared {
		sharedVal += q.Value()
	}

	qsPlain := mk()
	var plainVal float64
	offersB := makeOffers(offerPos...)
	for slot := 0; slot <= 20; slot++ {
		RunRegionMonitoringSlotBaseline(slot, qsPlain, offersB)
	}
	for _, q := range qsPlain {
		plainVal += q.Value()
	}
	if sharedVal < plainVal-1e-6 {
		t.Errorf("sharing value %v < baseline %v", sharedVal, plainVal)
	}
}

func TestWeightEq18(t *testing.T) {
	cases := []struct {
		k    int
		want float64
	}{
		{0, 1}, {1, 1}, {2, 0.9}, {5, 0.6}, {9, 0.2}, {10, 0.1}, {15, 0.1},
	}
	for _, c := range cases {
		if got := WeightEq18(c.k); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("w(%d)=%v want %v", c.k, got, c.want)
		}
	}
}

func TestSelectSamplingPointsSpreadsObservations(t *testing.T) {
	grid := geo.NewUnitGrid(20, 15)
	q := query.NewRegionMonitoring("rm", geo.NewRect(0, 0, 20, 15), 0, 10, 80, regModel(), grid)
	// Clustered and spread sensors: the GP marginal should prefer spread.
	offers := makeOffers(
		geo.Pt(5, 5), geo.Pt(5.2, 5.2), geo.Pt(5.4, 5.4), // cluster
		geo.Pt(15, 10), geo.Pt(2, 12), // spread
	)
	costs := []float64{10, 10, 10, 10, 10}
	sel, _, _ := selectSamplingPoints(q, offers, costs, 40, 0, 0)
	if len(sel) == 0 {
		t.Fatal("nothing selected")
	}
	chosen := map[int]bool{}
	for _, i := range sel {
		chosen[i] = true
	}
	// Selecting all three clustered sensors before any spread one would be
	// a GP-marginal failure.
	if chosen[0] && chosen[1] && chosen[2] && !chosen[3] && !chosen[4] {
		t.Error("selection clustered despite submodular variance reduction")
	}
}

func TestRunMixSlotAllTypes(t *testing.T) {
	grid := geo.NewUnitGrid(100, 100)
	h := history(3, 50)
	mixQ := MixQueries{
		Aggregates: makeAggregates(grid, 100, geo.NewRect(10, 10, 40, 40)),
		Points:     makePoints(20, 5, geo.Pt(25, 25), geo.Pt(30, 30)),
		LocMon: []*query.LocationMonitoring{
			query.NewLocationMonitoring("lm1", geo.Pt(20, 20), 0, 20, 150, 10, h, 5),
		},
	}
	offers := makeOffers(geo.Pt(25, 25), geo.Pt(30, 30), geo.Pt(20, 20), geo.Pt(15, 35))
	res := RunMixSlot(0, mixQ, offers)
	if res.Welfare() <= 0 {
		t.Fatalf("mix welfare = %v", res.Welfare())
	}
	if res.AggValue <= 0 {
		t.Error("aggregate value missing")
	}
	if res.PointValue <= 0 {
		t.Error("point value missing")
	}
	if res.Multi == nil || len(res.Multi.Selected) == 0 {
		t.Error("no sensors selected")
	}
}

func TestRunMixSlotBeatsBaselineAggregate(t *testing.T) {
	grid := geo.NewUnitGrid(100, 100)
	s := rng.New(4, "mix-scenario")
	var algTotal, baseTotal float64
	for trial := 0; trial < 5; trial++ {
		build := func() (MixQueries, []Offer) {
			var positions []geo.Point
			for i := 0; i < 25; i++ {
				positions = append(positions, geo.Pt(s.Uniform(0, 100), s.Uniform(0, 100)))
			}
			var regions []geo.Rect
			for i := 0; i < 4; i++ {
				x, y := s.Uniform(0, 60), s.Uniform(0, 60)
				regions = append(regions, geo.NewRect(x, y, x+25, y+25))
			}
			var locs []geo.Point
			for i := 0; i < 30; i++ {
				locs = append(locs, geo.Pt(float64(s.Intn(100)), float64(s.Intn(100))))
			}
			return MixQueries{
				Aggregates: makeAggregates(grid, 80, regions...),
				Points:     makePoints(15, 10, locs...),
			}, makeOffers(positions...)
		}
		qA, oA := build()
		algTotal += RunMixSlot(0, qA, oA).Welfare()
		baseTotal += RunMixSlotBaseline(0, qA, oA).Welfare()
		_ = oA
	}
	if algTotal <= baseTotal {
		t.Errorf("Algorithm 5 welfare %v <= baseline %v", algTotal, baseTotal)
	}
}

func TestMixSlotLocMonFeedback(t *testing.T) {
	h := history(9, 50)
	lm := query.NewLocationMonitoring("lm1", geo.Pt(10, 10), 0, 10, 150, 10, h, 4)
	mixQ := MixQueries{LocMon: []*query.LocationMonitoring{lm}}
	offers := makeOffers(geo.Pt(10, 10))
	for slot := 0; slot <= 10; slot++ {
		RunMixSlot(slot, mixQ, offers)
	}
	if len(lm.Sampled) == 0 {
		t.Error("location monitoring got no samples through the mix pipeline")
	}
}

func TestMixSlotRegMonContributions(t *testing.T) {
	grid := geo.NewUnitGrid(20, 15)
	rm1 := query.NewRegionMonitoring("rm1", geo.NewRect(2, 2, 12, 10), 0, 20, 80, regModel(), grid)
	rm2 := query.NewRegionMonitoring("rm2", geo.NewRect(4, 4, 14, 12), 0, 20, 80, regModel(), grid)
	offers := makeOffers(geo.Pt(6, 6), geo.Pt(9, 8), geo.Pt(11, 5), geo.Pt(5, 9))
	var contributions int
	for slot := 0; slot <= 20; slot++ {
		res := RunMixSlot(slot, MixQueries{RegMon: []*query.RegionMonitoring{rm1, rm2}}, offers)
		contributions += len(res.Contributions)
	}
	if rm1.Value() <= 0 || rm2.Value() <= 0 {
		t.Error("region queries got no value through the mix pipeline")
	}
	// With heavily overlapping regions, sharing contributions should
	// appear at least once across the simulation.
	if contributions == 0 {
		t.Log("no sharing contributions occurred (acceptable but unexpected)")
	}
}

func TestMixEmptySlot(t *testing.T) {
	res := RunMixSlot(0, MixQueries{}, makeOffers(geo.Pt(1, 1)))
	if res.Welfare() != 0 {
		t.Errorf("empty mix welfare = %v", res.Welfare())
	}
	resB := RunMixSlotBaseline(0, MixQueries{}, makeOffers(geo.Pt(1, 1)))
	if resB.Welfare() != 0 {
		t.Errorf("empty baseline mix welfare = %v", resB.Welfare())
	}
}

var _ = []*sensornet.Sensor{} // keep import if scenarios change

func TestBaselineAggregatesWrapper(t *testing.T) {
	grid := geo.NewUnitGrid(100, 100)
	aggs := []*query.Aggregate{
		query.NewAggregate("a1", geo.NewRect(10, 10, 30, 30), 100, 10, grid),
	}
	offers := makeOffers(geo.Pt(20, 20))
	res := BaselineAggregates(aggs, offers)
	if res.Outcomes["a1"] == nil {
		t.Fatal("aggregate missing from outcomes")
	}
	if res.Outcomes["a1"].Value <= 0 {
		t.Error("profitable aggregate got no value")
	}
}

func TestRegMonSlotWelfareAccessor(t *testing.T) {
	grid := geo.NewUnitGrid(20, 15)
	q := query.NewRegionMonitoring("rm", geo.NewRect(2, 2, 10, 8), 0, 10, 60, regModel(), grid)
	offers := makeOffers(geo.Pt(5, 5), geo.Pt(8, 6))
	res := RunRegionMonitoringSlot(0, []*query.RegionMonitoring{q}, offers,
		RegMonOptions{Solver: OptimalPoint(OptimalOptions{})})
	if got := res.Welfare(); got != res.ValueGained-res.Point.TotalCost {
		t.Errorf("Welfare accessor inconsistent: %v", got)
	}
}

func TestMixBaselineWithLocMonAndExtra(t *testing.T) {
	grid := geo.NewUnitGrid(100, 100)
	h := history(21, 50)
	lm := query.NewLocationMonitoring("lm-b", geo.Pt(25, 25), 0, 10, 150, 10, h, 3)
	traj := query.NewTrajectory("tr-b", geo.Trajectory{Waypoints: []geo.Point{geo.Pt(10, 25), geo.Pt(40, 25)}}, 80, 10)
	mq := MixQueries{
		Aggregates: makeAggregates(grid, 100, geo.NewRect(10, 10, 40, 40)),
		Points:     makePoints(20, 5, geo.Pt(25, 25)),
		LocMon:     []*query.LocationMonitoring{lm},
		Extra:      []query.Query{traj},
	}
	offers := makeOffers(geo.Pt(25, 25), geo.Pt(15, 25), geo.Pt(35, 25))
	var welfare float64
	for slot := 0; slot <= 10; slot++ {
		res := RunMixSlotBaseline(slot, mq, offers)
		welfare += res.Welfare()
		if res.ExtraValue < 0 {
			t.Fatal("negative extra value")
		}
	}
	if welfare <= 0 {
		t.Errorf("baseline mix welfare = %v", welfare)
	}
	if len(lm.Sampled) == 0 {
		t.Error("baseline mix never sampled the locmon query at desired times")
	}
}
