// Package core implements the paper's contribution: utility-driven sensor
// selection for participatory sensing under multi-query optimization
// (§3). It contains
//
//   - optimal single-sensor point scheduling via the BILP of problem (9)
//     (optimal.go),
//   - the 1/3-approximate Local Search of [Feige et al.] over the
//     submodular utility of Eq. 12 (localsearch.go),
//   - Algorithm 1, greedy multi-sensor selection with proportionate cost
//     sharing (greedy.go),
//   - Algorithm 2 for location monitoring and Algorithms 3-4 for region
//     monitoring (locmon.go, regmon.go),
//   - Algorithm 5 for the query mix (mix.go),
//   - the evaluation's baseline algorithms (baseline.go), and
//   - the egalitarian objective mentioned in §2 as an extension
//     (egalitarian.go).
package core

import (
	"sort"

	"repro/internal/geo"
	"repro/internal/query"
	"repro/internal/sensornet"
)

// Offer is a sensor's per-slot announcement (position is in Sensor.Pos).
type Offer = sensornet.Offer

// PointOutcome records how one point query was answered.
type PointOutcome struct {
	Sensor  *sensornet.Sensor
	Payment float64 // pi_{q,s} of Eq. 11
	Value   float64 // v_q(s)
	Theta   float64 // reading quality
}

// PointResult is the outcome of scheduling a batch of single-sensor point
// queries in one time slot.
type PointResult struct {
	// Selected lists the sensors asked to take a measurement.
	Selected []*sensornet.Sensor
	// TotalCost is the sum of selected sensors' announced costs.
	TotalCost float64
	// TotalValue is the sum of valuations over all answered queries.
	TotalValue float64
	// Outcomes maps answered query IDs to their outcome; unanswered
	// queries are absent.
	Outcomes map[string]PointOutcome
	// Exact is false if an exact solver hit its node budget.
	Exact bool
	// Stats instruments greedy-based solvers (zero for the others).
	Stats SelectionStats
}

// Welfare returns total value minus total cost (the objective of Eq. 2).
func (r *PointResult) Welfare() float64 { return r.TotalValue - r.TotalCost }

// PointSolver schedules a batch of single-sensor point queries against the
// slot's sensor offers.
type PointSolver func(queries []*query.Point, offers []Offer) *PointResult

// locationGroup aggregates the point queries issued at one exact location:
// v_l(s) = sum_{q in Q_l} v_q(s) (§3.1.1).
type locationGroup struct {
	loc     geo.Point
	queries []*query.Point
}

// groupByLocation buckets queries by exact queried location with a
// deterministic order (map iteration order must not leak into results).
func groupByLocation(queries []*query.Point) []locationGroup {
	byLoc := make(map[geo.Point][]*query.Point)
	for _, q := range queries {
		byLoc[q.Loc] = append(byLoc[q.Loc], q)
	}
	groups := make([]locationGroup, 0, len(byLoc))
	for loc, qs := range byLoc {
		groups = append(groups, locationGroup{loc: loc, queries: qs})
	}
	sort.Slice(groups, func(i, j int) bool {
		if groups[i].loc.X != groups[j].loc.X {
			return groups[i].loc.X < groups[j].loc.X
		}
		return groups[i].loc.Y < groups[j].loc.Y
	})
	return groups
}

// groupValue returns v_l(s): the total valuation the group's queries give
// sensor s.
func (g *locationGroup) groupValue(s *sensornet.Sensor) float64 {
	var sum float64
	for _, q := range g.queries {
		sum += q.ValueSingle(s)
	}
	return sum
}

// settlePayments applies the proportionate cost allocation of Eq. 11 for
// a sensor s answering the given groups: each query q at an assigned
// location pays v_q(s) * c_s / sum of values s yields across its assigned
// locations. It fills outcomes and returns the total value produced by s.
func settlePayments(s *sensornet.Sensor, cost float64, groups []*locationGroup, outcomes map[string]PointOutcome) float64 {
	var denom float64
	for _, g := range groups {
		denom += g.groupValue(s)
	}
	if denom <= 0 {
		return 0
	}
	var total float64
	for _, g := range groups {
		for _, q := range g.queries {
			v := q.ValueSingle(s)
			if v <= 0 {
				continue
			}
			outcomes[q.QID()] = PointOutcome{
				Sensor:  s,
				Payment: v * cost / denom,
				Value:   v,
				Theta:   q.Theta(s),
			}
			total += v
		}
	}
	return total
}
