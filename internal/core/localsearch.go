package core

import (
	"repro/internal/query"
	"repro/internal/rng"
)

// DefaultLocalSearchEpsilon is the improvement threshold of the Local
// Search algorithm: a move must improve u by a factor (1 + eps/n^2) to be
// taken, yielding the 1/(3+eps)-approximation of [Feige et al., FOCS'07].
const DefaultLocalSearchEpsilon = 0.01

// lsInstance precomputes, for each location group, the candidate sensors
// and their group values, so u(S') of Eq. 12 and its marginals evaluate
// fast:
//
//	u(S') = sum_l max_{s in S'} v_l(s) - sum_{s in S'} c_s.
type lsInstance struct {
	offers []Offer
	groups []locationGroup
	// value[l][i] is v_l(offers[i].Sensor); cand[l] lists i with value>0.
	value [][]float64
	cand  [][]int
}

func newLSInstance(queries []*query.Point, offers []Offer) *lsInstance {
	inst := &lsInstance{offers: offers, groups: groupByLocation(queries)}
	inst.value = make([][]float64, len(inst.groups))
	inst.cand = make([][]int, len(inst.groups))
	for l := range inst.groups {
		inst.value[l] = make([]float64, len(offers))
		for i, o := range offers {
			v := inst.groups[l].groupValue(o.Sensor)
			inst.value[l][i] = v
			if v > 0 {
				inst.cand[l] = append(inst.cand[l], i)
			}
		}
	}
	return inst
}

// utility evaluates u(S') for the member bitmap.
func (inst *lsInstance) utility(member []bool) float64 {
	var u float64
	for l := range inst.groups {
		best := 0.0
		for _, i := range inst.cand[l] {
			if member[i] && inst.value[l][i] > best {
				best = inst.value[l][i]
			}
		}
		u += best
	}
	for i, m := range member {
		if m {
			u -= inst.offers[i].Cost
		}
	}
	return u
}

// LocalSearchPoint returns the heuristic scheduler of §3.1.2: the
// deterministic Local Search for non-monotone submodular maximization.
// Starting from the best singleton it adds any sensor improving u by more
// than the (1+eps/n^2) threshold, then deletes obsolete sensors, repeating
// until stable; finally it returns the better of W and its complement
// (or the empty set when both have negative utility).
func LocalSearchPoint(eps float64) PointSolver {
	return func(queries []*query.Point, offers []Offer) *PointResult {
		inst := newLSInstance(queries, offers)
		member := localSearch(inst, eps, nil)
		return inst.finish(member)
	}
}

// RandomizedLocalSearchPoint is the randomized variant mentioned (but not
// used) in §3.1.2. Instead of the exact smooth-local-search construction
// we run the deterministic search from `restarts` random starting sensors
// with randomized improvement order and keep the best result — a practical
// randomization that explores different local optima.
func RandomizedLocalSearchPoint(eps float64, restarts int, seed int64) PointSolver {
	if restarts < 1 {
		restarts = 3
	}
	return func(queries []*query.Point, offers []Offer) *PointResult {
		inst := newLSInstance(queries, offers)
		rnd := rng.New(seed, "randomized-local-search")
		var best []bool
		bestU := 0.0
		for r := 0; r < restarts; r++ {
			member := localSearch(inst, eps, rnd)
			if u := inst.utility(member); u > bestU {
				bestU = u
				best = append(best[:0:0], member...)
			}
		}
		if best == nil {
			best = make([]bool, len(offers))
		}
		return inst.finish(best)
	}
}

// localSearch runs one local-search pass. A nil rnd gives the
// deterministic variant (best-singleton start, first-improvement scans in
// index order); with rnd, the start and scan order are randomized.
func localSearch(inst *lsInstance, eps float64, rnd *rng.Stream) []bool {
	n := len(inst.offers)
	member := make([]bool, n)
	if n == 0 {
		return member
	}
	threshold := func(u float64) float64 {
		t := u * eps / float64(n*n)
		if t < 0 {
			t = 0
		}
		return t + 1e-12
	}

	// Start from the best (or a random positive) singleton.
	start, bestU := -1, 0.0
	if rnd == nil {
		for i := 0; i < n; i++ {
			member[i] = true
			if u := inst.utility(member); u > bestU {
				bestU, start = u, i
			}
			member[i] = false
		}
	} else {
		perm := rnd.Perm(n)
		for _, i := range perm {
			member[i] = true
			if u := inst.utility(member); u > 0 {
				start = i
				member[i] = false
				break
			}
			member[i] = false
		}
	}
	if start == -1 {
		return member // no profitable singleton: empty allocation
	}
	member[start] = true
	cur := inst.utility(member)

	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	for changed := true; changed; {
		changed = false
		// Add phase.
		for again := true; again; {
			again = false
			if rnd != nil {
				rnd.Shuffle(n, func(i, j int) { order[i], order[j] = order[j], order[i] })
			}
			for _, i := range order {
				if member[i] {
					continue
				}
				member[i] = true
				if u := inst.utility(member); u > cur+threshold(cur) {
					cur = u
					again = true
					changed = true
				} else {
					member[i] = false
				}
			}
		}
		// Delete phase: remove obsolete sensors.
		for _, i := range order {
			if !member[i] {
				continue
			}
			member[i] = false
			if u := inst.utility(member); u > cur+threshold(cur) {
				cur = u
				changed = true
			} else {
				member[i] = true
			}
		}
	}

	// Compare with the complement (the 1/3 guarantee needs max(u(W),
	// u(S\W))) and with the empty set.
	comp := make([]bool, n)
	for i := range comp {
		comp[i] = !member[i]
	}
	switch {
	case inst.utility(comp) > cur && inst.utility(comp) > 0:
		return comp
	case cur <= 0:
		return make([]bool, n)
	default:
		return member
	}
}

// finish converts a member bitmap into a PointResult with Eq. 11 payments.
// Sensors that end up serving no location are dropped (they would only
// cost).
func (inst *lsInstance) finish(member []bool) *PointResult {
	res := &PointResult{Outcomes: make(map[string]PointOutcome), Exact: true}
	assigned := make(map[int][]*locationGroup)
	for l := range inst.groups {
		best, bestI := 0.0, -1
		for _, i := range inst.cand[l] {
			if member[i] && inst.value[l][i] > best {
				best, bestI = inst.value[l][i], i
			}
		}
		if bestI >= 0 {
			assigned[bestI] = append(assigned[bestI], &inst.groups[l])
		}
	}
	for i, o := range inst.offers {
		gs := assigned[i]
		if len(gs) == 0 {
			continue
		}
		value := settlePayments(o.Sensor, o.Cost, gs, res.Outcomes)
		res.Selected = append(res.Selected, o.Sensor)
		res.TotalCost += o.Cost
		res.TotalValue += value
	}
	return res
}
