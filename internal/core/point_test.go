package core

import (
	"fmt"
	"math"
	"testing"

	"repro/internal/geo"
	"repro/internal/query"
	"repro/internal/rng"
	"repro/internal/sensornet"
)

// makeOffers builds stationary sensors at the given positions with the
// experiment-default cost of 10.
func makeOffers(positions ...geo.Point) []Offer {
	offers := make([]Offer, len(positions))
	for i, p := range positions {
		s := sensornet.NewSensor(i, p)
		offers[i] = Offer{Sensor: s, Cost: s.Cost(0)}
	}
	return offers
}

func makePoints(budget, dmax float64, locs ...geo.Point) []*query.Point {
	out := make([]*query.Point, len(locs))
	for i, l := range locs {
		out[i] = query.NewPoint(fmt.Sprintf("q%d", i), l, budget, dmax)
	}
	return out
}

// randomScenario builds a deterministic random point-query instance.
func randomScenario(seed int64, nSensors, nQueries int, budget float64) ([]*query.Point, []Offer) {
	s := rng.New(seed, "core-scenario")
	var positions []geo.Point
	for i := 0; i < nSensors; i++ {
		positions = append(positions, geo.Pt(s.Uniform(0, 30), s.Uniform(0, 30)))
	}
	offers := makeOffers(positions...)
	var locs []geo.Point
	for i := 0; i < nQueries; i++ {
		locs = append(locs, geo.Pt(float64(s.Intn(30)), float64(s.Intn(30))))
	}
	return makePoints(budget, 5, locs...), offers
}

func TestOptimalSharesSensorAcrossQueries(t *testing.T) {
	// Three queries at the same location, budget 7 each: one sensor costs
	// 10 > 7, but 3*7*theta > 10, so the optimal scheduler must open it.
	offers := makeOffers(geo.Pt(0, 0))
	queries := makePoints(7, 5, geo.Pt(0, 0), geo.Pt(0, 0), geo.Pt(0, 0))
	res := OptimalPoint(OptimalOptions{})(queries, offers)
	if len(res.Selected) != 1 {
		t.Fatalf("selected %d sensors, want 1", len(res.Selected))
	}
	if got := len(res.Outcomes); got != 3 {
		t.Fatalf("answered %d queries, want 3", got)
	}
	if res.Welfare() <= 0 {
		t.Errorf("welfare = %v", res.Welfare())
	}
	if !res.Exact {
		t.Error("expected exact solve")
	}
}

func TestBaselineCannotAffordWithoutSharing(t *testing.T) {
	// Same instance: the baseline evaluates queries one by one, each
	// yields value <= 7 < cost 10, so nothing is answered (Fig 2(b)'s
	// budget-7 behaviour).
	offers := makeOffers(geo.Pt(0, 0))
	queries := makePoints(7, 5, geo.Pt(0, 0), geo.Pt(0, 0), geo.Pt(0, 0))
	res := BaselinePoint()(queries, offers)
	if len(res.Outcomes) != 0 || len(res.Selected) != 0 {
		t.Fatalf("baseline answered %d queries, want 0", len(res.Outcomes))
	}
}

func TestBaselineFreeRidesAfterFirstSelection(t *testing.T) {
	// With budget 25, the first query can afford the sensor; the second
	// query at the same location free-rides at zero cost.
	offers := makeOffers(geo.Pt(0, 0))
	queries := makePoints(25, 5, geo.Pt(0, 0), geo.Pt(0, 0))
	res := BaselinePoint()(queries, offers)
	if len(res.Outcomes) != 2 {
		t.Fatalf("answered %d, want 2", len(res.Outcomes))
	}
	if res.TotalCost != 10 {
		t.Errorf("total cost = %v want 10", res.TotalCost)
	}
	paid := 0
	for _, o := range res.Outcomes {
		if o.Payment > 0 {
			paid++
		}
	}
	if paid != 1 {
		t.Errorf("%d queries paid, want exactly 1 (free riding)", paid)
	}
}

func TestPaymentsEq11(t *testing.T) {
	// Eq. 11: payments for a sensor sum to its cost, and each query pays
	// less than its valuation (positive individual utility).
	queries, offers := randomScenario(3, 25, 60, 20)
	for name, solver := range map[string]PointSolver{
		"optimal":     OptimalPoint(OptimalOptions{}),
		"localsearch": LocalSearchPoint(DefaultLocalSearchEpsilon),
		"egalitarian": EgalitarianPoint(),
	} {
		res := solver(queries, offers)
		bySensor := make(map[int]float64)
		for qid, o := range res.Outcomes {
			if o.Payment >= o.Value+1e-9 {
				t.Errorf("%s: query %s pays %v >= value %v", name, qid, o.Payment, o.Value)
			}
			if o.Payment < 0 {
				t.Errorf("%s: negative payment %v", name, o.Payment)
			}
			//pslint:ignore floatorder tolerance-compared (1e-6) below; map-order float error is ~1 ulp
			bySensor[o.Sensor.ID] += o.Payment
		}
		costByID := make(map[int]float64)
		for _, o := range offers {
			costByID[o.Sensor.ID] = o.Cost
		}
		for _, s := range res.Selected {
			if math.Abs(bySensor[s.ID]-costByID[s.ID]) > 1e-6 {
				t.Errorf("%s: sensor %d payments %v != cost %v", name, s.ID, bySensor[s.ID], costByID[s.ID])
			}
		}
	}
}

func TestOptimalDominatesOtherSolvers(t *testing.T) {
	for seed := int64(1); seed <= 8; seed++ {
		for _, budget := range []float64{7, 15, 30} {
			queries, offers := randomScenario(seed, 20, 40, budget)
			opt := OptimalPoint(OptimalOptions{})(queries, offers)
			if !opt.Exact {
				t.Fatalf("seed %d: inexact optimal", seed)
			}
			ls := LocalSearchPoint(DefaultLocalSearchEpsilon)(queries, offers)
			base := BaselinePoint()(queries, offers)
			eg := EgalitarianPoint()(queries, offers)
			if opt.Welfare() < ls.Welfare()-1e-6 {
				t.Errorf("seed %d b=%v: optimal %v < local search %v", seed, budget, opt.Welfare(), ls.Welfare())
			}
			if opt.Welfare() < base.Welfare()-1e-6 {
				t.Errorf("seed %d b=%v: optimal %v < baseline %v", seed, budget, opt.Welfare(), base.Welfare())
			}
			if opt.Welfare() < eg.Welfare()-1e-6 {
				t.Errorf("seed %d b=%v: optimal %v < egalitarian %v", seed, budget, opt.Welfare(), eg.Welfare())
			}
			// The 1/3 guarantee (we check the much weaker "nonnegative and
			// at least a third" bound only when optimum is positive).
			if opt.Welfare() > 0 && ls.Welfare() < opt.Welfare()/3-1e-6 {
				t.Errorf("seed %d b=%v: local search %v below 1/3 of optimal %v", seed, budget, ls.Welfare(), opt.Welfare())
			}
		}
	}
}

func TestLocalSearchCloseToOptimal(t *testing.T) {
	// Fig 2(a): "the Local Search algorithm finds solutions close to the
	// optimal ones". Require >= 90% on aggregate across scenarios.
	var sumOpt, sumLS float64
	for seed := int64(10); seed < 20; seed++ {
		queries, offers := randomScenario(seed, 30, 80, 15)
		sumOpt += OptimalPoint(OptimalOptions{})(queries, offers).Welfare()
		sumLS += LocalSearchPoint(DefaultLocalSearchEpsilon)(queries, offers).Welfare()
	}
	if sumLS < 0.9*sumOpt {
		t.Errorf("local search welfare %v < 90%% of optimal %v", sumLS, sumOpt)
	}
}

func TestOptimalMatchesBruteForceTiny(t *testing.T) {
	// Exhaustive check on tiny instances: enumerate all sensor subsets.
	for seed := int64(50); seed < 60; seed++ {
		queries, offers := randomScenario(seed, 6, 8, 12)
		opt := OptimalPoint(OptimalOptions{})(queries, offers)

		groups := groupByLocation(queries)
		best := 0.0
		for mask := 0; mask < 1<<len(offers); mask++ {
			var obj float64
			for l := range groups {
				bestV := 0.0
				for i, o := range offers {
					if mask&(1<<i) == 0 {
						continue
					}
					if v := groups[l].groupValue(o.Sensor); v > bestV {
						bestV = v
					}
				}
				obj += bestV
			}
			for i, o := range offers {
				if mask&(1<<i) != 0 {
					obj -= o.Cost
				}
			}
			if obj > best {
				best = obj
			}
		}
		if math.Abs(opt.Welfare()-best) > 1e-6 {
			t.Errorf("seed %d: optimal %v != brute force %v", seed, opt.Welfare(), best)
		}
	}
}

func TestOptimalWarmStart(t *testing.T) {
	queries, offers := randomScenario(7, 40, 100, 15)
	plain := OptimalPoint(OptimalOptions{})(queries, offers)
	warm := OptimalPoint(OptimalOptions{WarmStartWithLocalSearch: true})(queries, offers)
	if math.Abs(plain.Welfare()-warm.Welfare()) > 1e-6 {
		t.Errorf("warm start changed optimum: %v vs %v", plain.Welfare(), warm.Welfare())
	}
}

func TestEmptyInputs(t *testing.T) {
	solvers := map[string]PointSolver{
		"optimal":     OptimalPoint(OptimalOptions{}),
		"localsearch": LocalSearchPoint(DefaultLocalSearchEpsilon),
		"baseline":    BaselinePoint(),
		"egalitarian": EgalitarianPoint(),
		"greedy":      GreedyPoint(),
	}
	offers := makeOffers(geo.Pt(0, 0))
	queries := makePoints(10, 5, geo.Pt(0, 0))
	for name, solver := range solvers {
		if res := solver(nil, offers); len(res.Outcomes) != 0 || res.Welfare() != 0 {
			t.Errorf("%s: non-trivial result on empty queries", name)
		}
		if res := solver(queries, nil); len(res.Outcomes) != 0 || res.Welfare() != 0 {
			t.Errorf("%s: non-trivial result on empty offers", name)
		}
	}
}

func TestRandomizedLocalSearch(t *testing.T) {
	queries, offers := randomScenario(11, 25, 60, 15)
	det := LocalSearchPoint(DefaultLocalSearchEpsilon)(queries, offers)
	rnd := RandomizedLocalSearchPoint(DefaultLocalSearchEpsilon, 5, 42)(queries, offers)
	if rnd.Welfare() < 0 {
		t.Errorf("randomized welfare = %v", rnd.Welfare())
	}
	// Both should be in the same ballpark (within 30%).
	if det.Welfare() > 0 && rnd.Welfare() < det.Welfare()*0.7 {
		t.Errorf("randomized %v far below deterministic %v", rnd.Welfare(), det.Welfare())
	}
	// Determinism given the same seed.
	rnd2 := RandomizedLocalSearchPoint(DefaultLocalSearchEpsilon, 5, 42)(queries, offers)
	if math.Abs(rnd.Welfare()-rnd2.Welfare()) > 1e-12 {
		t.Error("randomized local search not reproducible for fixed seed")
	}
}

func TestEgalitarianMaximizesAnswered(t *testing.T) {
	// Scenario where welfare maximization answers fewer queries: sensor A
	// serves one high-value location, sensor B serves many low-value ones.
	offers := makeOffers(geo.Pt(0, 0), geo.Pt(20, 20))
	queries := []*query.Point{
		query.NewPoint("rich", geo.Pt(0, 0), 100, 5),
		query.NewPoint("p1", geo.Pt(20, 20), 4, 5),
		query.NewPoint("p2", geo.Pt(20, 20), 4, 5),
		query.NewPoint("p3", geo.Pt(20, 20), 4, 5),
	}
	eg := EgalitarianPoint()(queries, offers)
	opt := OptimalPoint(OptimalOptions{})(queries, offers)
	if len(eg.Outcomes) < len(opt.Outcomes) {
		t.Errorf("egalitarian answered %d < optimal %d", len(eg.Outcomes), len(opt.Outcomes))
	}
	if eg.Welfare() > opt.Welfare()+1e-9 {
		t.Errorf("egalitarian welfare %v exceeds optimal %v", eg.Welfare(), opt.Welfare())
	}
	// Every answered query keeps positive utility.
	for qid, o := range eg.Outcomes {
		if o.Value-o.Payment <= 0 {
			t.Errorf("query %s has non-positive utility", qid)
		}
	}
}

func TestDeterministicResults(t *testing.T) {
	queries, offers := randomScenario(99, 30, 70, 15)
	for name, solver := range map[string]PointSolver{
		"optimal":     OptimalPoint(OptimalOptions{}),
		"localsearch": LocalSearchPoint(DefaultLocalSearchEpsilon),
		"baseline":    BaselinePoint(),
	} {
		a := solver(queries, offers)
		b := solver(queries, offers)
		if math.Abs(a.Welfare()-b.Welfare()) > 1e-12 || len(a.Outcomes) != len(b.Outcomes) {
			t.Errorf("%s: non-deterministic result", name)
		}
	}
}
