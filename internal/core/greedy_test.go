package core

import (
	"fmt"
	"math"
	"testing"

	"repro/internal/geo"
	"repro/internal/query"
	"repro/internal/rng"
)

func makeAggregates(grid geo.Grid, budget float64, regions ...geo.Rect) []*query.Aggregate {
	out := make([]*query.Aggregate, len(regions))
	for i, r := range regions {
		out[i] = query.NewAggregate(fmt.Sprintf("agg%d", i), r, budget, 10, grid)
	}
	return out
}

func randomAggScenario(seed int64, nSensors, nQueries int, budget float64) ([]query.Query, []Offer) {
	s := rng.New(seed, "agg-scenario")
	grid := geo.NewUnitGrid(100, 100)
	var positions []geo.Point
	for i := 0; i < nSensors; i++ {
		positions = append(positions, geo.Pt(s.Uniform(0, 100), s.Uniform(0, 100)))
	}
	offers := makeOffers(positions...)
	var regions []geo.Rect
	for i := 0; i < nQueries; i++ {
		x, y := s.Uniform(0, 70), s.Uniform(0, 70)
		regions = append(regions, geo.NewRect(x, y, x+s.Uniform(10, 30), y+s.Uniform(10, 30)))
	}
	aggs := makeAggregates(grid, budget, regions...)
	qs := make([]query.Query, len(aggs))
	for i, a := range aggs {
		qs[i] = a
	}
	return qs, offers
}

// TestTheorem1Properties verifies the four properties of Theorem 1 on
// random aggregate-query instances.
func TestTheorem1Properties(t *testing.T) {
	for seed := int64(1); seed <= 6; seed++ {
		qs, offers := randomAggScenario(seed, 25, 8, 200)
		res := GreedySelect(qs, offers)

		// Property 1 (telescoping) is implicit in the state design; verify
		// value consistency: sum of per-query values equals TotalValue.
		var sumV float64
		for _, q := range qs {
			out := res.Outcomes[q.QID()]
			sumV += out.Value
			// Re-evaluate v_q(S_q) from scratch: must match the state value.
			replay := query.Value(q, out.Sensors)
			if math.Abs(replay-out.Value) > 1e-6 {
				t.Errorf("seed %d: query %s replay %v != state %v", seed, q.QID(), replay, out.Value)
			}
		}
		if math.Abs(sumV-res.TotalValue) > 1e-6 {
			t.Errorf("seed %d: value accounting broken", seed)
		}

		// Property 2: if any sensor selected, total utility positive.
		if len(res.Selected) > 0 && res.Welfare() <= 0 {
			t.Errorf("seed %d: welfare %v not positive with %d selected", seed, res.Welfare(), len(res.Selected))
		}

		// Property 3: individual utility non-negative:
		// v_q(S_q) > sum_s pi_{q,s} for served queries.
		for _, q := range qs {
			out := res.Outcomes[q.QID()]
			if len(out.Sensors) == 0 {
				continue
			}
			if out.Value <= out.TotalPayment()-1e-9 {
				t.Errorf("seed %d: query %s value %v <= payment %v", seed, q.QID(), out.Value, out.TotalPayment())
			}
		}

		// Payments per sensor sum exactly to its cost.
		costByID := map[int]float64{}
		for _, o := range offers {
			costByID[o.Sensor.ID] = o.Cost
		}
		paid := map[int]float64{}
		for _, q := range qs {
			for id, p := range res.Outcomes[q.QID()].Payments {
				paid[id] += p
			}
		}
		for _, s := range res.Selected {
			if math.Abs(paid[s.ID]-costByID[s.ID]) > 1e-6 {
				t.Errorf("seed %d: sensor %d paid %v, cost %v", seed, s.ID, paid[s.ID], costByID[s.ID])
			}
		}
	}
}

func TestGreedyStopsWhenNoPositiveNet(t *testing.T) {
	// One sensor whose cost exceeds any possible value: nothing selected.
	grid := geo.NewUnitGrid(100, 100)
	aggs := makeAggregates(grid, 5, geo.NewRect(0, 0, 20, 20)) // budget 5 < cost 10
	offers := makeOffers(geo.Pt(10, 10))
	res := GreedySelect([]query.Query{aggs[0]}, offers)
	if len(res.Selected) != 0 {
		t.Fatal("greedy selected an unprofitable sensor")
	}
	if res.Welfare() != 0 {
		t.Errorf("welfare = %v", res.Welfare())
	}
}

func TestGreedyBeatsBaselineOnSharedRegions(t *testing.T) {
	// Overlapping regions let the greedy share sensors; sequential
	// baseline buys per query. Greedy welfare must dominate on aggregate.
	var sumG, sumB float64
	for seed := int64(20); seed < 30; seed++ {
		qs, offers := randomAggScenario(seed, 30, 10, 60)
		sumG += GreedySelect(qs, offers).Welfare()
		sumB += BaselineMultiSelect(qs, offers).Welfare()
	}
	if sumG <= sumB {
		t.Errorf("greedy total welfare %v <= baseline %v", sumG, sumB)
	}
}

func TestGreedyComplexityGuard(t *testing.T) {
	// O(|Q||S|^2) valuation calls: on a 40x10 instance this must finish
	// fast and select a bounded number of sensors.
	qs, offers := randomAggScenario(42, 40, 10, 100)
	res := GreedySelect(qs, offers)
	if len(res.Selected) > len(offers) {
		t.Error("selected more sensors than exist")
	}
}

func TestGreedyPointAdapter(t *testing.T) {
	queries, offers := randomScenario(5, 20, 40, 15)
	res := GreedyPoint()(queries, offers)
	for qid, o := range res.Outcomes {
		if o.Value <= 0 {
			t.Errorf("outcome %s has value %v", qid, o.Value)
		}
		if o.Sensor == nil {
			t.Errorf("outcome %s missing sensor", qid)
		}
	}
	// Welfare should be positive and within range of optimal.
	opt := OptimalPoint(OptimalOptions{})(queries, offers)
	if res.Welfare() > opt.Welfare()+1e-9 {
		t.Errorf("greedy point %v exceeds optimal %v", res.Welfare(), opt.Welfare())
	}
}

func TestGreedyMixedQueryTypes(t *testing.T) {
	// Aggregate + point + trajectory + multipoint in one greedy pass.
	grid := geo.NewUnitGrid(100, 100)
	agg := query.NewAggregate("agg", geo.NewRect(10, 10, 40, 40), 120, 10, grid)
	pt := query.NewPoint("pt", geo.Pt(25, 25), 30, 5)
	traj := query.NewTrajectory("traj", geo.Trajectory{Waypoints: []geo.Point{geo.Pt(10, 25), geo.Pt(40, 25)}}, 60, 10)
	mp := query.NewMultiPoint("mp", geo.Pt(30, 30), 40, 5, 2)
	offers := makeOffers(geo.Pt(25, 25), geo.Pt(30, 30), geo.Pt(15, 25), geo.Pt(35, 25), geo.Pt(70, 70))

	res := GreedySelect([]query.Query{agg, pt, traj, mp}, offers)
	if res.Welfare() <= 0 {
		t.Fatalf("mixed welfare = %v", res.Welfare())
	}
	// The far-away sensor (70,70) is irrelevant to everything: never picked.
	for _, s := range res.Selected {
		if s.Pos == geo.Pt(70, 70) {
			t.Error("irrelevant sensor selected")
		}
	}
	// Sensor sharing: at least one sensor serves multiple queries.
	counts := map[int]int{}
	for _, q := range []query.Query{agg, pt, traj, mp} {
		for _, s := range res.Outcomes[q.QID()].Sensors {
			counts[s.ID]++
		}
	}
	shared := false
	for _, c := range counts {
		if c > 1 {
			shared = true
		}
	}
	if !shared {
		t.Error("no sensor shared across queries in a heavily overlapping scenario")
	}
}

func TestBaselineMultiSelectPayments(t *testing.T) {
	qs, offers := randomAggScenario(8, 20, 6, 80)
	res := BaselineMultiSelect(qs, offers)
	// Sum of all payments equals total cost (first query pays, rest free).
	var paid float64
	for _, out := range res.Outcomes {
		//pslint:ignore floatorder tolerance-compared (1e-6) below; map-order float error is ~1 ulp
		paid += out.TotalPayment()
	}
	if math.Abs(paid-res.TotalCost) > 1e-6 {
		t.Errorf("payments %v != total cost %v", paid, res.TotalCost)
	}
}
