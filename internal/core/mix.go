package core

import (
	"math"
	"sort"
	"strconv"

	"repro/internal/query"
	"repro/internal/sensornet"
)

// RegionProbeDMax is the sensing reach of the point probes Algorithm 4
// generates for region monitoring: each probe asks for a reading at a
// planned sensor's position and accepts any sensor within this distance.
// The sharded execution layer pads region-monitoring footprints by it
// (ps.RegionMonitoringSpec), so routing and probe relevance must agree.
const RegionProbeDMax = 1.5

// MixQueries is the per-slot input of Algorithm 5: the available queries
// of each type plus the slot's sensor offers.
type MixQueries struct {
	Aggregates []*query.Aggregate
	Points     []*query.Point
	LocMon     []*query.LocationMonitoring
	RegMon     []*query.RegionMonitoring
	// Extra carries any further one-shot queries with black-box valuations
	// (trajectories, multi-sensor point queries, event-detection probes);
	// they join the joint Algorithm 1 pass.
	Extra []query.Query
}

// MixSlotResult is the outcome of one slot of Algorithm 5.
type MixSlotResult struct {
	// Multi is the joint Algorithm 1 result over all (generated) queries.
	Multi *MultiResult
	// Per-type value obtained this slot.
	PointValue  float64
	AggValue    float64
	LocMonValue float64 // increase of locmon valuations
	RegMonValue float64 // increase of regmon valuations
	ExtraValue  float64 // value of Extra queries
	// PointOutcomes projects the user point queries' results.
	PointOutcomes map[string]PointOutcome
	// Continuous projects the slot's outcome of each active continuous
	// query (location/region monitoring) under its *parent* query ID —
	// the probes Algorithm 5 generates carry derived IDs, so without
	// this projection per-query reporting cannot see continuous results.
	Continuous map[string]ContinuousOutcome
	// Contributions holds region queries' cost contributions to shared
	// sensors (payment-adjustment stage).
	Contributions map[int]float64
	// TotalCost is the cost of all selected sensors.
	TotalCost float64
}

// ContinuousOutcome is one continuous query's slot outcome.
type ContinuousOutcome struct {
	// Satisfied reports whether any probe of the query was answered.
	Satisfied bool
	// ValueDelta is the increase of the query's valuation this slot.
	ValueDelta float64
	// Payment is what the query paid this slot (probe payments plus, for
	// region monitoring, the stage-4 sharing contributions).
	Payment float64
}

// Welfare is the slot's social-welfare contribution.
func (r *MixSlotResult) Welfare() float64 {
	return r.PointValue + r.AggValue + r.LocMonValue + r.RegMonValue + r.ExtraValue - r.TotalCost
}

// RunMixSlot is Algorithm 5 (Data Acquisition for Query Mix):
//
//  1. point-query creation for continuous queries (CreatePointQuery /
//     CreatePointQueries),
//  2. joint sensor selection over Q_agg ∪ Q_p ∪ Q_p^lm ∪ Q_p^rm with
//     Algorithm 1,
//  3. applying results back into the continuous queries (Algorithms 2/3),
//  4. payment adjustment from region queries' cost contributions,
//  5. data acquisition and accounting (done by the caller committing the
//     selected sensors).
func RunMixSlot(t int, qs MixQueries, offers []Offer) *MixSlotResult {
	return RunMixSlotWith(t, qs, offers, GreedyConfig{})
}

// RunMixSlotWith is RunMixSlot with explicit control over the joint
// Algorithm 1 pass's candidate-evaluation strategy (see GreedyConfig);
// the mix result is bit-identical across strategies, only
// Multi.Stats differs.
func RunMixSlotWith(t int, qs MixQueries, offers []Offer, cfg GreedyConfig) *MixSlotResult {
	res := &MixSlotResult{
		PointOutcomes: make(map[string]PointOutcome),
		Continuous:    make(map[string]ContinuousOutcome),
		Contributions: make(map[int]float64),
	}

	// Stage 1a: location monitoring point queries.
	lmOwners := make(map[string]*query.LocationMonitoring)
	lmBefore := make(map[string]float64)
	var generated []query.Query
	for _, q := range qs.LocMon {
		if !q.Active(t) {
			continue
		}
		lmBefore[q.ID] = q.Value()
		if p, ok := q.CreatePointQuery(t); ok {
			generated = append(generated, p)
			lmOwners[p.QID()] = q
		}
	}

	// Stage 1b: region monitoring point queries (Algorithm 4 planning with
	// Eq. 18 cost weighting).
	shareCount := make(map[int]int)
	var activeRM []*query.RegionMonitoring
	for _, q := range qs.RegMon {
		if q.Active(t) {
			q.ResetIfNeeded(t)
			activeRM = append(activeRM, q)
		}
	}
	for _, o := range offers {
		for _, q := range activeRM {
			if q.Region.Contains(o.Sensor.Pos) {
				shareCount[o.Sensor.ID]++
			}
		}
	}
	rmBefore := make(map[string]float64)
	rmPlans := make([]*regPlan, 0, len(activeRM))
	var postAppended, postRebuilt int64
	for _, q := range activeRM {
		rmBefore[q.ID] = q.Value()
		var inRegion []Offer
		var costs []float64
		for _, o := range offers {
			if !q.Region.Contains(o.Sensor.Pos) {
				continue
			}
			inRegion = append(inRegion, o)
			costs = append(costs, o.Cost*WeightEq18(shareCount[o.Sensor.ID]))
		}
		planned, appended, rebuilt := selectSamplingPoints(q, inRegion, costs, q.RemainingBudget(), t, 0)
		postAppended += appended
		postRebuilt += rebuilt
		if len(planned) == 0 {
			continue
		}
		plan := &regPlan{q: q}
		pset := make([]*sensornet.Sensor, len(planned))
		thetas := make([]float64, len(planned))
		for i, pi := range planned {
			pset[i] = inRegion[pi].Sensor
			thetas[i] = q.Theta(pset[i])
		}
		vFull := q.PlanValue(sensorPositions(pset), thetas)
		for i, pi := range planned {
			rest := make([]*sensornet.Sensor, 0, len(pset)-1)
			restThetas := make([]float64, 0, len(pset)-1)
			for j := range pset {
				if j != i {
					rest = append(rest, pset[j])
					restThetas = append(restThetas, thetas[j])
				}
			}
			marginal := vFull - q.PlanValue(sensorPositions(rest), restThetas)
			if marginal <= 0 {
				continue
			}
			p := query.NewPoint(query.PointID(q.ID, t, "s"+strconv.Itoa(pset[i].ID)), pset[i].Pos, marginal, RegionProbeDMax)
			p.ThetaMin = 0.01
			generated = append(generated, p)
			plan.pointIDs = append(plan.pointIDs, p.QID())
			plan.expectedCost += costs[pi]
		}
		rmPlans = append(rmPlans, plan)
	}

	// Stage 2: joint sensor selection with Algorithm 1.
	all := make([]query.Query, 0, len(qs.Aggregates)+len(qs.Points)+len(qs.Extra)+len(generated))
	for _, q := range qs.Aggregates {
		all = append(all, q)
	}
	for _, q := range qs.Points {
		all = append(all, q)
	}
	all = append(all, qs.Extra...)
	all = append(all, generated...)
	multi := GreedySelectWith(all, offers, cfg)
	multi.Stats.PosteriorAppends += postAppended
	multi.Stats.PosteriorRebuilds += postRebuilt
	res.Multi = multi
	res.TotalCost = multi.TotalCost

	// Per-type accounting for user queries.
	for _, q := range qs.Aggregates {
		res.AggValue += multi.Outcomes[q.QID()].Value
	}
	for _, q := range qs.Extra {
		res.ExtraValue += multi.Outcomes[q.QID()].Value
	}
	for _, q := range qs.Points {
		out := multi.Outcomes[q.QID()]
		res.PointValue += out.Value
		if out.Value > 0 {
			if po, ok := projectPointOutcome(q, out); ok {
				res.PointOutcomes[q.QID()] = po
			}
		}
	}

	// Stage 3a: apply location monitoring results (Algorithm 2).
	for pid, q := range lmOwners {
		out := multi.Outcomes[pid]
		co := res.Continuous[q.ID]
		if out != nil && out.Value > 0 {
			theta := bestThetaFor(pid, out, lmOwners)
			paid := out.TotalPayment()
			q.ApplyResults(t, true, paid, theta)
			co.Satisfied = true
			co.Payment += paid
		} else {
			q.ApplyResults(t, false, 0, 0)
		}
		res.Continuous[q.ID] = co
	}

	// Stage 3b: apply region monitoring results (Algorithm 3), including
	// the sharing contributions that feed stage 4.
	recorded := make(map[*query.RegionMonitoring]map[int]bool)
	spentActual := make(map[*regPlan]float64)
	for _, plan := range rmPlans {
		recorded[plan.q] = make(map[int]bool)
		for _, pid := range plan.pointIDs {
			out := multi.Outcomes[pid]
			if out == nil || out.Value <= 0 || len(out.Sensors) == 0 {
				continue
			}
			s := out.Sensors[0]
			paid := out.TotalPayment()
			plan.q.Record(s.Pos, plan.q.Theta(s), paid)
			recorded[plan.q][s.ID] = true
			spentActual[plan] += paid
		}
		co := res.Continuous[plan.q.ID]
		co.Satisfied = co.Satisfied || spentActual[plan] > 0
		co.Payment += spentActual[plan]
		res.Continuous[plan.q.ID] = co
	}
	for _, plan := range rmPlans {
		q := plan.q
		budget := q.Alpha * (plan.expectedCost - spentActual[plan])
		if budget <= 0 {
			continue
		}
		type cand struct {
			s  *sensornet.Sensor
			dv float64
		}
		var cands []cand
		for _, s := range multi.Selected {
			if !q.Region.Contains(s.Pos) || recorded[q][s.ID] {
				continue
			}
			if dv := marginalRegionValue(q, s); dv > 0 {
				cands = append(cands, cand{s: s, dv: dv})
			}
		}
		sort.Slice(cands, func(i, j int) bool {
			if cands[i].dv != cands[j].dv {
				return cands[i].dv > cands[j].dv
			}
			return cands[i].s.ID < cands[j].s.ID
		})
		for _, c := range cands {
			if budget <= 0 {
				break
			}
			pay := math.Min(c.dv, budget)
			q.Record(c.s.Pos, q.Theta(c.s), pay)
			recorded[q][c.s.ID] = true
			res.Contributions[c.s.ID] += pay
			budget -= pay
			co := res.Continuous[q.ID]
			co.Satisfied = true
			co.Payment += pay
			res.Continuous[q.ID] = co
		}
	}

	// Value deltas of continuous queries.
	for _, q := range qs.LocMon {
		if before, ok := lmBefore[q.ID]; ok {
			delta := q.Value() - before
			res.LocMonValue += delta
			co := res.Continuous[q.ID]
			co.ValueDelta = delta
			res.Continuous[q.ID] = co
		}
	}
	for _, q := range activeRM {
		delta := q.Value() - rmBefore[q.ID]
		res.RegMonValue += delta
		co := res.Continuous[q.ID]
		co.ValueDelta = delta
		res.Continuous[q.ID] = co
	}
	return res
}

// RunMixSlotBaseline is the §4.7 baseline: aggregate queries are executed
// first with the sequential baseline, the selected sensors' costs drop to
// zero, then the continuous queries' (desired-time-only) point queries and
// the user point queries run through the baseline point algorithm.
func RunMixSlotBaseline(t int, qs MixQueries, offers []Offer) *MixSlotResult {
	res := &MixSlotResult{
		PointOutcomes: make(map[string]PointOutcome),
		Continuous:    make(map[string]ContinuousOutcome),
		Contributions: make(map[int]float64),
	}

	multiQs := make([]query.Query, 0, len(qs.Aggregates)+len(qs.Extra))
	for _, q := range qs.Aggregates {
		multiQs = append(multiQs, q)
	}
	multiQs = append(multiQs, qs.Extra...)
	agg := BaselineMultiSelect(multiQs, offers)
	for _, q := range qs.Aggregates {
		res.AggValue += agg.Outcomes[q.QID()].Value
	}
	for _, q := range qs.Extra {
		res.ExtraValue += agg.Outcomes[q.QID()].Value
	}
	res.TotalCost = agg.TotalCost
	pre := make(map[int]bool)
	for _, s := range agg.Selected {
		pre[s.ID] = true
	}

	// Point queries for continuous queries: desired sampling times only.
	pts := append([]*query.Point(nil), qs.Points...)
	lmOwners := make(map[string]*query.LocationMonitoring)
	lmBefore := make(map[string]float64)
	for _, q := range qs.LocMon {
		if !q.Active(t) {
			continue
		}
		lmBefore[q.ID] = q.Value()
		if p, ok := q.CreatePointQueryBaseline(t); ok {
			pts = append(pts, p)
			lmOwners[p.QID()] = q
		}
	}

	ptRes := baselinePointSolve(pts, offers, pre)
	res.TotalCost += ptRes.TotalCost
	for _, q := range qs.Points {
		if o, ok := ptRes.Outcomes[q.QID()]; ok {
			res.PointValue += o.Value
			res.PointOutcomes[q.QID()] = o
		}
	}
	for pid, q := range lmOwners {
		co := res.Continuous[q.ID]
		if o, ok := ptRes.Outcomes[pid]; ok {
			q.ApplyResults(t, true, o.Payment, o.Theta)
			co.Satisfied = true
			co.Payment += o.Payment
		} else {
			q.ApplyResults(t, false, 0, 0)
		}
		res.Continuous[q.ID] = co
	}
	for _, q := range qs.LocMon {
		if before, ok := lmBefore[q.ID]; ok {
			delta := q.Value() - before
			res.LocMonValue += delta
			co := res.Continuous[q.ID]
			co.ValueDelta = delta
			res.Continuous[q.ID] = co
		}
	}
	// Merge selected sensors for the caller's Commit.
	res.Multi = &MultiResult{
		Selected:   append(append([]*sensornet.Sensor(nil), agg.Selected...), ptRes.Selected...),
		TotalCost:  res.TotalCost,
		TotalValue: res.AggValue + res.ExtraValue + res.PointValue,
		Outcomes:   agg.Outcomes,
		States:     agg.States,
	}
	return res
}

// projectPointOutcome converts a MultiOutcome of a point query into the
// PointOutcome shape.
func projectPointOutcome(q *query.Point, out *MultiOutcome) (PointOutcome, bool) {
	var best *sensornet.Sensor
	bestV := 0.0
	for _, s := range out.Sensors {
		if v := q.ValueSingle(s); v > bestV {
			bestV, best = v, s
		}
	}
	if best == nil {
		return PointOutcome{}, false
	}
	return PointOutcome{Sensor: best, Payment: out.TotalPayment(), Value: out.Value, Theta: q.Theta(best)}, true
}

// bestThetaFor extracts the quality delivered to a generated locmon point
// query.
func bestThetaFor(pid string, out *MultiOutcome, owners map[string]*query.LocationMonitoring) float64 {
	q := owners[pid]
	var best float64
	for _, s := range out.Sensors {
		if th := s.Quality(q.Loc, q.DMax); th > best {
			best = th
		}
	}
	return best
}
