package core

import (
	"fmt"
	"testing"

	"repro/internal/geo"
	"repro/internal/query"
	"repro/internal/rng"
	"repro/internal/sensornet"
)

// randomMixedScenario builds a deterministic instance mixing all four
// one-shot query types that flow through Algorithm 1.
func randomMixedScenario(seed int64, nSensors int) ([]query.Query, []Offer) {
	s := rng.New(seed, "strategy-mix")
	grid := geo.NewUnitGrid(100, 100)
	var positions []geo.Point
	for i := 0; i < nSensors; i++ {
		positions = append(positions, geo.Pt(s.Uniform(0, 100), s.Uniform(0, 100)))
	}
	offers := makeOffers(positions...)
	var qs []query.Query
	for i := 0; i < 6; i++ {
		x, y := s.Uniform(0, 70), s.Uniform(0, 70)
		qs = append(qs, query.NewAggregate(fmt.Sprintf("agg%d", i),
			geo.NewRect(x, y, x+s.Uniform(10, 30), y+s.Uniform(10, 30)), s.Uniform(60, 250), 10, grid))
	}
	for i := 0; i < 25; i++ {
		qs = append(qs, query.NewPoint(fmt.Sprintf("pt%d", i),
			geo.Pt(s.Uniform(0, 100), s.Uniform(0, 100)), s.Uniform(8, 30), 6))
	}
	for i := 0; i < 4; i++ {
		qs = append(qs, query.NewMultiPoint(fmt.Sprintf("mp%d", i),
			geo.Pt(s.Uniform(0, 100), s.Uniform(0, 100)), s.Uniform(30, 60), 6, 2+s.Intn(3)))
	}
	for i := 0; i < 3; i++ {
		x, y := s.Uniform(0, 80), s.Uniform(0, 80)
		qs = append(qs, query.NewTrajectory(fmt.Sprintf("tr%d", i),
			geo.Trajectory{Waypoints: []geo.Point{geo.Pt(x, y), geo.Pt(x+s.Uniform(5, 20), y+s.Uniform(5, 20))}},
			s.Uniform(40, 90), 8))
	}
	return qs, offers
}

// assertSameMultiResult requires got to be bit-identical to want
// (DiffMultiResults is the canonical comparison).
func assertSameMultiResult(t *testing.T, label string, want, got *MultiResult) {
	t.Helper()
	if diff := DiffMultiResults(want, got); diff != "" {
		t.Fatalf("%s: %s", label, diff)
	}
}

// TestGreedyStrategiesBitIdentical verifies that every candidate-
// evaluation strategy — serial, sharded, lazy, lazy-sharded — produces
// the exact same MultiResult on randomized mixed query workloads.
func TestGreedyStrategiesBitIdentical(t *testing.T) {
	for seed := int64(1); seed <= 8; seed++ {
		qs, offers := randomMixedScenario(seed, 400)
		serial := GreedySelectWith(qs, offers, GreedyConfig{Strategy: StrategySerial})
		variants := []GreedyConfig{
			{Strategy: StrategySharded, Workers: 4, ParallelThreshold: 1},
			{Strategy: StrategyLazy},
			{Strategy: StrategyLazySharded, Workers: 4, ParallelThreshold: 1},
		}
		for _, cfg := range variants {
			got := GreedySelectWith(qs, offers, cfg)
			assertSameMultiResult(t, fmt.Sprintf("seed %d strategy %s", seed, cfg.Strategy), serial, got)
			if got.Stats.ValuationCalls > serial.Stats.SerialEquivCalls {
				t.Errorf("seed %d strategy %s: %d valuation calls exceed the exhaustive scan's %d",
					seed, cfg.Strategy, got.Stats.ValuationCalls, serial.Stats.SerialEquivCalls)
			}
		}
	}
}

// TestExhaustiveCallAccounting: for the exhaustive strategies the
// SerialEquivCalls model must match the calls actually made — it is the
// baseline the lazy strategy's SavedCalls is measured against.
func TestExhaustiveCallAccounting(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		qs, offers := randomMixedScenario(seed, 300)
		for _, cfg := range []GreedyConfig{
			{Strategy: StrategySerial},
			{Strategy: StrategySharded, Workers: 3, ParallelThreshold: 1},
		} {
			res := GreedySelectWith(qs, offers, cfg)
			if res.Stats.ValuationCalls != res.Stats.SerialEquivCalls {
				t.Errorf("seed %d strategy %s: made %d calls, accounting model says %d",
					seed, cfg.Strategy, res.Stats.ValuationCalls, res.Stats.SerialEquivCalls)
			}
		}
	}
}

// redundancyScenario builds a k-redundancy workload (§2.2.1 multiple-
// sensor point queries): every query commits many sensors, so each
// (sensor, query) pair goes stale many times — the regime where CELF's
// pruning pays off most.
func redundancyScenario(seed int64, nSensors, nQueries, k int) ([]query.Query, []Offer) {
	s := rng.New(seed, "redundancy")
	var positions []geo.Point
	for i := 0; i < nSensors; i++ {
		positions = append(positions, geo.Pt(s.Uniform(0, 80), s.Uniform(0, 80)))
	}
	offers := makeOffers(positions...)
	var qs []query.Query
	for i := 0; i < nQueries; i++ {
		qs = append(qs, query.NewMultiPoint(fmt.Sprintf("mp%d", i),
			geo.Pt(s.Uniform(0, 80), s.Uniform(0, 80)), s.Uniform(100, 300), 5, k))
	}
	return qs, offers
}

// TestLazySavesCallsOnRedundancyWorkloads: on a k-redundancy workload
// (purely submodular valuations) the lazy strategy must prune a large
// share of the exhaustive scan's valuation calls, never trip the
// fallback, and stay bit-identical.
func TestLazySavesCallsOnRedundancyWorkloads(t *testing.T) {
	qs, offers := redundancyScenario(3, 2000, 150, 10)
	serial := GreedySelectWith(qs, offers, GreedyConfig{Strategy: StrategySerial})
	lazy := GreedySelectWith(qs, offers, GreedyConfig{Strategy: StrategyLazy})
	assertSameMultiResult(t, "lazy", serial, lazy)
	if lazy.Stats.SubmodularityViolations != 0 || lazy.Stats.FallbackRescans != 0 {
		t.Errorf("multipoint valuations are submodular but lazy saw %d violations, %d rescans",
			lazy.Stats.SubmodularityViolations, lazy.Stats.FallbackRescans)
	}
	if lazy.Stats.ValuationCalls*2 > serial.Stats.ValuationCalls {
		t.Errorf("lazy made %d calls, want < half of the exhaustive %d",
			lazy.Stats.ValuationCalls, serial.Stats.ValuationCalls)
	}
	if saved := lazy.Stats.SavedCalls(); saved == 0 {
		t.Error("SavedCalls reported no pruning")
	}
}

// --- non-submodular fallback ----------------------------------------------

// comboQuery is a deliberately non-submodular valuation: sensors a and b
// complement each other, so b's marginal gain *grows* after a commits.
// When `lie` is set it falsely advertises query.Submodular — the exact
// situation that invalidates CELF's cached upper bounds and must trigger
// the lazy strategy's violation detector and exhaustive-rescan fallback.
// Unmarked, it exercises the volatile eager-maintenance path instead.
type comboQuery struct {
	id         string
	a, b       int // complementary sensor IDs
	solo, both float64
	lie        bool
}

func (c *comboQuery) SubmodularValuation() bool { return c.lie }

func (c *comboQuery) QID() string     { return c.id }
func (c *comboQuery) Budget() float64 { return c.both }
func (c *comboQuery) Relevant(s *sensornet.Sensor) bool {
	return s.ID == c.a || s.ID == c.b
}
func (c *comboQuery) NewState() query.State { return &comboState{q: c} }

type comboState struct {
	q          *comboQuery
	hasA, hasB bool
	sensors    []*sensornet.Sensor
}

func (st *comboState) Query() query.Query { return st.q }
func (st *comboState) valueOf(hasA, hasB bool) float64 {
	switch {
	case hasA && hasB:
		return st.q.both
	case hasA || hasB:
		return st.q.solo
	default:
		return 0
	}
}
func (st *comboState) Value() float64 { return st.valueOf(st.hasA, st.hasB) }
func (st *comboState) Gain(s *sensornet.Sensor) float64 {
	return st.valueOf(st.hasA || s.ID == st.q.a, st.hasB || s.ID == st.q.b) - st.Value()
}
func (st *comboState) Add(s *sensornet.Sensor) {
	st.hasA = st.hasA || s.ID == st.q.a
	st.hasB = st.hasB || s.ID == st.q.b
	st.sensors = append(st.sensors, s)
}
func (st *comboState) Sensors() []*sensornet.Sensor { return st.sensors }

// comboFixture builds the complementary-valuation instance.
func comboFixture(lie bool) ([]query.Query, []Offer) {
	s0 := sensornet.NewSensor(0, geo.Pt(0, 0))
	s1 := sensornet.NewSensor(1, geo.Pt(1, 0))
	s2 := sensornet.NewSensor(2, geo.Pt(2, 0))
	offers := []Offer{
		{Sensor: s0, Cost: 1},
		{Sensor: s1, Cost: 1},
		{Sensor: s2, Cost: 1},
	}
	return []query.Query{&comboQuery{id: "combo", a: 0, b: 1, solo: 2, both: 40, lie: lie}}, offers
}

// TestLazyFallbackOnLyingSubmodularMarker: a valuation that falsely
// claims submodularity must trip the violation detector, re-scan
// exhaustively, and still return the serial result bit-identically.
func TestLazyFallbackOnLyingSubmodularMarker(t *testing.T) {
	qs, offers := comboFixture(true)
	serial := GreedySelectWith(qs, offers, GreedyConfig{Strategy: StrategySerial})
	lazy := GreedySelectWith(qs, offers, GreedyConfig{Strategy: StrategyLazy})

	assertSameMultiResult(t, "lazy fallback", serial, lazy)
	if len(lazy.Selected) != 2 {
		t.Fatalf("expected both complementary sensors selected, got %d", len(lazy.Selected))
	}
	if lazy.Stats.SubmodularityViolations == 0 {
		t.Error("no submodularity violation recorded on a complementary valuation")
	}
	if lazy.Stats.FallbackRescans == 0 {
		t.Error("violation did not trigger the exhaustive-rescan fallback")
	}
	// The serial baseline sees the same gain increases but needs no
	// fallback: it re-scans everything every round anyway.
	if serial.Stats.FallbackRescans != 0 {
		t.Errorf("serial strategy recorded %d fallback rescans", serial.Stats.FallbackRescans)
	}
}

// TestLazyVolatileMaintenanceOnUnmarkedValuation: the same complementary
// valuation *without* the marker takes the eager-maintenance path — no
// violations, no fallback, still bit-identical.
func TestLazyVolatileMaintenanceOnUnmarkedValuation(t *testing.T) {
	qs, offers := comboFixture(false)
	serial := GreedySelectWith(qs, offers, GreedyConfig{Strategy: StrategySerial})
	lazy := GreedySelectWith(qs, offers, GreedyConfig{Strategy: StrategyLazy})

	assertSameMultiResult(t, "lazy volatile", serial, lazy)
	if len(lazy.Selected) != 2 {
		t.Fatalf("expected both complementary sensors selected, got %d", len(lazy.Selected))
	}
	if lazy.Stats.SubmodularityViolations != 0 || lazy.Stats.FallbackRescans != 0 {
		t.Errorf("eager maintenance should avoid violations/fallbacks, got %d/%d",
			lazy.Stats.SubmodularityViolations, lazy.Stats.FallbackRescans)
	}
}

// TestLazyMatchesSerialOnAggregates mirrors TestGreedyParallelMatchesSerial
// for the lazy strategies on the aggregate-heavy scenario: aggregate
// valuations (Eq. 5's coverage x mean-quality product) are not strictly
// submodular, so this exercises the fallback path on realistic inputs.
func TestLazyMatchesSerialOnAggregates(t *testing.T) {
	for seed := int64(1); seed <= 4; seed++ {
		qs, offers := randomAggScenario(seed, 800, 30, 400)
		serial := GreedySelectWith(qs, offers, GreedyConfig{Workers: 1})
		for _, strat := range []Strategy{StrategyLazy, StrategyLazySharded} {
			got := GreedySelectWith(qs, offers, GreedyConfig{Strategy: strat, ParallelThreshold: 1})
			assertSameMultiResult(t, fmt.Sprintf("seed %d %s", seed, strat), serial, got)
		}
	}
}
