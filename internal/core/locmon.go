package core

import (
	"repro/internal/query"
)

// LocMonSlotResult is the outcome of one time slot of location-monitoring
// data acquisition.
type LocMonSlotResult struct {
	// Point is the underlying point-query scheduling result.
	Point *PointResult
	// ValueGained sums, over the monitoring queries, the increase of
	// v_q(T', Theta) realized this slot; welfare per slot is
	// ValueGained - Point.TotalCost.
	ValueGained float64
	// Issued counts the point queries generated this slot.
	Issued int
}

// Welfare returns the slot's contribution to social welfare.
func (r *LocMonSlotResult) Welfare() float64 { return r.ValueGained - r.Point.TotalCost }

// RunLocationMonitoringSlot is Algorithm 2: at slot t, every active
// location monitoring query materializes (at most) one point query via
// CreatePointQuery; the batch is scheduled with the supplied point solver
// (Optimal or Local Search in the evaluation); ApplyResults feeds
// payments and reading qualities back into each query's state.
func RunLocationMonitoringSlot(t int, queries []*query.LocationMonitoring, offers []Offer, solve PointSolver) *LocMonSlotResult {
	return runLocMonSlot(t, queries, offers, solve, false)
}

// RunLocationMonitoringSlotBaseline is the §4.5 baseline: point queries
// are generated only at the desired sampling times and scheduled with the
// baseline point algorithm.
func RunLocationMonitoringSlotBaseline(t int, queries []*query.LocationMonitoring, offers []Offer) *LocMonSlotResult {
	return runLocMonSlot(t, queries, offers, BaselinePoint(), true)
}

func runLocMonSlot(t int, queries []*query.LocationMonitoring, offers []Offer, solve PointSolver, baseline bool) *LocMonSlotResult {
	var pts []*query.Point
	owners := make(map[string]*query.LocationMonitoring)
	valueBefore := make(map[string]float64)
	for _, q := range queries {
		if !q.Active(t) {
			continue
		}
		valueBefore[q.ID] = q.Value()
		var (
			p  *query.Point
			ok bool
		)
		if baseline {
			p, ok = q.CreatePointQueryBaseline(t)
		} else {
			p, ok = q.CreatePointQuery(t)
		}
		if !ok {
			continue
		}
		pts = append(pts, p)
		owners[p.QID()] = q
	}

	res := solve(pts, offers)

	out := &LocMonSlotResult{Point: res, Issued: len(pts)}
	for _, p := range pts {
		q := owners[p.QID()]
		if o, ok := res.Outcomes[p.QID()]; ok {
			q.ApplyResults(t, true, o.Payment, o.Theta)
		} else {
			q.ApplyResults(t, false, 0, 0)
		}
	}
	for _, q := range queries {
		if !q.Active(t) {
			continue
		}
		out.ValueGained += q.Value() - valueBefore[q.ID]
	}
	return out
}
