package core

import (
	"fmt"
	"maps"
	"math"
	"slices"
	"sort"
)

// Ledger implements the accounting stage of Algorithm 5 ("charge the users
// whose queries have been satisfied and pay the cost of selected
// sensors"): it accumulates, across time slots, what each query paid, what
// each sensor earned, and the welfare created, and it enforces budget
// balance — every unit a sensor earns was paid by some query (possibly as
// a region query's cost contribution).
//
// The zero value is ready to use.
type Ledger struct {
	queryPaid    map[string]float64
	queryValue   map[string]float64
	sensorEarned map[int]float64
	totalCost    float64
	totalValue   float64
	slots        int
}

func (l *Ledger) init() {
	if l.queryPaid == nil {
		l.queryPaid = make(map[string]float64)
		l.queryValue = make(map[string]float64)
		l.sensorEarned = make(map[int]float64)
	}
}

// RecordPointResult books one slot of point scheduling.
func (l *Ledger) RecordPointResult(res *PointResult) {
	l.init()
	l.slots++
	for qid, o := range res.Outcomes {
		l.queryPaid[qid] += o.Payment
		l.queryValue[qid] += o.Value
	}
	for _, s := range res.Selected {
		// Each selected sensor earns its announced cost; Eq. 11 guarantees
		// the queries' payments cover exactly that.
		l.sensorEarned[s.ID] += paymentsTo(res, s.ID)
	}
	l.totalCost += res.TotalCost
	l.totalValue += res.TotalValue
}

func paymentsTo(res *PointResult, sensorID int) float64 {
	// Sorted query order: the sum is a float accumulation, so iteration
	// must be reproducible for earnings to be bit-identical across runs
	// and strategies (floatorder).
	var sum float64
	for _, qid := range slices.Sorted(maps.Keys(res.Outcomes)) {
		if o := res.Outcomes[qid]; o.Sensor != nil && o.Sensor.ID == sensorID {
			sum += o.Payment
		}
	}
	return sum
}

// RecordMixResult books one slot of the query-mix pipeline. Contributions
// are region queries' payments toward shared sensors (stage 4 of
// Algorithm 5); they count as query spending on the owing side and sensor
// earnings on the receiving side.
func (l *Ledger) RecordMixResult(res *MixSlotResult) {
	l.RecordMixResults(res)
}

// RecordMixResults books one slot executed as several partial mix results
// — the sharded execution layer's per-shard passes plus its spanning pass.
// The slot counter advances once; queries and sensors are disjoint across
// partials of one slot, so the per-key accounting is unchanged.
func (l *Ledger) RecordMixResults(results ...*MixSlotResult) {
	l.init()
	l.slots++
	for _, res := range results {
		l.recordMixPartial(res)
	}
}

func (l *Ledger) recordMixPartial(res *MixSlotResult) {
	for qid, out := range res.Multi.Outcomes {
		l.queryPaid[qid] += out.TotalPayment()
		l.queryValue[qid] += out.Value
	}
	for id, p := range res.Contributions {
		l.sensorEarned[id] += p
	}
	// Sorted query order: one sensor can appear in several outcomes'
	// payment maps, so its earnings sum must accumulate in a
	// reproducible order (floatorder).
	for _, qid := range slices.Sorted(maps.Keys(res.Multi.Outcomes)) {
		for id, p := range res.Multi.Outcomes[qid].Payments {
			l.sensorEarned[id] += p
		}
	}
	l.totalCost += res.TotalCost
	l.totalValue += res.PointValue + res.AggValue + res.LocMonValue + res.RegMonValue + res.ExtraValue
}

// Slots returns the number of recorded slots.
func (l *Ledger) Slots() int { return l.slots }

// QueryPaid returns a query's cumulative payments.
func (l *Ledger) QueryPaid(id string) float64 { return l.queryPaid[id] }

// QueryValue returns a query's cumulative obtained valuation.
func (l *Ledger) QueryValue(id string) float64 { return l.queryValue[id] }

// QueryUtility returns value minus payments for a query.
func (l *Ledger) QueryUtility(id string) float64 { return l.queryValue[id] - l.queryPaid[id] }

// SensorEarned returns a sensor's cumulative earnings.
func (l *Ledger) SensorEarned(id int) float64 { return l.sensorEarned[id] }

// TotalWelfare returns cumulative value minus cumulative sensor cost.
func (l *Ledger) TotalWelfare() float64 { return l.totalValue - l.totalCost }

// TotalPaid sums all query payments, in sorted query order so the float
// total is reproducible (floatorder).
func (l *Ledger) TotalPaid() float64 {
	var sum float64
	for _, qid := range slices.Sorted(maps.Keys(l.queryPaid)) {
		sum += l.queryPaid[qid]
	}
	return sum
}

// TotalEarned sums all sensor earnings, in sorted sensor order so the
// float total is reproducible (floatorder).
func (l *Ledger) TotalEarned() float64 {
	var sum float64
	for _, id := range slices.Sorted(maps.Keys(l.sensorEarned)) {
		sum += l.sensorEarned[id]
	}
	return sum
}

// CheckBalance verifies conservation: queries' total payments must equal
// sensors' total earnings within tolerance. (Sensor earnings can exceed
// announced costs only through region queries' voluntary contributions,
// which are themselves query payments.)
func (l *Ledger) CheckBalance(tol float64) error {
	paid := l.TotalPaid()
	// Contributions are booked on the sensor side when recorded from mix
	// results; they are query spending too, so compare against earnings.
	earned := l.TotalEarned()
	if diff := math.Abs(paid + l.contributionTotal() - earned); diff > tol {
		return fmt.Errorf("core: ledger imbalance: paid %.6f (+contrib %.6f) vs earned %.6f",
			paid, l.contributionTotal(), earned)
	}
	return nil
}

// contributionTotal reconstructs contribution volume as earnings not
// attributable to direct query payments.
func (l *Ledger) contributionTotal() float64 {
	return l.TotalEarned() - l.TotalPaid()
}

// TopEarners returns the n sensors with the largest cumulative earnings,
// useful for analyzing participation incentives (the sustainability story
// of §1).
func (l *Ledger) TopEarners(n int) []SensorEarnings {
	out := make([]SensorEarnings, 0, len(l.sensorEarned))
	for id, e := range l.sensorEarned {
		out = append(out, SensorEarnings{SensorID: id, Earned: e})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Earned != out[j].Earned {
			return out[i].Earned > out[j].Earned
		}
		return out[i].SensorID < out[j].SensorID
	})
	if n < len(out) {
		out = out[:n]
	}
	return out
}

// SensorEarnings pairs a sensor with its cumulative earnings.
type SensorEarnings struct {
	SensorID int
	Earned   float64
}

// GiniOfEarnings computes the Gini coefficient of sensor earnings over the
// sensors that earned anything — a compactness measure of how evenly the
// platform's payments spread across participants (0 = perfectly even).
func (l *Ledger) GiniOfEarnings() float64 {
	var xs []float64
	for _, e := range l.sensorEarned {
		if e > 0 {
			xs = append(xs, e)
		}
	}
	n := len(xs)
	if n < 2 {
		return 0
	}
	sort.Float64s(xs)
	var cum, total float64
	for i, x := range xs {
		cum += float64(i+1) * x
		total += x
	}
	if total == 0 {
		return 0
	}
	return (2*cum)/(float64(n)*total) - float64(n+1)/float64(n)
}
