package core

import (
	"repro/internal/query"
)

// EgalitarianPoint is the alternative objective sketched in §2:
// "an egalitarian approach could be followed, where the number of users
// with positive utility is maximized". This scheduler greedily picks the
// sensor answering the most not-yet-answered queries per unit cost, as
// long as the value it yields covers its cost so that proportionate cost
// sharing (Eq. 11) keeps every answered user's utility positive.
//
// It is not part of the paper's evaluation; the ablation bench compares it
// against the welfare-maximizing schedulers (satisfaction up, welfare
// down).
func EgalitarianPoint() PointSolver {
	return func(queries []*query.Point, offers []Offer) *PointResult {
		res := &PointResult{Outcomes: make(map[string]PointOutcome), Exact: true}
		groups := groupByLocation(queries)

		answered := make([]bool, len(groups))
		taken := make(map[int]bool, len(offers))
		assigned := make(map[int][]*locationGroup)

		for {
			bestI := -1
			var bestScore float64
			var bestCount int
			for i, o := range offers {
				if taken[o.Sensor.ID] {
					continue
				}
				count := 0
				var value float64
				for l := range groups {
					if answered[l] {
						continue
					}
					if v := groups[l].groupValue(o.Sensor); v > 0 {
						count += len(groups[l].queries)
						value += v
					}
				}
				// Only sensors whose value covers their cost keep all
				// users' utilities positive under Eq. 11.
				if count == 0 || value < o.Cost {
					continue
				}
				score := float64(count) / o.Cost
				if score > bestScore {
					bestScore, bestI, bestCount = score, i, count
				}
			}
			if bestI == -1 || bestCount == 0 {
				break
			}
			o := offers[bestI]
			taken[o.Sensor.ID] = true
			for l := range groups {
				if answered[l] {
					continue
				}
				if groups[l].groupValue(o.Sensor) > 0 {
					answered[l] = true
					assigned[bestI] = append(assigned[bestI], &groups[l])
				}
			}
		}

		for i, o := range offers {
			gs := assigned[i]
			if len(gs) == 0 {
				continue
			}
			value := settlePayments(o.Sensor, o.Cost, gs, res.Outcomes)
			res.Selected = append(res.Selected, o.Sensor)
			res.TotalCost += o.Cost
			res.TotalValue += value
		}
		return res
	}
}
