package core

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/geo"
	"repro/internal/query"
	"repro/internal/rng"
	"repro/internal/sensornet"
)

// TestUtilityEq12Submodular verifies the claim of §3.1.2 that
// u(S') = sum_l max_{s in S'} v_l(s) - sum costs is submodular: for random
// instances and random A ⊆ B and x ∉ B,
// u(A ∪ {x}) - u(A) >= u(B ∪ {x}) - u(B).
func TestUtilityEq12Submodular(t *testing.T) {
	f := func(seed uint32, mask uint16, pick uint8) bool {
		queries, offers := randomScenario(int64(seed%1000), 12, 20, 15)
		inst := newLSInstance(queries, offers)
		n := len(offers)
		x := int(pick) % n
		inB := make([]bool, n)
		inA := make([]bool, n)
		for i := 0; i < n; i++ {
			if i == x {
				continue
			}
			if mask&(1<<(uint(i)%16)) != 0 {
				inB[i] = true
				// A is a sub-sample of B.
				if i%2 == 0 {
					inA[i] = true
				}
			}
		}
		uA := inst.utility(inA)
		uB := inst.utility(inB)
		inA[x] = true
		inB[x] = true
		gainA := inst.utility(inA) - uA
		gainB := inst.utility(inB) - uB
		return gainA >= gainB-1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}

// TestSolversNeverExceedOptimal: on instances small enough for brute
// force, no solver may beat the exhaustive optimum, and OptimalPoint must
// match it exactly.
func TestSolversNeverExceedOptimal(t *testing.T) {
	f := func(seed uint16) bool {
		queries, offers := randomScenario(int64(seed), 7, 10, 14)
		groups := groupByLocation(queries)
		best := 0.0
		for mask := 0; mask < 1<<len(offers); mask++ {
			var obj float64
			for l := range groups {
				bv := 0.0
				for i, o := range offers {
					if mask&(1<<i) != 0 {
						if v := groups[l].groupValue(o.Sensor); v > bv {
							bv = v
						}
					}
				}
				obj += bv
			}
			for i, o := range offers {
				if mask&(1<<i) != 0 {
					obj -= o.Cost
				}
			}
			if obj > best {
				best = obj
			}
		}
		opt := OptimalPoint(OptimalOptions{})(queries, offers).Welfare()
		if math.Abs(opt-best) > 1e-6 {
			return false
		}
		for _, solver := range []PointSolver{
			LocalSearchPoint(DefaultLocalSearchEpsilon),
			BaselinePoint(),
			EgalitarianPoint(),
			GreedyPoint(),
		} {
			if solver(queries, offers).Welfare() > best+1e-6 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestGreedyBudgetBalanceProperty: for random mixed workloads, every
// selected sensor's payments sum to its cost and every query's payment
// stays below its value.
func TestGreedyBudgetBalanceProperty(t *testing.T) {
	grid := geo.NewUnitGrid(60, 60)
	f := func(seed uint16) bool {
		s := rng.New(int64(seed), "prop-mix")
		var offers []Offer
		for i := 0; i < 15; i++ {
			sensor := sensornet.NewSensor(i, geo.Pt(s.Uniform(0, 60), s.Uniform(0, 60)))
			offers = append(offers, Offer{Sensor: sensor, Cost: sensor.Cost(0)})
		}
		var qs []query.Query
		for i := 0; i < 4; i++ {
			x, y := s.Uniform(0, 40), s.Uniform(0, 40)
			qs = append(qs, query.NewAggregate(qid("agg", i), geo.NewRect(x, y, x+15, y+15), s.Uniform(50, 200), 10, grid))
		}
		for i := 0; i < 8; i++ {
			qs = append(qs, query.NewPoint(qid("pt", i), geo.Pt(s.Uniform(0, 60), s.Uniform(0, 60)), s.Uniform(8, 30), 8))
		}
		res := GreedySelect(qs, offers)

		paid := map[int]float64{}
		for _, q := range qs {
			out := res.Outcomes[q.QID()]
			if out.Value < out.TotalPayment()-1e-9 {
				return false
			}
			for id, p := range out.Payments {
				if p < -1e-12 {
					return false
				}
				paid[id] += p
			}
		}
		for _, sel := range res.Selected {
			if math.Abs(paid[sel.ID]-10) > 1e-6 { // cost is 10 for default sensors
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func qid(prefix string, i int) string {
	return prefix + "-" + string(rune('a'+i))
}

// TestWelfareNeverNegativeProperty: all solvers may always return the
// empty allocation, so welfare must never be negative.
func TestWelfareNeverNegativeProperty(t *testing.T) {
	solvers := []PointSolver{
		OptimalPoint(OptimalOptions{}),
		LocalSearchPoint(DefaultLocalSearchEpsilon),
		BaselinePoint(),
		EgalitarianPoint(),
		GreedyPoint(),
	}
	f := func(seed uint16, nq uint8, budget uint8) bool {
		b := 5 + float64(budget%30)
		queries, offers := randomScenario(int64(seed), 10, int(nq%30)+1, b)
		for _, solver := range solvers {
			if solver(queries, offers).Welfare() < -1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// --- failure injection ----------------------------------------------------

// TestFleetExhaustionIsHandled: when every sensor's lifetime runs out the
// solvers see empty offer lists and must return empty results gracefully.
func TestFleetExhaustionIsHandled(t *testing.T) {
	offers := makeOffers(geo.Pt(0, 0), geo.Pt(1, 1))
	for _, o := range offers {
		o.Sensor.Lifetime = 1
		o.Sensor.RecordReading(0) // exhausted
	}
	// The fleet would filter these out; simulate the resulting empty slot.
	queries := makePoints(20, 5, geo.Pt(0, 0))
	res := OptimalPoint(OptimalOptions{})(queries, nil)
	if res.Welfare() != 0 || len(res.Outcomes) != 0 {
		t.Error("empty-offer slot should be a clean no-op")
	}
}

// TestMonitoringSurvivesSensorDesert: continuous queries must keep valid
// state when no sensor is ever in range.
func TestMonitoringSurvivesSensorDesert(t *testing.T) {
	h := history(42, 50)
	lm := query.NewLocationMonitoring("lm", geo.Pt(5, 5), 0, 10, 100, 2, h, 3)
	// All sensors far away.
	offers := makeOffers(geo.Pt(900, 900))
	for slot := 0; slot <= 10; slot++ {
		res := RunLocationMonitoringSlot(slot, []*query.LocationMonitoring{lm}, offers, OptimalPoint(OptimalOptions{}))
		if res.Welfare() != 0 {
			t.Fatalf("slot %d: welfare %v in a sensor desert", slot, res.Welfare())
		}
	}
	if len(lm.Sampled) != 0 || lm.Value() != 0 || lm.Quality() != 0 {
		t.Errorf("desert query state: sampled=%d value=%v", len(lm.Sampled), lm.Value())
	}

	grid := geo.NewUnitGrid(20, 15)
	rm := query.NewRegionMonitoring("rm", geo.NewRect(2, 2, 10, 8), 0, 10, 50, regModel(), grid)
	for slot := 0; slot <= 10; slot++ {
		RunRegionMonitoringSlot(slot, []*query.RegionMonitoring{rm}, offers, RegMonOptions{Solver: OptimalPoint(OptimalOptions{})})
	}
	if len(rm.ObsPoints) != 0 || rm.Spent != 0 {
		t.Error("region query accumulated phantom observations")
	}
}

// TestMidRunLifetimeExhaustion: sensors dying mid-simulation must simply
// drop out of later offers; the algorithms keep working with survivors.
func TestMidRunLifetimeExhaustion(t *testing.T) {
	queries, offers := randomScenario(3, 10, 30, 25)
	for _, o := range offers {
		o.Sensor.Lifetime = 2
	}
	solver := OptimalPoint(OptimalOptions{})
	aliveOffers := func() []Offer {
		var out []Offer
		for _, o := range offers {
			if o.Sensor.Alive() {
				out = append(out, o)
			}
		}
		return out
	}
	for slot := 0; slot < 6; slot++ {
		res := solver(queries, aliveOffers())
		for _, s := range res.Selected {
			s.RecordReading(slot)
		}
		if res.Welfare() < 0 {
			t.Fatalf("slot %d: negative welfare", slot)
		}
	}
	// After enough slots every used sensor must be dead or never selected.
	res := solver(queries, aliveOffers())
	for _, s := range res.Selected {
		if !s.Alive() {
			t.Error("dead sensor offered and selected")
		}
	}
}

// TestZeroBudgetQueries: budget-zero queries are never answered and never
// crash any solver.
func TestZeroBudgetQueries(t *testing.T) {
	offers := makeOffers(geo.Pt(0, 0))
	queries := makePoints(0, 5, geo.Pt(0, 0), geo.Pt(1, 1))
	for _, solver := range []PointSolver{
		OptimalPoint(OptimalOptions{}), LocalSearchPoint(0.01), BaselinePoint(), EgalitarianPoint(),
	} {
		res := solver(queries, offers)
		if len(res.Outcomes) != 0 {
			t.Error("zero-budget query answered")
		}
	}
}

// TestNaNResistance: degenerate sensor parameters (zero trust, max
// inaccuracy) must never produce NaN valuations or payments.
func TestNaNResistance(t *testing.T) {
	s1 := sensornet.NewSensor(0, geo.Pt(0, 0))
	s1.Trust = 0
	s2 := sensornet.NewSensor(1, geo.Pt(0.5, 0))
	s2.Inaccuracy = 1
	offers := []Offer{{Sensor: s1, Cost: 10}, {Sensor: s2, Cost: 10}}
	queries := makePoints(50, 5, geo.Pt(0, 0))
	for _, solver := range []PointSolver{OptimalPoint(OptimalOptions{}), LocalSearchPoint(0.01), BaselinePoint()} {
		res := solver(queries, offers)
		if math.IsNaN(res.Welfare()) {
			t.Error("NaN welfare from degenerate sensors")
		}
		for _, o := range res.Outcomes {
			if math.IsNaN(o.Payment) || math.IsNaN(o.Value) {
				t.Error("NaN outcome")
			}
		}
	}
}
