package core

import (
	"fmt"
	"strings"
	"sync"
)

// Strategy selects how Algorithm 1 evaluates candidate sensors. All
// strategies return bit-identical results; they differ only in how much
// work they do to find each round's argmax.
type Strategy int

const (
	// StrategyAuto keeps the historical default: a serial scan below
	// GreedyConfig.ParallelThreshold offers, a sharded scan above it.
	StrategyAuto Strategy = iota
	// StrategySerial scans every remaining sensor each round on one
	// goroutine.
	StrategySerial
	// StrategySharded splits the per-round scan over Workers goroutines.
	StrategySharded
	// StrategyLazy is the CELF-style lazy-greedy fast path: cached net
	// benefits in a max-heap, re-evaluated only when stale.
	StrategyLazy
	// StrategyLazySharded is StrategyLazy with the initial bound build
	// and the violation-fallback rescans sharded over Workers
	// goroutines.
	StrategyLazySharded
)

// String implements fmt.Stringer.
func (s Strategy) String() string {
	switch s {
	case StrategyAuto:
		return "auto"
	case StrategySerial:
		return "serial"
	case StrategySharded:
		return "sharded"
	case StrategyLazy:
		return "lazy"
	case StrategyLazySharded:
		return "lazy-sharded"
	default:
		return "unknown"
	}
}

// ParseStrategy parses a strategy name as accepted by the CLIs
// ("auto", "serial", "sharded", "lazy", "lazy-sharded").
func ParseStrategy(s string) (Strategy, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "", "auto":
		return StrategyAuto, nil
	case "serial":
		return StrategySerial, nil
	case "sharded", "parallel":
		return StrategySharded, nil
	case "lazy", "celf":
		return StrategyLazy, nil
	case "lazy-sharded", "lazy+sharded", "lazysharded":
		return StrategyLazySharded, nil
	default:
		return StrategyAuto, fmt.Errorf("unknown strategy %q (want auto, serial, sharded, lazy or lazy-sharded)", s)
	}
}

// lazyEntry is one heap candidate: a sensor and its last evaluated net
// benefit. While every relevant query's version is unchanged the net is
// exact; once a version bumps it is (for submodular valuations) an upper
// bound on the sensor's current net.
type lazyEntry struct {
	si  int
	net float64
}

// lazyHeap is a binary max-heap of candidates ordered by net benefit,
// ties broken by the lower sensor index — exactly the serial scan's
// "first index with the strictly largest net" rule.
type lazyHeap []lazyEntry

func (h lazyHeap) before(i, j int) bool {
	if h[i].net != h[j].net {
		return h[i].net > h[j].net
	}
	return h[i].si < h[j].si
}

func (h lazyHeap) init() {
	for i := len(h)/2 - 1; i >= 0; i-- {
		h.siftDown(i)
	}
}

func (h *lazyHeap) push(e lazyEntry) {
	*h = append(*h, e)
	i := len(*h) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !(*h).before(i, parent) {
			break
		}
		(*h)[i], (*h)[parent] = (*h)[parent], (*h)[i]
		i = parent
	}
}

// popTop removes and returns the maximum entry.
func (h *lazyHeap) popTop() lazyEntry {
	old := *h
	top := old[0]
	n := len(old) - 1
	old[0] = old[n]
	*h = old[:n]
	if n > 0 {
		(*h).siftDown(0)
	}
	return top
}

func (h lazyHeap) siftDown(i int) {
	n := len(h)
	for {
		l, r := 2*i+1, 2*i+2
		best := i
		if l < n && h.before(l, best) {
			best = l
		}
		if r < n && h.before(r, best) {
			best = r
		}
		if best == i {
			return
		}
		h[i], h[best] = h[best], h[i]
		i = best
	}
}

// volRef locates one (sensor, query) gain-cache slot of a volatile
// (non-submodular) query: the sensor index and the slot's flat index
// into the selection's CSR gains/vers arrays.
type volRef struct {
	si, idx int32
}

// lazyLoop is the CELF-style selection loop.
//
// Invariant: for monotone submodular valuations (queries advertising
// query.Submodular) a query's marginal gain can only shrink as its state
// grows, so a heap entry evaluated at an older state is an upper bound
// on the sensor's current net benefit. Valuations without the marker
// ("volatile": aggregates, trajectories, arbitrary black boxes) get no
// such bound — their cached gains are instead refreshed *eagerly* after
// every commit that touches them, so each entry's priority is always
// exact-volatile-part plus bounded-submodular-part, i.e. still a valid
// upper bound. The aggregate and trajectory states keep their
// newly-covered counts incrementally, so each eager refresh is O(1)
// arithmetic rather than a geometry walk.
//
// The heap orders entries by (net desc, sensor index asc); superseded
// entries are skipped on pop (lazy deletion keyed on curNet). When a
// popped valid entry is fresh — no relevant query committed a sensor
// since it was evaluated — every other candidate's bound is at most the
// top's exact net, so the top is the round's true argmax with the serial
// tie-break, and it commits without touching the rest of the pool. Stale
// tops are re-evaluated (refreshing only the stale (sensor, query) gain
// cache entries) and pushed back.
//
// Fallback: if a re-evaluated *marked* gain increased, the marker lied
// and stale bounds elsewhere may underestimate their sensors. The round
// then re-scans every remaining candidate exhaustively (restoring exact
// priorities for all of them) and rebuilds the heap. This detector is
// best-effort — the bound invariant, and with it bit-identical results,
// is guaranteed by truthful markers, not by detection.
func (s *selection) lazyLoop(sharded bool, workers int) {
	// Build the reverse index volatile maintenance needs (query -> its
	// gain-cache slots) in CSR form over the arena; the submodular
	// classification lives on the selection (newSelection).
	ar := s.ar
	anyVol := false
	for qi := range s.queries {
		anyVol = anyVol || !s.submod[qi]
	}
	var volOff []int32
	var volRefs []volRef
	if anyVol {
		volOff = growInt32(ar.volOff, len(s.queries)+1)
		for i := range volOff {
			volOff[i] = 0
		}
		for _, qi := range s.relIdx {
			if !s.submod[qi] {
				volOff[qi+1]++
			}
		}
		for qi := 0; qi < len(s.queries); qi++ {
			volOff[qi+1] += volOff[qi]
		}
		nvol := int(volOff[len(s.queries)])
		if cap(ar.volRefs) < nvol {
			ar.volRefs = make([]volRef, nvol)
		}
		volRefs = ar.volRefs[:nvol]
		cursor := growInt32(ar.touchList, len(s.queries))
		copy(cursor, volOff[:len(s.queries)])
		for si := range s.offers {
			for idx := s.relOff[si]; idx < s.relOff[si+1]; idx++ {
				qi := s.relIdx[idx]
				if !s.submod[qi] {
					volRefs[cursor[qi]] = volRef{si: int32(si), idx: idx}
					cursor[qi]++
				}
			}
		}
		ar.volOff, ar.touchList = volOff, cursor
	}

	curNet := growFloat64(ar.curNet, len(s.offers))
	ar.curNet = curNet
	h := ar.heap[:0]
	defer func() { ar.heap = h[:0] }()
	rebuild := func() {
		s.refreshRemaining(sharded, workers)
		h = h[:0]
		for si := range s.offers {
			if s.remaining[si] {
				curNet[si] = s.cachedNet(si)
				h = append(h, lazyEntry{si: si, net: curNet[si]})
			}
		}
		h.init()
	}
	rebuild()

	touched := growBool(ar.touched, len(s.offers))
	for i := range touched {
		touched[i] = false
	}
	ar.touched = touched
	var touchList []int32
	var c evalCounters
	for len(h) > 0 {
		e := h.popTop()
		if !s.remaining[e.si] || e.net != curNet[e.si] {
			continue // superseded by a later evaluation of the same sensor
		}
		if e.net <= 0 {
			// The highest valid bound is non-positive: no remaining
			// sensor is profitable, exactly the serial termination rule.
			break
		}
		if s.fresh(e.si) {
			s.commit(e.si, e.net)
			if anyVol {
				// Volatile queries just bumped: restore exact gains for
				// every remaining sensor they touch and re-prioritize.
				// Each refresh is O(1) arithmetic — the aggregate and
				// trajectory states maintain their newly-covered counts
				// incrementally — so the row rebuild and heap push per
				// touched sensor dominate, not the valuation itself.
				touchList = touchList[:0]
				for _, qi := range s.lastBumped {
					if s.submod[qi] {
						continue
					}
					st := s.states[qi]
					for _, ref := range volRefs[volOff[qi]:volOff[qi+1]] {
						if !s.remaining[ref.si] {
							continue
						}
						old := s.gains[ref.idx]
						g := st.Gain(s.offers[ref.si].Sensor)
						s.gains[ref.idx] = g
						s.vers[ref.idx] = s.qver[qi]
						c.calls++
						// The sensor's net sums only positive gains, so its
						// priority moved iff the positive part moved; most
						// refreshes of a saturated aggregate swing one
						// negative gain to another and need no re-push.
						if old < 0 {
							old = 0
						}
						if g < 0 {
							g = 0
						}
						if old != g && !touched[ref.si] {
							touched[ref.si] = true
							touchList = append(touchList, ref.si)
						}
					}
				}
				for _, si := range touchList {
					touched[si] = false
					curNet[si] = s.cachedNet(int(si))
					h.push(lazyEntry{si: int(si), net: curNet[si]})
				}
			}
			continue
		}
		s.stats.LazyReevaluations++
		vBefore := c.violations
		net := s.evalSensor(e.si, &c)
		if c.violations > vBefore {
			// A marked-submodular gain grew: the cached bounds cannot be
			// trusted, so re-scan the whole remaining pool to make every
			// priority exact again.
			s.stats.FallbackRescans++
			s.addCounters(c)
			c = evalCounters{}
			rebuild()
			continue
		}
		curNet[e.si] = net
		h.push(lazyEntry{si: e.si, net: net})
	}
	s.addCounters(c)
}

// refreshRemaining brings every remaining sensor's gain cache up to the
// current query versions (optionally sharded; shards touch disjoint
// sensors, and Gain is safe for concurrent callers — memoizing states
// guard their memo with a mutex — so they do not race).
func (s *selection) refreshRemaining(sharded bool, workers int) {
	n := len(s.offers)
	if !sharded || workers <= 1 {
		var c evalCounters
		for si := 0; si < n; si++ {
			if s.remaining[si] {
				s.evalSensor(si, &c)
			}
		}
		s.addCounters(c)
		return
	}
	counters := make([]evalCounters, workers)
	chunk := (n + workers - 1) / workers
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		lo := w * chunk
		hi := min(lo+chunk, n)
		if lo >= hi {
			continue
		}
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			for si := lo; si < hi; si++ {
				if s.remaining[si] {
					s.evalSensor(si, &counters[w])
				}
			}
		}(w, lo, hi)
	}
	wg.Wait()
	for _, c := range counters {
		s.addCounters(c)
	}
}
