package linalg

import (
	"errors"
	"math"
	"testing"
	"testing/quick"
)

func matFrom(rows, cols int, vals ...float64) *Matrix {
	m := NewMatrix(rows, cols)
	copy(m.Data, vals)
	return m
}

func vecAlmostEq(a, b []float64, eps float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if math.Abs(a[i]-b[i]) > eps {
			return false
		}
	}
	return true
}

func TestMatrixAtSet(t *testing.T) {
	m := NewMatrix(2, 3)
	m.Set(1, 2, 7)
	if m.At(1, 2) != 7 {
		t.Error("At/Set broken")
	}
	if m.At(0, 0) != 0 {
		t.Error("zero init broken")
	}
}

func TestTranspose(t *testing.T) {
	m := matFrom(2, 3, 1, 2, 3, 4, 5, 6)
	mt := m.T()
	if mt.Rows != 3 || mt.Cols != 2 {
		t.Fatalf("T shape %dx%d", mt.Rows, mt.Cols)
	}
	if mt.At(2, 1) != 6 || mt.At(0, 1) != 4 {
		t.Errorf("T values wrong: %v", mt.Data)
	}
}

func TestMul(t *testing.T) {
	a := matFrom(2, 3, 1, 2, 3, 4, 5, 6)
	b := matFrom(3, 2, 7, 8, 9, 10, 11, 12)
	c, err := Mul(a, b)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{58, 64, 139, 154}
	if !vecAlmostEq(c.Data, want, 1e-12) {
		t.Errorf("Mul=%v want %v", c.Data, want)
	}
}

func TestMulShapeMismatch(t *testing.T) {
	a := NewMatrix(2, 3)
	b := NewMatrix(2, 3)
	if _, err := Mul(a, b); !errors.Is(err, ErrShape) {
		t.Errorf("expected ErrShape, got %v", err)
	}
	if _, err := MulVec(a, []float64{1}); !errors.Is(err, ErrShape) {
		t.Errorf("expected ErrShape, got %v", err)
	}
}

func TestMulVec(t *testing.T) {
	a := matFrom(2, 2, 1, 2, 3, 4)
	got, err := MulVec(a, []float64{5, 6})
	if err != nil {
		t.Fatal(err)
	}
	if !vecAlmostEq(got, []float64{17, 39}, 1e-12) {
		t.Errorf("MulVec=%v", got)
	}
}

func TestDot(t *testing.T) {
	if Dot([]float64{1, 2, 3}, []float64{4, 5, 6}) != 32 {
		t.Error("Dot wrong")
	}
}

func TestCholeskyKnown(t *testing.T) {
	// A = [[4,12,-16],[12,37,-43],[-16,-43,98]] has L = [[2,0,0],[6,1,0],[-8,5,3]].
	a := matFrom(3, 3, 4, 12, -16, 12, 37, -43, -16, -43, 98)
	ch, err := NewCholesky(a)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{2, 0, 0, 6, 1, 0, -8, 5, 3}
	if !vecAlmostEq(ch.L.Data, want, 1e-9) {
		t.Errorf("L=%v want %v", ch.L.Data, want)
	}
	// logdet = 2*log(2*1*3) = 2*log 6
	if got := ch.LogDet(); math.Abs(got-2*math.Log(6)) > 1e-9 {
		t.Errorf("LogDet=%v", got)
	}
}

func TestCholeskySolve(t *testing.T) {
	a := matFrom(2, 2, 4, 2, 2, 3)
	ch, err := NewCholesky(a)
	if err != nil {
		t.Fatal(err)
	}
	x, err := ch.SolveVec([]float64{10, 8})
	if err != nil {
		t.Fatal(err)
	}
	// Verify A x = b.
	b, _ := MulVec(a, x)
	if !vecAlmostEq(b, []float64{10, 8}, 1e-9) {
		t.Errorf("solve residual: Ax=%v", b)
	}
}

func TestCholeskyNotSPD(t *testing.T) {
	a := matFrom(2, 2, 1, 2, 2, 1) // indefinite
	if _, err := NewCholesky(a); !errors.Is(err, ErrNotSPD) {
		t.Errorf("expected ErrNotSPD, got %v", err)
	}
	bad := NewMatrix(2, 3)
	if _, err := NewCholesky(bad); !errors.Is(err, ErrShape) {
		t.Errorf("expected ErrShape for non-square, got %v", err)
	}
}

func TestCholeskySolveShapeMismatch(t *testing.T) {
	a := matFrom(2, 2, 2, 0, 0, 2)
	ch, err := NewCholesky(a)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ch.SolveVec([]float64{1, 2, 3}); !errors.Is(err, ErrShape) {
		t.Errorf("expected ErrShape, got %v", err)
	}
}

// TestCholeskySolveRandomSPD: for random SPD matrices A=M^T M + n*I the
// solver must reproduce b = A x.
func TestCholeskySolveRandomSPD(t *testing.T) {
	f := func(seedRaw uint32) bool {
		n := int(seedRaw%6) + 2
		// Build a deterministic pseudo-random matrix from the seed.
		s := seedRaw
		next := func() float64 {
			s = s*1664525 + 1013904223
			return float64(s%2000)/1000 - 1
		}
		m := NewMatrix(n, n)
		for i := range m.Data {
			m.Data[i] = next()
		}
		mt := m.T()
		a, _ := Mul(mt, m)
		for i := 0; i < n; i++ {
			a.Set(i, i, a.At(i, i)+float64(n))
		}
		xTrue := make([]float64, n)
		for i := range xTrue {
			xTrue[i] = next()
		}
		b, _ := MulVec(a, xTrue)
		got, err := SolveSPD(a, b, 0)
		if err != nil {
			return false
		}
		return vecAlmostEq(got, xTrue, 1e-6)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestSolveSPDJitterDoesNotMutate(t *testing.T) {
	a := matFrom(2, 2, 1, 0, 0, 1)
	orig := a.Clone()
	if _, err := SolveSPD(a, []float64{1, 1}, 0.5); err != nil {
		t.Fatal(err)
	}
	if !vecAlmostEq(a.Data, orig.Data, 0) {
		t.Error("SolveSPD with jitter mutated input matrix")
	}
}

func TestLeastSquaresExactFit(t *testing.T) {
	// y = 2 + 3t fit with design [1, t].
	x := matFrom(4, 2,
		1, 0,
		1, 1,
		1, 2,
		1, 3,
	)
	y := []float64{2, 5, 8, 11}
	beta, err := LeastSquares(x, y, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !vecAlmostEq(beta, []float64{2, 3}, 1e-9) {
		t.Errorf("beta=%v want [2 3]", beta)
	}
}

func TestLeastSquaresRidgeHandlesCollinear(t *testing.T) {
	// Two identical columns: plain normal equations are singular, the ridge
	// must rescue the solve.
	x := matFrom(3, 2, 1, 1, 2, 2, 3, 3)
	y := []float64{2, 4, 6}
	beta, err := LeastSquares(x, y, 1e-8)
	if err != nil {
		t.Fatalf("ridge least squares failed: %v", err)
	}
	// Prediction should still match y.
	pred, _ := MulVec(x, beta)
	if !vecAlmostEq(pred, y, 1e-3) {
		t.Errorf("ridge prediction %v want %v", pred, y)
	}
}

func TestLeastSquaresShapeMismatch(t *testing.T) {
	x := NewMatrix(3, 2)
	if _, err := LeastSquares(x, []float64{1, 2}, 0); !errors.Is(err, ErrShape) {
		t.Errorf("expected ErrShape, got %v", err)
	}
}

func TestCloneIndependent(t *testing.T) {
	a := matFrom(1, 2, 1, 2)
	b := a.Clone()
	b.Set(0, 0, 99)
	if a.At(0, 0) != 1 {
		t.Error("Clone shares backing array")
	}
}
