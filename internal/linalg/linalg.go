// Package linalg implements the dense linear algebra needed by the
// Gaussian-process and regression substrates: column-major-free simple
// matrices, Cholesky factorization of symmetric positive-definite systems,
// triangular solves and least squares via normal equations.
//
// The library is deliberately small: the paper's models need SPD solves of
// at most a few hundred dimensions, for which straightforward O(n^3)
// Cholesky is both robust and fast enough.
package linalg

import (
	"errors"
	"fmt"
	"math"
)

// ErrNotSPD is returned when a Cholesky factorization encounters a
// non-positive pivot, i.e. the matrix is not (numerically) positive
// definite.
var ErrNotSPD = errors.New("linalg: matrix is not positive definite")

// ErrShape is returned on dimension mismatches.
var ErrShape = errors.New("linalg: dimension mismatch")

// Matrix is a dense row-major matrix.
type Matrix struct {
	Rows, Cols int
	Data       []float64 // len Rows*Cols, row-major
}

// NewMatrix allocates a zero matrix.
func NewMatrix(rows, cols int) *Matrix {
	if rows < 0 || cols < 0 {
		panic("linalg: negative dimension")
	}
	return &Matrix{Rows: rows, Cols: cols, Data: make([]float64, rows*cols)}
}

// At returns element (i,j).
func (m *Matrix) At(i, j int) float64 { return m.Data[i*m.Cols+j] }

// Set assigns element (i,j).
func (m *Matrix) Set(i, j int, v float64) { m.Data[i*m.Cols+j] = v }

// Clone returns a deep copy of m.
func (m *Matrix) Clone() *Matrix {
	out := NewMatrix(m.Rows, m.Cols)
	copy(out.Data, m.Data)
	return out
}

// T returns the transpose of m as a new matrix.
func (m *Matrix) T() *Matrix {
	out := NewMatrix(m.Cols, m.Rows)
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < m.Cols; j++ {
			out.Set(j, i, m.At(i, j))
		}
	}
	return out
}

// Mul returns a*b.
func Mul(a, b *Matrix) (*Matrix, error) {
	if a.Cols != b.Rows {
		return nil, fmt.Errorf("%w: (%dx%d)*(%dx%d)", ErrShape, a.Rows, a.Cols, b.Rows, b.Cols)
	}
	out := NewMatrix(a.Rows, b.Cols)
	for i := 0; i < a.Rows; i++ {
		for k := 0; k < a.Cols; k++ {
			aik := a.At(i, k)
			if aik == 0 {
				continue
			}
			rowB := b.Data[k*b.Cols : (k+1)*b.Cols]
			rowOut := out.Data[i*out.Cols : (i+1)*out.Cols]
			for j, bv := range rowB {
				rowOut[j] += aik * bv
			}
		}
	}
	return out, nil
}

// MulVec returns a*x for a vector x.
func MulVec(a *Matrix, x []float64) ([]float64, error) {
	if a.Cols != len(x) {
		return nil, fmt.Errorf("%w: (%dx%d)*vec(%d)", ErrShape, a.Rows, a.Cols, len(x))
	}
	out := make([]float64, a.Rows)
	for i := 0; i < a.Rows; i++ {
		row := a.Data[i*a.Cols : (i+1)*a.Cols]
		var s float64
		for j, v := range row {
			s += v * x[j]
		}
		out[i] = s
	}
	return out, nil
}

// Dot returns the inner product of two equal-length vectors.
func Dot(a, b []float64) float64 {
	var s float64
	for i := range a {
		s += a[i] * b[i]
	}
	return s
}

// Cholesky holds the lower-triangular factor L with A = L*L^T.
type Cholesky struct {
	N int
	L *Matrix // lower triangular, upper part zero
}

// NewCholesky factors the symmetric positive-definite matrix a.
// Only the lower triangle of a is read. A small jitter can be added by the
// caller to regularize near-singular kernels.
func NewCholesky(a *Matrix) (*Cholesky, error) {
	if a.Rows != a.Cols {
		return nil, fmt.Errorf("%w: cholesky of %dx%d", ErrShape, a.Rows, a.Cols)
	}
	n := a.Rows
	l := NewMatrix(n, n)
	for j := 0; j < n; j++ {
		d := a.At(j, j)
		for k := 0; k < j; k++ {
			ljk := l.At(j, k)
			d -= ljk * ljk
		}
		if d <= 0 || math.IsNaN(d) {
			return nil, fmt.Errorf("%w: pivot %d = %g", ErrNotSPD, j, d)
		}
		ljj := math.Sqrt(d)
		l.Set(j, j, ljj)
		for i := j + 1; i < n; i++ {
			s := a.At(i, j)
			for k := 0; k < j; k++ {
				s -= l.At(i, k) * l.At(j, k)
			}
			l.Set(i, j, s/ljj)
		}
	}
	return &Cholesky{N: n, L: l}, nil
}

// SolveVec solves A x = b for x using the factorization.
func (c *Cholesky) SolveVec(b []float64) ([]float64, error) {
	if len(b) != c.N {
		return nil, fmt.Errorf("%w: solve with vec(%d), n=%d", ErrShape, len(b), c.N)
	}
	// Forward solve L y = b.
	y := make([]float64, c.N)
	for i := 0; i < c.N; i++ {
		s := b[i]
		row := c.L.Data[i*c.N : i*c.N+i]
		for k, v := range row {
			s -= v * y[k]
		}
		y[i] = s / c.L.At(i, i)
	}
	// Backward solve L^T x = y.
	x := make([]float64, c.N)
	for i := c.N - 1; i >= 0; i-- {
		s := y[i]
		for k := i + 1; k < c.N; k++ {
			s -= c.L.At(k, i) * x[k]
		}
		x[i] = s / c.L.At(i, i)
	}
	return x, nil
}

// LogDet returns log(det(A)) = 2*sum(log(L_ii)).
func (c *Cholesky) LogDet() float64 {
	var s float64
	for i := 0; i < c.N; i++ {
		s += math.Log(c.L.At(i, i))
	}
	return 2 * s
}

// SolveSPD solves A x = b for a symmetric positive-definite A with optional
// diagonal jitter for numerical robustness.
func SolveSPD(a *Matrix, b []float64, jitter float64) ([]float64, error) {
	work := a
	if jitter > 0 {
		work = a.Clone()
		for i := 0; i < work.Rows; i++ {
			work.Set(i, i, work.At(i, i)+jitter)
		}
	}
	ch, err := NewCholesky(work)
	if err != nil {
		return nil, err
	}
	return ch.SolveVec(b)
}

// LeastSquares solves min ||X beta - y||^2 via the normal equations
// (X^T X + ridge*I) beta = X^T y. A small ridge keeps the system SPD when X
// has (near) collinear columns, which happens with degenerate sampling-time
// subsets in the location-monitoring valuation.
func LeastSquares(x *Matrix, y []float64, ridge float64) ([]float64, error) {
	if x.Rows != len(y) {
		return nil, fmt.Errorf("%w: lstsq X %dx%d, y %d", ErrShape, x.Rows, x.Cols, len(y))
	}
	xt := x.T()
	xtx, err := Mul(xt, x)
	if err != nil {
		return nil, err
	}
	for i := 0; i < xtx.Rows; i++ {
		xtx.Set(i, i, xtx.At(i, i)+ridge)
	}
	xty, err := MulVec(xt, y)
	if err != nil {
		return nil, err
	}
	return SolveSPD(xtx, xty, 0)
}
