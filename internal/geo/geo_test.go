package geo

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEq(a, b, eps float64) bool { return math.Abs(a-b) <= eps }

func TestPointDist(t *testing.T) {
	cases := []struct {
		p, q Point
		want float64
	}{
		{Pt(0, 0), Pt(3, 4), 5},
		{Pt(1, 1), Pt(1, 1), 0},
		{Pt(-1, -1), Pt(2, 3), 5},
		{Pt(0, 0), Pt(0, 2.5), 2.5},
	}
	for _, c := range cases {
		if got := c.p.Dist(c.q); !almostEq(got, c.want, 1e-12) {
			t.Errorf("Dist(%v,%v)=%v want %v", c.p, c.q, got, c.want)
		}
		if got := c.p.Dist2(c.q); !almostEq(got, c.want*c.want, 1e-12) {
			t.Errorf("Dist2(%v,%v)=%v want %v", c.p, c.q, got, c.want*c.want)
		}
	}
}

func TestPointArithmetic(t *testing.T) {
	p := Pt(1, 2)
	if got := p.Add(Pt(3, 4)); got != Pt(4, 6) {
		t.Errorf("Add = %v", got)
	}
	if got := p.Sub(Pt(3, 4)); got != Pt(-2, -2) {
		t.Errorf("Sub = %v", got)
	}
	if got := p.Scale(2); got != Pt(2, 4) {
		t.Errorf("Scale = %v", got)
	}
}

func TestDistSymmetryProperty(t *testing.T) {
	f := func(ax, ay, bx, by float64) bool {
		if math.IsNaN(ax) || math.IsNaN(ay) || math.IsNaN(bx) || math.IsNaN(by) {
			return true
		}
		a, b := Pt(ax, ay), Pt(bx, by)
		return a.Dist(b) == b.Dist(a)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestTriangleInequalityProperty(t *testing.T) {
	f := func(ax, ay, bx, by, cx, cy int16) bool {
		a := Pt(float64(ax), float64(ay))
		b := Pt(float64(bx), float64(by))
		c := Pt(float64(cx), float64(cy))
		return a.Dist(c) <= a.Dist(b)+b.Dist(c)+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestNewRectNormalizes(t *testing.T) {
	r := NewRect(5, 7, 1, 2)
	if r.MinX != 1 || r.MinY != 2 || r.MaxX != 5 || r.MaxY != 7 {
		t.Errorf("NewRect did not normalize: %+v", r)
	}
}

func TestRectContains(t *testing.T) {
	r := NewRect(0, 0, 10, 5)
	for _, p := range []Point{Pt(0, 0), Pt(10, 5), Pt(5, 2.5), Pt(0, 5)} {
		if !r.Contains(p) {
			t.Errorf("expected %v inside %v", p, r)
		}
	}
	for _, p := range []Point{Pt(-0.001, 0), Pt(10.001, 5), Pt(5, 5.001)} {
		if r.Contains(p) {
			t.Errorf("expected %v outside %v", p, r)
		}
	}
}

func TestRectAreaCenter(t *testing.T) {
	r := NewRect(2, 2, 6, 4)
	if got := r.Area(); got != 8 {
		t.Errorf("Area=%v want 8", got)
	}
	if got := r.Center(); got != Pt(4, 3) {
		t.Errorf("Center=%v want (4,3)", got)
	}
	if r.Width() != 4 || r.Height() != 2 {
		t.Errorf("Width/Height = %v/%v", r.Width(), r.Height())
	}
}

func TestRectIntersect(t *testing.T) {
	a := NewRect(0, 0, 10, 10)
	b := NewRect(5, 5, 15, 15)
	got, ok := a.Intersect(b)
	if !ok {
		t.Fatal("expected overlap")
	}
	want := NewRect(5, 5, 10, 10)
	if got != want {
		t.Errorf("Intersect=%v want %v", got, want)
	}
	c := NewRect(20, 20, 30, 30)
	if _, ok := a.Intersect(c); ok {
		t.Error("expected no overlap with far rect")
	}
	// Touching edge counts as (degenerate) overlap.
	d := NewRect(10, 0, 20, 10)
	if inter, ok := a.Intersect(d); !ok || inter.Width() != 0 {
		t.Errorf("edge-touch intersect = %v, %v", inter, ok)
	}
}

func TestRectClampAndDist(t *testing.T) {
	r := NewRect(0, 0, 10, 10)
	if got := r.Clamp(Pt(-5, 5)); got != Pt(0, 5) {
		t.Errorf("Clamp=%v", got)
	}
	if got := r.Clamp(Pt(5, 5)); got != Pt(5, 5) {
		t.Errorf("Clamp interior changed point: %v", got)
	}
	if got := r.DistToPoint(Pt(13, 14)); !almostEq(got, 5, 1e-12) {
		t.Errorf("DistToPoint=%v want 5", got)
	}
	if got := r.DistToPoint(Pt(3, 3)); got != 0 {
		t.Errorf("DistToPoint inside = %v want 0", got)
	}
}

func TestGridCellOfAndCenter(t *testing.T) {
	g := NewUnitGrid(80, 80)
	c := g.CellOf(Pt(10.5, 20.5))
	if c != (Cell{10, 20}) {
		t.Errorf("CellOf=%v", c)
	}
	if got := g.CellCenter(c); got != Pt(10.5, 20.5) {
		t.Errorf("CellCenter=%v", got)
	}
	// Out-of-bounds points clamp.
	if c := g.CellOf(Pt(-3, 100)); c != (Cell{0, 79}) {
		t.Errorf("clamped CellOf=%v", c)
	}
	// Exact max corner clamps into last cell.
	if c := g.CellOf(Pt(80, 80)); c != (Cell{79, 79}) {
		t.Errorf("max corner CellOf=%v", c)
	}
}

func TestGridCellIndexRoundTrip(t *testing.T) {
	g := NewUnitGrid(7, 5)
	if g.NumCells() != 35 {
		t.Fatalf("NumCells=%d", g.NumCells())
	}
	for idx := 0; idx < g.NumCells(); idx++ {
		c := g.CellAt(idx)
		if g.CellIndex(c) != idx {
			t.Fatalf("round trip failed at %d -> %v", idx, c)
		}
	}
}

func TestGridCellsIn(t *testing.T) {
	g := NewUnitGrid(10, 10)
	cells := g.CellsIn(NewRect(0, 0, 3, 2))
	if len(cells) != 6 {
		t.Fatalf("expected 6 cell centers, got %d: %v", len(cells), cells)
	}
	for _, c := range cells {
		if c.X > 3 || c.Y > 2 {
			t.Errorf("cell center %v outside query rect", c)
		}
	}
	// Whole-grid region returns all cells.
	if got := len(g.CellsIn(g.Bounds)); got != 100 {
		t.Errorf("full region cells = %d", got)
	}
	// Empty region.
	if got := len(g.CellsIn(NewRect(20, 20, 30, 30))); got != 0 {
		t.Errorf("out-of-grid region cells = %d", got)
	}
}

func TestCoverageFraction(t *testing.T) {
	g := NewUnitGrid(10, 10)
	region := NewRect(0, 0, 10, 10)
	// One sensor at the center with huge radius covers everything.
	if got := g.CoverageFraction(region, []Point{Pt(5, 5)}, 100); got != 1 {
		t.Errorf("full coverage = %v", got)
	}
	// No sensors covers nothing.
	if got := g.CoverageFraction(region, nil, 5); got != 0 {
		t.Errorf("empty coverage = %v", got)
	}
	// Radius 0.9 from a cell center covers exactly that cell center.
	if got := g.CoverageFraction(region, []Point{Pt(5.5, 5.5)}, 0.9); got != 0.01 {
		t.Errorf("single cell coverage = %v want 0.01", got)
	}
}

func TestCoverageFractionMonotoneProperty(t *testing.T) {
	// Adding a sensor never decreases coverage.
	g := NewUnitGrid(20, 20)
	region := NewRect(0, 0, 20, 20)
	f := func(x1, y1, x2, y2 uint8) bool {
		a := Pt(float64(x1%20), float64(y1%20))
		b := Pt(float64(x2%20), float64(y2%20))
		one := g.CoverageFraction(region, []Point{a}, 3)
		two := g.CoverageFraction(region, []Point{a, b}, 3)
		return two >= one
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestTrajectoryLengthAndSampling(t *testing.T) {
	tr := Trajectory{Waypoints: []Point{Pt(0, 0), Pt(3, 4), Pt(3, 10)}}
	if got := tr.Length(); !almostEq(got, 11, 1e-12) {
		t.Errorf("Length=%v want 11", got)
	}
	pts := tr.SamplePoints(1)
	if len(pts) < 11 {
		t.Fatalf("expected at least 11 sample points, got %d", len(pts))
	}
	if pts[0] != Pt(0, 0) {
		t.Errorf("first sample %v", pts[0])
	}
	if last := pts[len(pts)-1]; !almostEq(last.Dist(Pt(3, 10)), 0, 1e-9) {
		t.Errorf("last sample %v", last)
	}
	// Consecutive samples at most step apart (plus epsilon).
	for i := 1; i < len(pts); i++ {
		if d := pts[i-1].Dist(pts[i]); d > 1+1e-9 {
			t.Errorf("gap %v between consecutive samples", d)
		}
	}
}

func TestTrajectoryEmptyAndDegenerate(t *testing.T) {
	var empty Trajectory
	if empty.Length() != 0 {
		t.Error("empty trajectory length != 0")
	}
	if pts := empty.SamplePoints(1); pts != nil {
		t.Errorf("empty trajectory samples = %v", pts)
	}
	single := Trajectory{Waypoints: []Point{Pt(1, 1)}}
	if pts := single.SamplePoints(1); len(pts) != 1 || pts[0] != Pt(1, 1) {
		t.Errorf("single waypoint samples = %v", pts)
	}
	// Step <= 0 falls back to 1.
	two := Trajectory{Waypoints: []Point{Pt(0, 0), Pt(0, 2)}}
	if pts := two.SamplePoints(0); len(pts) != 3 {
		t.Errorf("step 0 fallback samples = %v", pts)
	}
}

func TestTrajectoryBoundingRect(t *testing.T) {
	tr := Trajectory{Waypoints: []Point{Pt(2, 8), Pt(-1, 3), Pt(5, 5)}}
	r := tr.BoundingRect()
	want := NewRect(-1, 3, 5, 8)
	if r != want {
		t.Errorf("BoundingRect=%v want %v", r, want)
	}
	if (Trajectory{}).BoundingRect() != (Rect{}) {
		t.Error("empty trajectory bounding rect should be zero")
	}
}

func TestCoverageFractionOfPoints(t *testing.T) {
	targets := []Point{Pt(0, 0), Pt(10, 0), Pt(20, 0)}
	centers := []Point{Pt(0, 1)}
	if got := CoverageFractionOfPoints(targets, centers, 2); !almostEq(got, 1.0/3, 1e-12) {
		t.Errorf("coverage=%v want 1/3", got)
	}
	if got := CoverageFractionOfPoints(nil, centers, 2); got != 0 {
		t.Errorf("empty targets coverage=%v", got)
	}
}
