package geo

import "testing"

func TestGridPartitionFactorization(t *testing.T) {
	cases := []struct {
		bounds     Rect
		shards     int
		cols, rows int
	}{
		{NewRect(0, 0, 50, 50), 4, 2, 2},
		{NewRect(0, 0, 50, 50), 1, 1, 1},
		{NewRect(0, 0, 50, 50), 0, 1, 1},
		{NewRect(0, 0, 100, 25), 4, 4, 1}, // wide region: split along x
		{NewRect(0, 0, 25, 100), 4, 1, 4}, // tall region: split along y
		{NewRect(0, 0, 60, 40), 6, 3, 2},
		{NewRect(0, 0, 50, 50), 3, 1, 3}, // prime: a strip partition
	}
	for _, c := range cases {
		p := NewGridPartition(c.bounds, c.shards)
		want := c.shards
		if want < 1 {
			want = 1
		}
		if p.NumShards() != want {
			t.Errorf("NewGridPartition(%v, %d): %d shards, want %d", c.bounds, c.shards, p.NumShards(), want)
		}
		if p.Cols != c.cols || p.Rows != c.rows {
			t.Errorf("NewGridPartition(%v, %d) = %dx%d, want %dx%d",
				c.bounds, c.shards, p.Cols, p.Rows, c.cols, c.rows)
		}
	}
}

func TestGridPartitionShardOfCoversBounds(t *testing.T) {
	p := NewGridPartition(NewRect(10, 10, 60, 60), 4)
	for _, tc := range []struct {
		pt   Point
		want int
	}{
		{Pt(11, 11), 0},
		{Pt(59, 11), 1},
		{Pt(11, 59), 2},
		{Pt(59, 59), 3},
		{Pt(35, 35), 3}, // exactly on both midlines: floors into the upper-right shard
		{Pt(0, 0), 0},   // outside: clamped to the nearest shard
		{Pt(99, 99), 3}, // outside: clamped
		{Pt(60, 60), 3}, // on the max corner: clamped into the last shard
		{Pt(35, 20), 1}, // on the vertical midline
		{Pt(20, 35), 2}, // on the horizontal midline
	} {
		if got := p.ShardOf(tc.pt); got != tc.want {
			t.Errorf("ShardOf(%v) = %d, want %d", tc.pt, got, tc.want)
		}
	}
	// Every point's shard rectangle must contain (or clamp-contain) it.
	for x := 10.0; x <= 60; x += 3.7 {
		for y := 10.0; y <= 60; y += 3.7 {
			k := p.ShardOf(Pt(x, y))
			if b := p.ShardBounds(k); !b.Contains(Pt(x, y)) {
				t.Fatalf("ShardBounds(%d)=%v does not contain (%v,%v)", k, b, x, y)
			}
		}
	}
}

func TestGridPartitionShardsOf(t *testing.T) {
	p := NewGridPartition(NewRect(0, 0, 40, 40), 4) // 2x2, midlines at 20
	for _, tc := range []struct {
		r    Rect
		want []int
	}{
		{NewRect(1, 1, 10, 10), []int{0}},
		{NewRect(25, 25, 30, 30), []int{3}},
		{NewRect(5, 5, 25, 10), []int{0, 1}},
		{NewRect(5, 5, 35, 35), []int{0, 1, 2, 3}},
		// Footprint edge exactly on the midline: the far shard is included,
		// because a sensor at x=20 belongs to shard 1 but can be relevant.
		{NewRect(5, 5, 20, 10), []int{0, 1}},
		{NewRect(20, 5, 25, 10), []int{1}},
		// Degenerate (point) footprint on the corner of all four shards.
		{NewRect(20, 20, 20, 20), []int{3}},
		// Outside the bounds: clamped to the nearest shard.
		{NewRect(-10, -10, -5, -5), []int{0}},
	} {
		got := p.ShardsOf(tc.r)
		if len(got) != len(tc.want) {
			t.Errorf("ShardsOf(%v) = %v, want %v", tc.r, got, tc.want)
			continue
		}
		for i := range got {
			if got[i] != tc.want[i] {
				t.Errorf("ShardsOf(%v) = %v, want %v", tc.r, got, tc.want)
				break
			}
		}
	}
}
