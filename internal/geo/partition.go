package geo

import "math"

// GridPartition splits a rectangle into Cols x Rows equally sized
// geographic shards, numbered row-major from the minimum corner. It is the
// routing structure of the sharded execution layer: sensors belong to the
// shard containing their position, and a query is resident in a shard when
// its relevance footprint (query region or location expanded by the
// sensing range) lies inside that shard's rectangle.
type GridPartition struct {
	Bounds Rect
	Cols   int
	Rows   int
}

// NewGridPartition builds a partition of bounds into exactly `shards`
// rectangles. The factorization cols x rows = shards is chosen so the
// shard aspect ratio tracks the bounds' aspect ratio (a 2:1 region split
// into 4 shards becomes 4x1 rather than 2x2 only when that keeps shards
// squarer). shards < 1 is treated as 1.
func NewGridPartition(bounds Rect, shards int) GridPartition {
	if shards < 1 {
		shards = 1
	}
	aspect := 1.0
	if bounds.Height() > 0 {
		aspect = bounds.Width() / bounds.Height()
	}
	bestCols, bestScore := 1, math.Inf(1)
	for cols := 1; cols <= shards; cols++ {
		if shards%cols != 0 {
			continue
		}
		rows := shards / cols
		// Squareness score: how far one shard's aspect is from 1.
		shardAspect := aspect * float64(rows) / float64(cols)
		score := math.Abs(math.Log(shardAspect))
		if score < bestScore {
			bestScore, bestCols = score, cols
		}
	}
	return GridPartition{Bounds: bounds, Cols: bestCols, Rows: shards / bestCols}
}

// NumShards returns the total shard count.
func (p GridPartition) NumShards() int { return p.Cols * p.Rows }

// shardSize returns one shard's width and height.
func (p GridPartition) shardSize() (w, h float64) {
	return p.Bounds.Width() / float64(p.Cols), p.Bounds.Height() / float64(p.Rows)
}

// ShardOf returns the shard containing pt, clamped to the partition (a
// point outside the bounds belongs to the nearest edge shard, mirroring
// Grid.CellOf).
func (p GridPartition) ShardOf(pt Point) int {
	w, h := p.shardSize()
	i := clampIdx(int(math.Floor((pt.X-p.Bounds.MinX)/w)), p.Cols)
	j := clampIdx(int(math.Floor((pt.Y-p.Bounds.MinY)/h)), p.Rows)
	return j*p.Cols + i
}

// ShardBounds returns shard k's rectangle.
func (p GridPartition) ShardBounds(k int) Rect {
	w, h := p.shardSize()
	i, j := k%p.Cols, k/p.Cols
	return Rect{
		MinX: p.Bounds.MinX + float64(i)*w,
		MinY: p.Bounds.MinY + float64(j)*h,
		MaxX: p.Bounds.MinX + float64(i+1)*w,
		MaxY: p.Bounds.MinY + float64(j+1)*h,
	}
}

// ShardsOf returns, in ascending order, every shard whose closed rectangle
// intersects r. The intersection is closed on shard boundaries: a
// footprint whose edge lands exactly on a shard border includes the shard
// on the far side, because a sensor sitting exactly on the border belongs
// to that far shard (ShardOf floors) yet can still be relevant to a query
// whose closed footprint touches the border.
func (p GridPartition) ShardsOf(r Rect) []int {
	w, h := p.shardSize()
	i0 := clampIdx(int(math.Floor((r.MinX-p.Bounds.MinX)/w)), p.Cols)
	i1 := clampIdx(int(math.Floor((r.MaxX-p.Bounds.MinX)/w)), p.Cols)
	j0 := clampIdx(int(math.Floor((r.MinY-p.Bounds.MinY)/h)), p.Rows)
	j1 := clampIdx(int(math.Floor((r.MaxY-p.Bounds.MinY)/h)), p.Rows)
	out := make([]int, 0, (i1-i0+1)*(j1-j0+1))
	for j := j0; j <= j1; j++ {
		for i := i0; i <= i1; i++ {
			out = append(out, j*p.Cols+i)
		}
	}
	return out
}

func clampIdx(i, n int) int {
	if i < 0 {
		return 0
	}
	if i >= n {
		return n - 1
	}
	return i
}
