// Package geo provides the planar geometry primitives used throughout the
// participatory-sensing simulator: points, rectangles, grids, trajectories
// and disk-coverage computations.
//
// The paper's worlds are grid-discretized planes (e.g. the 80x80 RWM region
// with a 50x50 working subregion, or the 237x300 RNC region). All
// coordinates are float64 so that sensors can move continuously, while
// regions and coverage are evaluated on integer grid cells.
package geo

import (
	"fmt"
	"math"
)

// Point is a location in the plane.
type Point struct {
	X, Y float64
}

// Pt is shorthand for Point{x, y}.
func Pt(x, y float64) Point { return Point{X: x, Y: y} }

// Dist returns the Euclidean distance between p and q.
func (p Point) Dist(q Point) float64 {
	dx, dy := p.X-q.X, p.Y-q.Y
	return math.Sqrt(dx*dx + dy*dy)
}

// Dist2 returns the squared Euclidean distance between p and q. It avoids
// the square root for comparisons against a squared radius.
func (p Point) Dist2(q Point) float64 {
	dx, dy := p.X-q.X, p.Y-q.Y
	return dx*dx + dy*dy
}

// Add returns p translated by q.
func (p Point) Add(q Point) Point { return Point{p.X + q.X, p.Y + q.Y} }

// Sub returns p minus q.
func (p Point) Sub(q Point) Point { return Point{p.X - q.X, p.Y - q.Y} }

// Scale returns p scaled by f.
func (p Point) Scale(f float64) Point { return Point{p.X * f, p.Y * f} }

// String implements fmt.Stringer.
func (p Point) String() string { return fmt.Sprintf("(%.2f,%.2f)", p.X, p.Y) }

// Rect is an axis-aligned rectangle [MinX,MaxX] x [MinY,MaxY], inclusive of
// its minimum edge and exclusive of its maximum edge for cell purposes, but
// Contains treats it as closed so boundary sensors count.
type Rect struct {
	MinX, MinY, MaxX, MaxY float64
}

// NewRect builds a rectangle from two opposite corners in any order.
func NewRect(x0, y0, x1, y1 float64) Rect {
	if x0 > x1 {
		x0, x1 = x1, x0
	}
	if y0 > y1 {
		y0, y1 = y1, y0
	}
	return Rect{MinX: x0, MinY: y0, MaxX: x1, MaxY: y1}
}

// Contains reports whether p lies inside r (closed on all edges).
func (r Rect) Contains(p Point) bool {
	return p.X >= r.MinX && p.X <= r.MaxX && p.Y >= r.MinY && p.Y <= r.MaxY
}

// Width returns the horizontal extent of r.
func (r Rect) Width() float64 { return r.MaxX - r.MinX }

// Height returns the vertical extent of r.
func (r Rect) Height() float64 { return r.MaxY - r.MinY }

// Area returns the area of r.
func (r Rect) Area() float64 { return r.Width() * r.Height() }

// Center returns the midpoint of r.
func (r Rect) Center() Point { return Point{(r.MinX + r.MaxX) / 2, (r.MinY + r.MaxY) / 2} }

// Intersect returns the intersection of r and o and whether it is non-empty.
func (r Rect) Intersect(o Rect) (Rect, bool) {
	out := Rect{
		MinX: math.Max(r.MinX, o.MinX),
		MinY: math.Max(r.MinY, o.MinY),
		MaxX: math.Min(r.MaxX, o.MaxX),
		MaxY: math.Min(r.MaxY, o.MaxY),
	}
	if out.MinX > out.MaxX || out.MinY > out.MaxY {
		return Rect{}, false
	}
	return out, true
}

// Clamp returns p moved to the closest point inside r.
func (r Rect) Clamp(p Point) Point {
	return Point{
		X: math.Min(math.Max(p.X, r.MinX), r.MaxX),
		Y: math.Min(math.Max(p.Y, r.MinY), r.MaxY),
	}
}

// DistToPoint returns the distance from the rectangle to p (0 if inside).
func (r Rect) DistToPoint(p Point) float64 {
	return p.Dist(r.Clamp(p))
}

// Expand returns r grown by d on every side, so that
// r.DistToPoint(p) <= d implies r.Expand(d).Contains(p). Negative d
// shrinks the rectangle (and may invert it).
func (r Rect) Expand(d float64) Rect {
	return Rect{MinX: r.MinX - d, MinY: r.MinY - d, MaxX: r.MaxX + d, MaxY: r.MaxY + d}
}

// String implements fmt.Stringer.
func (r Rect) String() string {
	return fmt.Sprintf("[%.1f,%.1f]x[%.1f,%.1f]", r.MinX, r.MaxX, r.MinY, r.MaxY)
}

// Cell is an integer grid cell index.
type Cell struct {
	I, J int
}

// Grid discretizes a rectangle into unit-square-like cells. Cols x Rows
// cells cover Bounds; each cell has size Bounds.Width()/Cols by
// Bounds.Height()/Rows. The paper's grids are unit cells (e.g. 80x80 cells
// over an 80x80 region), which corresponds to Cols=80, Rows=80.
type Grid struct {
	Bounds Rect
	Cols   int
	Rows   int
}

// NewUnitGrid builds a grid of 1x1 cells over [0,cols]x[0,rows].
func NewUnitGrid(cols, rows int) Grid {
	return Grid{Bounds: NewRect(0, 0, float64(cols), float64(rows)), Cols: cols, Rows: rows}
}

// CellSize returns the width and height of one cell.
func (g Grid) CellSize() (w, h float64) {
	return g.Bounds.Width() / float64(g.Cols), g.Bounds.Height() / float64(g.Rows)
}

// CellOf returns the cell containing p, clamped to the grid.
func (g Grid) CellOf(p Point) Cell {
	w, h := g.CellSize()
	i := int(math.Floor((p.X - g.Bounds.MinX) / w))
	j := int(math.Floor((p.Y - g.Bounds.MinY) / h))
	if i < 0 {
		i = 0
	}
	if i >= g.Cols {
		i = g.Cols - 1
	}
	if j < 0 {
		j = 0
	}
	if j >= g.Rows {
		j = g.Rows - 1
	}
	return Cell{I: i, J: j}
}

// CellCenter returns the center point of cell c.
func (g Grid) CellCenter(c Cell) Point {
	w, h := g.CellSize()
	return Point{
		X: g.Bounds.MinX + (float64(c.I)+0.5)*w,
		Y: g.Bounds.MinY + (float64(c.J)+0.5)*h,
	}
}

// NumCells returns the total number of cells.
func (g Grid) NumCells() int { return g.Cols * g.Rows }

// CellIndex returns a dense index for c in row-major order.
func (g Grid) CellIndex(c Cell) int { return c.J*g.Cols + c.I }

// CellAt is the inverse of CellIndex.
func (g Grid) CellAt(idx int) Cell { return Cell{I: idx % g.Cols, J: idx / g.Cols} }

// CellsIn returns the centers of all cells whose center lies inside r.
func (g Grid) CellsIn(r Rect) []Point {
	var out []Point
	w, h := g.CellSize()
	i0 := int(math.Floor((r.MinX - g.Bounds.MinX) / w))
	i1 := int(math.Ceil((r.MaxX - g.Bounds.MinX) / w))
	j0 := int(math.Floor((r.MinY - g.Bounds.MinY) / h))
	j1 := int(math.Ceil((r.MaxY - g.Bounds.MinY) / h))
	if i0 < 0 {
		i0 = 0
	}
	if j0 < 0 {
		j0 = 0
	}
	if i1 > g.Cols {
		i1 = g.Cols
	}
	if j1 > g.Rows {
		j1 = g.Rows
	}
	for j := j0; j < j1; j++ {
		for i := i0; i < i1; i++ {
			c := g.CellCenter(Cell{I: i, J: j})
			if r.Contains(c) {
				out = append(out, c)
			}
		}
	}
	return out
}

// CoverageFraction returns the fraction of grid-cell centers inside region
// that are within radius of at least one of the given centers. It is the
// coverage function G_q used by the spatial-aggregate valuation (Eq. 5):
// a simple coverage that "calculates the fraction of the area covered by
// the sensors".
func (g Grid) CoverageFraction(region Rect, centers []Point, radius float64) float64 {
	cells := g.CellsIn(region)
	if len(cells) == 0 {
		return 0
	}
	r2 := radius * radius
	covered := 0
	for _, c := range cells {
		for _, s := range centers {
			if c.Dist2(s) <= r2 {
				covered++
				break
			}
		}
	}
	return float64(covered) / float64(len(cells))
}

// Trajectory is an ordered sequence of waypoints. Queries over trajectories
// (§2.2.3) treat the trajectory as a sequence of sample points; a trajectory
// query is "a special case of spatial aggregate query in which instead of
// providing a region of interest, a trajectory is specified".
type Trajectory struct {
	Waypoints []Point
}

// Length returns the total polyline length.
func (t Trajectory) Length() float64 {
	var sum float64
	for i := 1; i < len(t.Waypoints); i++ {
		sum += t.Waypoints[i-1].Dist(t.Waypoints[i])
	}
	return sum
}

// SamplePoints returns points spaced at most step apart along the
// trajectory, always including the first and last waypoint.
func (t Trajectory) SamplePoints(step float64) []Point {
	if len(t.Waypoints) == 0 {
		return nil
	}
	if step <= 0 {
		step = 1
	}
	out := []Point{t.Waypoints[0]}
	for i := 1; i < len(t.Waypoints); i++ {
		a, b := t.Waypoints[i-1], t.Waypoints[i]
		d := a.Dist(b)
		n := int(math.Ceil(d / step))
		for k := 1; k <= n; k++ {
			f := float64(k) / float64(n)
			out = append(out, Point{a.X + (b.X-a.X)*f, a.Y + (b.Y-a.Y)*f})
		}
	}
	return out
}

// BoundingRect returns the smallest rectangle containing all waypoints.
func (t Trajectory) BoundingRect() Rect {
	if len(t.Waypoints) == 0 {
		return Rect{}
	}
	r := Rect{MinX: math.Inf(1), MinY: math.Inf(1), MaxX: math.Inf(-1), MaxY: math.Inf(-1)}
	for _, p := range t.Waypoints {
		r.MinX = math.Min(r.MinX, p.X)
		r.MinY = math.Min(r.MinY, p.Y)
		r.MaxX = math.Max(r.MaxX, p.X)
		r.MaxY = math.Max(r.MaxY, p.Y)
	}
	return r
}

// CoverageFractionOfPoints returns the fraction of the given target points
// within radius of at least one center. Used for trajectory queries, where
// the "area" is the sampled polyline.
func CoverageFractionOfPoints(targets, centers []Point, radius float64) float64 {
	if len(targets) == 0 {
		return 0
	}
	r2 := radius * radius
	covered := 0
	for _, t := range targets {
		for _, s := range centers {
			if t.Dist2(s) <= r2 {
				covered++
				break
			}
		}
	}
	return float64(covered) / float64(len(targets))
}
