// Package analysis is a self-contained miniature of the
// golang.org/x/tools/go/analysis framework: an Analyzer runs over one
// type-checked package (a Pass) and reports Diagnostics. The repo's
// custom analyzers (internal/analysis/passes) statically enforce the
// determinism invariants that the runtime golden-equivalence tests can
// only catch probabilistically — float accumulation in map-iteration
// order, wall-clock reads in the slot path, non-exhaustive switches over
// the sealed Spec interface, invalid metric names, and ps sentinels
// missing from the wire ErrorCode table.
//
// The module is deliberately dependency-free (no go.sum), so this
// package mirrors the x/tools API shape on the standard library alone:
// go/parser + go/types with the "source" importer resolve the whole
// module, and `go list -json` (shelled out, exactly as go/packages does)
// enumerates build units. If the module ever grows a vendored x/tools,
// the analyzers port over mechanically: Analyzer, Pass and Diagnostic
// carry the same meaning here as there.
//
// Suppression: a diagnostic is silenced by a directive comment
//
//	//pslint:ignore <analyzer> <reason>
//
// on the flagged line or on the line immediately above it. The reason is
// mandatory, and directives that silence nothing are themselves reported
// (see ignore.go) so stale annotations cannot accumulate.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// Analyzer is one static check. Run inspects a single type-checked
// package via the Pass and reports findings with Pass.Reportf.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in
	// //pslint:ignore directives. Lower-case, no spaces.
	Name string
	// Doc is a one-paragraph description of the invariant enforced.
	Doc string
	// Run performs the check. A returned error aborts the whole run
	// (analyzer bug or unloadable input), it is not a finding.
	Run func(*Pass) error
}

// Pass carries one type-checked package through one analyzer.
type Pass struct {
	// Analyzer is the check being run.
	Analyzer *Analyzer
	// Fset maps token.Pos to file positions for every file in the pass.
	Fset *token.FileSet
	// Files are the parsed source files of the package, test files
	// included (the determinism audit covers golden tests too).
	Files []*ast.File
	// Pkg is the type-checked package. Its Path is the import path the
	// loader assigned — analyzers scope themselves by it.
	Pkg *types.Package
	// TypesInfo holds the type-checker's facts for Files.
	TypesInfo *types.Info

	diags *[]Diagnostic
}

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Pos:      pos,
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// Diagnostic is one finding: a position, the analyzer that produced it,
// and a human-readable message.
type Diagnostic struct {
	Pos      token.Pos
	Analyzer string
	Message  string
}

// Run applies the analyzers to one loaded package and returns the
// surviving diagnostics: findings not silenced by a //pslint:ignore
// directive, plus one diagnostic (analyzer "pslint") for every malformed
// or unused directive in the package. This is the single entry point
// shared by the cmd/pslint driver and the analysistest harness, so
// suppression behaves identically under test and in CI.
//
// known is the set of analyzer names directives may legally reference —
// the full suite, not just the analyzers running now, so that a
// directive for an analyzer excluded by -only (or by a single-analyzer
// test) is not misreported as a typo. Nil defaults to the names of the
// analyzers being run.
func Run(pkg *Package, analyzers []*Analyzer, known map[string]bool) ([]Diagnostic, error) {
	var raw []Diagnostic
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer:  a,
			Fset:      pkg.Fset,
			Files:     pkg.Files,
			Pkg:       pkg.Types,
			TypesInfo: pkg.Info,
			diags:     &raw,
		}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("%s: %s: %w", a.Name, pkg.Path, err)
		}
	}
	if known == nil {
		known = make(map[string]bool, len(analyzers))
		for _, a := range analyzers {
			known[a.Name] = true
		}
	}
	ig := parseIgnores(pkg.Fset, pkg.Files, known)
	diags := ig.filter(pkg.Fset, raw)
	diags = append(diags, ig.problems()...)
	SortDiagnostics(pkg.Fset, diags)
	return diags, nil
}

// SortDiagnostics orders diagnostics by file, line, column, analyzer —
// the order cmd/pslint prints and analysistest compares in.
func SortDiagnostics(fset *token.FileSet, diags []Diagnostic) {
	sort.SliceStable(diags, func(i, j int) bool {
		pi, pj := fset.Position(diags[i].Pos), fset.Position(diags[j].Pos)
		if pi.Filename != pj.Filename {
			return pi.Filename < pj.Filename
		}
		if pi.Line != pj.Line {
			return pi.Line < pj.Line
		}
		if pi.Column != pj.Column {
			return pi.Column < pj.Column
		}
		return diags[i].Analyzer < diags[j].Analyzer
	})
}
