package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one loaded, type-checked build unit.
type Package struct {
	// Path is the import path the unit was checked under. Analyzers
	// scope themselves by it (see passes.DeterministicPkgs).
	Path  string
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// Loader parses and type-checks packages. All packages loaded through
// one Loader share a FileSet and an importer, so cross-package type
// identities (e.g. the ps.Spec interface seen from wire) are consistent
// within a load and imported packages are type-checked at most once.
type Loader struct {
	fset *token.FileSet
	imp  types.Importer
}

// NewLoader returns a Loader backed by the standard library's source
// importer, which resolves both intra-module and stdlib imports by
// type-checking them from source (the module has no external deps, so
// that closure is complete).
func NewLoader() *Loader {
	fset := token.NewFileSet()
	return &Loader{fset: fset, imp: importer.ForCompiler(fset, "source", nil)}
}

// Fset returns the loader's shared FileSet.
func (l *Loader) Fset() *token.FileSet { return l.fset }

// LoadFiles parses the named files and type-checks them as one package
// under the given import path. The path is the caller's claim, not a
// resolved location — the analysistest harness uses that to check
// fixtures under the package paths the analyzers scope by.
func (l *Loader) LoadFiles(pkgPath string, filenames []string) (*Package, error) {
	var files []*ast.File
	for _, fn := range filenames {
		f, err := parser.ParseFile(l.fset, fn, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("analysis: no files for %s", pkgPath)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
	}
	conf := types.Config{Importer: l.imp}
	tpkg, err := conf.Check(pkgPath, l.fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("analysis: type-checking %s: %w", pkgPath, err)
	}
	return &Package{Path: pkgPath, Fset: l.fset, Files: files, Types: tpkg, Info: info}, nil
}

// LoadDir loads every .go file in dir (sorted by name, including files
// with a _test.go suffix — fixtures exercise the test-file allowlists)
// as one package under pkgPath.
func (l *Loader) LoadDir(pkgPath, dir string) (*Package, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var filenames []string
	for _, e := range ents {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
			filenames = append(filenames, filepath.Join(dir, e.Name()))
		}
	}
	sort.Strings(filenames)
	return l.LoadFiles(pkgPath, filenames)
}

// listedPackage is the subset of `go list -json` output the driver
// needs to assemble build units.
type listedPackage struct {
	ImportPath   string
	Dir          string
	GoFiles      []string
	TestGoFiles  []string
	XTestGoFiles []string
	Incomplete   bool
}

// goList shells out to `go list -json` for the patterns, exactly as
// go/packages does, returning one entry per matched package.
func goList(patterns []string) ([]listedPackage, error) {
	args := append([]string{"list", "-json"}, patterns...)
	cmd := exec.Command("go", args...)
	var out, errb bytes.Buffer
	cmd.Stdout = &out
	cmd.Stderr = &errb
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("go list %s: %v\n%s", strings.Join(patterns, " "), err, errb.String())
	}
	var pkgs []listedPackage
	dec := json.NewDecoder(&out)
	for dec.More() {
		var p listedPackage
		if err := dec.Decode(&p); err != nil {
			return nil, fmt.Errorf("go list: decoding output: %v", err)
		}
		pkgs = append(pkgs, p)
	}
	return pkgs, nil
}

// RunPatterns loads every package matching the go-list patterns and runs
// the analyzers over each, returning all surviving diagnostics in
// position order. Each listed package contributes up to two units: its
// Go files plus in-package test files (checked under the import path),
// and the external test package when present (checked under path+"_test").
// Test files are included deliberately — the floatorder invariant covers
// golden-test expectation building, which is how PR 3's map-order float
// bug originally slipped in. known is the full directive-name set passed
// through to Run.
func RunPatterns(patterns []string, analyzers []*Analyzer, known map[string]bool) ([]Diagnostic, *token.FileSet, error) {
	listed, err := goList(patterns)
	if err != nil {
		return nil, nil, err
	}
	l := NewLoader()
	var all []Diagnostic
	for _, lp := range listed {
		if lp.Incomplete {
			return nil, nil, fmt.Errorf("analysis: package %s did not load cleanly", lp.ImportPath)
		}
		units := []struct {
			path  string
			files []string
		}{
			{lp.ImportPath, join(lp.Dir, lp.GoFiles, lp.TestGoFiles)},
			{lp.ImportPath + "_test", join(lp.Dir, lp.XTestGoFiles)},
		}
		for _, u := range units {
			if len(u.files) == 0 {
				continue
			}
			pkg, err := l.LoadFiles(u.path, u.files)
			if err != nil {
				return nil, nil, err
			}
			diags, err := Run(pkg, analyzers, known)
			if err != nil {
				return nil, nil, err
			}
			all = append(all, diags...)
		}
	}
	SortDiagnostics(l.fset, all)
	return all, l.fset, nil
}

func join(dir string, lists ...[]string) []string {
	var out []string
	for _, list := range lists {
		for _, f := range list {
			out = append(out, filepath.Join(dir, f))
		}
	}
	return out
}
