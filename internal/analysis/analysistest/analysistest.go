// Package analysistest runs one pslint analyzer over a directory of
// fixture files and checks its diagnostics against `// want "regexp"`
// comments, mirroring golang.org/x/tools/go/analysis/analysistest on
// the standard library alone.
//
// A fixture directory is loaded as a single package under a caller-
// chosen import path — that is how fixtures land inside (or outside)
// the deterministic-package scope the analyzers key on. Every line may
// carry one or more expectations:
//
//	sum += v // want "float \\+= accumulation"
//
// Each expectation must match exactly one diagnostic reported on its
// line (analyzer message matched as an unanchored regexp), and every
// diagnostic must be claimed by an expectation. Diagnostics flow
// through analysis.Run, so //pslint:ignore suppression and the
// unused/malformed-directive findings behave exactly as under
// cmd/pslint.
package analysistest

import (
	"fmt"
	"regexp"
	"strconv"
	"testing"

	"repro/internal/analysis"
	"repro/internal/analysis/passes"
)

// wantRE matches the expectation list of a comment: the word "want"
// followed by one or more double-quoted regexps.
var wantRE = regexp.MustCompile(`want((?:\s+"(?:[^"\\]|\\.)*")+)`)

// quotedRE picks the individual quoted regexps out of wantRE's capture.
var quotedRE = regexp.MustCompile(`"((?:[^"\\]|\\.)*)"`)

// Run loads dir as one package under pkgPath, applies the analyzer, and
// reports any mismatch between its diagnostics and the fixture's
// // want expectations as test errors.
func Run(t *testing.T, dir, pkgPath string, a *analysis.Analyzer) {
	t.Helper()
	pkg, err := analysis.NewLoader().LoadDir(pkgPath, dir)
	if err != nil {
		t.Fatalf("loading %s as %s: %v", dir, pkgPath, err)
	}
	// Directives are validated against the full suite, exactly as under
	// cmd/pslint — a fixture directive naming a sibling analyzer is
	// "unused" here, not "unknown".
	known := map[string]bool{}
	for _, suite := range passes.All() {
		known[suite.Name] = true
	}
	diags, err := analysis.Run(pkg, []*analysis.Analyzer{a}, known)
	if err != nil {
		t.Fatalf("running %s on %s: %v", a.Name, pkgPath, err)
	}

	type key struct {
		file string
		line int
	}
	expected := map[key][]*regexp.Regexp{}
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRE.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				k := key{pos.Filename, pos.Line}
				for _, q := range quotedRE.FindAllStringSubmatch(m[1], -1) {
					// Unquote first: `\\+` in the fixture comment is the
					// regexp `\+`, exactly as it would read in a string
					// literal.
					unquoted, err := strconv.Unquote(q[0])
					if err != nil {
						t.Fatalf("%s:%d: bad want string %s: %v", pos.Filename, pos.Line, q[0], err)
					}
					re, err := regexp.Compile(unquoted)
					if err != nil {
						t.Fatalf("%s:%d: bad want regexp %q: %v", pos.Filename, pos.Line, unquoted, err)
					}
					expected[k] = append(expected[k], re)
				}
			}
		}
	}

	unmatched := map[key][]string{}
	for _, d := range diags {
		pos := pkg.Fset.Position(d.Pos)
		k := key{pos.Filename, pos.Line}
		msg := fmt.Sprintf("%s: %s", d.Analyzer, d.Message)
		claimed := false
		for i, re := range expected[k] {
			if re.MatchString(msg) {
				expected[k] = append(expected[k][:i], expected[k][i+1:]...)
				claimed = true
				break
			}
		}
		if !claimed {
			unmatched[k] = append(unmatched[k], msg)
		}
	}
	for k, msgs := range unmatched {
		for _, msg := range msgs {
			t.Errorf("%s:%d: unexpected diagnostic: %s", k.file, k.line, msg)
		}
	}
	for k, res := range expected {
		for _, re := range res {
			t.Errorf("%s:%d: expected diagnostic matching %q, got none", k.file, k.line, re)
		}
	}
}
