package analysis

import (
	"go/ast"
	"go/token"
	"strings"
)

// ignoreDirective is one parsed //pslint:ignore comment.
type ignoreDirective struct {
	pos      token.Pos // of the comment
	line     int       // line the comment sits on
	file     string
	analyzer string
	reason   string
	bad      string // non-empty if malformed (the problem description)
	used     bool
}

// ignoreSet holds every directive of one package, indexed for the
// same-line / previous-line lookup filter applies.
type ignoreSet struct {
	byLoc map[string]map[int][]*ignoreDirective // file -> line -> directives
	all   []*ignoreDirective
}

const ignorePrefix = "pslint:ignore"

// parseIgnores extracts //pslint:ignore directives from every comment in
// the files. Directives must name a known analyzer and give a non-empty
// reason; anything else is recorded as malformed and surfaces as a
// diagnostic from problems(). Text after a second "//" on the directive
// line is dropped, so fixtures can carry trailing `// want` expectations.
func parseIgnores(fset *token.FileSet, files []*ast.File, known map[string]bool) *ignoreSet {
	set := &ignoreSet{byLoc: map[string]map[int][]*ignoreDirective{}}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text, ok := strings.CutPrefix(c.Text, "//")
				if !ok {
					continue // /* */ comments cannot carry directives
				}
				text = strings.TrimSpace(text)
				if !strings.HasPrefix(text, ignorePrefix) {
					continue
				}
				rest := strings.TrimSpace(strings.TrimPrefix(text, ignorePrefix))
				if i := strings.Index(rest, "//"); i >= 0 {
					rest = strings.TrimSpace(rest[:i])
				}
				pos := fset.Position(c.Pos())
				d := &ignoreDirective{pos: c.Pos(), line: pos.Line, file: pos.Filename}
				name, reason, _ := strings.Cut(rest, " ")
				d.analyzer, d.reason = name, strings.TrimSpace(reason)
				switch {
				case d.analyzer == "":
					d.bad = "missing analyzer name"
				case !known[d.analyzer]:
					d.bad = "unknown analyzer " + d.analyzer
				case d.reason == "":
					d.bad = "missing reason (syntax: //pslint:ignore <analyzer> <reason>)"
				}
				byLine, ok := set.byLoc[d.file]
				if !ok {
					byLine = map[int][]*ignoreDirective{}
					set.byLoc[d.file] = byLine
				}
				byLine[d.line] = append(byLine[d.line], d)
				set.all = append(set.all, d)
			}
		}
	}
	return set
}

// filter drops diagnostics silenced by a well-formed directive for the
// same analyzer on the diagnostic's line or the line immediately above,
// marking those directives used.
func (s *ignoreSet) filter(fset *token.FileSet, diags []Diagnostic) []Diagnostic {
	var kept []Diagnostic
	for _, d := range diags {
		pos := fset.Position(d.Pos)
		suppressed := false
		for _, line := range []int{pos.Line, pos.Line - 1} {
			for _, dir := range s.byLoc[pos.Filename][line] {
				if dir.bad == "" && dir.analyzer == d.Analyzer {
					dir.used = true
					suppressed = true
				}
			}
		}
		if !suppressed {
			kept = append(kept, d)
		}
	}
	return kept
}

// problems reports malformed directives and well-formed directives that
// silenced nothing, as diagnostics from the pseudo-analyzer "pslint".
// An unused ignore means the invariant it excused is gone — the
// annotation must go too, or it will silently excuse a future violation.
func (s *ignoreSet) problems() []Diagnostic {
	var out []Diagnostic
	for _, d := range s.all {
		switch {
		case d.bad != "":
			out = append(out, Diagnostic{Pos: d.pos, Analyzer: "pslint", Message: "malformed pslint:ignore directive: " + d.bad})
		case !d.used:
			out = append(out, Diagnostic{Pos: d.pos, Analyzer: "pslint", Message: "unused pslint:ignore directive for " + d.analyzer})
		}
	}
	return out
}
