package analysis_test

import (
	"testing"

	"repro/internal/analysis"
	"repro/internal/analysis/passes"
)

// TestRunPatternsCleanPackage drives the real loader pipeline —
// `go list -json`, source-importer type-checking, analyzer run,
// directive filtering — over a deterministic package that must stay
// clean. It is the in-process counterpart of CI's
// `go run ./cmd/pslint ./...` gate.
func TestRunPatternsCleanPackage(t *testing.T) {
	if testing.Short() {
		t.Skip("shells out to go list and type-checks from source")
	}
	diags, fset, err := analysis.RunPatterns([]string{"repro/internal/linalg"}, passes.All(), nil)
	if err != nil {
		t.Fatalf("RunPatterns: %v", err)
	}
	for _, d := range diags {
		t.Errorf("unexpected finding: %s: %s: %s", fset.Position(d.Pos), d.Analyzer, d.Message)
	}
}
