package engine

import "time"

// slotpath.go is NOT on the engine-shell allowlist, so the same calls
// are flagged here even though the package path is the root package.

func slotClock() time.Time {
	return time.Now() // want "time.Now reads the wall clock"
}
