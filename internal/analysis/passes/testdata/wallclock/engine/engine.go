// Package engine is the wallclock allowlist fixture, loaded under the
// root package path "repro". This file is named engine.go, which is on
// the audited engine-shell allowlist: wall time here feeds metrics
// only, so nothing is flagged.
package engine

import "time"

func ingestLatency(f func()) time.Duration {
	start := time.Now()
	f()
	return time.Since(start)
}
