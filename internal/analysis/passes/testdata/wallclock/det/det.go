// Package det is a wallclock fixture loaded under a deterministic
// package path (repro/internal/gp).
package det

import (
	"math/rand"
	"time"
)

func now() time.Time {
	return time.Now() // want "time.Now reads the wall clock"
}

func elapsed(start time.Time) time.Duration {
	return time.Since(start) // want "time.Since reads the wall clock"
}

func deadline(t time.Time) time.Duration {
	return time.Until(t) // want "time.Until reads the wall clock"
}

func roll() int {
	return rand.Intn(6) // want "global rand.Intn is auto-seeded and nondeterministic"
}

func sample() float64 {
	return rand.Float64() // want "global rand.Float64 is auto-seeded and nondeterministic"
}

// seeded uses math/rand constructors, which build deterministic
// generators from an explicit seed; only the global state is banned.
func seeded() *rand.Rand {
	return rand.New(rand.NewSource(42))
}

// method calls on a seeded generator are fine — that is what
// internal/rng hands out.
func drawn(r *rand.Rand) float64 {
	return r.Float64()
}

// pure time arithmetic does not read the clock.
func shifted(t time.Time) time.Time {
	return t.Add(time.Second)
}
