package det

import "time"

// _test.go files are exempt: tests may time themselves.

func timeIt() time.Duration {
	start := time.Now()
	return time.Since(start)
}
