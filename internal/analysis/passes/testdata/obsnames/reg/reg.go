// Package reg is the obsnames fixture: metric registrations with names
// and labels that break the obs naming conventions.
package reg

import "repro/internal/obs"

const goodName = "ps_requests_total"
const badName = "ps_requests" // counters need _total

func register(r *obs.Registry) {
	r.Counter("ps_slots_total", "good")
	r.Counter(goodName, "constants are checked too")
	r.Counter("bad-name_total", "h") // want "not a valid Prometheus metric name"
	r.Counter("requests_total", "h") // want "missing ps_ prefix"
	r.Counter(badName, "h")          // want "counter without _total suffix"
	r.Gauge("ps_depth_total", "h")   // want "gauge with _total suffix"
	r.Gauge("ps_queue_depth", "good")
	r.Histogram("ps_latency", "h", nil) // want "histogram without a unit suffix"
	r.Histogram("ps_latency_seconds", "good", nil)
	r.CounterVec("ps_http_total", "good", "route", "method")
	r.CounterVec("ps_rpc_total", "h", "route", "__reserved") // want "invalid label name \"__reserved\""
	r.HistogramVec("ps_rpc_seconds", "h", nil, "Route")      // want "invalid label name \"Route\""
}

// computed names cannot be checked statically; Registry.Validate (and
// the CI naming-lint test) still covers them at runtime.
func dynamic(r *obs.Registry, name string) {
	r.Counter(name, "h")
}
