// Package spec is the kindswitch fixture: switches over the sealed
// ps.Spec interface and the ps.QueryKind enum, exhaustive and not.
package spec

import ps "repro"

// incomplete omits TrajectorySpec; the default arm does not excuse it.
func incomplete(s ps.Spec) string {
	switch s.(type) { // want "type switch over the sealed ps.Spec interface is missing TrajectorySpec"
	case ps.PointSpec:
		return "point"
	case ps.MultiPointSpec:
		return "multipoint"
	case ps.AggregateSpec:
		return "aggregate"
	case ps.LocationMonitoringSpec:
		return "locmon"
	case ps.RegionMonitoringSpec:
		return "regmon"
	case ps.EventDetectionSpec:
		return "event"
	case ps.RegionEventSpec:
		return "regionevent"
	default:
		return "?"
	}
}

// complete names every implementation, with a bound variable and a
// pointer case thrown in: *T covers T.
func complete(s ps.Spec) string {
	switch v := s.(type) {
	case ps.PointSpec:
		return v.ID
	case *ps.MultiPointSpec:
		return v.ID
	case ps.AggregateSpec:
		return v.ID
	case ps.TrajectorySpec:
		return v.ID
	case ps.LocationMonitoringSpec:
		return v.ID
	case ps.RegionMonitoringSpec:
		return v.ID
	case ps.EventDetectionSpec:
		return v.ID
	case ps.RegionEventSpec:
		return v.ID
	}
	return ""
}

// otherInterface switches over a different interface entirely; the
// analyzer only cares about ps.Spec.
func otherInterface(v any) bool {
	switch v.(type) {
	case error:
		return true
	}
	return false
}

// missingKinds omits two QueryKind constants.
func missingKinds(k ps.QueryKind) bool {
	switch k { // want "switch over ps.QueryKind is missing KindEventDetection, KindRegionEvent"
	case ps.KindPoint, ps.KindMultiPoint, ps.KindAggregate, ps.KindTrajectory:
		return false
	case ps.KindLocationMonitoring, ps.KindRegionMonitoring:
		return true
	}
	return false
}

// allKinds is exhaustive; the default arm is allowed on top.
func allKinds(k ps.QueryKind) bool {
	switch k {
	case ps.KindPoint, ps.KindMultiPoint, ps.KindAggregate, ps.KindTrajectory:
		return false
	case ps.KindLocationMonitoring, ps.KindRegionMonitoring, ps.KindEventDetection, ps.KindRegionEvent:
		return true
	default:
		return false
	}
}

// notAKindSwitch has an untyped tag; ignored.
func notAKindSwitch(n int) bool {
	switch n {
	case 1:
		return true
	}
	return false
}
