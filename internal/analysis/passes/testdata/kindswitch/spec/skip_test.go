package spec

import ps "repro"

// Test files are exempt from kindswitch: a test may legitimately probe
// a subset of kinds.

func partial(s ps.Spec) bool {
	switch s.(type) {
	case ps.PointSpec:
		return true
	}
	return false
}
