// Package det exercises the //pslint:ignore directive: suppression on
// the same line and the preceding line, unused directives, and
// malformed ones. Loaded under a deterministic path so floatorder has
// something to suppress.
package det

func suppressedAbove(m map[string]float64) float64 {
	var sum float64
	for _, v := range m {
		//pslint:ignore floatorder reviewed: feeds a tolerance-compared assertion only
		sum += v
	}
	return sum
}

func suppressedTrailing(m map[string]float64) float64 {
	var sum float64
	for _, v := range m {
		sum += v //pslint:ignore floatorder reviewed: ditto
	}
	return sum
}

func unusedDirective(x float64) float64 {
	//pslint:ignore floatorder nothing to silence here // want "unused pslint:ignore directive for floatorder"
	return x
}

func wrongAnalyzer(m map[string]float64) float64 {
	var sum float64
	for _, v := range m {
		//pslint:ignore wallclock wrong analyzer, does not silence floatorder // want "unused pslint:ignore directive for wallclock"
		sum += v // want "float \\+= accumulation in map-iteration order"
	}
	return sum
}

func missingReason(m map[string]float64) float64 {
	var sum float64
	for _, v := range m {
		//pslint:ignore floatorder // want "malformed pslint:ignore directive: missing reason"
		sum += v // want "float \\+= accumulation in map-iteration order"
	}
	return sum
}

func unknownAnalyzer(m map[string]float64) float64 {
	var sum float64
	for _, v := range m {
		//pslint:ignore nosuchcheck why not // want "malformed pslint:ignore directive: unknown analyzer nosuchcheck"
		sum += v // want "float \\+= accumulation in map-iteration order"
	}
	return sum
}
