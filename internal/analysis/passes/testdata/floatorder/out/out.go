// Package out is the floatorder negative fixture: identical code to the
// det fixture, but loaded under repro/serve — outside the deterministic
// package set — so nothing is flagged.
package out

func mapSum(m map[string]float64) float64 {
	var sum float64
	for _, v := range m {
		sum += v
	}
	return sum
}
