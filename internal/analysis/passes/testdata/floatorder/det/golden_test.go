package det

// Test files are NOT exempt from floatorder: golden expectations built
// in map order corrupt the equivalence gates from the expectation side.

func expectedWelfare(m map[string]float64) float64 {
	var want float64
	for _, v := range m {
		want += v // want "float \\+= accumulation in map-iteration order"
	}
	return want
}
