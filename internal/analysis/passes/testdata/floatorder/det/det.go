// Package det is a floatorder fixture loaded under a deterministic
// package path (repro/internal/core).
package det

import "sort"

func mapSum(m map[string]float64) float64 {
	var sum float64
	for _, v := range m {
		sum += v // want "float \\+= accumulation in map-iteration order"
	}
	return sum
}

func mapSumLonghand(m map[string]float64) float64 {
	var sum float64
	for _, v := range m {
		sum = sum + v // want "float \\+= accumulation in map-iteration order"
	}
	return sum
}

func mapProduct(m map[string]float64) float64 {
	prod := 1.0
	for _, v := range m {
		prod *= v // want "float \\*= accumulation in map-iteration order"
	}
	return prod
}

func chanFanIn(ch chan float64) float64 {
	var sum float64
	for v := range ch {
		sum += v // want "float \\+= accumulation in chan-iteration order"
	}
	return sum
}

func structField(m map[string]float64) float64 {
	var acc struct{ total float64 }
	for _, v := range m {
		acc.total += v // want "float \\+= accumulation in map-iteration order"
	}
	return acc.total
}

// sortedKeys is the sanctioned fix: iterate a sorted key slice. The
// range is over a slice, so nothing is flagged.
func sortedKeys(m map[string]float64) float64 {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var sum float64
	for _, k := range keys {
		sum += m[k]
	}
	return sum
}

// intSum is order-independent: integer addition is associative.
func intSum(m map[string]int) int {
	var sum int
	for _, v := range m {
		sum += v
	}
	return sum
}

// perKey accumulates into an element indexed by the range's own key;
// each key is visited once, so order cannot matter.
func perKey(m map[string]float64, out map[string]float64) {
	for k, v := range m {
		out[k] += v
	}
}

// innerAccumulator is declared inside the loop body: reset every
// iteration, so it is a per-element computation, not a fan-in.
func innerAccumulator(m map[string][]float64, out map[string]float64) {
	for k, vs := range m {
		var s float64
		for _, v := range vs {
			s += v
		}
		out[k] = s
	}
}

// notAnAccumulation assigns a fresh value; no read-modify-write.
func notAnAccumulation(m map[string]float64) float64 {
	var last float64
	for _, v := range m {
		last = v * 2
	}
	return last
}
