// Package missing is the errwire fixture: an errorCodes table that
// drops two sentinels and duplicates a code and a sentinel.
package missing

import ps "repro"

var errorCodes = []struct { // want "errorCodes is missing ps.ErrCanceled, ps.ErrNoGPModel"
	code string
	err  error
}{
	{"empty_query_id", ps.ErrEmptyQueryID},
	{"negative_budget", ps.ErrNegativeBudget},
	{"bad_duration", ps.ErrBadDuration},
	{"bad_trajectory", ps.ErrBadTrajectory},
	{"negative_redundancy", ps.ErrNegativeRedundancy},
	{"negative_samples", ps.ErrNegativeSamples},
	{"queue_full", ps.ErrQueueFull},
	{"queue_full", ps.ErrEngineStopped}, // want "error code \"queue_full\" appears more than once"
	{"duplicate_query_id", ps.ErrDuplicateQueryID},
	{"unknown_query", ps.ErrUnknownQuery},
	{"unknown_query_again", ps.ErrUnknownQuery}, // want "sentinel ps.ErrUnknownQuery appears more than once"
}
