// Package notwire carries the same incomplete table as the missing
// fixture but is loaded under a path other than repro/wire, so the
// errwire analyzer ignores it.
package notwire

import ps "repro"

var errorCodes = []struct {
	code string
	err  error
}{
	{"empty_query_id", ps.ErrEmptyQueryID},
}

var _ = errorCodes
