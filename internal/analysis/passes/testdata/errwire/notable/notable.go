package notable // want "cannot find the errorCodes sentinel<->code table"

import ps "repro"

// The package is loaded as repro/wire but declares no errorCodes table
// at all — the analyzer reports that rather than silently passing.

var sentinel = ps.ErrCanceled
