// Package passes holds the repo's pslint analyzers — the static checks
// that enforce the determinism, clock, exhaustiveness and metrics
// invariants behind the bit-identical-SlotReport guarantee. Each
// analyzer documents the invariant it enforces; DESIGN.md
// ("Determinism invariants & static enforcement") maps invariants to
// analyzers and states the suppression policy.
package passes

import (
	"go/token"
	"path/filepath"
	"strings"

	"repro/internal/analysis"
)

// All returns every pslint analyzer, in the order cmd/pslint runs them.
func All() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		Floatorder,
		Wallclock,
		Kindswitch,
		Obsnames,
		Errwire,
	}
}

// rootPkg is the import path of the root ps package; the sealed Spec
// interface, the QueryKind enum and the Err* sentinels all live there.
const rootPkg = "repro"

// DeterministicPkgs is the set of packages whose slot-path code must be
// bit-reproducible across strategies and (per ROADMAP) cluster nodes:
// the root package (aggregator, specs, sharded execution) and the pure
// selection/valuation kernels it drives. floatorder and wallclock scope
// to this set; serve, cmd/*, psclient and the simulation packages run
// off the slot path and are exempt.
var DeterministicPkgs = map[string]bool{
	rootPkg:                 true,
	"repro/internal/core":   true,
	"repro/internal/gp":     true,
	"repro/internal/query":  true,
	"repro/internal/geo":    true,
	"repro/internal/linalg": true,
}

// deterministic reports whether the pass's package is in the
// deterministic set. External test packages ("repro_test") audit the
// package they test, so the _test suffix is stripped first.
func deterministic(pkgPath string) bool {
	return DeterministicPkgs[strings.TrimSuffix(pkgPath, "_test")]
}

// wallclockAllowedFiles are root-package files exempt from the wallclock
// rule: the concurrent engine shell and sharded-execution orchestrator,
// where wall time feeds only metrics (ingest/publish/lane latency) and
// event timestamps — never selection, payments or anything else that
// reaches a SlotReport's deterministic fields. The exemption is audited
// in DESIGN.md; selection-path files (aggregator.go, spec.go and all of
// internal/core, gp, query, geo, linalg) stay enforced.
var wallclockAllowedFiles = map[string]bool{
	"engine.go":     true,
	"engine_hub.go": true,
	"shard.go":      true,
	// lane.go's time.Now feeds only LanePartial.SelectMs (lane compute
	// wall time, a metric); selection inputs and outputs stay clock-free.
	"lane.go": true,
}

// isTestFile reports whether pos sits in a _test.go file.
func isTestFile(fset *token.FileSet, pos token.Pos) bool {
	return strings.HasSuffix(fset.Position(pos).Filename, "_test.go")
}

// baseName returns the file's base name for pos.
func baseName(fset *token.FileSet, pos token.Pos) string {
	return filepath.Base(fset.Position(pos).Filename)
}
