package passes

import (
	"go/ast"
	"go/constant"
	"go/types"

	"repro/internal/analysis"
	"repro/internal/obs"
)

// Obsnames applies the obs metric-naming lint (ps_ prefix, snake_case,
// _total on counters, unit suffixes on histograms, label grammar) to
// the name and label arguments of obs.Registry constructor calls at
// analysis time. The registry enforces the same rules at registration
// (Registry.Validate, plus the CI naming-lint test over the full
// registry), but those fire when the process starts; a constant name is
// checkable the moment it is written, so a typo breaks the build
// instead of the deploy. Non-constant names stay a runtime concern.
// Runs over every package — metrics are registered from the engine, the
// hub and the serve layer alike. Test files are exempt: the obs tests
// register deliberately bad names to exercise Validate itself, and a
// test registry never reaches a scrape endpoint.
var Obsnames = &analysis.Analyzer{
	Name: "obsnames",
	Doc:  "metric-name literals passed to obs registry constructors must pass the obs naming lint",
	Run:  runObsnames,
}

// obsConstructors maps Registry method names to the metric kind they
// register and the index of the first label-name argument (-1 when the
// method takes no labels).
var obsConstructors = map[string]struct {
	kind       obs.Kind
	labelsFrom int
}{
	"Counter":      {obs.KindCounter, -1},
	"Gauge":        {obs.KindGauge, -1},
	"Histogram":    {obs.KindHistogram, -1},
	"CounterVec":   {obs.KindCounter, 2},
	"GaugeVec":     {obs.KindGauge, 2},
	"HistogramVec": {obs.KindHistogram, 3},
}

const obsPkgPath = "repro/internal/obs"

func runObsnames(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		if isTestFile(pass.Fset, f.Pos()) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			fn, ok := pass.TypesInfo.ObjectOf(sel.Sel).(*types.Func)
			if !ok || !isRegistryMethod(fn) {
				return true
			}
			ctor, ok := obsConstructors[fn.Name()]
			if !ok || len(call.Args) == 0 {
				return true
			}
			if name, lit := constString(pass, call.Args[0]); lit {
				if err := obs.ValidateName(name, ctor.kind); err != nil {
					pass.Reportf(call.Args[0].Pos(), "%v", err)
				}
			}
			if ctor.labelsFrom >= 0 {
				for _, arg := range call.Args[min(ctor.labelsFrom, len(call.Args)):] {
					if label, lit := constString(pass, arg); lit {
						if err := obs.ValidateLabel(label); err != nil {
							pass.Reportf(arg.Pos(), "%v", err)
						}
					}
				}
			}
			return true
		})
	}
	return nil
}

// isRegistryMethod reports whether fn is a method on *obs.Registry.
func isRegistryMethod(fn *types.Func) bool {
	recv := fn.Type().(*types.Signature).Recv()
	if recv == nil {
		return false
	}
	t := recv.Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	return isNamed(t, obsPkgPath, "Registry")
}

// constString returns the compile-time string value of expr, if it has
// one (literal or constant expression).
func constString(pass *analysis.Pass, expr ast.Expr) (string, bool) {
	tv, ok := pass.TypesInfo.Types[expr]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
		return "", false
	}
	return constant.StringVal(tv.Value), true
}
