package passes

import (
	"go/ast"
	"go/types"

	"repro/internal/analysis"
)

// Wallclock flags wall-clock reads (time.Now, time.Since, time.Until)
// and global math/rand state in the deterministic packages. The slot
// path must produce the same SlotReport on every run and on every node:
// time comes from the engine's injected clock (internal/engine.Clock)
// and randomness from seeded internal/rng streams. Exemptions, all
// audited in DESIGN.md:
//
//   - _test.go files (tests may time themselves);
//   - the engine shell files engine.go, engine_hub.go and shard.go,
//     where wall time feeds only latency metrics and event timestamps
//     (see wallclockAllowedFiles);
//   - math/rand constructors (rand.New, rand.NewSource, ...), which are
//     seed-deterministic — only the auto-seeded package-level functions
//     (rand.Intn, rand.Float64, ...) are flagged.
var Wallclock = &analysis.Analyzer{
	Name: "wallclock",
	Doc:  "flags time.Now/time.Since and global math/rand in deterministic packages",
	Run:  runWallclock,
}

// wallclockTimeFuncs are the time package functions that read the wall
// clock directly.
var wallclockTimeFuncs = map[string]bool{"Now": true, "Since": true, "Until": true}

// randConstructors are math/rand package-level functions that build
// seeded generators rather than touching the global auto-seeded state.
var randConstructors = map[string]bool{
	"New": true, "NewSource": true, "NewZipf": true,
	"NewPCG": true, "NewChaCha8": true,
}

func runWallclock(pass *analysis.Pass) error {
	if !deterministic(pass.Pkg.Path()) {
		return nil
	}
	for _, f := range pass.Files {
		if isTestFile(pass.Fset, f.Pos()) {
			continue
		}
		if pass.Pkg.Path() == rootPkg && wallclockAllowedFiles[baseName(pass.Fset, f.Pos())] {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			obj := pass.TypesInfo.ObjectOf(sel.Sel)
			fn, ok := obj.(*types.Func)
			if !ok || fn.Pkg() == nil {
				return true
			}
			if recv := fn.Type().(*types.Signature).Recv(); recv != nil {
				return true // methods (e.g. (*rand.Rand).Intn, Time.Sub) are fine
			}
			switch fn.Pkg().Path() {
			case "time":
				if wallclockTimeFuncs[fn.Name()] {
					pass.Reportf(sel.Pos(),
						"time.%s reads the wall clock in a deterministic package; use the injected engine clock — see DESIGN.md \"Determinism invariants\"",
						fn.Name())
				}
			case "math/rand", "math/rand/v2":
				if !randConstructors[fn.Name()] {
					pass.Reportf(sel.Pos(),
						"global %s.%s is auto-seeded and nondeterministic; draw from a seeded internal/rng stream — see DESIGN.md \"Determinism invariants\"",
						fn.Pkg().Name(), fn.Name())
				}
			}
			return true
		})
	}
	return nil
}
