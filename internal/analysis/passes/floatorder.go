package passes

import (
	"go/ast"
	"go/token"
	"go/types"

	"repro/internal/analysis"
)

// Floatorder flags float accumulation whose result depends on
// map-iteration or channel-receive order inside the deterministic
// packages. Floating-point addition is not associative, so
//
//	for _, v := range m { sum += v }
//
// produces different low bits on different runs — exactly the class of
// bug PR 3 fixed by hand in MultiOutcome.TotalPayment, and the one that
// would silently invalidate every golden-equivalence gate if it crept
// into a new mechanism's payment path. The fix is always the same:
// iterate a sorted key slice. Two shapes are order-independent and
// allowed: accumulators declared inside the loop body (per-iteration,
// reset each pass), and accumulation into a map indexed by the range's
// own key (`m[k] += v` inside `for k, v := range src` touches each key
// once, so order cannot matter). Integer accumulation is ignored. Test
// files are checked too: golden expectations built in map order corrupt
// the gates from the other side.
var Floatorder = &analysis.Analyzer{
	Name: "floatorder",
	Doc:  "flags order-dependent float accumulation over maps and channels in deterministic packages",
	Run:  runFloatorder,
}

func runFloatorder(pass *analysis.Pass) error {
	if !deterministic(pass.Pkg.Path()) {
		return nil
	}
	reported := map[token.Pos]bool{} // dedupe under nested map ranges
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			rng, ok := n.(*ast.RangeStmt)
			if !ok {
				return true
			}
			source := rangeOrderSource(pass, rng.X)
			if source == "" {
				return true
			}
			ast.Inspect(rng.Body, func(m ast.Node) bool {
				as, ok := m.(*ast.AssignStmt)
				if !ok {
					return true
				}
				lhs, op := floatAccumulation(pass, as)
				if lhs == nil || reported[as.Pos()] ||
					declaredWithin(pass, lhs, rng) || keyedByRangeKey(pass, lhs, rng) {
					return true
				}
				reported[as.Pos()] = true
				pass.Reportf(as.Pos(),
					"float %s accumulation in %s-iteration order is nondeterministic; iterate a sorted key slice (or accumulate integers) — see DESIGN.md \"Determinism invariants\"",
					op, source)
				return true
			})
			return true
		})
	}
	return nil
}

// keyedByRangeKey reports whether the accumulation target is a map or
// slice element indexed by this range statement's own key variable —
// each key is visited exactly once per loop, so the update order cannot
// affect the result.
func keyedByRangeKey(pass *analysis.Pass, lhs ast.Expr, rng *ast.RangeStmt) bool {
	idx, ok := lhs.(*ast.IndexExpr)
	if !ok {
		return false
	}
	key, ok := rng.Key.(*ast.Ident)
	if !ok || key.Name == "_" {
		return false
	}
	return sameObject(pass, idx.Index, key)
}

// rangeOrderSource classifies the ranged expression: "map" and "chan"
// (goroutine fan-in) have nondeterministic element order, everything
// else (slice, array, string, int, func iterator over a sorted source)
// returns "".
func rangeOrderSource(pass *analysis.Pass, x ast.Expr) string {
	t := pass.TypesInfo.TypeOf(x)
	if t == nil {
		return ""
	}
	switch t.Underlying().(type) {
	case *types.Map:
		return "map"
	case *types.Chan:
		return "chan"
	}
	return ""
}

// floatAccumulation reports whether the assignment accumulates a float
// into its first LHS operand: either `x op= e` or `x = x op e` for a
// commutative-looking op whose result still depends on evaluation order
// in floating point. It returns the accumulated operand and the op's
// spelling, or nil.
func floatAccumulation(pass *analysis.Pass, as *ast.AssignStmt) (ast.Expr, string) {
	if len(as.Lhs) != 1 || len(as.Rhs) != 1 {
		return nil, ""
	}
	lhs := as.Lhs[0]
	if !isFloat(pass.TypesInfo.TypeOf(lhs)) {
		return nil, ""
	}
	switch as.Tok {
	case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN, token.QUO_ASSIGN:
		return lhs, as.Tok.String()
	case token.ASSIGN:
		// x = x + e (or e + x): the same accumulation, spelled long-hand.
		bin, ok := as.Rhs[0].(*ast.BinaryExpr)
		if !ok {
			return nil, ""
		}
		switch bin.Op {
		case token.ADD, token.SUB, token.MUL, token.QUO:
		default:
			return nil, ""
		}
		if sameObject(pass, lhs, bin.X) || sameObject(pass, lhs, bin.Y) {
			return lhs, bin.Op.String() + "="
		}
	}
	return nil, ""
}

func isFloat(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}

// sameObject reports whether a and b are identifiers denoting the same
// declared object.
func sameObject(pass *analysis.Pass, a, b ast.Expr) bool {
	ai, aok := a.(*ast.Ident)
	bi, bok := b.(*ast.Ident)
	if !aok || !bok {
		return false
	}
	ao := pass.TypesInfo.ObjectOf(ai)
	return ao != nil && ao == pass.TypesInfo.ObjectOf(bi)
}

// declaredWithin reports whether the accumulated operand's base object
// is declared inside the range statement — a per-iteration accumulator
// reset each pass, which is order-independent and allowed.
func declaredWithin(pass *analysis.Pass, lhs ast.Expr, rng *ast.RangeStmt) bool {
	base := lhs
	for {
		switch e := base.(type) {
		case *ast.IndexExpr:
			base = e.X
			continue
		case *ast.SelectorExpr:
			base = e.X
			continue
		case *ast.ParenExpr:
			base = e.X
			continue
		case *ast.StarExpr:
			base = e.X
			continue
		}
		break
	}
	id, ok := base.(*ast.Ident)
	if !ok {
		return false
	}
	obj := pass.TypesInfo.ObjectOf(id)
	return obj != nil && obj.Pos() >= rng.Pos() && obj.Pos() <= rng.End()
}
