package passes

import (
	"go/ast"
	"go/constant"
	"go/types"
	"sort"
	"strings"

	"repro/internal/analysis"
)

// Kindswitch enforces exhaustiveness over the two sealed query-kind
// enumerations in every package (tests excluded):
//
//   - type switches over the sealed ps.Spec interface must name every
//     implementation declared in the root package (directly, or via an
//     interface case that covers it);
//   - switches over a ps.QueryKind value must name every exported Kind*
//     constant.
//
// A default arm does NOT excuse a missing case: defaults in this
// codebase return runtime errors, and the whole point of the analyzer
// is that adding a ninth query kind must break the build at wire/serve/
// bench dispatch sites (e.g. wire.FromSpec), not fail at runtime after
// the equivalence gates have already been invalidated. A switch that
// deliberately handles a subset carries a //pslint:ignore kindswitch
// directive with its justification.
var Kindswitch = &analysis.Analyzer{
	Name: "kindswitch",
	Doc:  "exhaustiveness for type switches over ps.Spec and switches over ps.QueryKind",
	Run:  runKindswitch,
}

func runKindswitch(pass *analysis.Pass) error {
	root := findRootPkg(pass)
	if root == nil {
		return nil // package has no view of ps; nothing to switch over
	}
	iface := lookupSpecInterface(root)
	impls := specImpls(root, iface)
	kindType, kindConsts := queryKindConsts(root)
	for _, f := range pass.Files {
		if isTestFile(pass.Fset, f.Pos()) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			switch stmt := n.(type) {
			case *ast.TypeSwitchStmt:
				checkSpecSwitch(pass, stmt, iface, impls)
			case *ast.SwitchStmt:
				checkKindSwitch(pass, stmt, kindType, kindConsts)
			}
			return true
		})
	}
	return nil
}

// findRootPkg returns the root ps package as seen from this pass: the
// pass's own package when analyzing the root, otherwise the direct
// import (a package that switches over ps types necessarily imports ps).
func findRootPkg(pass *analysis.Pass) *types.Package {
	if strings.TrimSuffix(pass.Pkg.Path(), "_test") == rootPkg {
		return pass.Pkg
	}
	for _, imp := range pass.Pkg.Imports() {
		if imp.Path() == rootPkg {
			return imp
		}
	}
	return nil
}

func lookupSpecInterface(root *types.Package) *types.Interface {
	obj, ok := root.Scope().Lookup("Spec").(*types.TypeName)
	if !ok {
		return nil
	}
	iface, _ := obj.Type().Underlying().(*types.Interface)
	return iface
}

// specImpls enumerates the sealed implementations: concrete types
// declared in the root package that satisfy Spec by value or pointer.
func specImpls(root *types.Package, iface *types.Interface) map[string]types.Type {
	impls := map[string]types.Type{}
	if iface == nil {
		return impls
	}
	for _, name := range root.Scope().Names() {
		tn, ok := root.Scope().Lookup(name).(*types.TypeName)
		if !ok || tn.IsAlias() {
			continue
		}
		t := tn.Type()
		if types.IsInterface(t) {
			continue
		}
		if types.Implements(t, iface) || types.Implements(types.NewPointer(t), iface) {
			impls[name] = t
		}
	}
	return impls
}

// checkSpecSwitch reports implementations missing from a type switch
// whose operand is the sealed ps.Spec interface.
func checkSpecSwitch(pass *analysis.Pass, stmt *ast.TypeSwitchStmt, iface *types.Interface, impls map[string]types.Type) {
	if iface == nil || len(impls) == 0 {
		return
	}
	var assert *ast.TypeAssertExpr
	switch a := stmt.Assign.(type) {
	case *ast.ExprStmt:
		assert, _ = a.X.(*ast.TypeAssertExpr)
	case *ast.AssignStmt:
		if len(a.Rhs) == 1 {
			assert, _ = a.Rhs[0].(*ast.TypeAssertExpr)
		}
	}
	if assert == nil {
		return
	}
	if !isNamed(pass.TypesInfo.TypeOf(assert.X), rootPkg, "Spec") {
		return
	}
	covered := map[string]bool{}
	for _, clause := range stmt.Body.List {
		cc, ok := clause.(*ast.CaseClause)
		if !ok {
			continue
		}
		for _, expr := range cc.List {
			t := pass.TypesInfo.TypeOf(expr)
			if t == nil {
				continue // the nil case
			}
			if p, ok := t.(*types.Pointer); ok {
				t = p.Elem()
			}
			if types.IsInterface(t) {
				// An interface case (e.g. a future ContinuousSpec) covers
				// every implementation that satisfies it.
				ci, _ := t.Underlying().(*types.Interface)
				for name, impl := range impls {
					if ci != nil && (types.Implements(impl, ci) || types.Implements(types.NewPointer(impl), ci)) {
						covered[name] = true
					}
				}
				continue
			}
			if n, ok := t.(*types.Named); ok && n.Obj().Pkg() != nil && n.Obj().Pkg().Path() == rootPkg {
				covered[n.Obj().Name()] = true
			}
		}
	}
	var missing []string
	for name := range impls {
		if !covered[name] {
			missing = append(missing, name)
		}
	}
	if len(missing) > 0 {
		sort.Strings(missing)
		pass.Reportf(stmt.Pos(),
			"type switch over the sealed ps.Spec interface is missing %s — a new query kind must be handled here, not left to a runtime default",
			strings.Join(missing, ", "))
	}
}

// queryKindConsts returns the QueryKind named type and its exported
// constants in declaration-value order. Unexported sentinels (a
// kindCount bound) are not required in switches.
func queryKindConsts(root *types.Package) (types.Type, []*types.Const) {
	tn, ok := root.Scope().Lookup("QueryKind").(*types.TypeName)
	if !ok {
		return nil, nil
	}
	var consts []*types.Const
	for _, name := range root.Scope().Names() {
		c, ok := root.Scope().Lookup(name).(*types.Const)
		if !ok || !c.Exported() || !types.Identical(c.Type(), tn.Type()) {
			continue
		}
		consts = append(consts, c)
	}
	sort.Slice(consts, func(i, j int) bool {
		vi, _ := constant.Int64Val(consts[i].Val())
		vj, _ := constant.Int64Val(consts[j].Val())
		return vi < vj
	})
	return tn.Type(), consts
}

// checkKindSwitch reports exported QueryKind constants missing from a
// switch over a QueryKind-typed tag.
func checkKindSwitch(pass *analysis.Pass, stmt *ast.SwitchStmt, kindType types.Type, kindConsts []*types.Const) {
	if stmt.Tag == nil || kindType == nil || len(kindConsts) == 0 {
		return
	}
	if !isNamed(pass.TypesInfo.TypeOf(stmt.Tag), rootPkg, "QueryKind") {
		return
	}
	covered := map[string]bool{}
	for _, clause := range stmt.Body.List {
		cc, ok := clause.(*ast.CaseClause)
		if !ok {
			continue
		}
		for _, expr := range cc.List {
			var id *ast.Ident
			switch e := expr.(type) {
			case *ast.Ident:
				id = e
			case *ast.SelectorExpr:
				id = e.Sel
			default:
				continue
			}
			if c, ok := pass.TypesInfo.ObjectOf(id).(*types.Const); ok {
				covered[c.Name()] = true
			}
		}
	}
	var missing []string
	for _, c := range kindConsts {
		if !covered[c.Name()] {
			missing = append(missing, c.Name())
		}
	}
	if len(missing) > 0 {
		pass.Reportf(stmt.Pos(),
			"switch over ps.QueryKind is missing %s — a new query kind must be handled here, not left to a runtime default",
			strings.Join(missing, ", "))
	}
}

// isNamed reports whether t is the named type pkgPath.typeName.
func isNamed(t types.Type, pkgPath, typeName string) bool {
	n, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := n.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == pkgPath && obj.Name() == typeName
}
