package passes_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/passes"
)

// Each analyzer gets a failing fixture (positive cases prove the
// analyzer fires) and negative cases (allowlisted packages/files,
// order-independent shapes, exhaustive switches) in the same run — an
// unexpected diagnostic fails the test just like a missed one.

func TestFloatorderDeterministicPackage(t *testing.T) {
	analysistest.Run(t, "testdata/floatorder/det", "repro/internal/core", passes.Floatorder)
}

func TestFloatorderOutOfScopePackage(t *testing.T) {
	analysistest.Run(t, "testdata/floatorder/out", "repro/serve", passes.Floatorder)
}

func TestWallclockDeterministicPackage(t *testing.T) {
	analysistest.Run(t, "testdata/wallclock/det", "repro/internal/gp", passes.Wallclock)
}

func TestWallclockEngineShellAllowlist(t *testing.T) {
	analysistest.Run(t, "testdata/wallclock/engine", "repro", passes.Wallclock)
}

func TestKindswitchExhaustiveness(t *testing.T) {
	analysistest.Run(t, "testdata/kindswitch/spec", "repro/cmd/psbench", passes.Kindswitch)
}

func TestObsnamesRegistryConstructors(t *testing.T) {
	analysistest.Run(t, "testdata/obsnames/reg", "repro/serve", passes.Obsnames)
}

func TestErrwireMissingAndDuplicates(t *testing.T) {
	analysistest.Run(t, "testdata/errwire/missing", "repro/wire", passes.Errwire)
}

func TestErrwireIgnoresOtherPackages(t *testing.T) {
	analysistest.Run(t, "testdata/errwire/notwire", "repro/notwire", passes.Errwire)
}

func TestErrwireReportsMissingTable(t *testing.T) {
	analysistest.Run(t, "testdata/errwire/notable", "repro/wire", passes.Errwire)
}

// TestIgnoreDirective proves //pslint:ignore suppresses on the flagged
// line and the line above, and that unused, wrong-analyzer, reasonless
// and unknown-analyzer directives are themselves findings.
func TestIgnoreDirective(t *testing.T) {
	analysistest.Run(t, "testdata/ignore/det", "repro/internal/core", passes.Floatorder)
}
