package passes

import (
	"go/ast"
	"go/types"
	"sort"
	"strings"

	"repro/internal/analysis"
)

// Errwire checks that wire's sentinel <-> ErrorCode table is a total
// bijection: every exported ps.Err* sentinel declared in the root
// package appears exactly once in wire's errorCodes table, and no code
// string is reused. Today a reflection test (wire's parity test)
// verifies this at test time; the analyzer catches a freshly declared
// sentinel before the test even runs, so a new mechanism's validation
// error cannot ship without a stable code psclient can reconstruct the
// sentinel from. The table is located by its contractual name,
// errorCodes — renaming it without updating the analyzer is itself a
// finding, which keeps the check honest.
var Errwire = &analysis.Analyzer{
	Name: "errwire",
	Doc:  "every ps.Err* sentinel must appear exactly once in wire's errorCodes table",
	Run:  runErrwire,
}

const wirePkg = "repro/wire"

func runErrwire(pass *analysis.Pass) error {
	if pass.Pkg.Path() != wirePkg {
		return nil
	}
	root := findRootPkg(pass)
	if root == nil {
		return nil
	}
	sentinels := rootSentinels(root)
	table := findErrorCodesTable(pass)
	if table == nil {
		pass.Reportf(pass.Files[0].Pos(),
			"cannot find the errorCodes sentinel<->code table in package wire (renamed? update the errwire analyzer)")
		return nil
	}

	inTable := map[string]int{}   // sentinel name -> occurrences
	codeCount := map[string]int{} // code string -> occurrences
	for _, elt := range table.Elts {
		row, ok := elt.(*ast.CompositeLit)
		if !ok || len(row.Elts) != 2 {
			continue
		}
		if code, lit := constString(pass, row.Elts[0]); lit {
			codeCount[code]++
			if codeCount[code] == 2 {
				pass.Reportf(row.Elts[0].Pos(), "error code %q appears more than once in errorCodes; the table must be a bijection", code)
			}
		}
		ast.Inspect(row.Elts[1], func(n ast.Node) bool {
			id, ok := n.(*ast.Ident)
			if !ok {
				return true
			}
			if v, ok := pass.TypesInfo.ObjectOf(id).(*types.Var); ok && v.Pkg() == root && sentinels[v.Name()] {
				inTable[v.Name()]++
				if inTable[v.Name()] == 2 {
					pass.Reportf(n.Pos(), "sentinel ps.%s appears more than once in errorCodes; the table must be a bijection", v.Name())
				}
			}
			return true
		})
	}

	var missing []string
	for name := range sentinels {
		if inTable[name] == 0 {
			missing = append(missing, "ps."+name)
		}
	}
	if len(missing) > 0 {
		sort.Strings(missing)
		pass.Reportf(table.Pos(),
			"errorCodes is missing %s — every ps sentinel needs a stable wire code so errors.Is survives the network (add a Code* constant and a table row)",
			strings.Join(missing, ", "))
	}
	return nil
}

// rootSentinels returns the names of every exported package-level Err*
// variable of type error in the root package.
func rootSentinels(root *types.Package) map[string]bool {
	out := map[string]bool{}
	errType := types.Universe.Lookup("error").Type()
	for _, name := range root.Scope().Names() {
		v, ok := root.Scope().Lookup(name).(*types.Var)
		if !ok || !v.Exported() || !strings.HasPrefix(name, "Err") {
			continue
		}
		if types.AssignableTo(v.Type(), errType) {
			out[name] = true
		}
	}
	return out
}

// findErrorCodesTable locates the composite literal initializing the
// package-level errorCodes variable (non-test files only).
func findErrorCodesTable(pass *analysis.Pass) *ast.CompositeLit {
	for _, f := range pass.Files {
		if isTestFile(pass.Fset, f.Pos()) {
			continue
		}
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok {
				continue
			}
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for i, id := range vs.Names {
					if id.Name == "errorCodes" && i < len(vs.Values) {
						if cl, ok := vs.Values[i].(*ast.CompositeLit); ok {
							return cl
						}
					}
				}
			}
		}
	}
	return nil
}
