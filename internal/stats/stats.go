// Package stats provides the small statistical and reporting helpers used by
// the simulation engine and the benchmark harness: summary statistics over
// per-slot metric samples and fixed-width table rendering of figure series.
package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Mean returns the arithmetic mean of xs, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// Sum returns the sum of xs.
func Sum(xs []float64) float64 {
	var sum float64
	for _, x := range xs {
		sum += x
	}
	return sum
}

// Variance returns the population variance of xs, or 0 when len(xs) < 2.
func Variance(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	var sum float64
	for _, x := range xs {
		d := x - m
		sum += d * d
	}
	return sum / float64(len(xs))
}

// StdDev returns the population standard deviation of xs.
func StdDev(xs []float64) float64 { return math.Sqrt(Variance(xs)) }

// Min returns the minimum of xs, or +Inf for an empty slice.
func Min(xs []float64) float64 {
	m := math.Inf(1)
	for _, x := range xs {
		if x < m {
			m = x
		}
	}
	return m
}

// Max returns the maximum of xs, or -Inf for an empty slice.
func Max(xs []float64) float64 {
	m := math.Inf(-1)
	for _, x := range xs {
		if x > m {
			m = x
		}
	}
	return m
}

// Quantile returns the q-quantile (0<=q<=1) of xs using linear
// interpolation between order statistics. Returns 0 for empty input.
func Quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	if q <= 0 {
		return sorted[0]
	}
	if q >= 1 {
		return sorted[len(sorted)-1]
	}
	pos := q * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Summary holds descriptive statistics of a sample.
type Summary struct {
	N      int
	Mean   float64
	StdDev float64
	Min    float64
	Max    float64
}

// Summarize computes a Summary of xs.
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		return Summary{}
	}
	return Summary{
		N:      len(xs),
		Mean:   Mean(xs),
		StdDev: StdDev(xs),
		Min:    Min(xs),
		Max:    Max(xs),
	}
}

// String implements fmt.Stringer.
func (s Summary) String() string {
	return fmt.Sprintf("n=%d mean=%.3f sd=%.3f min=%.3f max=%.3f", s.N, s.Mean, s.StdDev, s.Min, s.Max)
}

// Series is one named line on a figure: a y value per x value.
type Series struct {
	Name   string
	Values []float64
}

// Table renders figure data the way the paper's plots tabulate: one row per
// x value, one column per series. It is the output format of cmd/psbench.
type Table struct {
	Title  string
	XLabel string
	XS     []float64
	Series []Series
}

// AddSeries appends a named series; its length must match XS.
func (t *Table) AddSeries(name string, values []float64) {
	t.Series = append(t.Series, Series{Name: name, Values: values})
}

// CSV returns the table as comma-separated values with a header row; the
// title travels as a leading comment line so files stay self-describing.
func (t *Table) CSV() string {
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "# %s\n", t.Title)
	}
	b.WriteString(csvEscape(t.XLabel))
	for _, s := range t.Series {
		b.WriteByte(',')
		b.WriteString(csvEscape(s.Name))
	}
	b.WriteByte('\n')
	for i, x := range t.XS {
		fmt.Fprintf(&b, "%g", x)
		for _, s := range t.Series {
			v := math.NaN()
			if i < len(s.Values) {
				v = s.Values[i]
			}
			fmt.Fprintf(&b, ",%g", v)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

func csvEscape(s string) string {
	if strings.ContainsAny(s, ",\"\n") {
		return `"` + strings.ReplaceAll(s, `"`, `""`) + `"`
	}
	return s
}

// Render returns the table as aligned text.
func (t *Table) Render() string {
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "# %s\n", t.Title)
	}
	fmt.Fprintf(&b, "%-14s", t.XLabel)
	for _, s := range t.Series {
		fmt.Fprintf(&b, " %14s", s.Name)
	}
	b.WriteByte('\n')
	for i, x := range t.XS {
		fmt.Fprintf(&b, "%-14.6g", x)
		for _, s := range t.Series {
			v := math.NaN()
			if i < len(s.Values) {
				v = s.Values[i]
			}
			fmt.Fprintf(&b, " %14.4f", v)
		}
		b.WriteByte('\n')
	}
	return b.String()
}
