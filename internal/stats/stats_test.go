package stats

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestMeanSumEmpty(t *testing.T) {
	if Mean(nil) != 0 {
		t.Error("Mean(nil) != 0")
	}
	if Sum(nil) != 0 {
		t.Error("Sum(nil) != 0")
	}
}

func TestMeanKnown(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	if got := Mean(xs); got != 2.5 {
		t.Errorf("Mean=%v", got)
	}
	if got := Sum(xs); got != 10 {
		t.Errorf("Sum=%v", got)
	}
}

func TestVarianceStdDev(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if got := Variance(xs); got != 4 {
		t.Errorf("Variance=%v want 4", got)
	}
	if got := StdDev(xs); got != 2 {
		t.Errorf("StdDev=%v want 2", got)
	}
	if Variance([]float64{5}) != 0 {
		t.Error("single-element variance != 0")
	}
}

func TestMinMax(t *testing.T) {
	xs := []float64{3, -1, 7, 2}
	if Min(xs) != -1 || Max(xs) != 7 {
		t.Errorf("Min/Max = %v/%v", Min(xs), Max(xs))
	}
	if !math.IsInf(Min(nil), 1) || !math.IsInf(Max(nil), -1) {
		t.Error("empty Min/Max should be +-Inf")
	}
}

func TestQuantile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	cases := []struct{ q, want float64 }{
		{0, 1}, {0.25, 2}, {0.5, 3}, {0.75, 4}, {1, 5},
	}
	for _, c := range cases {
		if got := Quantile(xs, c.q); got != c.want {
			t.Errorf("Quantile(%v)=%v want %v", c.q, got, c.want)
		}
	}
	// Interpolation between order statistics.
	if got := Quantile([]float64{0, 10}, 0.5); got != 5 {
		t.Errorf("median of {0,10} = %v", got)
	}
	if Quantile(nil, 0.5) != 0 {
		t.Error("empty quantile != 0")
	}
	// Input must not be mutated.
	ys := []float64{3, 1, 2}
	Quantile(ys, 0.5)
	if ys[0] != 3 || ys[1] != 1 || ys[2] != 2 {
		t.Error("Quantile mutated its input")
	}
}

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{1, 2, 3})
	if s.N != 3 || s.Mean != 2 || s.Min != 1 || s.Max != 3 {
		t.Errorf("Summary=%+v", s)
	}
	if !strings.Contains(s.String(), "mean=2.000") {
		t.Errorf("Summary.String()=%q", s.String())
	}
	if z := Summarize(nil); z.N != 0 {
		t.Errorf("empty summary = %+v", z)
	}
}

func TestMeanBoundsProperty(t *testing.T) {
	f := func(raw []int8) bool {
		if len(raw) == 0 {
			return true
		}
		xs := make([]float64, len(raw))
		for i, v := range raw {
			xs[i] = float64(v)
		}
		m := Mean(xs)
		return m >= Min(xs)-1e-9 && m <= Max(xs)+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestVarianceNonNegativeProperty(t *testing.T) {
	f := func(raw []int8) bool {
		xs := make([]float64, len(raw))
		for i, v := range raw {
			xs[i] = float64(v)
		}
		return Variance(xs) >= 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestTableRender(t *testing.T) {
	tab := Table{Title: "Fig X", XLabel: "budget", XS: []float64{7, 10}}
	tab.AddSeries("Optimal", []float64{1.5, 2.5})
	tab.AddSeries("Baseline", []float64{0, 1})
	out := tab.Render()
	if !strings.Contains(out, "# Fig X") {
		t.Errorf("missing title:\n%s", out)
	}
	if !strings.Contains(out, "Optimal") || !strings.Contains(out, "Baseline") {
		t.Errorf("missing series names:\n%s", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 4 { // title + header + 2 rows
		t.Errorf("expected 4 lines, got %d:\n%s", len(lines), out)
	}
	if !strings.Contains(lines[2], "1.5000") {
		t.Errorf("row missing value:\n%s", out)
	}
}

func TestTableRenderShortSeries(t *testing.T) {
	// A series shorter than XS renders NaN rather than panicking.
	tab := Table{XLabel: "x", XS: []float64{1, 2}}
	tab.AddSeries("s", []float64{5})
	out := tab.Render()
	if !strings.Contains(out, "NaN") {
		t.Errorf("expected NaN for missing value:\n%s", out)
	}
}

func TestTableCSV(t *testing.T) {
	tab := Table{Title: "Fig", XLabel: "budget,x", XS: []float64{7}}
	tab.AddSeries(`Opt"imal`, []float64{1.5})
	out := tab.CSV()
	if !strings.Contains(out, `"budget,x"`) {
		t.Errorf("comma in header not quoted:\n%s", out)
	}
	if !strings.Contains(out, `"Opt""imal"`) {
		t.Errorf("quote in header not escaped:\n%s", out)
	}
	if !strings.Contains(out, "7,1.5") {
		t.Errorf("data row missing:\n%s", out)
	}
	if !strings.Contains(out, "# Fig") {
		t.Errorf("title comment missing:\n%s", out)
	}
	// Short series produce NaN, not a panic.
	tab2 := Table{XLabel: "x", XS: []float64{1, 2}}
	tab2.AddSeries("s", []float64{5})
	if !strings.Contains(tab2.CSV(), "NaN") {
		t.Error("expected NaN for missing CSV value")
	}
}
