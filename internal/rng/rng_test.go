package rng

import (
	"math"
	"testing"
)

func TestDeterminism(t *testing.T) {
	a := New(42, "mobility")
	b := New(42, "mobility")
	for i := 0; i < 100; i++ {
		if a.Float64() != b.Float64() {
			t.Fatalf("streams diverged at draw %d", i)
		}
	}
}

func TestStreamIndependenceByName(t *testing.T) {
	a := New(42, "mobility")
	b := New(42, "workload")
	same := 0
	for i := 0; i < 100; i++ {
		if a.Float64() == b.Float64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("streams with different names look identical (%d equal draws)", same)
	}
}

func TestStreamIndependenceBySeed(t *testing.T) {
	a := New(1, "x")
	b := New(2, "x")
	if a.Float64() == b.Float64() {
		t.Fatal("nearby seeds should decorrelate via splitmix64")
	}
}

func TestDerive(t *testing.T) {
	a := New(7, "root").Derive("child")
	b := New(7, "root").Derive("child")
	for i := 0; i < 50; i++ {
		if a.Float64() != b.Float64() {
			t.Fatal("derived streams are not deterministic")
		}
	}
}

func TestUniformRange(t *testing.T) {
	s := New(1, "u")
	for i := 0; i < 1000; i++ {
		v := s.Uniform(5, 10)
		if v < 5 || v >= 10 {
			t.Fatalf("Uniform out of range: %v", v)
		}
	}
}

func TestIntBetweenInclusive(t *testing.T) {
	s := New(1, "ib")
	seen := map[int]bool{}
	for i := 0; i < 1000; i++ {
		v := s.IntBetween(3, 5)
		if v < 3 || v > 5 {
			t.Fatalf("IntBetween out of range: %d", v)
		}
		seen[v] = true
	}
	for v := 3; v <= 5; v++ {
		if !seen[v] {
			t.Errorf("value %d never drawn", v)
		}
	}
	// Swapped bounds are normalized.
	if v := s.IntBetween(5, 3); v < 3 || v > 5 {
		t.Errorf("swapped bounds IntBetween out of range: %d", v)
	}
	// Degenerate range returns the single value.
	if v := s.IntBetween(4, 4); v != 4 {
		t.Errorf("degenerate IntBetween = %d", v)
	}
}

func TestNormMoments(t *testing.T) {
	s := New(9, "norm")
	n := 20000
	var sum, sumsq float64
	for i := 0; i < n; i++ {
		v := s.Norm(10, 2)
		sum += v
		sumsq += v * v
	}
	mean := sum / float64(n)
	variance := sumsq/float64(n) - mean*mean
	if math.Abs(mean-10) > 0.1 {
		t.Errorf("mean=%v want ~10", mean)
	}
	if math.Abs(variance-4) > 0.3 {
		t.Errorf("variance=%v want ~4", variance)
	}
}

func TestPoissonMean(t *testing.T) {
	s := New(5, "poisson")
	for _, mean := range []float64{0.5, 3, 12, 60} {
		n := 5000
		var sum float64
		for i := 0; i < n; i++ {
			sum += float64(s.Poisson(mean))
		}
		got := sum / float64(n)
		if math.Abs(got-mean) > mean*0.1+0.15 {
			t.Errorf("Poisson(%v) sample mean = %v", mean, got)
		}
	}
	if s.Poisson(0) != 0 || s.Poisson(-1) != 0 {
		t.Error("non-positive mean should give 0")
	}
}

func TestChoiceWeighted(t *testing.T) {
	s := New(3, "choice")
	counts := [3]int{}
	for i := 0; i < 30000; i++ {
		counts[s.Choice([]float64{1, 2, 1})]++
	}
	if counts[1] < counts[0] || counts[1] < counts[2] {
		t.Errorf("weighted choice not respecting weights: %v", counts)
	}
	// All-zero weights fall back to uniform without panicking.
	idx := s.Choice([]float64{0, 0, 0})
	if idx < 0 || idx > 2 {
		t.Errorf("zero-weight choice out of range: %d", idx)
	}
}

func TestExpPositive(t *testing.T) {
	s := New(8, "exp")
	var sum float64
	n := 20000
	for i := 0; i < n; i++ {
		v := s.Exp(0.5)
		if v < 0 {
			t.Fatalf("negative exponential draw %v", v)
		}
		sum += v
	}
	if mean := sum / float64(n); math.Abs(mean-2) > 0.15 {
		t.Errorf("Exp(0.5) mean = %v want ~2", mean)
	}
}

func TestPermIsPermutation(t *testing.T) {
	s := New(11, "perm")
	p := s.Perm(50)
	seen := make([]bool, 50)
	for _, v := range p {
		if v < 0 || v >= 50 || seen[v] {
			t.Fatalf("invalid permutation %v", p)
		}
		seen[v] = true
	}
}

func TestBoolProbability(t *testing.T) {
	s := New(13, "bool")
	trues := 0
	for i := 0; i < 10000; i++ {
		if s.Bool(0.25) {
			trues++
		}
	}
	if trues < 2200 || trues > 2800 {
		t.Errorf("Bool(0.25) frequency = %d/10000", trues)
	}
}
