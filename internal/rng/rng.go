// Package rng provides deterministic, independently seeded random streams.
//
// Every stochastic component of the simulator (mobility, query workloads,
// sensor parameters, phenomena) draws from its own named stream so that
// (a) experiments are exactly reproducible given a master seed, and
// (b) changing how one component consumes randomness does not perturb the
// draws seen by another component. This is the standard discipline for
// simulation studies; it makes the benchmark harness print identical rows
// on every run.
package rng

import (
	"hash/fnv"
	"math"
	"math/rand"
)

// Stream is a deterministic pseudo-random stream. It wraps math/rand with a
// seed derived from a master seed and a stream name.
type Stream struct {
	r *rand.Rand
}

// New derives a stream from a master seed and a name. The same
// (seed, name) pair always yields the same sequence.
func New(seed int64, name string) *Stream {
	h := fnv.New64a()
	_, _ = h.Write([]byte(name))
	mixed := splitmix64(uint64(seed) ^ h.Sum64())
	return &Stream{r: rand.New(rand.NewSource(int64(mixed)))} //nolint:gosec // deterministic simulation
}

// splitmix64 is the SplitMix64 finalizer; it decorrelates nearby seeds.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// Derive creates a sub-stream with an additional name component. Streams
// derived with distinct names are statistically independent.
func (s *Stream) Derive(name string) *Stream {
	h := fnv.New64a()
	_, _ = h.Write([]byte(name))
	return &Stream{r: rand.New(rand.NewSource(int64(splitmix64(s.r.Uint64() ^ h.Sum64()))))} //nolint:gosec
}

// Float64 returns a uniform value in [0,1).
func (s *Stream) Float64() float64 { return s.r.Float64() }

// Uniform returns a uniform value in [lo,hi).
func (s *Stream) Uniform(lo, hi float64) float64 {
	return lo + (hi-lo)*s.r.Float64()
}

// Intn returns a uniform int in [0,n). n must be > 0.
func (s *Stream) Intn(n int) int { return s.r.Intn(n) }

// IntBetween returns a uniform int in [lo,hi] inclusive.
func (s *Stream) IntBetween(lo, hi int) int {
	if hi < lo {
		lo, hi = hi, lo
	}
	return lo + s.r.Intn(hi-lo+1)
}

// Norm returns a normally distributed value with the given mean and stddev.
func (s *Stream) Norm(mean, stddev float64) float64 {
	return mean + stddev*s.r.NormFloat64()
}

// Exp returns an exponentially distributed value with the given rate.
func (s *Stream) Exp(rate float64) float64 {
	return s.r.ExpFloat64() / rate
}

// Poisson returns a Poisson-distributed count with the given mean, using
// Knuth's algorithm for small means and a normal approximation for large.
func (s *Stream) Poisson(mean float64) int {
	if mean <= 0 {
		return 0
	}
	if mean > 30 {
		v := int(math.Round(s.Norm(mean, math.Sqrt(mean))))
		if v < 0 {
			v = 0
		}
		return v
	}
	l := math.Exp(-mean)
	k := 0
	p := 1.0
	for {
		p *= s.r.Float64()
		if p <= l {
			return k
		}
		k++
	}
}

// Bool returns true with probability p.
func (s *Stream) Bool(p float64) bool { return s.r.Float64() < p }

// Choice returns a uniform element index weighted by the given non-negative
// weights. If all weights are zero it returns a uniform index.
func (s *Stream) Choice(weights []float64) int {
	var total float64
	for _, w := range weights {
		total += w
	}
	if total <= 0 {
		return s.r.Intn(len(weights))
	}
	x := s.r.Float64() * total
	for i, w := range weights {
		x -= w
		if x < 0 {
			return i
		}
	}
	return len(weights) - 1
}

// Perm returns a random permutation of [0,n).
func (s *Stream) Perm(n int) []int { return s.r.Perm(n) }

// Shuffle pseudo-randomizes the order of n elements via swap.
func (s *Stream) Shuffle(n int, swap func(i, j int)) { s.r.Shuffle(n, swap) }
