// Package field synthesizes the phenomena the queries observe. It replaces
// the paper's unavailable datasets:
//
//   - GPField: a spatially correlated stationary field standing in for the
//     Intel-lab temperature readings (§4.6). Implemented with random
//     Fourier features of a squared-exponential kernel, so the field is
//     a draw from (approximately) that Gaussian process.
//   - DiurnalSeries: an ozone-like time series standing in for the Zurich
//     OpenSense trace (§4.5): daily sinusoid + linear trend + AR(1) noise.
//   - SpatioTemporalField: a GPField modulated over time, for examples that
//     want evolving phenomena.
package field

import (
	"math"

	"repro/internal/geo"
	"repro/internal/rng"
)

// GPField is a smooth random field sampled approximately from a GP with a
// squared-exponential kernel (variance Sigma2, length scale Length), built
// from random Fourier features.
type GPField struct {
	Mean   float64
	Sigma2 float64
	Length float64

	kx, ky, phase []float64
	amp           float64
}

// NewGPField draws a field realization. More waves give a field closer to
// an exact GP draw; 64 is plenty for simulation purposes.
func NewGPField(mean, sigma2, length float64, waves int, rnd *rng.Stream) *GPField {
	if waves <= 0 {
		waves = 64
	}
	f := &GPField{
		Mean:   mean,
		Sigma2: sigma2,
		Length: length,
		kx:     make([]float64, waves),
		ky:     make([]float64, waves),
		phase:  make([]float64, waves),
		amp:    math.Sqrt(2 * sigma2 / float64(waves)),
	}
	for i := 0; i < waves; i++ {
		// RFF for the SE kernel: frequencies ~ N(0, 1/Length^2).
		f.kx[i] = rnd.Norm(0, 1/length)
		f.ky[i] = rnd.Norm(0, 1/length)
		f.phase[i] = rnd.Uniform(0, 2*math.Pi)
	}
	return f
}

// ValueAt returns the field value at p.
func (f *GPField) ValueAt(p geo.Point) float64 {
	v := f.Mean
	for i := range f.kx {
		v += f.amp * math.Cos(f.kx[i]*p.X+f.ky[i]*p.Y+f.phase[i])
	}
	return v
}

// SampleGrid evaluates the field at every cell center of g, row-major.
func (f *GPField) SampleGrid(g geo.Grid) []float64 {
	out := make([]float64, g.NumCells())
	for idx := range out {
		out[idx] = f.ValueAt(g.CellCenter(g.CellAt(idx)))
	}
	return out
}

// DiurnalSeries generates an ozone-like time series: a daily cycle with
// configurable period (in slots), amplitude, linear trend and AR(1) noise.
type DiurnalSeries struct {
	Base      float64
	Amplitude float64
	Period    float64 // slots per day
	Trend     float64 // per-slot drift
	NoiseSD   float64
	AR        float64 // AR(1) coefficient in [0,1)
}

// DefaultOzone mimics an urban ozone profile over the paper's 50-slot
// horizon (one "day" of 6am-9pm discretized in 5-minute slots would be 180
// slots; we compress to 50 so one simulation covers one diurnal cycle).
func DefaultOzone() DiurnalSeries {
	return DiurnalSeries{Base: 60, Amplitude: 25, Period: 50, Trend: 0.05, NoiseSD: 4, AR: 0.6}
}

// Generate returns n values starting at slot 0, driven by rnd.
func (d DiurnalSeries) Generate(n int, rnd *rng.Stream) []float64 {
	out := make([]float64, n)
	noise := 0.0
	for t := 0; t < n; t++ {
		noise = d.AR*noise + rnd.Norm(0, d.NoiseSD)
		out[t] = d.Base +
			d.Amplitude*math.Sin(2*math.Pi*float64(t)/d.Period-math.Pi/2) +
			d.Trend*float64(t) +
			noise
	}
	return out
}

// SpatioTemporalField modulates a spatial field with a diurnal series:
// value(p, t) = spatial(p) + temporal(t) - temporal base.
type SpatioTemporalField struct {
	Spatial  *GPField
	Temporal []float64
	Base     float64
}

// NewSpatioTemporal builds an evolving field over n slots.
func NewSpatioTemporal(spatial *GPField, d DiurnalSeries, n int, rnd *rng.Stream) *SpatioTemporalField {
	return &SpatioTemporalField{Spatial: spatial, Temporal: d.Generate(n, rnd), Base: d.Base}
}

// ValueAt returns the field value at p during slot t. Slots past the
// generated horizon clamp to the last value.
func (f *SpatioTemporalField) ValueAt(p geo.Point, t int) float64 {
	if t < 0 {
		t = 0
	}
	if t >= len(f.Temporal) {
		t = len(f.Temporal) - 1
	}
	return f.Spatial.ValueAt(p) + f.Temporal[t] - f.Base
}
