package field

import (
	"math"
	"testing"

	"repro/internal/geo"
	"repro/internal/rng"
)

func TestGPFieldDeterministicAndSmooth(t *testing.T) {
	a := NewGPField(20, 4, 3, 64, rng.New(1, "f"))
	b := NewGPField(20, 4, 3, 64, rng.New(1, "f"))
	p := geo.Pt(5, 7)
	if a.ValueAt(p) != b.ValueAt(p) {
		t.Fatal("field not deterministic for same seed")
	}
	// Smoothness: nearby points have close values relative to field scale.
	v1 := a.ValueAt(geo.Pt(5, 5))
	v2 := a.ValueAt(geo.Pt(5.05, 5))
	if math.Abs(v1-v2) > 0.5 {
		t.Errorf("field too rough: |%v - %v|", v1, v2)
	}
}

func TestGPFieldStatistics(t *testing.T) {
	f := NewGPField(20, 4, 3, 128, rng.New(2, "stats"))
	g := geo.NewUnitGrid(40, 40)
	vals := f.SampleGrid(g)
	if len(vals) != 1600 {
		t.Fatalf("SampleGrid len=%d", len(vals))
	}
	var sum, sumsq float64
	for _, v := range vals {
		sum += v
		sumsq += v * v
	}
	mean := sum / float64(len(vals))
	variance := sumsq/float64(len(vals)) - mean*mean
	// One realization over a finite window: loose bounds.
	if math.Abs(mean-20) > 4 {
		t.Errorf("field mean=%v want ≈20", mean)
	}
	if variance < 0.3 || variance > 20 {
		t.Errorf("field variance=%v want same order as 4", variance)
	}
}

func TestGPFieldSpatialCorrelation(t *testing.T) {
	// Average |difference| between close pairs must be below far pairs.
	f := NewGPField(0, 4, 3, 96, rng.New(3, "corr"))
	s := rng.New(4, "corr-sample")
	var closeDiff, farDiff float64
	n := 300
	for i := 0; i < n; i++ {
		p := geo.Pt(s.Uniform(0, 50), s.Uniform(0, 50))
		closeDiff += math.Abs(f.ValueAt(p) - f.ValueAt(p.Add(geo.Pt(0.5, 0))))
		farDiff += math.Abs(f.ValueAt(p) - f.ValueAt(p.Add(geo.Pt(25, 0))))
	}
	if closeDiff >= farDiff {
		t.Errorf("no spatial correlation: close=%v far=%v", closeDiff/float64(n), farDiff/float64(n))
	}
}

func TestGPFieldDefaultWaves(t *testing.T) {
	f := NewGPField(0, 1, 1, 0, rng.New(5, "w"))
	if len(f.kx) != 64 {
		t.Errorf("default waves = %d want 64", len(f.kx))
	}
}

func TestDiurnalSeriesShape(t *testing.T) {
	d := DefaultOzone()
	vals := d.Generate(50, rng.New(6, "ozone"))
	if len(vals) != 50 {
		t.Fatalf("len=%d", len(vals))
	}
	// Peak should be in the middle of the "day" (sin(-pi/2 .. 3pi/2) peaks
	// at t = period/2), trough near the edges.
	var maxIdx int
	for i, v := range vals {
		if v > vals[maxIdx] {
			maxIdx = i
		}
	}
	if maxIdx < 10 || maxIdx > 40 {
		t.Errorf("diurnal peak at slot %d, want mid-day", maxIdx)
	}
	// Values stay within a physically plausible ozone band.
	for i, v := range vals {
		if v < 0 || v > 150 {
			t.Errorf("slot %d value %v outside plausible band", i, v)
		}
	}
}

func TestDiurnalSeriesDeterminism(t *testing.T) {
	d := DefaultOzone()
	a := d.Generate(30, rng.New(7, "det"))
	b := d.Generate(30, rng.New(7, "det"))
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("series not deterministic")
		}
	}
}

func TestDiurnalSeriesNoiseAutocorrelation(t *testing.T) {
	// With AR=0.9 and no signal, consecutive values should correlate.
	d := DiurnalSeries{Base: 0, Amplitude: 0, Period: 50, NoiseSD: 1, AR: 0.9}
	vals := d.Generate(2000, rng.New(8, "ar"))
	var num, den float64
	for i := 1; i < len(vals); i++ {
		num += vals[i] * vals[i-1]
		den += vals[i] * vals[i]
	}
	if corr := num / den; corr < 0.5 {
		t.Errorf("AR(0.9) lag-1 correlation = %v, want > 0.5", corr)
	}
}

func TestSpatioTemporalField(t *testing.T) {
	spatial := NewGPField(10, 2, 3, 32, rng.New(9, "st"))
	f := NewSpatioTemporal(spatial, DefaultOzone(), 50, rng.New(10, "st-t"))
	p := geo.Pt(3, 3)
	// Value changes over time.
	if f.ValueAt(p, 0) == f.ValueAt(p, 25) {
		t.Error("spatio-temporal field constant in time")
	}
	// Out-of-range slots clamp instead of panicking.
	if got := f.ValueAt(p, -5); got != f.ValueAt(p, 0) {
		t.Errorf("negative slot should clamp: %v", got)
	}
	if got := f.ValueAt(p, 999); got != f.ValueAt(p, 49) {
		t.Errorf("past-horizon slot should clamp: %v", got)
	}
}
