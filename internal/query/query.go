// Package query implements the query taxonomy of the paper (Fig. 1) and the
// valuation functions of §2.2-§2.3:
//
//   - Point queries (single-sensor, Eq. 3, and multiple-sensor)
//   - Spatial aggregate queries (Eq. 5, coverage-weighted quality)
//   - Queries over trajectories (§2.2.3, aggregate over a polyline)
//   - Location monitoring queries (Eqs. 16-17, regression-residual quality)
//   - Region monitoring queries (Eq. 7, GP variance-reduction quality)
//   - Event-detection queries (§2.3, implemented as the redundant-sampling
//     extension the paper leaves as future work)
//
// Valuation functions are black boxes to the acquisition algorithms
// (§3.2): every query exposes Value(S) over sensor sets plus an
// incremental State so the greedy algorithm can compute marginal gains in
// O(work of one sensor) instead of re-evaluating whole sets.
package query

import (
	"repro/internal/geo"
	"repro/internal/sensornet"
)

// Query is the common behaviour of all query types.
type Query interface {
	// QID is a unique identifier used for payments and metrics.
	QID() string
	// Budget returns B_q, the maximum the issuer is willing to pay.
	Budget() float64
	// Relevant reports whether sensor s can possibly contribute value;
	// it is a cheap spatial prefilter (the Q_{l_s} of Algorithm 1).
	Relevant(s *sensornet.Sensor) bool
	// NewState creates empty incremental valuation state for one run of a
	// selection algorithm.
	NewState() State
}

// State is the mutable valuation state of one query during sensor
// selection: the set S_q selected so far and its value v_q(S_q).
type State interface {
	// Query returns the owning query.
	Query() Query
	// Value returns v_q(S_q) for the currently added sensors.
	Value() float64
	// Gain returns the marginal value v_q(S_q ∪ {s}) − v_q(S_q) without
	// mutating the state. It may be negative or zero.
	Gain(s *sensornet.Sensor) float64
	// Add commits sensor s to S_q.
	Add(s *sensornet.Sensor)
	// Sensors returns the committed set S_q.
	Sensors() []*sensornet.Sensor
}

// Submodular is an optional marker interface for queries whose set
// valuation is monotone submodular: for every A ⊆ B and sensor x ∉ B,
// Gain(x | A) >= Gain(x | B). The lazy-greedy selection strategy
// (internal/core) treats a marked query's cached marginal gains as upper
// bounds that only need re-evaluation when the query's state changes;
// unmarked queries are re-evaluated eagerly after every commit that
// touches them. The marker must be truthful — a valuation that claims
// submodularity but lets gains grow can defeat lazy-greedy's bound
// invariant (a best-effort violation detector then forces exhaustive
// rescans, but detection is not guaranteed).
type Submodular interface {
	// SubmodularValuation reports that Gain is non-increasing in the
	// committed set.
	SubmodularValuation() bool
}

// IsSubmodular reports whether the query advertises a monotone
// submodular valuation.
func IsSubmodular(q Query) bool {
	m, ok := q.(Submodular)
	return ok && m.SubmodularValuation()
}

// Footprinted is an optional interface for queries whose spatial
// prefilter is confined to a rectangle: RelevanceFootprint returns a rect
// R such that Relevant(s) implies s.Pos ∈ R. The selection layer uses the
// footprint to bucket queries in a grid index and skip Relevant calls for
// sensors outside the rect, so the contract must be truthful — a rect
// that is too small silently drops relevant (sensor, query) pairs from
// selection. A too-large rect only costs extra Relevant calls.
type Footprinted interface {
	// RelevanceFootprint returns a closed rectangle containing every
	// sensor position the query could consider relevant.
	RelevanceFootprint() geo.Rect
}

// Footprint returns the query's relevance footprint and whether it
// advertises one.
func Footprint(q Query) (geo.Rect, bool) {
	f, ok := q.(Footprinted)
	if !ok {
		return geo.Rect{}, false
	}
	return f.RelevanceFootprint(), true
}

// GeomCached is an optional interface for valuation states that memoize
// per-sensor footprint geometry (e.g. which coverage cells a sensor's
// sensing disk reaches). The counters feed SelectionStats so BENCH runs
// can report cache effectiveness. Hits ≤ lookups; both are monotone over
// the state's lifetime.
type GeomCached interface {
	// GeomCacheStats returns cumulative (hits, lookups) of the state's
	// geometry cache.
	GeomCacheStats() (hits, lookups int64)
}

// PairCached is an optional interface for valuation states whose marginal
// gain factors into a state-independent per-sensor base value and a cheap
// state-dependent combination:
//
//	Gain(s) == GainFrom(BaseValue(s))   bit-for-bit, at every state.
//
// The greedy core memoizes BaseValue once per (sensor, query) pair and
// re-evaluates stale gains through GainFrom alone, eliminating the
// distance/quality math from every re-evaluation after a query's state
// changes. The equality above is a hard contract — the selection caches
// gains computed both ways interchangeably, and the strategy-equivalence
// tests compare results to the last float bit — so GainFrom must perform
// exactly the operations Gain performs after its base value is known
// (same order, same intermediate precision), and BaseValue must not read
// anything that changes as sensors commit.
type PairCached interface {
	// BaseValue returns the state-independent part of the sensor's
	// marginal gain.
	BaseValue(s *sensornet.Sensor) float64
	// GainFrom combines a (possibly memoized) base value with the current
	// state into the marginal gain.
	GainFrom(base float64) float64
}

// RelevanceBased is an optional interface for queries whose Relevant
// test computes their states' PairCached base value as a byproduct (a
// point query's relevance check *is* its valuation, Eq. 3). The
// selection layer then seeds the per-pair base cache while building the
// relevance index instead of recomputing the same distance/quality math
// on the pair's first gain evaluation. The contract is exact:
// RelevantBase(s) must return (Relevant(s), st.BaseValue(s)) bit-for-bit
// for every state st of the query.
type RelevanceBased interface {
	// RelevantBase reports relevance and, when relevant, the PairCached
	// base value of sensor s (unspecified when not relevant).
	RelevantBase(s *sensornet.Sensor) (bool, float64)
}

// Value evaluates a query's valuation on an arbitrary sensor set by
// replaying it through a fresh state. This is v_q(S) used by definitions
// such as Eq. 13.
func Value(q Query, sensors []*sensornet.Sensor) float64 {
	st := q.NewState()
	for _, s := range sensors {
		st.Add(s)
	}
	return st.Value()
}

// baseState provides the Sensors bookkeeping shared by all states.
type baseState struct {
	sensors []*sensornet.Sensor
}

func (b *baseState) Sensors() []*sensornet.Sensor { return b.sensors }

func (b *baseState) record(s *sensornet.Sensor) { b.sensors = append(b.sensors, s) }
