package query

import (
	"math"

	"repro/internal/geo"
	"repro/internal/gp"
	"repro/internal/regression"
	"repro/internal/sensornet"
)

// LocationMonitoring is a continuous query monitoring a phenomenon at one
// location over [Start, End] (§2.3, query Q1). The application provides
// desired sampling times T and the valuation of Eqs. 16-17:
//
//	v_q(T', Theta) = B_q * G(T') * avg(Theta)
//	G(T') = sum_i r_i^2|T / sum_i r_i^2|T'
//
// where residuals come from a linear model over the location's historical
// trace. The runtime fields implement the state of Algorithm 2
// (T', C-hat, last/next sampling time).
type LocationMonitoring struct {
	ID       string
	Loc      geo.Point
	Start    int
	End      int
	B        float64
	DMax     float64
	ThetaMin float64
	// Alpha is the fraction of the accumulated extra budget an
	// opportunistic (off-schedule) sample may consume (§3.3; 0.5 in §4.5).
	Alpha float64
	// History is the location's historical trace driving the residual
	// model; Desired is T, the desired sampling times (slot numbers).
	History *regression.Series
	Desired []float64

	// ExpectedTheta is the assumed quality of a prospective reading when
	// valuing a sample before sensor selection ("vq considers ... the
	// expected quality of a sensor reading before the actual sensor
	// selection", §3.3).
	ExpectedTheta float64

	// Runtime state of Algorithm 2.
	Sampled []float64 // T': slots at which a sample was obtained
	Thetas  []float64 // qualities of the obtained samples
	Spent   float64   // C-hat: payments made so far
	nstIdx  int       // index into Desired of the next unsatisfied time
	inited  bool
}

// NewLocationMonitoring builds a location monitoring query; desired
// sampling times are selected from the history with the OptiMoS-style
// technique of [19] (numSamples fixed, §4.5 uses duration/3).
func NewLocationMonitoring(id string, loc geo.Point, start, end int, budget, dmax float64, history *regression.Series, numSamples int) *LocationMonitoring {
	// Desired times must lie inside the query window, so the OptiMoS-style
	// selection runs on the window-restricted history ("the data values for
	// the current time interval are almost the same as the data values in
	// the same time interval in the past", §4.5).
	var wTimes, wVals []float64
	for i, tm := range history.Times {
		if tm >= float64(start) && tm <= float64(end) {
			wTimes = append(wTimes, tm)
			wVals = append(wVals, history.Values[i])
		}
	}
	var inWindow []float64
	if len(wTimes) > 0 {
		windowed := &regression.Series{Times: wTimes, Values: wVals}
		inWindow = regression.SelectSamplingTimes(windowed, numSamples)
	} else {
		// No history inside the window: fall back to evenly spaced slots.
		if numSamples > end-start+1 {
			numSamples = end - start + 1
		}
		for k := 0; k < numSamples; k++ {
			inWindow = append(inWindow, float64(start+k*(end-start)/maxInt(1, numSamples-1)))
		}
	}
	sortFloats(inWindow)
	return &LocationMonitoring{
		ID:            id,
		Loc:           loc,
		Start:         start,
		End:           end,
		B:             budget,
		DMax:          dmax,
		ThetaMin:      0.2,
		Alpha:         0.5,
		History:       history,
		Desired:       inWindow,
		ExpectedTheta: 0.7,
	}
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func sortFloats(xs []float64) {
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && xs[j] < xs[j-1]; j-- {
			xs[j], xs[j-1] = xs[j-1], xs[j]
		}
	}
}

// Active reports whether the query runs during slot t.
func (q *LocationMonitoring) Active(t int) bool { return t >= q.Start && t <= q.End }

// avgTheta returns the average collected quality, or the expected quality
// when nothing was sampled yet.
func (q *LocationMonitoring) avgTheta() float64 {
	if len(q.Thetas) == 0 {
		return q.ExpectedTheta
	}
	var sum float64
	for _, t := range q.Thetas {
		sum += t
	}
	return sum / float64(len(q.Thetas))
}

// Value returns v_q(T', Theta) of Eq. 16 for the samples obtained so far.
func (q *LocationMonitoring) Value() float64 {
	if len(q.Sampled) == 0 {
		return 0
	}
	return q.B * regression.Quality(q.History, q.Desired, q.Sampled) * q.avgTheta()
}

// valueWith returns the valuation if a sample at slot t with expected
// quality were added.
func (q *LocationMonitoring) valueWith(t int) float64 {
	sampled := append(append([]float64(nil), q.Sampled...), float64(t))
	thetaSum := q.ExpectedTheta
	for _, th := range q.Thetas {
		thetaSum += th
	}
	avg := thetaSum / float64(len(q.Thetas)+1)
	return q.B * regression.Quality(q.History, q.Desired, sampled) * avg
}

// isDesired reports whether slot t is one of the desired sampling times.
func (q *LocationMonitoring) isDesired(t int) bool {
	for _, d := range q.Desired {
		if d == float64(t) {
			return true
		}
	}
	return false
}

// missedPending reports whether a desired sampling time has passed without
// being satisfied ("sampling at the last sampling time has been failed").
func (q *LocationMonitoring) missedPending(t int) bool {
	return q.nstIdx < len(q.Desired) && q.Desired[q.nstIdx] < float64(t)
}

// pastSchedule reports whether t is past the final requested sampling time
// (the "q.nst = infinity" condition).
func (q *LocationMonitoring) pastSchedule() bool { return q.nstIdx >= len(q.Desired) }

// CreatePointQuery implements the paper's CreatePointQuery(t, q): it
// returns the point query to issue at slot t, or ok=false when no sampling
// is worthwhile this slot. Urgent slots (desired time, missed desired
// time, or past the schedule) may spend the full marginal value Delta-v_t;
// opportunistic slots spend at most alpha times the accumulated surplus.
func (q *LocationMonitoring) CreatePointQuery(t int) (*Point, bool) {
	if !q.inited || t == q.Start {
		q.Sampled = nil
		q.Thetas = nil
		q.Spent = 0
		q.nstIdx = 0
		q.inited = true
	}
	dvt := q.valueWith(t) - q.Value()
	var dv float64
	if q.isDesired(t) || q.pastSchedule() || q.missedPending(t) {
		dv = dvt
	} else {
		surplus := q.Alpha * (q.Value() - q.Spent)
		dv = math.Min(surplus, dvt)
	}
	if dv <= 0 {
		return nil, false
	}
	p := NewPoint(PointID(q.ID, t, ""), q.Loc, dv, q.DMax)
	p.ThetaMin = q.ThetaMin
	return p, true
}

// CreatePointQueryBaseline is the baseline generator of §4.5: "point
// queries are generated only at the desired sampling times", always with
// the full marginal value, with no opportunistic sampling and no
// extra-budget control.
func (q *LocationMonitoring) CreatePointQueryBaseline(t int) (*Point, bool) {
	if !q.inited || t == q.Start {
		q.Sampled = nil
		q.Thetas = nil
		q.Spent = 0
		q.nstIdx = 0
		q.inited = true
	}
	if !q.isDesired(t) {
		return nil, false
	}
	dv := q.valueWith(t) - q.Value()
	if dv <= 0 {
		return nil, false
	}
	p := NewPoint(PointID(q.ID, t, ""), q.Loc, dv, q.DMax)
	p.ThetaMin = q.ThetaMin
	return p, true
}

// ApplyResults implements the paper's ApplyResults(t, q, pi): records the
// outcome of the point query issued at slot t. satisfied=false corresponds
// to pi = -infinity. theta is the quality of the obtained reading.
func (q *LocationMonitoring) ApplyResults(t int, satisfied bool, payment, theta float64) {
	if !satisfied {
		return
	}
	q.Sampled = append(q.Sampled, float64(t))
	q.Thetas = append(q.Thetas, theta)
	q.Spent += payment
	for q.nstIdx < len(q.Desired) && q.Desired[q.nstIdx] <= float64(t) {
		q.nstIdx++
	}
}

// Quality returns the end-of-life result quality: achieved valuation over
// budget, the metric plotted in Fig. 8(b).
func (q *LocationMonitoring) Quality() float64 {
	if q.B == 0 {
		return 0
	}
	return q.Value() / q.B
}

// RegionMonitoring is a continuous query monitoring a region over
// [Start, End] (§2.3, query Q2) valued by expected variance reduction of a
// Gaussian-process phenomenon model (Eqs. 6-7):
//
//	v_q(S) = B_q * F(S) * (sum_s theta_s)/|S|.
//
// F is the GP variance reduction over the region's grid cells, normalized
// by RefFraction of the total prior variance; because F is "not bounded
// by 1" (§4.6) the result quality can exceed 1 when shared sensors push
// the explained variance beyond the reference level.
type RegionMonitoring struct {
	ID     string
	Region geo.Rect
	Start  int
	End    int
	B      float64
	Model  *gp.GP
	Grid   geo.Grid
	// Alpha is the share of unspent expected cost available for
	// opportunistic sensor sharing (§3.3; 0.5 in §4.6).
	Alpha float64
	// RefFraction is the fraction of total prior variance whose removal
	// counts as F = 1.
	RefFraction float64

	targets []geo.Point

	// Runtime state of Algorithm 3: the accumulated observation set q.S
	// and spending q.C-hat.
	ObsPoints []geo.Point
	Thetas    []float64
	Spent     float64
	inited    bool

	// basePost caches the posterior conditioned on ObsPoints[:baseObs],
	// so each slot's planning appends only the observations recorded
	// since the previous slot instead of replaying the whole history.
	// Invalidated by ResetIfNeeded and by factorization degradation.
	basePost *gp.Posterior
	baseObs  int
}

// NewRegionMonitoring builds a region monitoring query.
func NewRegionMonitoring(id string, region geo.Rect, start, end int, budget float64, model *gp.GP, grid geo.Grid) *RegionMonitoring {
	q := &RegionMonitoring{
		ID:          id,
		Region:      region,
		Start:       start,
		End:         end,
		B:           budget,
		Model:       model,
		Grid:        grid,
		Alpha:       0.5,
		RefFraction: 0.7,
	}
	q.targets = grid.CellsIn(region)
	return q
}

// Active reports whether the query runs during slot t.
func (q *RegionMonitoring) Active(t int) bool { return t >= q.Start && t <= q.End }

// Targets returns the region's grid-cell centers (the unobserved-location
// set V of Eq. 6).
func (q *RegionMonitoring) Targets() []geo.Point { return q.targets }

// F computes the normalized variance-reduction term of Eq. 7 for an
// observation point set.
func (q *RegionMonitoring) F(obs []geo.Point) float64 {
	if len(q.targets) == 0 || len(obs) == 0 {
		return 0
	}
	norm, err := q.Model.NormalizedVarianceReduction(q.targets, obs)
	if err != nil {
		return 0
	}
	return norm / q.RefFraction
}

// Theta returns the reading quality of sensor s for this query (own
// location, so only inaccuracy and trust matter).
func (q *RegionMonitoring) Theta(s *sensornet.Sensor) float64 {
	return (1 - s.Inaccuracy) * s.Trust
}

// ValueOf evaluates Eq. 7 on an arbitrary observation set.
func (q *RegionMonitoring) ValueOf(obs []geo.Point, thetas []float64) float64 {
	if len(obs) == 0 {
		return 0
	}
	var sum float64
	for _, t := range thetas {
		sum += t
	}
	return q.B * q.F(obs) * sum / float64(len(obs))
}

// Value returns the valuation of everything observed so far.
func (q *RegionMonitoring) Value() float64 { return q.ValueOf(q.ObsPoints, q.Thetas) }

// PlanValue evaluates Eq. 7 on the union of the already-acquired
// observations (q.S of Algorithm 3) and a candidate plan. Conditioning
// plan marginals on the accumulated state keeps a saturated query from
// re-buying information it already holds.
func (q *RegionMonitoring) PlanValue(planPts []geo.Point, planThetas []float64) float64 {
	pts := make([]geo.Point, 0, len(q.ObsPoints)+len(planPts))
	pts = append(pts, q.ObsPoints...)
	pts = append(pts, planPts...)
	thetas := make([]float64, 0, len(q.Thetas)+len(planThetas))
	thetas = append(thetas, q.Thetas...)
	thetas = append(thetas, planThetas...)
	return q.ValueOf(pts, thetas)
}

// ResetIfNeeded initializes runtime state at the query's first active slot
// (the "if t = q.t1" branches of Algorithm 3).
func (q *RegionMonitoring) ResetIfNeeded(t int) {
	if !q.inited || t == q.Start {
		q.ObsPoints = nil
		q.Thetas = nil
		q.Spent = 0
		q.inited = true
		q.basePost = nil
		q.baseObs = 0
	}
}

// BasePosterior returns the GP posterior over Targets() conditioned on
// all of ObsPoints, reusing the cached factorization from the previous
// slot: only observations recorded since the last call are appended
// (rank-1 updates, O(m·|targets|) each) instead of replaying the whole
// history (O(m²·|targets|) total). Because gp.Posterior.Add is a pure
// append — row m of the Cholesky factor depends only on rows 0..m-1 and
// the new point — the incremental result is bit-identical to a
// from-scratch build over the same ObsPoints sequence. When the cached
// factorization reports Degraded (an ill-conditioned row that would
// amplify rounding in later appends), the cache falls back to an exact
// from-scratch recompute and stays on that path until reset.
//
// The returned posterior is owned by the query: callers must Clone it
// before calling Add. appended and rebuilt report how many observations
// were rank-1-appended vs replayed by a from-scratch rebuild, for
// SelectionStats.
func (q *RegionMonitoring) BasePosterior() (base *gp.Posterior, appended, rebuilt int64) {
	if q.basePost == nil || q.baseObs > len(q.ObsPoints) || q.basePost.Degraded() {
		q.basePost = q.Model.NewPosterior(q.targets)
		q.baseObs = 0
		rebuilt = int64(len(q.ObsPoints))
	} else {
		appended = int64(len(q.ObsPoints) - q.baseObs)
	}
	for _, p := range q.ObsPoints[q.baseObs:] {
		q.basePost.Add(p)
	}
	q.baseObs = len(q.ObsPoints)
	return q.basePost, appended, rebuilt
}

// Record adds an obtained observation.
func (q *RegionMonitoring) Record(p geo.Point, theta, payment float64) {
	q.ObsPoints = append(q.ObsPoints, p)
	q.Thetas = append(q.Thetas, theta)
	q.Spent += payment
}

// RemainingBudget returns B_q minus payments so far.
func (q *RegionMonitoring) RemainingBudget() float64 { return q.B - q.Spent }

// Quality returns achieved valuation over budget (Fig. 9(b)); it can
// exceed 1 because F is unbounded.
func (q *RegionMonitoring) Quality() float64 {
	if q.B == 0 {
		return 0
	}
	return q.Value() / q.B
}
