package query

import (
	"math"
	"testing"

	"repro/internal/field"
	"repro/internal/geo"
	"repro/internal/gp"
	"repro/internal/regression"
	"repro/internal/rng"
)

func ozoneHistory(t *testing.T, n int) *regression.Series {
	t.Helper()
	vals := field.DefaultOzone().Generate(n, rng.New(31, "hist"))
	times := make([]float64, n)
	for i := range times {
		times[i] = float64(i)
	}
	s, err := regression.NewSeries(times, vals)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestLocationMonitoringDesiredTimes(t *testing.T) {
	h := ozoneHistory(t, 50)
	q := NewLocationMonitoring("lm1", geo.Pt(5, 5), 10, 25, 100, 10, h, 5)
	if len(q.Desired) == 0 {
		t.Fatal("no desired sampling times selected")
	}
	for i, d := range q.Desired {
		if i > 0 && q.Desired[i-1] >= d {
			t.Error("desired times not strictly sorted")
		}
		_ = d
	}
}

func TestLocationMonitoringActive(t *testing.T) {
	h := ozoneHistory(t, 50)
	q := NewLocationMonitoring("lm1", geo.Pt(0, 0), 10, 20, 50, 10, h, 3)
	if q.Active(9) || !q.Active(10) || !q.Active(20) || q.Active(21) {
		t.Error("Active window wrong")
	}
}

func TestLocationMonitoringCreatePointQueryLifecycle(t *testing.T) {
	h := ozoneHistory(t, 50)
	q := NewLocationMonitoring("lm1", geo.Pt(5, 5), 0, 20, 100, 10, h, 4)
	// First slot initializes state and should produce a query with positive
	// budget (urgent or opportunistic).
	p, ok := q.CreatePointQuery(0)
	if !ok {
		t.Skip("first slot produced no worthwhile sample for this trace")
	}
	if p.Budget() <= 0 {
		t.Fatalf("point budget = %v", p.Budget())
	}
	if p.Loc != q.Loc {
		t.Error("point query at wrong location")
	}
	// Satisfy it.
	q.ApplyResults(0, true, p.Budget()/2, 0.8)
	if len(q.Sampled) != 1 || q.Spent != p.Budget()/2 {
		t.Fatalf("state after success: %v spent %v", q.Sampled, q.Spent)
	}
	if q.Value() <= 0 {
		t.Error("value after one sample should be positive")
	}
}

func TestLocationMonitoringUrgentAtDesiredTime(t *testing.T) {
	h := ozoneHistory(t, 50)
	q := NewLocationMonitoring("lm1", geo.Pt(5, 5), 0, 30, 100, 10, h, 5)
	if len(q.Desired) == 0 {
		t.Skip("no desired times")
	}
	desired := int(q.Desired[0])
	q.CreatePointQuery(0) // init
	pUrgent, okUrgent := q.CreatePointQuery(desired)
	if !okUrgent {
		t.Fatal("desired slot produced no query")
	}
	// Urgent budget equals the full marginal value: must be at least any
	// opportunistic alpha-capped budget at the same state.
	if pUrgent.Budget() <= 0 {
		t.Errorf("urgent budget = %v", pUrgent.Budget())
	}
}

func TestLocationMonitoringMissedDesiredTriggersRetry(t *testing.T) {
	h := ozoneHistory(t, 50)
	q := NewLocationMonitoring("lm1", geo.Pt(5, 5), 0, 30, 100, 10, h, 5)
	if len(q.Desired) == 0 {
		t.Skip("no desired times")
	}
	q.CreatePointQuery(0)
	first := int(q.Desired[0])
	// Fail the desired slot.
	q.ApplyResults(first, false, 0, 0)
	if !q.missedPending(first + 1) {
		t.Error("missed desired time should be pending")
	}
	// Succeeding later clears the pending miss.
	q.ApplyResults(first+1, true, 1, 0.9)
	if q.missedPending(first + 2) {
		t.Error("pending miss should clear after a successful catch-up sample")
	}
}

func TestLocationMonitoringOpportunisticCappedByAlpha(t *testing.T) {
	h := ozoneHistory(t, 50)
	q := NewLocationMonitoring("lm1", geo.Pt(5, 5), 0, 30, 100, 10, h, 2)
	q.Alpha = 0.5
	q.CreatePointQuery(0)
	// Take a cheap successful sample to build surplus.
	q.ApplyResults(0, true, 0.1, 0.9)
	// Advance past desired times artificially by marking them satisfied.
	for _, d := range q.Desired {
		q.ApplyResults(int(d), true, 0.1, 0.9)
	}
	// Now past schedule -> urgent branch; value-based budget still finite.
	p, ok := q.CreatePointQuery(29)
	if ok && (math.IsInf(p.Budget(), 0) || math.IsNaN(p.Budget())) {
		t.Errorf("budget must be finite, got %v", p.Budget())
	}
}

func TestLocationMonitoringQualityBounds(t *testing.T) {
	h := ozoneHistory(t, 50)
	q := NewLocationMonitoring("lm1", geo.Pt(5, 5), 0, 20, 100, 10, h, 4)
	if q.Quality() != 0 {
		t.Error("quality before sampling != 0")
	}
	q.CreatePointQuery(0)
	for slot := 0; slot <= 20; slot++ {
		q.ApplyResults(slot, true, 0.5, 0.8)
	}
	if q.Quality() < 0 {
		t.Errorf("quality = %v", q.Quality())
	}
}

func TestRegionMonitoringValueAndF(t *testing.T) {
	grid := geo.NewUnitGrid(20, 15)
	model := gp.New(gp.SquaredExponential{Sigma2: 4, Length: 3}, 0.1)
	q := NewRegionMonitoring("rm1", geo.NewRect(2, 2, 10, 8), 0, 20, 200, model, grid)
	if len(q.Targets()) == 0 {
		t.Fatal("no target cells")
	}
	if q.F(nil) != 0 {
		t.Error("F(empty) != 0")
	}
	obs := []geo.Point{geo.Pt(4, 4), geo.Pt(8, 6)}
	f2 := q.F(obs)
	if f2 <= 0 {
		t.Fatalf("F = %v", f2)
	}
	// Monotone in observations.
	f3 := q.F(append(obs, geo.Pt(6, 5)))
	if f3 < f2-1e-9 {
		t.Errorf("F not monotone: %v -> %v", f2, f3)
	}
	v := q.ValueOf(obs, []float64{0.9, 0.8})
	if v <= 0 || math.IsNaN(v) {
		t.Errorf("value = %v", v)
	}
}

func TestRegionMonitoringRuntime(t *testing.T) {
	grid := geo.NewUnitGrid(20, 15)
	model := gp.New(gp.SquaredExponential{Sigma2: 4, Length: 3}, 0.1)
	q := NewRegionMonitoring("rm1", geo.NewRect(2, 2, 10, 8), 3, 20, 100, model, grid)
	if q.Active(2) || !q.Active(3) || !q.Active(20) || q.Active(21) {
		t.Error("Active window wrong")
	}
	q.ResetIfNeeded(3)
	q.Record(geo.Pt(5, 5), 0.9, 7)
	if q.Spent != 7 || len(q.ObsPoints) != 1 {
		t.Error("Record bookkeeping wrong")
	}
	if q.RemainingBudget() != 93 {
		t.Errorf("remaining = %v", q.RemainingBudget())
	}
	if q.Value() <= 0 {
		t.Error("value after recording should be positive")
	}
	if q.Quality() <= 0 {
		t.Error("quality should be positive")
	}
	// Reset at start slot clears state.
	q.ResetIfNeeded(3)
	if len(q.ObsPoints) != 0 || q.Spent != 0 {
		t.Error("ResetIfNeeded at start slot must clear state")
	}
}

func TestRegionMonitoringQualityCanExceedOne(t *testing.T) {
	// With RefFraction < 1 and dense high-quality coverage, quality > 1 is
	// reachable (the paper's Fig 9(b) shows >1 most of the time).
	grid := geo.NewUnitGrid(20, 15)
	model := gp.New(gp.SquaredExponential{Sigma2: 4, Length: 4}, 0.01)
	q := NewRegionMonitoring("rm1", geo.NewRect(2, 2, 8, 8), 0, 10, 100, model, grid)
	q.ResetIfNeeded(0)
	for x := 2.0; x <= 8; x += 2 {
		for y := 2.0; y <= 8; y += 2 {
			q.Record(geo.Pt(x, y), 1.0, 0)
		}
	}
	if q.Quality() <= 1 {
		t.Errorf("dense coverage quality = %v, want > 1", q.Quality())
	}
}

func TestEventDetection(t *testing.T) {
	e := NewEventDetection("ev1", geo.Pt(5, 5), 0, 10, 80, 0.9, 30, 10)
	if !e.Active(0) || e.Active(11) {
		t.Error("Active window wrong")
	}
	// Required readings: theta 0.7 -> 1-(0.3)^k >= 0.9 -> k=2.
	if k := e.RequiredReadings(0.7); k != 2 {
		t.Errorf("RequiredReadings(0.7) = %d want 2", k)
	}
	if k := e.RequiredReadings(0); k != 1 {
		t.Errorf("RequiredReadings(0) = %d want 1", k)
	}
	if k := e.RequiredReadings(0.01); k != 5 {
		t.Errorf("RequiredReadings(0.01) = %d want capped 5", k)
	}
	mp, ok := e.CreatePointQuery(3)
	if !ok || mp.K != 2 {
		t.Fatalf("CreatePointQuery: ok=%v K=%d", ok, mp.K)
	}
	if _, ok := e.CreatePointQuery(99); ok {
		t.Error("inactive slot should create no query")
	}

	conf := e.DetectionConfidence([]float64{0.7, 0.7})
	if math.Abs(conf-0.91) > 1e-9 {
		t.Errorf("fused confidence = %v want 0.91", conf)
	}

	// Event above threshold with confident readings.
	det, c := e.Evaluate([]float64{85, 90}, []float64{0.7, 0.7})
	if !det || c < 0.9 {
		t.Errorf("Evaluate = %v, %v; want detection", det, c)
	}
	// Below threshold: no event.
	if det, _ := e.Evaluate([]float64{50, 60}, []float64{0.7, 0.7}); det {
		t.Error("false positive below threshold")
	}
	// Insufficient confidence: no event.
	if det, _ := e.Evaluate([]float64{85}, []float64{0.5}); det {
		t.Error("detection without confidence")
	}
	// Degenerate inputs.
	if det, c := e.Evaluate(nil, nil); det || c != 0 {
		t.Error("empty evaluate should be negative")
	}
	if det, _ := e.Evaluate([]float64{85}, []float64{0}); det {
		t.Error("zero-quality readings cannot detect")
	}
}

func TestEventDetectionConfidenceClamping(t *testing.T) {
	e := NewEventDetection("ev", geo.Pt(0, 0), 0, 5, 10, 2.0, 5, 5) // confidence > 1 clamps
	if e.Confidence >= 1 {
		t.Errorf("confidence not clamped: %v", e.Confidence)
	}
	e2 := NewEventDetection("ev", geo.Pt(0, 0), 0, 5, 10, -1, 5, 5)
	if e2.Confidence != 0.9 {
		t.Errorf("non-positive confidence default = %v", e2.Confidence)
	}
}
