package query

import (
	"math"
	"testing"

	"repro/internal/geo"
)

func TestRegionEventLifecycle(t *testing.T) {
	grid := geo.NewUnitGrid(20, 15)
	e := NewRegionEvent("re1", geo.NewRect(2, 2, 12, 10), 3, 10, 50, 0.8, 100, 4, grid)
	if e.Active(2) || !e.Active(3) || !e.Active(10) || e.Active(11) {
		t.Error("Active window wrong")
	}
	probe, ok := e.CreateProbe(5)
	if !ok {
		t.Fatal("active slot produced no probe")
	}
	if probe.Region != e.Region || probe.Budget() != 100 {
		t.Errorf("probe misconfigured: %+v", probe)
	}
	if _, ok := e.CreateProbe(99); ok {
		t.Error("inactive slot created a probe")
	}
}

func TestRegionEventConfidenceClamping(t *testing.T) {
	grid := geo.NewUnitGrid(10, 10)
	e := NewRegionEvent("re", geo.NewRect(0, 0, 5, 5), 0, 5, 10, 2.0, 10, 3, grid)
	if e.Confidence >= 1 {
		t.Errorf("confidence not clamped: %v", e.Confidence)
	}
	e2 := NewRegionEvent("re", geo.NewRect(0, 0, 5, 5), 0, 5, 10, -1, 10, 3, grid)
	if e2.Confidence != 0.9 {
		t.Errorf("non-positive confidence default = %v", e2.Confidence)
	}
}

func TestRegionEventDetectionConfidence(t *testing.T) {
	grid := geo.NewUnitGrid(10, 10)
	e := NewRegionEvent("re", geo.NewRect(0, 0, 5, 5), 0, 5, 10, 0.8, 10, 3, grid)

	// Coverage scales confidence: trusted readings but half coverage.
	full := e.DetectionConfidence([]float64{0.9, 0.9}, 1.0)
	half := e.DetectionConfidence([]float64{0.9, 0.9}, 0.5)
	if math.Abs(half-full/2) > 1e-12 {
		t.Errorf("coverage should scale confidence linearly: %v vs %v", half, full)
	}
	// Zero coverage kills confidence regardless of trust.
	if c := e.DetectionConfidence([]float64{1, 1}, 0); c != 0 {
		t.Errorf("zero-coverage confidence = %v", c)
	}
	// Inputs clamp.
	if c := e.DetectionConfidence([]float64{2, -1}, 2); c != 1 {
		t.Errorf("clamped confidence = %v want 1", c)
	}
}

func TestRegionEventEvaluate(t *testing.T) {
	grid := geo.NewUnitGrid(10, 10)
	e := NewRegionEvent("re", geo.NewRect(0, 0, 5, 5), 0, 5, 50, 0.7, 10, 3, grid)

	// Above-threshold average with good coverage and trust: detected.
	det, conf, avg := e.Evaluate([]float64{55, 60}, []float64{0.9, 0.8}, 0.95)
	if !det {
		t.Errorf("expected detection: conf=%v avg=%v", conf, avg)
	}
	if avg <= 50 {
		t.Errorf("weighted avg = %v", avg)
	}

	// Same readings, poor coverage: confidence collapses, no detection.
	if det, conf, _ := e.Evaluate([]float64{55, 60}, []float64{0.9, 0.8}, 0.3); det || conf >= 0.7 {
		t.Errorf("low-coverage detection: det=%v conf=%v", det, conf)
	}

	// Below threshold: no detection even at full confidence.
	if det, _, _ := e.Evaluate([]float64{40, 45}, []float64{0.9, 0.9}, 1.0); det {
		t.Error("false positive below threshold")
	}

	// Degenerate inputs.
	if det, conf, avg := e.Evaluate(nil, nil, 1); det || conf != 0 || avg != 0 {
		t.Error("empty evaluate should be all-zero")
	}
	if det, _, _ := e.Evaluate([]float64{60}, []float64{0}, 1); det {
		t.Error("zero-quality readings cannot detect")
	}
	if det, _, _ := e.Evaluate([]float64{60, 61}, []float64{0.9}, 1); det {
		t.Error("mismatched lengths must not detect")
	}
}

func TestRegionEventWeightedAverage(t *testing.T) {
	grid := geo.NewUnitGrid(10, 10)
	e := NewRegionEvent("re", geo.NewRect(0, 0, 5, 5), 0, 5, 0, 0.5, 10, 3, grid)
	// Weighted mean of 10 (w=0.9) and 20 (w=0.1) = 11.
	_, _, avg := e.Evaluate([]float64{10, 20}, []float64{0.9, 0.1}, 1)
	if math.Abs(avg-11) > 1e-9 {
		t.Errorf("weighted avg = %v want 11", avg)
	}
}
