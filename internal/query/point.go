package query

import (
	"fmt"

	"repro/internal/geo"
	"repro/internal/sensornet"
)

// Point is a single-sensor point query (§2.2.1): "the value of a
// phenomenon at a certain location", answered by one sensor reading. Its
// valuation is Eq. 3:
//
//	v_q(s) = B_q * theta_{q,s}   if theta_min <= theta_{q,s} <= 1
//	v_q(s) = 0                   otherwise
//
// with theta from Eq. 4 (distance, inaccuracy, trust).
type Point struct {
	ID  string
	Loc geo.Point
	// B is the query budget B_q.
	B float64
	// ThetaMin is the minimum acceptable quality (0.2 in the evaluation).
	ThetaMin float64
	// DMax is the maximum distance at which sensors can provide data
	// (5 for RWM, 10 for RNC in the evaluation).
	DMax float64
}

// NewPoint builds a point query with the evaluation defaults for
// theta_min (0.2).
func NewPoint(id string, loc geo.Point, budget, dmax float64) *Point {
	return &Point{ID: id, Loc: loc, B: budget, ThetaMin: 0.2, DMax: dmax}
}

// QID implements Query.
func (p *Point) QID() string { return p.ID }

// Budget implements Query.
func (p *Point) Budget() float64 { return p.B }

// Theta returns the reading quality theta_{q,s} of Eq. 4 for sensor s.
func (p *Point) Theta(s *sensornet.Sensor) float64 { return s.Quality(p.Loc, p.DMax) }

// ValueSingle returns v_q(s) of Eq. 3 for a single sensor.
func (p *Point) ValueSingle(s *sensornet.Sensor) float64 {
	theta := p.Theta(s)
	if theta < p.ThetaMin {
		return 0
	}
	return p.B * theta
}

// Relevant implements Query.
func (p *Point) Relevant(s *sensornet.Sensor) bool {
	return p.ValueSingle(s) > 0
}

// RelevantBase implements RelevanceBased: the relevance test evaluates
// v_q(s) (Eq. 3), which is exactly the pointState base value.
func (p *Point) RelevantBase(s *sensornet.Sensor) (bool, float64) {
	v := p.ValueSingle(s)
	return v > 0, v
}

// RelevanceFootprint implements Footprinted: quality (Eq. 4) is zero for
// sensors farther than DMax from the query location, so the footprint is
// the DMax box around Loc.
func (p *Point) RelevanceFootprint() geo.Rect {
	return geo.Rect{MinX: p.Loc.X - p.DMax, MinY: p.Loc.Y - p.DMax,
		MaxX: p.Loc.X + p.DMax, MaxY: p.Loc.Y + p.DMax}
}

// NewState implements Query. As a set valuation a point query is worth the
// best of its sensors: v_q(S) = max_{s in S} v_q(s).
func (p *Point) NewState() State { return &pointState{q: p} }

// SubmodularValuation implements Submodular: a max over singletons has
// non-increasing marginal gains.
func (p *Point) SubmodularValuation() bool { return true }

type pointState struct {
	baseState
	q    *Point
	best float64
}

func (st *pointState) Query() Query   { return st.q }
func (st *pointState) Value() float64 { return st.best }

func (st *pointState) Gain(s *sensornet.Sensor) float64 {
	return st.GainFrom(st.BaseValue(s))
}

// BaseValue implements PairCached: v_q(s) depends only on the fixed
// sensor attributes and the query location, never on the selection state.
func (st *pointState) BaseValue(s *sensornet.Sensor) float64 {
	return st.q.ValueSingle(s)
}

// GainFrom implements PairCached.
func (st *pointState) GainFrom(v float64) float64 { return v - st.best }

func (st *pointState) Add(s *sensornet.Sensor) {
	if v := st.q.ValueSingle(s); v > st.best {
		st.best = v
	}
	st.record(s)
}

// MultiPoint is a multiple-sensor point query (§2.2.1): it asks for up to K
// redundant readings at one location, e.g. to assess trustworthiness. Its
// valuation averages the K best reading qualities:
//
//	v_q(S) = B_q * (sum of top-K theta_{q,s}) / K,
//
// which is submodular and rewards redundancy with diminishing returns.
type MultiPoint struct {
	ID       string
	Loc      geo.Point
	B        float64
	ThetaMin float64
	DMax     float64
	K        int
}

// NewMultiPoint builds a multiple-sensor point query asking for k readings.
func NewMultiPoint(id string, loc geo.Point, budget, dmax float64, k int) *MultiPoint {
	if k < 1 {
		k = 1
	}
	return &MultiPoint{ID: id, Loc: loc, B: budget, ThetaMin: 0.2, DMax: dmax, K: k}
}

// QID implements Query.
func (m *MultiPoint) QID() string { return m.ID }

// Budget implements Query.
func (m *MultiPoint) Budget() float64 { return m.B }

// Relevant implements Query.
func (m *MultiPoint) Relevant(s *sensornet.Sensor) bool {
	return s.Quality(m.Loc, m.DMax) >= m.ThetaMin
}

// RelevantBase implements RelevanceBased: the relevance threshold test
// computes the thresholded quality that is the multiPointState base.
func (m *MultiPoint) RelevantBase(s *sensornet.Sensor) (bool, float64) {
	t := s.Quality(m.Loc, m.DMax)
	if t < m.ThetaMin {
		return false, 0
	}
	return true, t
}

// RelevanceFootprint implements Footprinted: quality is zero beyond DMax
// of the query location.
func (m *MultiPoint) RelevanceFootprint() geo.Rect {
	return geo.Rect{MinX: m.Loc.X - m.DMax, MinY: m.Loc.Y - m.DMax,
		MaxX: m.Loc.X + m.DMax, MaxY: m.Loc.Y + m.DMax}
}

// NewState implements Query.
func (m *MultiPoint) NewState() State {
	return &multiPointState{q: m, top: make([]float64, 0, m.K)}
}

// SubmodularValuation implements Submodular: a top-K sum has
// non-increasing marginal gains.
func (m *MultiPoint) SubmodularValuation() bool { return true }

type multiPointState struct {
	baseState
	q   *MultiPoint
	top []float64 // qualities of the best readings so far, ascending, len <= K
}

func (st *multiPointState) Query() Query { return st.q }

func (st *multiPointState) Value() float64 {
	var sum float64
	for _, t := range st.top {
		sum += t
	}
	return st.q.B * sum / float64(st.q.K)
}

func (st *multiPointState) theta(s *sensornet.Sensor) float64 {
	t := s.Quality(st.q.Loc, st.q.DMax)
	if t < st.q.ThetaMin {
		return 0
	}
	return t
}

func (st *multiPointState) Gain(s *sensornet.Sensor) float64 {
	return st.GainFrom(st.BaseValue(s))
}

// BaseValue implements PairCached: the thresholded reading quality is a
// pure function of the sensor and the query.
func (st *multiPointState) BaseValue(s *sensornet.Sensor) float64 {
	return st.theta(s)
}

// GainFrom implements PairCached.
func (st *multiPointState) GainFrom(t float64) float64 {
	if t == 0 {
		return 0
	}
	if len(st.top) < st.q.K {
		return st.q.B * t / float64(st.q.K)
	}
	if t > st.top[0] {
		return st.q.B * (t - st.top[0]) / float64(st.q.K)
	}
	return 0
}

func (st *multiPointState) Add(s *sensornet.Sensor) {
	t := st.theta(s)
	if t > 0 {
		if len(st.top) < st.q.K {
			st.top = append(st.top, t)
		} else if t > st.top[0] {
			st.top[0] = t
		}
		// Keep ascending order; K is small so insertion sort suffices.
		for i := 1; i < len(st.top); i++ {
			for j := i; j > 0 && st.top[j] < st.top[j-1]; j-- {
				st.top[j], st.top[j-1] = st.top[j-1], st.top[j]
			}
		}
	}
	st.record(s)
}

// PointID formats the conventional identifier for machine-generated point
// queries (from monitoring queries), keeping payment traces readable.
func PointID(parent string, slot int, extra string) string {
	if extra == "" {
		return fmt.Sprintf("%s@t%d", parent, slot)
	}
	return fmt.Sprintf("%s@t%d/%s", parent, slot, extra)
}
