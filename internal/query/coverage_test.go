package query

import (
	"math"
	"testing"

	"repro/internal/geo"
	"repro/internal/gp"
	"repro/internal/regression"
)

// Accessor and edge-case coverage that the behavioural tests above do not
// reach through interfaces.

func TestAccessors(t *testing.T) {
	p := NewPoint("p1", geo.Pt(1, 2), 10, 5)
	if p.QID() != "p1" || p.Budget() != 10 {
		t.Error("Point accessors")
	}
	mp := NewMultiPoint("mp1", geo.Pt(1, 2), 10, 5, 2)
	if mp.QID() != "mp1" || mp.Budget() != 10 {
		t.Error("MultiPoint accessors")
	}
	if !mp.Relevant(sensorAt(1, 1, 2)) || mp.Relevant(sensorAt(2, 50, 50)) {
		t.Error("MultiPoint relevance")
	}
	st := mp.NewState()
	if st.Query() != Query(mp) {
		t.Error("MultiPoint state query identity")
	}
	// Low-quality sensor contributes zero theta.
	far := sensorAt(3, 5.2, 2) // distance 4.2 of dmax 5 -> theta 0.16 < 0.2
	if g := st.Gain(far); g != 0 {
		t.Errorf("below-threshold multipoint gain = %v", g)
	}
	st.Add(far)
	if st.Value() != 0 {
		t.Error("below-threshold sensor contributed value")
	}

	g := geo.NewUnitGrid(50, 50)
	a := NewAggregate("a1", geo.NewRect(0, 0, 10, 10), 30, 5, g)
	if a.QID() != "a1" || a.Budget() != 30 {
		t.Error("Aggregate accessors")
	}
	if a.NewState().Query() != Query(a) {
		t.Error("Aggregate state query identity")
	}
}

func TestLocationMonitoringNoHistoryInWindowFallback(t *testing.T) {
	// History entirely outside the query window: evenly spaced fallback.
	hist, _ := regression.NewSeries([]float64{100, 101, 102, 103}, []float64{1, 2, 3, 4})
	q := NewLocationMonitoring("lm", geo.Pt(0, 0), 0, 9, 50, 5, hist, 4)
	if len(q.Desired) == 0 {
		t.Fatal("fallback produced no desired times")
	}
	for _, d := range q.Desired {
		if d < 0 || d > 9 {
			t.Errorf("fallback desired time %v outside window", d)
		}
	}
	// More samples than slots clamps.
	q2 := NewLocationMonitoring("lm2", geo.Pt(0, 0), 0, 2, 50, 5, hist, 10)
	if len(q2.Desired) > 3 {
		t.Errorf("desired times %d exceed window size", len(q2.Desired))
	}
}

func TestCreatePointQueryBaselineBranches(t *testing.T) {
	hist, _ := regression.NewSeries(
		[]float64{0, 1, 2, 3, 4, 5, 6, 7, 8, 9},
		[]float64{5, 7, 6, 9, 8, 11, 10, 13, 12, 15})
	q := NewLocationMonitoring("lm", geo.Pt(0, 0), 0, 9, 100, 5, hist, 3)
	if len(q.Desired) == 0 {
		t.Fatal("no desired times")
	}
	// Non-desired slot: no baseline query.
	nonDesired := -1
	for s := 0; s <= 9; s++ {
		if !q.isDesired(s) {
			nonDesired = s
			break
		}
	}
	if nonDesired >= 0 {
		if _, ok := q.CreatePointQueryBaseline(nonDesired); ok && nonDesired != 0 {
			t.Error("baseline created a query off-schedule")
		}
	}
	// Desired slot: query created with positive budget.
	d0 := int(q.Desired[0])
	p, ok := q.CreatePointQueryBaseline(d0)
	if !ok || p.Budget() <= 0 {
		t.Fatalf("baseline desired-slot query: ok=%v", ok)
	}
	if p.Loc != q.Loc {
		t.Error("baseline query at wrong location")
	}
}

func TestLocationMonitoringQualityZeroBudget(t *testing.T) {
	hist, _ := regression.NewSeries([]float64{0, 1, 2}, []float64{1, 2, 3})
	q := NewLocationMonitoring("lm", geo.Pt(0, 0), 0, 2, 0, 5, hist, 2)
	if q.Quality() != 0 {
		t.Error("zero-budget quality != 0")
	}
}

func TestRegionMonitoringThetaAndPlanValue(t *testing.T) {
	grid := geo.NewUnitGrid(20, 15)
	model := gp.New(gp.SquaredExponential{Sigma2: 4, Length: 3}, 0.1)
	q := NewRegionMonitoring("rm", geo.NewRect(2, 2, 10, 8), 0, 10, 100, model, grid)

	s := sensorAt(1, 5, 5)
	s.Inaccuracy = 0.1
	s.Trust = 0.8
	if got := q.Theta(s); math.Abs(got-0.72) > 1e-12 {
		t.Errorf("Theta = %v want 0.72", got)
	}

	// PlanValue with no accumulated state equals ValueOf.
	pts := []geo.Point{geo.Pt(4, 4), geo.Pt(7, 6)}
	thetas := []float64{0.9, 0.8}
	if a, b := q.PlanValue(pts, thetas), q.ValueOf(pts, thetas); math.Abs(a-b) > 1e-9 {
		t.Errorf("PlanValue %v != ValueOf %v on empty state", a, b)
	}

	// After recording, PlanValue of an empty plan equals current Value.
	q.ResetIfNeeded(0)
	q.Record(geo.Pt(4, 4), 0.9, 5)
	if a, b := q.PlanValue(nil, nil), q.Value(); math.Abs(a-b) > 1e-9 {
		t.Errorf("PlanValue(nil) %v != Value %v", a, b)
	}

	// Marginal through PlanValue diminishes with accumulated state
	// (submodularity of F carries through Eq. 7's numerator).
	freshGain := q.ValueOf([]geo.Point{geo.Pt(4.2, 4.2)}, []float64{0.9})
	condGain := q.PlanValue([]geo.Point{geo.Pt(4.2, 4.2)}, []float64{0.9}) - q.Value()
	if condGain > freshGain+1e-9 {
		t.Errorf("conditioned gain %v exceeds fresh gain %v", condGain, freshGain)
	}

	// Zero-budget region query quality is 0.
	q0 := NewRegionMonitoring("rm0", geo.NewRect(2, 2, 4, 4), 0, 5, 0, model, grid)
	if q0.Quality() != 0 {
		t.Error("zero-budget region quality != 0")
	}
}

func TestDetectionConfidenceClampsInputs(t *testing.T) {
	e := NewEventDetection("e", geo.Pt(0, 0), 0, 5, 10, 0.9, 10, 5)
	// Out-of-range qualities clamp instead of producing nonsense.
	c := e.DetectionConfidence([]float64{-0.5, 1.5})
	if c != 1 {
		t.Errorf("clamped confidence = %v want 1 (theta 1.5 -> 1)", c)
	}
	if got := e.DetectionConfidence(nil); got != 0 {
		t.Errorf("empty confidence = %v", got)
	}
}

func TestMaxIntHelper(t *testing.T) {
	if maxInt(3, 5) != 5 || maxInt(5, 3) != 5 || maxInt(-1, -2) != -1 {
		t.Error("maxInt broken")
	}
}
