package query

import (
	"repro/internal/geo"
)

// RegionEvent is the Q4 query of §2.3: "notify me when avg(phenomenon) > x
// with confidence > alpha in region R in the period [t1, t2]". Like
// EventDetection it is the redundant-sampling extension the paper leaves
// as future work, lifted from a single location to a region: each active
// slot the query materializes a spatial-aggregate probe; the fused
// detection confidence combines reading trustworthiness with how much of
// the region the readings actually covered (an uncovered region can hide
// a counter-example to the average).
type RegionEvent struct {
	ID     string
	Region geo.Rect
	Start  int
	End    int
	// Threshold is x: the event is the regional average exceeding it.
	Threshold float64
	// Confidence is alpha, the required detection confidence in (0,1).
	Confidence float64
	// BudgetPerSlot bounds the per-slot spend on probes.
	BudgetPerSlot float64
	// SensingRange is the coverage radius used by the aggregate probe.
	SensingRange float64
	// Grid discretizes coverage computation.
	Grid geo.Grid
}

// NewRegionEvent builds a region event-detection query.
func NewRegionEvent(id string, region geo.Rect, start, end int, threshold, confidence, budgetPerSlot, sensingRange float64, grid geo.Grid) *RegionEvent {
	if confidence <= 0 {
		confidence = 0.9
	}
	if confidence >= 1 {
		confidence = 0.999
	}
	return &RegionEvent{
		ID:            id,
		Region:        region,
		Start:         start,
		End:           end,
		Threshold:     threshold,
		Confidence:    confidence,
		BudgetPerSlot: budgetPerSlot,
		SensingRange:  sensingRange,
		Grid:          grid,
	}
}

// Active reports whether the query runs during slot t.
func (e *RegionEvent) Active(t int) bool { return t >= e.Start && t <= e.End }

// CreateProbe materializes this slot's aggregate probe: an Aggregate query
// whose coverage-weighted valuation makes the joint scheduler prefer
// well-spread, trustworthy sensors — exactly what regional event
// confidence needs.
func (e *RegionEvent) CreateProbe(t int) (*Aggregate, bool) {
	if !e.Active(t) {
		return nil, false
	}
	return NewAggregate(PointID(e.ID, t, "rev"), e.Region, e.BudgetPerSlot, e.SensingRange, e.Grid), true
}

// DetectionConfidence fuses reading qualities and achieved coverage:
// coverage * (1 - prod(1 - theta_i)). Full trust cannot compensate for an
// unobserved half of the region, and full coverage cannot compensate for
// untrustworthy readings.
func (e *RegionEvent) DetectionConfidence(thetas []float64, coverage float64) float64 {
	if coverage < 0 {
		coverage = 0
	}
	if coverage > 1 {
		coverage = 1
	}
	miss := 1.0
	for _, t := range thetas {
		if t < 0 {
			t = 0
		}
		if t > 1 {
			t = 1
		}
		miss *= 1 - t
	}
	return coverage * (1 - miss)
}

// Evaluate fuses the probe's readings (values with matching qualities) and
// the achieved coverage fraction; it reports whether the quality-weighted
// regional average exceeds the threshold with sufficient confidence.
func (e *RegionEvent) Evaluate(values, thetas []float64, coverage float64) (detected bool, confidence float64, avg float64) {
	if len(values) == 0 || len(values) != len(thetas) {
		return false, 0, 0
	}
	confidence = e.DetectionConfidence(thetas, coverage)
	var wsum, wv float64
	for i, v := range values {
		w := thetas[i]
		if w <= 0 {
			continue
		}
		wsum += w
		wv += w * v
	}
	if wsum == 0 {
		return false, 0, 0
	}
	avg = wv / wsum
	detected = avg > e.Threshold && confidence >= e.Confidence
	return detected, confidence, avg
}
