package query

import (
	"sync"

	"repro/internal/geo"
	"repro/internal/sensornet"
)

// Aggregate is a spatial aggregate query (§2.2.2): the issuer wants an
// aggregate (avg/min/max) of a phenomenon over a region. Its valuation is
// Eq. 5:
//
//	v_q(S) = B_q * G_q(S) * (sum_s theta_s) / |S|
//
// where G_q is the fraction of the region covered by the sensors'
// sensing disks and theta_s is the reading quality of Eq. 4 relative to
// the sensor's own position inside the region (distance term vanishes, so
// theta_s = (1-gamma_s)*tau_s for in-range sensors).
type Aggregate struct {
	ID     string
	Region geo.Rect
	B      float64
	// SensingRange is the coverage radius of a sensor reading (10 units in
	// the evaluation).
	SensingRange float64
	// Grid discretizes coverage computation.
	Grid geo.Grid
	// MaxDist is how far outside the region a sensor may sit while still
	// contributing coverage; sensors farther than this are irrelevant.
	MaxDist float64
}

// NewAggregate builds a spatial aggregate query over region.
func NewAggregate(id string, region geo.Rect, budget, sensingRange float64, grid geo.Grid) *Aggregate {
	return &Aggregate{
		ID:           id,
		Region:       region,
		B:            budget,
		SensingRange: sensingRange,
		Grid:         grid,
		MaxDist:      sensingRange,
	}
}

// QID implements Query.
func (a *Aggregate) QID() string { return a.ID }

// Budget implements Query.
func (a *Aggregate) Budget() float64 { return a.B }

// Relevant implements Query: a sensor can contribute iff its sensing disk
// reaches the region.
func (a *Aggregate) Relevant(s *sensornet.Sensor) bool {
	return a.Region.DistToPoint(s.Pos) <= a.MaxDist
}

// RelevanceFootprint implements Footprinted: Relevant tests
// DistToPoint <= MaxDist, so the region expanded by MaxDist contains
// every relevant sensor position.
func (a *Aggregate) RelevanceFootprint() geo.Rect {
	return a.Region.Expand(a.MaxDist)
}

// theta is the reading quality of a sensor for the aggregate: inaccuracy
// and trust matter; the distance term of Eq. 4 is 1 because the sensor
// measures at its own location inside (or at the edge of) the region.
func (a *Aggregate) theta(s *sensornet.Sensor) float64 {
	return (1 - s.Inaccuracy) * s.Trust
}

// NewState implements Query. The state keeps a covered-cells bitmap so
// marginal coverage is O(region cells) instead of O(cells * |S|).
//
// Aggregate deliberately does NOT implement Submodular: the coverage
// term G_q alone would be, but Eq. 5 multiplies it by the *mean* reading
// quality, so committing a low-quality high-coverage sensor can raise a
// high-quality sensor's later marginal gain. The lazy-greedy strategy
// therefore re-evaluates aggregate gains eagerly rather than trusting
// cached bounds.
func (a *Aggregate) NewState() State {
	cells := a.Grid.CellsIn(a.Region)
	return &aggregateState{q: a, cells: cells, covered: make([]bool, len(cells))}
}

type aggregateState struct {
	baseState
	q          *Aggregate
	cells      []geo.Point
	covered    []bool
	coveredCnt int
	sumTheta   float64
	n          int

	// cellCache memoizes, per sensor ID, the indices of cells within the
	// sensing range of that sensor. Valid for the state's lifetime (one
	// selection run = one world epoch): sensors do not move mid-slot, so
	// a sensor's in-range cell set is a function of its position alone.
	// Lazy-greedy calls Gain for the same sensor repeatedly as its cached
	// bound goes stale; the cache turns each repeat into a walk of the
	// sensor's (usually small) in-range list instead of all region cells.
	cellCache map[int][]int32
	// ncCache maintains, per sensor ID, how many of the sensor's in-range
	// cells are currently uncovered — the nc of Gain — updated
	// incrementally: a cell flips covered at most once (coverage is
	// monotone), and the flip decrements every registered sensor via
	// cellSensors. Gain is then O(1) arithmetic instead of a walk of the
	// in-range list, with a bit-identical result (nc is an integer).
	ncCache map[int]int32
	// cellSensors registers, per still-uncovered cell, the sensor IDs
	// whose ncCache entries count it. Freed cell by cell as coverage
	// flips.
	cellSensors [][]int32
	hits        int64
	lookups     int64
	// mu serializes the memo structures above: Gain is called
	// concurrently by sharded scan lanes, and a cache miss mutates
	// cellCache, ncCache and — crucially — cellSensors entries shared
	// across lanes. The memoized nc is an integer and covered[] only
	// changes between scan barriers, so lock order cannot change any
	// gain value. Add runs strictly between scan barriers and needs no
	// lock.
	mu sync.Mutex
}

func (st *aggregateState) Query() Query { return st.q }

// GeomCacheStats implements GeomCached.
func (st *aggregateState) GeomCacheStats() (hits, lookups int64) {
	return st.hits, st.lookups
}

// inRange returns the indices of st.cells within sensing range of s,
// memoized by sensor ID.
func (st *aggregateState) inRange(s *sensornet.Sensor) []int32 {
	st.lookups++
	if idx, ok := st.cellCache[s.ID]; ok {
		st.hits++
		return idx
	}
	r2 := st.q.SensingRange * st.q.SensingRange
	idx := []int32{}
	for i, c := range st.cells {
		if c.Dist2(s.Pos) <= r2 {
			idx = append(idx, int32(i))
		}
	}
	if st.cellCache == nil {
		st.cellCache = make(map[int][]int32)
	}
	st.cellCache[s.ID] = idx
	return idx
}

func (st *aggregateState) value(coveredCnt int, sumTheta float64, n int) float64 {
	if n == 0 || len(st.cells) == 0 {
		return 0
	}
	g := float64(coveredCnt) / float64(len(st.cells))
	return st.q.B * g * sumTheta / float64(n)
}

func (st *aggregateState) Value() float64 {
	return st.value(st.coveredCnt, st.sumTheta, st.n)
}

// newlyCovered returns how many cells s would newly cover, from the
// incrementally maintained count when available. A miss walks the
// sensor's in-range list once and registers the sensor on its uncovered
// cells so later coverage flips keep the count current. Safe for
// concurrent use by scan lanes (see mu).
func (st *aggregateState) newlyCovered(s *sensornet.Sensor) int {
	st.mu.Lock()
	defer st.mu.Unlock()
	st.lookups++
	if nc, ok := st.ncCache[s.ID]; ok {
		st.hits++
		return int(nc)
	}
	if st.cellSensors == nil {
		st.cellSensors = make([][]int32, len(st.cells))
	}
	cnt := int32(0)
	for _, i := range st.inRange(s) {
		if !st.covered[i] {
			cnt++
			st.cellSensors[i] = append(st.cellSensors[i], int32(s.ID))
		}
	}
	if st.ncCache == nil {
		st.ncCache = make(map[int]int32)
	}
	st.ncCache[s.ID] = cnt
	return int(cnt)
}

func (st *aggregateState) Gain(s *sensornet.Sensor) float64 {
	nc := st.newlyCovered(s)
	after := st.value(st.coveredCnt+nc, st.sumTheta+st.q.theta(s), st.n+1)
	return after - st.Value()
}

func (st *aggregateState) Add(s *sensornet.Sensor) {
	for _, i := range st.inRange(s) {
		if !st.covered[i] {
			st.covered[i] = true
			st.coveredCnt++
			if st.cellSensors != nil {
				for _, sid := range st.cellSensors[i] {
					st.ncCache[int(sid)]--
				}
				st.cellSensors[i] = nil
			}
		}
	}
	st.sumTheta += st.q.theta(s)
	st.n++
	st.record(s)
}

// Trajectory is a query over a trajectory (§2.2.3), "a special case of
// spatial aggregate query in which instead of providing a region of
// interest, a trajectory is specified". Coverage is the fraction of the
// trajectory's sample points within sensing range of a selected sensor.
type Trajectory struct {
	ID           string
	Path         geo.Trajectory
	B            float64
	SensingRange float64
	// SampleStep is the spacing of coverage sample points along the path.
	SampleStep float64

	samples []geo.Point
}

// NewTrajectory builds a trajectory query.
func NewTrajectory(id string, path geo.Trajectory, budget, sensingRange float64) *Trajectory {
	t := &Trajectory{ID: id, Path: path, B: budget, SensingRange: sensingRange, SampleStep: 1}
	t.samples = path.SamplePoints(t.SampleStep)
	return t
}

// QID implements Query.
func (t *Trajectory) QID() string { return t.ID }

// Budget implements Query.
func (t *Trajectory) Budget() float64 { return t.B }

// Relevant implements Query.
func (t *Trajectory) Relevant(s *sensornet.Sensor) bool {
	r2 := t.SensingRange * t.SensingRange
	for _, p := range t.samples {
		if p.Dist2(s.Pos) <= r2 {
			return true
		}
	}
	return false
}

// RelevanceFootprint implements Footprinted: a relevant sensor is within
// SensingRange of some sample point, all of which lie inside the path's
// bounding rectangle.
func (t *Trajectory) RelevanceFootprint() geo.Rect {
	return t.Path.BoundingRect().Expand(t.SensingRange)
}

// NewState implements Query; the valuation mirrors Eq. 5 with polyline
// coverage.
func (t *Trajectory) NewState() State {
	return &trajectoryState{q: t, covered: make([]bool, len(t.samples))}
}

type trajectoryState struct {
	baseState
	q          *Trajectory
	covered    []bool
	coveredCnt int
	sumTheta   float64
	n          int

	// sampleCache mirrors aggregateState.cellCache over the trajectory's
	// sample points: per sensor ID, the indices of samples within sensing
	// range, valid for the state's lifetime (sensors are fixed mid-slot).
	sampleCache map[int][]int32
	// ncCache/sampleSensors mirror aggregateState's incremental
	// newly-covered maintenance over the sample points.
	ncCache       map[int]int32
	sampleSensors [][]int32
	hits          int64
	lookups       int64
	// mu mirrors aggregateState.mu: Gain is called concurrently by
	// sharded scan lanes and cache misses mutate the memo structures.
	mu sync.Mutex
}

func (st *trajectoryState) Query() Query { return st.q }

// GeomCacheStats implements GeomCached.
func (st *trajectoryState) GeomCacheStats() (hits, lookups int64) {
	return st.hits, st.lookups
}

// inRange returns the indices of trajectory samples within sensing range
// of s, memoized by sensor ID.
func (st *trajectoryState) inRange(s *sensornet.Sensor) []int32 {
	st.lookups++
	if idx, ok := st.sampleCache[s.ID]; ok {
		st.hits++
		return idx
	}
	r2 := st.q.SensingRange * st.q.SensingRange
	idx := []int32{}
	for i, c := range st.q.samples {
		if c.Dist2(s.Pos) <= r2 {
			idx = append(idx, int32(i))
		}
	}
	if st.sampleCache == nil {
		st.sampleCache = make(map[int][]int32)
	}
	st.sampleCache[s.ID] = idx
	return idx
}

func (st *trajectoryState) theta(s *sensornet.Sensor) float64 {
	return (1 - s.Inaccuracy) * s.Trust
}

func (st *trajectoryState) value(coveredCnt int, sumTheta float64, n int) float64 {
	if n == 0 || len(st.q.samples) == 0 {
		return 0
	}
	g := float64(coveredCnt) / float64(len(st.q.samples))
	return st.q.B * g * sumTheta / float64(n)
}

func (st *trajectoryState) Value() float64 {
	return st.value(st.coveredCnt, st.sumTheta, st.n)
}

// newlyCovered mirrors aggregateState.newlyCovered over sample points.
// Safe for concurrent use by scan lanes (see mu).
func (st *trajectoryState) newlyCovered(s *sensornet.Sensor) int {
	st.mu.Lock()
	defer st.mu.Unlock()
	st.lookups++
	if nc, ok := st.ncCache[s.ID]; ok {
		st.hits++
		return int(nc)
	}
	if st.sampleSensors == nil {
		st.sampleSensors = make([][]int32, len(st.q.samples))
	}
	cnt := int32(0)
	for _, i := range st.inRange(s) {
		if !st.covered[i] {
			cnt++
			st.sampleSensors[i] = append(st.sampleSensors[i], int32(s.ID))
		}
	}
	if st.ncCache == nil {
		st.ncCache = make(map[int]int32)
	}
	st.ncCache[s.ID] = cnt
	return int(cnt)
}

func (st *trajectoryState) Gain(s *sensornet.Sensor) float64 {
	nc := st.newlyCovered(s)
	return st.value(st.coveredCnt+nc, st.sumTheta+st.theta(s), st.n+1) - st.Value()
}

func (st *trajectoryState) Add(s *sensornet.Sensor) {
	for _, i := range st.inRange(s) {
		if !st.covered[i] {
			st.covered[i] = true
			st.coveredCnt++
			if st.sampleSensors != nil {
				for _, sid := range st.sampleSensors[i] {
					st.ncCache[int(sid)]--
				}
				st.sampleSensors[i] = nil
			}
		}
	}
	st.sumTheta += st.theta(s)
	st.n++
	st.record(s)
}
