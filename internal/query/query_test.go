package query

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/geo"
	"repro/internal/sensornet"
)

func sensorAt(id int, x, y float64) *sensornet.Sensor {
	return sensornet.NewSensor(id, geo.Pt(x, y))
}

func TestPointValueEq3(t *testing.T) {
	p := NewPoint("q1", geo.Pt(0, 0), 20, 5)
	s := sensorAt(1, 0, 0) // theta = 1 at distance 0, full trust, no inaccuracy
	if got := p.ValueSingle(s); got != 20 {
		t.Errorf("value at perfect quality = %v want 20", got)
	}
	// Half distance: theta 0.5, value 10.
	s2 := sensorAt(2, 2.5, 0)
	if got := p.ValueSingle(s2); math.Abs(got-10) > 1e-12 {
		t.Errorf("value at half range = %v want 10", got)
	}
	// Below theta_min: zero.
	s3 := sensorAt(3, 4.5, 0) // theta = 0.1 < 0.2
	if got := p.ValueSingle(s3); got != 0 {
		t.Errorf("below-threshold value = %v want 0", got)
	}
	if p.Relevant(s3) {
		t.Error("below-threshold sensor should be irrelevant")
	}
	if !p.Relevant(s) {
		t.Error("perfect sensor should be relevant")
	}
}

func TestPointStateTakesBest(t *testing.T) {
	p := NewPoint("q1", geo.Pt(0, 0), 10, 5)
	st := p.NewState()
	if st.Value() != 0 {
		t.Error("empty state value != 0")
	}
	far := sensorAt(1, 2.5, 0)  // value 5
	near := sensorAt(2, 0.5, 0) // value 9
	if g := st.Gain(far); math.Abs(g-5) > 1e-12 {
		t.Errorf("gain(far)=%v want 5", g)
	}
	st.Add(far)
	if g := st.Gain(near); math.Abs(g-4) > 1e-12 {
		t.Errorf("marginal gain(near)=%v want 4", g)
	}
	st.Add(near)
	if v := st.Value(); math.Abs(v-9) > 1e-12 {
		t.Errorf("value=%v want 9 (max)", v)
	}
	// A worse sensor adds nothing.
	if g := st.Gain(far); g > 0 {
		t.Errorf("worse sensor gain = %v want <= 0", g)
	}
	if len(st.Sensors()) != 2 {
		t.Errorf("sensors tracked = %d", len(st.Sensors()))
	}
	if st.Query() != Query(p) {
		t.Error("Query() identity")
	}
}

func TestValueReplaysState(t *testing.T) {
	p := NewPoint("q1", geo.Pt(0, 0), 10, 5)
	a, b := sensorAt(1, 1, 0), sensorAt(2, 3, 0)
	want := p.ValueSingle(a) // best of the two
	if got := Value(p, []*sensornet.Sensor{a, b}); math.Abs(got-want) > 1e-12 {
		t.Errorf("Value=%v want %v", got, want)
	}
}

func TestMultiPointDiminishingReturns(t *testing.T) {
	m := NewMultiPoint("m1", geo.Pt(0, 0), 30, 5, 2)
	st := m.NewState()
	s1 := sensorAt(1, 0, 0)   // theta 1
	s2 := sensorAt(2, 0.5, 0) // theta 0.9
	s3 := sensorAt(3, 1, 0)   // theta 0.8

	g1 := st.Gain(s1)
	st.Add(s1)
	g2 := st.Gain(s2)
	st.Add(s2)
	g3 := st.Gain(s3)
	if g1 < g2 || g2 < g3 {
		t.Errorf("gains should diminish: %v %v %v", g1, g2, g3)
	}
	// With K=2 full, a weaker third sensor adds nothing.
	if g3 != 0 {
		t.Errorf("gain with full top-K and weaker sensor = %v want 0", g3)
	}
	// Value = B * (1 + 0.9) / 2 = 28.5.
	if v := st.Value(); math.Abs(v-28.5) > 1e-9 {
		t.Errorf("value=%v want 28.5", v)
	}
}

func TestMultiPointReplacementGain(t *testing.T) {
	m := NewMultiPoint("m1", geo.Pt(0, 0), 10, 5, 1)
	st := m.NewState()
	weak := sensorAt(1, 2.5, 0) // theta 0.5
	st.Add(weak)
	strong := sensorAt(2, 0, 0) // theta 1
	if g := st.Gain(strong); math.Abs(g-5) > 1e-9 {
		t.Errorf("replacement gain = %v want 5", g)
	}
	st.Add(strong)
	if v := st.Value(); math.Abs(v-10) > 1e-9 {
		t.Errorf("value after replacement = %v want 10", v)
	}
}

func TestMultiPointKClamp(t *testing.T) {
	m := NewMultiPoint("m", geo.Pt(0, 0), 10, 5, 0)
	if m.K != 1 {
		t.Errorf("K clamp = %d want 1", m.K)
	}
}

func TestAggregateValueEq5(t *testing.T) {
	grid := geo.NewUnitGrid(100, 100)
	region := geo.NewRect(10, 10, 30, 30)
	a := NewAggregate("a1", region, 100, 10, grid)
	st := a.NewState()
	if st.Value() != 0 {
		t.Error("empty aggregate value != 0")
	}
	center := sensorAt(1, 20, 20)
	gain := st.Gain(center)
	if gain <= 0 {
		t.Fatalf("central sensor gain = %v", gain)
	}
	st.Add(center)
	// Coverage: disk r=10 around (20,20) covers the whole 20x20 region?
	// Corner (10,10) is at distance ~14 > 10, so coverage < 1.
	v := st.Value()
	if v <= 0 || v > 100 {
		t.Errorf("value = %v out of (0, B]", v)
	}
	got := Value(a, []*sensornet.Sensor{center})
	if math.Abs(got-v) > 1e-9 {
		t.Errorf("replayed value %v != state value %v", got, v)
	}
}

func TestAggregateRelevance(t *testing.T) {
	grid := geo.NewUnitGrid(100, 100)
	a := NewAggregate("a1", geo.NewRect(10, 10, 30, 30), 100, 10, grid)
	if !a.Relevant(sensorAt(1, 20, 20)) {
		t.Error("inside sensor should be relevant")
	}
	if !a.Relevant(sensorAt(2, 35, 20)) {
		t.Error("sensor within sensing range outside region should be relevant")
	}
	if a.Relevant(sensorAt(3, 60, 60)) {
		t.Error("far sensor should be irrelevant")
	}
}

func TestAggregateCoverageSharingGain(t *testing.T) {
	// A second sensor covering already-covered cells with the same theta
	// must have non-positive gain (avg theta unchanged, coverage unchanged).
	grid := geo.NewUnitGrid(100, 100)
	region := geo.NewRect(10, 10, 14, 14)
	a := NewAggregate("a1", region, 50, 10, grid)
	st := a.NewState()
	st.Add(sensorAt(1, 12, 12))
	dup := sensorAt(2, 12, 12)
	if g := st.Gain(dup); g > 1e-12 {
		t.Errorf("duplicate coverage gain = %v want <= 0", g)
	}
}

func TestAggregateThetaDilution(t *testing.T) {
	// Adding a low-trust sensor that covers nothing new dilutes avg theta:
	// Eq. 5 is NOT submodular/monotone ("Involving sensor quality ...
	// destroys the submodularity", §3.2). Gain must be negative.
	grid := geo.NewUnitGrid(100, 100)
	region := geo.NewRect(10, 10, 14, 14)
	a := NewAggregate("a1", region, 50, 10, grid)
	st := a.NewState()
	st.Add(sensorAt(1, 12, 12))
	bad := sensorAt(2, 12, 12)
	bad.Trust = 0.1
	if g := st.Gain(bad); g >= 0 {
		t.Errorf("diluting sensor gain = %v want < 0", g)
	}
}

func TestAggregateStateIncrementalMatchesReplay(t *testing.T) {
	grid := geo.NewUnitGrid(100, 100)
	region := geo.NewRect(20, 20, 60, 50)
	a := NewAggregate("a1", region, 80, 10, grid)
	f := func(xs [4]uint8, ys [4]uint8) bool {
		st := a.NewState()
		var sensors []*sensornet.Sensor
		for i := 0; i < 4; i++ {
			s := sensorAt(i, float64(20+xs[i]%40), float64(20+ys[i]%30))
			gain := st.Gain(s)
			before := st.Value()
			st.Add(s)
			if math.Abs(st.Value()-(before+gain)) > 1e-9 {
				return false
			}
			sensors = append(sensors, s)
		}
		return math.Abs(Value(a, sensors)-st.Value()) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestTrajectoryQuery(t *testing.T) {
	path := geo.Trajectory{Waypoints: []geo.Point{geo.Pt(0, 0), geo.Pt(30, 0)}}
	q := NewTrajectory("t1", path, 60, 5)
	if q.Budget() != 60 || q.QID() != "t1" {
		t.Error("accessors broken")
	}
	near := sensorAt(1, 15, 2)
	farAway := sensorAt(2, 15, 50)
	if !q.Relevant(near) || q.Relevant(farAway) {
		t.Error("relevance misclassifies")
	}
	st := q.NewState()
	g := st.Gain(near)
	if g <= 0 {
		t.Fatalf("near sensor gain = %v", g)
	}
	st.Add(near)
	if st.Value() <= 0 {
		t.Error("value should be positive after adding a covering sensor")
	}
	// Full coverage with 4 spread sensors exceeds 1-sensor coverage.
	st2 := q.NewState()
	for i, x := range []float64{0, 10, 20, 30} {
		st2.Add(sensorAt(10+i, x, 0))
	}
	if st2.Value() <= st.Value() {
		t.Errorf("full-coverage value %v <= partial %v", st2.Value(), st.Value())
	}
	if st2.Query() != Query(q) {
		t.Error("Query() identity")
	}
}

func TestTrajectoryIncrementalConsistency(t *testing.T) {
	path := geo.Trajectory{Waypoints: []geo.Point{geo.Pt(0, 0), geo.Pt(20, 10)}}
	q := NewTrajectory("t1", path, 40, 4)
	st := q.NewState()
	sensors := []*sensornet.Sensor{sensorAt(1, 5, 2), sensorAt(2, 15, 8), sensorAt(3, 10, 5)}
	for _, s := range sensors {
		before := st.Value()
		g := st.Gain(s)
		st.Add(s)
		if math.Abs(st.Value()-(before+g)) > 1e-9 {
			t.Fatalf("gain inconsistent with add for sensor %d", s.ID)
		}
	}
	if math.Abs(Value(q, sensors)-st.Value()) > 1e-9 {
		t.Error("replayed value differs")
	}
}

func TestPointIDFormat(t *testing.T) {
	if got := PointID("lm3", 7, ""); got != "lm3@t7" {
		t.Errorf("PointID = %q", got)
	}
	if got := PointID("rm1", 2, "s5"); got != "rm1@t2/s5" {
		t.Errorf("PointID = %q", got)
	}
}
