package query

import (
	"math"

	"repro/internal/geo"
)

// EventDetection is the continuous event-detection query of §2.3 (queries
// Q3/Q4): "notify me when phenomenon > x with confidence > alpha at
// location l in [t1, t2]". The paper does not evaluate this type but notes
// that "the main difference is that redundant sampling might be needed to
// ensure the confidence requested by the queries" — this implementation is
// that extension.
//
// Each active slot the query materializes a MultiPoint query asking for
// enough redundant readings that the combined confidence can reach the
// requested level; after acquisition, Evaluate fuses the readings.
type EventDetection struct {
	ID    string
	Loc   geo.Point
	Start int
	End   int
	// Threshold is x: an event is a phenomenon value above it.
	Threshold float64
	// Confidence is alpha, the required detection confidence in (0,1).
	Confidence float64
	// BudgetPerSlot bounds the per-slot spend.
	BudgetPerSlot float64
	DMax          float64
	// ExpectedTheta is the planning estimate of one reading's quality.
	ExpectedTheta float64
}

// NewEventDetection builds an event-detection query.
func NewEventDetection(id string, loc geo.Point, start, end int, threshold, confidence, budgetPerSlot, dmax float64) *EventDetection {
	if confidence <= 0 {
		confidence = 0.9
	}
	if confidence >= 1 {
		confidence = 0.999
	}
	return &EventDetection{
		ID:            id,
		Loc:           loc,
		Start:         start,
		End:           end,
		Threshold:     threshold,
		Confidence:    confidence,
		BudgetPerSlot: budgetPerSlot,
		DMax:          dmax,
		ExpectedTheta: 0.7,
	}
}

// Active reports whether the query runs during slot t.
func (e *EventDetection) Active(t int) bool { return t >= e.Start && t <= e.End }

// RequiredReadings returns the smallest number of independent readings of
// quality theta whose fused confidence 1-(1-theta)^k reaches the requested
// level, capped at 5 to bound per-slot cost.
func (e *EventDetection) RequiredReadings(theta float64) int {
	if theta <= 0 {
		return 1
	}
	if theta >= 1 {
		return 1
	}
	k := int(math.Ceil(math.Log(1-e.Confidence) / math.Log(1-theta)))
	if k < 1 {
		k = 1
	}
	if k > 5 {
		k = 5
	}
	return k
}

// CreatePointQuery materializes this slot's redundant-sampling MultiPoint
// query (the event-detection analogue of Algorithm 2's point-query
// generation).
func (e *EventDetection) CreatePointQuery(t int) (*MultiPoint, bool) {
	if !e.Active(t) {
		return nil, false
	}
	k := e.RequiredReadings(e.ExpectedTheta)
	return NewMultiPoint(PointID(e.ID, t, "ev"), e.Loc, e.BudgetPerSlot, e.DMax, k), true
}

// DetectionConfidence fuses reading qualities into the probability that at
// least one reading is informative: 1 - prod(1 - theta_i). Treating each
// reading's quality as its probability of being correct is the standard
// independent-witness fusion model.
func (e *EventDetection) DetectionConfidence(thetas []float64) float64 {
	miss := 1.0
	for _, t := range thetas {
		if t < 0 {
			t = 0
		}
		if t > 1 {
			t = 1
		}
		miss *= 1 - t
	}
	return 1 - miss
}

// Evaluate fuses readings (values with matching qualities) and reports
// whether an above-threshold event is detected with sufficient confidence.
// Readings vote weighted by quality; the event fires when the
// quality-weighted majority is above threshold and the fused confidence
// meets the requested level.
func (e *EventDetection) Evaluate(values, thetas []float64) (detected bool, confidence float64) {
	if len(values) == 0 || len(values) != len(thetas) {
		return false, 0
	}
	confidence = e.DetectionConfidence(thetas)
	var above, total float64
	for i, v := range values {
		w := thetas[i]
		if w <= 0 {
			continue
		}
		total += w
		if v > e.Threshold {
			above += w
		}
	}
	if total == 0 {
		return false, 0
	}
	detected = above/total > 0.5 && confidence >= e.Confidence
	return detected, confidence
}
