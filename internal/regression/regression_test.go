package regression

import (
	"math"
	"sort"
	"testing"
	"testing/quick"
)

func linearSeries(n int, a, b float64) *Series {
	s := &Series{}
	for i := 0; i < n; i++ {
		t := float64(i)
		s.Times = append(s.Times, t)
		s.Values = append(s.Values, a+b*t)
	}
	return s
}

func noisySeries(n int, a, b float64) *Series {
	s := &Series{}
	for i := 0; i < n; i++ {
		t := float64(i)
		noise := math.Sin(float64(i)*1.7) * 0.5 // deterministic pseudo-noise
		s.Times = append(s.Times, t)
		s.Values = append(s.Values, a+b*t+noise)
	}
	return s
}

func TestNewSeriesValidates(t *testing.T) {
	if _, err := NewSeries([]float64{1}, []float64{1, 2}); err == nil {
		t.Error("length mismatch should error")
	}
	s, err := NewSeries([]float64{1, 2}, []float64{3, 4})
	if err != nil || s.Len() != 2 {
		t.Errorf("NewSeries failed: %v %v", s, err)
	}
}

func TestFitLinearExact(t *testing.T) {
	s := linearSeries(10, 2, 3)
	m := FitLinear(s, []int{0, 3, 7, 9})
	if !m.Trained {
		t.Fatal("model should be trained")
	}
	if math.Abs(m.Alpha-2) > 1e-6 || math.Abs(m.Beta-3) > 1e-6 {
		t.Errorf("fit = %+v want alpha 2 beta 3", m)
	}
	if got := m.Predict(100); math.Abs(got-302) > 1e-4 {
		t.Errorf("Predict(100)=%v", got)
	}
}

func TestFitLinearDegenerate(t *testing.T) {
	s := linearSeries(5, 1, 1)
	empty := FitLinear(s, nil)
	if empty.Trained {
		t.Error("empty fit should be untrained")
	}
	single := FitLinear(s, []int{2})
	if !single.Trained || single.Predict(0) != s.Values[2] || single.Beta != 0 {
		t.Errorf("single-point fit = %+v", single)
	}
	// Duplicate timestamps: ridge fallback keeps the fit finite.
	dup := &Series{Times: []float64{1, 1, 1}, Values: []float64{2, 4, 6}}
	m := FitLinear(dup, []int{0, 1, 2})
	if math.IsNaN(m.Alpha) || math.IsNaN(m.Beta) {
		t.Errorf("duplicate timestamp fit produced NaN: %+v", m)
	}
	if pred := m.Predict(1); math.Abs(pred-4) > 0.5 {
		t.Errorf("duplicate fit prediction at t=1 is %v, want ~4 (mean)", pred)
	}
}

func TestResidualSumSquares(t *testing.T) {
	s := linearSeries(10, 2, 3)
	m := FitLinear(s, []int{0, 9})
	if rss := ResidualSumSquares(s, m); rss > 1e-9 {
		t.Errorf("exact model RSS = %v want 0", rss)
	}
	untrained := LinearModel{}
	rss := ResidualSumSquares(s, untrained)
	var want float64
	for _, v := range s.Values {
		want += v * v
	}
	if math.Abs(rss-want) > 1e-9 {
		t.Errorf("untrained RSS = %v want %v", rss, want)
	}
}

func TestRSSForTimesIgnoresUnknownTimes(t *testing.T) {
	s := noisySeries(20, 1, 0.5)
	rssAll := RSSForTimes(s, s.Times)
	rssWithBogus := RSSForTimes(s, append(append([]float64(nil), s.Times...), 999, -5))
	if rssAll != rssWithBogus {
		t.Errorf("unknown timestamps changed RSS: %v vs %v", rssAll, rssWithBogus)
	}
}

func TestQualityBasics(t *testing.T) {
	s := noisySeries(30, 2, 1)
	desired := SelectSamplingTimes(s, 10)
	// Sampling exactly the desired times gives quality 1.
	if q := Quality(s, desired, desired); math.Abs(q-1) > 1e-9 {
		t.Errorf("Quality(T,T)=%v want 1", q)
	}
	// No samples gives 0.
	if q := Quality(s, desired, nil); q != 0 {
		t.Errorf("Quality(T,{})=%v want 0", q)
	}
	// Sampling everything is at least as good as the desired subset.
	if q := Quality(s, desired, s.Times); q < 1-1e-9 {
		t.Errorf("Quality(T,all)=%v want >= 1", q)
	}
}

func TestQualityZeroResidualCap(t *testing.T) {
	s := linearSeries(10, 0, 2) // perfectly linear: any 2+ samples give 0 RSS
	desired := []float64{0, 5}
	q := Quality(s, desired, []float64{1, 2, 3})
	if math.IsInf(q, 1) || math.IsNaN(q) {
		t.Fatalf("quality must stay finite, got %v", q)
	}
	if q != 1 {
		// Both RSS are ~0, so the convention is quality 1.
		t.Errorf("both-zero quality = %v want 1", q)
	}
}

func TestSelectSamplingTimesCount(t *testing.T) {
	s := noisySeries(25, 1, 0.3)
	for _, k := range []int{0, 1, 5, 24, 25, 40} {
		got := SelectSamplingTimes(s, k)
		wantLen := k
		if k > s.Len() {
			wantLen = s.Len()
		}
		if k <= 0 {
			wantLen = 0
		}
		if len(got) != wantLen {
			t.Errorf("k=%d: got %d times, want %d", k, len(got), wantLen)
		}
		// No duplicates.
		seen := map[float64]bool{}
		for _, tm := range got {
			if seen[tm] {
				t.Errorf("k=%d: duplicate time %v", k, tm)
			}
			seen[tm] = true
		}
	}
}

func TestSelectSamplingTimesReducesRSS(t *testing.T) {
	s := noisySeries(30, 5, -0.2)
	rssPrev := math.Inf(1)
	for _, k := range []int{1, 3, 6, 10} {
		times := SelectSamplingTimes(s, k)
		rss := RSSForTimes(s, times)
		if rss > rssPrev+1e-9 {
			t.Errorf("greedy RSS increased at k=%d: %v -> %v", k, rssPrev, rss)
		}
		rssPrev = rss
	}
}

func TestSelectSamplingTimesBeatsWorstSubset(t *testing.T) {
	// The greedy selection should beat picking the k first timestamps of a
	// series with a changing trend.
	s := &Series{}
	for i := 0; i < 30; i++ {
		tm := float64(i)
		v := math.Sin(tm/5) * 10
		s.Times = append(s.Times, tm)
		s.Values = append(s.Values, v)
	}
	k := 5
	greedy := RSSForTimes(s, SelectSamplingTimes(s, k))
	first := RSSForTimes(s, s.Times[:k])
	if greedy > first {
		t.Errorf("greedy RSS %v worse than naive prefix RSS %v", greedy, first)
	}
}

func TestQualityMonotonicityProperty(t *testing.T) {
	// Adding a sampled time never lowers quality (RSS of a superset fit can
	// rise slightly in theory for misspecified models, so allow epsilon —
	// but with linear models on near-linear data it must not collapse).
	s := noisySeries(20, 3, 0.7)
	desired := SelectSamplingTimes(s, 6)
	f := func(pick uint8) bool {
		base := []float64{s.Times[2], s.Times[9]}
		extra := s.Times[int(pick)%s.Len()]
		q1 := Quality(s, desired, base)
		q2 := Quality(s, desired, append(base, extra))
		return q2 >= q1*0.5 // quality never collapses when sampling more
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestSelectedTimesAreFromSeries(t *testing.T) {
	s := noisySeries(15, 0, 1)
	times := SelectSamplingTimes(s, 7)
	valid := map[float64]bool{}
	for _, tm := range s.Times {
		valid[tm] = true
	}
	for _, tm := range times {
		if !valid[tm] {
			t.Errorf("selected time %v not in series", tm)
		}
	}
	sort.Float64s(times)
	for i := 1; i < len(times); i++ {
		if times[i] == times[i-1] {
			t.Errorf("duplicate selected time %v", times[i])
		}
	}
}
