// Package regression implements the model machinery behind the
// location-monitoring valuation (Eqs. 16-17): ordinary-least-squares linear
// models over time, residual computation against a historical trace, and
// OptiMoS-style selection of the best sampling times ([19] Yan et al.,
// "OptiMoS: Optimal Sensing for Mobile Sensors", MDM 2012).
//
// The valuation of a set T' of sampled times is
//
//	G(T') = sum_i r_i^2|T  /  sum_i r_i^2|T'
//
// where r_i|T is the residual of the i-th historical data item under the
// model trained using only the items with timestamps in T. A larger G means
// the taken samples explain the history at least as well as the desired
// sampling times would have.
package regression

import (
	"fmt"
	"math"

	"repro/internal/linalg"
)

// Series is a historical univariate trace: Values[i] observed at Times[i].
type Series struct {
	Times  []float64
	Values []float64
}

// NewSeries validates and wraps a trace.
func NewSeries(times, values []float64) (*Series, error) {
	if len(times) != len(values) {
		return nil, fmt.Errorf("regression: %d times vs %d values", len(times), len(values))
	}
	return &Series{Times: times, Values: values}, nil
}

// Len returns the number of historical items.
func (s *Series) Len() int { return len(s.Times) }

// LinearModel is y = Alpha + Beta*t, the model class the evaluation uses
// ("a linear regression model is used to model the data", §4.5).
type LinearModel struct {
	Alpha, Beta float64
	// Trained reports whether the model was fit on at least one point.
	Trained bool
}

// FitLinear fits a linear model on the subset of s whose indices are given.
// With zero indices the model is untrained; with one index the model is the
// constant through that point. A tiny ridge keeps duplicate timestamps from
// making the normal equations singular.
func FitLinear(s *Series, idx []int) LinearModel {
	switch len(idx) {
	case 0:
		return LinearModel{}
	case 1:
		return LinearModel{Alpha: s.Values[idx[0]], Beta: 0, Trained: true}
	}
	x := linalg.NewMatrix(len(idx), 2)
	y := make([]float64, len(idx))
	for r, i := range idx {
		x.Set(r, 0, 1)
		x.Set(r, 1, s.Times[i])
		y[r] = s.Values[i]
	}
	beta, err := linalg.LeastSquares(x, y, 1e-9)
	if err != nil {
		// Fall back to the mean: still a valid (constant) linear model.
		var mean float64
		for _, v := range y {
			mean += v
		}
		return LinearModel{Alpha: mean / float64(len(y)), Beta: 0, Trained: true}
	}
	return LinearModel{Alpha: beta[0], Beta: beta[1], Trained: true}
}

// Predict evaluates the model at time t.
func (m LinearModel) Predict(t float64) float64 { return m.Alpha + m.Beta*t }

// ResidualSumSquares returns sum_i (y_i - model(t_i))^2 over the whole
// series. For an untrained model the residual of every item is its value
// (prediction 0), matching the "no information" limit of Eq. 17.
func ResidualSumSquares(s *Series, m LinearModel) float64 {
	var sum float64
	for i := range s.Times {
		var pred float64
		if m.Trained {
			pred = m.Predict(s.Times[i])
		}
		d := s.Values[i] - pred
		sum += d * d
	}
	return sum
}

// RSSForTimes trains on the items whose timestamps appear in the given time
// set and returns the residual sum of squares over the full series.
// Timestamps not present in the series are ignored (a sample taken at an
// opportunistic time t' still informs the model through its nearest series
// item if the caller maps it; here we only honor exact matches, which is
// how desired sampling times are defined).
func RSSForTimes(s *Series, times []float64) float64 {
	idx := indicesOf(s, times)
	return ResidualSumSquares(s, FitLinear(s, idx))
}

func indicesOf(s *Series, times []float64) []int {
	set := make(map[float64]bool, len(times))
	for _, t := range times {
		set[t] = true
	}
	var idx []int
	for i, t := range s.Times {
		if set[t] {
			idx = append(idx, i)
		}
	}
	return idx
}

// Quality computes G(T') of Eq. 17 for the given desired times T and
// sampled times T'. An empty T' yields 0 (infinite residual limit); if the
// sampled residual is zero the quality is capped at a large finite value to
// keep valuations bounded.
func Quality(s *Series, desired, sampled []float64) float64 {
	if len(sampled) == 0 {
		return 0
	}
	rssDesired := RSSForTimes(s, desired)
	rssSampled := RSSForTimes(s, sampled)
	if rssSampled <= 1e-12 {
		if rssDesired <= 1e-12 {
			return 1
		}
		return 1e6
	}
	return rssDesired / rssSampled
}

// SelectSamplingTimes greedily chooses k timestamps from the series that
// minimize the residual sum of squares of the model trained on the chosen
// subset, evaluated over the full history. This reproduces the technique of
// [19]: "selects the sampling times such that the residuals of the model
// based on the values at the sampling times and the model given all the
// historical data is minimized"; the number of sampling times is fixed and
// given.
func SelectSamplingTimes(s *Series, k int) []float64 {
	n := s.Len()
	if k >= n {
		out := append([]float64(nil), s.Times...)
		return out
	}
	if k <= 0 || n == 0 {
		return nil
	}
	chosen := make([]int, 0, k)
	used := make([]bool, n)
	for len(chosen) < k {
		bestIdx, bestRSS := -1, math.Inf(1)
		for i := 0; i < n; i++ {
			if used[i] {
				continue
			}
			cand := append(chosen, i)
			rss := ResidualSumSquares(s, FitLinear(s, cand))
			if rss < bestRSS {
				bestRSS, bestIdx = rss, i
			}
		}
		if bestIdx < 0 {
			break
		}
		used[bestIdx] = true
		chosen = append(chosen, bestIdx)
	}
	out := make([]float64, len(chosen))
	for i, idx := range chosen {
		out[i] = s.Times[idx]
	}
	return out
}
