package bilp

import (
	"math"
	"sort"
)

// The sensor-assignment BILP (9) has uncapacitated-facility-location
// structure: opening sensor i costs c_i; assigning client (queried
// location) l to an open sensor i earns profit p_{l,i} > 0; each client is
// assigned to at most one sensor; unassigned clients earn nothing. This
// file solves it exactly with branch and bound whose upper bound uses the
// submodularity of S -> sum_l max_{i in S} p_{l,i}.

// FLProfit is one positive profit edge from a client to a facility.
type FLProfit struct {
	Facility int
	Profit   float64
}

// FLProblem is the facility-location instance.
type FLProblem struct {
	// OpenCost per facility (the sensor's announced cost c_s).
	OpenCost []float64
	// Profits per client: only positive-profit edges are listed, which
	// encodes the v'_l(s_i) = -1 convention of Eq. 10 (a sensor that yields
	// no positive value may not be assigned).
	Profits [][]FLProfit
}

// FLSolution describes the chosen sensors and assignments.
type FLSolution struct {
	// Open reports which facilities are opened.
	Open []bool
	// Assign maps each client to its facility, or -1 when unserved.
	Assign []int
	// Objective is total assigned profit minus total opening cost.
	Objective float64
	// Exact is false when the node budget was exhausted in some component.
	Exact bool
	// Nodes counts explored branch-and-bound nodes across components.
	Nodes int
}

// FLOptions tunes the solver.
type FLOptions struct {
	// MaxNodesPerComponent caps branch-and-bound nodes for one connected
	// component (0 means 2 million). When exceeded the component keeps its
	// incumbent and the solution is marked inexact.
	MaxNodesPerComponent int
	// WarmStart optionally provides an initial set of open facilities
	// (e.g. from local search) whose objective seeds the incumbent.
	WarmStart []bool
}

// SolveFL solves the instance exactly (up to the node budget).
func SolveFL(p *FLProblem, opts FLOptions) *FLSolution {
	nF := len(p.OpenCost)
	nC := len(p.Profits)
	maxNodes := opts.MaxNodesPerComponent
	if maxNodes <= 0 {
		maxNodes = 2_000_000
	}

	sol := &FLSolution{
		Open:   make([]bool, nF),
		Assign: make([]int, nC),
		Exact:  true,
	}
	for l := range sol.Assign {
		sol.Assign[l] = -1
	}

	comps := flComponents(p)
	for _, comp := range comps {
		cs := solveFLComponent(p, comp, maxNodes, opts.WarmStart)
		sol.Nodes += cs.nodes
		if !cs.exact {
			sol.Exact = false
		}
		for _, f := range comp.facilities {
			sol.Open[f] = cs.open[f]
		}
	}
	// Final assignment: every client takes its best open facility if that
	// profit is positive.
	for l := 0; l < nC; l++ {
		best, bestF := 0.0, -1
		for _, e := range p.Profits[l] {
			if sol.Open[e.Facility] && e.Profit > best {
				best, bestF = e.Profit, e.Facility
			}
		}
		sol.Assign[l] = bestF
		sol.Objective += best
	}
	for f, open := range sol.Open {
		if open {
			sol.Objective -= p.OpenCost[f]
		}
	}
	return sol
}

// flComponent is one connected component of the client-facility bipartite
// graph.
type flComponent struct {
	facilities []int
	clients    []int
}

func flComponents(p *FLProblem) []flComponent {
	nF := len(p.OpenCost)
	nC := len(p.Profits)
	// Union-find over facilities and clients (clients offset by nF).
	parent := make([]int, nF+nC)
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	union := func(a, b int) {
		ra, rb := find(a), find(b)
		if ra != rb {
			parent[ra] = rb
		}
	}
	for l, edges := range p.Profits {
		for _, e := range edges {
			union(nF+l, e.Facility)
		}
	}
	groups := map[int]*flComponent{}
	var order []int
	for f := 0; f < nF; f++ {
		r := find(f)
		g, ok := groups[r]
		if !ok {
			g = &flComponent{}
			groups[r] = g
			order = append(order, r)
		}
		g.facilities = append(g.facilities, f)
	}
	for l := 0; l < nC; l++ {
		r := find(nF + l)
		g, ok := groups[r]
		if !ok {
			g = &flComponent{}
			groups[r] = g
			order = append(order, r)
		}
		g.clients = append(g.clients, l)
	}
	out := make([]flComponent, 0, len(order))
	for _, r := range order {
		out = append(out, *groups[r])
	}
	return out
}

type flCompSolution struct {
	open  []bool
	exact bool
	nodes int
}

// cp is a (client, profit) edge seen from a facility.
type cp struct {
	client int
	profit float64
}

// solveFLComponent runs B&B over one component's facilities.
func solveFLComponent(p *FLProblem, comp flComponent, maxNodes int, warm []bool) flCompSolution {
	const eps = 1e-9
	res := flCompSolution{open: make([]bool, len(p.OpenCost)), exact: true}
	if len(comp.facilities) == 0 {
		return res
	}

	// Local indexing for the component's facilities.
	localIdx := make(map[int]int, len(comp.facilities))
	for i, f := range comp.facilities {
		localIdx[f] = i
	}
	n := len(comp.facilities)
	cost := make([]float64, n)
	for i, f := range comp.facilities {
		cost[i] = p.OpenCost[f]
	}
	// clientEdges[l] lists (local facility, profit) for component clients.
	clientEdges := make([][]FLProfit, len(comp.clients))
	// facClients[i] lists (client index into comp.clients, profit).
	facClients := make([][]cp, n)
	for cl, l := range comp.clients {
		for _, e := range p.Profits[l] {
			li := localIdx[e.Facility]
			clientEdges[cl] = append(clientEdges[cl], FLProfit{Facility: li, Profit: e.Profit})
			facClients[li] = append(facClients[li], cp{client: cl, profit: e.Profit})
		}
	}

	// objectiveOf evaluates a candidate open set (local indexing).
	objectiveOf := func(open []bool) float64 {
		var obj float64
		for cl := range clientEdges {
			best := 0.0
			for _, e := range clientEdges[cl] {
				if open[e.Facility] && e.Profit > best {
					best = e.Profit
				}
			}
			obj += best
		}
		for i, o := range open {
			if o {
				obj -= cost[i]
			}
		}
		return obj
	}

	// Incumbent: empty set (objective 0), improved by greedy, improved by
	// the caller's warm start if provided.
	bestObj := 0.0
	bestOpen := make([]bool, n)
	if g := flGreedy(clientEdges, facClients, cost); g.obj > bestObj {
		bestObj = g.obj
		copy(bestOpen, g.open)
	}
	if warm != nil {
		w := make([]bool, n)
		for i, f := range comp.facilities {
			w[i] = warm[f]
		}
		if obj := objectiveOf(w); obj > bestObj {
			bestObj = obj
			copy(bestOpen, w)
		}
	}

	// state: 0 undecided, 1 open, 2 closed.
	state := make([]byte, n)
	// bestServed[cl]: best profit among currently open facilities.
	bestServed := make([]float64, len(comp.clients))
	var curObj float64 // objective of the currently open set
	nodes := 0
	exact := true

	// marginal gain of opening facility i given the open set.
	marginal := func(i int) float64 {
		m := -cost[i]
		for _, e := range facClients[i] {
			if e.profit > bestServed[e.client] {
				m += e.profit - bestServed[e.client]
			}
		}
		return m
	}

	var dfs func()
	dfs = func() {
		if nodes >= maxNodes {
			exact = false
			return
		}
		nodes++

		// Submodular bound: obj(open) + sum of positive marginals of
		// undecided facilities bounds every completion of this node.
		ub := curObj
		branchI, branchM := -1, 0.0
		for i := 0; i < n; i++ {
			if state[i] != 0 {
				continue
			}
			m := marginal(i)
			if m > 0 {
				ub += m
			}
			if branchI == -1 || m > branchM {
				branchI, branchM = i, m
			}
		}
		if curObj > bestObj+eps {
			bestObj = curObj
			for i := range bestOpen {
				bestOpen[i] = state[i] == 1
			}
		}
		if ub <= bestObj+eps {
			return // even the optimistic completion cannot beat incumbent
		}
		if branchI == -1 {
			return // all decided
		}

		// Branch: open branchI first (it has the largest marginal).
		i := branchI
		state[i] = 1
		saved := make([]cp, 0, 4)
		for _, e := range facClients[i] {
			if e.profit > bestServed[e.client] {
				saved = append(saved, cp{client: e.client, profit: bestServed[e.client]})
				curObj += e.profit - bestServed[e.client]
				bestServed[e.client] = e.profit
			}
		}
		curObj -= cost[i]
		dfs()
		curObj += cost[i]
		for _, s := range saved {
			curObj += s.profit - bestServed[s.client]
			bestServed[s.client] = s.profit
		}

		state[i] = 2
		dfs()
		state[i] = 0
	}
	dfs()

	res.exact = exact
	res.nodes = nodes
	for i, f := range comp.facilities {
		res.open[f] = bestOpen[i]
	}
	return res
}

type flGreedyResult struct {
	open []bool
	obj  float64
}

// flGreedy seeds the incumbent: repeatedly open the facility with the
// largest positive marginal gain.
func flGreedy(clientEdges [][]FLProfit, facClients [][]cp, cost []float64) flGreedyResult {
	n := len(cost)
	open := make([]bool, n)
	bestServed := make([]float64, len(clientEdges))
	var obj float64
	for {
		bestI, bestM := -1, 1e-9
		for i := 0; i < n; i++ {
			if open[i] {
				continue
			}
			m := -cost[i]
			for _, e := range facClients[i] {
				if e.profit > bestServed[e.client] {
					m += e.profit - bestServed[e.client]
				}
			}
			if m > bestM {
				bestI, bestM = i, m
			}
		}
		if bestI == -1 {
			break
		}
		open[bestI] = true
		obj += bestM
		for _, e := range facClients[bestI] {
			if e.profit > bestServed[e.client] {
				bestServed[e.client] = e.profit
			}
		}
	}
	return flGreedyResult{open: open, obj: obj}
}

// FLBrute solves small instances exhaustively; the testing reference.
func FLBrute(p *FLProblem) *FLSolution {
	nF := len(p.OpenCost)
	if nF > 20 {
		panic("bilp: FLBrute limited to 20 facilities")
	}
	best := math.Inf(-1)
	var bestOpen []bool
	open := make([]bool, nF)
	for mask := 0; mask < 1<<uint(nF); mask++ {
		for f := 0; f < nF; f++ {
			open[f] = mask&(1<<uint(f)) != 0
		}
		var obj float64
		for _, edges := range p.Profits {
			b := 0.0
			for _, e := range edges {
				if open[e.Facility] && e.Profit > b {
					b = e.Profit
				}
			}
			obj += b
		}
		for f := 0; f < nF; f++ {
			if open[f] {
				obj -= p.OpenCost[f]
			}
		}
		if obj > best {
			best = obj
			bestOpen = append(bestOpen[:0:0], open...)
		}
	}
	sol := &FLSolution{Open: bestOpen, Assign: make([]int, len(p.Profits)), Objective: best, Exact: true}
	for l, edges := range p.Profits {
		bp, bf := 0.0, -1
		for _, e := range edges {
			if bestOpen[e.Facility] && e.Profit > bp {
				bp, bf = e.Profit, e.Facility
			}
		}
		sol.Assign[l] = bf
	}
	return sol
}

// SortedFacilities returns facility indices ordered by descending total
// profit minus cost — a deterministic ordering helper used by callers that
// need stable tie-breaking.
func (p *FLProblem) SortedFacilities() []int {
	total := make([]float64, len(p.OpenCost))
	for _, edges := range p.Profits {
		for _, e := range edges {
			total[e.Facility] += e.Profit
		}
	}
	idx := make([]int, len(p.OpenCost))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool {
		da := total[idx[a]] - p.OpenCost[idx[a]]
		db := total[idx[b]] - p.OpenCost[idx[b]]
		if da != db {
			return da > db
		}
		return idx[a] < idx[b]
	})
	return idx
}
