// Package bilp provides the binary integer linear programming machinery
// behind the paper's "Optimal Scheduling" (§3.1.1): problem (9) assigns
// sensors to queried locations maximizing total valuation minus sensor
// costs. The paper solves it with an off-the-shelf ILP solver; this package
// implements the equivalent from scratch:
//
//   - a generic 0/1 branch-and-bound solver (Solve) with a brute-force
//     reference (SolveBrute) used to validate it, and
//   - a specialized exact solver for the sensor-assignment structure
//     (facility.go), which exploits connected-component decomposition and a
//     submodularity-based bound to handle the evaluation's instance sizes.
package bilp

import (
	"errors"
	"fmt"
	"math"
)

// Problem is a 0/1 integer program in canonical form:
//
//	maximize    c . x
//	subject to  A x <= b,   x binary.
type Problem struct {
	// Obj is the objective vector c (length n).
	Obj []float64
	// A holds one row per constraint (each of length n); B the right-hand
	// sides.
	A [][]float64
	B []float64
}

// Solution is the result of a solve.
type Solution struct {
	X         []bool
	Objective float64
	// Exact is false when a node budget was exhausted and the solution is
	// only the best incumbent found.
	Exact bool
	// Nodes counts branch-and-bound nodes explored.
	Nodes int
}

// ErrInfeasible is returned when no binary assignment satisfies the
// constraints.
var ErrInfeasible = errors.New("bilp: infeasible")

func (p *Problem) validate() error {
	n := len(p.Obj)
	if len(p.A) != len(p.B) {
		return fmt.Errorf("bilp: %d constraint rows vs %d rhs", len(p.A), len(p.B))
	}
	for i, row := range p.A {
		if len(row) != n {
			return fmt.Errorf("bilp: row %d has %d coefficients, want %d", i, len(row), n)
		}
	}
	return nil
}

func (p *Problem) feasible(x []bool) bool {
	for i, row := range p.A {
		var sum float64
		for j, v := range row {
			if x[j] {
				sum += v
			}
		}
		if sum > p.B[i]+1e-9 {
			return false
		}
	}
	return true
}

func (p *Problem) objective(x []bool) float64 {
	var sum float64
	for j, c := range p.Obj {
		if x[j] {
			sum += c
		}
	}
	return sum
}

// SolveBrute enumerates all 2^n assignments. It is the testing reference;
// n must be at most 25.
func (p *Problem) SolveBrute() (*Solution, error) {
	if err := p.validate(); err != nil {
		return nil, err
	}
	n := len(p.Obj)
	if n > 25 {
		return nil, fmt.Errorf("bilp: brute force limited to 25 variables, got %d", n)
	}
	best := math.Inf(-1)
	var bestX []bool
	x := make([]bool, n)
	for mask := 0; mask < 1<<uint(n); mask++ {
		for j := 0; j < n; j++ {
			x[j] = mask&(1<<uint(j)) != 0
		}
		if !p.feasible(x) {
			continue
		}
		if obj := p.objective(x); obj > best {
			best = obj
			bestX = append(bestX[:0:0], x...)
		}
	}
	if bestX == nil {
		return nil, ErrInfeasible
	}
	return &Solution{X: bestX, Objective: best, Exact: true, Nodes: 1 << uint(n)}, nil
}

// Solve runs depth-first branch and bound. The bound at a node fixes a
// prefix of variables and admits every remaining positive objective
// coefficient; feasibility is checked against the partial assignment using
// the minimum possible contribution of free variables. maxNodes bounds the
// search (0 means 10 million).
func (p *Problem) Solve(maxNodes int) (*Solution, error) {
	if err := p.validate(); err != nil {
		return nil, err
	}
	if maxNodes <= 0 {
		maxNodes = 10_000_000
	}
	n := len(p.Obj)

	// Precompute per-constraint minimum contribution of suffix variables:
	// minSuffix[i][j] = sum over k >= j of min(0, A[i][k]). If even with
	// the most favourable suffix the row exceeds b, the node is infeasible.
	minSuffix := make([][]float64, len(p.A))
	for i, row := range p.A {
		ms := make([]float64, n+1)
		for j := n - 1; j >= 0; j-- {
			ms[j] = ms[j+1]
			if row[j] < 0 {
				ms[j] += row[j]
			}
		}
		minSuffix[i] = ms
	}
	// posSuffix[j] = sum over k >= j of max(0, c[k]) for the bound.
	posSuffix := make([]float64, n+1)
	for j := n - 1; j >= 0; j-- {
		posSuffix[j] = posSuffix[j+1]
		if p.Obj[j] > 0 {
			posSuffix[j] += p.Obj[j]
		}
	}

	sol := &Solution{Exact: true}
	best := math.Inf(-1)
	var bestX []bool
	x := make([]bool, n)
	rowSum := make([]float64, len(p.A))

	var dfs func(j int, obj float64)
	dfs = func(j int, obj float64) {
		if sol.Nodes >= maxNodes {
			sol.Exact = false
			return
		}
		sol.Nodes++
		// Feasibility pruning.
		for i := range p.A {
			if rowSum[i]+minSuffix[i][j] > p.B[i]+1e-9 {
				return
			}
		}
		// Bound pruning.
		if obj+posSuffix[j] <= best+1e-12 {
			return
		}
		if j == n {
			best = obj
			bestX = append(bestX[:0:0], x...)
			return
		}
		// Try the more promising branch first.
		order := [2]bool{true, false}
		if p.Obj[j] <= 0 {
			order = [2]bool{false, true}
		}
		for _, v := range order {
			x[j] = v
			if v {
				for i := range p.A {
					rowSum[i] += p.A[i][j]
				}
				dfs(j+1, obj+p.Obj[j])
				for i := range p.A {
					rowSum[i] -= p.A[i][j]
				}
			} else {
				dfs(j+1, obj)
			}
		}
		x[j] = false
	}
	dfs(0, 0)

	if bestX == nil {
		if !sol.Exact {
			return nil, fmt.Errorf("bilp: node budget exhausted before finding a feasible point")
		}
		return nil, ErrInfeasible
	}
	sol.X = bestX
	sol.Objective = best
	return sol, nil
}
