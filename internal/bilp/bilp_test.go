package bilp

import (
	"errors"
	"math"
	"testing"

	"repro/internal/rng"
)

func TestSolveKnapsack(t *testing.T) {
	// Classic knapsack: values {6,10,12}, weights {1,2,3}, capacity 5 ->
	// take items 2 and 3 for value 22.
	p := &Problem{
		Obj: []float64{6, 10, 12},
		A:   [][]float64{{1, 2, 3}},
		B:   []float64{5},
	}
	sol, err := p.Solve(0)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Objective != 22 {
		t.Errorf("objective = %v want 22", sol.Objective)
	}
	if sol.X[0] || !sol.X[1] || !sol.X[2] {
		t.Errorf("X = %v", sol.X)
	}
	if !sol.Exact {
		t.Error("should be exact")
	}
}

func TestSolveUnconstrainedTakesPositives(t *testing.T) {
	p := &Problem{Obj: []float64{3, -2, 5, 0}, A: nil, B: nil}
	sol, err := p.Solve(0)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Objective != 8 {
		t.Errorf("objective = %v want 8", sol.Objective)
	}
}

func TestSolveInfeasible(t *testing.T) {
	// x1 + x2 <= -1 is unsatisfiable even with both zero.
	p := &Problem{Obj: []float64{1, 1}, A: [][]float64{{1, 1}}, B: []float64{-1}}
	if _, err := p.Solve(0); !errors.Is(err, ErrInfeasible) {
		t.Errorf("expected ErrInfeasible, got %v", err)
	}
}

func TestSolveNegativeCoefficientConstraint(t *testing.T) {
	// Constraint -x1 <= -1 forces x1 = 1 even though its objective is
	// negative.
	p := &Problem{Obj: []float64{-5, 2}, A: [][]float64{{-1, 0}}, B: []float64{-1}}
	sol, err := p.Solve(0)
	if err != nil {
		t.Fatal(err)
	}
	if !sol.X[0] {
		t.Error("x1 must be forced on")
	}
	if sol.Objective != -3 {
		t.Errorf("objective = %v want -3", sol.Objective)
	}
}

func TestValidate(t *testing.T) {
	p := &Problem{Obj: []float64{1}, A: [][]float64{{1, 2}}, B: []float64{1}}
	if _, err := p.Solve(0); err == nil {
		t.Error("row length mismatch should error")
	}
	p2 := &Problem{Obj: []float64{1}, A: [][]float64{{1}}, B: nil}
	if _, err := p2.Solve(0); err == nil {
		t.Error("rows vs rhs mismatch should error")
	}
	if _, err := (&Problem{Obj: make([]float64, 30)}).SolveBrute(); err == nil {
		t.Error("brute force must refuse n > 25")
	}
}

func TestSolveMatchesBruteOnRandomInstances(t *testing.T) {
	s := rng.New(77, "bilp-random")
	for trial := 0; trial < 60; trial++ {
		n := s.IntBetween(1, 10)
		m := s.IntBetween(0, 4)
		p := &Problem{Obj: make([]float64, n)}
		for j := range p.Obj {
			p.Obj[j] = s.Uniform(-10, 10)
		}
		for i := 0; i < m; i++ {
			row := make([]float64, n)
			for j := range row {
				row[j] = s.Uniform(-3, 5)
			}
			p.A = append(p.A, row)
			p.B = append(p.B, s.Uniform(0, 8))
		}
		brute, errB := p.SolveBrute()
		bb, errS := p.Solve(0)
		if (errB == nil) != (errS == nil) {
			t.Fatalf("trial %d: err mismatch: brute=%v solve=%v", trial, errB, errS)
		}
		if errB != nil {
			continue
		}
		if math.Abs(brute.Objective-bb.Objective) > 1e-9 {
			t.Fatalf("trial %d: brute %v != solve %v", trial, brute.Objective, bb.Objective)
		}
	}
}

func TestSolveNodeBudget(t *testing.T) {
	// A tiny node budget must not crash; it may return inexact results.
	p := &Problem{Obj: []float64{1, 1, 1, 1, 1}}
	sol, err := p.Solve(2)
	if err == nil && sol.Exact {
		t.Log("solved exactly within 2 nodes (fine)")
	}
}

func randomFL(s *rng.Stream, nF, nC int) *FLProblem {
	p := &FLProblem{
		OpenCost: make([]float64, nF),
		Profits:  make([][]FLProfit, nC),
	}
	for f := range p.OpenCost {
		p.OpenCost[f] = s.Uniform(1, 12)
	}
	for l := 0; l < nC; l++ {
		for f := 0; f < nF; f++ {
			if s.Bool(0.4) {
				p.Profits[l] = append(p.Profits[l], FLProfit{Facility: f, Profit: s.Uniform(0.5, 9)})
			}
		}
	}
	return p
}

func TestSolveFLMatchesBrute(t *testing.T) {
	s := rng.New(123, "fl-random")
	for trial := 0; trial < 80; trial++ {
		nF := s.IntBetween(1, 9)
		nC := s.IntBetween(1, 12)
		p := randomFL(s, nF, nC)
		brute := FLBrute(p)
		sol := SolveFL(p, FLOptions{})
		if !sol.Exact {
			t.Fatalf("trial %d: expected exact solve", trial)
		}
		if math.Abs(brute.Objective-sol.Objective) > 1e-9 {
			t.Fatalf("trial %d: brute %v != bb %v", trial, brute.Objective, sol.Objective)
		}
	}
}

func TestSolveFLAssignmentsConsistent(t *testing.T) {
	s := rng.New(5, "fl-assign")
	p := randomFL(s, 8, 15)
	sol := SolveFL(p, FLOptions{})
	for l, f := range sol.Assign {
		if f == -1 {
			continue
		}
		if !sol.Open[f] {
			t.Errorf("client %d assigned to closed facility %d", l, f)
		}
		// The assignment must be the best open option.
		var bestOpen float64
		for _, e := range p.Profits[l] {
			if sol.Open[e.Facility] && e.Profit > bestOpen {
				bestOpen = e.Profit
			}
		}
		var got float64
		for _, e := range p.Profits[l] {
			if e.Facility == f {
				got = e.Profit
			}
		}
		if got < bestOpen-1e-9 {
			t.Errorf("client %d not assigned to its best open facility", l)
		}
	}
}

func TestSolveFLEmptyAndTrivial(t *testing.T) {
	// No facilities, one client.
	p := &FLProblem{OpenCost: nil, Profits: [][]FLProfit{nil}}
	sol := SolveFL(p, FLOptions{})
	if sol.Objective != 0 || sol.Assign[0] != -1 {
		t.Errorf("empty instance: %+v", sol)
	}
	// One facility that pays for itself.
	p2 := &FLProblem{
		OpenCost: []float64{5},
		Profits:  [][]FLProfit{{{Facility: 0, Profit: 9}}},
	}
	sol2 := SolveFL(p2, FLOptions{})
	if sol2.Objective != 4 || !sol2.Open[0] || sol2.Assign[0] != 0 {
		t.Errorf("single profitable facility: %+v", sol2)
	}
	// One facility that does not pay for itself stays closed.
	p3 := &FLProblem{
		OpenCost: []float64{10},
		Profits:  [][]FLProfit{{{Facility: 0, Profit: 4}}},
	}
	sol3 := SolveFL(p3, FLOptions{})
	if sol3.Objective != 0 || sol3.Open[0] {
		t.Errorf("unprofitable facility opened: %+v", sol3)
	}
}

func TestSolveFLSharedSensorAcrossClients(t *testing.T) {
	// One sensor too expensive for any single query but worth opening for
	// three queries together — the crux of the paper's budget-7 scenario.
	p := &FLProblem{
		OpenCost: []float64{10},
		Profits: [][]FLProfit{
			{{Facility: 0, Profit: 4}},
			{{Facility: 0, Profit: 4}},
			{{Facility: 0, Profit: 4}},
		},
	}
	sol := SolveFL(p, FLOptions{})
	if !sol.Open[0] {
		t.Fatal("shared sensor should open")
	}
	if math.Abs(sol.Objective-2) > 1e-9 {
		t.Errorf("objective = %v want 2", sol.Objective)
	}
}

func TestSolveFLComponentDecomposition(t *testing.T) {
	// Two independent sub-instances must both be solved; nodes explored
	// should reflect two small searches rather than one big one.
	p := &FLProblem{
		OpenCost: []float64{3, 3},
		Profits: [][]FLProfit{
			{{Facility: 0, Profit: 5}},
			{{Facility: 1, Profit: 5}},
		},
	}
	sol := SolveFL(p, FLOptions{})
	if sol.Objective != 4 {
		t.Errorf("objective = %v want 4", sol.Objective)
	}
	if !sol.Open[0] || !sol.Open[1] {
		t.Errorf("both facilities should open: %v", sol.Open)
	}
}

func TestSolveFLWarmStart(t *testing.T) {
	s := rng.New(9, "fl-warm")
	p := randomFL(s, 10, 14)
	plain := SolveFL(p, FLOptions{})
	warm := SolveFL(p, FLOptions{WarmStart: plain.Open})
	if math.Abs(plain.Objective-warm.Objective) > 1e-9 {
		t.Errorf("warm start changed optimum: %v vs %v", plain.Objective, warm.Objective)
	}
	if warm.Nodes > plain.Nodes {
		t.Logf("warm start explored more nodes (%d > %d) — acceptable but unexpected", warm.Nodes, plain.Nodes)
	}
}

func TestSolveFLMediumInstanceExact(t *testing.T) {
	// A 60-facility, 150-client geometric-ish instance should solve exactly
	// within the node budget thanks to decomposition + submodular bound.
	s := rng.New(31, "fl-medium")
	nF, nC := 60, 150
	p := &FLProblem{OpenCost: make([]float64, nF), Profits: make([][]FLProfit, nC)}
	for f := range p.OpenCost {
		p.OpenCost[f] = 10
	}
	for l := 0; l < nC; l++ {
		// Each client sees ~4 nearby facilities.
		base := s.Intn(nF)
		for k := 0; k < 4; k++ {
			f := (base + k*3) % nF
			p.Profits[l] = append(p.Profits[l], FLProfit{Facility: f, Profit: s.Uniform(1, 8)})
		}
	}
	sol := SolveFL(p, FLOptions{})
	if !sol.Exact {
		t.Error("medium instance should solve exactly")
	}
	if sol.Objective <= 0 {
		t.Errorf("objective = %v, expected positive welfare", sol.Objective)
	}
}

func TestSortedFacilities(t *testing.T) {
	p := &FLProblem{
		OpenCost: []float64{1, 1, 1},
		Profits: [][]FLProfit{
			{{Facility: 2, Profit: 10}},
			{{Facility: 0, Profit: 3}},
		},
	}
	idx := p.SortedFacilities()
	if idx[0] != 2 {
		t.Errorf("most profitable facility should sort first: %v", idx)
	}
	if len(idx) != 3 {
		t.Errorf("len=%d", len(idx))
	}
}
