package gp

import (
	"math"

	"repro/internal/geo"
)

// Posterior incrementally tracks a GP posterior over a fixed target set as
// observations are added one at a time. It exists because Algorithm 4
// (sampling-point selection for region monitoring) needs many marginal
// variance-reduction evaluations per slot; recomputing a full Cholesky per
// candidate would be O(m^3) each, while this tracker answers marginals in
// O(m * |targets|) using incremental Cholesky rows.
//
// Representation: for observations S with kernel matrix K_SS + noise*I =
// L L^T, we store W[j][v] = (L^-1 K_S,targets)[j][v]. Then
//
//	postVar(v | S)   = k(v,v) - sum_j W[j][v]^2
//	cov(v, s | S)    = k(v,s) - w_s . W[.][v]
//	postVar(s | S)   = k(s,s) - |w_s|^2   (noise-free)
//
// and adding s appends one row to L and W.
type Posterior struct {
	gp      *GP
	targets []geo.Point
	obs     []geo.Point

	prior   []float64   // prior variance per target
	postVar []float64   // current posterior variance per target
	l       [][]float64 // lower-triangular rows of chol(K_SS + noise I)
	w       [][]float64 // W rows, one per observation

	// degraded latches when an accepted observation's residual variance d
	// fell below degradedFraction of its prior scale: the Cholesky row
	// divides by sqrt(d), so later rows amplify rounding error once d is
	// tiny. Callers that keep a Posterior alive across batches (the
	// region-monitoring base-posterior cache) treat the flag as a signal
	// to rebuild from scratch instead of appending further rows.
	degraded bool
}

// degradedFraction is the conditioning threshold of Degraded: an accepted
// observation whose residual variance d is below this fraction of its
// prior scale k(s,s)+noise marks the factorization as degraded.
const degradedFraction = 1e-9

// NewPosterior starts tracking the posterior over the given targets with
// no observations.
func (g *GP) NewPosterior(targets []geo.Point) *Posterior {
	p := &Posterior{
		gp:      g,
		targets: targets,
		prior:   make([]float64, len(targets)),
		postVar: make([]float64, len(targets)),
	}
	for i, t := range targets {
		p.prior[i] = g.Kernel.Var(t)
		p.postVar[i] = p.prior[i]
	}
	return p
}

// NumObs returns the number of committed observations.
func (p *Posterior) NumObs() int { return len(p.obs) }

// solveAgainst computes w_s = L^-1 k_S(s) for a candidate point.
func (p *Posterior) solveAgainst(s geo.Point) []float64 {
	m := len(p.obs)
	ws := make([]float64, m)
	for i := 0; i < m; i++ {
		v := p.gp.Kernel.Cov(p.obs[i], s)
		for j := 0; j < i; j++ {
			v -= p.l[i][j] * ws[j]
		}
		ws[i] = v / p.l[i][i]
	}
	return ws
}

// candidate computes the pieces shared by Add and MarginalReduction:
// w_s and the (noise-inflated) residual variance d of the candidate.
func (p *Posterior) candidate(s geo.Point) (ws []float64, d float64) {
	ws = p.solveAgainst(s)
	d = p.gp.Kernel.Var(s) + p.gp.Noise
	for _, w := range ws {
		d -= w * w
	}
	return ws, d
}

// MarginalReduction returns the decrease in total posterior variance over
// the targets if s were observed next:
//
//	sum_v cov(v, s | S)^2 / (postVar(s|S) + noise).
//
// It does not mutate the tracker. Returns 0 for numerically redundant
// candidates (e.g. duplicate locations).
func (p *Posterior) MarginalReduction(s geo.Point) float64 {
	ws, d := p.candidate(s)
	if d <= 1e-12 {
		return 0
	}
	var sum float64
	for vi, t := range p.targets {
		c := p.gp.Kernel.Cov(t, s)
		for j, w := range ws {
			c -= w * p.w[j][vi]
		}
		sum += c * c / d
	}
	return sum
}

// Add commits an observation at s, updating the posterior in
// O(m * |targets|). Numerically redundant observations are absorbed as
// no-ops (reduction 0) rather than corrupting the factorization.
func (p *Posterior) Add(s geo.Point) {
	ws, d := p.candidate(s)
	if d <= 1e-12 {
		return
	}
	if d < degradedFraction*(p.gp.Kernel.Var(s)+p.gp.Noise) {
		p.degraded = true
	}
	root := math.Sqrt(d)
	newW := make([]float64, len(p.targets))
	for vi, t := range p.targets {
		c := p.gp.Kernel.Cov(t, s)
		for j, w := range ws {
			c -= w * p.w[j][vi]
		}
		newW[vi] = c / root
		p.postVar[vi] -= newW[vi] * newW[vi]
		if p.postVar[vi] < 0 {
			p.postVar[vi] = 0
		}
	}
	p.l = append(p.l, append(ws, root))
	p.w = append(p.w, newW)
	p.obs = append(p.obs, s)
}

// TotalReduction returns F(S): total prior variance minus total posterior
// variance over the targets (Eq. 6).
func (p *Posterior) TotalReduction() float64 {
	var sum float64
	for i := range p.targets {
		sum += p.prior[i] - p.postVar[i]
	}
	if sum < 0 {
		return 0
	}
	return sum
}

// TotalPrior returns the total prior variance over the targets.
func (p *Posterior) TotalPrior() float64 {
	var sum float64
	for _, v := range p.prior {
		sum += v
	}
	return sum
}

// Degraded reports whether any accepted observation was ill-conditioned
// (residual variance below degradedFraction of its prior scale). A
// degraded tracker still answers queries — every Add so far used the
// exact same arithmetic a from-scratch replay of the observation
// sequence would — but appending further rows risks amplified rounding,
// so long-lived caches should rebuild instead of appending.
func (p *Posterior) Degraded() bool { return p.degraded }

// Clone returns an independent copy of the tracker, so branch-and-bound or
// per-time-instance selections (Algorithm 4 keeps one set per future time
// slot) can diverge cheaply.
func (p *Posterior) Clone() *Posterior {
	cp := &Posterior{
		gp:       p.gp,
		targets:  p.targets,
		obs:      append([]geo.Point(nil), p.obs...),
		prior:    p.prior,
		postVar:  append([]float64(nil), p.postVar...),
		degraded: p.degraded,
	}
	cp.l = make([][]float64, len(p.l))
	for i, row := range p.l {
		cp.l[i] = append([]float64(nil), row...)
	}
	cp.w = make([][]float64, len(p.w))
	for i, row := range p.w {
		cp.w[i] = append([]float64(nil), row...)
	}
	return cp
}
