package gp

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/geo"
	"repro/internal/rng"
)

func TestKernelProperties(t *testing.T) {
	kernels := []Kernel{
		SquaredExponential{Sigma2: 2, Length: 3},
		Exponential{Sigma2: 2, Length: 3},
	}
	p, q := geo.Pt(0, 0), geo.Pt(1, 2)
	for _, k := range kernels {
		if got := k.Cov(p, p); math.Abs(got-2) > 1e-12 {
			t.Errorf("%T Cov(p,p)=%v want Sigma2", k, got)
		}
		if k.Cov(p, q) != k.Cov(q, p) {
			t.Errorf("%T not symmetric", k)
		}
		if k.Cov(p, q) >= k.Var(p) {
			t.Errorf("%T covariance should decay with distance", k)
		}
		if k.Cov(p, q) <= 0 {
			t.Errorf("%T covariance should stay positive", k)
		}
	}
}

func TestKernelDecay(t *testing.T) {
	k := SquaredExponential{Sigma2: 1, Length: 2}
	prev := k.Cov(geo.Pt(0, 0), geo.Pt(0, 0))
	for d := 1.0; d < 10; d++ {
		cur := k.Cov(geo.Pt(0, 0), geo.Pt(d, 0))
		if cur >= prev {
			t.Fatalf("covariance not strictly decaying at d=%v", d)
		}
		prev = cur
	}
}

func TestPosteriorVarianceNoObs(t *testing.T) {
	g := New(SquaredExponential{Sigma2: 3, Length: 1}, 0.1)
	vars, err := g.PosteriorVariances([]geo.Point{geo.Pt(0, 0), geo.Pt(5, 5)}, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range vars {
		if v != 3 {
			t.Errorf("prior variance = %v want 3", v)
		}
	}
}

func TestPosteriorVarianceDropsAtObservation(t *testing.T) {
	g := New(SquaredExponential{Sigma2: 1, Length: 2}, 0.01)
	obs := []geo.Point{geo.Pt(0, 0)}
	vars, err := g.PosteriorVariances([]geo.Point{geo.Pt(0, 0), geo.Pt(10, 10)}, obs)
	if err != nil {
		t.Fatal(err)
	}
	if vars[0] > 0.05 {
		t.Errorf("variance at observed point = %v, should be near noise level", vars[0])
	}
	if vars[1] < 0.9 {
		t.Errorf("variance far from observation = %v, should stay near prior", vars[1])
	}
}

func TestPosteriorVarianceDuplicateObservations(t *testing.T) {
	// Two sensors on the same cell make K_AA singular; the jitter retry
	// must rescue the solve.
	g := New(SquaredExponential{Sigma2: 1, Length: 2}, 1e-9)
	obs := []geo.Point{geo.Pt(1, 1), geo.Pt(1, 1), geo.Pt(1, 1)}
	vars, err := g.PosteriorVariances([]geo.Point{geo.Pt(1, 1)}, obs)
	if err != nil {
		t.Fatal(err)
	}
	if vars[0] < 0 || vars[0] > 0.1 {
		t.Errorf("duplicate-observation variance = %v", vars[0])
	}
}

func TestVarianceReductionMonotoneAndBounded(t *testing.T) {
	g := New(SquaredExponential{Sigma2: 2, Length: 3}, 0.05)
	grid := geo.NewUnitGrid(10, 10)
	targets := grid.CellsIn(grid.Bounds)
	var obs []geo.Point
	prev := 0.0
	total := 2.0 * float64(len(targets))
	for i := 0; i < 5; i++ {
		obs = append(obs, geo.Pt(float64(i*2), float64(i*2)))
		red, err := g.VarianceReduction(targets, obs)
		if err != nil {
			t.Fatal(err)
		}
		if red < prev-1e-9 {
			t.Fatalf("variance reduction decreased when adding observation: %v -> %v", prev, red)
		}
		if red > total {
			t.Fatalf("variance reduction %v exceeds total prior variance %v", red, total)
		}
		prev = red
	}
	if prev <= 0 {
		t.Error("variance reduction should be positive with observations")
	}
}

func TestVarianceReductionSubmodularProperty(t *testing.T) {
	// F is submodular: marginal gain of adding a fixed point shrinks as the
	// observation set grows along a chain.
	g := New(SquaredExponential{Sigma2: 1, Length: 2.5}, 0.05)
	targets := geo.NewUnitGrid(8, 8).CellsIn(geo.NewRect(0, 0, 8, 8))
	s := rng.New(17, "gp-submodular")
	for trial := 0; trial < 20; trial++ {
		newPt := geo.Pt(s.Uniform(0, 8), s.Uniform(0, 8))
		small := []geo.Point{geo.Pt(s.Uniform(0, 8), s.Uniform(0, 8))}
		big := append(append([]geo.Point{}, small...),
			geo.Pt(s.Uniform(0, 8), s.Uniform(0, 8)),
			geo.Pt(s.Uniform(0, 8), s.Uniform(0, 8)))
		fSmall, _ := g.VarianceReduction(targets, small)
		fSmallPlus, _ := g.VarianceReduction(targets, append(append([]geo.Point{}, small...), newPt))
		fBig, _ := g.VarianceReduction(targets, big)
		fBigPlus, _ := g.VarianceReduction(targets, append(append([]geo.Point{}, big...), newPt))
		if (fSmallPlus-fSmall)-(fBigPlus-fBig) < -1e-6 {
			t.Fatalf("submodularity violated: small gain %v < big gain %v",
				fSmallPlus-fSmall, fBigPlus-fBig)
		}
	}
}

func TestNormalizedVarianceReductionRange(t *testing.T) {
	g := New(SquaredExponential{Sigma2: 1, Length: 3}, 0.05)
	targets := geo.NewUnitGrid(6, 6).CellsIn(geo.NewRect(0, 0, 6, 6))
	f := func(x, y uint8) bool {
		obs := []geo.Point{geo.Pt(float64(x%6), float64(y%6))}
		v, err := g.NormalizedVarianceReduction(targets, obs)
		return err == nil && v >= 0 && v <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
	if v, _ := g.NormalizedVarianceReduction(nil, nil); v != 0 {
		t.Errorf("empty targets normalized reduction = %v", v)
	}
}

func TestFitSquaredExponentialRecoversScale(t *testing.T) {
	// Sample a field from a known GP-like construction and verify the fit
	// finds a plausible variance and length scale.
	s := rng.New(99, "gp-fit")
	true_ := SquaredExponential{Sigma2: 4, Length: 3}
	// Build correlated values with a crude spectral trick: sum of random
	// cosines with the kernel's scale.
	var pts []geo.Point
	var vals []float64
	type wave struct{ kx, ky, phase, amp float64 }
	waves := make([]wave, 40)
	for i := range waves {
		waves[i] = wave{
			kx:    s.Norm(0, 1/true_.Length),
			ky:    s.Norm(0, 1/true_.Length),
			phase: s.Uniform(0, 2*math.Pi),
			amp:   math.Sqrt(2 * true_.Sigma2 / float64(len(waves))),
		}
	}
	for i := 0; i < 120; i++ {
		p := geo.Pt(s.Uniform(0, 20), s.Uniform(0, 15))
		var v float64
		for _, w := range waves {
			v += w.amp * math.Cos(w.kx*p.X+w.ky*p.Y+w.phase)
		}
		pts = append(pts, p)
		vals = append(vals, v)
	}
	g, err := FitSquaredExponential(pts, vals)
	if err != nil {
		t.Fatal(err)
	}
	k := g.Kernel.(SquaredExponential)
	if k.Sigma2 < 1 || k.Sigma2 > 12 {
		t.Errorf("fitted Sigma2=%v, want same order as 4", k.Sigma2)
	}
	if k.Length < 0.5 || k.Length > 12 {
		t.Errorf("fitted Length=%v, want same order as 3", k.Length)
	}
	if g.Noise <= 0 {
		t.Error("fitted noise must be positive")
	}
}

func TestFitErrors(t *testing.T) {
	if _, err := FitSquaredExponential([]geo.Point{geo.Pt(0, 0)}, []float64{1, 2}); err == nil {
		t.Error("length mismatch should error")
	}
	if _, err := FitSquaredExponential([]geo.Point{geo.Pt(0, 0), geo.Pt(1, 1)}, []float64{1, 2}); err == nil {
		t.Error("too few observations should error")
	}
}

func TestFitConstantField(t *testing.T) {
	// A constant field has zero variance; the fit must not return NaNs.
	pts := []geo.Point{geo.Pt(0, 0), geo.Pt(1, 0), geo.Pt(0, 1), geo.Pt(1, 1)}
	vals := []float64{5, 5, 5, 5}
	g, err := FitSquaredExponential(pts, vals)
	if err != nil {
		t.Fatal(err)
	}
	k := g.Kernel.(SquaredExponential)
	if math.IsNaN(k.Sigma2) || math.IsNaN(k.Length) || k.Sigma2 <= 0 {
		t.Errorf("degenerate fit: %+v", k)
	}
}

func TestNewDefaultsNoise(t *testing.T) {
	g := New(SquaredExponential{Sigma2: 1, Length: 1}, 0)
	if g.Noise <= 0 {
		t.Error("New should default non-positive noise to a small positive value")
	}
}
