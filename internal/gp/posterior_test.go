package gp

import (
	"math"
	"testing"

	"repro/internal/geo"
	"repro/internal/rng"
)

// TestPosteriorMatchesDirect verifies the incremental tracker against the
// direct Cholesky computation in PosteriorVariances.
func TestPosteriorMatchesDirect(t *testing.T) {
	g := New(SquaredExponential{Sigma2: 3, Length: 2.5}, 0.05)
	grid := geo.NewUnitGrid(8, 8)
	targets := grid.CellsIn(geo.NewRect(0, 0, 8, 8))
	s := rng.New(42, "posterior")

	p := g.NewPosterior(targets)
	var obs []geo.Point
	for step := 0; step < 8; step++ {
		pt := geo.Pt(s.Uniform(0, 8), s.Uniform(0, 8))
		p.Add(pt)
		obs = append(obs, pt)

		direct, err := g.PosteriorVariances(targets, obs)
		if err != nil {
			t.Fatal(err)
		}
		var directTotal float64
		for i, d := range direct {
			directTotal += g.Kernel.Var(targets[i]) - d
		}
		if math.Abs(directTotal-p.TotalReduction()) > 1e-6 {
			t.Fatalf("step %d: incremental %v != direct %v", step, p.TotalReduction(), directTotal)
		}
	}
}

// TestMarginalReductionMatchesAdd: the marginal promised before Add must
// equal the realized change in TotalReduction.
func TestMarginalReductionMatchesAdd(t *testing.T) {
	g := New(SquaredExponential{Sigma2: 2, Length: 3}, 0.1)
	targets := geo.NewUnitGrid(6, 6).CellsIn(geo.NewRect(0, 0, 6, 6))
	s := rng.New(7, "marginal")
	p := g.NewPosterior(targets)
	for step := 0; step < 10; step++ {
		pt := geo.Pt(s.Uniform(0, 6), s.Uniform(0, 6))
		promised := p.MarginalReduction(pt)
		before := p.TotalReduction()
		p.Add(pt)
		realized := p.TotalReduction() - before
		if math.Abs(promised-realized) > 1e-6 {
			t.Fatalf("step %d: promised %v realized %v", step, promised, realized)
		}
	}
}

func TestPosteriorDuplicateObservationIsNoop(t *testing.T) {
	g := New(SquaredExponential{Sigma2: 1, Length: 2}, 1e-9)
	targets := geo.NewUnitGrid(4, 4).CellsIn(geo.NewRect(0, 0, 4, 4))
	p := g.NewPosterior(targets)
	pt := geo.Pt(2, 2)
	p.Add(pt)
	before := p.TotalReduction()
	nBefore := p.NumObs()
	// Adding the same point with negligible noise is numerically redundant.
	p.Add(pt)
	if p.NumObs() > nBefore+1 {
		t.Errorf("obs count grew unexpectedly: %d", p.NumObs())
	}
	after := p.TotalReduction()
	if after < before-1e-9 {
		t.Errorf("duplicate add decreased reduction: %v -> %v", before, after)
	}
	if m := p.MarginalReduction(pt); m > 1e-6 {
		t.Errorf("duplicate marginal = %v want ~0", m)
	}
}

func TestPosteriorCloneIndependent(t *testing.T) {
	g := New(SquaredExponential{Sigma2: 1, Length: 2}, 0.05)
	targets := geo.NewUnitGrid(5, 5).CellsIn(geo.NewRect(0, 0, 5, 5))
	p := g.NewPosterior(targets)
	p.Add(geo.Pt(1, 1))
	c := p.Clone()
	c.Add(geo.Pt(3, 3))
	if p.NumObs() != 1 || c.NumObs() != 2 {
		t.Fatalf("obs counts: p=%d c=%d", p.NumObs(), c.NumObs())
	}
	if c.TotalReduction() <= p.TotalReduction() {
		t.Error("clone with extra obs should have larger reduction")
	}
	// Original still consistent with direct computation.
	direct, _ := g.PosteriorVariances(targets, []geo.Point{geo.Pt(1, 1)})
	var want float64
	for i, d := range direct {
		want += g.Kernel.Var(targets[i]) - d
	}
	if math.Abs(p.TotalReduction()-want) > 1e-6 {
		t.Error("clone mutated original")
	}
}

func TestPosteriorTotalPrior(t *testing.T) {
	g := New(SquaredExponential{Sigma2: 2, Length: 1}, 0.1)
	targets := []geo.Point{geo.Pt(0, 0), geo.Pt(1, 1), geo.Pt(2, 2)}
	p := g.NewPosterior(targets)
	if got := p.TotalPrior(); math.Abs(got-6) > 1e-12 {
		t.Errorf("TotalPrior=%v want 6", got)
	}
	if p.TotalReduction() != 0 {
		t.Error("no-observation reduction must be 0")
	}
}

func BenchmarkPosteriorMarginal(b *testing.B) {
	g := New(SquaredExponential{Sigma2: 2, Length: 3}, 0.05)
	targets := geo.NewUnitGrid(10, 8).CellsIn(geo.NewRect(0, 0, 10, 8))
	p := g.NewPosterior(targets)
	s := rng.New(3, "bench")
	for i := 0; i < 10; i++ {
		p.Add(geo.Pt(s.Uniform(0, 10), s.Uniform(0, 8)))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.MarginalReduction(geo.Pt(5, 4))
	}
}

// TestPosteriorAppendMatchesReplayBitForBit: a long-lived tracker that
// had observations appended one at a time is indistinguishable — exact
// float equality, not tolerance — from a fresh tracker replaying the
// same observation sequence. This is the contract the region-monitoring
// base-posterior cache depends on: counting an Add as a rank-1
// "append" (PosteriorAppends) versus replaying the whole sequence after
// a rebuild (PosteriorRebuilds) must never change a marginal, so the
// lazy-greedy strategy-equivalence guarantee survives the cache.
func TestPosteriorAppendMatchesReplayBitForBit(t *testing.T) {
	g := New(SquaredExponential{Sigma2: 2.5, Length: 1.8}, 0.05)
	targets := geo.NewUnitGrid(7, 7).CellsIn(geo.NewRect(0, 0, 7, 7))
	s := rng.New(99, "append-vs-replay")

	incr := g.NewPosterior(targets)
	var obs []geo.Point
	for step := 0; step < 12; step++ {
		pt := geo.Pt(s.Uniform(0, 7), s.Uniform(0, 7))
		incr.Add(pt)
		obs = append(obs, pt)

		scratch := g.NewPosterior(targets)
		for _, o := range obs {
			scratch.Add(o)
		}
		if got, want := incr.TotalReduction(), scratch.TotalReduction(); got != want {
			t.Fatalf("step %d: appended TotalReduction %v != replayed %v", step, got, want)
		}
		probe := geo.Pt(s.Uniform(0, 7), s.Uniform(0, 7))
		if got, want := incr.MarginalReduction(probe), scratch.MarginalReduction(probe); got != want {
			t.Fatalf("step %d: appended MarginalReduction %v != replayed %v", step, got, want)
		}
		if incr.Degraded() != scratch.Degraded() {
			t.Fatalf("step %d: degraded flag diverged: %v vs %v", step, incr.Degraded(), scratch.Degraded())
		}
	}
}

// TestPosteriorDegradedFallback documents the numerical escape hatch:
// near-duplicate observations drive the residual variance toward zero,
// which latches Degraded. The tracker's answers up to that point still
// match a from-scratch replay exactly (same arithmetic), so consumers
// may finish the batch before rebuilding; the flag only warns that
// *further* appends amplify rounding.
func TestPosteriorDegradedFallback(t *testing.T) {
	g := New(SquaredExponential{Sigma2: 1, Length: 2}, 1e-12)
	targets := geo.NewUnitGrid(4, 4).CellsIn(geo.NewRect(0, 0, 4, 4))
	p := g.NewPosterior(targets)
	p.Add(geo.Pt(1.5, 1.5))
	if p.Degraded() {
		t.Fatal("fresh tracker already degraded")
	}
	// A second observation at (almost) the same spot leaves ~zero residual
	// variance after conditioning on the first.
	p.Add(geo.Pt(1.5+1e-9, 1.5))
	if !p.Degraded() {
		t.Fatal("near-duplicate observation did not latch Degraded")
	}
	scratch := g.NewPosterior(targets)
	scratch.Add(geo.Pt(1.5, 1.5))
	scratch.Add(geo.Pt(1.5+1e-9, 1.5))
	if p.TotalReduction() != scratch.TotalReduction() {
		t.Fatalf("degraded tracker diverged from replay: %v vs %v",
			p.TotalReduction(), scratch.TotalReduction())
	}
	if !p.Clone().Degraded() {
		t.Fatal("Clone dropped the degraded latch")
	}
}
