// Package gp implements the Gaussian-process machinery behind the
// region-monitoring valuation (Eqs. 6-7 of the paper): a spatial phenomenon
// is modeled as a GP; the value of observing a set A of locations is the
// expected reduction in predictive variance at the unobserved locations,
//
//	F(A) = Var(X_V) - E[ Var(X_V | X_A) ].
//
// For a Gaussian process the posterior variance does not depend on the
// observed values, so the expectation is exact:
// F(A) = sum_v k(v,v) - sum_v postVar(v | A).
package gp

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/geo"
	"repro/internal/linalg"
)

// Kernel is a positive-definite covariance function over the plane.
type Kernel interface {
	// Cov returns the covariance between the phenomenon at p and q.
	Cov(p, q geo.Point) float64
	// Var returns the prior variance at p (Cov(p,p)).
	Var(p geo.Point) float64
}

// SquaredExponential is the classic RBF kernel
// k(p,q) = Sigma2 * exp(-|p-q|^2 / (2*Length^2)).
type SquaredExponential struct {
	Sigma2 float64 // signal variance
	Length float64 // length scale
}

// Cov implements Kernel.
func (k SquaredExponential) Cov(p, q geo.Point) float64 {
	d2 := p.Dist2(q)
	return k.Sigma2 * math.Exp(-d2/(2*k.Length*k.Length))
}

// Var implements Kernel.
func (k SquaredExponential) Var(geo.Point) float64 { return k.Sigma2 }

// Exponential is the Matern-1/2 kernel
// k(p,q) = Sigma2 * exp(-|p-q| / Length), rougher than RBF.
type Exponential struct {
	Sigma2 float64
	Length float64
}

// Cov implements Kernel.
func (k Exponential) Cov(p, q geo.Point) float64 {
	return k.Sigma2 * math.Exp(-p.Dist(q)/k.Length)
}

// Var implements Kernel.
func (k Exponential) Var(geo.Point) float64 { return k.Sigma2 }

// GP is a zero-mean Gaussian process with observation noise.
type GP struct {
	Kernel Kernel
	Noise  float64 // observation noise variance sigma_n^2
}

// New creates a GP with the given kernel and noise variance.
func New(k Kernel, noise float64) *GP {
	if noise <= 0 {
		noise = 1e-6
	}
	return &GP{Kernel: k, Noise: noise}
}

// PosteriorVariances returns the predictive variance at each target
// location after observing (noisy) measurements at obs. With no
// observations it returns the prior variances.
func (g *GP) PosteriorVariances(targets, obs []geo.Point) ([]float64, error) {
	out := make([]float64, len(targets))
	if len(obs) == 0 {
		for i, t := range targets {
			out[i] = g.Kernel.Var(t)
		}
		return out, nil
	}
	n := len(obs)
	kaa := linalg.NewMatrix(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j <= i; j++ {
			v := g.Kernel.Cov(obs[i], obs[j])
			kaa.Set(i, j, v)
			kaa.Set(j, i, v)
		}
		kaa.Set(i, i, kaa.At(i, i)+g.Noise)
	}
	ch, err := linalg.NewCholesky(kaa)
	if err != nil {
		// Retry with jitter: duplicated observation locations make K_AA
		// singular, which legitimately happens when several sensors stand
		// on the same grid cell.
		jittered := kaa.Clone()
		for i := 0; i < n; i++ {
			jittered.Set(i, i, jittered.At(i, i)+1e-6*g.Kernel.Var(obs[i])+1e-9)
		}
		ch, err = linalg.NewCholesky(jittered)
		if err != nil {
			return nil, fmt.Errorf("gp: posterior variance: %w", err)
		}
	}
	kv := make([]float64, n)
	for i, t := range targets {
		for j, o := range obs {
			kv[j] = g.Kernel.Cov(t, o)
		}
		alpha, err := ch.SolveVec(kv)
		if err != nil {
			return nil, err
		}
		v := g.Kernel.Var(t) - linalg.Dot(kv, alpha)
		if v < 0 {
			v = 0 // numerical floor
		}
		out[i] = v
	}
	return out, nil
}

// VarianceReduction computes F(A) of Eq. 6: the total prior variance over
// the target locations minus the total posterior variance after observing
// the locations in obs. It is non-negative and monotone in obs.
func (g *GP) VarianceReduction(targets, obs []geo.Point) (float64, error) {
	post, err := g.PosteriorVariances(targets, obs)
	if err != nil {
		return 0, err
	}
	var prior, posterior float64
	for i, t := range targets {
		prior += g.Kernel.Var(t)
		posterior += post[i]
	}
	red := prior - posterior
	if red < 0 {
		red = 0
	}
	return red, nil
}

// NormalizedVarianceReduction returns F(A) divided by the total prior
// variance, i.e. a value in [0,1] describing the fraction of uncertainty
// removed. Useful for quality reporting.
func (g *GP) NormalizedVarianceReduction(targets, obs []geo.Point) (float64, error) {
	red, err := g.VarianceReduction(targets, obs)
	if err != nil {
		return 0, err
	}
	var prior float64
	for _, t := range targets {
		prior += g.Kernel.Var(t)
	}
	if prior == 0 {
		return 0, nil
	}
	return red / prior, nil
}

// FitSquaredExponential estimates squared-exponential hyperparameters from
// observed (location, value) pairs, the way the evaluation "learns the
// parameters of the Gaussian model from a fraction of sensor readings in
// the Intel Lab dataset" (§4.6).
//
// The signal variance is the sample variance of the values; the length
// scale is fit to the empirical variogram by choosing, among candidate
// scales, the one minimizing squared error between the empirical
// correlation at binned distances and exp(-d^2/(2 l^2)). The noise
// variance is taken as a small fraction of the signal variance plus the
// variogram nugget estimate.
func FitSquaredExponential(points []geo.Point, values []float64) (*GP, error) {
	if len(points) != len(values) {
		return nil, fmt.Errorf("gp: fit: %d points vs %d values", len(points), len(values))
	}
	if len(points) < 3 {
		return nil, fmt.Errorf("gp: fit: need at least 3 observations, got %d", len(points))
	}
	n := len(points)
	var mean float64
	for _, v := range values {
		mean += v
	}
	mean /= float64(n)
	var variance float64
	for _, v := range values {
		variance += (v - mean) * (v - mean)
	}
	variance /= float64(n)
	if variance <= 0 {
		variance = 1e-6
	}

	// Empirical correlation at binned pairwise distances.
	type pair struct{ d, corr float64 }
	var pairs []pair
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			d := points[i].Dist(points[j])
			c := (values[i] - mean) * (values[j] - mean) / variance
			pairs = append(pairs, pair{d, c})
		}
	}
	sort.Slice(pairs, func(i, j int) bool { return pairs[i].d < pairs[j].d })
	const nbins = 12
	maxD := pairs[len(pairs)-1].d
	if maxD <= 0 {
		maxD = 1
	}
	binD := make([]float64, 0, nbins)
	binC := make([]float64, 0, nbins)
	for b := 0; b < nbins; b++ {
		lo := maxD * float64(b) / nbins
		hi := maxD * float64(b+1) / nbins
		var sumD, sumC float64
		cnt := 0
		for _, p := range pairs {
			if p.d >= lo && p.d < hi {
				sumD += p.d
				sumC += p.corr
				cnt++
			}
		}
		if cnt > 0 {
			binD = append(binD, sumD/float64(cnt))
			binC = append(binC, sumC/float64(cnt))
		}
	}

	bestL, bestErr := maxD/4, math.Inf(1)
	for _, l := range candidateScales(maxD) {
		var sse float64
		for i := range binD {
			pred := math.Exp(-binD[i] * binD[i] / (2 * l * l))
			diff := pred - binC[i]
			sse += diff * diff
		}
		if sse < bestErr {
			bestErr, bestL = sse, l
		}
	}

	noise := 0.05 * variance
	return New(SquaredExponential{Sigma2: variance, Length: bestL}, noise), nil
}

func candidateScales(maxD float64) []float64 {
	out := make([]float64, 0, 24)
	for f := 0.05; f <= 1.2; f += 0.05 {
		out = append(out, f*maxD)
	}
	return out
}
