package sensornet

import (
	"repro/internal/geo"
	"repro/internal/mobility"
)

// Fleet couples a set of sensors with a mobility model and exposes the
// per-slot view the aggregator works with: which sensors are available in
// the working region, where they are, and what they charge. "At the
// beginning of each time slot [sensors] announce their location and price
// of providing a measurement at that location" (§2.1).
type Fleet struct {
	Sensors []*Sensor
	Model   mobility.Model
	// WorkingRegion bounds the aggregator's attention: only sensors inside
	// it are offered to queries (§4.2's "working region" / hotspot).
	WorkingRegion geo.Rect

	slot int
}

// NewFleet builds a fleet; len(sensors) must equal model.N().
func NewFleet(sensors []*Sensor, model mobility.Model, working geo.Rect) *Fleet {
	if len(sensors) != model.N() {
		panic("sensornet: sensor count does not match mobility model")
	}
	return &Fleet{Sensors: sensors, Model: model, WorkingRegion: working, slot: -1}
}

// Offer is one sensor's per-slot announcement: identity, position, price.
type Offer struct {
	Sensor *Sensor
	Cost   float64
}

// Slot returns the current slot number (-1 before the first Step).
func (f *Fleet) Slot() int { return f.slot }

// Step advances the fleet one time slot: moves every sensor and returns
// the offers of the alive sensors currently inside the working region.
func (f *Fleet) Step() []Offer {
	f.slot++
	positions := f.Model.Step()
	var offers []Offer
	for i, s := range f.Sensors {
		s.Pos = positions[i]
		if !s.Alive() || !f.WorkingRegion.Contains(s.Pos) {
			continue
		}
		offers = append(offers, Offer{Sensor: s, Cost: s.Cost(f.slot)})
	}
	return offers
}

// Commit records that the given sensors provided a measurement in the
// current slot, consuming lifetime and growing privacy histories.
func (f *Fleet) Commit(selected []*Sensor) {
	for _, s := range selected {
		s.RecordReading(f.slot)
	}
}
