package sensornet

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/geo"
	"repro/internal/mobility"
	"repro/internal/rng"
)

func TestQualityEq4(t *testing.T) {
	s := NewSensor(1, geo.Pt(0, 0))
	s.Inaccuracy = 0.1
	s.Trust = 0.8
	// At distance 0: (1-0.1)*(1-0)*0.8 = 0.72.
	if got := s.Quality(geo.Pt(0, 0), 5); math.Abs(got-0.72) > 1e-12 {
		t.Errorf("quality at 0 = %v want 0.72", got)
	}
	// At distance 2.5 of dmax 5: factor (1-0.5).
	if got := s.Quality(geo.Pt(2.5, 0), 5); math.Abs(got-0.36) > 1e-12 {
		t.Errorf("quality at half range = %v want 0.36", got)
	}
	// Beyond dmax: zero.
	if got := s.Quality(geo.Pt(5.01, 0), 5); got != 0 {
		t.Errorf("quality beyond range = %v want 0", got)
	}
	// Exactly at dmax: zero quality by the distance term.
	if got := s.Quality(geo.Pt(5, 0), 5); got != 0 {
		t.Errorf("quality at dmax = %v want 0", got)
	}
}

func TestQualityRangeProperty(t *testing.T) {
	f := func(gammaRaw, trustRaw, dxRaw uint8) bool {
		s := NewSensor(1, geo.Pt(0, 0))
		s.Inaccuracy = float64(gammaRaw%21) / 100 // [0,0.2]
		s.Trust = float64(trustRaw%101) / 100
		d := float64(dxRaw) / 10
		q := s.Quality(geo.Pt(d, 0), 5)
		return q >= 0 && q <= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestFixedEnergyCost(t *testing.T) {
	m := FixedEnergyCost{}
	if m.EnergyCost(10, 1) != 10 || m.EnergyCost(10, 0) != 10 {
		t.Error("fixed cost must ignore energy")
	}
}

func TestLinearEnergyCost(t *testing.T) {
	m := LinearEnergyCost{Beta: 2}
	if got := m.EnergyCost(10, 1); got != 10 {
		t.Errorf("full energy cost = %v want 10", got)
	}
	if got := m.EnergyCost(10, 0.5); got != 20 {
		t.Errorf("half energy cost = %v want 20", got)
	}
	if got := m.EnergyCost(10, 0); got != 30 {
		t.Errorf("empty energy cost = %v want 30", got)
	}
	// Energy outside [0,1] clamps.
	if got := m.EnergyCost(10, -0.5); got != 30 {
		t.Errorf("clamped low = %v", got)
	}
	if got := m.EnergyCost(10, 2); got != 10 {
		t.Errorf("clamped high = %v", got)
	}
}

func TestLifetimeAndEnergy(t *testing.T) {
	s := NewSensor(1, geo.Pt(0, 0))
	s.Lifetime = 4
	if !s.Alive() || s.RemainingEnergy() != 1 {
		t.Fatal("fresh sensor state wrong")
	}
	for i := 0; i < 4; i++ {
		s.RecordReading(i)
	}
	if s.Alive() {
		t.Error("sensor should be exhausted after lifetime readings")
	}
	if s.RemainingEnergy() != 0 {
		t.Errorf("energy = %v want 0", s.RemainingEnergy())
	}
	if s.Readings() != 4 {
		t.Errorf("readings = %d", s.Readings())
	}
}

func TestPrivacyLossEmptyHistory(t *testing.T) {
	s := NewSensor(1, geo.Pt(0, 0))
	s.PrivacyWindow = 10
	// Eq. 14 with empty history: w / (w(w+1)/2) = 2/(w+1).
	want := 2.0 / 11
	if got := s.PrivacyLoss(5); math.Abs(got-want) > 1e-12 {
		t.Errorf("empty-history privacy loss = %v want %v", got, want)
	}
}

func TestPrivacyLossRecentReportsWeighMore(t *testing.T) {
	recent := NewSensor(1, geo.Pt(0, 0))
	recent.PrivacyWindow = 10
	recent.RecordReading(9) // one slot ago at now=10

	old := NewSensor(2, geo.Pt(0, 0))
	old.PrivacyWindow = 10
	old.RecordReading(2) // eight slots ago at now=10

	if recent.PrivacyLoss(10) <= old.PrivacyLoss(10) {
		t.Errorf("recent report should cost more privacy: recent=%v old=%v",
			recent.PrivacyLoss(10), old.PrivacyLoss(10))
	}
}

func TestPrivacyLossConsecutiveReporting(t *testing.T) {
	// Reporting every slot accumulates much more privacy loss than
	// reporting once, demonstrating the trajectory-hiding incentive.
	s := NewSensor(1, geo.Pt(0, 0))
	s.PrivacyWindow = 10
	for slot := 0; slot < 10; slot++ {
		s.RecordReading(slot)
	}
	many := s.PrivacyLoss(10)

	one := NewSensor(2, geo.Pt(0, 0))
	one.PrivacyWindow = 10
	one.RecordReading(9)
	single := one.PrivacyLoss(10)

	if many <= single*2 {
		t.Errorf("consecutive reporting loss %v should far exceed single %v", many, single)
	}
}

func TestPrivacyLossWindowExpiry(t *testing.T) {
	s := NewSensor(1, geo.Pt(0, 0))
	s.PrivacyWindow = 5
	s.RecordReading(0)
	// At now=10 the old report is outside the window: loss equals baseline.
	base := NewSensor(2, geo.Pt(0, 0))
	base.PrivacyWindow = 5
	if got, want := s.PrivacyLoss(10), base.PrivacyLoss(10); got != want {
		t.Errorf("expired report still counted: %v vs %v", got, want)
	}
}

func TestPrivacyCostEq15(t *testing.T) {
	s := NewSensor(1, geo.Pt(0, 0))
	s.Privacy = PrivacyHigh // 0.75
	s.BasePrice = 10
	s.PrivacyWindow = 10
	want := 0.75 * s.PrivacyLoss(3) * 10
	if got := s.PrivacyCost(3); math.Abs(got-want) > 1e-12 {
		t.Errorf("privacy cost = %v want %v", got, want)
	}
	s.Privacy = PrivacyZero
	if got := s.PrivacyCost(3); got != 0 {
		t.Errorf("zero PSL privacy cost = %v", got)
	}
}

func TestTotalCostEq8(t *testing.T) {
	s := NewSensor(1, geo.Pt(0, 0))
	s.Privacy = PrivacyVeryHigh
	s.Energy = LinearEnergyCost{Beta: 1}
	s.Lifetime = 10
	s.RecordReading(0)
	s.RecordReading(1) // energy 0.8
	now := 2
	wantEnergy := 10 * (1 + 1*(1-0.8))
	wantPrivacy := 1.0 * s.PrivacyLoss(now) * 10
	if got := s.Cost(now); math.Abs(got-(wantEnergy+wantPrivacy)) > 1e-9 {
		t.Errorf("cost = %v want %v", got, wantEnergy+wantPrivacy)
	}
}

func TestDefaultSensorCostIsBasePrice(t *testing.T) {
	// §4.1: Cs=10, fixed energy model, PSL Zero -> cost exactly 10 forever.
	s := NewSensor(1, geo.Pt(0, 0))
	for slot := 0; slot < 5; slot++ {
		if got := s.Cost(slot); got != 10 {
			t.Fatalf("slot %d default cost = %v want 10", slot, got)
		}
		s.RecordReading(slot)
	}
}

func TestPrivacyLevelString(t *testing.T) {
	if PrivacyModerate.String() != "Moderate" {
		t.Errorf("String() = %q", PrivacyModerate.String())
	}
	if PrivacyLevel(0.33).String() != "PSL(0.33)" {
		t.Errorf("custom String() = %q", PrivacyLevel(0.33).String())
	}
	if len(AllPrivacyLevels) != 5 {
		t.Error("expected 5 PSLs")
	}
}

func TestPrivacyHistoryTrimming(t *testing.T) {
	s := NewSensor(1, geo.Pt(0, 0))
	s.PrivacyWindow = 5
	s.Lifetime = 1000
	for slot := 0; slot < 500; slot++ {
		s.RecordReading(slot)
	}
	if len(s.history) > 6 {
		t.Errorf("history not trimmed: len=%d", len(s.history))
	}
}

func TestFleetStepFiltersAndAnnounces(t *testing.T) {
	working := geo.NewRect(0, 0, 10, 10)
	inside := NewSensor(0, geo.Pt(5, 5))
	outside := NewSensor(1, geo.Pt(50, 50))
	dead := NewSensor(2, geo.Pt(6, 6))
	dead.Lifetime = 0
	model := mobility.NewStationary([]geo.Point{{X: 5, Y: 5}, {X: 50, Y: 50}, {X: 6, Y: 6}})
	f := NewFleet([]*Sensor{inside, outside, dead}, model, working)

	offers := f.Step()
	if f.Slot() != 0 {
		t.Errorf("slot = %d want 0", f.Slot())
	}
	if len(offers) != 1 || offers[0].Sensor.ID != 0 {
		t.Fatalf("offers = %+v, want only sensor 0", offers)
	}
	if offers[0].Cost != 10 {
		t.Errorf("announced cost = %v want 10", offers[0].Cost)
	}
}

func TestFleetCommitConsumesLifetime(t *testing.T) {
	working := geo.NewRect(0, 0, 10, 10)
	s := NewSensor(0, geo.Pt(5, 5))
	s.Lifetime = 2
	model := mobility.NewStationary([]geo.Point{{X: 5, Y: 5}})
	f := NewFleet([]*Sensor{s}, model, working)

	for i := 0; i < 2; i++ {
		offers := f.Step()
		if len(offers) != 1 {
			t.Fatalf("slot %d: offers=%d", i, len(offers))
		}
		f.Commit([]*Sensor{s})
	}
	if offers := f.Step(); len(offers) != 0 {
		t.Errorf("exhausted sensor still offered: %+v", offers)
	}
}

func TestFleetMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic on sensor/model count mismatch")
		}
	}()
	NewFleet([]*Sensor{NewSensor(0, geo.Pt(0, 0))},
		mobility.NewStationary([]geo.Point{{}, {}}), geo.NewRect(0, 0, 1, 1))
}

func TestFleetMovingSensorsEnterAndLeave(t *testing.T) {
	working := geo.NewRect(0, 0, 20, 20)
	region := geo.NewRect(0, 0, 80, 80)
	rnd := rng.New(12, "fleet")
	n := 100
	sensors := make([]*Sensor, n)
	for i := range sensors {
		sensors[i] = NewSensor(i, geo.Pt(0, 0))
	}
	f := NewFleet(sensors, mobility.NewRandomWaypoint(n, region, nil, rnd), working)
	counts := map[int]bool{}
	for slot := 0; slot < 30; slot++ {
		counts[len(f.Step())] = true
	}
	if len(counts) < 2 {
		t.Error("working-region population never changed — no churn")
	}
}

func TestPrivacyLevelStringAll(t *testing.T) {
	want := map[PrivacyLevel]string{
		PrivacyZero: "Zero", PrivacyLow: "Low", PrivacyModerate: "Moderate",
		PrivacyHigh: "High", PrivacyVeryHigh: "VeryHigh",
	}
	for lvl, name := range want {
		if lvl.String() != name {
			t.Errorf("%v.String() = %q want %q", float64(lvl), lvl.String(), name)
		}
	}
}

func TestRemainingEnergyDegenerate(t *testing.T) {
	s := NewSensor(1, geo.Pt(0, 0))
	s.Lifetime = 0
	if s.RemainingEnergy() != 0 {
		t.Error("zero-lifetime energy != 0")
	}
	s.Lifetime = 2
	s.RecordReading(0)
	s.RecordReading(1)
	s.RecordReading(2) // over-consumption must clamp, not go negative
	if e := s.RemainingEnergy(); e != 0 {
		t.Errorf("over-consumed energy = %v", e)
	}
}

func TestPrivacyLossZeroWindow(t *testing.T) {
	s := NewSensor(1, geo.Pt(0, 0))
	s.PrivacyWindow = 0
	if s.PrivacyLoss(5) != 0 {
		t.Error("zero window should have zero loss")
	}
	// Future-dated history entries (clock skew) clamp age at 0.
	s2 := NewSensor(2, geo.Pt(0, 0))
	s2.PrivacyWindow = 5
	s2.RecordReading(10)
	if loss := s2.PrivacyLoss(8); loss <= 0 {
		t.Errorf("future-dated report loss = %v", loss)
	}
}
