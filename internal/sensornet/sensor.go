// Package sensornet models the participants' sensing devices (§2, §2.4,
// §4.1): location, inherent inaccuracy, trustworthiness, lifetime, energy
// and privacy state, and the cost a sensor announces each time slot:
//
//	c_s(E_s, H_s, l_s) = c^e_s(E_s) + c^p_s(p_s(H_s, l_s))   (Eq. 8)
//
// with the fixed / linear energy cost models and the privacy-loss model of
// the evaluation (Eqs. 14-15).
package sensornet

import (
	"fmt"

	"repro/internal/geo"
)

// PrivacyLevel is a privacy sensitivity level (PSL) of a sensor owner.
// The evaluation maps {Zero, Low, Moderate, High, VeryHigh} to
// {0, 0.25, 0.5, 0.75, 1}.
type PrivacyLevel float64

// The five PSLs of §4.1.
const (
	PrivacyZero     PrivacyLevel = 0
	PrivacyLow      PrivacyLevel = 0.25
	PrivacyModerate PrivacyLevel = 0.5
	PrivacyHigh     PrivacyLevel = 0.75
	PrivacyVeryHigh PrivacyLevel = 1
)

// AllPrivacyLevels lists the five PSLs in increasing order.
var AllPrivacyLevels = []PrivacyLevel{
	PrivacyZero, PrivacyLow, PrivacyModerate, PrivacyHigh, PrivacyVeryHigh,
}

// String implements fmt.Stringer.
func (p PrivacyLevel) String() string {
	switch p {
	case PrivacyZero:
		return "Zero"
	case PrivacyLow:
		return "Low"
	case PrivacyModerate:
		return "Moderate"
	case PrivacyHigh:
		return "High"
	case PrivacyVeryHigh:
		return "VeryHigh"
	default:
		return fmt.Sprintf("PSL(%g)", float64(p))
	}
}

// EnergyCostModel computes c^e_s(E_s), the energy component of a sensor's
// price, from the remaining energy fraction E_s in [0,1].
type EnergyCostModel interface {
	EnergyCost(basePrice, remainingEnergy float64) float64
}

// FixedEnergyCost is the evaluation's fixed model: c^e_s(E_s) = C_s.
type FixedEnergyCost struct{}

// EnergyCost implements EnergyCostModel.
func (FixedEnergyCost) EnergyCost(basePrice, _ float64) float64 { return basePrice }

// LinearEnergyCost is the evaluation's linear model:
// c^e_s(E_s) = C_s * (1 + beta*(1 - E_s)); the price grows as the battery
// drains.
type LinearEnergyCost struct {
	Beta float64
}

// EnergyCost implements EnergyCostModel.
func (m LinearEnergyCost) EnergyCost(basePrice, remainingEnergy float64) float64 {
	e := remainingEnergy
	if e < 0 {
		e = 0
	}
	if e > 1 {
		e = 1
	}
	return basePrice * (1 + m.Beta*(1-e))
}

// Sensor is one participant's sensing device. The zero value is not
// usable; construct with NewSensor.
type Sensor struct {
	ID         int
	Pos        geo.Point
	Inaccuracy float64 // gamma_s in [0,1], drawn from [0,0.2] in §4.1
	Trust      float64 // tau_s in [0,1]
	BasePrice  float64 // C_s, 10 in all experiments
	Privacy    PrivacyLevel
	Energy     EnergyCostModel

	// Lifetime is the maximum number of readings the sensor can provide
	// (§4.1); once exhausted the sensor is unavailable.
	Lifetime int
	// PrivacyWindow is w of Eq. 14, the length of the reporting history the
	// privacy-loss computation considers.
	PrivacyWindow int

	readings int   // measurements taken so far
	history  []int // slots at which a measurement was reported (ascending)
}

// NewSensor constructs a sensor with the experiment defaults: base price
// 10, fixed energy cost, zero privacy sensitivity, full trust, privacy
// window 10 and lifetime sufficient for the 50-slot simulation.
func NewSensor(id int, pos geo.Point) *Sensor {
	return &Sensor{
		ID:            id,
		Pos:           pos,
		Inaccuracy:    0,
		Trust:         1,
		BasePrice:     10,
		Privacy:       PrivacyZero,
		Energy:        FixedEnergyCost{},
		Lifetime:      50,
		PrivacyWindow: 10,
	}
}

// Readings returns how many measurements the sensor has provided.
func (s *Sensor) Readings() int { return s.readings }

// Alive reports whether the sensor can still provide measurements.
func (s *Sensor) Alive() bool { return s.readings < s.Lifetime }

// RemainingEnergy returns E_s in [0,1]: 1 minus the fraction of lifetime
// consumed.
func (s *Sensor) RemainingEnergy() float64 {
	if s.Lifetime <= 0 {
		return 0
	}
	e := 1 - float64(s.readings)/float64(s.Lifetime)
	if e < 0 {
		return 0
	}
	return e
}

// PrivacyLoss computes p_s(H_s, l_s) of Eq. 14 at slot now: a weighted
// average of the time distances between past reporting slots and now, with
// more weight on recent reports, normalized by w(w+1)/2. With an empty
// history the loss is w / (w(w+1)/2) = 2/(w+1), the baseline exposure of
// announcing the current location.
func (s *Sensor) PrivacyLoss(now int) float64 {
	w := s.PrivacyWindow
	if w <= 0 {
		return 0
	}
	sum := float64(w)
	for _, t := range s.history {
		age := now - t
		if age < 0 {
			age = 0
		}
		if age >= w {
			continue // outside the window: weight would be non-positive
		}
		sum += float64(w - age)
	}
	return sum / (float64(w) * float64(w+1) / 2)
}

// PrivacyCost computes c^p_s of Eq. 15: PSL_s * p_s * C_s.
func (s *Sensor) PrivacyCost(now int) float64 {
	return float64(s.Privacy) * s.PrivacyLoss(now) * s.BasePrice
}

// Cost returns the total price (Eq. 8) the sensor announces at slot now:
// energy cost plus privacy cost.
func (s *Sensor) Cost(now int) float64 {
	return s.Energy.EnergyCost(s.BasePrice, s.RemainingEnergy()) + s.PrivacyCost(now)
}

// RecordReading accounts for a measurement taken at slot now: consumes one
// lifetime unit and appends to the privacy history.
func (s *Sensor) RecordReading(now int) {
	s.readings++
	s.history = append(s.history, now)
	// Trim history that can no longer influence the privacy loss so the
	// slice stays bounded over long simulations.
	cut := 0
	for cut < len(s.history) && now-s.history[cut] >= s.PrivacyWindow {
		cut++
	}
	if cut > 0 {
		s.history = append(s.history[:0], s.history[cut:]...)
	}
}

// Quality computes theta_q(s, l_q) of Eq. 4: the quality of a reading from
// this sensor for a query at location lq, given the maximum useful
// distance dmax:
//
//	theta = (1 - gamma_s) * (1 - |l_s - l_q| / dmax) * tau_s   if dist <= dmax
//	theta = 0                                                  otherwise.
func (s *Sensor) Quality(lq geo.Point, dmax float64) float64 {
	d := s.Pos.Dist(lq)
	if d > dmax {
		return 0
	}
	return (1 - s.Inaccuracy) * (1 - d/dmax) * s.Trust
}
